package esm

import (
	"math"

	"repro/internal/grid"
)

// EventConfig controls how many ground-truth extremes the simulator
// seeds per simulated year.
type EventConfig struct {
	// HeatWavesPerYear / ColdSpellsPerYear are Poisson-like mean counts
	// (realized deterministically from the run seed).
	HeatWavesPerYear  int
	ColdSpellsPerYear int
	// CyclonesPerYear is the number of tropical-cyclone tracks seeded.
	CyclonesPerYear int
	// WaveAmplitudeK is the peak temperature anomaly of seeded waves; it
	// must exceed the 5 K detection threshold of §5.3 for the events to
	// be detectable.
	WaveAmplitudeK float64
	// WaveMinDays / WaveMaxDays bound seeded wave durations. Detection
	// requires ≥ 6 days ("typically lasts six or more days").
	WaveMinDays, WaveMaxDays int
}

// DefaultEvents returns the standard seeding used by the experiments.
func DefaultEvents() EventConfig {
	return EventConfig{
		HeatWavesPerYear:  3,
		ColdSpellsPerYear: 2,
		CyclonesPerYear:   6,
		WaveAmplitudeK:    8,
		WaveMinDays:       6,
		WaveMaxDays:       12,
	}
}

// Wave is one seeded heat wave or cold spell: a smooth bump of
// temperature anomaly over a lat/lon box for a span of days.
type Wave struct {
	// Hot marks a heat wave; false is a cold spell.
	Hot bool
	// Year is the calendar year of onset.
	Year int
	// StartDay is the zero-based day-of-year of onset.
	StartDay int
	// Days is the duration.
	Days int
	// CenterLat/CenterLon locate the anomaly center in degrees.
	CenterLat, CenterLon float64
	// RadiusDeg is the e-folding radius in degrees.
	RadiusDeg float64
	// AmplitudeK is the peak anomaly magnitude (positive, sign applied
	// by Hot).
	AmplitudeK float64
}

// anomalyAt returns the additive temperature anomaly of the wave at the
// given cell and day-of-year, zero outside its active span.
func (w *Wave) anomalyAt(g grid.Grid, i, j, dayOfYear int) float64 {
	if dayOfYear < w.StartDay || dayOfYear >= w.StartDay+w.Days {
		return 0
	}
	lat, lon := g.Lat(i), g.Lon(j)
	dLon := math.Abs(lon - w.CenterLon)
	if dLon > 180 {
		dLon = 360 - dLon
	}
	d2 := ((lat-w.CenterLat)*(lat-w.CenterLat) + dLon*dLon) / (w.RadiusDeg * w.RadiusDeg)
	if d2 > 9 {
		return 0
	}
	a := w.AmplitudeK * math.Exp(-d2)
	if !w.Hot {
		a = -a
	}
	return a
}

// TrackPoint is one 6-hourly position of a seeded tropical cyclone.
type TrackPoint struct {
	// Day is the zero-based day-of-year; Step the 6-hourly index (0..3).
	Day, Step int
	// Lat/Lon locate the storm center in degrees.
	Lat, Lon float64
	// PressureDrop is the central sea-level-pressure deficit [Pa].
	PressureDrop float64
	// MaxWind is the peak tangential wind [m/s].
	MaxWind float64
}

// Cyclone is a seeded tropical-cyclone track with ground truth.
type Cyclone struct {
	// ID numbers storms within a run.
	ID int
	// Year of genesis.
	Year int
	// Basin is a label for the genesis region.
	Basin string
	// Track holds one point per 6-hourly step of the storm's life.
	Track []TrackPoint
}

// Active returns the track point for (day, step), if the storm is alive
// then.
func (c *Cyclone) Active(day, step int) (TrackPoint, bool) {
	for _, p := range c.Track {
		if p.Day == day && p.Step == step {
			return p, true
		}
	}
	return TrackPoint{}, false
}

// GroundTruth aggregates every event the simulator seeded.
type GroundTruth struct {
	Waves    []Wave
	Cyclones []Cyclone
}

// HeatWaves returns only the hot events.
func (gt *GroundTruth) HeatWaves() []Wave {
	var out []Wave
	for _, w := range gt.Waves {
		if w.Hot {
			out = append(out, w)
		}
	}
	return out
}

// ColdSpells returns only the cold events.
func (gt *GroundTruth) ColdSpells() []Wave {
	var out []Wave
	for _, w := range gt.Waves {
		if !w.Hot {
			out = append(out, w)
		}
	}
	return out
}

// seedWaves plans the year's heat waves and cold spells. Waves are kept
// inside the year and away from the calendar edges so duration-based
// indices see complete events.
func seedWaves(cfg Config, year int, rng *prng) []Wave {
	ev := *cfg.Events
	var out []Wave
	mk := func(hot bool) Wave {
		dur := ev.WaveMinDays
		if ev.WaveMaxDays > ev.WaveMinDays {
			dur += rng.Intn(ev.WaveMaxDays - ev.WaveMinDays + 1)
		}
		maxStart := cfg.DaysPerYear - dur - 1
		if maxStart < 1 {
			maxStart = 1
		}
		lat := -55 + 110*rng.Float64() // mid-latitudes and tropics
		return Wave{
			Hot:        hot,
			Year:       year,
			StartDay:   1 + rng.Intn(maxStart),
			Days:       dur,
			CenterLat:  lat,
			CenterLon:  360 * rng.Float64(),
			RadiusDeg:  10 + 10*rng.Float64(),
			AmplitudeK: ev.WaveAmplitudeK * (0.9 + 0.2*rng.Float64()),
		}
	}
	for k := 0; k < ev.HeatWavesPerYear; k++ {
		out = append(out, mk(true))
	}
	for k := 0; k < ev.ColdSpellsPerYear; k++ {
		out = append(out, mk(false))
	}
	return out
}

// basins lists TC genesis regions (lat range, lon range, name) loosely
// following observed activity.
var basins = []struct {
	name               string
	latMin, latMax     float64
	lonMin, lonMax     float64
	driftLat, driftLon float64
}{
	{"north-atlantic", 10, 20, 300, 340, 0.9, -2.4},
	{"west-pacific", 8, 18, 130, 160, 0.8, -2.0},
	{"east-pacific", 10, 16, 230, 260, 0.6, -2.2},
	{"south-indian", -18, -8, 60, 95, -0.8, -1.8},
	{"south-pacific", -18, -10, 160, 190, -0.9, -1.6},
}

// seedCyclones plans the year's TC tracks: genesis in a warm basin,
// westward + poleward drift (beta drift analogue), intensification then
// decay over a 3–6 day life, 6-hourly positions.
func seedCyclones(cfg Config, year, firstID int, rng *prng) []Cyclone {
	var out []Cyclone
	n := cfg.Events.CyclonesPerYear
	for k := 0; k < n; k++ {
		b := basins[rng.Intn(len(basins))]
		lifeDays := 3 + rng.Intn(4)
		steps := lifeDays * StepsPerDay
		maxStart := cfg.DaysPerYear - lifeDays - 1
		if maxStart < 1 {
			maxStart = 1
		}
		day0 := 1 + rng.Intn(maxStart)
		lat := b.latMin + (b.latMax-b.latMin)*rng.Float64()
		lon := b.lonMin + (b.lonMax-b.lonMin)*rng.Float64()
		peak := 2500 + 3500*rng.Float64() // 25–60 hPa deficit
		c := Cyclone{ID: firstID + k, Year: year, Basin: b.name}
		for s := 0; s < steps; s++ {
			// intensity: ramp from a non-trivial genesis strength to the
			// peak at 40% of life, then decay without fully vanishing, so
			// every active instant carries a detectable signature
			frac := float64(s) / float64(steps-1)
			var inten float64
			if frac < 0.4 {
				inten = 0.35 + 0.65*frac/0.4
			} else {
				inten = 1 - 0.65*(frac-0.4)/0.6
			}
			drop := peak * inten
			c.Track = append(c.Track, TrackPoint{
				Day:          day0 + s/StepsPerDay,
				Step:         s % StepsPerDay,
				Lat:          lat,
				Lon:          math.Mod(lon+360, 360),
				PressureDrop: drop,
				MaxWind:      15 + 45*inten,
			})
			// drift per 6 h with small jitter
			lat += b.driftLat/float64(StepsPerDay) + 0.15*rng.NormFloat64()
			lon += b.driftLon/float64(StepsPerDay) + 0.2*rng.NormFloat64()
		}
		out = append(out, c)
	}
	return out
}

// vortexRadiusDeg is the e-folding radius of the seeded vortex imprint.
const vortexRadiusDeg = 4.0

// imprintCyclone applies the storm's signature at a track point onto
// the instantaneous fields: a Gaussian sea-level-pressure depression,
// cyclonic tangential winds, a warm core at 500 hPa, heavy rain and
// matching 850 hPa vorticity.
func imprintCyclone(g grid.Grid, p TrackPoint, psl, u, v, t500, prect, vort *grid.Field) {
	southern := p.Lat < 0
	reach := int(3 * vortexRadiusDeg / g.LatStep())
	ci, cj := g.CellOf(p.Lat, p.Lon)
	for di := -reach; di <= reach; di++ {
		i := ci + di
		if i < 0 || i >= g.NLat {
			continue
		}
		for dj := -reach; dj <= reach; dj++ {
			j := ((cj+dj)%g.NLon + g.NLon) % g.NLon
			lat, lon := g.Lat(i), g.Lon(j)
			dLon := lon - p.Lon
			if dLon > 180 {
				dLon -= 360
			} else if dLon < -180 {
				dLon += 360
			}
			dLat := lat - p.Lat
			r2 := (dLat*dLat + dLon*dLon) / (vortexRadiusDeg * vortexRadiusDeg)
			if r2 > 9 {
				continue
			}
			w := math.Exp(-r2)
			idx := g.Index(i, j)
			psl.Data[idx] -= float32(p.PressureDrop * w)
			// tangential wind: v_t peaks near r = radius/sqrt(2)
			r := math.Sqrt(r2)
			vt := p.MaxWind * math.Sqrt2 * r * math.Exp(0.5-r2)
			// unit tangential direction (counter-clockwise in N hemisphere)
			if r > 1e-6 {
				tx := -dLat / (r * vortexRadiusDeg)
				ty := dLon / (r * vortexRadiusDeg)
				if southern {
					tx, ty = -tx, -ty
				}
				norm := math.Hypot(tx, ty)
				if norm > 1e-9 {
					u.Data[idx] += float32(vt * tx / norm)
					v.Data[idx] += float32(vt * ty / norm)
				}
			}
			t500.Data[idx] += float32(6 * w) // warm core
			prect.Data[idx] += float32(80 * w)
			sign := 1.0
			if southern {
				sign = -1
			}
			vort.Data[idx] += float32(sign * 3e-4 * w * (1 - r2/4))
		}
	}
}
