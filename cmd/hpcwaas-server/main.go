// Command hpcwaas-server runs the HPCWaaS REST service with the
// climate-extremes workflow pre-registered, so the whole case study is
// drivable with curl:
//
//	hpcwaas-server -addr :8700 -workers 4 -queue-depth 64 &
//	curl localhost:8700/api/workflows
//	curl -X POST localhost:8700/api/workflows/climate-extremes/deploy -d '{"target":"zeus"}'
//	curl -X POST localhost:8700/api/executions \
//	     -d '{"workflow":"climate-extremes","params":{"years":"1","days_per_year":"12"}}'
//	curl localhost:8700/api/executions/exec-1
//	curl localhost:8700/api/queue
//	curl -X DELETE localhost:8700/api/executions/exec-1
//
// Executions flow through a bounded multi-tenant queue
// (internal/execq): admission control answers 429 + Retry-After under
// overload, -journal persists queued/running work across restarts, and
// SIGINT/SIGTERM trigger a graceful drain before exit.
//
// GET /metrics serves the Prometheus text exposition of the whole
// stack — queue depth and latency histograms, per-task-kind runtime
// counters, datacube operator timings, federation transfer/breaker
// state. -debug-addr additionally serves net/http/pprof on a separate
// loopback listener for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/compss"
	"repro/internal/core"
	"repro/internal/datacube"
	"repro/internal/dls"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/hpcwaas"
	"repro/internal/imagebuilder"
	"repro/internal/multisite"
	"repro/internal/obs"
	"repro/internal/tosca"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", "127.0.0.1:8700", "listen address")
		work       = flag.String("work", "", "working directory (default: temp)")
		workers    = flag.Int("workers", 4, "execution worker-pool size")
		queueDepth = flag.Int("queue-depth", 256, "max queued executions before 429")
		quota      = flag.Int("quota", 0, "per-principal live-execution quota (0 = queue depth)")
		rate       = flag.Float64("rate", 0, "per-principal executions/sec token-bucket rate (0 = off)")
		retention  = flag.Int("retention", 1024, "completed execution records to retain")
		journal    = flag.String("journal", "", "journal file for crash recovery (default: off)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight executions on shutdown")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; default: off)")
		replicas   = flag.Int("replicas", 1, "API replicas over a shared execution store; replica i listens on the -addr port + i (1 = classic single service)")
		leaseTTL   = flag.Duration("lease-ttl", 3*time.Second, "work-lease TTL in replica mode; a dead replica's tasks are reclaimed after this")
		maxWait    = flag.Duration("max-wait", 0, "replica mode: shed submissions whose estimated queue wait exceeds this (0 = off)")
	)
	flag.Parse()

	workDir := *work
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "hpcwaas-server-")
		if err != nil {
			log.Fatal(err)
		}
	}

	// One registry carries the whole stack's instruments: execq (wired
	// by the service), plus the workflow-runtime, datacube, federation
	// and DLS families, primed here so GET /metrics shows the complete
	// surface from the first scrape.
	metrics := obs.NewRegistry()
	compss.PrimeMetrics(metrics)
	datacube.PrimeMetrics(metrics)
	multisite.PrimeMetrics(metrics)
	dls.PrimeMetrics(metrics)

	registry := hpcwaas.NewRegistry()
	if err := registry.Register(hpcwaas.Entry{
		Name:        "climate-extremes",
		Version:     "1.0",
		Description: "extreme events analysis on ESM projection data (paper case study)",
		Topology:    tosca.ClimateTopology("zeus"),
		App:         app(workDir, metrics),
	}); err != nil {
		log.Fatal(err)
	}

	if *replicas > 1 {
		runReplicated(*addr, *replicas, registry, metrics, *leaseTTL, *maxWait,
			*workers, *queueDepth, *quota, *retention, *rate, *journal, *drainWait)
		return
	}

	deployer := hpcwaas.NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"})
	catalogDir := filepath.Join(workDir, "catalog")
	os.MkdirAll(catalogDir, 0o755)
	os.WriteFile(filepath.Join(catalogDir, "climatology.nc"), []byte("20y baseline"), 0o644)
	deployer.DLS.Catalog.Register(dls.Dataset{Name: "climatology", Root: catalogDir, Files: []string{"climatology.nc"}})
	deployer.Pipelines["stage-in-climatology"] = dls.Pipeline{
		Name:  "stage-in-climatology",
		Steps: []dls.Step{{Kind: "stage_in", Dataset: "climatology", Dir: filepath.Join(workDir, "staged")}},
	}

	svc, err := hpcwaas.NewServiceWith(registry, deployer, hpcwaas.ServiceConfig{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		PerPrincipalLimit: *quota,
		RatePerSec:        *rate,
		Retention:         *retention,
		JournalPath:       *journal,
		Metrics:           metrics,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		// The pprof mux is http.DefaultServeMux (registered by the
		// net/http/pprof import); keep it on its own listener so
		// profiling endpoints never share the API's address.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("HPCWaaS service on http://%s (workdir %s, %d workers, depth %d)\n",
		*addr, workDir, *workers, *queueDepth)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	// Graceful shutdown: stop listening, drain in-flight executions,
	// then force-close whatever is left.
	log.Printf("signal received: draining (up to %s)", *drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	log.Printf("shutdown complete")
}

func app(workDir string, metrics *obs.Registry) hpcwaas.AppFunc {
	return func(params map[string]string) (map[string]string, error) {
		atoi := func(s string, def int) int {
			if n, err := strconv.Atoi(s); err == nil {
				return n
			}
			return def
		}
		outDir, err := os.MkdirTemp(workDir, "run-")
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       atoi(params["years"], 1),
			DaysPerYear: atoi(params["days_per_year"], 12),
			Seed:        int64(atoi(params["seed"], 1)),
			OutputDir:   outDir,
			Metrics:     metrics,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
			},
		})
		if err != nil {
			return nil, err
		}
		out := map[string]string{
			"years_processed": strconv.Itoa(len(res.Years)),
			"files_produced":  strconv.Itoa(res.FilesProduced),
			"final_map":       res.FinalMapPath,
			"output_dir":      outDir,
		}
		for _, yr := range res.Years {
			out[fmt.Sprintf("hw_mean_%d", yr.Year)] = fmt.Sprintf("%.4f", yr.HWNumberMean)
		}
		return out, nil
	}
}
