package execq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitStats polls until pred(Stats) holds or the deadline expires.
func waitStats(t *testing.T, q *Queue, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !pred(q.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held; stats = %+v", q.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func idle(t *testing.T, q *Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

func TestBoundedIntake(t *testing.T) {
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	block := func(ctx context.Context) error { <-gate; return nil }

	if _, err := q.Submit(Job{ID: "running", Run: block}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, q, func(s Stats) bool { return s.Running == 1 })
	for _, id := range []string{"q1", "q2"} {
		if _, err := q.Submit(Job{ID: id, Run: block}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}
	_, err = q.Submit(Job{ID: "overflow", Run: block})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if ra, ok := RetryAfter(err); !ok || ra <= 0 {
		t.Fatalf("RetryAfter = %v %v", ra, ok)
	}
	close(gate)
	idle(t, q)
	s := q.Stats()
	if s.Completed != 3 || s.RejectedFull != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPriorityFIFOOrder(t *testing.T) {
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var mu sync.Mutex
	var order []string
	record := func(id string) func(context.Context) error {
		return func(ctx context.Context) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	if _, err := q.Submit(Job{ID: "head", Run: func(ctx context.Context) error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, q, func(s Stats) bool { return s.Running == 1 })
	for _, j := range []struct {
		id  string
		pri int
	}{{"low-a", 0}, {"high-b", 5}, {"low-c", 0}, {"high-d", 5}} {
		if _, err := q.Submit(Job{ID: j.id, Priority: j.pri, Run: record(j.id)}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	idle(t, q)
	want := []string{"high-b", "high-d", "low-a", "low-c"}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	if got != strings.Join(want, ",") {
		t.Fatalf("dispatch order = %s, want %s", got, strings.Join(want, ","))
	}
}

func TestPerPrincipalQuota(t *testing.T) {
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, QueueDepth: 16, PerPrincipalLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	block := func(ctx context.Context) error { <-gate; return nil }

	for i := 0; i < 2; i++ {
		if _, err := q.Submit(Job{Principal: "alice", Run: block}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = q.Submit(Job{Principal: "alice", Run: block})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third alice job err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := q.Submit(Job{Principal: "bob", Run: block}); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	s := q.Stats()
	if s.PerPrincipal["alice"] != 2 || s.PerPrincipal["bob"] != 1 {
		t.Fatalf("per-principal = %v", s.PerPrincipal)
	}
	close(gate)
	idle(t, q)
	// quota freed: alice can submit again
	if _, err := q.Submit(Job{Principal: "alice", Run: func(ctx context.Context) error { return nil }}); err != nil {
		t.Fatalf("post-drain alice submit: %v", err)
	}
	idle(t, q)
}

func TestRateLimit(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	q, err := New(Config{Workers: 1, QueueDepth: 16, RatePerSec: 1, Burst: 2, nowFn: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	noop := func(ctx context.Context) error { return nil }

	for i := 0; i < 2; i++ {
		if _, err := q.Submit(Job{Principal: "alice", Run: noop}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err = q.Submit(Job{Principal: "alice", Run: noop})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("rate err = %v, want ErrRateLimited", err)
	}
	ra, ok := RetryAfter(err)
	if !ok || ra <= 0 || ra > time.Second+time.Millisecond {
		t.Fatalf("retry-after = %v %v", ra, ok)
	}
	// other principals have their own bucket
	if _, err := q.Submit(Job{Principal: "bob", Run: noop}); err != nil {
		t.Fatalf("bob rate limited by alice: %v", err)
	}
	// a second refills one token
	clockMu.Lock()
	now = now.Add(time.Second)
	clockMu.Unlock()
	if _, err := q.Submit(Job{Principal: "alice", Run: noop}); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
	idle(t, q)
	if s := q.Stats(); s.RejectedRate != 1 {
		t.Fatalf("rejected_rate = %d", s.RejectedRate)
	}
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	var states []State
	q, err := New(Config{
		Workers: 2, QueueDepth: 8,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1,
		OnChange: func(v JobView) {
			mu.Lock()
			states = append(states, v.State)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit(Job{ID: "flaky", Retries: 3, Run: func(ctx context.Context) error {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n < 3 {
			return fmt.Errorf("transient %d", n)
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	idle(t, q)
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	s := q.Stats()
	if s.Completed != 1 || s.Retried != 2 || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
	got := fmt.Sprint(states)
	want := fmt.Sprint([]State{StateQueued, StateRunning, StateRetrying, StateQueued,
		StateRunning, StateRetrying, StateQueued, StateRunning, StateDone})
	if got != want {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

func TestRetriesExhaustedAndPermanent(t *testing.T) {
	q, err := New(Config{Workers: 1, QueueDepth: 8, BaseBackoff: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var mu sync.Mutex
	counts := map[string]int{}
	run := func(id string, perm bool) func(context.Context) error {
		return func(ctx context.Context) error {
			mu.Lock()
			counts[id]++
			mu.Unlock()
			if perm {
				return Permanent(errors.New("bad input"))
			}
			return errors.New("always transient")
		}
	}
	if _, err := q.Submit(Job{ID: "exhaust", Retries: 2, Run: run("exhaust", false)}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Job{ID: "perm", Retries: 5, Run: run("perm", true)}); err != nil {
		t.Fatal(err)
	}
	idle(t, q)
	mu.Lock()
	defer mu.Unlock()
	if counts["exhaust"] != 3 { // initial + 2 retries
		t.Fatalf("exhaust attempts = %d", counts["exhaust"])
	}
	if counts["perm"] != 1 {
		t.Fatalf("permanent error retried: attempts = %d", counts["perm"])
	}
	if s := q.Stats(); s.Failed != 2 {
		t.Fatalf("failed = %d", s.Failed)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	terminal := map[string]State{}
	q, err := New(Config{Workers: 1, QueueDepth: 8, OnChange: func(v JobView) {
		if v.State.Terminal() {
			mu.Lock()
			terminal[v.ID] = v.State
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// running job honors its context
	if _, err := q.Submit(Job{ID: "running", Run: func(ctx context.Context) error {
		close(gate)
		<-ctx.Done()
		return ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	<-gate
	if _, err := q.Submit(Job{ID: "parked", Run: func(ctx context.Context) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := q.Cancel("parked"); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if err := q.Cancel("running"); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	idle(t, q)
	mu.Lock()
	defer mu.Unlock()
	if terminal["parked"] != StateCanceled || terminal["running"] != StateCanceled {
		t.Fatalf("terminal states = %v", terminal)
	}
	if err := q.Cancel("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("ghost cancel err = %v", err)
	}
	if s := q.Stats(); s.Canceled != 2 {
		t.Fatalf("canceled = %d", s.Canceled)
	}
}

func TestPanicIsolatedAsFailure(t *testing.T) {
	q, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit(Job{ID: "boom", Run: func(ctx context.Context) error { panic("kaboom") }}); err != nil {
		t.Fatal(err)
	}
	idle(t, q)
	if s := q.Stats(); s.Failed != 1 {
		t.Fatalf("failed = %d", s.Failed)
	}
}

func TestDuplicateAndAutoIDs(t *testing.T) {
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	block := func(ctx context.Context) error { <-gate; return nil }
	v, err := q.Submit(Job{Run: block})
	if err != nil || v.ID == "" {
		t.Fatalf("auto-id submit = %+v, %v", v, err)
	}
	if _, err := q.Submit(Job{ID: v.ID, Run: block}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate err = %v", err)
	}
	if got, ok := q.Get(v.ID); !ok || got.ID != v.ID {
		t.Fatalf("Get = %+v %v", got, ok)
	}
	close(gate)
	idle(t, q)
	if _, ok := q.Get(v.ID); ok {
		t.Fatal("terminal job still visible via Get")
	}
}

// TestJournalRecovery simulates a crash by hand-writing the journal a
// dying queue would leave behind: one job mid-run, one still queued,
// one already done, plus a torn final line.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var lines []string
	add := func(rec journalRecord) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	now := time.Now()
	payload := func(s string) json.RawMessage { return json.RawMessage(`{"task":"` + s + `"}`) }
	add(submitRecord(Job{ID: "j1", Principal: "alice", Payload: payload("one")}, now))
	add(stateRecord("j1", StateRunning, "", now))
	add(submitRecord(Job{ID: "j2", Principal: "bob", Priority: 3, Payload: payload("two")}, now))
	add(submitRecord(Job{ID: "j3", Principal: "alice", Payload: payload("three")}, now))
	add(stateRecord("j3", StateRunning, "", now))
	add(stateRecord("j3", StateDone, "", now))
	content := strings.Join(lines, "\n") + "\n" + `{"op":"submit","id":"torn`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	ran := map[string]string{}
	q, err := New(Config{
		Workers: 2, QueueDepth: 8, JournalPath: path,
		Handler: func(ctx context.Context, j JobView) error {
			var p struct {
				Task string `json:"task"`
			}
			if err := json.Unmarshal(j.Payload, &p); err != nil {
				return Permanent(err)
			}
			mu.Lock()
			ran[j.ID] = p.Task
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	idle(t, q)
	mu.Lock()
	if len(ran) != 2 || ran["j1"] != "one" || ran["j2"] != "two" {
		t.Fatalf("recovered runs = %v (want j1, j2 only)", ran)
	}
	mu.Unlock()
	if s := q.Stats(); s.Recovered != 2 || s.Completed != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// everything finished cleanly: a fresh queue recovers nothing, and
	// the compacted journal no longer mentions the done job j3.
	q2, err := New(Config{Workers: 1, QueueDepth: 8, JournalPath: path,
		Handler: func(ctx context.Context, j JobView) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if s := q2.Stats(); s.Recovered != 0 {
		t.Fatalf("second recovery = %+v", s)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "j3") {
		t.Fatalf("compacted journal still mentions finished job:\n%s", data)
	}
}

func TestJournalPersistsAcrossLiveCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, QueueDepth: 8, JournalPath: path,
		Handler: func(ctx context.Context, j JobView) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(Job{ID: fmt.Sprintf("job-%d", i), Payload: json.RawMessage(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, q, func(s Stats) bool { return s.Running == 1 })
	// "crash": abandon q without Drain/Close; replay sees all three live.
	pending, _, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 3 {
		t.Fatalf("pending after crash = %d, want 3", len(pending))
	}
	close(gate)
	q.Close()
}

func TestDrainStopsIntakeAndWaits(t *testing.T) {
	before := runtime.NumGoroutine()
	q, err := New(Config{Workers: 8, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	done := 0
	for i := 0; i < 32; i++ {
		if _, err := q.Submit(Job{Run: func(ctx context.Context) error {
			time.Sleep(time.Millisecond)
			mu.Lock()
			done++
			mu.Unlock()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mu.Lock()
	if done != 32 {
		t.Fatalf("drained with %d/32 jobs done", done)
	}
	mu.Unlock()
	if _, err := q.Submit(Job{Run: func(ctx context.Context) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// zero leaked goroutines: workers, notifier and timers all gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainTimeoutThenForceClose(t *testing.T) {
	q, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	if _, err := q.Submit(Job{ID: "stuck", Run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Canceled != 1 {
		t.Fatalf("canceled = %d", s.Canceled)
	}
	if _, err := q.Submit(Job{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit err = %v", err)
	}
}

func TestCancelRetryingJob(t *testing.T) {
	q, err := New(Config{Workers: 1, QueueDepth: 4,
		BaseBackoff: 200 * time.Millisecond, MaxBackoff: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit(Job{ID: "flaky", Retries: 5, Run: func(ctx context.Context) error {
		return errors.New("transient")
	}}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, q, func(s Stats) bool { return s.Retrying == 1 })
	if err := q.Cancel("flaky"); err != nil {
		t.Fatal(err)
	}
	idle(t, q)
	if s := q.Stats(); s.Canceled != 1 || s.Retrying != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsHistogram(t *testing.T) {
	q, err := New(Config{Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 8; i++ {
		if _, err := q.Submit(Job{Run: func(ctx context.Context) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	idle(t, q)
	s := q.Stats()
	if s.Run.Count != 8 || s.Wait.Count != 8 {
		t.Fatalf("histogram counts = run %d wait %d", s.Run.Count, s.Wait.Count)
	}
	if s.Run.MeanSeconds <= 0 || s.Run.P90Seconds <= 0 {
		t.Fatalf("run summary = %+v", s.Run)
	}
}
