# climate-eflows — build/test/experiment targets

GO ?= go

.PHONY: all check fmt-check build vet test race race-exchange race-replica race-cluster race-pyramid race-wire soak-smoke bench bench-smoke examples experiments chaos fuzz-short clean

all: build vet test

# tier-1 gate: everything a PR must keep green
check: fmt-check build vet test race soak-smoke

# gofmt gate: fails listing any file that is not gofmt-clean
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# focused race gate over the tensor-exchange handoff, weight hot-swap,
# online training and directory-watcher lifecycle — the concurrency-
# heavy paths; -count=1 defeats the test cache so CI always re-races
race-exchange:
	$(GO) test -race -count=1 -run 'Exchange|HotSwap|Online|SeededDeterminism|DirWatcher' \
		./internal/texchange/ ./internal/ml/ ./internal/core/ ./internal/stream/

# focused race gate over the replicated control plane: lease fencing,
# fair-share dispatch, shed taxonomy, replica kill/restart soak and the
# stateless HTTP frontends sharing one store
race-replica:
	$(GO) test -race -count=1 -run 'Lease|Fenc|Reclaim|Shed|FairShare|Starvation|WeightedShares|IdleTenant|Replica|Frontend|Journal' \
		./internal/execstore/ ./internal/hpcwaas/

# focused race gate over the sharded datacube cluster and its wire
# protocol: scatter/gather equivalence, replica kill mid-pipeline,
# heal/resync, typed wire errors, client poisoning, half-open breaker
race-cluster:
	$(GO) test -race -count=1 -run 'Cluster|Shard|Failover|Heal|WireError|Poison|Broken|ProtocolGarbage|HalfOpen|PlanReuse|Partial' \
		./internal/cubecluster/ ./internal/cubeserver/ ./internal/datacube/ ./internal/multisite/

# focused race gate over the resolution pyramid and its consumers: lazy
# tier builds under concurrent readers, tolerance-aware coarse-first
# plans, byte-budget demotion/re-promotion racing data ops, cluster
# tolerance equivalence
race-pyramid:
	$(GO) test -race -count=1 -run 'Pyramid|Tier|Toleran|Demot|Promot|Resident|Prescreen|Adopt|Interval' \
		./internal/datacube/ ./internal/cubeserver/ ./internal/cubecluster/ ./internal/indices/ ./internal/tctrack/

# focused race gate over the v2 wire layer: codec round-trip/parity,
# multiplexed concurrent clients, connection pooling and failover,
# protocol negotiation and mixed-version interop, idle/write deadlines,
# poisoning semantics under concurrent Close
race-wire:
	$(GO) test -race -count=1 -run 'Wire|Mux|Interop|Frame|Pool|Timeout|Idle|Codec|Negotiat|Broken|Poison|CloseConcurrent' \
		./internal/cubeserver/ ./internal/cubecluster/

# short-mode replica soak in the tier-1 gate: one kill/reclaim cycle,
# exactly-once and byte-identical outputs still asserted
soak-smoke:
	$(GO) test -race -count=1 -short -run 'TestReplicaSoakKillRestart' ./internal/execstore/

# one benchmark per reproduced figure/claim (see EXPERIMENTS.md)
bench:
	$(GO) test -bench=. -benchmem .

# CI smoke: every benchmark runs once so the harnesses can't rot; no
# timing claims, just "still compiles and executes"
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

# runnable demonstrations of the public API
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heatwaves
	$(GO) run ./examples/cyclonetracking
	$(GO) run ./examples/hpcwaas
	$(GO) run ./examples/ensemble

# experiment drivers printing the paper-shape series
experiments:
	$(GO) run ./cmd/wfbench -exp all
	$(GO) run ./cmd/tcexperiment

# opt-in robustness soak: deterministic fault-injection suites under the
# race detector, then the end-to-end crash/resume driver (see DESIGN.md
# "Failure model & recovery")
chaos:
	$(GO) test -race -run 'Chaos|Injected|Retry|Timeout|Breaker|Corrupt|Torn' ./internal/chaos/ ./internal/compss/ ./internal/dls/ ./internal/multisite/ ./internal/execq/ ./internal/execstore/ ./internal/core/
	$(GO) run ./cmd/chaosrun
	$(GO) run ./cmd/chaosrun -mode replica

# opt-in short fuzz pass over the binary-format parsers and the
# tiered-plan equivalence harness
fuzz-short:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s -run=FuzzRead ./internal/ncdf/
	$(GO) test -fuzz=FuzzCompile -fuzztime=10s -run=FuzzCompile ./internal/datacube/
	$(GO) test -fuzz=FuzzPlan -fuzztime=10s -run=FuzzPlan ./internal/datacube/
	$(GO) test -fuzz=FuzzWireFrame -fuzztime=10s -run=FuzzWireFrame ./internal/cubeserver/

clean:
	$(GO) clean ./...
