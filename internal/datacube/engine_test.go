package datacube

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ncdf"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Config{Servers: 3, FragmentsPerCube: 5})
	t.Cleanup(e.Close)
	return e
}

// seqCube builds a cube whose value at (row, t) is row*100 + t.
func seqCube(t *testing.T, e *Engine, rows, n int) *Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("seq",
		[]Dimension{{Name: "cell", Size: rows}},
		Dimension{Name: "time", Size: n},
		func(row, tt int) float32 { return float32(row*100 + tt) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCubeFromFuncShape(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 7, 4)
	if c.Rows() != 7 || c.ImplicitLen() != 4 {
		t.Fatalf("shape = %dx%d", c.Rows(), c.ImplicitLen())
	}
	if c.Fragments() != 5 {
		t.Fatalf("fragments = %d, want 5", c.Fragments())
	}
	row, err := c.Row(3)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 300 || row[3] != 303 {
		t.Fatalf("row 3 = %v", row)
	}
	if _, err := c.Row(9); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestNewCubeValidation(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.NewCubeFromFunc("m", nil, Dimension{Name: "t", Size: 0}, nil); err == nil {
		t.Fatal("zero implicit accepted")
	}
	if _, err := e.NewCubeFromFunc("m", []Dimension{{Name: "x", Size: -1}}, Dimension{Name: "t", Size: 1}, nil); err == nil {
		t.Fatal("negative explicit accepted")
	}
}

func TestEngineRegistryLifecycle(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 2, 2)
	if got, err := e.Get(c.ID()); err != nil || got != c {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if ids := e.List(); len(ids) != 1 || ids[0] != c.ID() {
		t.Fatalf("List = %v", ids)
	}
	if e.MemoryBytes() != 2*2*4 {
		t.Fatalf("MemoryBytes = %d", e.MemoryBytes())
	}
	if err := c.Delete(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(c.ID()); err == nil {
		t.Fatal("deleted cube still resolvable")
	}
	if err := e.Delete(c.ID()); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestApplyExpression(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 3, 3)
	out, err := c.Apply("x*2+1")
	if err != nil {
		t.Fatal(err)
	}
	row, _ := out.Row(1)
	if row[0] != 201 || row[2] != 205 {
		t.Fatalf("applied row = %v", row)
	}
	if _, err := c.Apply("((("); err == nil {
		t.Fatal("bad expression accepted")
	}
}

func TestApplyPredicateMask(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 2, 4)
	mask, err := c.Apply("x>101 ? 1 : 0")
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := mask.Row(0) // values 0..3: none >101
	r1, _ := mask.Row(1) // values 100..103: two >101
	if sum32(r0) != 0 || sum32(r1) != 2 {
		t.Fatalf("mask rows = %v %v", r0, r1)
	}
}

func sum32(xs []float32) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s
}

func TestReduceOps(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 2, 4)
	max, err := c.Reduce("max")
	if err != nil {
		t.Fatal(err)
	}
	if max.ImplicitLen() != 1 {
		t.Fatalf("reduced len = %d", max.ImplicitLen())
	}
	r, _ := max.Row(1)
	if r[0] != 103 {
		t.Fatalf("max = %v", r)
	}
	if _, err := c.Reduce("nosuchop"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestReduceGroupDailyMax(t *testing.T) {
	e := newTestEngine(t)
	// 8 values = 2 days × 4 six-hourly steps
	c, _ := e.NewCubeFromFunc("t",
		[]Dimension{{Name: "cell", Size: 1}},
		Dimension{Name: "time", Size: 8},
		func(_, tt int) float32 { return float32(tt % 5) })
	daily, err := c.ReduceGroup("max", 4)
	if err != nil {
		t.Fatal(err)
	}
	if daily.ImplicitLen() != 2 {
		t.Fatalf("daily len = %d", daily.ImplicitLen())
	}
	r, _ := daily.Row(0)
	if r[0] != 3 || r[1] != 4 { // steps 0..3 -> max 3; steps 4..7 -> values 4,0,1,2 -> 4
		t.Fatalf("daily maxima = %v", r)
	}
	if _, err := c.ReduceGroup("max", 3); err == nil {
		t.Fatal("non-dividing group accepted")
	}
	if _, err := c.ReduceGroup("max", 0); err == nil {
		t.Fatal("zero group accepted")
	}
}

func TestSubsetImplicit(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 2, 6)
	s, err := c.Subset(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Row(1)
	if len(r) != 3 || r[0] != 102 || r[2] != 104 {
		t.Fatalf("subset row = %v", r)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 7}, {3, 3}, {5, 2}} {
		if _, err := c.Subset(bad[0], bad[1]); err == nil {
			t.Fatalf("bad subset %v accepted", bad)
		}
	}
}

func TestSubsetRows(t *testing.T) {
	e := newTestEngine(t)
	c, _ := e.NewCubeFromFunc("m",
		[]Dimension{{Name: "lat", Size: 4}, {Name: "lon", Size: 3}},
		Dimension{Name: "time", Size: 2},
		func(row, tt int) float32 { return float32(row*10 + tt) })
	s, err := c.SubsetRows(1, 3) // lat rows 1..2 → rows 3..8
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 6 {
		t.Fatalf("rows = %d", s.Rows())
	}
	r, _ := s.Row(0)
	if r[0] != 30 {
		t.Fatalf("first row = %v", r)
	}
	dims := s.ExplicitDims()
	if dims[0].Size != 2 || dims[1].Size != 3 {
		t.Fatalf("dims = %v", dims)
	}
	if _, err := c.SubsetRows(3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestIntercubeOps(t *testing.T) {
	e := newTestEngine(t)
	a := seqCube(t, e, 2, 3)
	b, _ := a.Apply("x*0+2") // constant 2
	sub, err := a.Intercube(b, "sub")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sub.Row(0)
	if r[0] != -2 || r[2] != 0 {
		t.Fatalf("sub = %v", r)
	}
	add, _ := a.Intercube(b, "add")
	r, _ = add.Row(0)
	if r[0] != 2 {
		t.Fatalf("add = %v", r)
	}
	mul, _ := a.Intercube(b, "mul")
	r, _ = mul.Row(0)
	if r[1] != 2 {
		t.Fatalf("mul = %v", r)
	}
	div, _ := b.Intercube(b, "div")
	r, _ = div.Row(0)
	if r[0] != 1 {
		t.Fatalf("div = %v", r)
	}
	if _, err := a.Intercube(b, "mod"); err == nil {
		t.Fatal("unknown op accepted")
	}
	tiny := seqCube(t, e, 1, 3)
	if _, err := a.Intercube(tiny, "add"); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestAggregateRows(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 3, 2) // rows 0,100,200 at t=0
	agg, err := c.AggregateRows("avg")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rows() != 1 {
		t.Fatalf("agg rows = %d", agg.Rows())
	}
	r, _ := agg.Row(0)
	if r[0] != 100 || r[1] != 101 {
		t.Fatalf("agg = %v", r)
	}
	if _, err := c.AggregateRows("nope"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestAggregateTrailingZonalMeans(t *testing.T) {
	e := newTestEngine(t)
	// (lat=3, lon=4) cube, value = lat*10 + lon + t
	c, err := e.NewCubeFromFunc("T",
		[]Dimension{{Name: "lat", Size: 3}, {Name: "lon", Size: 4}},
		Dimension{Name: "time", Size: 2},
		func(row, tt int) float32 {
			lat, lon := row/4, row%4
			return float32(lat*10 + lon + tt)
		})
	if err != nil {
		t.Fatal(err)
	}
	zonal, err := c.AggregateTrailing("avg")
	if err != nil {
		t.Fatal(err)
	}
	if zonal.Rows() != 3 || zonal.ImplicitLen() != 2 {
		t.Fatalf("zonal shape = %dx%d", zonal.Rows(), zonal.ImplicitLen())
	}
	dims := zonal.ExplicitDims()
	if len(dims) != 1 || dims[0].Name != "lat" {
		t.Fatalf("zonal dims = %v", dims)
	}
	// zonal mean at lat 1, t 0: mean(10,11,12,13) = 11.5
	row, _ := zonal.Row(1)
	if row[0] != 11.5 || row[1] != 12.5 {
		t.Fatalf("zonal row 1 = %v", row)
	}
	zmax, err := c.AggregateTrailing("max")
	if err != nil {
		t.Fatal(err)
	}
	rmax, _ := zmax.Row(2)
	if rmax[0] != 23 { // lat2: max(20..23)
		t.Fatalf("zonal max = %v", rmax)
	}
	// single explicit dim rejected
	flat, _ := e.NewCubeFromFunc("x",
		[]Dimension{{Name: "cell", Size: 4}},
		Dimension{Name: "t", Size: 1},
		func(int, int) float32 { return 0 })
	if _, err := flat.AggregateTrailing("avg"); err == nil {
		t.Fatal("1-D explicit cube accepted")
	}
	if _, err := c.AggregateTrailing("nosuch"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestScalar(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 3, 2)
	if _, err := c.Scalar(); err == nil {
		t.Fatal("non-scalar cube accepted")
	}
	agg, _ := c.AggregateRows("avg")
	red, _ := agg.Reduce("avg")
	v, err := red.Scalar()
	if err != nil || v != 100.5 {
		t.Fatalf("scalar = %v, %v", v, err)
	}
}

func TestImportDatasetTransposesTimeMajor(t *testing.T) {
	e := newTestEngine(t)
	ds := ncdf.NewDataset()
	ds.AddDim("time", 2)
	ds.AddDim("lat", 2)
	ds.AddDim("lon", 3)
	// value = t*100 + cell
	data := make([]float32, 2*2*3)
	for tt := 0; tt < 2; tt++ {
		for cell := 0; cell < 6; cell++ {
			data[tt*6+cell] = float32(tt*100 + cell)
		}
	}
	ds.AddVar("TREFHT", []string{"time", "lat", "lon"}, data)
	c, err := e.ImportDataset(ds, "TREFHT", "time")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 6 || c.ImplicitLen() != 2 {
		t.Fatalf("shape = %dx%d", c.Rows(), c.ImplicitLen())
	}
	r, _ := c.Row(4)
	if r[0] != 4 || r[1] != 104 {
		t.Fatalf("row 4 = %v (transpose broken)", r)
	}
	dims := c.ExplicitDims()
	if dims[0].Name != "lat" || dims[1].Name != "lon" {
		t.Fatalf("explicit dims = %v", dims)
	}
	if _, err := e.ImportDataset(ds, "TREFHT", "depth"); err == nil {
		t.Fatal("missing implicit dim accepted")
	}
	if _, err := e.ImportDataset(ds, "GHOST", "time"); err == nil {
		t.Fatal("missing variable accepted")
	}
}

func writeDayFile(t *testing.T, dir string, day int, value float32) string {
	t.Helper()
	ds := ncdf.NewDataset()
	ds.AddDim("time", 2)
	ds.AddDim("lat", 2)
	ds.AddDim("lon", 2)
	data := make([]float32, 8)
	for i := range data {
		data[i] = value + float32(i)
	}
	ds.AddVar("T", []string{"time", "lat", "lon"}, data)
	path := filepath.Join(dir, "day"+string(rune('0'+day))+".nc")
	if err := ncdf.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImportFilesConcatenates(t *testing.T) {
	e := newTestEngine(t)
	dir := t.TempDir()
	p1 := writeDayFile(t, dir, 1, 0)
	p2 := writeDayFile(t, dir, 2, 100)
	c, err := e.ImportFiles([]string{p1, p2}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 4 || c.ImplicitLen() != 4 {
		t.Fatalf("shape = %dx%d", c.Rows(), c.ImplicitLen())
	}
	r, _ := c.Row(0)
	// day1: t0 cell0 = 0, t1 cell0 = 4; day2: 100, 104
	want := []float32{0, 4, 100, 104}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("row 0 = %v, want %v", r, want)
		}
	}
	// temporary per-file cubes are cleaned up: only the result remains
	if ids := e.List(); len(ids) != 1 {
		t.Fatalf("resident cubes = %v", ids)
	}
	st := e.Stats()
	if st.FileReads != 2 {
		t.Fatalf("FileReads = %d, want 2", st.FileReads)
	}
	if _, err := e.ImportFiles(nil, "T", "time"); err == nil {
		t.Fatal("empty import accepted")
	}
	if _, err := e.ImportFiles([]string{filepath.Join(dir, "none.nc")}, "T", "time"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestConcatValidation(t *testing.T) {
	e := newTestEngine(t)
	a := seqCube(t, e, 2, 2)
	b := seqCube(t, e, 3, 2)
	if _, err := e.Concat([]*Cube{a, b}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := e.Concat(nil); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestExportNCRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	c, _ := e.NewCubeFromFunc("HWD",
		[]Dimension{{Name: "lat", Size: 2}, {Name: "lon", Size: 3}},
		Dimension{Name: "time", Size: 1},
		func(row, _ int) float32 { return float32(row) })
	c.SetMeta("index", "heat_wave_duration")
	path := filepath.Join(t.TempDir(), "out.nc")
	if err := c.ExportFile(path); err != nil {
		t.Fatal(err)
	}
	ds, err := ncdf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds.Var("HWD")
	if err != nil {
		t.Fatal(err)
	}
	// implicit size 1: exported dims are just lat, lon
	if len(v.Dims) != 2 || v.Dims[0] != "lat" {
		t.Fatalf("dims = %v", v.Dims)
	}
	if v.Data[5] != 5 {
		t.Fatalf("data = %v", v.Data)
	}
	if ds.Attrs["index"].S != "heat_wave_duration" {
		t.Fatalf("meta attr lost: %+v", ds.Attrs)
	}
	if !strings.HasPrefix(ds.Attrs["cube_id"].S, "cube-") {
		t.Fatalf("cube_id attr = %+v", ds.Attrs["cube_id"])
	}
}

func TestMetadata(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 1, 1)
	if _, ok := c.Meta("k"); ok {
		t.Fatal("phantom meta")
	}
	c.SetMeta("k", "v")
	if v, ok := c.Meta("k"); !ok || v != "v" {
		t.Fatal("meta roundtrip failed")
	}
	if c.Measure() != "seq" || c.Description() == "" {
		t.Fatalf("measure/desc = %q %q", c.Measure(), c.Description())
	}
}

func TestStatsProgression(t *testing.T) {
	e := newTestEngine(t)
	c := seqCube(t, e, 4, 4)
	before := e.Stats()
	if _, err := c.Apply("x+1"); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Ops != before.Ops+1 {
		t.Fatalf("ops %d -> %d", before.Ops, after.Ops)
	}
	if after.CellsProcessed <= before.CellsProcessed {
		t.Fatal("cells not counted")
	}
	if after.FragmentTasks <= before.FragmentTasks {
		t.Fatal("fragment tasks not counted")
	}
}

func TestEngineServersParallelismConfig(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	if e.Servers() != 4 {
		t.Fatalf("default servers = %d", e.Servers())
	}
	e.Close() // idempotent
}

func TestFragmentationNeverExceedsRows(t *testing.T) {
	e := NewEngine(Config{Servers: 2, FragmentsPerCube: 50})
	defer e.Close()
	c, err := e.NewCubeFromFunc("m", []Dimension{{Name: "r", Size: 3}},
		Dimension{Name: "t", Size: 1}, func(int, int) float32 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if c.Fragments() != 3 {
		t.Fatalf("fragments = %d, want 3", c.Fragments())
	}
}

// Property: Apply then Reduce(sum) equals the direct sum of the
// transformed values, regardless of fragmentation and server count.
func TestFragmentationInvarianceProperty(t *testing.T) {
	f := func(rows, n, servers, frags uint8) bool {
		r := int(rows%6) + 1
		m := int(n%6) + 1
		e := NewEngine(Config{Servers: int(servers%4) + 1, FragmentsPerCube: int(frags%8) + 1})
		defer e.Close()
		c, err := e.NewCubeFromFunc("m", []Dimension{{Name: "r", Size: r}},
			Dimension{Name: "t", Size: m},
			func(row, tt int) float32 { return float32(row + tt) })
		if err != nil {
			return false
		}
		doubled, err := c.Apply("x*2")
		if err != nil {
			return false
		}
		sums, err := doubled.Reduce("sum")
		if err != nil {
			return false
		}
		for row := 0; row < r; row++ {
			want := 0
			for tt := 0; tt < m; tt++ {
				want += 2 * (row + tt)
			}
			got, _ := sums.Row(row)
			if float64(got[0]) != float64(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
