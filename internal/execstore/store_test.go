package execstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// fakeClock is a mutex-guarded settable clock for deterministic lease
// and backoff tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustSubmit(t *testing.T, s *Store, task Task) TaskView {
	t.Helper()
	v, err := s.Submit(task)
	if err != nil {
		t.Fatalf("Submit(%s): %v", task.ID, err)
	}
	return v
}

func TestLeaseFencingExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{LeaseTTL: time.Second, nowFn: clk.now})
	mustSubmit(t, s, Task{ID: "a", Tenant: "x"})

	l1 := s.TryAcquire("rep-1", 1)
	if len(l1) != 1 || l1[0].TaskID != "a" {
		t.Fatalf("TryAcquire: %+v", l1)
	}
	if v, _ := s.Get("a"); v.State != StateLeased || v.Holder != "rep-1" {
		t.Fatalf("state after acquire: %+v", v)
	}

	// rep-1 crashes: the lease expires and the task is reclaimed once.
	clk.advance(1100 * time.Millisecond)
	s.Sweep()
	if v, _ := s.Get("a"); v.State != StatePending {
		t.Fatalf("state after expiry: %+v", v)
	}
	if got := s.Stats().Reclaimed; got != 1 {
		t.Fatalf("Reclaimed = %d, want 1", got)
	}

	l2 := s.TryAcquire("rep-2", 1)
	if len(l2) != 1 {
		t.Fatalf("reacquire: %+v", l2)
	}
	if l2[0].Epoch <= l1[0].Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", l1[0].Epoch, l2[0].Epoch)
	}

	// The dead holder's completion must be fenced out...
	if err := s.Complete(l1[0], json.RawMessage(`"stale"`)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale Complete: %v, want ErrFenced", err)
	}
	// ...while the live holder's lands exactly once.
	if err := s.Complete(l2[0], json.RawMessage(`"good"`)); err != nil {
		t.Fatalf("live Complete: %v", err)
	}
	if err := s.Complete(l2[0], json.RawMessage(`"again"`)); !errors.Is(err, ErrFenced) {
		t.Fatalf("double Complete: %v, want ErrFenced", err)
	}

	v, _ := s.Get("a")
	if v.State != StateDone || string(v.Output) != `"good"` {
		t.Fatalf("final state: %+v", v)
	}
	st := s.Stats()
	if st.Completed != 1 || st.Fenced < 2 {
		t.Fatalf("stats: completed=%d fenced=%d", st.Completed, st.Fenced)
	}
}

func TestRenewKeepsLeaseAlive(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{LeaseTTL: time.Second, nowFn: clk.now})
	mustSubmit(t, s, Task{ID: "a", Tenant: "x"})
	l := s.TryAcquire("rep-1", 1)

	for i := 0; i < 5; i++ {
		clk.advance(900 * time.Millisecond)
		held, _ := s.Renew("rep-1")
		if len(held) != 1 {
			t.Fatalf("renew %d: held=%v", i, held)
		}
		s.Sweep()
	}
	if v, _ := s.Get("a"); v.State != StateLeased {
		t.Fatalf("lease lost despite renewals: %+v", v)
	}
	if err := s.Complete(l[0], nil); err != nil {
		t.Fatalf("Complete after renewals: %v", err)
	}
}

func TestReclaimDoesNotBurnRetryBudget(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{LeaseTTL: time.Second, nowFn: clk.now})
	mustSubmit(t, s, Task{ID: "a", Tenant: "x", Retries: 0})

	// Three consecutive holder crashes: still re-queued, not FAILED.
	var last Lease
	for i := 0; i < 3; i++ {
		ls := s.TryAcquire(fmt.Sprintf("rep-%d", i), 1)
		if len(ls) != 1 {
			t.Fatalf("acquire %d failed", i)
		}
		last = ls[0]
		clk.advance(1100 * time.Millisecond)
		s.Sweep()
	}
	if v, _ := s.Get("a"); v.State != StatePending {
		t.Fatalf("after 3 reclaims: %+v", v)
	}
	// A real (transient) failure with zero budget does finalize.
	ls := s.TryAcquire("rep-9", 1)
	if err := s.Fail(ls[0], errors.New("boom")); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if v, _ := s.Get("a"); v.State != StateFailed {
		t.Fatalf("after failure: %+v", v)
	}
	_ = last
}

func TestRetryBackoffGatesDispatch(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{LeaseTTL: time.Minute, BaseBackoff: 100 * time.Millisecond, nowFn: clk.now})
	mustSubmit(t, s, Task{ID: "a", Tenant: "x", Retries: 2})

	l := s.TryAcquire("rep-1", 1)
	if err := s.Fail(l[0], errors.New("transient")); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if v, _ := s.Get("a"); v.State != StatePending {
		t.Fatalf("not re-queued: %+v", v)
	}
	if got := s.TryAcquire("rep-1", 1); len(got) != 0 {
		t.Fatalf("dispatched inside backoff window: %+v", got)
	}
	clk.advance(150 * time.Millisecond)
	got := s.TryAcquire("rep-1", 1)
	if len(got) != 1 {
		t.Fatal("not dispatched after backoff elapsed")
	}
	if got[0].Task.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", got[0].Task.Attempt)
	}
	// Permanent failures skip the remaining budget.
	if err := s.Fail(got[0], chaos.Permanent(errors.New("bad input"))); err != nil {
		t.Fatalf("Fail permanent: %v", err)
	}
	if v, _ := s.Get("a"); v.State != StateFailed {
		t.Fatalf("permanent failure not terminal: %+v", v)
	}
}

func TestCancelSemantics(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{LeaseTTL: time.Minute, nowFn: clk.now})

	// Pending: cancels immediately.
	mustSubmit(t, s, Task{ID: "p", Tenant: "x"})
	if err := s.Cancel("p"); err != nil {
		t.Fatalf("Cancel pending: %v", err)
	}
	if v, _ := s.Get("p"); v.State != StateCanceled {
		t.Fatalf("pending cancel: %+v", v)
	}

	// Leased: flagged, surfaced via Renew, finalized by the holder.
	mustSubmit(t, s, Task{ID: "l", Tenant: "x"})
	ls := s.TryAcquire("rep-1", 1)
	if err := s.Cancel("l"); err != nil {
		t.Fatalf("Cancel leased: %v", err)
	}
	if v, _ := s.Get("l"); v.State != StateLeased {
		t.Fatalf("leased cancel should defer to holder: %+v", v)
	}
	_, canceled := s.Renew("rep-1")
	if len(canceled) != 1 || canceled[0] != "l" {
		t.Fatalf("Renew canceled list: %v", canceled)
	}
	if err := s.Fail(ls[0], context.Canceled); err != nil {
		t.Fatalf("Fail canceled: %v", err)
	}
	if v, _ := s.Get("l"); v.State != StateCanceled {
		t.Fatalf("leased cancel final: %+v", v)
	}

	// Terminal: rejected.
	if err := s.Cancel("l"); !errors.Is(err, ErrTerminal) {
		t.Fatalf("Cancel terminal: %v, want ErrTerminal", err)
	}
	if err := s.Cancel("nope"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Cancel unknown: %v, want ErrUnknownTask", err)
	}
}

func TestShedTaxonomy(t *testing.T) {
	clk := newFakeClock()

	t.Run("depth", func(t *testing.T) {
		s := openStore(t, Config{MaxPending: 2, nowFn: clk.now})
		mustSubmit(t, s, Task{Tenant: "x"})
		mustSubmit(t, s, Task{Tenant: "x"})
		_, err := s.Submit(Task{Tenant: "x"})
		se, ok := AsShed(err)
		if !ok || se.Reason != ShedDepth {
			t.Fatalf("err = %v, want depth shed", err)
		}
		if se.TenantCaused() {
			t.Fatal("depth shed must map to 503, not 429")
		}
		if se.RetryAfter <= 0 {
			t.Fatalf("RetryAfter = %v", se.RetryAfter)
		}
	})

	t.Run("tenant-quota", func(t *testing.T) {
		s := openStore(t, Config{PerTenantLimit: 1, nowFn: clk.now})
		mustSubmit(t, s, Task{Tenant: "x"})
		_, err := s.Submit(Task{Tenant: "x"})
		se, ok := AsShed(err)
		if !ok || se.Reason != ShedTenantQuota || !se.TenantCaused() {
			t.Fatalf("err = %v, want tenant-quota shed (429)", err)
		}
		// Another tenant is unaffected.
		mustSubmit(t, s, Task{Tenant: "y"})
	})

	t.Run("tenant-rate", func(t *testing.T) {
		s := openStore(t, Config{RatePerSec: 2, Burst: 1, nowFn: clk.now})
		mustSubmit(t, s, Task{Tenant: "x"})
		_, err := s.Submit(Task{Tenant: "x"})
		se, ok := AsShed(err)
		if !ok || se.Reason != ShedTenantRate || !se.TenantCaused() {
			t.Fatalf("err = %v, want tenant-rate shed (429)", err)
		}
		// Sleeping exactly RetryAfter must admit (fake clock: advance).
		clk.advance(se.RetryAfter)
		mustSubmit(t, s, Task{Tenant: "x"})
	})

	t.Run("backlog-cost", func(t *testing.T) {
		s := openStore(t, Config{
			DefaultCostSeconds: 10, // every task "costs" 10s
			MaxEstimatedWait:   25 * time.Second,
			nowFn:              clk.now,
		})
		// One implicit replica slot: 2 tasks = 20s backlog admits, the
		// third projects 30s > 25s and sheds.
		mustSubmit(t, s, Task{Tenant: "x", Kind: "sim"})
		mustSubmit(t, s, Task{Tenant: "x", Kind: "sim"})
		_, err := s.Submit(Task{Tenant: "x", Kind: "sim"})
		se, ok := AsShed(err)
		if !ok || se.Reason != ShedBacklogCost {
			t.Fatalf("err = %v, want backlog-cost shed", err)
		}
		if se.TenantCaused() {
			t.Fatal("backlog shed must map to 503")
		}
		if se.EstimatedWait <= 25*time.Second {
			t.Fatalf("EstimatedWait = %v, want > MaxEstimatedWait", se.EstimatedWait)
		}
		// Registering more capacity re-opens admission: 4 slots bring
		// the projected wait under the bound.
		s.RegisterReplica("rep-1", 4)
		mustSubmit(t, s, Task{Tenant: "x", Kind: "sim"})
	})

	t.Run("draining", func(t *testing.T) {
		s := openStore(t, Config{nowFn: clk.now})
		s.Drain()
		_, err := s.Submit(Task{Tenant: "x"})
		se, ok := AsShed(err)
		if !ok || se.Reason != ShedDraining || se.TenantCaused() {
			t.Fatalf("err = %v, want draining shed (503)", err)
		}
	})
}

func TestCostModelLearnsFromRuns(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{DefaultCostSeconds: 1, LeaseTTL: time.Minute, nowFn: clk.now})

	// Run 20 tasks of kind "slow" that take 5s each: the model's
	// estimate should move from the 1s prior toward 5s.
	for i := 0; i < 20; i++ {
		mustSubmit(t, s, Task{ID: fmt.Sprintf("s%d", i), Tenant: "x", Kind: "slow"})
		l := s.TryAcquire("rep", 1)
		clk.advance(5 * time.Second)
		if err := s.Complete(l[0], nil); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	if est := s.cost.estimate("slow"); est < 4 || est > 5.01 {
		t.Fatalf("estimate(slow) = %.2f, want ~5s", est)
	}
	if est := s.cost.estimate("fresh"); est > 4 {
		t.Fatalf("estimate(fresh) = %.2f, should stay near global mean blend", est)
	}
	if u := s.cost.normalized("slow"); u <= s.cost.normalized("cheap-unknown") {
		t.Fatal("slow kind should cost more DRR units than an unknown kind")
	}
}

func TestJournalRecoveryResumesEpochAndPending(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.journal")
	clk := newFakeClock()

	s, err := Open(Config{JournalPath: path, LeaseTTL: time.Minute, nowFn: clk.now})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustSubmit(t, s, Task{Tenant: "x", Kind: "k", Payload: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))})
	}
	// Complete two (terminal records carry their epochs), lease one and
	// "crash" with it held.
	ls := s.TryAcquire("rep", 3)
	if err := s.Complete(ls[0], json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(ls[1], json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	lastEpoch := ls[2].Epoch
	s.Close() // close ≠ completing: task 3 was still leased, 4-5 pending

	// Corrupt the journal with a torn line to exercise the skip path.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"state","id":"task-1","sta`)
	f.Close()

	s2 := openStore(t, Config{JournalPath: path, LeaseTTL: time.Minute, nowFn: clk.now})
	st := s2.Stats()
	if st.Recovered != 3 {
		t.Fatalf("Recovered = %d, want 3 (1 leased-at-crash + 2 pending)", st.Recovered)
	}
	if st.JournalSkipped != 1 {
		t.Fatalf("JournalSkipped = %d, want 1", st.JournalSkipped)
	}
	if st.Epoch < lastEpoch {
		t.Fatalf("epoch fence regressed: %d < %d", st.Epoch, lastEpoch)
	}
	// The two completed tasks must NOT come back.
	for _, id := range []string{"task-1", "task-2"} {
		if _, ok := s2.Get(id); ok {
			t.Fatalf("completed task %s resurrected", id)
		}
	}
	// A new auto-ID submission must not collide with recovered IDs.
	v := mustSubmit(t, s2, Task{Tenant: "x"})
	if v.ID == "task-1" || v.ID == "task-2" || v.ID == "task-3" || v.ID == "task-4" || v.ID == "task-5" {
		t.Fatalf("auto-ID collided with recovered ID: %s", v.ID)
	}
	// Recovered leases restart cleanly behind the fence.
	got := s2.TryAcquire("rep2", 10)
	if len(got) != 4 {
		t.Fatalf("reacquire: %d leases, want 4", len(got))
	}
	for _, l := range got {
		if l.Epoch <= lastEpoch {
			t.Fatalf("recovered lease epoch %d not past pre-crash fence %d", l.Epoch, lastEpoch)
		}
	}
}

func TestJournalCompactionBoundsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.journal")
	clk := newFakeClock()
	const maxBytes = 2048

	s := openStore(t, Config{
		JournalPath:     path,
		JournalMaxBytes: maxBytes,
		LeaseTTL:        time.Minute,
		nowFn:           clk.now,
	})
	payload := json.RawMessage(`{"pad":"` + strings.Repeat("x", 64) + `"}`)
	for i := 0; i < 400; i++ {
		mustSubmit(t, s, Task{Tenant: "x", Kind: "k", Payload: payload})
		l := s.TryAcquire("rep", 1)
		if err := s.Complete(l[0], nil); err != nil {
			t.Fatalf("Complete %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.JournalCompactions == 0 {
		t.Fatal("churn never triggered a compaction")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Live set is ~empty, so the floor never inflates the threshold:
	// the file may overshoot by at most one pre-compaction burst.
	if fi.Size() > 3*maxBytes {
		t.Fatalf("journal grew to %d bytes despite compaction (bound %d)", fi.Size(), 3*maxBytes)
	}
}

func TestChaosLeaseSite(t *testing.T) {
	clk := newFakeClock()

	t.Run("transient force-expires", func(t *testing.T) {
		inj := chaos.NewSeeded(1, chaos.Rule{
			Site: chaos.SiteLease, Op: "rep-skewed", Attempt: -1, Kind: chaos.Transient, Prob: 1,
		})
		s := openStore(t, Config{LeaseTTL: time.Hour, Injector: inj, nowFn: clk.now})
		mustSubmit(t, s, Task{ID: "a", Tenant: "x"})
		l := s.TryAcquire("rep-skewed", 1)
		s.Sweep() // injector fires: lease revoked despite the 1h TTL
		if v, _ := s.Get("a"); v.State != StatePending {
			t.Fatalf("chaos did not force-expire: %+v", v)
		}
		if err := s.Complete(l[0], nil); !errors.Is(err, ErrFenced) {
			t.Fatalf("skewed holder not fenced: %v", err)
		}
	})

	t.Run("latency extends deadline", func(t *testing.T) {
		inj := chaos.NewSeeded(1, chaos.Rule{
			Site: chaos.SiteLease, Op: "rep-fast", Attempt: -1, Kind: chaos.Latency, Prob: 1,
			Delay: time.Hour,
		})
		s := openStore(t, Config{LeaseTTL: time.Second, Injector: inj, nowFn: clk.now})
		mustSubmit(t, s, Task{ID: "a", Tenant: "x"})
		l := s.TryAcquire("rep-fast", 1)
		clk.advance(10 * time.Second) // well past the nominal TTL
		s.Sweep()
		if v, _ := s.Get("a"); v.State != StateLeased {
			t.Fatalf("latency fault should have deferred expiry: %+v", v)
		}
		if err := s.Complete(l[0], nil); err != nil {
			t.Fatalf("Complete under extended lease: %v", err)
		}
	})
}

func TestLookupDistinguishesExpiredFromUnknown(t *testing.T) {
	clk := newFakeClock()
	s := openStore(t, Config{Retention: 2, LeaseTTL: time.Minute, nowFn: clk.now})
	for i := 0; i < 4; i++ {
		mustSubmit(t, s, Task{Tenant: "x"})
		l := s.TryAcquire("rep", 1)
		if err := s.Complete(l[0], nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, st := s.Lookup("task-1"); st != LookupExpired {
		t.Fatalf("task-1: %v, want LookupExpired", st)
	}
	if _, st := s.Lookup("task-4"); st != LookupFound {
		t.Fatalf("task-4: %v, want LookupFound", st)
	}
	if _, st := s.Lookup("task-99"); st != LookupUnknown {
		t.Fatalf("task-99: %v, want LookupUnknown", st)
	}
	if _, st := s.Lookup("bogus"); st != LookupUnknown {
		t.Fatalf("bogus: %v, want LookupUnknown", st)
	}
}

func TestAwaitAcquireWakesOnSubmit(t *testing.T) {
	s := openStore(t, Config{LeaseTTL: time.Minute})
	got := make(chan []Lease, 1)
	go func() {
		ls, err := s.AwaitAcquire(context.Background(), "rep", 1)
		if err != nil {
			t.Errorf("AwaitAcquire: %v", err)
		}
		got <- ls
	}()
	time.Sleep(20 * time.Millisecond) // let the acquirer block
	mustSubmit(t, s, Task{ID: "a", Tenant: "x"})
	select {
	case ls := <-got:
		if len(ls) != 1 || ls[0].TaskID != "a" {
			t.Fatalf("leases: %+v", ls)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitAcquire never woke")
	}
}

func TestAwaitAcquireHonorsContext(t *testing.T) {
	s := openStore(t, Config{LeaseTTL: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.AwaitAcquire(ctx, "rep", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestConcurrentStatsDuringChurn(t *testing.T) {
	s := openStore(t, Config{LeaseTTL: time.Minute, MaxPending: 10000})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := s.Stats()
					if st.Pending < 0 || st.Completed > st.Submitted {
						t.Errorf("inconsistent stats: %+v", st)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		mustSubmit(t, s, Task{Tenant: fmt.Sprintf("t%d", i%7)})
		for _, l := range s.TryAcquire("rep", 2) {
			if err := s.Complete(l, nil); err != nil {
				t.Fatalf("Complete: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
