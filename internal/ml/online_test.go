package ml

import (
	"bytes"
	"sync"
	"testing"
)

// patchTensor builds a deterministic (C,12,12) input patch.
func patchTensor() *Tensor {
	x := NewTensor(len(Channels), 12, 12)
	for i := range x.Data {
		x.Data[i] = float64(i%13)/6.5 - 1
	}
	return x
}

// twoNets builds two materially different networks for the same patch
// geometry.
func twoNets(t *testing.T) (*Network, *Network) {
	t.Helper()
	a, err := NewCNN(len(Channels), 12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	randomizeBiases(a, 17)
	b, err := NewCNN(len(Channels), 12, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	randomizeBiases(b, 29)
	return a, b
}

func sameDetections(a, b []Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHotSwapTakesEffect proves a swap is picked up by the compiled
// engine bit-for-bit: post-swap detections equal the reference sweep of
// the new network exactly.
func TestHotSwapTakesEffect(t *testing.T) {
	netA, netB := twoNets(t)
	fields, g := stormFields(t, 21)

	loc := &Localizer{Net: netA, PatchH: 12, PatchW: 12}
	loc.Configure(Params{Workers: 2})
	refB := &Localizer{Net: netB, PatchH: 12, PatchW: 12}
	refB.Configure(Params{Reference: true})

	if gen := loc.WeightsGeneration(); gen != 0 {
		t.Fatalf("initial generation = %d", gen)
	}
	before, err := loc.DetectFields(fields, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !loc.Compiled() {
		t.Fatal("engine did not compile")
	}
	if err := loc.SwapWeights(netB); err != nil {
		t.Fatal(err)
	}
	if gen := loc.WeightsGeneration(); gen != 1 {
		t.Fatalf("generation after swap = %d", gen)
	}
	after, err := loc.DetectFields(fields, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refB.DetectFields(fields, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sameDetections(before, after) {
		t.Fatal("detections unchanged after swap")
	}
	if !sameDetections(after, want) {
		t.Fatalf("post-swap engine sweep differs from new-net reference:\n%v\n%v", after, want)
	}
}

// TestHotSwapInvalidNet: bad swaps fail loudly and leave the live
// weights untouched.
func TestHotSwapInvalidNet(t *testing.T) {
	netA, _ := twoNets(t)
	fields, g := stormFields(t, 5)
	loc := &Localizer{Net: netA, PatchH: 12, PatchW: 12}
	loc.Configure(Params{Workers: 1})
	before, err := loc.DetectFields(fields, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.SwapWeights(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if err := loc.SwapWeights(&Network{Layers: []Layer{badLayer{}}}); err == nil {
		t.Fatal("uncompilable swap accepted while engine active")
	}
	if gen := loc.WeightsGeneration(); gen != 0 {
		t.Fatalf("failed swaps bumped generation to %d", gen)
	}
	after, err := loc.DetectFields(fields, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDetections(before, after) {
		t.Fatal("failed swap changed live weights")
	}
}

// TestHotSwapReferenceMode: swaps also apply on the layer-by-layer
// path, where each sweep snapshots one consistent network.
func TestHotSwapReferenceMode(t *testing.T) {
	netA, netB := twoNets(t)
	x := patchTensor()
	loc := &Localizer{Net: netA, PatchH: 12, PatchW: 12}
	loc.Configure(Params{Reference: true})
	p1 := loc.Predict(x)
	if err := loc.SwapWeights(netB); err != nil {
		t.Fatal(err)
	}
	p2 := loc.Predict(x)
	if p1 == p2 {
		t.Fatal("reference prediction unchanged after swap")
	}
	if want := predictNet(netB, x); p2 != want {
		t.Fatalf("post-swap prediction %+v, want %+v", p2, want)
	}
}

// TestHotSwapNeverTearsBatch hammers DetectFields while another
// goroutine swaps weights back and forth. With one worker each sweep is
// a single batch bound to one plan, so every result must exactly equal
// one network's sweep or the other's — any mix means a torn batch.
func TestHotSwapNeverTearsBatch(t *testing.T) {
	netA, netB := twoNets(t)
	fields, g := stormFields(t, 33)

	refDet := func(net *Network) []Detection {
		ref := &Localizer{Net: net, PatchH: 12, PatchW: 12}
		ref.Configure(Params{Reference: true})
		det, err := ref.DetectFields(fields, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	wantA, wantB := refDet(netA), refDet(netB)
	if sameDetections(wantA, wantB) {
		t.Fatal("test nets produce identical sweeps; cannot observe tearing")
	}

	loc := &Localizer{Net: netA, PatchH: 12, PatchW: 12}
	loc.Configure(Params{Workers: 1, MaxBatch: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			net := netA
			if i%2 == 0 {
				net = netB
			}
			if err := loc.SwapWeights(net); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		got, err := loc.DetectFields(fields, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDetections(got, wantA) && !sameDetections(got, wantB) {
			close(stop)
			wg.Wait()
			t.Fatalf("sweep %d matches neither weight generation — torn batch:\n%v", i, got)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHotSwapConcurrentSweeps exercises swaps against a multi-worker
// engine under the race detector: parallel chunks of one sweep may span
// generations, but each chunk's batch stays internally consistent and
// nothing races.
func TestHotSwapConcurrentSweeps(t *testing.T) {
	netA, netB := twoNets(t)
	fields, g := stormFields(t, 9)
	loc := &Localizer{Net: netA, PatchH: 12, PatchW: 12}
	loc.Configure(Params{Workers: 4, MaxBatch: 4})
	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			net := netA
			if i%2 == 0 {
				net = netB
			}
			if err := loc.SwapWeights(net); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := loc.DetectFields(fields, g, 0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapperDone
}

// TestOnlineTrainerDeterministic: two trainers fed the identical
// sequence from identical starting weights converge to byte-identical
// networks — the online loop keeps reproducible runs reproducible.
func TestOnlineTrainerDeterministic(t *testing.T) {
	fields, g := stormFields(t, 11)
	centers := []Center{{Row: g.NLat / 3, Col: g.NLon / 4}}
	run := func() []byte {
		loc, err := NewLocalizer(12, 12, 7)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewOnlineTrainer(OnlineConfig{Target: loc, BatchSize: 8, SwapEvery: 2, Queue: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if !tr.Feed(fields, centers) {
				t.Fatal("feed dropped")
			}
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		st := tr.Stats()
		if st.Fed != 6 || st.Steps == 0 || st.Swaps == 0 {
			t.Fatalf("stats = %+v", st)
		}
		if loc.WeightsGeneration() == 0 {
			t.Fatal("trainer never swapped weights in")
		}
		raw, err := loc.Net.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical feeds produced different final weights")
	}
}

// TestOnlineTrainerChangesWeights: feeding real labelled fields moves
// the target away from its initial weights and drops the training loss.
func TestOnlineTrainerChangesWeights(t *testing.T) {
	fields, g := stormFields(t, 13)
	loc, err := NewLocalizer(12, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := loc.Net.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewOnlineTrainer(OnlineConfig{Target: loc, BatchSize: 8, SwapEvery: 4, Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	centers := []Center{{Row: g.NLat / 2, Col: g.NLon / 2}}
	for i := 0; i < 8; i++ {
		if !tr.Feed(fields, centers) {
			t.Fatal("feed dropped")
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Feed(fields, centers) {
		t.Fatal("feed accepted after close")
	}
	final, err := loc.Net.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(initial, final) {
		t.Fatal("training left the target weights untouched")
	}
	if st := tr.Stats(); st.Samples == 0 || st.LastLoss <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOnlineTrainerBadFeed: an unlabelable field set surfaces as the
// Close error instead of killing the goroutine.
func TestOnlineTrainerBadFeed(t *testing.T) {
	loc, err := NewLocalizer(12, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewOnlineTrainer(OnlineConfig{Target: loc})
	if err != nil {
		t.Fatal(err)
	}
	tr.Feed(nil, nil) // missing every channel
	if err := tr.Close(); err == nil {
		t.Fatal("labelling error swallowed")
	}
}

// TestTrainSeededDeterminism: Localizer.Train with a fixed seed is a
// pure function of (weights, samples, config) — identical loss
// trajectories and final weights across runs.
func TestTrainSeededDeterminism(t *testing.T) {
	m := stormModel(t, 3, 19)
	gt := m.GroundTruth()
	var samples []Sample
	for i := 0; i < 8; i++ {
		d := m.StepDay()
		s, err := BuildSamples(d, 0, gt.Cyclones, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s...)
	}
	cfg := TrainConfig{Epochs: 3, BatchSize: 8, LR: 2e-3, Seed: 41, Balance: true}
	run := func() ([]float64, []byte) {
		loc, err := NewLocalizer(12, 12, 23)
		if err != nil {
			t.Fatal(err)
		}
		losses, err := loc.Train(samples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := loc.Net.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return losses, raw
	}
	l1, w1 := run()
	l2, w2 := run()
	if len(l1) != len(l2) {
		t.Fatalf("loss trajectory lengths %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("epoch %d loss %v vs %v", i, l1[i], l2[i])
		}
	}
	if !bytes.Equal(w1, w2) {
		t.Fatal("same seed and samples produced different weights")
	}
}
