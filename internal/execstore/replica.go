package execstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/execq"
)

// Handler executes one leased task and returns its output. Handlers
// must be deterministic functions of the task payload for the
// exactly-once guarantee to extend to outputs: a reclaimed task may be
// EXECUTED more than once (the first holder died mid-run), but only one
// execution's output passes the epoch fence, and determinism makes the
// survivor byte-identical to what the dead holder would have produced.
type Handler func(ctx context.Context, t TaskView) (json.RawMessage, error)

// ReplicaConfig parameterizes one executor replica.
type ReplicaConfig struct {
	// ID names the replica in leases and metrics ("replica-1"...).
	ID string
	// Store is the shared execution store the replica pulls from.
	Store *Store
	// Workers is the local execution parallelism (default 4).
	Workers int
	// Handler runs each task.
	Handler Handler
	// Prefetch caps how many leases one acquire batch claims (default
	// Workers): modest prefetch keeps workers busy between fetch loops
	// without hoarding tasks a peer replica could run.
	Prefetch int
	// RenewEvery overrides the lease renewal cadence (default
	// Store LeaseTTL/3).
	RenewEvery time.Duration
}

// Replica is one stateless executor: a fetch loop that leases tasks
// from the shared store, a local execq worker pool that runs them, and
// a renew loop that keeps held leases alive at TTL/3. All durable state
// lives in the store — Kill a replica and nothing is lost: its leases
// expire, the store reclaims the tasks, and a peer replica (or this one
// after restart) re-runs them behind the epoch fence.
type Replica struct {
	cfg    ReplicaConfig
	q      *execq.Queue
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	killed bool
	local  map[string]localJob // taskID -> local execution
}

// localJob ties a held lease to the execq job running it.
type localJob struct {
	jobID string
	lease Lease
}

// NewReplica starts an executor replica against the store.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Store == nil {
		return nil, errors.New("execstore: replica needs a store")
	}
	if cfg.Handler == nil {
		return nil, errors.New("execstore: replica needs a handler")
	}
	if cfg.ID == "" {
		return nil, errors.New("execstore: replica needs an id")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = cfg.Workers
	}
	if cfg.RenewEvery <= 0 {
		cfg.RenewEvery = cfg.Store.cfg.LeaseTTL / 3
		if cfg.RenewEvery < time.Millisecond {
			cfg.RenewEvery = time.Millisecond
		}
	}
	q, err := execq.New(execq.Config{
		Workers: cfg.Workers,
		// Local depth = 2×prefetch: enough headroom that a fetched batch
		// always fits (the fetch loop gates on local idle capacity).
		QueueDepth: 2 * cfg.Prefetch,
	})
	if err != nil {
		return nil, err
	}
	r := &Replica{cfg: cfg, q: q, local: make(map[string]localJob)}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	cfg.Store.RegisterReplica(cfg.ID, cfg.Workers)
	r.wg.Add(2)
	go r.fetchLoop()
	go r.renewLoop()
	return r, nil
}

// ID returns the replica's name.
func (r *Replica) ID() string { return r.cfg.ID }

// fetchLoop pulls leases from the store whenever local workers have
// capacity and hands each to the local queue as a Run closure.
func (r *Replica) fetchLoop() {
	defer r.wg.Done()
	for {
		want := r.capacity()
		if want == 0 {
			// Local pool saturated; let a running task finish.
			select {
			case <-r.ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		leases, err := r.cfg.Store.AwaitAcquire(r.ctx, r.cfg.ID, want)
		if err != nil {
			return // ctx canceled or store closed
		}
		for _, l := range leases {
			r.dispatch(l)
		}
	}
}

// capacity is how many more tasks the local pool can take.
func (r *Replica) capacity() int {
	st := r.q.Stats()
	free := r.cfg.Workers + r.cfg.Prefetch - st.Running - st.Depth
	if free < 0 {
		free = 0
	}
	if free > r.cfg.Prefetch {
		free = r.cfg.Prefetch
	}
	return free
}

// dispatch runs one leased task on the local queue. The closure reports
// the outcome to the STORE, never to execq: retry policy is global
// (task.Retries, store backoff), so the local job always "succeeds"
// from execq's perspective. A killed replica reports nothing — the
// lease expires and the store reclaims the task.
func (r *Replica) dispatch(l Lease) {
	lease := l
	jobID := fmt.Sprintf("%s.%s.e%d", r.cfg.ID, lease.TaskID, lease.Epoch)
	r.mu.Lock()
	r.local[lease.TaskID] = localJob{jobID: jobID, lease: lease}
	r.mu.Unlock()
	_, err := r.q.Submit(execq.Job{
		ID:        jobID,
		Principal: lease.Task.Tenant,
		Run: func(ctx context.Context) error {
			out, herr := r.cfg.Handler(ctx, lease.Task)
			r.mu.Lock()
			dead := r.killed
			delete(r.local, lease.TaskID)
			r.mu.Unlock()
			if dead {
				return nil // abandoned: say nothing, let the lease expire
			}
			if herr != nil {
				r.cfg.Store.Fail(lease, herr)
				return nil
			}
			r.cfg.Store.Complete(lease, out)
			return nil
		},
	})
	if err != nil {
		// Local pool rejected (draining/full race): give the task back
		// to the store immediately instead of sitting on the lease.
		r.mu.Lock()
		delete(r.local, lease.TaskID)
		r.mu.Unlock()
		r.cfg.Store.Fail(lease, err)
	}
}

// renewLoop extends held leases at the configured cadence and cancels
// local jobs whose store-side task got a cancel request.
func (r *Replica) renewLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.RenewEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-tick.C:
			_, canceled := r.cfg.Store.Renew(r.cfg.ID)
			for _, id := range canceled {
				// Cancel the local run; its Fail(ctx.Err()) finalizes
				// the task as CANCELED in the store.
				r.cancelLocal(id)
			}
		}
	}
}

// cancelLocal cancels the local job executing the given task, then
// fails the lease back as canceled. If the job was still queued its Run
// closure never fires, so this Fail is the only report; if it was
// running, whichever report lands first wins and the other is fenced as
// a no-op — either way the task finalizes exactly once.
func (r *Replica) cancelLocal(taskID string) {
	r.mu.Lock()
	lj, ok := r.local[taskID]
	r.mu.Unlock()
	if !ok {
		return
	}
	r.q.Cancel(lj.jobID)
	r.cfg.Store.Fail(lj.lease, context.Canceled)
}

// Drain gracefully stops the replica: no new leases are fetched,
// running tasks finish and report, held-but-unstarted leases are failed
// back to the store for immediate reassignment.
func (r *Replica) Drain(ctx context.Context) error {
	r.cancel()
	err := r.q.Drain(ctx)
	r.wg.Wait()
	r.cfg.Store.DeregisterReplica(r.cfg.ID)
	r.q.Close()
	return err
}

// Kill simulates a crash or partition: loops stop, running handlers
// are canceled, and nothing is reported to the store — held leases
// simply stop being renewed and expire, at which point the store
// reclaims the tasks for other replicas. This is the chaos entry point.
func (r *Replica) Kill() {
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		return
	}
	r.killed = true
	r.mu.Unlock()
	r.cancel()
	r.q.Close() // cancels running contexts; closures see killed and stay silent
	r.wg.Wait()
}
