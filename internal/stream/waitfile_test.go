package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWaitForFileCtxSuccess(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "late.nc")
	go func() {
		time.Sleep(15 * time.Millisecond)
		os.WriteFile(p, []byte("x"), 0o644)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := WaitForFileCtx(ctx, p); err != nil {
		t.Fatalf("WaitForFileCtx = %v, want nil", err)
	}
}

func TestWaitForFileCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- WaitForFileCtx(ctx, filepath.Join(t.TempDir(), "never")) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled wait = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled wait did not return")
	}
}

func TestWaitForFileCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := WaitForFileCtx(ctx, filepath.Join(t.TempDir(), "never"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline wait = %v, want context.DeadlineExceeded", err)
	}
	// The wrapper must keep its historical error contract.
	if err := WaitForFile(filepath.Join(t.TempDir(), "never"), 20*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("WaitForFile timeout = %v, want os.ErrDeadlineExceeded", err)
	}
}
