package cubecluster

// pool.go gives each replica a pool of multiplexed connections instead
// of one. A single v2 connection already pipelines concurrent requests,
// but one TCP stream still serializes bytes; with the coordinator
// scattering to N shards × R replicas concurrently, a handful of
// connections per replica lets bulk payloads move in parallel and keeps
// one slow exchange from back-pressuring everything behind it.

import (
	"fmt"
	"sync"

	"repro/internal/cubeserver"
)

// DefaultPoolSize is the per-replica connection count used when a pool
// is created with size <= 0.
const DefaultPoolSize = 4

// PoolTransport is a Transport backed by a fixed-size pool of
// cubeserver clients to one replica address. Connections are dialed
// lazily on first use, handed out round-robin, and evicted and
// re-dialed once broken (poisoned by a transport error), so a replica
// restart heals the pool without intervention.
type PoolTransport struct {
	addr string

	mu     sync.Mutex
	conns  []*cubeserver.Client
	next   int
	closed bool
}

// NewPoolTransport builds a pool of size connections to addr
// (DefaultPoolSize if size <= 0). No connection is dialed until the
// first Do.
func NewPoolTransport(addr string, size int) *PoolTransport {
	if size <= 0 {
		size = DefaultPoolSize
	}
	return &PoolTransport{addr: addr, conns: make([]*cubeserver.Client, size)}
}

// DialPoolTransport is NewPoolTransport plus an eager dial of the
// first connection, so an unreachable replica surfaces at wiring time
// rather than mid-scatter.
func DialPoolTransport(addr string, size int) (*PoolTransport, error) {
	p := NewPoolTransport(addr, size)
	c, err := cubeserver.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.conns[0] = c
	return p, nil
}

// acquire returns the next healthy client in rotation, dialing into
// empty or broken slots. The dial happens under the pool lock: that
// serializes concurrent re-dials of the same dead replica (cheap — the
// failure is immediate) and means a healthy pool never blocks on it.
func (p *PoolTransport) acquire() (*cubeserver.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("cubecluster: pool transport to %s is closed", p.addr)
	}
	slot := p.next % len(p.conns)
	p.next++
	c := p.conns[slot]
	if c != nil && !c.Broken() {
		return c, nil
	}
	if c != nil {
		c.Close() // evict the poisoned connection
		p.conns[slot] = nil
	}
	nc, err := cubeserver.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	p.conns[slot] = nc
	return nc, nil
}

// Do performs one exchange on a pooled connection. A transport failure
// is reported to the caller (the coordinator's failover logic owns the
// retry decision); the broken connection is left in its slot and
// replaced on the next acquire that lands there.
func (p *PoolTransport) Do(req *cubeserver.Request) (*cubeserver.Response, error) {
	c, err := p.acquire()
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Codec reports the negotiated wire codec of the pool's first live
// connection ("" if none has been dialed yet).
func (p *PoolTransport) Codec() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		if c != nil {
			return c.Codec()
		}
	}
	return ""
}

// Close closes every pooled connection. Idempotent; concurrent Do
// calls fail with a closed-pool or transport error.
func (p *PoolTransport) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var first error
	for i, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		p.conns[i] = nil
	}
	return first
}
