package datacube

import (
	"errors"
	"testing"
)

// Plans are documented single-use; these tests pin the typed guard so
// a second run fails fast instead of silently re-walking materialized
// steps over shared scratch.

func reuseTestCube(t *testing.T, e *Engine) *Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("m",
		[]Dimension{{Name: "cell", Size: 6}},
		Dimension{Name: "time", Size: 4},
		func(row, tt int) float32 { return float32(row*10 + tt) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanExecuteTwiceRejected(t *testing.T) {
	e := NewEngine(Config{Servers: 2})
	defer e.Close()
	c := reuseTestCube(t, e)
	p := c.Lazy().Apply("x+1").Reduce("sum")
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); !errors.Is(err, ErrPlanReused) {
		t.Fatalf("second Execute: want ErrPlanReused, got %v", err)
	}
}

func TestPlanExecuteThenExecuteBranchesRejected(t *testing.T) {
	e := NewEngine(Config{Servers: 2})
	defer e.Close()
	c := reuseTestCube(t, e)
	p := c.Lazy().Apply("x*2")
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecuteBranches(Branch().Reduce("max")); !errors.Is(err, ErrPlanReused) {
		t.Fatalf("ExecuteBranches after Execute: want ErrPlanReused, got %v", err)
	}
}

func TestPlanFailedExecuteStillSingleUse(t *testing.T) {
	e := NewEngine(Config{Servers: 2})
	defer e.Close()
	c := reuseTestCube(t, e)
	p := c.Lazy().Reduce("nosuch")
	if _, err := p.Execute(); err == nil || errors.Is(err, ErrPlanReused) {
		t.Fatalf("first Execute should fail on the bad op, got %v", err)
	}
	if _, err := p.Execute(); !errors.Is(err, ErrPlanReused) {
		t.Fatalf("retrying a failed plan: want ErrPlanReused, got %v", err)
	}
}
