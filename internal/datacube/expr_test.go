package datacube

import (
	"math"
	"testing"
	"testing/quick"
)

func evalAt(t *testing.T, src string, x float64) float64 {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return e.Eval(x)
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		x    float64
		want float64
	}{
		{"1+2*3", 0, 7},
		{"(1+2)*3", 0, 9},
		{"x*x", 3, 9},
		{"-x", 2, -2},
		{"10-4-3", 0, 3}, // left assoc
		{"8/4/2", 0, 1},  // left assoc
		{"2+x/2", 6, 5},
		{"1.5e2", 0, 150},
		{"pow(2,10)", 0, 1024},
		{"abs(-3.5)", 0, 3.5},
		{"sqrt(16)", 0, 4},
		{"exp(0)", 0, 1},
		{"log(1)", 0, 0},
		{"min(3,x)", 1, 1},
		{"max(3,x)", 1, 3},
	}
	for _, c := range cases {
		if got := evalAt(t, c.src, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q at %v = %v, want %v", c.src, c.x, got, c.want)
		}
	}
}

func TestExprComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		x    float64
		want float64
	}{
		{"x>0", 1, 1},
		{"x>0", -1, 0},
		{"x>=2", 2, 1},
		{"x<2", 2, 0},
		{"x<=2", 2, 1},
		{"x==3", 3, 1},
		{"x!=3", 3, 0},
		{"x>0 && x<10", 5, 1},
		{"x>0 && x<10", 15, 0},
		{"x<0 || x>10", 15, 1},
		{"!(x>0)", 5, 0},
		{"x>1 ? 100 : 200", 2, 100},
		{"x>1 ? 100 : 200", 0, 200},
		{"x>0 ? (x>5 ? 2 : 1) : 0", 7, 2},
	}
	for _, c := range cases {
		if got := evalAt(t, c.src, c.x); got != c.want {
			t.Errorf("%q at %v = %v, want %v", c.src, c.x, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		"",
		"x +",
		"(x",
		"foo(x)",
		"pow(2)",     // missing arg: expects comma
		"x ? 1",      // missing colon
		"1 2",        // trailing
		"min(1,2,3)", // too many args: trailing before )
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestPredicateHelper(t *testing.T) {
	e, err := Predicate("x>0", "1", "0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Eval(5) != 1 || e.Eval(-5) != 0 {
		t.Fatal("predicate semantics wrong")
	}
}

func TestMustCompilePanicsOnBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustCompile("(((")
}

func TestExprStringer(t *testing.T) {
	e := MustCompile("x+1")
	if e.String() != "x+1" {
		t.Fatalf("String = %q", e.String())
	}
}

// Property: mask expressions only ever produce 0 or 1.
func TestMaskBinaryProperty(t *testing.T) {
	e := MustCompile("x>0 ? 1 : 0")
	f := func(x float64) bool {
		v := e.Eval(x)
		return v == 0 || v == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled arithmetic matches direct Go evaluation.
func TestExprMatchesGoProperty(t *testing.T) {
	e := MustCompile("2*x*x - 3*x + 1")
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
			return true // avoid overflow-to-Inf comparisons
		}
		want := 2*x*x - 3*x + 1
		got := e.Eval(x)
		if want == 0 {
			return math.Abs(got) < 1e-9
		}
		return math.Abs(got-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
