package datacube

import "repro/internal/obs"

// opBounds bucket whole-operator wall times; fragBounds bucket single
// fragment tasks (which include the simulated FragmentLatency).
var (
	opBounds   = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}
	fragBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
)

// dcMetrics holds the engine's instruments. With a nil registry they
// are detached no-ops; the atomic Stats counters stay authoritative.
type dcMetrics struct {
	opSeconds   *obs.HistogramVec // per-operator wall time, labeled by op
	fragSeconds *obs.Histogram    // per-fragment task wall time
	cells       *obs.Counter
	fileReads   *obs.Counter
	fragTasks   *obs.Counter

	// fusion instruments (see plan.go/exec.go)
	fusedPasses   *obs.Counter   // fused passes executed
	fusedStages   *obs.Counter   // logical operator stages folded into them
	fusedSeconds  *obs.Histogram // whole fused-pass wall time
	scratchHits   *obs.Counter   // scratch-pool gets served from the pool
	scratchMisses *obs.Counter   // scratch-pool gets that had to allocate

	// resolution-pyramid instruments (pyramid.go/tolerance.go)
	tierBuilds       *obs.Counter   // pyramid builds completed
	tierBuildSeconds *obs.Histogram // wall time of one pyramid build
	tierBytes        *obs.Gauge     // resident bytes held by pyramid tiers
	tolerantPasses   *obs.Counter   // coarse-first passes executed
	tierHits         *obs.Counter   // coarse rows accepted within tolerance
	tierRefines      *obs.Counter   // coarse blocks split to a finer tier
	rowsExact        *obs.Counter   // rows that fell through to exact evaluation
}

func newDCMetrics(reg *obs.Registry) *dcMetrics {
	return &dcMetrics{
		opSeconds: reg.HistogramVec("datacube_operator_seconds",
			"Wall-clock duration of one datacube operator execution.", opBounds, "op"),
		fragSeconds: reg.Histogram("datacube_fragment_seconds",
			"Wall-clock duration of one per-fragment work unit.", fragBounds),
		cells: reg.Counter("datacube_cells_processed_total",
			"Array elements touched by operators."),
		fileReads: reg.Counter("datacube_file_reads_total",
			"Storage read operations (one per file and variable import)."),
		fragTasks: reg.Counter("datacube_fragment_tasks_total",
			"Per-fragment work units dispatched to I/O servers."),
		fusedPasses: reg.Counter("datacube_fused_passes_total",
			"Fused plan passes executed (one fragment fan-out each)."),
		fusedStages: reg.Counter("datacube_fused_stages_total",
			"Logical operator stages executed inside fused passes."),
		fusedSeconds: reg.Histogram("datacube_fused_pass_seconds",
			"Wall-clock duration of one fused plan pass.", opBounds),
		scratchHits: reg.Counter("datacube_scratch_pool_hits_total",
			"Fused-pass scratch buffers served from the pool."),
		scratchMisses: reg.Counter("datacube_scratch_pool_misses_total",
			"Fused-pass scratch buffers that had to be allocated."),
		tierBuilds: reg.Counter("datacube_tier_builds_total",
			"Resolution-pyramid builds completed (one per cube, lazy)."),
		tierBuildSeconds: reg.Histogram("datacube_tier_build_seconds",
			"Wall-clock duration of one resolution-pyramid build.", opBounds),
		tierBytes: reg.Gauge("datacube_tier_bytes",
			"Resident bytes held by resolution-pyramid tiers."),
		tolerantPasses: reg.Counter("datacube_tier_tolerant_passes_total",
			"Coarse-first fused passes executed under a plan tolerance."),
		tierHits: reg.Counter("datacube_tier_coarse_rows_total",
			"Coarse tier rows whose error bound met the declared tolerance."),
		tierRefines: reg.Counter("datacube_tier_refines_total",
			"Coarse blocks re-executed at the next finer tier."),
		rowsExact: reg.Counter("datacube_tier_exact_rows_total",
			"Rows a tolerant pass evaluated at full resolution."),
	}
}

// PrimeMetrics registers the engine's metric families on reg so a
// scrape shows the full surface before any cube exists.
func PrimeMetrics(reg *obs.Registry) { newDCMetrics(reg) }
