package datacube

import (
	"fmt"
	"sort"
	"sync"
)

// This file gives AggregateRows a distributed form. A cluster that
// splits a cube's rows across shards cannot run a row-collapsing
// reduction locally — every shard sees only its own rows — but for
// decomposable reductions it does not have to move the rows either:
// each shard computes a small float64 partial per implicit position
// (AggregateRowsPartial) and the coordinator folds the per-shard
// partials with the op's registered merge function. Only the reduced
// partials cross the wire, which is the scatter-gather contract the
// Panta et al. scalable-analysis design calls for.
//
// Partials stay float64 end to end: the shard-local reduction returns
// the row op's raw float64 outputs (before the float32 cube rounding),
// so a single-shard cluster merge is bit-identical to the plain
// AggregateRows result, and multi-shard merges differ from the
// sequential order only by float64 summation association.

// PartialMerge describes how to distribute one named row op across row
// shards for AggregateRows.
type PartialMerge struct {
	// PartialOp names the row op each shard runs locally over its own
	// rows via AggregateRowsPartial; empty means the op itself. avg, for
	// example, ships "sum" partials so the merge can weight by row
	// counts without double rounding.
	PartialOp string
	// Merge folds one implicit position's per-shard partials into the
	// global value. partials[i] aligns with weights[i], the number of
	// rows shard i reduced; params are the op's original parameters.
	Merge func(partials []float64, weights []int, params []float64) float64
}

var (
	rowOpMergesMu sync.RWMutex
	rowOpMerges   = map[string]PartialMerge{}
)

// RegisterRowOpMerge installs the distributed form of a named row op.
// Ops without a registered merge are still correct on a cluster — the
// coordinator falls back to gathering full columns — just not cheap.
func RegisterRowOpMerge(name string, pm PartialMerge) error {
	if pm.Merge == nil {
		return fmt.Errorf("datacube: row op merge %q needs a Merge function", name)
	}
	rowOpMergesMu.Lock()
	defer rowOpMergesMu.Unlock()
	if _, dup := rowOpMerges[name]; dup {
		return fmt.Errorf("datacube: row op merge %q already registered", name)
	}
	rowOpMerges[name] = pm
	return nil
}

// LookupRowOpMerge returns the distributed form of a named row op.
func LookupRowOpMerge(name string) (PartialMerge, bool) {
	rowOpMergesMu.RLock()
	defer rowOpMergesMu.RUnlock()
	pm, ok := rowOpMerges[name]
	return pm, ok
}

// RowOpMergeNames lists row ops with a registered partial merge,
// sorted.
func RowOpMergeNames() []string {
	rowOpMergesMu.RLock()
	defer rowOpMergesMu.RUnlock()
	out := make([]string, 0, len(rowOpMerges))
	for k := range rowOpMerges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	must := func(name string, pm PartialMerge) {
		if err := RegisterRowOpMerge(name, pm); err != nil {
			panic(err)
		}
	}
	sum := func(partials []float64, _ []int, _ []float64) float64 {
		var s float64
		for _, p := range partials {
			s += p
		}
		return s
	}
	must("sum", PartialMerge{Merge: sum})
	// count_above/count_below partials are integer-valued, so their
	// float64 sums are exact at any shard count.
	must("count_above", PartialMerge{Merge: sum})
	must("count_below", PartialMerge{Merge: sum})
	must("max", PartialMerge{Merge: func(partials []float64, _ []int, _ []float64) float64 {
		m := partials[0]
		for _, p := range partials[1:] {
			if p > m {
				m = p
			}
		}
		return m
	}})
	must("min", PartialMerge{Merge: func(partials []float64, _ []int, _ []float64) float64 {
		m := partials[0]
		for _, p := range partials[1:] {
			if p < m {
				m = p
			}
		}
		return m
	}})
	// avg ships per-shard sums and divides by the global row count once,
	// so a single-shard merge reproduces the plain avg bit for bit.
	must("avg", PartialMerge{PartialOp: "sum", Merge: func(partials []float64, weights []int, _ []float64) float64 {
		var s float64
		var n int
		for i, p := range partials {
			s += p
			n += weights[i]
		}
		return s / float64(n)
	}})
}

// AggregateRowsPartial computes the named row op across all of the
// cube's rows at each implicit position — the shard-local half of a
// distributed AggregateRows — and returns the raw float64 results
// without registering a cube. float32(out[t]) equals the value
// AggregateRows would store at position t.
func (c *Cube) AggregateRowsPartial(op string, params ...float64) ([]float64, error) {
	rop, ok := LookupRowOp(op)
	if !ok {
		return nil, fmt.Errorf("datacube: unknown row op %q", op)
	}
	e := c.engine
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("aggpartial: %w", ErrEngineClosed)
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()

	n := c.implicit.Size
	out := make([]float64, n)
	col := make([]float32, c.rows)
	for t := 0; t < n; t++ {
		for r := 0; r < c.rows; r++ {
			col[r] = c.rowSlice(r)[t]
		}
		out[t] = rop(col, params)
	}
	e.addCells(int64(c.rows) * int64(n))
	e.ops.Add(1)
	return out, nil
}

// MergeRowPartials folds per-shard AggregateRowsPartial outputs into
// the single global row of the distributed AggregateRows. partials[i]
// is shard i's output (all the same length) and weights[i] its row
// count, both in global row order.
func MergeRowPartials(op string, partials [][]float64, weights []int, params []float64) ([]float32, error) {
	pm, ok := LookupRowOpMerge(op)
	if !ok {
		return nil, fmt.Errorf("datacube: row op %q has no partial merge (have %v)", op, RowOpMergeNames())
	}
	if len(partials) == 0 || len(partials) != len(weights) {
		return nil, fmt.Errorf("datacube: merge needs aligned partials and weights, got %d/%d", len(partials), len(weights))
	}
	n := len(partials[0])
	for i, p := range partials {
		if len(p) != n {
			return nil, fmt.Errorf("datacube: partial %d has %d positions, want %d", i, len(p), n)
		}
	}
	buf := make([]float64, len(partials))
	out := make([]float32, n)
	for t := 0; t < n; t++ {
		for s := range partials {
			buf[s] = partials[s][t]
		}
		out[t] = float32(pm.Merge(buf, weights, params))
	}
	return out, nil
}
