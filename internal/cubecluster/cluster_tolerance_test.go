package cubecluster

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cubeserver"
	"repro/internal/ncdf"
)

// writeSmoothFile creates a GNC1 file whose rows vary slowly along lat,
// so coarse pyramid tiers genuinely accept blocks under a tolerance
// (the varying writeClusterFile fixture refines everything, which
// exercises only the exact path).
func writeSmoothFile(t *testing.T, dir string, lat, lon, steps int) string {
	t.Helper()
	ds := ncdf.NewDataset()
	ds.AddDim("lat", lat)
	ds.AddDim("lon", lon)
	ds.AddDim("time", steps)
	data := make([]float32, lat*lon*steps)
	for l := 0; l < lat; l++ {
		for o := 0; o < lon; o++ {
			for tt := 0; tt < steps; tt++ {
				data[(l*lon+o)*steps+tt] = float32(10 + 0.01*float64(l) + float64(tt%4))
			}
		}
	}
	ds.AddVar("T", []string{"lat", "lon", "time"}, data)
	path := filepath.Join(dir, "smooth.nc")
	if err := ncdf.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterToleranceEquivalence: on shard splits aligned to coarsest-
// tier block boundaries, a tolerant pipeline must return exactly what
// the single engine returns at the same tolerance — at eps=0 (byte-
// identical to exact) and at eps>0 (identical coarse-first decisions).
func TestClusterToleranceEquivalence(t *testing.T) {
	// lat=16 over 4 shards → 4 lat rows × lon=4 → 16 rows per part:
	// every part offset is a multiple of the coarsest factor 8
	dir := t.TempDir()
	for name, path := range map[string]string{
		"varying": writeClusterFile(t, dir, 16, 4, 16),
		"smooth":  writeSmoothFile(t, dir, 16, 4, 16),
	} {
		pipe := func(tol float64) []cubeserver.PipelineStep {
			return []cubeserver.PipelineStep{
				{Op: "apply", Expr: "x-10"},
				{Op: "reducegroup", RowOp: "max", Group: 4, Tolerance: tol},
			}
		}
		exact := engineRef(t, []string{path}, pipe(0))
		for _, eps := range []float64{0, 0.5} {
			want := engineRef(t, []string{path}, pipe(eps))
			for _, shards := range []int{1, 4} {
				cl := localCluster(t, shards, 1)
				got := clusterRun(t, cl, []string{path}, pipe(eps))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s eps=%g on %d shards diverged from single engine:\ngot  %v\nwant %v",
						name, eps, shards, got, want)
				}
				// and the end-to-end bound against the exact result holds
				for r := range exact {
					for i := range exact[r] {
						if d := math.Abs(float64(got[r][i]) - float64(exact[r][i])); d > eps+1e-3 {
							t.Fatalf("%s eps=%g shards=%d row %d: error %g exceeds bound", name, eps, shards, r, d)
						}
					}
				}
			}
		}
	}
}

// TestClusterToleranceMisalignedStripped: when shard row offsets do NOT
// land on coarsest-tier boundaries, the coordinator must strip the
// tolerance and run exact — even an absurd eps cannot change the
// result.
func TestClusterToleranceMisalignedStripped(t *testing.T) {
	// lat=6 over 4 shards → part rows 2,4,2,4 (offsets 0,2,6,8): not
	// multiples of 8, so a forwarded tolerance would refine against
	// misaligned tier blocks — the coordinator must not forward it
	path := writeClusterFile(t, t.TempDir(), 6, 2, 12)
	pipe := func(tol float64) []cubeserver.PipelineStep {
		return []cubeserver.PipelineStep{
			{Op: "apply", Expr: "x*2"},
			{Op: "reduce", RowOp: "avg", Tolerance: tol},
		}
	}
	want := engineRef(t, []string{path}, pipe(0))
	cl := localCluster(t, 4, 1)
	got := clusterRun(t, cl, []string{path}, pipe(100))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("misaligned tolerance was not stripped:\ngot  %v\nwant %v", got, want)
	}
}
