// Package execq implements a bounded, multi-tenant job execution queue
// for the HPCWaaS Execution API (paper §4.1, Figure 1) and any other
// subsystem that must absorb bursty load: a fixed-size worker pool
// drains a FIFO-within-priority heap, admission control enforces a
// global depth bound, per-principal concurrency quotas and token-bucket
// rate limits, failed jobs retry with exponential backoff + jitter,
// queued and running jobs are cancellable, a JSON-lines journal makes
// queued/running work survive a crash, and Drain stops intake and waits
// for in-flight jobs — the producer–consumer task-server shape that
// Merlin (Peterson et al., 2019) identifies as the piece that lets
// ML-ready HPC ensembles scale to many concurrent users.
//
// The queue is workflow-agnostic: a Job carries an opaque JSON payload
// and is executed either by its own Run closure or by the queue-wide
// Config.Handler (the only option that survives journal recovery,
// since closures cannot be persisted).
package execq

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"repro/internal/obs"
)

// State is the lifecycle of one job.
type State string

// Job states. QUEUED, RUNNING and RETRYING are live (recovered after a
// crash); DONE, FAILED and CANCELED are terminal.
const (
	StateQueued   State = "QUEUED"
	StateRunning  State = "RUNNING"
	StateRetrying State = "RETRYING"
	StateDone     State = "DONE"
	StateFailed   State = "FAILED"
	StateCanceled State = "CANCELED"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Admission sentinels. Submit wraps the first three in an error that
// also carries a Retry-After hint; extract it with RetryAfter.
var (
	ErrQueueFull     = errors.New("execq: queue full")
	ErrQuotaExceeded = errors.New("execq: principal quota exceeded")
	ErrRateLimited   = errors.New("execq: principal rate limited")
	ErrDraining      = errors.New("execq: queue draining")
	ErrClosed        = errors.New("execq: queue closed")
	ErrUnknownJob    = errors.New("execq: unknown job")
	ErrDuplicateID   = errors.New("execq: duplicate job id")
)

// admissionError pairs a rejection sentinel with a retry hint.
type admissionError struct {
	err        error
	retryAfter time.Duration
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.retryAfter)
}

func (e *admissionError) Unwrap() error { return e.err }

// RetryAfter extracts the suggested wait from an admission rejection
// (queue full, quota exceeded, rate limited). ok is false for every
// other error.
func RetryAfter(err error) (time.Duration, bool) {
	var ae *admissionError
	if errors.As(err, &ae) {
		return ae.retryAfter, true
	}
	return 0, false
}

// permanentError marks a handler failure that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the queue fails the job immediately instead of
// retrying it.
func Permanent(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Job is one unit of work submitted to the queue.
type Job struct {
	// ID names the job; empty means the queue assigns "job-N".
	ID string
	// Principal is the tenant the job is accounted against.
	Principal string
	// Priority orders dispatch: higher runs first, FIFO within equal
	// priority.
	Priority int
	// Payload is the opaque job description handed to the handler and
	// persisted in the journal.
	Payload json.RawMessage
	// Retries is how many times a transiently failed run is retried
	// (with exponential backoff) before the job is FAILED.
	Retries int
	// Run, when non-nil, executes the job instead of Config.Handler.
	// Closures are not journaled: a recovered job always uses Handler.
	Run func(ctx context.Context) error
}

// JobView is a race-free snapshot of a job's state.
type JobView struct {
	ID        string          `json:"id"`
	Principal string          `json:"principal,omitempty"`
	Priority  int             `json:"priority,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	State     State           `json:"state"`
	// Attempt counts run starts (1 on the first execution).
	Attempt   int       `json:"attempt"`
	Err       string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// Config parameterizes a Queue. Zero values get defaults from New.
type Config struct {
	// Workers is the fixed worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// Submit rejects with ErrQueueFull beyond it (default 256).
	QueueDepth int
	// PerPrincipalLimit bounds one principal's live jobs
	// (queued+running+retrying); 0 disables the quota.
	PerPrincipalLimit int
	// RatePerSec token-bucket refill rate per principal; 0 disables
	// rate limiting. Burst is the bucket size (default ceil(rate), min 1).
	RatePerSec float64
	Burst      int
	// BaseBackoff/MaxBackoff shape the retry delay:
	// min(Max, Base<<(attempt-1)) scaled by jitter in [0.5,1.5)
	// (defaults 100ms / 10s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryAfterHint is the Retry-After suggestion attached to queue-full
	// and quota rejections (default 1s). Rate-limit rejections compute
	// the exact wait instead.
	RetryAfterHint time.Duration
	// JournalPath, when set, persists live jobs as JSON lines; New
	// replays it and re-enqueues jobs that were queued/running/retrying.
	JournalPath string
	// JournalMaxBytes triggers journal compaction: when the file grows
	// past this size the live jobs are rewritten to a temp file that
	// atomically replaces it (terminal records are dead weight — only
	// live jobs matter to recovery). Default 1<<20; negative disables.
	JournalMaxBytes int64
	// Seed fixes the jitter PRNG (0 means a time-derived seed).
	Seed int64
	// Handler executes jobs whose Run is nil; required for journal
	// recovery to be useful.
	Handler func(ctx context.Context, job JobView) error
	// OnChange observes every state transition, delivered in order from
	// a single goroutine. It may call back into the queue.
	OnChange func(JobView)
	// Metrics, when non-nil, receives the queue's counters, latency
	// histograms and live-state gauges (execq_* families). One queue per
	// registry. Nil keeps the instruments private to Stats().
	Metrics *obs.Registry

	// nowFn overrides the clock in tests.
	nowFn func() time.Time
}

// item is the queue's mutable record of one job.
type item struct {
	Job
	seq      uint64 // FIFO tie-break within priority
	idx      int    // heap index, -1 when not queued
	state    State
	attempt  int
	errMsg   string
	canceled bool
	// cancelRun interrupts the running handler; timer is the pending
	// retry re-enqueue.
	cancelRun context.CancelFunc
	timer     *time.Timer

	admitSeq  uint64 // seq at first enqueue: stable submit order
	submitted time.Time
	enqueued  time.Time // last (re-)enqueue, for wait-latency
	started   time.Time
	finished  time.Time
}

func (it *item) view() JobView {
	return JobView{
		ID:        it.ID,
		Principal: it.Principal,
		Priority:  it.Priority,
		Payload:   it.Payload,
		State:     it.state,
		Attempt:   it.attempt,
		Err:       it.errMsg,
		Submitted: it.submitted,
		Started:   it.started,
		Finished:  it.finished,
	}
}

// itemHeap orders queued items by (priority desc, seq asc).
type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// bucket is one principal's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Queue is a bounded multi-tenant execution queue. Create with New.
type Queue struct {
	cfg Config

	mu           sync.Mutex
	cond         *sync.Cond
	heap         itemHeap
	items        map[string]*item // live jobs (queued, running, retrying)
	perPrincipal map[string]int
	buckets      map[string]*bucket
	running      int
	retrying     int
	seq          uint64
	nextID       uint64
	draining     bool
	closed       bool
	rng          *rand.Rand
	met          *qmetrics
	journal      *journal
	compactFloor int64 // next compaction trigger (see maybeCompactLocked)

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup // workers
	inflight   sync.WaitGroup // live jobs

	// event delivery: appended under emu, drained by one notifier
	// goroutine so OnChange sees transitions in order and may call back
	// into the queue without deadlocking.
	emu          sync.Mutex
	evCond       *sync.Cond
	events       []JobView
	evDelivering bool
	evStopped    bool
	evDone       chan struct{}
}

// New validates cfg, replays the journal (if configured), starts the
// worker pool and returns a live queue. Recovered jobs bypass admission
// control and are re-enqueued with a fresh attempt counter; OnChange
// observes them as QUEUED.
func New(cfg Config) (*Queue, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	if cfg.JournalMaxBytes == 0 {
		cfg.JournalMaxBytes = 1 << 20
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.RatePerSec))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.nowFn == nil {
		cfg.nowFn = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	q := &Queue{
		cfg:          cfg,
		items:        make(map[string]*item),
		perPrincipal: make(map[string]int),
		buckets:      make(map[string]*bucket),
		rng:          rand.New(rand.NewSource(seed)),
		met:          newQMetrics(cfg.Metrics),
		evDone:       make(chan struct{}),
	}
	q.registerGauges(cfg.Metrics)
	q.cond = sync.NewCond(&q.mu)
	q.evCond = sync.NewCond(&q.emu)
	q.baseCtx, q.cancelBase = context.WithCancel(context.Background())

	var pending []Job
	if cfg.JournalPath != "" {
		var err error
		var skipped int
		pending, skipped, err = replayJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		q.met.journalSkipped.Add(float64(skipped))
		q.journal, err = resetJournal(cfg.JournalPath, pending)
		if err != nil {
			return nil, err
		}
	}

	go q.notifier()
	for _, j := range pending {
		q.enqueueRecovered(j)
	}
	// Deliver the recovered-QUEUED events before any worker can race
	// ahead: when New returns, OnChange has observed every recovered job.
	q.flushEvents()
	q.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	return q, nil
}

func (q *Queue) now() time.Time { return q.cfg.nowFn() }

// Submit admits a job or rejects it with ErrQueueFull, ErrQuotaExceeded
// or ErrRateLimited (all carrying a RetryAfter hint), ErrDraining or
// ErrClosed. On success the returned view is the QUEUED snapshot.
func (q *Queue) Submit(j Job) (JobView, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return JobView{}, ErrClosed
	}
	if q.draining {
		q.mu.Unlock()
		return JobView{}, ErrDraining
	}
	if len(q.heap) >= q.cfg.QueueDepth {
		q.met.rejectedFull.Inc()
		hint := q.admitHintLocked()
		q.mu.Unlock()
		return JobView{}, &admissionError{err: ErrQueueFull, retryAfter: hint}
	}
	if q.cfg.PerPrincipalLimit > 0 && q.perPrincipal[j.Principal] >= q.cfg.PerPrincipalLimit {
		q.met.rejectedQuota.Inc()
		hint := q.admitHintLocked()
		q.mu.Unlock()
		return JobView{}, &admissionError{err: ErrQuotaExceeded, retryAfter: hint}
	}
	if q.cfg.RatePerSec > 0 {
		if wait := q.takeTokenLocked(j.Principal); wait > 0 {
			q.met.rejectedRate.Inc()
			q.mu.Unlock()
			return JobView{}, &admissionError{err: ErrRateLimited, retryAfter: wait}
		}
	}
	if j.ID == "" {
		q.nextID++
		j.ID = fmt.Sprintf("job-%d", q.nextID)
	}
	if _, dup := q.items[j.ID]; dup {
		q.mu.Unlock()
		return JobView{}, fmt.Errorf("%w: %s", ErrDuplicateID, j.ID)
	}
	it := q.enqueueLocked(j)
	q.met.submitted.Inc()
	if q.journal != nil {
		q.journal.append(submitRecord(j, it.submitted))
		q.maybeCompactLocked()
	}
	view := it.view()
	q.mu.Unlock()
	return view, nil
}

// admitHintLocked estimates when a queue-full or quota rejection is
// worth retrying: the mean observed run time divided by the worker
// count approximates the time for one slot to free. With no completed
// runs yet it falls back to the configured hint.
func (q *Queue) admitHintLocked() time.Duration {
	snap := q.met.run.Snapshot()
	if snap.Count == 0 {
		return q.cfg.RetryAfterHint
	}
	d := time.Duration(snap.Sum / float64(snap.Count) / float64(q.cfg.Workers) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max := 10 * q.cfg.RetryAfterHint; d > max {
		d = max
	}
	return d
}

// maybeCompactLocked rewrites the journal down to the live jobs once it
// outgrows the configured bound. A journal that is mostly live jobs
// cannot shrink below the bound, so after each compaction the next
// trigger is floored at twice the compacted size — a full queue does
// not recompact on every append.
func (q *Queue) maybeCompactLocked() {
	if q.journal == nil || q.cfg.JournalMaxBytes <= 0 {
		return
	}
	threshold := q.cfg.JournalMaxBytes
	if q.compactFloor > threshold {
		threshold = q.compactFloor
	}
	if q.journal.size() <= threshold {
		return
	}
	live := make([]*item, 0, len(q.items))
	for _, it := range q.items {
		live = append(live, it)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].admitSeq < live[j].admitSeq })
	recs := make([]journalRecord, len(live))
	for i, it := range live {
		recs[i] = submitRecord(it.Job, it.submitted)
	}
	if err := q.journal.compact(recs); err != nil {
		return // recorded as journal.lastErr; live traffic keeps going
	}
	q.met.journalCompact.Inc()
	q.compactFloor = 2 * q.journal.size()
}

// enqueueRecovered re-admits a journaled job, bypassing admission
// control (the work was already accepted before the crash).
func (q *Queue) enqueueRecovered(j Job) {
	q.mu.Lock()
	if _, dup := q.items[j.ID]; dup {
		q.mu.Unlock()
		return
	}
	q.enqueueLocked(j)
	q.met.recovered.Inc()
	q.mu.Unlock()
}

// enqueueLocked inserts a new live item and emits QUEUED.
func (q *Queue) enqueueLocked(j Job) *item {
	now := q.now()
	q.seq++
	it := &item{
		Job:       j,
		seq:       q.seq,
		admitSeq:  q.seq,
		idx:       -1,
		state:     StateQueued,
		submitted: now,
		enqueued:  now,
	}
	heap.Push(&q.heap, it)
	q.items[j.ID] = it
	q.perPrincipal[j.Principal]++
	q.inflight.Add(1)
	q.emitLocked(it.view())
	q.cond.Broadcast()
	return it
}

// takeTokenLocked consumes one token from the principal's bucket or
// returns how long until one is available.
func (q *Queue) takeTokenLocked(principal string) time.Duration {
	now := q.now()
	b := q.buckets[principal]
	if b == nil {
		b = &bucket{tokens: float64(q.cfg.Burst), last: now}
		q.buckets[principal] = b
	}
	b.tokens = math.Min(float64(q.cfg.Burst), b.tokens+now.Sub(b.last).Seconds()*q.cfg.RatePerSec)
	b.last = now
	// The epsilon admits a client that slept *exactly* the advertised
	// Retry-After: its refill lands within float rounding of one token.
	if b.tokens >= 1-1e-9 {
		b.tokens = math.Max(0, b.tokens-1)
		return 0
	}
	// The hint is the actual next-token time, not a fixed constant: a
	// client sleeping exactly this long is admitted on its next try.
	wait := time.Duration(math.Ceil((1 - b.tokens) / q.cfg.RatePerSec * float64(time.Second)))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// worker is one pool goroutine: pop, run, finalize or schedule a retry.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for {
			if q.closed {
				q.mu.Unlock()
				return
			}
			if len(q.heap) > 0 {
				break
			}
			if q.draining && q.running == 0 && q.retrying == 0 {
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
		}
		it := heap.Pop(&q.heap).(*item)
		if it.canceled {
			q.finalizeLocked(it, StateCanceled, context.Canceled)
			q.cond.Broadcast()
			q.mu.Unlock()
			continue
		}
		now := q.now()
		q.met.wait.Observe(now.Sub(it.enqueued).Seconds())
		it.attempt++
		it.state = StateRunning
		it.started = now
		ctx, cancel := context.WithCancel(q.baseCtx)
		it.cancelRun = cancel
		q.running++
		if q.journal != nil {
			q.journal.append(stateRecord(it.ID, StateRunning, "", now))
			q.maybeCompactLocked()
		}
		q.emitLocked(it.view())
		q.mu.Unlock()

		err := q.invoke(ctx, it)
		cancel()

		q.mu.Lock()
		q.running--
		it.cancelRun = nil
		switch {
		case err == nil:
			q.finalizeLocked(it, StateDone, nil)
		case it.canceled || errors.Is(err, context.Canceled):
			q.finalizeLocked(it, StateCanceled, err)
		case it.attempt <= it.Retries && !isPermanent(err) && !q.closed && q.baseCtx.Err() == nil:
			q.scheduleRetryLocked(it, err)
		default:
			q.finalizeLocked(it, StateFailed, err)
		}
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// invoke runs the job body, converting panics into errors.
func (q *Queue) invoke(ctx context.Context, it *item) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("execq: job %s panicked: %v", it.ID, p)
		}
	}()
	if it.Run != nil {
		return it.Run(ctx)
	}
	if q.cfg.Handler == nil {
		return Permanent(fmt.Errorf("execq: job %s has no handler", it.ID))
	}
	return q.cfg.Handler(ctx, it.view())
}

// scheduleRetryLocked parks a transiently failed job until its backoff
// timer re-enqueues it.
func (q *Queue) scheduleRetryLocked(it *item, cause error) {
	it.state = StateRetrying
	it.errMsg = cause.Error()
	q.retrying++
	q.met.retried.Inc()
	delay := q.backoffLocked(it.attempt)
	if q.journal != nil {
		q.journal.append(stateRecord(it.ID, StateRetrying, it.errMsg, q.now()))
		q.maybeCompactLocked()
	}
	q.emitLocked(it.view())
	it.timer = time.AfterFunc(delay, func() { q.requeue(it) })
}

// backoffLocked computes min(Max, Base*2^(attempt-1)) with jitter.
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := float64(q.cfg.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if d > float64(q.cfg.MaxBackoff) {
		d = float64(q.cfg.MaxBackoff)
	}
	d *= 0.5 + q.rng.Float64()
	return time.Duration(d)
}

// requeue is the retry timer callback: put the job back on the heap.
func (q *Queue) requeue(it *item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it.state != StateRetrying {
		return
	}
	q.retrying--
	it.timer = nil
	if q.closed || it.canceled {
		q.finalizeLocked(it, StateCanceled, context.Canceled)
		q.cond.Broadcast()
		return
	}
	q.seq++
	it.seq = q.seq
	it.state = StateQueued
	it.enqueued = q.now()
	heap.Push(&q.heap, it)
	q.emitLocked(it.view())
	q.cond.Broadcast()
}

// finalizeLocked moves a job to a terminal state, updates accounting,
// journals, emits and releases the in-flight reference.
func (q *Queue) finalizeLocked(it *item, state State, cause error) {
	it.state = state
	it.finished = q.now()
	if cause != nil {
		it.errMsg = cause.Error()
	}
	if !it.started.IsZero() {
		q.met.run.Observe(it.finished.Sub(it.started).Seconds())
	}
	switch state {
	case StateDone:
		q.met.completed.Inc()
	case StateFailed:
		q.met.failed.Inc()
	case StateCanceled:
		q.met.canceled.Inc()
	}
	delete(q.items, it.ID)
	if n := q.perPrincipal[it.Principal] - 1; n > 0 {
		q.perPrincipal[it.Principal] = n
	} else {
		delete(q.perPrincipal, it.Principal)
	}
	if q.journal != nil {
		q.journal.append(stateRecord(it.ID, state, it.errMsg, it.finished))
		q.maybeCompactLocked()
	}
	q.emitLocked(it.view())
	q.inflight.Done()
}

// Cancel cancels a live job: a queued or backoff-parked job finalizes
// as CANCELED immediately; a running job has its context canceled and
// finalizes when the handler returns. Unknown (or already terminal)
// IDs return ErrUnknownJob.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.items[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	it.canceled = true
	switch it.state {
	case StateQueued:
		if it.idx >= 0 {
			heap.Remove(&q.heap, it.idx)
		}
		q.finalizeLocked(it, StateCanceled, context.Canceled)
		q.cond.Broadcast()
	case StateRetrying:
		if it.timer != nil && it.timer.Stop() {
			q.retrying--
			it.timer = nil
			q.finalizeLocked(it, StateCanceled, context.Canceled)
			q.cond.Broadcast()
		}
		// else the timer already fired; requeue observes canceled.
	case StateRunning:
		if it.cancelRun != nil {
			it.cancelRun()
		}
	}
	return nil
}

// Get returns a snapshot of a live job. Terminal jobs are forgotten by
// the queue (callers track outcomes via OnChange).
func (q *Queue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	it, ok := q.items[id]
	if !ok {
		return JobView{}, false
	}
	return it.view(), true
}

// Drain stops intake (Submit returns ErrDraining) and waits for every
// live job — queued, running or awaiting retry — to reach a terminal
// state, then stops the workers and flushes pending OnChange events.
// It returns ctx.Err() if the deadline expires first; the queue keeps
// running in that case and Close can force it down.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.wg.Wait()
		q.flushEvents()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close force-stops the queue: running handlers get their contexts
// canceled, queued and retry-parked jobs finalize as CANCELED, workers
// exit, events flush and the journal closes. Safe to call after Drain
// (then it is a plain cleanup) and idempotent.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.cancelBase()
	live := make([]*item, 0, len(q.items))
	for _, it := range q.items {
		live = append(live, it)
	}
	for _, it := range live {
		it.canceled = true
		switch it.state {
		case StateQueued:
			if it.idx >= 0 {
				heap.Remove(&q.heap, it.idx)
			}
			q.finalizeLocked(it, StateCanceled, context.Canceled)
		case StateRetrying:
			if it.timer != nil && it.timer.Stop() {
				q.retrying--
				it.timer = nil
				q.finalizeLocked(it, StateCanceled, context.Canceled)
			}
		}
	}
	q.cond.Broadcast()
	q.mu.Unlock()

	q.wg.Wait()
	q.stopEvents()
	q.mu.Lock()
	j := q.journal
	q.journal = nil
	q.mu.Unlock()
	if j != nil {
		return j.close()
	}
	return nil
}

// WaitIdle blocks until the queue holds no live jobs and all OnChange
// events have been delivered (test and benchmark helper).
func (q *Queue) WaitIdle(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		case <-stop:
		}
	}()
	q.mu.Lock()
	for len(q.items) > 0 && ctx.Err() == nil {
		q.cond.Wait()
	}
	q.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	q.flushEvents()
	return nil
}

// --- event delivery -------------------------------------------------------

// emitLocked queues a state-change event; caller holds q.mu.
func (q *Queue) emitLocked(v JobView) {
	q.emu.Lock()
	q.events = append(q.events, v)
	q.evCond.Broadcast()
	q.emu.Unlock()
}

// notifier delivers events to OnChange in order from one goroutine.
func (q *Queue) notifier() {
	for {
		q.emu.Lock()
		for len(q.events) == 0 && !q.evStopped {
			q.evCond.Wait()
		}
		if len(q.events) == 0 && q.evStopped {
			q.emu.Unlock()
			close(q.evDone)
			return
		}
		batch := q.events
		q.events = nil
		q.evDelivering = true
		q.emu.Unlock()

		if q.cfg.OnChange != nil {
			for _, v := range batch {
				q.cfg.OnChange(v)
			}
		}

		q.emu.Lock()
		q.evDelivering = false
		q.evCond.Broadcast()
		q.emu.Unlock()
	}
}

// flushEvents blocks until the notifier has delivered everything queued
// so far.
func (q *Queue) flushEvents() {
	q.emu.Lock()
	for (len(q.events) > 0 || q.evDelivering) && !q.evStopped {
		q.evCond.Wait()
	}
	q.emu.Unlock()
}

// stopEvents flushes and terminates the notifier goroutine.
func (q *Queue) stopEvents() {
	q.emu.Lock()
	q.evStopped = true
	q.evCond.Broadcast()
	q.emu.Unlock()
	<-q.evDone
}
