package cubeserver

// mux.go is the client side of the v2 protocol: one connection shared
// by any number of concurrent Do calls. A writer goroutine drains a
// frame channel and a reader goroutine routes response frames through
// an in-flight table keyed by request ID, so N callers pipeline their
// requests instead of queueing on a client mutex the way the legacy
// gob path does.
//
// Failure model: the first transport error poisons the connection.
// Every call in flight at that moment is aborted with the raw error;
// if none was, the next Do reports the raw error once. All later calls
// fail fast with ErrClientBroken — matching the legacy client's
// semantics, where exactly one caller sees what actually broke and the
// rest are told to reconnect.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// errClientClosed poisons a mux torn down by Close rather than by a
// transport failure.
var errClientClosed = errors.New("cubeserver: client closed")

type muxResult struct {
	frame []byte // pooled response frame; body at frame[frameMetaLen:]
	err   error
}

type muxConn struct {
	conn    net.Conn
	br      *bufio.Reader
	nextID  atomic.Uint64
	writeCh chan []byte
	done    chan struct{}

	mu          sync.Mutex
	inflight    map[uint64]chan muxResult
	err         error // first transport error; latched
	rawReported bool  // the raw error has been handed to some caller
	closed      bool
}

func newMuxConn(conn net.Conn) *muxConn {
	m := &muxConn{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		writeCh:  make(chan []byte),
		done:     make(chan struct{}),
		inflight: make(map[uint64]chan muxResult),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

func (m *muxConn) writeLoop() {
	for {
		select {
		case buf := <-m.writeCh:
			_, err := m.conn.Write(buf)
			putBuf(buf)
			if err != nil {
				m.poison(err)
				return
			}
		case <-m.done:
			return
		}
	}
}

func (m *muxConn) readLoop() {
	for {
		ftype, id, frame, _, _, err := readFrame(m.br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = errors.New("cubeserver: connection closed")
			}
			m.poison(err)
			return
		}
		if ftype != frameResponse {
			putBuf(frame)
			m.poison(fmt.Errorf("cubeserver: unexpected frame type %d", ftype))
			return
		}
		m.mu.Lock()
		ch, ok := m.inflight[id]
		delete(m.inflight, id)
		m.mu.Unlock()
		if !ok {
			// A response nobody asked for means the stream is desynced;
			// nothing decoded after this point can be trusted.
			putBuf(frame)
			m.poison(fmt.Errorf("cubeserver: response for unknown request id %d", id))
			return
		}
		ch <- muxResult{frame: frame}
	}
}

// poison latches the first transport error, tears the connection down
// and aborts every in-flight call with the raw error.
func (m *muxConn) poison(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	raw := m.err
	waiters := m.inflight
	m.inflight = make(map[uint64]chan muxResult)
	if len(waiters) > 0 {
		// Some caller is about to receive the raw error; later calls get
		// ErrClientBroken.
		m.rawReported = true
	}
	alreadyClosed := m.closed
	m.closed = true
	m.mu.Unlock()
	if !alreadyClosed {
		close(m.done)
		m.conn.Close()
	}
	for _, ch := range waiters {
		ch <- muxResult{err: raw}
	}
}

// brokenErrLocked returns the error a new call should see on a
// poisoned connection: the raw transport error exactly once, then
// ErrClientBroken wrapping it. Callers hold m.mu.
func (m *muxConn) brokenErrLocked() error {
	if !m.rawReported {
		m.rawReported = true
		return m.err
	}
	return fmt.Errorf("%w: %v", ErrClientBroken, m.err)
}

func (m *muxConn) broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err != nil
}

// close is idempotent and safe concurrently with in-flight do calls,
// which abort with the teardown error.
func (m *muxConn) close() error {
	m.mu.Lock()
	if m.err == nil {
		m.err = errClientClosed
		// An explicit close is not a surprise worth reporting raw; later
		// calls go straight to ErrClientBroken.
		m.rawReported = true
	}
	m.mu.Unlock()
	m.poison(errClientClosed)
	return nil
}

func (m *muxConn) do(req *Request) (*Response, error) {
	id := m.nextID.Add(1)
	ch := make(chan muxResult, 1)

	m.mu.Lock()
	if m.err != nil {
		err := m.brokenErrLocked()
		m.mu.Unlock()
		return nil, err
	}
	m.inflight[id] = ch
	m.mu.Unlock()

	buf := encodeRequestFrame(getBuf(), id, req)
	select {
	case m.writeCh <- buf:
	case <-m.done:
		putBuf(buf)
		// poison may have drained our entry already; prefer its verdict.
		select {
		case res := <-ch:
			return nil, res.err
		default:
		}
		m.mu.Lock()
		delete(m.inflight, id)
		err := m.brokenErrLocked()
		m.mu.Unlock()
		return nil, err
	}

	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	resp := new(Response)
	err := DecodeResponseV2(res.frame[frameMetaLen:], resp)
	putBuf(res.frame)
	if err != nil {
		// A frame that parses as a frame but not as a response is a
		// protocol breach; kill the session and report it raw here.
		m.poison(err)
		m.mu.Lock()
		m.rawReported = true
		m.mu.Unlock()
		return nil, err
	}
	return resp, nil
}
