package cubecluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
	"repro/internal/ncdf"
	"repro/internal/obs"
)

// Config parameterizes a cluster coordinator.
type Config struct {
	// Shards is the number of row-range shards (default 1).
	Shards int
	// Replicas is the number of replicas per shard (default 1).
	Replicas int
	// Engine configures each local replica engine built by NewLocal.
	Engine datacube.Config
	// Metrics receives coordinator instruments (optional).
	Metrics *obs.Registry
	// SpoolDir stages replica resync files for Heal (default: the OS
	// temp dir).
	SpoolDir string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.SpoolDir == "" {
		c.SpoolDir = os.TempDir()
	}
	return c
}

// replica is one coordinator-side replica handle. down marks a replica
// the coordinator stopped trusting after a transport failure (or an
// engine-closed response — the engine equivalent of a dead process);
// stale additionally marks it as missing writes, requiring a Heal
// resync before it can serve again.
type replica struct {
	tr    Transport
	down  bool
	stale bool
}

// Cluster is the shard-aware coordinator. It implements
// cubeserver.Dispatcher: every wire operation a single engine serves is
// mapped onto scatter/gather over the shard fleet, so clients cannot
// tell a cluster from one big engine (beyond the speedup).
//
// Operations are serialized by a coordinator lock; within one
// operation the per-shard scatter fans out concurrently, and further
// parallelism lives inside the shard engines' fragment executors.
type Cluster struct {
	mu      sync.Mutex
	stateMu sync.Mutex // replica down/stale flags; see markDown
	cfg     Config
	shards  [][]*replica
	engines [][]*datacube.Engine // non-nil only for NewLocal replicas
	cat     map[string]*entry
	nextID  int
	healSeq int
	met     *clMetrics
	closed  bool
}

// New builds a coordinator over caller-provided transports, one slice
// of replicas per shard.
func New(cfg Config, transports [][]Transport) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(transports) == 0 {
		return nil, fmt.Errorf("cubecluster: no shards")
	}
	cfg.Shards = len(transports)
	cl := &Cluster{cfg: cfg, cat: make(map[string]*entry), met: newCLMetrics(cfg.Metrics)}
	for s, reps := range transports {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cubecluster: shard %d has no replicas", s)
		}
		row := make([]*replica, len(reps))
		for r, tr := range reps {
			row[r] = &replica{tr: tr}
			cl.met.replicaUp.With(strconv.Itoa(s), strconv.Itoa(r)).Set(1)
		}
		cl.shards = append(cl.shards, row)
	}
	return cl, nil
}

// NewLocal builds an in-process cluster: Shards×Replicas engines, each
// behind an EngineTransport. This is the benchmark and test
// deployment; production shards would be DialTransport handles.
func NewLocal(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	transports := make([][]Transport, cfg.Shards)
	engines := make([][]*datacube.Engine, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		for r := 0; r < cfg.Replicas; r++ {
			e := datacube.NewEngine(cfg.Engine)
			engines[s] = append(engines[s], e)
			transports[s] = append(transports[s], NewEngineTransport(e))
		}
	}
	cl, err := New(cfg, transports)
	if err != nil {
		return nil, err
	}
	cl.engines = engines
	return cl, nil
}

// Engine returns the local replica engine at (shard, rep), or nil for
// clusters not built by NewLocal. Tests use it to kill replicas.
func (cl *Cluster) Engine(shard, rep int) *datacube.Engine {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.engines == nil || shard >= len(cl.engines) || rep >= len(cl.engines[shard]) {
		return nil
	}
	return cl.engines[shard][rep]
}

// Shards reports the shard count.
func (cl *Cluster) Shards() int { return len(cl.shards) }

// Ping probes the coordinator through the wire path.
func (cl *Cluster) Ping() error {
	resp := cl.Dispatch(&cubeserver.Request{Op: "ping"})
	if err := cubeserver.ResponseError(resp); err != nil {
		return err
	}
	if resp.Value != "pong" {
		return fmt.Errorf("cubecluster: unexpected ping reply %q", resp.Value)
	}
	return nil
}

// Close shuts down transports and any NewLocal engines.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	for _, reps := range cl.shards {
		for _, r := range reps {
			_ = r.tr.Close()
		}
	}
	for _, row := range cl.engines {
		for _, e := range row {
			e.Close()
		}
	}
	return nil
}

// Dispatch implements cubeserver.Dispatcher over the shard fleet.
func (cl *Cluster) Dispatch(req *cubeserver.Request) *cubeserver.Response {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	resp := &cubeserver.Response{}
	fail := func(err error) *cubeserver.Response {
		resp.Err = err.Error()
		resp.ErrCode = cubeserver.ErrCodeOf(err)
		return resp
	}
	if cl.closed {
		return fail(fmt.Errorf("cubecluster: coordinator closed: %w", datacube.ErrEngineClosed))
	}

	switch req.Op {
	case "ping":
		resp.Value = "pong"
	case "importfiles":
		e, err := cl.importEntry(req)
		if err != nil {
			return fail(err)
		}
		resp.Shape = e.shape()
	case "pipeline":
		e, err := cl.runSteps(req.CubeID, req.Pipeline)
		if err != nil {
			return fail(err)
		}
		resp.Shape = e.shape()
	case "apply", "reduce", "reducegroup", "reducestride", "subset", "subsetrows", "intercube", "aggrows":
		e, err := cl.runSteps(req.CubeID, []cubeserver.PipelineStep{{
			Op: req.Op, Expr: req.Expr, RowOp: req.RowOp, Params: req.Params,
			Group: req.Group, Lo: req.Lo, Hi: req.Hi, OtherID: req.OtherID,
		}})
		if err != nil {
			return fail(err)
		}
		resp.Shape = e.shape()
	case "row":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		row, err := cl.fetchRow(e, req.Row)
		if err != nil {
			return fail(err)
		}
		resp.Values = [][]float32{row}
	case "values":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		vals, err := cl.gatherValues(e)
		if err != nil {
			return fail(err)
		}
		resp.Values = vals
		resp.Shape = e.shape()
	case "scalar":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		if e.totalRows() != 1 || e.implicit.Size != 1 {
			return fail(fmt.Errorf("datacube: cube is %d×%d, not scalar", e.totalRows(), e.implicit.Size))
		}
		r, err := cl.readPart(&e.parts[0], &cubeserver.Request{Op: "scalar"})
		if err != nil {
			return fail(err)
		}
		resp.Scalar = r.Scalar
	case "shape":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		resp.Shape = e.shape()
	case "list":
		resp.IDs = cl.listIDs()
	case "delete":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		cl.deleteEntry(e)
	case "export":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		if err := cl.exportEntry(e, req.Path); err != nil {
			return fail(err)
		}
	case "setmeta":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		e.meta[req.Key] = req.Value
	case "getmeta":
		e, err := cl.getEntry(req.CubeID)
		if err != nil {
			return fail(err)
		}
		resp.Value, resp.Found = e.meta[req.Key]
	case "stats":
		resp.Stats = cl.gatherStats()
	default:
		return fail(fmt.Errorf("%w %q (cluster coordinator)", cubeserver.ErrUnknownOp, req.Op))
	}
	return resp
}

// fetchRow locates the part holding global row r (parts are ordered by
// leading range, and global row order is part order) and forwards the
// read with the part-local index.
func (cl *Cluster) fetchRow(e *entry, r int) ([]float32, error) {
	if r < 0 || r >= e.totalRows() {
		return nil, fmt.Errorf("datacube: row %d out of range [0,%d)", r, e.totalRows())
	}
	base := 0
	for i := range e.parts {
		p := &e.parts[i]
		if r < base+p.rows {
			resp, err := cl.readPart(p, &cubeserver.Request{Op: "row", Row: r - base})
			if err != nil {
				return nil, err
			}
			return resp.Values[0], nil
		}
		base += p.rows
	}
	return nil, fmt.Errorf("datacube: row %d out of range [0,%d)", r, e.totalRows())
}

// gatherValues concatenates part payloads in global row order; parts
// are fetched concurrently and stitched back in part order.
func (cl *Cluster) gatherValues(e *entry) ([][]float32, error) {
	chunks := make([][][]float32, len(e.parts))
	err := forEachPart(len(e.parts), func(i int) error {
		resp, err := cl.readPart(&e.parts[i], &cubeserver.Request{Op: "values"})
		if err != nil {
			return err
		}
		chunks[i] = resp.Values
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float32, 0, e.totalRows())
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// deleteEntry frees every replica's slice and drops the catalog record.
// Unreachable replicas are marked down; their leftovers go when the
// replica is healed (resync re-seeds from the catalog, which no longer
// lists the cube).
func (cl *Cluster) deleteEntry(e *entry) {
	for i := range e.parts {
		p := &e.parts[i]
		for rep, id := range p.ids {
			if id == "" || cl.isDown(p.shard, rep) {
				continue
			}
			if _, err := cl.do(p.shard, rep, &cubeserver.Request{Op: "delete", CubeID: id}); err != nil {
				cl.markDown(p.shard, rep)
			}
		}
	}
	delete(cl.cat, e.id)
}

// exportEntry writes the cube to a GNC1 file coordinator-side, after
// gathering the parts. Mirrors datacube's export conventions: the
// implicit dimension appears only when it is non-degenerate (or the
// cube is rowless).
func (cl *Cluster) exportEntry(e *entry, path string) error {
	vals, err := cl.gatherValues(e)
	if err != nil {
		return err
	}
	ds := ncdf.NewDataset()
	var dimNames []string
	for _, d := range e.explicit {
		if err := ds.AddDim(d.Name, d.Size); err != nil {
			return err
		}
		dimNames = append(dimNames, d.Name)
	}
	if e.implicit.Size > 1 || len(e.explicit) == 0 {
		if err := ds.AddDim(e.implicit.Name, e.implicit.Size); err != nil {
			return err
		}
		dimNames = append(dimNames, e.implicit.Name)
	}
	flat := make([]float32, 0, len(vals)*e.implicit.Size)
	for _, row := range vals {
		flat = append(flat, row...)
	}
	measure := e.measure
	if measure == "" {
		measure = "measure"
	}
	v, err := ds.AddVar(measure, dimNames, flat)
	if err != nil {
		return err
	}
	v.Attrs["cube_id"] = ncdf.String(e.id)
	v.Attrs["provenance"] = ncdf.String(fmt.Sprintf("cubecluster %d-shard gather", len(cl.shards)))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return ncdf.WriteFile(path, ds)
}

// gatherStats sums engine counters over the first live replica of each
// shard — the replicas that actually served this coordinator's reads.
func (cl *Cluster) gatherStats() datacube.Stats {
	var total datacube.Stats
	for s := range cl.shards {
		for rep := range cl.shards[s] {
			if cl.isDown(s, rep) {
				continue
			}
			resp, err := cl.do(s, rep, &cubeserver.Request{Op: "stats"})
			if err != nil {
				cl.markDown(s, rep)
				continue
			}
			total.FileReads += resp.Stats.FileReads
			total.CellsProcessed += resp.Stats.CellsProcessed
			total.Ops += resp.Stats.Ops
			total.FragmentTasks += resp.Stats.FragmentTasks
			break
		}
	}
	return total
}
