package ml

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/obs"
)

// randomizeBiases gives every layer non-zero biases (NewCNN starts
// them at zero) so the GEMM bias seeding is actually exercised.
func randomizeBiases(net *Network, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, layer := range net.Layers {
		switch v := layer.(type) {
		case *Conv2D:
			for i := range v.B {
				v.B[i] = rng.NormFloat64()
			}
		case *Dense:
			for i := range v.B {
				v.B[i] = rng.NormFloat64()
			}
		}
	}
}

// stormFields extracts one instant's channel fields a few days into a
// seeded storm run.
func stormFields(t *testing.T, seed int64) (map[string]*grid.Field, grid.Grid) {
	t.Helper()
	m := stormModel(t, 4, seed)
	var day *esm.DayOutput
	for i := 0; i < 10; i++ {
		day = m.StepDay()
	}
	fields, err := ChannelFields(day, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fields, day.Grid
}

// TestPredictBatchBitIdenticalToReference feeds random batches through
// one reused session (capacities grow and shrink across calls) and
// demands exact float equality with the layer-by-layer reference for
// every patch — the engine's central contract.
func TestPredictBatchBitIdenticalToReference(t *testing.T) {
	loc, err := NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	randomizeBiases(loc.Net, 17)
	s, err := loc.Compile(Params{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	hw := len(Channels) * 12 * 12
	for _, n := range []int{3, 32, 1, 7} { // growth, then shrink, then regrow
		x := NewTensor(n, len(Channels), 12, 12)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		got := s.PredictBatch(x)
		if len(got) != n {
			t.Fatalf("batch %d: %d predictions", n, len(got))
		}
		for p := 0; p < n; p++ {
			one := NewTensor(len(Channels), 12, 12)
			copy(one.Data, x.Data[p*hw:(p+1)*hw])
			want := loc.predictReference(one)
			if got[p] != want {
				t.Fatalf("batch %d patch %d: engine %+v != reference %+v", n, p, got[p], want)
			}
		}
	}
}

// TestPredictBatchSinglePatchRank3 accepts a bare (C,H,W) patch.
func TestPredictBatchSinglePatchRank3(t *testing.T) {
	loc, err := NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := loc.Compile(Params{})
	if err != nil {
		t.Fatal(err)
	}
	x := NewTensor(len(Channels), 12, 12)
	rng := rand.New(rand.NewSource(5))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	if got, want := s.PredictBatch(x)[0], loc.predictReference(x); got != want {
		t.Fatalf("engine %+v != reference %+v", got, want)
	}
}

// TestDetectFieldsMatchesReference sweeps real storm fields with the
// parallel engine and the sequential reference across even and odd
// patch counts (12→32 patches, 13→21 patches on the 48×96 grid) and
// several thresholds, demanding identical detections in identical
// order.
func TestDetectFieldsMatchesReference(t *testing.T) {
	fields, g := stormFields(t, 21)
	for _, patch := range []int{12, 13} {
		eng, err := NewLocalizer(patch, patch, 7)
		if err != nil {
			t.Fatal(err)
		}
		randomizeBiases(eng.Net, 23)
		// small MaxBatch + several workers force chunked, parallel sweeps
		eng.Configure(Params{Workers: 3, MaxBatch: 5})
		ref, err := NewLocalizer(patch, patch, 7)
		if err != nil {
			t.Fatal(err)
		}
		randomizeBiases(ref.Net, 23)
		ref.Configure(Params{Reference: true})
		if eng.Compiled() == false || ref.Compiled() {
			t.Fatal("engine/reference configuration mixed up")
		}
		for _, threshold := range []float64{0, 0.5, 0.99} {
			got, err := eng.DetectFields(fields, g, threshold)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.DetectFields(fields, g, threshold)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("patch %d threshold %v: engine %d detections, reference %d", patch, threshold, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("patch %d threshold %v det %d: engine %+v != reference %+v", patch, threshold, i, got[i], want[i])
				}
			}
		}
		// boundary semantics: a score exactly at the threshold is kept
		// (the filter is Presence < threshold) on both paths
		all, err := ref.DetectFields(fields, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) == 0 {
			t.Fatal("no detections at threshold 0")
		}
		pivot := all[len(all)/2].Score
		for _, l := range []*Localizer{eng, ref} {
			dets, err := l.DetectFields(fields, g, pivot)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, d := range dets {
				if d.Score == pivot {
					found = true
				}
				if d.Score < pivot {
					t.Fatalf("score %v below threshold %v survived", d.Score, pivot)
				}
			}
			if !found {
				t.Fatalf("score exactly at threshold %v was dropped", pivot)
			}
		}
	}
}

// TestGeoreferenceClampsAtLastRow is the regression test for the
// geo-referencing edge case: a predicted row fraction of exactly 1.0
// on the last patch row used to index latitude NLat — one past the
// final cell. Constant fields standardize to all-zero input, so the
// network output is exactly the head bias, which we pin to row = 1.0.
func TestGeoreferenceClampsAtLastRow(t *testing.T) {
	g := grid.Grid{NLat: 24, NLon: 24}
	loc, err := NewLocalizer(24, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	head := loc.Net.Layers[len(loc.Net.Layers)-1].(*Dense)
	head.B[0], head.B[1], head.B[2] = 6, 2, 0.25 // presence≈1, row clamps to 1.0, col 0.25
	fields := make(map[string]*grid.Field)
	for _, name := range Channels {
		f := grid.NewField(g)
		for i := range f.Data {
			f.Data[i] = 5
		}
		fields[name] = f
	}
	for _, p := range []Params{{}, {Reference: true}} {
		loc.Configure(p)
		dets, err := loc.DetectFields(fields, g, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) != 1 {
			t.Fatalf("reference=%v: %d detections, want 1", p.Reference, len(dets))
		}
		if want := g.Lat(g.NLat - 1); dets[0].Lat != want {
			t.Fatalf("reference=%v: lat %v, want clamped %v", p.Reference, dets[0].Lat, want)
		}
		if want := g.Lon(6); dets[0].Lon != want {
			t.Fatalf("reference=%v: lon %v, want %v", p.Reference, dets[0].Lon, want)
		}
	}
}

// TestPredictBatchZeroAlloc pins the steady-state allocation contract,
// metrics included (spans are only recorded under a tracer).
func TestPredictBatchZeroAlloc(t *testing.T) {
	loc, err := NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := loc.Compile(Params{MaxBatch: 32, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	x := NewTensor(32, len(Channels), 12, 12)
	rng := rand.New(rand.NewSource(11))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	s.PredictBatch(x) // warm-up
	if allocs := testing.AllocsPerRun(50, func() { s.PredictBatch(x) }); allocs != 0 {
		t.Fatalf("PredictBatch allocates %.1f times per call in steady state", allocs)
	}
}

// TestDetectFieldsConcurrentSweeps hammers one shared localizer from
// many goroutines (the workflow's per-year task pattern) — run under
// -race by make check — and checks every sweep returns the baseline.
func TestDetectFieldsConcurrentSweeps(t *testing.T) {
	fields, g := stormFields(t, 33)
	loc, err := NewLocalizer(12, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	loc.Configure(Params{Workers: 2, MaxBatch: 8})
	base, err := loc.DetectFields(fields, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				dets, err := loc.DetectFields(fields, g, 0.3)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(dets) != len(base) {
					errs <- "detection count diverged across concurrent sweeps"
					return
				}
				for j := range dets {
					if dets[j] != base[j] {
						errs <- "detections diverged across concurrent sweeps"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// badLayer is an identity layer the compiler cannot lower.
type badLayer struct{}

func (badLayer) Forward(x *Tensor) *Tensor  { return x }
func (badLayer) Backward(g *Tensor) *Tensor { return g }
func (badLayer) Params() []ParamGrad        { return nil }

// TestCompileErrorsAndFallback covers the lowering error cases and the
// escape hatch: an uncompilable network silently keeps working through
// the layer path.
func TestCompileErrorsAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		net  *Network
		want string
	}{
		{"empty", &Network{}, "empty network"},
		{"wrong head", &Network{Layers: []Layer{NewDense(len(Channels)*12*12, 2, rng)}}, "emits 2"},
		{"unsupported", &Network{Layers: []Layer{badLayer{}}}, "unsupported layer"},
		{"channel mismatch", &Network{Layers: []Layer{NewConv2D(len(Channels), 8, 3, rng), NewConv2D(7, 8, 3, rng)}}, "wants 7 channels"},
	}
	for _, tc := range cases {
		l := &Localizer{Net: tc.net, PatchH: 12, PatchW: 12}
		if _, err := l.Compile(Params{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// fallback: an identity "network" cannot compile, but DetectFields
	// still answers through the reference path
	fields, g := stormFields(t, 5)
	l := &Localizer{Net: &Network{Layers: []Layer{badLayer{}}}, PatchH: 12, PatchW: 12}
	if l.Compiled() {
		t.Fatal("badLayer network reported as compiled")
	}
	dets, err := l.DetectFields(fields, g, 2) // threshold > 1: no detections, but the sweep must run
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Fatalf("threshold 2 produced %d detections", len(dets))
	}
}

// TestInferObservability checks the engine's instruments: patch
// counter, batch histogram, and the im2col/gemm span tree.
func TestInferObservability(t *testing.T) {
	fields, g := stormFields(t, 9)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	loc, err := NewLocalizer(12, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	loc.Configure(Params{Workers: 2, Metrics: reg, Tracer: tr})
	if _, err := loc.DetectFields(fields, g, 0.5); err != nil {
		t.Fatal(err)
	}
	patches := float64((g.NLat / 12) * (g.NLon / 12))
	if got := reg.Counter("ml_infer_patches_total", "").Value(); got != patches {
		t.Fatalf("ml_infer_patches_total = %v, want %v", got, patches)
	}
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), "ml_infer_batch_seconds_count") {
		t.Fatal("ml_infer_batch_seconds missing from exposition")
	}
	if strings.Contains(expo.String(), "ml_infer_batch_seconds_count 0\n") {
		t.Fatal("ml_infer_batch_seconds recorded no batches")
	}
	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	for _, want := range []string{"ml.predict_batch", "ml.im2col", "ml.gemm"} {
		if names[want] == 0 {
			t.Fatalf("no %s spans recorded (got %v)", want, names)
		}
	}
}

// TestDetectStepGolden pins the end-to-end detection output of a fully
// seeded run (untrained seed-3 network, seed-42 storms) so numerical
// drift anywhere in the preprocessing or inference stack is caught
// loudly rather than silently. Values were captured from the reference
// path and hold for the engine path too (equivalence).
func TestDetectStepGolden(t *testing.T) {
	m := stormModel(t, 4, 42)
	var day *esm.DayOutput
	for i := 0; i < 5; i++ {
		day = m.StepDay()
	}
	loc, err := NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{}, {Reference: true}} {
		loc.Configure(p)
		dets, err := loc.DetectStep(day, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) != 32 {
			t.Fatalf("reference=%v: %d detections at threshold 0, want 32 (one per patch)", p.Reference, len(dets))
		}
		top := dets[0]
		const tol = 1e-12
		if math.Abs(top.Score-goldenTopScore) > tol || math.Abs(top.Lat-goldenTopLat) > tol || math.Abs(top.Lon-goldenTopLon) > tol {
			t.Fatalf("reference=%v: top detection {Lat:%.15g Lon:%.15g Score:%.15g}, want {Lat:%.15g Lon:%.15g Score:%.15g}",
				p.Reference, top.Lat, top.Lon, top.Score, goldenTopLat, goldenTopLon, goldenTopScore)
		}
	}
}

// golden values for TestDetectStepGolden (captured once; any change is
// a numerical-behaviour change and must be deliberate)
const (
	goldenTopLat   = -9.375
	goldenTopLon   = 226.875
	goldenTopScore = 0.88289186756953
)
