package ml

// The GEMM kernel behind the compiled inference plan (infer.go). Both
// Conv2D (after im2col) and Dense lower to the same primitive:
//
//	C (m×n) += A (m×k) · B (k×n)       all row-major, fp64
//
// with C pre-initialized to the layer bias. The kernel guarantees that
// the contributions to every output element are accumulated in
// ascending-k order into a single fp64 accumulator chain — exactly the
// summation order of the scalar reference layers — so a compiled plan
// is bit-for-bit identical to the layer-by-layer path, not merely
// close. Blocking therefore happens over k and n panels (which only
// reorders independent elements, never the additions within one), and
// the inner loop is a contiguous axpy that streams one row of B into
// one row of C.

// gemm panel sizes: a kc×nc panel of B (≤ 64 KiB) stays cache-resident
// while every row of A sweeps it.
const (
	gemmKC = 64
	gemmNC = 512
)

// gemmAcc accumulates A·B into C (see package comment above for the
// ordering contract). Slices may be larger than the used extents.
// Output rows are register-blocked four at a time: the four rows share
// each streamed B row, which quarters the panel traffic and runs four
// independent accumulation chains per iteration — every individual
// element still sums its terms in ascending-k order.
func gemmAcc(m, n, k int, a, b, c []float64) {
	for kk := 0; kk < k; kk += gemmKC {
		kMax := min(kk+gemmKC, k)
		for jj := 0; jj < n; jj += gemmNC {
			jMax := min(jj+gemmNC, n)
			i := 0
			for ; i+4 <= m; i += 4 {
				a0, a1 := a[i*k:(i+1)*k], a[(i+1)*k:(i+2)*k]
				a2, a3 := a[(i+2)*k:(i+3)*k], a[(i+3)*k:(i+4)*k]
				c0, c1 := c[i*n+jj:i*n+jMax], c[(i+1)*n+jj:(i+1)*n+jMax]
				c2, c3 := c[(i+2)*n+jj:(i+2)*n+jMax], c[(i+3)*n+jj:(i+3)*n+jMax]
				for p := kk; p < kMax; p++ {
					axpy4(a0[p], a1[p], a2[p], a3[p], b[p*n+jj:p*n+jMax], c0, c1, c2, c3)
				}
			}
			for ; i < m; i++ {
				ar := a[i*k : i*k+k]
				cr := c[i*n+jj : i*n+jMax]
				for p := kk; p < kMax; p++ {
					axpy(ar[p], b[p*n+jj:p*n+jMax], cr)
				}
			}
		}
	}
}

// axpy computes y += alpha*x over equal-length slices. No zero-alpha
// fast path: skipping terms would diverge from the reference summation
// when x holds non-finite values.
func axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// axpy4 is axpy over four output rows sharing one x row. The four
// accumulator chains are independent, so per-element summation order
// is unchanged.
func axpy4(al0, al1, al2, al3 float64, x, y0, y1, y2, y3 []float64) {
	y0 = y0[:len(x)]
	y1 = y1[:len(x)]
	y2 = y2[:len(x)]
	y3 = y3[:len(x)]
	for i, v := range x {
		y0[i] += al0 * v
		y1[i] += al1 * v
		y2[i] += al2 * v
		y3[i] += al3 * v
	}
}

// fillRows initializes each of the m rows of C (row length n) with the
// corresponding bias value — the "sum := B[o]" seed of the reference
// layers, hoisted out of the GEMM.
func fillRows(m, n int, bias, c []float64) {
	for i := 0; i < m; i++ {
		row := c[i*n : (i+1)*n]
		v := bias[i]
		for j := range row {
			row[j] = v
		}
	}
}
