// Command whatif replays a recorded workflow execution (the
// provenance.json the workflow writes next to its results) on the
// simulated batch cluster at different machine sizes — the capacity
// planning question behind the paper's portability pitch: what does
// this workflow need from the next HPC system it moves to?
//
// Usage:
//
//	whatif -prov results/provenance.json -nodes 1,2,4,8 -cores 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/compss"
	"repro/internal/schedule"
)

func main() {
	log.SetFlags(0)
	var (
		provPath = flag.String("prov", "", "provenance JSON file (required)")
		nodes    = flag.String("nodes", "1,2,4,8", "comma-separated node counts to sweep")
		cores    = flag.Int("cores", 4, "cores per node")
		esmCores = flag.Int("esmcores", 2, "cores the esm_run task occupies")
	)
	flag.Parse()
	if *provPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*provPath)
	if err != nil {
		log.Fatal(err)
	}
	p, err := compss.ParseProvenance(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var counts []int
	for _, s := range strings.Split(*nodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bad node count %q", s)
		}
		counts = append(counts, n)
	}
	specs := map[string]schedule.TaskSpec{"esm_run": {Cores: *esmCores}}
	results, err := schedule.Sweep(p, counts, *cores, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %q: %d tasks, %.3fs total work, %.3fs critical path\n",
		p.Workflow, results[0].Tasks, results[0].TotalWork, results[0].CriticalPath)
	fmt.Printf("%-8s %-8s %14s %12s\n", "nodes", "cores", "makespan [s]", "efficiency")
	for _, r := range results {
		fmt.Printf("%-8d %-8d %14.3f %11.1f%%\n", r.Nodes, r.CoresPerNode, r.Makespan, 100*r.Efficiency)
	}
	fmt.Printf("\nno machine can beat the %.3fs critical path; past the knee,\n", results[0].CriticalPath)
	fmt.Println("extra nodes only burn allocation — that is the number to request.")
}
