// Package ensemble runs initial-condition ensembles of the synthetic
// ESM and computes cross-member statistics of the extreme-event
// indices. The paper's §3 names ensembles ("group of runs of the same
// ESM with different initial conditions", citing Deser et al. 2020) as
// a core driver of ESM workflow cost: members are independent, so the
// task runtime executes them concurrently, and the datacube engine
// aggregates their index cubes into ensemble mean/spread/agreement
// products.
package ensemble

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/compss"
	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/indices"
	"repro/internal/stream"
)

// Config parameterizes an ensemble run.
type Config struct {
	// Base is the shared model configuration (grid, years, scenario,
	// events). Member m runs with seed Base.Seed + int64(m)·SeedStride.
	Base esm.Config
	// Members is the ensemble size.
	Members int
	// SeedStride separates member seeds; zero means 1000003.
	SeedStride int64
	// Workers sizes the task pool executing members concurrently;
	// zero means 4.
	Workers int
	// Dir is the working directory; each member writes to Dir/memberNN.
	Dir string
}

func (c Config) withDefaults() (Config, error) {
	if c.Members <= 0 {
		return c, fmt.Errorf("ensemble: need at least 1 member")
	}
	if c.Dir == "" {
		return c, fmt.Errorf("ensemble: Dir is required")
	}
	if c.SeedStride == 0 {
		c.SeedStride = 1000003
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c, nil
}

// MemberResult is one member's heat-wave index summary.
type MemberResult struct {
	Member int
	Seed   int64
	// Number is the heat-wave-number cube (retained in the engine).
	Number *datacube.Cube
	// MeanNumber is its spatial mean.
	MeanNumber float64
}

// Result is the ensemble outcome.
type Result struct {
	Members []MemberResult
	// Stats are the cross-member statistics of the heat-wave-number
	// index.
	Stats *Stats
}

// Run executes the ensemble: one task per member (ESM run + heat-wave
// pipeline), then cross-member aggregation. The engine is supplied by
// the caller so the statistics cubes outlive the run.
func Run(engine *datacube.Engine, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	baseline, err := indices.BuildBaseline(engine, cfg.Base.Grid, cfg.Base.DaysPerYear)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = baseline.TMax.Delete()
		_ = baseline.TMin.Delete()
	}()

	rt := compss.NewRuntime(compss.Config{Workers: cfg.Workers})
	member, err := rt.Register(compss.TaskDef{
		Name:    "ensemble_member",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			m := args[0].(int)
			seed := cfg.Base.Seed + int64(m)*cfg.SeedStride
			dir := filepath.Join(cfg.Dir, fmt.Sprintf("member%02d", m))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			mc := cfg.Base
			mc.Seed = seed
			model := esm.NewModel(mc)
			paths, err := model.Run(esm.RunOptions{Dir: dir})
			if err != nil {
				return nil, err
			}
			batches := stream.NewYearBatcher(model.Config().DaysPerYear, esm.YearOf).Add(paths...)
			if len(batches) == 0 {
				return nil, fmt.Errorf("ensemble: member %d produced no complete year", m)
			}
			// first year only: ensemble statistics compare like with like
			hw, err := indices.HeatWaves(engine, batches[0].Files, baseline,
				indices.Params{DaysPerYear: model.Config().DaysPerYear})
			if err != nil {
				return nil, err
			}
			_ = hw.Duration.Delete()
			_ = hw.Frequency.Delete()
			mean, err := spatialMean(hw.Number)
			if err != nil {
				return nil, err
			}
			return []any{MemberResult{Member: m, Seed: seed, Number: hw.Number, MeanNumber: mean}}, nil
		},
	})
	if err != nil {
		return nil, err
	}

	futs := make([]*compss.Future, cfg.Members)
	for m := 0; m < cfg.Members; m++ {
		if futs[m], err = rt.InvokeOne(member, compss.In(m)); err != nil {
			_ = rt.Shutdown()
			return nil, err
		}
	}
	if err := rt.Shutdown(); err != nil {
		return nil, err
	}

	res := &Result{}
	var cubes []*datacube.Cube
	for _, f := range futs {
		v, err := f.Get()
		if err != nil {
			return nil, err
		}
		mr := v.(MemberResult)
		res.Members = append(res.Members, mr)
		cubes = append(cubes, mr.Number)
	}
	sort.Slice(res.Members, func(i, j int) bool { return res.Members[i].Member < res.Members[j].Member })
	if res.Stats, err = IndexStats(engine, cubes); err != nil {
		return nil, err
	}
	return res, nil
}

func spatialMean(c *datacube.Cube) (float64, error) {
	agg, err := c.AggregateRows("avg")
	if err != nil {
		return 0, err
	}
	defer agg.Delete()
	red, err := agg.Reduce("avg")
	if err != nil {
		return 0, err
	}
	defer red.Delete()
	return red.Scalar()
}

// Stats bundles cross-member statistics of a per-cell index. All cubes
// have one row per cell and implicit length 1.
type Stats struct {
	// Mean and Std are the ensemble mean and spread.
	Mean, Std *datacube.Cube
	// Min and Max bound the members.
	Min, Max *datacube.Cube
	// Agreement is the fraction of members with a non-zero index value
	// (per cell) — the standard ensemble-consistency diagnostic.
	Agreement *datacube.Cube
}

// Delete frees all statistics cubes.
func (s *Stats) Delete() {
	for _, c := range []*datacube.Cube{s.Mean, s.Std, s.Min, s.Max, s.Agreement} {
		if c != nil {
			_ = c.Delete()
		}
	}
}

// IndexStats stacks per-member index cubes (implicit length 1, same
// shape) along the implicit axis and reduces across members.
func IndexStats(e *datacube.Engine, members []*datacube.Cube) (*Stats, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: no member cubes")
	}
	for i, c := range members {
		if c.ImplicitLen() != 1 {
			return nil, fmt.Errorf("ensemble: member %d has implicit length %d, want 1", i, c.ImplicitLen())
		}
	}
	stacked, err := e.Concat(members)
	if err != nil {
		return nil, err
	}
	defer stacked.Delete()

	out := &Stats{}
	reduce := func(op string, dst **datacube.Cube, meta string) error {
		c, err := stacked.Reduce(op)
		if err != nil {
			return err
		}
		c.SetMeta("statistic", meta)
		*dst = c
		return nil
	}
	if err := reduce("avg", &out.Mean, "ensemble_mean"); err != nil {
		return nil, err
	}
	if err := reduce("std", &out.Std, "ensemble_std"); err != nil {
		return nil, err
	}
	if err := reduce("min", &out.Min, "ensemble_min"); err != nil {
		return nil, err
	}
	if err := reduce("max", &out.Max, "ensemble_max"); err != nil {
		return nil, err
	}
	mask, err := stacked.Apply("x>0 ? 1 : 0")
	if err != nil {
		return nil, err
	}
	defer mask.Delete()
	if out.Agreement, err = mask.Reduce("avg"); err != nil {
		return nil, err
	}
	out.Agreement.SetMeta("statistic", "ensemble_agreement")
	return out, nil
}
