package cubecluster

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// clMetrics instruments the coordinator's data plane: how many
// requests fan out per shard, how many payload bytes cross the wire in
// each direction, and how often the failure machinery engages. The
// scatter/gather byte counters are the C3 experiment's headline — they
// show that barriers move reduced partials, not cubes.
type clMetrics struct {
	scatterOps *obs.CounterVec
	shardSec   *obs.HistogramVec
	scatterB   *obs.Counter
	gatherB    *obs.Counter
	failovers  *obs.Counter
	mergeFB    *obs.Counter
	resyncs    *obs.Counter
	replicaUp  *obs.GaugeVec
}

func newCLMetrics(reg *obs.Registry) *clMetrics {
	return &clMetrics{
		scatterOps: reg.CounterVec("cubecluster_scatter_ops_total",
			"requests fanned out to shard replicas", "shard"),
		shardSec: reg.HistogramVec("cubecluster_shard_op_seconds",
			"per-shard request latency",
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}, "shard"),
		scatterB: reg.Counter("cubecluster_scatter_bytes_total",
			"estimated request payload bytes sent to shards"),
		gatherB: reg.Counter("cubecluster_gather_bytes_total",
			"estimated response payload bytes returned by shards"),
		failovers: reg.Counter("cubecluster_failovers_total",
			"reads or writes diverted off a dead replica"),
		mergeFB: reg.Counter("cubecluster_merge_fallbacks_total",
			"aggrows barriers that gathered full columns because the row op has no partial merge"),
		resyncs: reg.Counter("cubecluster_replica_resyncs_total",
			"replicas re-seeded from a healthy peer by Heal"),
		replicaUp: reg.GaugeVec("cubecluster_replica_up",
			"1 while the replica serves traffic, 0 once marked down", "shard", "replica"),
	}
}

func (m *clMetrics) observeShard(shard string, start time.Time) {
	m.shardSec.With(shard).Observe(time.Since(start).Seconds())
}

// BytesStats reports the coordinator's cumulative estimated wire
// traffic (request bytes scattered, response bytes gathered).
func (cl *Cluster) BytesStats() (scattered, gathered float64) {
	return cl.met.scatterB.Value(), cl.met.gatherB.Value()
}

// ShardOpSnapshot merges the per-shard request-latency histograms into
// one distribution, for offline quantiles (snapshot before and after a
// workload, subtract counts, then obs.HistogramSnapshot.Quantile).
func (cl *Cluster) ShardOpSnapshot() obs.HistogramSnapshot {
	var merged obs.HistogramSnapshot
	for s := range cl.shards {
		snap := cl.met.shardSec.With(strconv.Itoa(s)).Snapshot()
		if merged.Bounds == nil {
			merged = snap
			continue
		}
		for i, c := range snap.Counts {
			merged.Counts[i] += c
		}
		merged.Count += snap.Count
		merged.Sum += snap.Sum
	}
	return merged
}
