// Package ml implements the machine-learning substrate of the
// workflow: a small, dependency-free neural-network library (tensors,
// conv/pool/dense layers, Adam) plus the tropical-cyclone patch
// localizer the paper runs with Keras/TensorFlow (§5.4). The CNN takes
// a tiled, feature-scaled multi-channel patch of climate fields and
// predicts whether a TC is present and where its center ("eye") falls
// within the patch.
package ml

import "fmt"

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("ml: invalid tensor dim %d", s))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// At3 reads element (c, i, j) of a rank-3 tensor.
func (t *Tensor) At3(c, i, j int) float64 {
	return t.Data[(c*t.Shape[1]+i)*t.Shape[2]+j]
}

// Set3 writes element (c, i, j) of a rank-3 tensor.
func (t *Tensor) Set3(c, i, j int, v float64) {
	t.Data[(c*t.Shape[1]+i)*t.Shape[2]+j] = v
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}
