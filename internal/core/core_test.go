package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ml"
	"repro/internal/ncdf"
)

// testConfig is a small but complete workflow configuration. One
// seeded heat wave, one cold spell and one cyclone per year keep every
// branch meaningful.
func testConfig(t *testing.T, years int) Config {
	t.Helper()
	return Config{
		Grid:        grid.Grid{NLat: 24, NLon: 48},
		StartYear:   2040,
		Years:       years,
		DaysPerYear: 12,
		Seed:        5,
		OutputDir:   t.TempDir(),
		Workers:     4,
		CubeServers: 2,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
		},
	}
}

func TestRunRequiresOutputDir(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing OutputDir accepted")
	}
	if _, err := RunSequential(Config{}); err == nil {
		t.Fatal("sequential missing OutputDir accepted")
	}
}

func TestRunSingleYearEndToEnd(t *testing.T) {
	cfg := testConfig(t, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesProduced != cfg.DaysPerYear {
		t.Fatalf("files = %d, want %d", res.FilesProduced, cfg.DaysPerYear)
	}
	if len(res.Years) != 1 || res.Years[0].Year != 2040 {
		t.Fatalf("years = %+v", res.Years)
	}
	yr := res.Years[0]
	for _, p := range []string{
		yr.HeatWave.Duration, yr.HeatWave.Number, yr.HeatWave.Frequency,
		yr.ColdWave.Duration, yr.ColdWave.Number, yr.ColdWave.Frequency,
		yr.MapPath, res.FinalMapPath,
	} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
	}
	if res.RuntimeStats.Failed != 0 || res.RuntimeStats.Cancelled != 0 {
		t.Fatalf("runtime stats = %+v", res.RuntimeStats)
	}
	if _, err := os.Stat(res.ProvenancePath); err != nil {
		t.Fatalf("provenance missing: %v", err)
	}
	if !strings.Contains(res.Gantt, TaskESMRun) {
		t.Fatal("gantt missing the ESM task")
	}
	// expected node count: 3 global + 14 per year + final
	want := 3 + len(PerYearKinds) + 1
	if res.RuntimeStats.Invoked != want {
		t.Fatalf("invoked = %d, want %d", res.RuntimeStats.Invoked, want)
	}
}

// TestFig3GraphShape asserts the executed task graph reproduces the
// structure of the paper's Figure 3 for a single simulated year.
func TestFig3GraphShape(t *testing.T) {
	cfg := testConfig(t, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dot := res.GraphDOT
	// every kind appears exactly once for one year
	for _, kind := range append([]string{TaskESMRun, TaskLoadBaselineMax, TaskLoadBaselineMin, TaskFinalMaps}, PerYearKinds...) {
		if n := strings.Count(dot, "\\n"+kind+"\""); n != 1 {
			t.Fatalf("kind %s appears %d times in DOT", kind, n)
		}
	}
	// key dependency edges, resolved through node IDs
	idOf := func(kind string) string {
		for _, line := range strings.Split(dot, "\n") {
			if strings.Contains(line, "\\n"+kind+"\"") {
				return strings.SplitN(strings.TrimSpace(line), " ", 2)[0]
			}
		}
		t.Fatalf("kind %s not in DOT", kind)
		return ""
	}
	edge := func(a, b string) bool {
		return strings.Contains(dot, "  "+idOf(a)+" -> "+idOf(b)+";")
	}
	for _, e := range [][2]string{
		{TaskMonitorStream, TaskImportYear},
		{TaskImportYear, TaskDailyMax},
		{TaskImportYear, TaskDailyMin},
		{TaskLoadBaselineMax, TaskDailyMax},
		{TaskLoadBaselineMin, TaskDailyMin},
		{TaskDailyMax, TaskHWDuration},
		{TaskDailyMax, TaskHWNumber},
		{TaskDailyMax, TaskHWFrequency},
		{TaskDailyMin, TaskCWDuration},
		{TaskDailyMin, TaskCWNumber},
		{TaskDailyMin, TaskCWFrequency},
		{TaskMonitorStream, TaskTCPreprocess},
		{TaskTCPreprocess, TaskTCInference},
		{TaskTCPreprocess, TaskTCGeoreference},
		{TaskTCInference, TaskTCGeoreference},
		{TaskHWDuration, TaskValidateStore},
		{TaskCWFrequency, TaskValidateStore},
		{TaskTCGeoreference, TaskValidateStore},
		{TaskValidateStore, TaskFinalMaps},
	} {
		if !edge(e[0], e[1]) {
			t.Fatalf("missing graph edge %s -> %s", e[0], e[1])
		}
	}
	// no direct edge from ESM to analytics: the stream decouples them
	if edge(TaskESMRun, TaskImportYear) {
		t.Fatal("ESM directly coupled to import, stream decoupling lost")
	}
}

func TestRunMultiYearGraphRepeats(t *testing.T) {
	cfg := testConfig(t, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Years) != 2 {
		t.Fatalf("years = %d", len(res.Years))
	}
	// per-year kinds appear twice, global kinds once (paper: "in case
	// of multiple years, the number of tasks would be repeated with the
	// exception of the first four ones")
	for _, kind := range PerYearKinds {
		if n := strings.Count(res.GraphDOT, "\\n"+kind+"\""); n != 2 {
			t.Fatalf("kind %s appears %d times, want 2", kind, n)
		}
	}
	for _, kind := range []string{TaskESMRun, TaskLoadBaselineMax, TaskLoadBaselineMin, TaskFinalMaps} {
		if n := strings.Count(res.GraphDOT, "\\n"+kind+"\""); n != 1 {
			t.Fatalf("kind %s appears %d times, want 1", kind, n)
		}
	}
	if res.Years[0].Year != 2040 || res.Years[1].Year != 2041 {
		t.Fatalf("year order: %+v", res.Years)
	}
}

// TestFig4HeatwaveMap verifies the seeded heat wave produces an
// elevated count at its center in the exported index and the map file
// exists (Figure 4's Heat Wave Number indicator).
func TestFig4HeatwaveMap(t *testing.T) {
	cfg := testConfig(t, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	yr := res.Years[0]
	// find the seeded wave and verify the exported index at its center
	model := esm.NewModel(cfg.esmConfig())
	waves := model.GroundTruth().HeatWaves()
	if len(waves) != 1 {
		t.Fatalf("seeded waves = %d", len(waves))
	}
	w := waves[0]
	_, data, err := readIndexVariable(yr.HeatWave.Number, "heat_wave_number")
	if err != nil {
		t.Fatal(err)
	}
	ci, cj := cfg.Grid.CellOf(w.CenterLat, w.CenterLon)
	if got := data[cfg.Grid.Index(ci, cj)]; got < 1 {
		t.Fatalf("heat wave number at seeded center = %v, want >= 1", got)
	}
	// counts are mostly zero far away (localized indicator)
	fi, fj := cfg.Grid.CellOf(-w.CenterLat, w.CenterLon+180)
	if got := data[cfg.Grid.Index(fi, fj)]; got != 0 {
		t.Fatalf("antipodal heat wave count = %v, want 0", got)
	}
	// map is a valid PPM
	raw, err := os.ReadFile(yr.MapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "P6\n") {
		t.Fatal("map not a PPM")
	}
}

func TestSequentialMatchesConcurrentResults(t *testing.T) {
	cfg := testConfig(t, 1)
	conc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(t, 1)
	cfg2.Seed = cfg.Seed
	seq, err := RunSequential(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Years) != len(conc.Years) {
		t.Fatalf("year counts differ: %d vs %d", len(seq.Years), len(conc.Years))
	}
	// identical seeds → identical index outputs
	a, _, err := readIndexVariable(conc.Years[0].HeatWave.Number, "heat_wave_number")
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	_, av, _ := readIndexVariable(conc.Years[0].HeatWave.Number, "heat_wave_number")
	_, bv, err := readIndexVariable(seq.Years[0].HeatWave.Number, "heat_wave_number")
	if err != nil {
		t.Fatal(err)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("index mismatch at %d: %v vs %v", i, av[i], bv[i])
		}
	}
	if conc.Years[0].TrackerTracks != seq.Years[0].TrackerTracks {
		t.Fatalf("tracker tracks differ: %d vs %d", conc.Years[0].TrackerTracks, seq.Years[0].TrackerTracks)
	}
}

func TestBaselineLoadedOnce(t *testing.T) {
	cfg := testConfig(t, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// engine file reads: one TREFHT import per daily file per year; the
	// baseline contributes zero reads and is reused across both years.
	wantReads := int64(cfg.Years * cfg.DaysPerYear)
	if res.CubeStats.FileReads != wantReads {
		t.Fatalf("file reads = %d, want %d (baseline must not be re-read)", res.CubeStats.FileReads, wantReads)
	}
}

func TestExportedIndexMetadata(t *testing.T) {
	cfg := testConfig(t, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ncdf.ReadFile(res.Years[0].HeatWave.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attrs["year"].S != "2040" {
		t.Fatalf("year attr = %+v", ds.Attrs["year"])
	}
	v, err := ds.Var("heat_wave_duration")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Dims) != 2 || v.Dims[0] != "lat" || v.Dims[1] != "lon" {
		t.Fatalf("dims = %v", v.Dims)
	}
}

func TestAttachModeConsumesExternalProducer(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.AttachOnly = true
	if err := os.MkdirAll(cfg.OutputDir+"/model_output", 0o755); err != nil {
		t.Fatal(err)
	}
	cfg.ModelDir = cfg.OutputDir + "/model_output"

	// external producer: a separate goroutine running the same model,
	// trickling files out while the workflow is already attached
	done := make(chan error, 1)
	go func() {
		model := esm.NewModel(cfg.esmConfig())
		_, err := model.Run(esm.RunOptions{Dir: cfg.ModelDir, InterDayDelay: 2 * time.Millisecond})
		done <- err
	}()

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(res.Years) != 1 || res.FilesProduced != cfg.DaysPerYear {
		t.Fatalf("attach result = %+v", res)
	}
	// no ESM task in the graph: the producer is external
	if strings.Contains(res.GraphDOT, "\\n"+TaskESMRun+"\"") {
		t.Fatal("attach mode still ran the ESM task")
	}
	// results match an owned run with the same seed
	owned, err := Run(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, av, err := readIndexVariable(res.Years[0].HeatWave.Number, "heat_wave_number")
	if err != nil {
		t.Fatal(err)
	}
	_, bv, err := readIndexVariable(owned.Years[0].HeatWave.Number, "heat_wave_number")
	if err != nil {
		t.Fatal(err)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("attach vs owned mismatch at %d", i)
		}
	}
}

func TestWorkflowOnlineDiagnostics(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.OnlineDiagnostics = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesProduced != cfg.DaysPerYear {
		t.Fatalf("files = %d", res.FilesProduced)
	}
}

func TestWorkflowWithLocalizerRunsMLBranch(t *testing.T) {
	cfg := testConfig(t, 1)
	loc, err := ml.NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Localizer = loc
	cfg.TCThreshold = 0.999 // untrained net: keep detections sparse
	// exercise the parallel engine sweep (chunked sessions) inside the
	// task graph — go test -race covers the pool
	cfg.ML = ml.Params{Workers: 3, MaxBatch: 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// the ML branch ran (detections may be empty at this threshold, but
	// the inference task must have completed)
	if res.RuntimeStats.Done != res.RuntimeStats.Invoked {
		t.Fatalf("stats = %+v", res.RuntimeStats)
	}
	if !loc.Compiled() {
		t.Fatal("workflow did not compile the inference engine")
	}
}

func TestWorkflowMLReferenceEscapeHatch(t *testing.T) {
	cfg := testConfig(t, 1)
	loc, err := ml.NewLocalizer(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Localizer = loc
	cfg.TCThreshold = 0.999
	cfg.ML = ml.Params{Reference: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeStats.Done != res.RuntimeStats.Invoked {
		t.Fatalf("stats = %+v", res.RuntimeStats)
	}
	if loc.Compiled() {
		t.Fatal("reference mode still compiled an engine")
	}
}

func TestWorkflowTaskFailurePropagates(t *testing.T) {
	cfg := testConfig(t, 1)
	// a localizer whose patch exceeds the grid makes tc_inference fail;
	// the FailFast default must abort the workflow with a clear error
	loc, err := ml.NewLocalizer(30, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Grid = grid.Grid{NLat: 24, NLon: 48}
	cfg.Localizer = loc
	if _, err := Run(cfg); err == nil {
		t.Fatal("failing task did not abort the workflow")
	}
}

func TestWorkflowWithCheckpointRecovery(t *testing.T) {
	// checkpointing of unencodable cube pointers is skipped silently;
	// the workflow must still run fine with a checkpointer configured.
	cfg := testConfig(t, 1)
	ckpt := filepath.Join(t.TempDir(), "wf.ckpt")
	cp, err := openCkpt(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpointer = cp
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
