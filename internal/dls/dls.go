// Package dls simulates the eFlows4HPC Data Logistics Service (paper
// §4.1): it "executes the required data pipelines either at deployment
// or execution time", staging datasets in and out of the computing
// site. Pipelines are ordered steps over a catalog of named datasets;
// execution copies real files between directories with checksum
// verification and records transfer provenance.
package dls

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
)

// Dataset is a catalog entry: a named set of files rooted somewhere.
type Dataset struct {
	Name string
	// Root is the directory holding the dataset files.
	Root string
	// Files are paths relative to Root.
	Files []string
}

// Catalog maps dataset names to locations (the DLS data catalog).
type Catalog struct {
	mu   sync.RWMutex
	sets map[string]Dataset
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{sets: make(map[string]Dataset)}
}

// Register adds or replaces a dataset entry.
func (c *Catalog) Register(d Dataset) error {
	if d.Name == "" {
		return fmt.Errorf("dls: dataset needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sets[d.Name] = d
	return nil
}

// Lookup fetches a dataset entry.
func (c *Catalog) Lookup(name string) (Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.sets[name]
	return d, ok
}

// Names lists registered datasets, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sets))
	for n := range c.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Transfer records one completed file movement.
type Transfer struct {
	Dataset  string
	File     string
	Bytes    int64
	Checksum string
	When     time.Time
}

// Service executes data pipelines against a catalog.
type Service struct {
	Catalog *Catalog
	// CopyRetries is how many times a failed (or checksum-mismatched)
	// file copy is retried before stage-in gives up; zero means 2.
	CopyRetries int
	// Injector, when set, may inject faults at the chaos.SiteCopy site
	// before each copy attempt (op is "dataset/relpath").
	Injector chaos.Injector

	mu      sync.Mutex
	log     []Transfer
	met     *dlsMetrics
	sleepFn func(time.Duration) // test hook; nil means time.Sleep
}

// metrics returns the instrument set, creating a detached one on first
// use so zero-value Services stay safe.
func (s *Service) metrics() *dlsMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.met == nil {
		s.met = newDLSMetrics(nil)
	}
	return s.met
}

// NewService returns a service over the catalog (nil creates one).
func NewService(c *Catalog) *Service {
	if c == nil {
		c = NewCatalog()
	}
	return &Service{Catalog: c}
}

// Log returns a copy of the transfer provenance log.
func (s *Service) Log() []Transfer {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Transfer, len(s.log))
	copy(out, s.log)
	return out
}

// StageIn copies the named dataset into dstDir, verifying checksums,
// and returns the destination paths. Partial staging fails atomically
// per file (a bad copy is removed).
func (s *Service) StageIn(dataset, dstDir string) ([]string, error) {
	d, ok := s.Catalog.Lookup(dataset)
	if !ok {
		return nil, fmt.Errorf("dls: unknown dataset %q", dataset)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return nil, err
	}
	var out []string
	for _, rel := range d.Files {
		src := filepath.Join(d.Root, rel)
		dst := filepath.Join(dstDir, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return out, err
		}
		n, sum, err := s.copyWithRetry(dataset, rel, src, dst)
		if err != nil {
			return out, fmt.Errorf("dls: stage-in %s/%s: %w", dataset, rel, err)
		}
		met := s.metrics()
		met.copies.Inc()
		met.bytes.Add(float64(n))
		s.mu.Lock()
		s.log = append(s.log, Transfer{Dataset: dataset, File: rel, Bytes: n, Checksum: sum, When: time.Now()})
		s.mu.Unlock()
		out = append(out, dst)
	}
	return out, nil
}

// copyWithRetry runs one verified copy under the fault injector with a
// bounded retry budget: a transient failure (including a checksum
// mismatch, which CopyVerified reports when the landed bytes differ) is
// retried after a short doubling delay; permanent errors stop at once.
func (s *Service) copyWithRetry(dataset, rel, src, dst string) (int64, string, error) {
	retries := s.CopyRetries
	if retries <= 0 {
		retries = 2
	}
	op := dataset + "/" + rel
	var n int64
	var sum string
	var err error
	for attempt := 0; ; attempt++ {
		n, sum, err = s.copyAttempt(op, src, dst, attempt)
		if err == nil || attempt >= retries || chaos.IsPermanent(err) {
			return n, sum, err
		}
		s.metrics().retries.Inc()
		delay := 10 * time.Millisecond << uint(attempt)
		if delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
		if s.sleepFn != nil {
			s.sleepFn(delay)
		} else {
			time.Sleep(delay)
		}
	}
}

func (s *Service) copyAttempt(op, src, dst string, attempt int) (int64, string, error) {
	if s.Injector != nil {
		f := s.Injector.Decide(chaos.SiteCopy, op, attempt)
		if err := f.Error(); err != nil {
			return 0, "", err
		}
		if f.Kind == chaos.Latency {
			if s.sleepFn != nil {
				s.sleepFn(f.Delay)
			} else {
				time.Sleep(f.Delay)
			}
		}
	}
	return CopyVerified(src, dst)
}

// StageOut registers the files under srcDir matching pattern as a new
// catalog dataset (the result publication pipeline). pattern follows
// filepath.Match against base names; "" matches everything.
func (s *Service) StageOut(dataset, srcDir, pattern string) (Dataset, error) {
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return Dataset{}, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if pattern != "" {
			ok, err := filepath.Match(pattern, e.Name())
			if err != nil {
				return Dataset{}, err
			}
			if !ok {
				continue
			}
		}
		files = append(files, e.Name())
	}
	sort.Strings(files)
	if len(files) == 0 {
		return Dataset{}, fmt.Errorf("dls: stage-out of %q matched no files", dataset)
	}
	d := Dataset{Name: dataset, Root: srcDir, Files: files}
	if err := s.Catalog.Register(d); err != nil {
		return Dataset{}, err
	}
	return d, nil
}

// CopyVerified copies src to dst atomically and returns size and
// SHA-256 checksum. The bytes land in a temporary file in dst's
// directory, are re-read and verified against the source hash, and only
// then renamed into place — so a crash at any point leaves either the
// previous dst or no dst, never a partial file a later stage-in could
// trust. It is the single verified-copy primitive shared by the DLS
// stage-in path and the multisite federation transfers.
func CopyVerified(src, dst string) (int64, string, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, "", err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".tmp-*")
	if err != nil {
		return 0, "", err
	}
	tmpName := tmp.Name()
	// On any failure below the temp file is removed; dst is untouched.
	fail := func(err error) (int64, string, error) {
		os.Remove(tmpName)
		return 0, "", err
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(tmp, h), in)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	// Verify the landed bytes before they can become dst.
	back, err := os.Open(tmpName)
	if err != nil {
		return fail(err)
	}
	h2 := sha256.New()
	_, err = io.Copy(h2, back)
	if cerr := back.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	if got := hex.EncodeToString(h2.Sum(nil)); got != sum {
		return fail(fmt.Errorf("checksum mismatch: %s vs %s", got, sum))
	}
	if err := os.Rename(tmpName, dst); err != nil {
		return fail(err)
	}
	return n, sum, nil
}

// Pipeline is an ordered list of named steps executed by Run.
type Pipeline struct {
	Name  string
	Steps []Step
}

// Step is one pipeline action.
type Step struct {
	// Kind is "stage_in" or "stage_out".
	Kind string
	// Dataset names the catalog entry.
	Dataset string
	// Dir is the destination (stage_in) or source (stage_out) directory.
	Dir string
	// Pattern filters stage_out files.
	Pattern string
}

// Run executes the pipeline steps in order, failing fast.
func (s *Service) Run(p Pipeline) error {
	for i, st := range p.Steps {
		switch st.Kind {
		case "stage_in":
			if _, err := s.StageIn(st.Dataset, st.Dir); err != nil {
				return fmt.Errorf("dls: pipeline %s step %d: %w", p.Name, i, err)
			}
		case "stage_out":
			if _, err := s.StageOut(st.Dataset, st.Dir, st.Pattern); err != nil {
				return fmt.Errorf("dls: pipeline %s step %d: %w", p.Name, i, err)
			}
		default:
			return fmt.Errorf("dls: pipeline %s step %d: unknown kind %q", p.Name, i, st.Kind)
		}
	}
	return nil
}
