package cubecluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

// ErrNoReplicas means every replica of a shard is down — the cluster
// has lost that row range until a Heal succeeds.
var ErrNoReplicas = errors.New("cubecluster: no live replicas for shard")

// ErrPlacementMismatch rejects intercube over operands whose row
// ranges live on different shards; co-sharding is what keeps the
// combine local.
var ErrPlacementMismatch = errors.New("cubecluster: intercube operands are not co-sharded")

// do sends one request to one replica with byte accounting and
// latency/ops instrumentation. A non-nil error is a transport failure.
func (cl *Cluster) do(shard, rep int, req *cubeserver.Request) (*cubeserver.Response, error) {
	label := strconv.Itoa(shard)
	cl.met.scatterOps.With(label).Inc()
	cl.met.scatterB.Add(float64(requestBytes(req)))
	start := time.Now()
	resp, err := cl.shards[shard][rep].tr.Do(req)
	cl.met.observeShard(label, start)
	if err != nil {
		return nil, err
	}
	cl.met.gatherB.Add(float64(responseBytes(resp)))
	return resp, nil
}

// markDown takes a replica out of rotation (transport failure or
// engine-closed response) and flags it stale: it must be resynced by
// Heal before serving again. Replica health flags have their own lock
// (stateMu) because shard fan-out runs parts concurrently under the
// coordinator lock.
func (cl *Cluster) markDown(shard, rep int) {
	cl.stateMu.Lock()
	defer cl.stateMu.Unlock()
	r := cl.shards[shard][rep]
	if !r.down {
		r.down = true
		cl.met.failovers.Inc()
		cl.met.replicaUp.With(strconv.Itoa(shard), strconv.Itoa(rep)).Set(0)
	}
	r.stale = true
}

func (cl *Cluster) isDown(shard, rep int) bool {
	cl.stateMu.Lock()
	defer cl.stateMu.Unlock()
	return cl.shards[shard][rep].down
}

func (cl *Cluster) markStale(shard, rep int) {
	cl.stateMu.Lock()
	defer cl.stateMu.Unlock()
	cl.shards[shard][rep].stale = true
}

// forEachPart fans fn out over [0,n) concurrently — the scatter half
// of scatter-gather. The first error wins; all calls complete either
// way.
func forEachPart(n int, fn func(i int) error) error {
	if n == 1 {
		return fn(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readPart serves a read from the part's first live replica, failing
// over to the next on transport errors. A logical error from a healthy
// replica is returned as-is (it is deterministic — every replica would
// refuse identically); an engine-closed response means the replica
// process is effectively dead and triggers failover too.
func (cl *Cluster) readPart(p *part, req *cubeserver.Request) (*cubeserver.Response, error) {
	for rep := range cl.shards[p.shard] {
		if cl.isDown(p.shard, rep) || p.ids[rep] == "" {
			continue
		}
		r := *req
		r.CubeID = p.ids[rep]
		resp, err := cl.do(p.shard, rep, &r)
		if err != nil {
			cl.markDown(p.shard, rep)
			continue
		}
		if resp.ErrCode == cubeserver.CodeEngineClosed {
			cl.markDown(p.shard, rep)
			continue
		}
		if err := cubeserver.ResponseError(resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w %d", ErrNoReplicas, p.shard)
}

// writeShard applies a cube-creating request to EVERY live replica of
// a shard, so replicas stay bit-identical. mk builds the per-replica
// request (operand cube IDs differ per replica); returning nil marks
// the replica stale for this write (it is missing an operand). The
// first successful response supplies the authoritative shape; per-
// replica result IDs are returned aligned with the replica slice (""
// where the write did not land).
func (cl *Cluster) writeShard(shard int, mk func(rep int) *cubeserver.Request) (cubeserver.Shape, []string, bool, error) {
	reps := cl.shards[shard]
	ids := make([]string, len(reps))
	var shape cubeserver.Shape
	var found, got bool
	var logical error
	alive := false
	for rep := range reps {
		if cl.isDown(shard, rep) {
			continue
		}
		req := mk(rep)
		if req == nil {
			cl.markStale(shard, rep)
			continue
		}
		resp, err := cl.do(shard, rep, req)
		if err != nil {
			cl.markDown(shard, rep)
			continue
		}
		if resp.ErrCode == cubeserver.CodeEngineClosed {
			cl.markDown(shard, rep)
			continue
		}
		alive = true
		if err := cubeserver.ResponseError(resp); err != nil {
			if logical == nil {
				logical = err
			}
			continue
		}
		ids[rep] = resp.Shape.CubeID
		if !got {
			shape, found, got = resp.Shape, resp.Found, true
		}
	}
	if logical != nil {
		return shape, ids, found, logical
	}
	if !alive || !got {
		return shape, ids, found, fmt.Errorf("%w %d", ErrNoReplicas, shard)
	}
	return shape, ids, found, nil
}

// importEntry scatters an importfiles request: every shard imports the
// files server-side and keeps only its contiguous slice of the leading
// explicit dimension, so placement is decided once by arithmetic, not
// by a data shuffle. Rowless variables land whole on shard 0.
func (cl *Cluster) importEntry(req *cubeserver.Request) (*entry, error) {
	type impRes struct {
		shape cubeserver.Shape
		ids   []string
		found bool
	}
	res := make([]impRes, len(cl.shards))
	err := forEachPart(len(cl.shards), func(s int) error {
		shape, ids, foundHere, err := cl.writeShard(s, func(int) *cubeserver.Request {
			return &cubeserver.Request{
				Op: "importshard", Paths: req.Paths, Var: req.Var,
				ImplicitDim: req.ImplicitDim, Shard: s, Shards: len(cl.shards),
			}
		})
		if err != nil {
			return err
		}
		res[s] = impRes{shape: shape, ids: ids, found: foundHere}
		return nil
	})
	e := &entry{}
	if err != nil {
		for s := range res {
			if res[s].found {
				e.parts = append(e.parts, part{shard: s, ids: res[s].ids})
			}
		}
		cl.dropParts(e.parts)
		return nil, err
	}
	cum := 0
	for s := range res {
		if !res[s].found {
			continue
		}
		shape := res[s].shape
		localLead := 1
		if len(shape.ExplicitDims) > 0 {
			localLead = shape.ExplicitDims[0].Size
		}
		e.parts = append(e.parts, part{
			shard: s, leadLo: cum, leadHi: cum + localLead, rows: shape.Rows, ids: res[s].ids,
		})
		cum += localLead
		e.measure = shape.Measure
		e.implicit = datacube.Dimension{Name: shape.ImplicitName, Size: shape.ImplicitLen}
		if e.explicit == nil {
			e.explicit = append([]datacube.Dimension(nil), shape.ExplicitDims...)
		}
	}
	if len(e.parts) == 0 {
		return nil, fmt.Errorf("cubecluster: import produced no parts")
	}
	if len(e.explicit) > 0 {
		e.explicit[0].Size = cum
	}
	return cl.register(e), nil
}

// forwardable reports whether a pipeline op is row-local under
// leading-dimension sharding and can run inside a per-shard fused
// segment. aggtrailing qualifies because trailing-dimension groups
// never straddle a leading-dimension split.
func forwardable(op string) bool {
	switch op {
	case "apply", "reduce", "reducegroup", "reducestride", "subset", "intercube", "aggtrailing":
		return true
	}
	return false
}

// runSteps executes a pipeline against the cluster: row-local runs are
// batched into one fused per-shard pipeline request per segment, and
// the barriers between them (aggrows, subsetrows) execute at the
// coordinator moving only reduced partials or range bounds. Unkept
// intermediate entries are deleted before returning, success or not.
func (cl *Cluster) runSteps(srcID string, steps []cubeserver.PipelineStep) (*entry, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("cubeserver: empty pipeline")
	}
	cur, err := cl.getEntry(srcID)
	if err != nil {
		return nil, err
	}
	// A tolerance on the overall final step may only reach the shards
	// when that step ends a fused segment: each shard refines coarse
	// tier blocks relative to ITS cube's row 0, so the cluster result
	// matches the single-engine result exactly when every part's global
	// row offset sits on a coarsest-tier block boundary (checked against
	// the entry the terminal segment runs on, below). Otherwise the
	// tolerance is stripped and the pipeline runs exact — correct,
	// merely without the coarse-first savings.
	finalTol := 0.0
	if last := steps[len(steps)-1]; forwardable(last.Op) {
		finalTol = last.Tolerance
	}
	var temps []*entry
	cleanup := func(keep *entry) {
		for _, t := range temps {
			if t != keep {
				cl.dropParts(t.parts)
			}
		}
	}

	advance := func(next *entry, kept bool) {
		if kept {
			cl.register(next)
		} else {
			temps = append(temps, next)
		}
		cur = next
	}

	var batch []cubeserver.PipelineStep
	flush := func(kept bool) error {
		if len(batch) == 0 {
			return nil
		}
		next, err := cl.flushBatch(cur, batch)
		batch = nil
		if err != nil {
			return err
		}
		advance(next, kept)
		return nil
	}

	for i, st := range steps {
		last := i == len(steps)-1
		keepHere := st.Keep && !last
		switch {
		case forwardable(st.Op):
			if st.Op == "intercube" {
				other, err := cl.getEntry(st.OtherID)
				if err != nil {
					cleanup(nil)
					return nil, fmt.Errorf("pipeline step %d (intercube): %w", i, err)
				}
				if !samePlacement(cur, other) {
					cleanup(nil)
					return nil, fmt.Errorf("pipeline step %d: %w (%s vs %s)", i, ErrPlacementMismatch, cur.id, other.id)
				}
			}
			fwd := st
			fwd.Keep = false
			fwd.Tolerance = 0 // re-applied on the terminal segment when aligned
			batch = append(batch, fwd)
			if keepHere {
				if err := flush(true); err != nil {
					cleanup(nil)
					return nil, err
				}
			}
		case st.Op == "subsetrows":
			if err := flush(false); err != nil {
				cleanup(nil)
				return nil, err
			}
			next, err := cl.subsetRowsEntry(cur, st.Lo, st.Hi)
			if err != nil {
				cleanup(nil)
				return nil, fmt.Errorf("pipeline step %d: %w", i, err)
			}
			advance(next, keepHere)
		case st.Op == "aggrows":
			if err := flush(false); err != nil {
				cleanup(nil)
				return nil, err
			}
			next, err := cl.aggRowsEntry(cur, st.RowOp, st.Params)
			if err != nil {
				cleanup(nil)
				return nil, fmt.Errorf("pipeline step %d: %w", i, err)
			}
			advance(next, keepHere)
		default:
			cleanup(nil)
			return nil, fmt.Errorf("pipeline step %d: %w %q", i, cubeserver.ErrUnknownOp, st.Op)
		}
	}
	if finalTol > 0 && len(batch) > 0 && cl.tolerancePartsAligned(cur) {
		batch[len(batch)-1].Tolerance = finalTol
	}
	if err := flush(false); err != nil {
		cleanup(nil)
		return nil, err
	}
	if cur == cl.cat[srcID] {
		// Pure-Keep pipelines can end on the source; nothing new to return
		// is a caller bug upstream, but guard against aliasing the source
		// as a temp.
		cleanup(cur)
		return cur, nil
	}
	cleanup(cur)
	if cl.cat[cur.id] == nil {
		cl.register(cur)
	}
	return cur, nil
}

// flushBatch runs one fused segment on every part: each shard executes
// the whole row-local step chain server-side in a single request per
// replica. Leading ranges are invariant under row-local ops, so parts
// keep their placement; rows and the implicit axis come back in the
// shape.
func (cl *Cluster) flushBatch(cur *entry, batch []cubeserver.PipelineStep) (*entry, error) {
	next := &entry{measure: cur.measure, implicit: cur.implicit}
	shapes := make([]cubeserver.Shape, len(cur.parts))
	newParts := make([]part, len(cur.parts))
	err := forEachPart(len(cur.parts), func(i int) error {
		p := &cur.parts[i]
		shape, ids, _, err := cl.writeShard(p.shard, func(rep int) *cubeserver.Request {
			if p.ids[rep] == "" {
				return nil
			}
			steps := make([]cubeserver.PipelineStep, len(batch))
			copy(steps, batch)
			for j := range steps {
				if steps[j].Op != "intercube" {
					continue
				}
				other := cl.cat[steps[j].OtherID]
				op := other.partOn(p.shard)
				if op == nil || op.ids[rep] == "" {
					return nil
				}
				steps[j].OtherID = op.ids[rep]
			}
			return &cubeserver.Request{Op: "pipeline", CubeID: p.ids[rep], Pipeline: steps}
		})
		if err != nil {
			return err
		}
		shapes[i] = shape
		newParts[i] = part{
			shard: p.shard, leadLo: p.leadLo, leadHi: p.leadHi, rows: shape.Rows, ids: ids,
		}
		return nil
	})
	if err != nil {
		for i := range newParts {
			if newParts[i].ids != nil {
				next.parts = append(next.parts, newParts[i])
			}
		}
		cl.dropParts(next.parts)
		return nil, err
	}
	next.parts = newParts
	shape0 := shapes[0]
	next.measure = shape0.Measure
	next.implicit = datacube.Dimension{Name: shape0.ImplicitName, Size: shape0.ImplicitLen}
	next.explicit = append([]datacube.Dimension(nil), shape0.ExplicitDims...)
	if len(next.explicit) > 0 {
		next.explicit[0].Size = cur.leadSize()
	}
	return next, nil
}

// tolerancePartsAligned reports whether every part's global row offset
// is a multiple of the coarsest pyramid tier's row span, which makes
// shard-local tier blocks coincide with the single-engine cube's tier
// blocks (tier means are pure functions of the covered rows, so aligned
// blocks are bit-identical across deployments).
func (cl *Cluster) tolerancePartsAligned(e *entry) bool {
	f := cl.cfg.Engine.PyramidFactor()
	if f <= 1 {
		return false
	}
	start := 0
	for i := range e.parts {
		if start%f != 0 {
			return false
		}
		start += e.parts[i].rows
	}
	return true
}

// partOn returns the entry's part on a shard, nil if absent.
func (e *entry) partOn(shard int) *part {
	for i := range e.parts {
		if e.parts[i].shard == shard {
			return &e.parts[i]
		}
	}
	return nil
}

// subsetRowsEntry executes the row-range barrier: global bounds are
// validated once at the coordinator, then each overlapping shard trims
// its slice locally with re-based bounds. Only range arithmetic
// crosses the wire.
func (cl *Cluster) subsetRowsEntry(cur *entry, lo, hi int) (*entry, error) {
	if len(cur.explicit) == 0 {
		return nil, fmt.Errorf("datacube: cube has no explicit dimensions")
	}
	lead := cur.explicit[0].Size
	if lo < 0 || hi > lead || lo >= hi {
		return nil, fmt.Errorf("datacube: row subset [%d,%d) out of range [0,%d)", lo, hi, lead)
	}
	next := &entry{measure: cur.measure, implicit: cur.implicit}
	next.explicit = append([]datacube.Dimension(nil), cur.explicit...)
	next.explicit[0].Size = hi - lo
	type job struct {
		p        *part
		olo, ohi int
	}
	var jobs []job
	for i := range cur.parts {
		p := &cur.parts[i]
		olo, ohi := max(lo, p.leadLo), min(hi, p.leadHi)
		if olo < ohi {
			jobs = append(jobs, job{p: p, olo: olo, ohi: ohi})
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cubecluster: row subset [%d,%d) matched no shard", lo, hi)
	}
	newParts := make([]part, len(jobs))
	err := forEachPart(len(jobs), func(i int) error {
		j := jobs[i]
		shape, ids, _, err := cl.writeShard(j.p.shard, func(rep int) *cubeserver.Request {
			if j.p.ids[rep] == "" {
				return nil
			}
			return &cubeserver.Request{Op: "subsetrows", CubeID: j.p.ids[rep], Lo: j.olo - j.p.leadLo, Hi: j.ohi - j.p.leadLo}
		})
		if err != nil {
			return err
		}
		newParts[i] = part{
			shard: j.p.shard, leadLo: j.olo - lo, leadHi: j.ohi - lo, rows: shape.Rows, ids: ids,
		}
		return nil
	})
	if err != nil {
		for i := range newParts {
			if newParts[i].ids != nil {
				next.parts = append(next.parts, newParts[i])
			}
		}
		cl.dropParts(next.parts)
		return nil, err
	}
	next.parts = newParts
	return next, nil
}

// aggRowsEntry executes the row-collapse barrier. Ops with a
// registered partial merge gather one float64 per implicit position
// per shard and fold them at the coordinator — the reduced-partials
// path. Ops without one (std, quantile, run statistics) fall back to
// gathering full columns in global row order, which is bit-identical
// for any op but costs a full transfer; the fallback is counted so the
// C3 sweep can show the difference. Either way the merged global row
// is landed as a fresh 1-row cube on shard 0.
func (cl *Cluster) aggRowsEntry(cur *entry, op string, params []float64) (*entry, error) {
	n := cur.implicit.Size
	var row []float32
	if pm, ok := datacube.LookupRowOpMerge(op); ok {
		partialOp := pm.PartialOp
		if partialOp == "" {
			partialOp = op
		}
		partials := make([][]float64, len(cur.parts))
		weights := make([]int, len(cur.parts))
		err := forEachPart(len(cur.parts), func(i int) error {
			resp, err := cl.readPart(&cur.parts[i], &cubeserver.Request{Op: "aggpartial", RowOp: partialOp, Params: params})
			if err != nil {
				return err
			}
			partials[i] = resp.Partials
			weights[i] = cur.parts[i].rows
			return nil
		})
		if err != nil {
			return nil, err
		}
		merged, err := datacube.MergeRowPartials(op, partials, weights, params)
		if err != nil {
			return nil, err
		}
		row = merged
	} else {
		rop, ok := datacube.LookupRowOp(op)
		if !ok {
			return nil, fmt.Errorf("datacube: unknown row op %q", op)
		}
		cl.met.mergeFB.Inc()
		vals, err := cl.gatherValues(cur)
		if err != nil {
			return nil, err
		}
		row = make([]float32, n)
		col := make([]float32, len(vals))
		for t := 0; t < n; t++ {
			for r := range vals {
				col[r] = vals[r][t]
			}
			row[t] = float32(rop(col, params))
		}
	}

	shape, ids, _, err := cl.writeShard(0, func(int) *cubeserver.Request {
		return &cubeserver.Request{
			Op: "putcube", Var: cur.measure,
			Dims:        []datacube.Dimension{{Name: "all", Size: 1}},
			ImplicitDim: cur.implicit.Name,
			Values:      [][]float32{row},
		}
	})
	if err != nil {
		return nil, err
	}
	return &entry{
		measure:  cur.measure,
		explicit: []datacube.Dimension{{Name: "all", Size: 1}},
		implicit: datacube.Dimension{Name: cur.implicit.Name, Size: n},
		parts:    []part{{shard: 0, leadLo: 0, leadHi: 1, rows: shape.Rows, ids: ids}},
	}, nil
}

// dropParts best-effort deletes part cubes on their replicas (cleanup
// of temporaries and half-built entries).
func (cl *Cluster) dropParts(parts []part) {
	for i := range parts {
		p := &parts[i]
		for rep, id := range p.ids {
			if id == "" || cl.isDown(p.shard, rep) {
				continue
			}
			if _, err := cl.do(p.shard, rep, &cubeserver.Request{Op: "delete", CubeID: id}); err != nil {
				cl.markDown(p.shard, rep)
			}
		}
	}
}
