package cubeserver

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/datacube"
	"repro/internal/obs"
)

// These tests pin the wire protocol's error fidelity: classified
// server-side failures must restore their sentinels on the client, a
// transport failure must poison the client for good, and protocol
// garbage must be counted rather than silently swallowed.

func TestWireErrorNotFoundSentinel(t *testing.T) {
	client, _ := startServer(t)
	for _, op := range []string{"apply", "shape", "delete"} {
		_, err := client.call(&Request{Op: op, CubeID: "cube-404", Expr: "x"})
		if !errors.Is(err, datacube.ErrNotFound) {
			t.Fatalf("%s on ghost cube: want datacube.ErrNotFound across the wire, got %v", op, err)
		}
	}
	// The server's message survives alongside the sentinel.
	_, err := client.call(&Request{Op: "shape", CubeID: "cube-404"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("want RemoteError with code %q, got %#v", CodeNotFound, err)
	}
}

func TestWireErrorEngineClosedSentinel(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	srv, err := Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	engine.Close()
	if _, err := cube.Apply("x+1"); !errors.Is(err, datacube.ErrEngineClosed) {
		t.Fatalf("apply on closed engine: want datacube.ErrEngineClosed across the wire, got %v", err)
	}
}

func TestWireErrorUnknownOpSentinel(t *testing.T) {
	client, _ := startServer(t)
	if _, err := client.call(&Request{Op: "explode"}); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("want ErrUnknownOp across the wire, got %v", err)
	}
	// Unknown pipeline step ops classify the same way.
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Pipeline(PipelineStep{Op: "explode"}); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("want ErrUnknownOp for unknown pipeline step, got %v", err)
	}
}

// TestClientPoisonedAfterTransportError breaks the connection under a
// live client and demands the first call report the transport failure
// and every later call fail fast with ErrClientBroken — a desynced gob
// stream must never serve another request.
func TestClientPoisonedAfterTransportError(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	srv, err := Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	srv.Close() // kills the server-side conn mid-session
	if err := client.Ping(); err == nil || errors.Is(err, ErrClientBroken) {
		t.Fatalf("first call after break: want the raw transport error, got %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := client.Ping(); !errors.Is(err, ErrClientBroken) {
			t.Fatalf("call %d after break: want ErrClientBroken, got %v", i, err)
		}
	}
}

// TestServerCountsProtocolGarbage feeds raw garbage bytes to the
// server and checks the proto-error counter moves while the server
// keeps serving well-formed clients.
func TestServerCountsProtocolGarbage(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	reg := obs.NewRegistry()
	srv, err := ServeDispatcher("127.0.0.1:0", EngineDispatcher(engine), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("\xff\xfe this is not gob \x00\x01")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.met.protoErrs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proto-error counter never incremented on garbage bytes")
		}
		time.Sleep(time.Millisecond)
	}

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatalf("server should survive protocol garbage, ping failed: %v", err)
	}
}
