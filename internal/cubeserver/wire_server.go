package cubeserver

// wire_server.go is the server side of the v2 protocol: a per-connection
// frame loop that decodes requests off pooled buffers, dispatches each
// one on its own bounded worker goroutine, and interleaves responses in
// completion order — the counterpart of the client mux in mux.go.

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// meteredCounter accumulates byte counts locally until the negotiated
// codec is known, then streams them into the per-codec obs counter.
// attach happens-before any concurrent use: the server wires counters
// up right after the sniff, before spawning response workers.
type meteredCounter struct {
	pending int64
	ctr     *obs.Counter
}

func (m *meteredCounter) add(n int) {
	if m.ctr != nil {
		m.ctr.Add(float64(n))
		return
	}
	m.pending += int64(n)
}

func (m *meteredCounter) attach(c *obs.Counter) {
	c.Add(float64(m.pending))
	m.pending = 0
	m.ctr = c
}

type meteredReader struct {
	r io.Reader
	m *meteredCounter
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	m.m.add(n)
	return n, err
}

type meteredWriter struct {
	w io.Writer
	m *meteredCounter
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.m.add(n)
	return n, err
}

// reqPool recycles Request structs across the v2 handle loop. Decoding
// overwrites every field and allocates fresh slices, so a dispatcher
// may retain a request (the residency layer keeps them as rebuild
// recipes) while the struct itself cycles back through the pool.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// handleV2 serves one multiplexed v2 session. The read loop pulls
// frames; each request dispatches on its own goroutine (bounded by
// Options.MaxConcurrent) and writes its response under a shared write
// lock, so slow operations don't block fast ones behind them — the
// server-side half of what makes client pipelining pay off.
func (s *Server) handleV2(conn net.Conn, br *bufio.Reader, w io.Writer) {
	var (
		wmu      sync.Mutex
		workers  sync.WaitGroup
		inflight atomic.Int64
	)
	sem := make(chan struct{}, s.opts.MaxConcurrent)
	defer workers.Wait()

	for {
		s.armIdle(conn)
		ftype, id, frame, body, consumed, err := readFrame(br)
		if err != nil {
			switch {
			case isTimeout(err):
				// A deadline with no header bytes consumed and requests
				// still executing is a busy connection, not an idle one:
				// re-arm and keep reading. Partial header bytes mean the
				// peer stalled mid-frame — that conn is gone either way.
				if !consumed && inflight.Load() > 0 {
					continue
				}
				s.met.connTimeouts.Inc()
			case !connDone(err):
				s.met.protoErrs.Inc()
			}
			return
		}
		if ftype != frameRequest {
			putBuf(frame)
			s.met.protoErrs.Inc()
			return
		}
		req := reqPool.Get().(*Request)
		if err := DecodeRequestV2(body, req); err != nil {
			putBuf(frame)
			reqPool.Put(req)
			s.met.protoErrs.Inc()
			// Framing is intact (the frame was fully delimited), so the
			// session survives; answer the id so the caller isn't left
			// hanging on a request the server threw away.
			if werr := s.writeV2(conn, w, &wmu, id, &Response{Err: "cubeserver: bad v2 request frame: " + err.Error()}); werr != nil {
				return
			}
			continue
		}
		putBuf(frame)

		sem <- struct{}{}
		inflight.Add(1)
		s.met.inflight.Inc()
		workers.Add(1)
		go func(id uint64, req *Request) {
			defer func() {
				s.met.inflight.Dec()
				inflight.Add(-1)
				<-sem
				workers.Done()
			}()
			resp := s.disp.Dispatch(req)
			*req = Request{}
			reqPool.Put(req)
			if err := s.writeV2(conn, w, &wmu, id, resp); err != nil {
				// The write path is broken; tear the conn down so the read
				// loop (and the client) find out now rather than at the
				// next deadline.
				conn.Close()
			}
		}(id, req)
	}
}

// writeV2 encodes resp into a pooled frame and writes it under the
// connection's write lock with a fresh write deadline.
func (s *Server) writeV2(conn net.Conn, w io.Writer, wmu *sync.Mutex, id uint64, resp *Response) error {
	buf := encodeResponseFrame(getBuf(), id, resp)
	wmu.Lock()
	s.armWrite(conn)
	_, err := w.Write(buf)
	wmu.Unlock()
	putBuf(buf)
	if err != nil {
		if isTimeout(err) {
			s.met.connTimeouts.Inc()
		} else if !connDone(err) {
			s.met.protoErrs.Inc()
		}
	}
	return err
}
