package imagebuilder

import (
	"strings"
	"sync"
	"testing"
)

func x86() Platform { return Platform{Arch: "x86_64", MPI: "openmpi4"} }

func TestResolveClosureOrder(t *testing.T) {
	r := NewRegistry()
	order, err := r.Resolve([]string{"pycompss"})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, dep := range [][2]string{{"libc", "mpi"}, {"libc", "python"}, {"python", "pycompss"}, {"mpi", "pycompss"}} {
		if pos[dep[0]] >= pos[dep[1]] {
			t.Fatalf("%s not before %s: %v", dep[0], dep[1], order)
		}
	}
}

func TestResolveUnknownAndCycle(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Resolve([]string{"flux-capacitor"}); err == nil {
		t.Fatal("unknown package resolved")
	}
	r.Add(Package{Name: "a", Deps: []string{"b"}})
	r.Add(Package{Name: "b", Deps: []string{"a"}})
	if _, err := r.Resolve([]string{"a"}); err == nil {
		t.Fatal("cycle resolved")
	}
}

func TestResolveDeterministic(t *testing.T) {
	r := NewRegistry()
	a, _ := r.Resolve([]string{"cnn-inference", "pyophidia"})
	b, _ := r.Resolve([]string{"pyophidia", "cnn-inference"})
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("order depends on request order: %v vs %v", a, b)
	}
}

func TestBuildProducesManifest(t *testing.T) {
	b := NewBuilder(nil)
	img, err := b.Build(Request{Name: "climate-ml", Packages: []string{"cnn-inference"}, Platform: x86()})
	if err != nil {
		t.Fatal(err)
	}
	if img.Tag != "climate-ml:x86_64" {
		t.Fatalf("tag = %q", img.Tag)
	}
	if !strings.HasPrefix(img.Digest, "sha256:") {
		t.Fatalf("digest = %q", img.Digest)
	}
	if img.Cached {
		t.Fatal("first build marked cached")
	}
	if len(img.Layers) < 4 { // libc, python, numpy, tensors, cnn-inference
		t.Fatalf("layers = %v", img.Layers)
	}
	if len(img.BuildLog) != len(img.Layers)+2 {
		t.Fatalf("log lines = %d", len(img.BuildLog))
	}
}

func TestBuildCacheHit(t *testing.T) {
	b := NewBuilder(nil)
	req := Request{Name: "app", Packages: []string{"pycompss"}, Platform: x86()}
	first, err := b.Build(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Build(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Digest != first.Digest {
		t.Fatalf("cache miss: %+v", second)
	}
	if b.Builds() != 1 {
		t.Fatalf("builds = %d", b.Builds())
	}
}

func TestBuildPlatformChangesDigest(t *testing.T) {
	b := NewBuilder(nil)
	req := Request{Name: "app", Packages: []string{"mpi"}, Platform: x86()}
	a, _ := b.Build(req)
	req.Platform = Platform{Arch: "ppc64le", MPI: "spectrum-mpi"}
	c, _ := b.Build(req)
	if a.Digest == c.Digest {
		t.Fatal("different platforms share a digest")
	}
	if b.Builds() != 2 {
		t.Fatalf("builds = %d", b.Builds())
	}
}

func TestBuildValidation(t *testing.T) {
	b := NewBuilder(nil)
	if _, err := b.Build(Request{Packages: []string{"mpi"}, Platform: x86()}); err == nil {
		t.Fatal("anonymous request accepted")
	}
	if _, err := b.Build(Request{Name: "x", Packages: []string{"mpi"}}); err == nil {
		t.Fatal("platformless request accepted")
	}
	if _, err := b.Build(Request{Name: "x", Packages: []string{"ghost"}, Platform: x86()}); err == nil {
		t.Fatal("unknown package accepted")
	}
}

func TestConcurrentBuildsConverge(t *testing.T) {
	b := NewBuilder(nil)
	req := Request{Name: "app", Packages: []string{"keras-like"}, Platform: x86()}
	const n = 8
	digests := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img, err := b.Build(req)
			if err == nil {
				digests[i] = img.Digest
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if digests[i] != digests[0] || digests[i] == "" {
			t.Fatalf("divergent digests: %v", digests)
		}
	}
}
