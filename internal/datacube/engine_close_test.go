package datacube

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCloseDuringOperatorDoesNotPanic is the regression test for the
// use-after-Close panic: an operator whose fragment count exceeds the
// I/O-server channel buffer blocks in mapFragments' send loop; closing
// the engine concurrently used to close the channel under the sender,
// panicking with "send on closed channel". Close must instead wait for
// the in-flight operator to drain.
func TestCloseDuringOperatorDoesNotPanic(t *testing.T) {
	// One server, many more fragments than the 64-slot task buffer, and
	// enough per-fragment latency that the producer is still sending
	// when Close lands.
	e := NewEngine(Config{Servers: 1, FragmentsPerCube: 256, FragmentLatency: 200 * time.Microsecond})
	done := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- fmt.Errorf("operator panicked: %v", p)
			}
		}()
		_, err := e.NewCubeFromFunc("m",
			[]Dimension{{Name: "cell", Size: 256}}, Dimension{Name: "t", Size: 4},
			func(row, t int) float32 { return float32(row + t) })
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the send loop fill the channel
	e.Close()
	err := <-done
	// The in-flight operator either completed before Close drained it
	// (nil) — never a panic.
	if err != nil {
		t.Fatalf("concurrent Close broke the operator: %v", err)
	}
}

// TestOperatorsAfterCloseReturnTyped verifies that operators started
// after Close fail with ErrEngineClosed instead of panicking.
func TestOperatorsAfterCloseReturnTyped(t *testing.T) {
	e := NewEngine(Config{Servers: 2})
	c, err := e.NewCubeFromFunc("m",
		[]Dimension{{Name: "cell", Size: 8}}, Dimension{Name: "t", Size: 4},
		func(row, t int) float32 { return 1 })
	if err != nil {
		t.Fatalf("NewCubeFromFunc: %v", err)
	}
	e.Close()
	e.Close() // idempotent

	if _, err := e.NewCubeFromFunc("m2",
		[]Dimension{{Name: "cell", Size: 8}}, Dimension{Name: "t", Size: 4},
		func(row, t int) float32 { return 2 }); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("NewCubeFromFunc after Close = %v, want ErrEngineClosed", err)
	}
	if _, err := c.Apply("x+1"); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Apply after Close = %v, want ErrEngineClosed", err)
	}
	if _, err := c.Reduce("max"); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Reduce after Close = %v, want ErrEngineClosed", err)
	}
}

// TestCloseConcurrentWithManyOperators hammers Close against a burst of
// operators from several goroutines; every operator must either succeed
// or fail with ErrEngineClosed.
func TestCloseConcurrentWithManyOperators(t *testing.T) {
	e := NewEngine(Config{Servers: 2, FragmentsPerCube: 128, FragmentLatency: 50 * time.Microsecond})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs <- fmt.Errorf("panic: %v", p)
				}
			}()
			_, err := e.NewCubeFromFunc("m",
				[]Dimension{{Name: "cell", Size: 128}}, Dimension{Name: "t", Size: 2},
				func(row, t int) float32 { return 0 })
			if err != nil && !errors.Is(err, ErrEngineClosed) {
				errs <- err
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	e.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("operator under concurrent Close: %v", err)
	}
}

// TestMapFragmentsJoinsAllErrors is the regression test for the
// dropped-error bug: mapFragments used to report only one
// nondeterministically-chosen fragment error. All fragment failures
// must now surface through errors.Join.
func TestMapFragmentsJoinsAllErrors(t *testing.T) {
	e := newTestEngine(t)
	c := e.newCube([]Dimension{{Name: "cell", Size: 5}}, Dimension{Name: "t", Size: 1})
	errA := errors.New("fragment failure A")
	errB := errors.New("fragment failure B")
	var n int32
	var mu sync.Mutex
	err := e.mapFragments("test", c, func(fr *fragment) error {
		mu.Lock()
		n++
		k := n
		mu.Unlock()
		switch k {
		case 1:
			return errA
		case 2:
			return errB
		default:
			return nil
		}
	})
	if err == nil {
		t.Fatalf("expected aggregated error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Errorf("aggregated error lost a member: %v", err)
	}
	if !strings.Contains(err.Error(), "failure A") || !strings.Contains(err.Error(), "failure B") {
		t.Errorf("aggregated message incomplete: %v", err)
	}
}
