// Heatwaves performs a multi-year heat/cold-wave analysis of a
// synthetic climate projection, the paper's §5.3 use case: pipelines
// of datacube operators compute, per year and grid cell, the longest
// wave duration, the number of waves and the wave-day frequency, with
// the long-term climatology baseline loaded once and kept in memory
// across all years. It renders Figure 4-style maps and a year-by-year
// summary table, comparing two forcing scenarios.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/stream"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	outDir, err := os.MkdirTemp("", "heatwaves-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output directory: %s\n\n", outDir)

	g := grid.Grid{NLat: 32, NLon: 64}
	const years, daysPerYear = 3, 30

	engine := datacube.NewEngine(datacube.Config{Servers: 4})
	defer engine.Close()

	// The historical baseline is built once and reused for every year
	// and both scenarios — the in-memory reuse the paper highlights.
	baseline, err := indices.BuildBaseline(engine, g, daysPerYear)
	if err != nil {
		log.Fatal(err)
	}
	params := indices.Params{DaysPerYear: daysPerYear}

	for _, scenario := range []esm.Scenario{esm.Historical, esm.SSP585} {
		fmt.Printf("=== scenario %s ===\n", scenario)
		modelDir := filepath.Join(outDir, scenario.String())
		if err := os.MkdirAll(modelDir, 0o755); err != nil {
			log.Fatal(err)
		}
		model := esm.NewModel(esm.Config{
			Grid: g, StartYear: 2040, Years: years, DaysPerYear: daysPerYear,
			Seed: 7, Scenario: scenario,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 0,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 9,
			},
		})
		paths, err := model.Run(esm.RunOptions{Dir: modelDir})
		if err != nil {
			log.Fatal(err)
		}
		batches := stream.NewYearBatcher(daysPerYear, esm.YearOf).Add(paths...)

		fmt.Printf("%-6s %12s %12s %12s %12s\n", "year", "hw/cell", "hw max dur", "cw/cell", "hw freq")
		for _, batch := range batches {
			hw, err := indices.HeatWaves(engine, batch.Files, baseline, params)
			if err != nil {
				log.Fatal(err)
			}
			cw, err := indices.ColdWaves(engine, batch.Files, baseline, params)
			if err != nil {
				log.Fatal(err)
			}
			hwNum := mustMean(hw.Number)
			hwDur := mustMax(hw.Duration)
			cwNum := mustMean(cw.Number)
			hwFreq := mustMean(hw.Frequency)
			fmt.Printf("%-6d %12.4f %12.0f %12.4f %12.4f\n", batch.Year, hwNum, hwDur, cwNum, hwFreq)

			// Figure 4: the per-year Heat Wave Number map.
			field, err := indices.CubeToField(hw.Number, g)
			if err != nil {
				log.Fatal(err)
			}
			mapPath := filepath.Join(outDir, fmt.Sprintf("hw_number_%s_%d.ppm", scenario, batch.Year))
			if err := viz.WritePPM(mapPath, field, 0, 0, viz.Heat); err != nil {
				log.Fatal(err)
			}
			if batch.Year == 2040 {
				fmt.Println("\nHeat Wave Number map:")
				fmt.Println(viz.ASCIIMap(field, 64))
			}
			for _, c := range []*datacube.Cube{hw.Duration, hw.Number, hw.Frequency, cw.Duration, cw.Number, cw.Frequency} {
				_ = c.Delete()
			}
		}
		fmt.Println()
	}
	// zonal-mean diagnostic: the datacube's trailing-dimension
	// aggregation turns a (lat, lon) temperature cube into a per-latitude
	// profile — the classic first look at any climate field.
	fmt.Println("zonal-mean near-surface temperature (historical, day 0):")
	hist := esm.NewModel(esm.Config{Grid: g, StartYear: 2040, Years: 1, DaysPerYear: 2, Seed: 7})
	day := hist.StepDay()
	ds, err := day.ToDataset()
	if err != nil {
		log.Fatal(err)
	}
	tcube, err := engine.ImportDataset(ds, "TREFHT", "time")
	if err != nil {
		log.Fatal(err)
	}
	zonal, err := tcube.AggregateTrailing("avg")
	if err != nil {
		log.Fatal(err)
	}
	var profile []viz.ProfilePoint
	for i := 0; i < g.NLat; i += 2 {
		row, err := zonal.Row(i)
		if err != nil {
			log.Fatal(err)
		}
		profile = append(profile, viz.ProfilePoint{
			Label: fmt.Sprintf("%+.0f°", g.Lat(i)),
			Value: float64(row[0]),
		})
	}
	fmt.Println(viz.ASCIIProfile(profile, 48))
	_ = tcube.Delete()
	_ = zonal.Delete()

	st := engine.Stats()
	fmt.Printf("engine totals: %d file reads, %d operators, %d fragment tasks\n",
		st.FileReads, st.Ops, st.FragmentTasks)
	fmt.Println("note: the climatology baseline was imported 0 times from storage —")
	fmt.Println("it lives in engine memory and was reused by every pipeline above.")
}

func mustMean(c *datacube.Cube) float64 {
	agg, err := c.AggregateRows("avg")
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Delete()
	red, err := agg.Reduce("avg")
	if err != nil {
		log.Fatal(err)
	}
	defer red.Delete()
	v, err := red.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func mustMax(c *datacube.Cube) float64 {
	agg, err := c.AggregateRows("max")
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Delete()
	red, err := agg.Reduce("max")
	if err != nil {
		log.Fatal(err)
	}
	defer red.Delete()
	v, err := red.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	return v
}
