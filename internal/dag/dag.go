// Package dag implements the directed acyclic task graph used by the
// workflow runtime. A Graph holds nodes identified by integer IDs and
// directed dependency edges; it supports cycle detection, topological
// ordering, level (wavefront) computation, critical-path analysis and
// Graphviz DOT export.
//
// The graph mirrors the structure PyCOMPSs builds at run time from task
// invocations (Figure 3 of the paper): each node is one task instance,
// each edge a data dependency inferred from parameter directionality.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Graph. IDs are assigned
// sequentially starting at 1 so that they match the task numbering used
// in the paper's Figure 3.
type NodeID int

// Node is a single vertex of the task graph.
type Node struct {
	ID NodeID
	// Label is the human-readable task name (the Python function name in
	// the paper; the registered task name here).
	Label string
	// Kind groups nodes that execute the same function; nodes of one kind
	// share a color in DOT output, matching the paper's Figure 3 where
	// "different colors represent the different function/method defined in
	// the Python code".
	Kind string
	// Weight is an abstract cost used by critical-path analysis. A zero
	// weight is treated as 1.
	Weight float64
	// Meta carries optional free-form annotations (e.g. year index).
	Meta map[string]string
}

// Graph is a mutable directed acyclic graph. It is not safe for
// concurrent mutation; the workflow runtime serializes graph updates on
// its master goroutine, as the COMPSs runtime does.
type Graph struct {
	nodes map[NodeID]*Node
	succ  map[NodeID]map[NodeID]struct{}
	pred  map[NodeID]map[NodeID]struct{}
	next  NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID]map[NodeID]struct{}),
		pred:  make(map[NodeID]map[NodeID]struct{}),
		next:  1,
	}
}

// AddNode inserts a new node with the given label and kind and returns
// its assigned ID.
func (g *Graph) AddNode(label, kind string) NodeID {
	id := g.next
	g.next++
	g.nodes[id] = &Node{ID: id, Label: label, Kind: kind, Weight: 1}
	g.succ[id] = make(map[NodeID]struct{})
	g.pred[id] = make(map[NodeID]struct{})
	return id
}

// Node returns the node with the given ID, or nil if absent.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Len reports the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// AddEdge inserts the dependency from → to ("to depends on from").
// It returns an error if either endpoint is missing, the edge would be a
// self-loop, or the edge would create a cycle.
func (g *Graph) AddEdge(from, to NodeID) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("dag: unknown source node %d", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dag: unknown target node %d", to)
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on node %d", from)
	}
	if _, dup := g.succ[from][to]; dup {
		return nil // idempotent
	}
	if g.reaches(to, from) {
		return fmt.Errorf("dag: edge %d->%d would create a cycle", from, to)
	}
	g.succ[from][to] = struct{}{}
	g.pred[to][from] = struct{}{}
	return nil
}

// HasEdge reports whether the direct edge from → to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.succ[from][to]
	return ok
}

// reaches reports whether a path exists from src to dst.
func (g *Graph) reaches(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	seen := map[NodeID]bool{src: true}
	stack := []NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.succ[n] {
			if s == dst {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Predecessors returns the sorted direct dependencies of id.
func (g *Graph) Predecessors(id NodeID) []NodeID { return sortedIDs(g.pred[id]) }

// Successors returns the sorted direct dependents of id.
func (g *Graph) Successors(id NodeID) []NodeID { return sortedIDs(g.succ[id]) }

func sortedIDs(set map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots returns all nodes without predecessors, sorted by ID.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns all nodes without successors, sorted by ID.
func (g *Graph) Leaves() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopoOrder returns the nodes in a deterministic topological order
// (Kahn's algorithm with a sorted frontier). An error is returned if the
// graph contains a cycle, which cannot happen through AddEdge but guards
// against future mutation paths.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	frontier := g.Roots()
	order := make([]NodeID, 0, len(g.nodes))
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		released := make([]NodeID, 0, 4)
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				released = append(released, s)
			}
		}
		sort.Slice(released, func(i, j int) bool { return released[i] < released[j] })
		frontier = mergeSorted(frontier, released)
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

func mergeSorted(a, b []NodeID) []NodeID {
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Levels partitions the nodes into wavefronts: level 0 holds the roots,
// level k the nodes whose longest path from any root has k edges. Tasks
// within one level are mutually independent and may run concurrently;
// the number of levels bounds the critical path length in task count.
func (g *Graph) Levels() ([][]NodeID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := make(map[NodeID]int, len(order))
	maxLevel := 0
	for _, n := range order {
		l := 0
		for p := range g.pred[n] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[n] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]NodeID, maxLevel+1)
	for _, n := range order {
		out[level[n]] = append(out[level[n]], n)
	}
	for _, lv := range out {
		sort.Slice(lv, func(i, j int) bool { return lv[i] < lv[j] })
	}
	return out, nil
}

// MaxWidth returns the size of the largest level: the maximum degree of
// task parallelism the graph admits.
func (g *Graph) MaxWidth() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	w := 0
	for _, lv := range levels {
		if len(lv) > w {
			w = len(lv)
		}
	}
	return w, nil
}

// CriticalPath returns the heaviest root-to-leaf path and its total
// weight. Nodes with zero weight count as weight 1.
func (g *Graph) CriticalPath() ([]NodeID, float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[NodeID]float64, len(order))
	via := make(map[NodeID]NodeID, len(order))
	w := func(id NodeID) float64 {
		if n := g.nodes[id]; n.Weight > 0 {
			return n.Weight
		}
		return 1
	}
	var best NodeID
	bestDist := -1.0
	for _, n := range order {
		d := w(n)
		bestPred := NodeID(0)
		for p := range g.pred[n] {
			if dist[p]+w(n) > d {
				d = dist[p] + w(n)
				bestPred = p
			}
		}
		dist[n] = d
		if bestPred != 0 {
			via[n] = bestPred
		}
		if d > bestDist {
			bestDist = d
			best = n
		}
	}
	if bestDist < 0 {
		return nil, 0, nil
	}
	var path []NodeID
	for n := best; n != 0; n = via[n] {
		path = append(path, n)
		if _, ok := via[n]; !ok {
			break
		}
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestDist, nil
}

// KindCounts returns the number of nodes per kind.
func (g *Graph) KindCounts() map[string]int {
	out := make(map[string]int)
	for _, n := range g.nodes {
		out[n.Kind]++
	}
	return out
}

// dotPalette cycles distinct fill colors per kind, approximating the
// per-function coloring of the paper's Figure 3.
var dotPalette = []string{
	"lightblue", "tomato", "palegreen", "gold", "orchid",
	"lightsalmon", "turquoise", "plum", "khaki", "lightgray",
	"salmon", "aquamarine", "wheat", "thistle", "palegoldenrod",
	"lightpink", "powderblue", "darkseagreen",
}

// DOT renders the graph in Graphviz format with one fill color per node
// kind. Output is deterministic.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [style=filled, shape=circle];\n")

	kinds := make([]string, 0, 8)
	seen := make(map[string]bool)
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		k := g.nodes[id].Kind
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	color := make(map[string]string, len(kinds))
	for i, k := range kinds {
		color[k] = dotPalette[i%len(dotPalette)]
	}
	for _, id := range ids {
		n := g.nodes[id]
		fmt.Fprintf(&b, "  n%d [label=\"#%d\\n%s\", fillcolor=%s];\n", id, id, n.Label, color[n.Kind])
	}
	for _, id := range ids {
		for _, s := range g.Successors(id) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
