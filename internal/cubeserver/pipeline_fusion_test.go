package cubeserver

import (
	"testing"
)

// TestPipelineFusionResidency pins the materialization contract of the
// fused pipeline executor: Keep is the only way an intermediate
// survives, and unkept stage outputs never become registered cubes —
// they exist only as per-fragment scratch during the fused pass, so
// List() and MemoryBytes() account for exactly source + kept + result.
func TestPipelineFusionResidency(t *testing.T) {
	client, engine := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	baseIDs := make(map[string]bool)
	for _, id := range engine.List() {
		baseIDs[id] = true
	}
	baseMem := engine.MemoryBytes()
	srcCube, err := engine.Get(cube.ID())
	if err != nil {
		t.Fatal(err)
	}
	cellBytes := int64(srcCube.Rows()) * 4 // implicit length 1 per row downstream

	// Four steps, Keep on the second: the apply and reduce outputs must
	// not register; the kept reducegroup output and the result must.
	out, err := cube.Pipeline(
		PipelineStep{Op: "apply", Expr: "x+1"},
		PipelineStep{Op: "reducegroup", RowOp: "max", Group: 2, Keep: true},
		PipelineStep{Op: "apply", Expr: "x*10"},
		PipelineStep{Op: "reduce", RowOp: "sum"},
	)
	if err != nil {
		t.Fatal(err)
	}

	var newIDs []string
	for _, id := range engine.List() {
		if !baseIDs[id] {
			newIDs = append(newIDs, id)
		}
	}
	if len(newIDs) != 2 {
		t.Fatalf("new cubes = %v, want exactly kept intermediate + result", newIDs)
	}
	foundResult := false
	var kept string
	for _, id := range newIDs {
		if id == out.ID() {
			foundResult = true
		} else {
			kept = id
		}
	}
	if !foundResult {
		t.Fatalf("result %s not registered (have %v)", out.ID(), newIDs)
	}
	keptCube, err := engine.Get(kept)
	if err != nil {
		t.Fatalf("kept intermediate not resident: %v", err)
	}
	// kept cube is the reducegroup(max,2) output: half the source length
	if keptCube.ImplicitLen() != srcCube.ImplicitLen()/2 {
		t.Fatalf("kept cube implicit len = %d, want %d", keptCube.ImplicitLen(), srcCube.ImplicitLen()/2)
	}

	// Memory accounts exactly for base + kept + result payloads — any
	// leaked unkept intermediate would show up here.
	wantMem := baseMem +
		int64(keptCube.Rows()*keptCube.ImplicitLen())*4 + // kept intermediate
		cellBytes // result: one float32 per row
	if got := engine.MemoryBytes(); got != wantMem {
		t.Fatalf("MemoryBytes = %d, want %d (unkept intermediate resident?)", got, wantMem)
	}
}
