// Command esmgen runs the synthetic CMCC-CM3-like Earth System Model
// and writes its daily output files, optionally dumping the seeded
// ground-truth events as JSON for downstream skill evaluation.
//
// Usage:
//
//	esmgen -out ./model_output -years 1 -days 30 -truth truth.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/esm"
	"repro/internal/grid"
)

func main() {
	log.SetFlags(0)
	var (
		out      = flag.String("out", "", "output directory (required)")
		years    = flag.Int("years", 1, "simulated years")
		start    = flag.Int("start", 2040, "first year")
		days     = flag.Int("days", 30, "days per year")
		seed     = flag.Int64("seed", 42, "seed")
		nlat     = flag.Int("nlat", 48, "latitude cells")
		nlon     = flag.Int("nlon", 96, "longitude cells")
		scenario = flag.String("scenario", "historical", "historical | ssp245 | ssp585")
		truth    = flag.String("truth", "", "write seeded ground-truth events to this JSON file")
		delay    = flag.Duration("delay", 0, "inter-day delay (simulates slow model production for streaming demos)")
		quiet    = flag.Bool("q", false, "suppress per-day progress")
		diag     = flag.Bool("diag", false, "compute and validate online diagnostics per day")
		restart  = flag.String("restart", "", "restart file: resume from it when present, save to it at exit")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	sc := map[string]esm.Scenario{"historical": esm.Historical, "ssp245": esm.SSP245, "ssp585": esm.SSP585}[*scenario]

	var model *esm.Model
	if *restart != "" {
		if m, err := esm.LoadRestart(*restart); err == nil {
			fmt.Printf("resuming from %s (day %d of %d)\n", *restart, m.DaysCompleted(), m.TotalDays())
			model = m
		} else if !os.IsNotExist(err) {
			log.Fatalf("restart: %v", err)
		}
	}
	if model == nil {
		model = esm.NewModel(esm.Config{
			Grid:        grid.Grid{NLat: *nlat, NLon: *nlon},
			StartYear:   *start,
			Years:       *years,
			DaysPerYear: *days,
			Seed:        *seed,
			Scenario:    sc,
		})
	}

	t0 := time.Now()
	n := 0
	var diagErr error
	paths, err := model.Run(esm.RunOptions{
		Dir:           *out,
		InterDayDelay: *delay,
		OnDay: func(p string, d *esm.DayOutput) {
			n++
			if *diag && diagErr == nil {
				dd, err := esm.Diagnose(d)
				if err == nil {
					err = esm.CheckDiagnostics(dd)
				}
				if err != nil {
					diagErr = err
					return
				}
				if !*quiet && n%10 == 0 {
					fmt.Printf("  diag y%d d%03d: T=%.2fK ice=%.3f TOA=%+.1fW/m2 minPSL=%.0fPa\n",
						dd.Year, dd.DayOfYear, dd.GlobalMeanT, dd.IceArea, dd.TOANet, dd.MinPSL)
				}
				return
			}
			if !*quiet && n%10 == 0 {
				fmt.Printf("  %s (year %d day %d)\n", p, d.Year, d.DayOfYear)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if diagErr != nil {
		log.Fatalf("online diagnostics failed: %v", diagErr)
	}
	gt := model.GroundTruth()
	fmt.Printf("wrote %d files to %s in %v\n", len(paths), *out, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("seeded ground truth: %d heat waves, %d cold spells, %d cyclones\n",
		len(gt.HeatWaves()), len(gt.ColdSpells()), len(gt.Cyclones))

	if *restart != "" {
		if err := model.SaveRestart(*restart); err != nil {
			log.Fatalf("save restart: %v", err)
		}
		fmt.Printf("restart state saved to %s\n", *restart)
	}
	if *truth != "" {
		data, err := json.MarshalIndent(gt, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*truth, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ground truth written to %s\n", *truth)
	}
}
