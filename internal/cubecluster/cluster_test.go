package cubecluster

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
	"repro/internal/ncdf"
)

// writeClusterFile creates a GNC1 file with an integer-valued variable
// T over (lat, lon, time). Integer values keep every float64 partial
// sum exact, so cluster results must be BYTE-identical to a single
// engine at any shard count — no tolerance anywhere in these tests.
func writeClusterFile(t *testing.T, dir string, lat, lon, steps int) string {
	t.Helper()
	ds := ncdf.NewDataset()
	if err := ds.AddDim("lat", lat); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddDim("lon", lon); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddDim("time", steps); err != nil {
		t.Fatal(err)
	}
	data := make([]float32, lat*lon*steps)
	for l := 0; l < lat; l++ {
		for o := 0; o < lon; o++ {
			for tt := 0; tt < steps; tt++ {
				data[(l*lon+o)*steps+tt] = float32((l*7+o*3)%13 + (tt*5)%9)
			}
		}
	}
	if _, err := ds.AddVar("T", []string{"lat", "lon", "time"}, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cluster.nc")
	if err := ncdf.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustDispatch(t *testing.T, d cubeserver.Dispatcher, req *cubeserver.Request) *cubeserver.Response {
	t.Helper()
	resp := d.Dispatch(req)
	if resp.Err != "" {
		t.Fatalf("%s: %s", req.Op, resp.Err)
	}
	return resp
}

// engineRef runs import+pipeline+values against a plain single engine
// through the same wire requests the cluster serves.
func engineRef(t *testing.T, paths []string, pipe []cubeserver.PipelineStep) [][]float32 {
	t.Helper()
	e := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	defer e.Close()
	d := cubeserver.EngineDispatcher(e)
	imp := mustDispatch(t, d, &cubeserver.Request{Op: "importfiles", Paths: paths, Var: "T", ImplicitDim: "time"})
	out := mustDispatch(t, d, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
	return mustDispatch(t, d, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
}

func localCluster(t *testing.T, shards, replicas int) *Cluster {
	t.Helper()
	cl, err := NewLocal(Config{
		Shards: shards, Replicas: replicas,
		Engine:   datacube.Config{Servers: 2, FragmentsPerCube: 4},
		SpoolDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func clusterRun(t *testing.T, cl *Cluster, paths []string, pipe []cubeserver.PipelineStep) [][]float32 {
	t.Helper()
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: paths, Var: "T", ImplicitDim: "time"})
	out := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
	return mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
}

// TestClusterPipelineEquivalence runs the repo's two flagship pipeline
// shapes (heat-wave style reduce chains and a TC-style
// trailing-aggregation chain) on 1/2/4/8 shards and demands byte
// equality with a plain engine.
func TestClusterPipelineEquivalence(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 4, 16)
	pipelines := map[string][]cubeserver.PipelineStep{
		"heatwave": {
			{Op: "apply", Expr: "x*2"},
			{Op: "apply", Expr: "x+1"},
			{Op: "subset", Lo: 2, Hi: 14},
			{Op: "reducegroup", RowOp: "max", Group: 4},
			{Op: "aggrows", RowOp: "avg"},
		},
		"tc-zonal": {
			{Op: "apply", Expr: "x+1"},
			{Op: "aggtrailing", RowOp: "max"},
			{Op: "subsetrows", Lo: 1, Hi: 7},
			{Op: "reduce", RowOp: "max"},
			{Op: "aggrows", RowOp: "max"},
		},
		"counting": {
			{Op: "reduce", RowOp: "count_above", Params: []float64{9}},
			{Op: "aggrows", RowOp: "sum"},
		},
	}
	for name, pipe := range pipelines {
		want := engineRef(t, []string{path}, pipe)
		for _, shards := range []int{1, 2, 4, 8} {
			cl := localCluster(t, shards, 1)
			got := clusterRun(t, cl, []string{path}, pipe)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s on %d shards diverged:\ngot  %v\nwant %v", name, shards, got, want)
			}
		}
	}
}

// TestClusterAggRowsFallback pins the full-gather path: quantile has
// no partial merge, so the barrier must gather columns (counted) and
// still match the engine bit for bit.
func TestClusterAggRowsFallback(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 2, 12)
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x+1"},
		{Op: "aggrows", RowOp: "quantile", Params: []float64{0.75}},
	}
	want := engineRef(t, []string{path}, pipe)
	cl := localCluster(t, 4, 1)
	got := clusterRun(t, cl, []string{path}, pipe)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("quantile fallback diverged:\ngot  %v\nwant %v", got, want)
	}
	if cl.met.mergeFB.Value() != 1 {
		t.Fatalf("merge fallback counter = %v, want 1", cl.met.mergeFB.Value())
	}
}

// TestClusterBarrierMovesOnlyPartials checks the C3 contract: through
// a pipeline ending in a mergeable aggrows, the bytes gathered from
// shards stay far below the resident cube size, because only per-shard
// partials (plus shapes) cross the wire.
func TestClusterBarrierMovesOnlyPartials(t *testing.T) {
	const lat, lon, steps = 64, 8, 32
	path := writeClusterFile(t, t.TempDir(), lat, lon, steps)
	cl := localCluster(t, 4, 1)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	_, g0 := cl.BytesStats()
	mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "aggrows", RowOp: "avg"},
	}})
	_, g1 := cl.BytesStats()
	cubeBytes := float64(lat * lon * steps * 4)
	if gathered := g1 - g0; gathered > cubeBytes/8 {
		t.Fatalf("pipeline gathered %.0f bytes; want ≪ cube size %.0f (only partials should move)", gathered, cubeBytes)
	}
}

// TestClusterIntercubeCoSharded combines two identically-placed cubes
// shard-locally and checks equality with the engine.
func TestClusterIntercubeCoSharded(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 2, 8)

	e := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	defer e.Close()
	d := cubeserver.EngineDispatcher(e)
	a := mustDispatch(t, d, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	b := mustDispatch(t, d, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	refPipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "intercube", OtherID: b.Shape.CubeID, RowOp: "sub"},
		{Op: "aggrows", RowOp: "sum"},
	}
	refOut := mustDispatch(t, d, &cubeserver.Request{Op: "pipeline", CubeID: a.Shape.CubeID, Pipeline: refPipe})
	want := mustDispatch(t, d, &cubeserver.Request{Op: "values", CubeID: refOut.Shape.CubeID}).Values

	cl := localCluster(t, 4, 1)
	ca := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	cb := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "intercube", OtherID: cb.Shape.CubeID, RowOp: "sub"},
		{Op: "aggrows", RowOp: "sum"},
	}
	out := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: ca.Shape.CubeID, Pipeline: pipe})
	got := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intercube diverged:\ngot  %v\nwant %v", got, want)
	}

	// Differently-placed operands must be rejected with the typed error.
	sub := mustDispatch(t, cl, &cubeserver.Request{Op: "subsetrows", CubeID: cb.Shape.CubeID, Lo: 0, Hi: 4})
	resp := cl.Dispatch(&cubeserver.Request{Op: "intercube", CubeID: ca.Shape.CubeID, OtherID: sub.Shape.CubeID, RowOp: "add"})
	if resp.Err == "" {
		t.Fatal("intercube across placements should fail")
	}
}

// TestClusterFailover kills one replica of a shard and demands the
// pipeline complete on the survivor with byte-identical output.
func TestClusterFailover(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 4, 16)
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x+1"},
		{Op: "reducegroup", RowOp: "max", Group: 4},
		{Op: "aggrows", RowOp: "avg"},
	}
	want := engineRef(t, []string{path}, pipe)

	cl := localCluster(t, 4, 2)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	cl.Engine(1, 0).Close() // primary replica of shard 1 dies
	out := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
	got := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover output diverged:\ngot  %v\nwant %v", got, want)
	}
	if cl.met.failovers.Value() == 0 {
		t.Fatal("failover counter never moved")
	}
	if up := cl.met.replicaUp.With("1", "0").Value(); up != 0 {
		t.Fatalf("replica_up{1,0} = %v, want 0", up)
	}
}

// TestClusterKillMidPipeline closes a replica engine concurrently with
// a running pipeline; the output must still match.
func TestClusterKillMidPipeline(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 4, 16)
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "apply", Expr: "x+1"},
		{Op: "aggtrailing", RowOp: "max"},
		{Op: "subsetrows", Lo: 0, Hi: 6},
		{Op: "aggrows", RowOp: "max"},
	}
	want := engineRef(t, []string{path}, pipe)

	cl := localCluster(t, 2, 2)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(500 * time.Microsecond)
		cl.Engine(1, 0).Close()
	}()
	out := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
	got := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
	<-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kill-mid-pipeline output diverged:\ngot  %v\nwant %v", got, want)
	}
}

// TestClusterHealResync restarts a dead replica empty, heals it from
// the survivor via the export→CopyVerified→putcube path, then kills
// the survivor and reads everything back through the healed copy.
func TestClusterHealResync(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 2, 8)
	cl := localCluster(t, 2, 2)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	derived := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "reduce", RowOp: "sum"},
	}})
	wantImp := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: imp.Shape.CubeID}).Values
	wantDer := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: derived.Shape.CubeID}).Values

	// Replica (0,0) dies and is replaced by an empty engine.
	cl.Engine(0, 0).Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplaceLocalReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	healed, err := cl.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 1 {
		t.Fatalf("healed %d replicas, want 1", healed)
	}
	if cl.met.resyncs.Value() != 1 {
		t.Fatalf("resync counter = %v, want 1", cl.met.resyncs.Value())
	}

	// Survivor dies; the healed replica must now carry shard 0 alone.
	cl.Engine(0, 1).Close()
	gotImp := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: imp.Shape.CubeID}).Values
	gotDer := mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: derived.Shape.CubeID}).Values
	if !reflect.DeepEqual(gotImp, wantImp) || !reflect.DeepEqual(gotDer, wantDer) {
		t.Fatal("healed replica served different data than the original")
	}
}

// TestClusterWireParity exercises the non-pipeline wire surface —
// row/scalar/shape/list/meta/delete/export — for parity with a single
// engine.
func TestClusterWireParity(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 2, 8)
	cl := localCluster(t, 4, 1)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
	id := imp.Shape.CubeID

	if imp.Shape.Rows != 16 || imp.Shape.ImplicitLen != 8 || imp.Shape.Measure != "T" {
		t.Fatalf("import shape = %+v", imp.Shape)
	}
	want := engineRef(t, []string{path}, []cubeserver.PipelineStep{{Op: "apply", Expr: "x+0"}})
	for _, r := range []int{0, 5, 15} {
		row := mustDispatch(t, cl, &cubeserver.Request{Op: "row", CubeID: id, Row: r}).Values[0]
		if !reflect.DeepEqual(row, want[r]) {
			t.Fatalf("row %d = %v, want %v", r, row, want[r])
		}
	}

	mustDispatch(t, cl, &cubeserver.Request{Op: "setmeta", CubeID: id, Key: "units", Value: "K"})
	if got := mustDispatch(t, cl, &cubeserver.Request{Op: "getmeta", CubeID: id, Key: "units"}); got.Value != "K" || !got.Found {
		t.Fatalf("meta round trip = %+v", got)
	}

	// Scalar through a full collapse.
	sc := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: id, Pipeline: []cubeserver.PipelineStep{
		{Op: "reduce", RowOp: "sum"},
		{Op: "aggrows", RowOp: "sum"},
	}})
	gotScalar := mustDispatch(t, cl, &cubeserver.Request{Op: "scalar", CubeID: sc.Shape.CubeID}).Scalar
	var wantScalar float64
	for _, r := range want {
		for _, v := range r {
			wantScalar += float64(v)
		}
	}
	if gotScalar != wantScalar {
		t.Fatalf("scalar = %v, want %v", gotScalar, wantScalar)
	}

	// Export → reimport round trip.
	out := filepath.Join(t.TempDir(), "export.nc")
	mustDispatch(t, cl, &cubeserver.Request{Op: "export", CubeID: id, Path: out})
	ds, err := ncdf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds.Var("T")
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, 16*8)
	for _, r := range want {
		flat = append(flat, r...)
	}
	if !reflect.DeepEqual(v.Data, flat) {
		t.Fatal("export diverged from cube contents")
	}

	mustDispatch(t, cl, &cubeserver.Request{Op: "delete", CubeID: sc.Shape.CubeID})
	resp := cl.Dispatch(&cubeserver.Request{Op: "values", CubeID: sc.Shape.CubeID})
	if !errors.Is(cubeserver.ResponseError(resp), datacube.ErrNotFound) {
		t.Fatalf("deleted cube should report ErrNotFound, got %q", resp.Err)
	}
	ids := mustDispatch(t, cl, &cubeserver.Request{Op: "list"}).IDs
	for _, got := range ids {
		if got == sc.Shape.CubeID {
			t.Fatal("deleted cube still listed")
		}
	}
	if st := mustDispatch(t, cl, &cubeserver.Request{Op: "stats"}).Stats; st.Ops == 0 || st.FileReads == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}
