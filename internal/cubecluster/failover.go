package cubecluster

import (
	"fmt"
	"path/filepath"
	"strconv"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
	"repro/internal/dls"
	"repro/internal/ncdf"
)

// ReplaceLocalReplica swaps a NewLocal replica's engine for a fresh
// empty one and leaves the replica down+stale — the moment just after
// an operator restarted a dead shard process. Heal does the rest.
func (cl *Cluster) ReplaceLocalReplica(shard, rep int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.engines == nil {
		return fmt.Errorf("cubecluster: not a NewLocal cluster")
	}
	if shard >= len(cl.engines) || rep >= len(cl.engines[shard]) {
		return fmt.Errorf("cubecluster: no local replica %d/%d", shard, rep)
	}
	cl.engines[shard][rep].Close()
	e := datacube.NewEngine(cl.cfg.Engine)
	cl.engines[shard][rep] = e
	r := cl.shards[shard][rep]
	_ = r.tr.Close()
	r.tr = NewEngineTransport(e)
	r.down = true
	r.stale = true
	cl.met.replicaUp.With(strconv.Itoa(shard), strconv.Itoa(rep)).Set(0)
	return nil
}

// Heal probes every down replica and resyncs the responsive ones from
// a healthy peer: each catalog part on the shard is exported by a live
// replica, staged through dls.CopyVerified (checksummed, atomic), and
// re-materialized on the healed replica with its exact catalog
// dimensions. Returns the number of replicas restored to service.
//
// Recovery is explicit and coordinator-paced — the lazy analogue of
// the multisite breaker's single half-open probe: a replica that fails
// its probe simply stays down until the next Heal.
func (cl *Cluster) Heal() (int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	healed := 0
	for s := range cl.shards {
		for rep, r := range cl.shards[s] {
			if !r.down && !r.stale {
				continue
			}
			if _, err := r.tr.Do(&cubeserver.Request{Op: "ping"}); err != nil {
				continue // still dead; stays down
			}
			if err := cl.resyncReplica(s, rep); err != nil {
				return healed, fmt.Errorf("cubecluster: resync shard %d replica %d: %w", s, rep, err)
			}
			r.down = false
			r.stale = false
			cl.met.resyncs.Inc()
			cl.met.replicaUp.With(strconv.Itoa(s), strconv.Itoa(rep)).Set(1)
			healed++
		}
	}
	return healed, nil
}

// resyncReplica re-seeds every catalog part living on the shard onto
// one replica. The replica is still marked down, so reads won't touch
// it mid-copy; do() is used directly for the writes.
func (cl *Cluster) resyncReplica(shard, rep int) error {
	for _, id := range cl.listIDs() {
		e := cl.cat[id]
		p := e.partOn(shard)
		if p == nil {
			continue
		}
		// Drop whatever stale copy the replica may still hold.
		if old := p.ids[rep]; old != "" {
			_, _ = cl.do(shard, rep, &cubeserver.Request{Op: "delete", CubeID: old})
			p.ids[rep] = ""
		}

		cl.healSeq++
		src := filepath.Join(cl.cfg.SpoolDir, fmt.Sprintf("resync-%d-src.nc", cl.healSeq))
		dst := filepath.Join(cl.cfg.SpoolDir, fmt.Sprintf("resync-%d-dst.nc", cl.healSeq))
		if _, err := cl.readPart(p, &cubeserver.Request{Op: "export", Path: src}); err != nil {
			return fmt.Errorf("export %s: %w", e.id, err)
		}
		if _, _, err := dls.CopyVerified(src, dst); err != nil {
			return fmt.Errorf("stage %s: %w", e.id, err)
		}
		ds, err := ncdf.ReadFile(dst)
		if err != nil {
			return fmt.Errorf("read staged %s: %w", e.id, err)
		}
		measure := e.measure
		if measure == "" {
			measure = "measure"
		}
		v, err := ds.Var(measure)
		if err != nil {
			return fmt.Errorf("staged %s: %w", e.id, err)
		}

		// Rebuild the part with its exact catalog dimensions (the export
		// drops degenerate implicit axes; the catalog doesn't).
		dims := partDims(e, p)
		if len(v.Data) != p.rows*e.implicit.Size {
			return fmt.Errorf("staged %s: %d values, want %d×%d", e.id, len(v.Data), p.rows, e.implicit.Size)
		}
		vals := make([][]float32, p.rows)
		for r := 0; r < p.rows; r++ {
			vals[r] = v.Data[r*e.implicit.Size : (r+1)*e.implicit.Size]
		}
		resp, err := cl.do(shard, rep, &cubeserver.Request{
			Op: "putcube", Var: e.measure, Dims: dims,
			ImplicitDim: e.implicit.Name, Values: vals,
		})
		if err != nil {
			return fmt.Errorf("putcube %s: %w", e.id, err)
		}
		if rerr := cubeserver.ResponseError(resp); rerr != nil {
			return fmt.Errorf("putcube %s: %w", e.id, rerr)
		}
		p.ids[rep] = resp.Shape.CubeID
	}
	return nil
}

// partDims is the part's local explicit dimension list: the entry's
// global dimensions with the leading axis cut down to the part's
// range.
func partDims(e *entry, p *part) []datacube.Dimension {
	dims := append([]datacube.Dimension(nil), e.explicit...)
	if len(dims) > 0 {
		dims[0].Size = p.leadHi - p.leadLo
	}
	return dims
}
