// Command tcexperiment runs the C5 experiment of DESIGN.md: it trains
// the CNN tropical-cyclone localizer on seeded storms from several
// simulated years, evaluates both the CNN and the deterministic
// multi-criteria tracker on held-out years against ground truth, and
// prints a skill table (POD, FAR, mean center error), the comparison
// the paper's §5.4 sets up between "pre-trained ML model(s)" and "a
// deterministic algorithm for Tropical Cyclones tracking".
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ml"
	"repro/internal/tctrack"
)

func main() {
	log.SetFlags(0)
	var (
		trainSeeds = flag.Int("trainseeds", 4, "number of training years (distinct seeds)")
		evalSeeds  = flag.Int("evalseeds", 2, "number of held-out evaluation years")
		days       = flag.Int("days", 30, "days per simulated year")
		cyclones   = flag.Int("cyclones", 6, "seeded cyclones per year")
		epochs     = flag.Int("epochs", 5, "training epochs")
		patch      = flag.Int("patch", 12, "CNN patch size")
		threshold  = flag.Float64("threshold", 0.5, "CNN presence threshold")
		minDrop    = flag.Float64("mindrop", 1500, "minimum truth pressure drop [Pa] counted in skill")
		reference  = flag.Bool("reference", false, "evaluate with the layer-by-layer reference path instead of the compiled engine")
		workers    = flag.Int("mlworkers", 0, "inference session pool width (0 = GOMAXPROCS)")
		online     = flag.Bool("online", false, "train online from the tensor exchange with live weight hot-swap instead of offline pre-training")
		swapEvery  = flag.Int("swapevery", 8, "online mode: hot-swap weights into the live localizer every N optimizer steps")
	)
	flag.Parse()

	cfg := esm.Config{
		Grid: grid.Grid{NLat: 48, NLon: 96}, StartYear: 2040, Years: 1, DaysPerYear: *days,
		Events: &esm.EventConfig{
			CyclonesPerYear: *cyclones,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	}

	if *online {
		runOnline(cfg, *trainSeeds, *patch, *swapEvery, *threshold, *minDrop, *workers)
		return
	}

	// train
	var seeds []int64
	for i := 0; i < *trainSeeds; i++ {
		seeds = append(seeds, int64(11+i))
	}
	fmt.Printf("training on %d simulated years (%d cyclones each)...\n", len(seeds), *cyclones)
	samples, err := ml.SamplesFromSimulations(cfg, seeds, *patch, *patch)
	if err != nil {
		log.Fatal(err)
	}
	loc, err := ml.NewLocalizer(*patch, *patch, 7)
	if err != nil {
		log.Fatal(err)
	}
	losses, err := loc.Train(samples, ml.TrainConfig{Epochs: *epochs, BatchSize: 32, LR: 2e-3, Seed: 5, Balance: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d patches, epoch losses %.4f -> %.4f\n\n", len(samples), losses[0], losses[len(losses)-1])

	// evaluation runs through the compiled inference engine (im2col/GEMM
	// sessions, batched patch sweep) unless -reference asks for the
	// layer path; both produce identical detections.
	loc.Configure(ml.Params{Reference: *reference, Workers: *workers})
	if !*reference {
		if _, err := loc.Compile(ml.Params{}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("inference: compiled engine (im2col/GEMM, batched patch sweep)")
	} else {
		fmt.Println("inference: layer-by-layer reference path")
	}

	// evaluate
	fmt.Printf("%-10s %8s %8s %8s %12s %8s\n", "detector", "POD", "FAR", "err km", "hits/miss", "falarm")
	var cnnAll, detAll []tctrack.Instant
	for e := 0; e < *evalSeeds; e++ {
		seed := int64(99 + e)
		m := esm.NewModel(withSeed(cfg, seed))
		gt := m.GroundTruth()
		for {
			day := m.StepDay()
			if day == nil {
				break
			}
			for s := 0; s < esm.StepsPerDay; s++ {
				var truth []esm.TrackPoint
				for _, c := range gt.Cyclones {
					if p, ok := c.Active(day.DayOfYear, s); ok && p.PressureDrop >= *minDrop {
						truth = append(truth, p)
					}
				}
				dd, err := tctrack.DetectStep(day, s, tctrack.DefaultCriteria())
				if err != nil {
					log.Fatal(err)
				}
				if len(truth) > 0 || len(dd) > 0 {
					detAll = append(detAll, tctrack.Instant{Truth: truth, Dets: dd})
				}
				if s%2 == 0 {
					cd, err := loc.DetectStep(day, s, *threshold)
					if err != nil {
						log.Fatal(err)
					}
					var asDet []tctrack.Detection
					for _, d := range cd {
						asDet = append(asDet, tctrack.Detection{Lat: d.Lat, Lon: d.Lon})
					}
					if len(truth) > 0 || len(asDet) > 0 {
						cnnAll = append(cnnAll, tctrack.Instant{Truth: truth, Dets: asDet})
					}
				}
			}
		}
	}
	cnn := tctrack.Evaluate(cnnAll, 2000)
	det := tctrack.Evaluate(detAll, 600)
	fmt.Printf("%-10s %8.2f %8.2f %8.0f %7d/%-4d %8d\n", "cnn", cnn.POD, cnn.FAR, cnn.MeanErrorKm, cnn.Hits, cnn.Misses, cnn.FalseAlarms)
	fmt.Printf("%-10s %8.2f %8.2f %8.0f %7d/%-4d %8d\n", "tracker", det.POD, det.FAR, det.MeanErrorKm, det.Hits, det.Misses, det.FalseAlarms)
	fmt.Println("\nshape check (paper §5.4): both detectors find the seeded storms;")
	fmt.Println("the deterministic scheme is sharper on this clean simulator, while the")
	fmt.Println("CNN localizes from spatial features alone — the workflow runs both and")
	fmt.Println("uses the tracker to validate the ML output.")
}

func withSeed(cfg esm.Config, seed int64) esm.Config {
	cfg.Seed = seed
	return cfg
}
