package cubeserver

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/datacube"
	"repro/internal/ncdf"
)

// startServer spins up an engine + server + client for one test.
func startServer(t *testing.T) (*Client, *datacube.Engine) {
	t.Helper()
	engine := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	srv, err := Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		engine.Close()
	})
	return client, engine
}

// writeTestFile creates a GNC1 file with a (time=2, lat=2, lon=2)
// variable T where value = t*10 + cell.
func writeTestFile(t *testing.T, dir, name string) string {
	t.Helper()
	ds := ncdf.NewDataset()
	ds.AddDim("time", 2)
	ds.AddDim("lat", 2)
	ds.AddDim("lon", 2)
	data := make([]float32, 8)
	for tt := 0; tt < 2; tt++ {
		for cell := 0; cell < 4; cell++ {
			data[tt*4+cell] = float32(tt*10 + cell)
		}
	}
	ds.AddVar("T", []string{"time", "lat", "lon"}, data)
	path := filepath.Join(dir, name)
	if err := ncdf.WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPing(t *testing.T) {
	client, _ := startServer(t)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestImportAndShape(t *testing.T) {
	client, _ := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	if cube.Shape.Rows != 4 || cube.Shape.ImplicitLen != 2 {
		t.Fatalf("shape = %+v", cube.Shape)
	}
	if !strings.HasPrefix(cube.ID(), "cube-") {
		t.Fatalf("id = %q", cube.ID())
	}
	if cube.Shape.Measure != "T" {
		t.Fatalf("measure = %q", cube.Shape.Measure)
	}
}

func TestRemotePipeline(t *testing.T) {
	client, _ := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	// Listing-1 style: mask then reduce
	mask, err := cube.Apply("x>5 ? 1 : 0")
	if err != nil {
		t.Fatal(err)
	}
	count, err := mask.Reduce("sum")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := count.Values()
	if err != nil {
		t.Fatal(err)
	}
	// per cell, time series {cell, 10+cell}: values > 5 → cell 0..3: {10..13} plus none of 0..3
	for cell, row := range vals {
		if row[0] != 1 {
			t.Fatalf("cell %d count = %v", cell, row)
		}
	}
	// delete the mask (Listing 1's Mask.delete())
	if err := mask.Delete(); err != nil {
		t.Fatal(err)
	}
	ids, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == mask.ID() {
			t.Fatal("mask still resident after delete")
		}
	}
}

func TestRemoteRowAndScalar(t *testing.T) {
	client, _ := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, _ := client.ImportFiles([]string{path}, "T", "time")
	row, err := cube.Row(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 2 || row[0] != 2 || row[1] != 12 {
		t.Fatalf("row 2 = %v", row)
	}
	agg, err := cube.AggregateRows("avg")
	if err != nil {
		t.Fatal(err)
	}
	red, err := agg.Reduce("avg")
	if err != nil {
		t.Fatal(err)
	}
	v, err := red.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if v != 6.5 { // mean of 0..3 and 10..13
		t.Fatalf("scalar = %v", v)
	}
}

func TestRemoteSubsetIntercube(t *testing.T) {
	client, _ := startServer(t)
	dir := t.TempDir()
	p1 := writeTestFile(t, dir, "a.nc")
	p2 := writeTestFile(t, dir, "b.nc")
	c1, _ := client.ImportFiles([]string{p1}, "T", "time")
	c2, _ := client.ImportFiles([]string{p2}, "T", "time")
	diff, err := c1.Intercube(c2, "sub")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := diff.Values()
	for _, row := range vals {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("identical cubes differ: %v", vals)
			}
		}
	}
	sub, err := c1.Subset(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Shape.ImplicitLen != 1 {
		t.Fatalf("subset shape = %+v", sub.Shape)
	}
	rows, err := c1.SubsetRows(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Shape.Rows != 2 { // lat 0 → 2 lon cells
		t.Fatalf("subsetrows shape = %+v", rows.Shape)
	}
	grouped, err := c1.ReduceGroup("max", 2)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Shape.ImplicitLen != 1 {
		t.Fatalf("grouped shape = %+v", grouped.Shape)
	}
	strided, err := c1.ReduceStride("max", 2)
	if err != nil {
		t.Fatal(err)
	}
	if strided.Shape.ImplicitLen != 2 {
		t.Fatalf("strided shape = %+v", strided.Shape)
	}
	// cell 0 series is {0, 10}; stride 2 groups each position alone
	row, err := strided.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 0 || row[1] != 10 {
		t.Fatalf("strided row = %v", row)
	}
	if _, err := c1.ReduceStride("max", 3); err == nil {
		t.Fatal("bad stride accepted remotely")
	}
}

func TestRemoteExportAndMeta(t *testing.T) {
	client, _ := startServer(t)
	dir := t.TempDir()
	path := writeTestFile(t, dir, "a.nc")
	cube, _ := client.ImportFiles([]string{path}, "T", "time")
	if err := cube.SetMeta("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, found, err := cube.Meta("k")
	if err != nil || !found || v != "v" {
		t.Fatalf("meta = %q %v %v", v, found, err)
	}
	_, found, _ = cube.Meta("none")
	if found {
		t.Fatal("phantom meta")
	}
	out := filepath.Join(dir, "out.nc")
	if err := cube.Export(out); err != nil {
		t.Fatal(err)
	}
	ds, err := ncdf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Var("T"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	client, _ := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, _ := client.ImportFiles([]string{path}, "T", "time")
	if _, err := cube.Apply("((("); err == nil {
		t.Fatal("bad expr accepted remotely")
	}
	if _, err := cube.Reduce("nosuch"); err == nil {
		t.Fatal("bad op accepted remotely")
	}
	ghost := &RemoteCube{client: client, Shape: Shape{CubeID: "cube-999"}}
	if _, err := ghost.Row(0); err == nil {
		t.Fatal("ghost cube accepted")
	}
	if _, err := client.ImportFiles([]string{"/nonexistent.nc"}, "T", "time"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRemoteStats(t *testing.T) {
	client, _ := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	if _, err := client.ImportFiles([]string{path}, "T", "time"); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FileReads != 1 || st.Ops < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentClients(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 2})
	srv, err := Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); engine.Close() }()
	path := writeTestFile(t, t.TempDir(), "a.nc")

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			cube, err := c.ImportFiles([]string{path}, "T", "time")
			if err != nil {
				errs <- err
				return
			}
			red, err := cube.Reduce("max")
			if err != nil {
				errs <- err
				return
			}
			row, err := red.Row(0)
			if err != nil {
				errs <- err
				return
			}
			if row[0] != 10 {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownOpRejected(t *testing.T) {
	client, _ := startServer(t)
	if _, err := client.call(&Request{Op: "explode"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	srv, err := Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dial after close should fail")
	}
}
