package ensemble

import (
	"math"
	"testing"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

func testEngine(t *testing.T) *datacube.Engine {
	t.Helper()
	e := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	t.Cleanup(e.Close)
	return e
}

func baseCfg() esm.Config {
	return esm.Config{
		Grid:        grid.Grid{NLat: 16, NLon: 32},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: 12,
		Seed:        100,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 1, ColdSpellsPerYear: 0, CyclonesPerYear: 0,
			WaveAmplitudeK: 10, WaveMinDays: 7, WaveMaxDays: 7,
		},
	}
}

func TestConfigValidation(t *testing.T) {
	e := testEngine(t)
	if _, err := Run(e, Config{Base: baseCfg(), Members: 0, Dir: t.TempDir()}); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := Run(e, Config{Base: baseCfg(), Members: 2}); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestEnsembleRunMembersDiffer(t *testing.T) {
	e := testEngine(t)
	res, err := Run(e, Config{Base: baseCfg(), Members: 3, Dir: t.TempDir(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 3 {
		t.Fatalf("members = %d", len(res.Members))
	}
	for i, m := range res.Members {
		if m.Member != i {
			t.Fatalf("member order: %+v", res.Members)
		}
		if m.Number == nil || m.Number.Rows() != 16*32 {
			t.Fatalf("member %d cube malformed", i)
		}
	}
	// different seeds → different wave locations → member cubes differ
	a := res.Members[0].Number.Values()
	diff := false
	bv := res.Members[1].Number.Values()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != bv[r][c] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("members identical despite different seeds")
	}
	if res.Stats == nil || res.Stats.Mean == nil {
		t.Fatal("stats missing")
	}
}

func TestIndexStatsKnownValues(t *testing.T) {
	e := testEngine(t)
	mk := func(v0, v1 float32) *datacube.Cube {
		c, err := e.NewCubeFromFunc("idx",
			[]datacube.Dimension{{Name: "cell", Size: 2}},
			datacube.Dimension{Name: "t", Size: 1},
			func(row, _ int) float32 {
				if row == 0 {
					return v0
				}
				return v1
			})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	members := []*datacube.Cube{mk(0, 2), mk(4, 2), mk(2, 2)}
	st, err := IndexStats(e, members)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Delete()

	get := func(c *datacube.Cube, row int) float64 {
		r, err := c.Row(row)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r[0])
	}
	if get(st.Mean, 0) != 2 || get(st.Mean, 1) != 2 {
		t.Fatalf("mean = %v, %v", get(st.Mean, 0), get(st.Mean, 1))
	}
	wantStd := math.Sqrt((4.0 + 4.0 + 0.0) / 3.0)
	if math.Abs(get(st.Std, 0)-wantStd) > 1e-6 {
		t.Fatalf("std = %v, want %v", get(st.Std, 0), wantStd)
	}
	if get(st.Std, 1) != 0 {
		t.Fatalf("std cell 1 = %v", get(st.Std, 1))
	}
	if get(st.Min, 0) != 0 || get(st.Max, 0) != 4 {
		t.Fatalf("min/max = %v/%v", get(st.Min, 0), get(st.Max, 0))
	}
	// agreement: cell 0 has 2/3 members nonzero; cell 1 has 3/3
	if math.Abs(get(st.Agreement, 0)-2.0/3) > 1e-6 {
		t.Fatalf("agreement cell 0 = %v", get(st.Agreement, 0))
	}
	if get(st.Agreement, 1) != 1 {
		t.Fatalf("agreement cell 1 = %v", get(st.Agreement, 1))
	}
}

func TestIndexStatsValidation(t *testing.T) {
	e := testEngine(t)
	if _, err := IndexStats(e, nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	c, _ := e.NewCubeFromFunc("bad",
		[]datacube.Dimension{{Name: "cell", Size: 2}},
		datacube.Dimension{Name: "t", Size: 3},
		func(int, int) float32 { return 0 })
	if _, err := IndexStats(e, []*datacube.Cube{c}); err == nil {
		t.Fatal("non-scalar member accepted")
	}
}

func TestEnsembleAgreementDetectsCommonSignal(t *testing.T) {
	// all members share the same event configuration but different
	// weather; the ensemble-max cube should show every member's wave,
	// and the agreement field must stay within [0,1].
	e := testEngine(t)
	res, err := Run(e, Config{Base: baseCfg(), Members: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Stats.Delete()
	vals := res.Stats.Agreement.Values()
	for r := range vals {
		if vals[r][0] < 0 || vals[r][0] > 1 {
			t.Fatalf("agreement out of range at %d: %v", r, vals[r][0])
		}
	}
	// ensemble max >= each member everywhere (spot check member 0)
	m0 := res.Members[0].Number.Values()
	mx := res.Stats.Max.Values()
	for r := range m0 {
		if mx[r][0] < m0[r][0] {
			t.Fatalf("ensemble max < member value at %d", r)
		}
	}
}
