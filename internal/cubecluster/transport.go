// Package cubecluster shards a datacube deployment: a coordinator
// splits each cube's row space (the leading explicit dimension) into
// contiguous ranges across N cubeserver engine shards, replicates each
// shard, and executes the existing fused pipeline protocol by scatter
// and gather. Row-local operator runs are forwarded whole to every
// shard; row-collapsing barriers (aggrows) move only per-shard reduced
// partials over the wire; row-range barriers (subsetrows) become
// per-shard range intersections. This is the "scalable data analysis
// near the data" deployment of the paper's §4.2.2 taken one step
// further: the front end is a coordinator and the in-memory I/O
// servers become failure-isolated shard replicas.
//
// The coordinator implements cubeserver.Dispatcher, so cubecli and any
// wire client run the exact same requests against one engine or a
// whole cluster.
package cubecluster

import (
	"fmt"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

// Transport is one coordinator→replica request channel. It carries the
// cubeserver wire protocol; a non-nil error from Do is a transport
// failure (replica unreachable), while server-side failures travel
// inside the Response.
type Transport interface {
	Do(req *cubeserver.Request) (*cubeserver.Response, error)
	Close() error
}

// EngineTransport serves a replica in-process: requests dispatch
// straight into an engine with no sockets in between, which is the
// default for benchmarks (the wire-byte accounting below still applies,
// so shard traffic is measured identically in-process and over TCP). A
// closed engine reports a transport error, mimicking a dead server
// process.
type EngineTransport struct {
	engine *datacube.Engine
	disp   cubeserver.Dispatcher
}

// NewEngineTransport wraps an engine as an in-process replica. The
// engine stays caller-owned.
func NewEngineTransport(e *datacube.Engine) *EngineTransport {
	return &EngineTransport{engine: e, disp: cubeserver.EngineDispatcher(e)}
}

// Do dispatches one request in-process.
func (t *EngineTransport) Do(req *cubeserver.Request) (*cubeserver.Response, error) {
	if t.engine.Closed() {
		return nil, fmt.Errorf("cubecluster: in-process replica is down (engine closed)")
	}
	return t.disp.Dispatch(req), nil
}

// Close is a no-op; the engine is owned by the caller.
func (t *EngineTransport) Close() error { return nil }

// ClientTransport speaks to a replica over a real cubeserver TCP
// connection.
type ClientTransport struct {
	c *cubeserver.Client
}

// NewClientTransport wraps a dialed client.
func NewClientTransport(c *cubeserver.Client) *ClientTransport { return &ClientTransport{c: c} }

// Do performs one request/response exchange.
func (t *ClientTransport) Do(req *cubeserver.Request) (*cubeserver.Response, error) {
	return t.c.Do(req)
}

// Close closes the underlying connection.
func (t *ClientTransport) Close() error { return t.c.Close() }

// DialTransport connects a ClientTransport to a cubeserver address.
func DialTransport(addr string) (*ClientTransport, error) {
	c, err := cubeserver.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClientTransport(c), nil
}

// requestBytes estimates the wire size of a request: float payloads at
// their natural width plus string lengths and a fixed framing
// overhead. The same estimator runs for in-process and TCP transports
// so the C3 shard sweep's bytes-on-wire numbers are transport-
// independent.
func requestBytes(req *cubeserver.Request) int {
	n := 64 + len(req.Op) + len(req.CubeID) + len(req.OtherID) + len(req.Var) +
		len(req.ImplicitDim) + len(req.Expr) + len(req.RowOp) + len(req.Key) +
		len(req.Value) + len(req.Path)
	for _, p := range req.Paths {
		n += len(p)
	}
	n += 8 * len(req.Params)
	for _, row := range req.Values {
		n += 4 * len(row)
	}
	for _, d := range req.Dims {
		n += 16 + len(d.Name)
	}
	for _, st := range req.Pipeline {
		n += 48 + len(st.Op) + len(st.Expr) + len(st.RowOp) + len(st.OtherID) + 8*len(st.Params)
	}
	return n
}

// responseBytes estimates the wire size of a response.
func responseBytes(resp *cubeserver.Response) int {
	n := 64 + len(resp.Err) + len(resp.ErrCode) + len(resp.Value)
	for _, row := range resp.Values {
		n += 4 * len(row)
	}
	n += 8 * len(resp.Partials)
	for _, id := range resp.IDs {
		n += len(id)
	}
	n += 48 + len(resp.Shape.CubeID) + len(resp.Shape.Measure) + len(resp.Shape.ImplicitName)
	for _, d := range resp.Shape.ExplicitDims {
		n += 16 + len(d.Name)
	}
	return n
}
