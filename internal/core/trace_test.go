package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunTraceCoversAllTasks runs a small Figure-2 workflow with a
// tracer attached and asserts the resulting Chrome trace timeline
// covers every executed task: one task span per completed invocation,
// spanning all task kinds, plus nested attempt spans.
func TestRunTraceCoversAllTasks(t *testing.T) {
	cfg := testConfig(t, 1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	cfg.Metrics = reg
	cfg.Tracer = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byName := map[string]int{}
	attempts, fusedPasses := 0, 0
	for _, s := range spans {
		if s.Name == "attempt" {
			attempts++
			continue
		}
		if s.Name == "datacube.fused_pass" {
			// engine-level spans emitted by the fused data plane, nested
			// inside the index task spans
			fusedPasses++
			continue
		}
		byName[s.Name]++
		if s.Err != "" {
			t.Errorf("task span %s ended with error %q in a clean run", s.Name, s.Err)
		}
	}
	if fusedPasses == 0 {
		t.Error("no datacube.fused_pass spans; fusion should be on by default")
	}
	kinds := append([]string{TaskESMRun, TaskLoadBaselineMax, TaskLoadBaselineMin, TaskFinalMaps}, PerYearKinds...)
	for _, k := range kinds {
		if byName[k] == 0 {
			t.Errorf("no span for task kind %q", k)
		}
	}
	taskSpans := 0
	for _, n := range byName {
		taskSpans += n
	}
	if taskSpans != res.RuntimeStats.Done {
		t.Errorf("task spans = %d, runtime Done = %d", taskSpans, res.RuntimeStats.Done)
	}
	if attempts < taskSpans {
		t.Errorf("attempt spans = %d, want at least one per task span (%d)", attempts, taskSpans)
	}

	// The exported timeline must round-trip and keep every task event.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ParseChromeTrace(&buf)
	if err != nil {
		t.Fatalf("ParseChromeTrace: %v", err)
	}
	evNames := map[string]int{}
	for _, ev := range events {
		evNames[ev.Name]++
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Errorf("event %s has ph=%q dur=%d", ev.Name, ev.Ph, ev.Dur)
		}
	}
	for _, k := range kinds {
		if evNames[k] != byName[k] {
			t.Errorf("trace JSON has %d %q events, want %d", evNames[k], k, byName[k])
		}
	}

	// Metrics agree with the run: every task succeeded.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"compss_tasks_succeeded_total",
		"datacube_operator_seconds_bucket",
		"datacube_cells_processed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(text, "compss_tasks_succeeded_total 0\n") {
		t.Error("compss_tasks_succeeded_total stayed 0")
	}
}
