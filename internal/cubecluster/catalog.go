package cubecluster

import (
	"fmt"
	"sort"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

// part is one shard's slice of a cluster cube: the half-open range
// [leadLo, leadHi) of the global leading explicit dimension, plus the
// per-replica cube IDs holding it ("" where a replica missed the
// write and is stale for this cube).
type part struct {
	shard          int
	leadLo, leadHi int
	rows           int
	ids            []string
}

// entry is the cluster catalog record for one cube: its global shape
// and where every slice of it lives. explicit is the GLOBAL dimension
// list (leading size = sum of part ranges); rowless cubes (no explicit
// dimensions) have a single shard-0 part covering [0,1).
type entry struct {
	id       string
	measure  string
	explicit []datacube.Dimension
	implicit datacube.Dimension
	parts    []part
	meta     map[string]string
}

func (e *entry) totalRows() int {
	n := 0
	for _, p := range e.parts {
		n += p.rows
	}
	return n
}

func (e *entry) leadSize() int {
	if len(e.explicit) == 0 {
		return 1
	}
	return e.explicit[0].Size
}

// shape renders the entry as the wire Shape a single engine would
// report, with Fragments standing in for the part count.
func (e *entry) shape() cubeserver.Shape {
	return cubeserver.Shape{
		CubeID:       e.id,
		Rows:         e.totalRows(),
		ImplicitLen:  e.implicit.Size,
		Fragments:    len(e.parts),
		Measure:      e.measure,
		ExplicitDims: append([]datacube.Dimension(nil), e.explicit...),
		ImplicitName: e.implicit.Name,
	}
}

// samePlacement reports whether two entries are co-sharded: identical
// part count, shard assignment and leading ranges, which is what
// intercube needs to run shard-local.
func samePlacement(a, b *entry) bool {
	if len(a.parts) != len(b.parts) {
		return false
	}
	for i := range a.parts {
		pa, pb := a.parts[i], b.parts[i]
		if pa.shard != pb.shard || pa.leadLo != pb.leadLo || pa.leadHi != pb.leadHi {
			return false
		}
	}
	return true
}

// getEntry resolves a cluster cube ID; unknown IDs wrap
// datacube.ErrNotFound so the sentinel survives the wire.
func (cl *Cluster) getEntry(id string) (*entry, error) {
	e, ok := cl.cat[id]
	if !ok {
		return nil, fmt.Errorf("%w: no cluster cube %q", datacube.ErrNotFound, id)
	}
	return e, nil
}

// register assigns the entry a cluster ID and records it.
func (cl *Cluster) register(e *entry) *entry {
	e.id = fmt.Sprintf("ccube-%d", cl.nextID)
	cl.nextID++
	if e.meta == nil {
		e.meta = make(map[string]string)
	}
	cl.cat[e.id] = e
	return e
}

func (cl *Cluster) listIDs() []string {
	out := make([]string, 0, len(cl.cat))
	for id := range cl.cat {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
