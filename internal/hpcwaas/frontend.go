package hpcwaas

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/chaos"
	"repro/internal/execstore"
	"repro/internal/obs"
)

// Frontend is one stateless HPCWaaS API replica over a shared
// execstore.Store. Where Service owns a private execq.Queue (one
// process, one control plane), a Frontend owns nothing durable: every
// execution lives in the store, so N frontends behind a load balancer
// answer interchangeably — submit on one, poll on another, cancel on a
// third — and killing a frontend loses no work. Execution capacity is
// equally replaceable: each frontend may embed an executor replica
// (Workers > 0), and the store's epoch-fenced leases guarantee that a
// crashed executor's tasks are reclaimed and completed exactly once by
// a surviving peer.
//
// Admission is the store's cost-based policy, mapped onto HTTP:
// tenant-caused sheds (quota, rate) answer 429, capacity sheds (depth,
// backlog-cost, draining) answer 503 — both with a Retry-After header
// (whole seconds, ceiled) and a machine-precision retry_after_ms JSON
// field derived from the limiter's actual next-token time, so a client
// that sleeps exactly retry_after_ms is admitted on its next try.
type Frontend struct {
	cfg   FrontendConfig
	reg   *Registry
	store *execstore.Store
	rep   *execstore.Replica
	met   *obs.Registry

	mu     sync.Mutex
	tokens map[string]string // token → principal
}

// FrontendConfig wires one API replica.
type FrontendConfig struct {
	// ID names the replica ("api-1"); it doubles as the executor
	// replica ID when Workers > 0.
	ID string
	// Store is the shared execution store.
	Store *execstore.Store
	// Registry is the (shared) workflow registry.
	Registry *Registry
	// Workers sizes the embedded executor replica; 0 makes this a pure
	// API replica that submits and reads but never executes.
	Workers int
	// Metrics is the registry served at GET /metrics; nil creates a
	// private one. Note the store's instruments live on the STORE's
	// registry — pass the same registry to both to scrape everything
	// from one endpoint.
	Metrics *obs.Registry
}

// NewFrontend starts an API replica (and its embedded executor when
// Workers > 0) over the shared store.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("hpcwaas: frontend needs a store")
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("hpcwaas: frontend needs an id")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	f := &Frontend{cfg: cfg, reg: cfg.Registry, store: cfg.Store, met: cfg.Metrics}
	if cfg.Workers > 0 {
		rep, err := execstore.NewReplica(execstore.ReplicaConfig{
			ID:      cfg.ID,
			Store:   cfg.Store,
			Workers: cfg.Workers,
			Handler: f.runTask,
		})
		if err != nil {
			return nil, err
		}
		f.rep = rep
	}
	return f, nil
}

// runTask executes one leased task: the task Kind is the workflow name
// (which also keys the store's cost model, so each workflow type's
// admission estimate learns from its own runtime distribution) and the
// payload is the parameter map. Output is canonical JSON (sorted keys),
// keeping re-executions byte-identical.
func (f *Frontend) runTask(ctx context.Context, t execstore.TaskView) (json.RawMessage, error) {
	entry, ok := f.reg.Lookup(t.Kind)
	if !ok {
		return nil, chaos.Permanent(fmt.Errorf("hpcwaas: unknown workflow %q", t.Kind))
	}
	var params map[string]string
	if len(t.Payload) > 0 {
		if err := json.Unmarshal(t.Payload, &params); err != nil {
			return nil, chaos.Permanent(fmt.Errorf("hpcwaas: decode params: %w", err))
		}
	}
	type result struct {
		out map[string]string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := runApp(entry.App, params)
		ch <- result{out, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		out, err := json.Marshal(r.out)
		if err != nil {
			return nil, chaos.Permanent(err)
		}
		return out, nil
	}
}

// AuthorizeToken registers an API token for the named principal (same
// contract as Service.AuthorizeToken). Register the same tokens on
// every frontend: they are configuration, not shared state.
func (f *Frontend) AuthorizeToken(token, principal string) error {
	if token == "" {
		return fmt.Errorf("hpcwaas: empty token")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tokens == nil {
		f.tokens = make(map[string]string)
	}
	f.tokens[token] = principal
	return nil
}

func (f *Frontend) authenticate(r *http.Request) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.tokens) == 0 {
		return "anonymous", true
	}
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", false
	}
	principal, ok := f.tokens[strings.TrimPrefix(h, prefix)]
	return principal, ok
}

// Store exposes the shared store (drivers register executor capacity
// and weights through it).
func (f *Frontend) Store() *execstore.Store { return f.store }

// Drain gracefully stops the embedded executor (if any); the API keeps
// serving reads and submissions against the shared store.
func (f *Frontend) Drain(ctx context.Context) error {
	if f.rep != nil {
		return f.rep.Drain(ctx)
	}
	return nil
}

// KillExecutor crashes the embedded executor without reporting anything
// to the store (chaos hook): held leases expire and peers reclaim them.
// The HTTP API stays up — a frontend that lost its executor is still a
// valid API replica.
func (f *Frontend) KillExecutor() {
	if f.rep != nil {
		f.rep.Kill()
	}
}

// execution is the REST view of a store task.
type execution struct {
	ID        string            `json:"id"`
	Workflow  string            `json:"workflow"`
	Principal string            `json:"principal,omitempty"`
	Status    ExecStatus        `json:"status"`
	Attempt   int               `json:"attempt,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Results   map[string]string `json:"results,omitempty"`
	Error     string            `json:"error,omitempty"`
}

func toExecution(t execstore.TaskView) execution {
	ex := execution{
		ID:        t.ID,
		Workflow:  t.Kind,
		Principal: t.Tenant,
		Attempt:   t.Attempt,
		Error:     t.Err,
	}
	switch t.State {
	case execstore.StatePending:
		ex.Status = ExecQueued
	case execstore.StateLeased:
		ex.Status = ExecRunning
	case execstore.StateDone:
		ex.Status = ExecDone
	case execstore.StateFailed:
		ex.Status = ExecFailed
	case execstore.StateCanceled:
		ex.Status = ExecCanceled
	}
	if len(t.Payload) > 0 {
		_ = json.Unmarshal(t.Payload, &ex.Params)
	}
	if len(t.Output) > 0 {
		_ = json.Unmarshal(t.Output, &ex.Results)
	}
	return ex
}

// writeShed maps a store admission rejection onto HTTP: 429 when the
// tenant can fix it (quota, rate), 503 when capacity is the bottleneck
// (depth, backlog-cost, draining). Retry-After carries ceiled whole
// seconds for standard clients; retry_after_ms carries the precise
// hint (ceiled to the next millisecond) for clients that can use it —
// sleeping exactly retry_after_ms is sufficient for re-admission.
func writeShed(w http.ResponseWriter, se *execstore.ShedError) {
	secs := int(math.Ceil(se.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	code := http.StatusServiceUnavailable
	if se.TenantCaused() {
		code = http.StatusTooManyRequests
	}
	body := map[string]any{
		"error":          se.Error(),
		"shed_reason":    string(se.Reason),
		"retry_after_ms": int64(math.Ceil(se.RetryAfter.Seconds() * 1000)),
	}
	if se.EstimatedWait > 0 {
		body["estimated_wait_ms"] = int64(math.Ceil(se.EstimatedWait.Seconds() * 1000))
	}
	writeJSON(w, code, body)
}

// Handler returns the replica REST API. Routes:
//
//	GET    /api/workflows            list registered workflows
//	POST   /api/executions           submit ({"workflow","params","priority"})
//	GET    /api/executions[?status=] list retained executions
//	GET    /api/executions/{id}      status/results (410 if evicted)
//	DELETE /api/executions/{id}      cancel
//	GET    /api/store                store stats (leases, shed counters, latency)
//	GET    /api/health               liveness + replica identity
//	GET    /metrics                  Prometheus text exposition
//
// POST answers 202 on admission, 429/503 + Retry-After + shed reason on
// shed (see writeShed). All state is in the shared store: any replica
// answers for any execution.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /api/workflows", func(w http.ResponseWriter, r *http.Request) {
		type item struct {
			Name        string `json:"name"`
			Version     string `json:"version"`
			Description string `json:"description"`
		}
		out := []item{}
		for _, name := range f.reg.List() {
			e, _ := f.reg.Lookup(name)
			out = append(out, item{Name: e.Name, Version: e.Version, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /api/executions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Workflow string            `json:"workflow"`
			Params   map[string]string `json:"params"`
			Priority int               `json:"priority"`
		}
		if err := decodeJSON(r, &body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if _, ok := f.reg.Lookup(body.Workflow); !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workflow %q", body.Workflow))
			return
		}
		payload, err := json.Marshal(body.Params)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		principal, _ := r.Context().Value(principalKey{}).(string)
		v, err := f.store.Submit(execstore.Task{
			Tenant:   principal,
			Kind:     body.Workflow,
			Priority: body.Priority,
			Payload:  payload,
		})
		if err != nil {
			if se, ok := execstore.AsShed(err); ok {
				writeShed(w, se)
				return
			}
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, toExecution(v))
	})

	mux.HandleFunc("GET /api/executions", func(w http.ResponseWriter, r *http.Request) {
		var state execstore.State
		switch ExecStatus(strings.ToUpper(r.URL.Query().Get("status"))) {
		case "":
		case ExecQueued:
			state = execstore.StatePending
		case ExecRunning:
			state = execstore.StateLeased
		case ExecDone:
			state = execstore.StateDone
		case ExecFailed:
			state = execstore.StateFailed
		case ExecCanceled:
			state = execstore.StateCanceled
		default:
			httpError(w, http.StatusBadRequest, "unknown status filter")
			return
		}
		out := []execution{}
		for _, t := range f.store.List(state) {
			out = append(out, toExecution(t))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/executions/{id}", func(w http.ResponseWriter, r *http.Request) {
		t, st := f.store.Lookup(r.PathValue("id"))
		switch st {
		case execstore.LookupExpired:
			httpError(w, http.StatusGone, "execution expired from retention")
		case execstore.LookupUnknown:
			httpError(w, http.StatusNotFound, "unknown execution")
		default:
			writeJSON(w, http.StatusOK, toExecution(t))
		}
	})

	mux.HandleFunc("DELETE /api/executions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		err := f.store.Cancel(id)
		switch {
		case err == nil:
			t, _ := f.store.Lookup(id)
			writeJSON(w, http.StatusAccepted, toExecution(t))
		case strings.Contains(err.Error(), "unknown task"):
			httpError(w, http.StatusNotFound, err.Error())
		default: // already terminal
			httpError(w, http.StatusConflict, err.Error())
		}
	})

	mux.HandleFunc("GET /api/store", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.store.Stats())
	})

	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"replica":   f.cfg.ID,
			"executor":  f.rep != nil,
			"workflows": len(f.reg.List()),
		})
	})

	metrics := obs.Handler(f.met)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			if r.Method != http.MethodGet {
				httpError(w, http.StatusMethodNotAllowed, "metrics is read-only")
				return
			}
			metrics.ServeHTTP(w, r)
			return
		}
		principal, ok := f.authenticate(r)
		if !ok {
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), principalKey{}, principal)))
	})
}
