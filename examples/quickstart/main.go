// Quickstart runs the end-to-end climate-extremes workflow at toy
// scale: a one-year simulation on a reduced grid with seeded extremes,
// concurrent heat/cold-wave analytics, deterministic tropical-cyclone
// tracking, and map production. It prints the per-year indices, the
// executed task graph (the paper's Figure 3) as Graphviz DOT, and an
// ASCII rendering of the Heat Wave Number map (Figure 4).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ncdf"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	outDir, err := os.MkdirTemp("", "climate-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output directory: %s\n\n", outDir)

	cfg := core.Config{
		Grid:        grid.Grid{NLat: 24, NLon: 48},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: 20,
		Seed:        42,
		OutputDir:   outDir,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 8,
		},
	}

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulation produced %d daily files\n", res.FilesProduced)
	for _, yr := range res.Years {
		fmt.Printf("year %d:\n", yr.Year)
		fmt.Printf("  mean heat waves per cell:  %.4f\n", yr.HWNumberMean)
		fmt.Printf("  mean cold waves per cell:  %.4f\n", yr.CWNumberMean)
		fmt.Printf("  deterministic TC tracks:   %d\n", yr.TrackerTracks)
		fmt.Printf("  index files: %s, ...\n", yr.HeatWave.Number)
		fmt.Printf("  map: %s\n", yr.MapPath)
	}
	fmt.Printf("final map: %s\n", res.FinalMapPath)
	fmt.Printf("datacube engine: %d file reads, %d operator runs\n",
		res.CubeStats.FileReads, res.CubeStats.Ops)

	// Figure 4 quick look: render the heat-wave-number index as text.
	_, v, err := ncdf.ReadVariableFile(res.Years[0].HeatWave.Number, "heat_wave_number")
	if err != nil {
		log.Fatal(err)
	}
	f := grid.NewField(cfg.Grid)
	copy(f.Data, v.Data)
	fmt.Println("\nHeat Wave Number map (ASCII quick look):")
	fmt.Println(viz.ASCIIMap(f, 72))

	fmt.Println("Execution Gantt (simulation overlapping per-year analytics):")
	fmt.Println(res.Gantt)
	fmt.Printf("provenance: %s\n\n", res.ProvenancePath)

	fmt.Println("Task graph (Figure 3), Graphviz DOT:")
	fmt.Println(res.GraphDOT)
}
