package datacube

import (
	"math"
	"testing"
)

// FuzzCompile hardens the expression parser: arbitrary input must
// either fail cleanly or produce an evaluable expression — never panic.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"x", "1+2*3", "x>0 ? 1 : 0", "pow(x,2)", "min(x, max(1,2))",
		"((x))", "-x", "!x", "x && 1 || 0", "1e300*1e300", ".5",
		"x ? : 1", "abs(", ")(", "x x", "? :", "1..2", "e", "xx",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return
		}
		for _, x := range []float64{0, 1, -1, math.Inf(1), math.NaN(), 1e-300} {
			_ = e.Eval(x) // must not panic
		}
	})
}

// FuzzPlan decodes fuzzer bytes into an operator chain and runs it
// three ways — exact, Tolerance(0), Tolerance(eps>0) — over the
// resolution pyramid. Invalid chains must fail identically on every
// path; valid ones must be bit-identical at eps=0 and within the bound
// at eps>0. The seed corpus covers tiered subset/aggrows chains.
func FuzzPlan(f *testing.F) {
	f.Add([]byte{0x00}, uint8(0))                   // apply, exact
	f.Add([]byte{0x09, 0x00}, uint8(1))             // reduce after apply, eps>0
	f.Add([]byte{0x0c, 0x09}, uint8(2))             // subset → reduce (tiered subset chain)
	f.Add([]byte{0x0d, 0x00, 0x09}, uint8(1))       // aggrows barrier → apply → reduce
	f.Add([]byte{0x0c, 0x0d, 0x0c, 0x09}, uint8(2)) // subset/aggrows mix over tiers
	f.Add([]byte{0x1a, 0x23, 0x0e}, uint8(1))       // grouped reduce, stride, aggtrailing
	f.Add([]byte{0x0f, 0x09}, uint8(2))             // subsetrows barrier → reduce

	exprs := []string{"x*2", "x+1", "x>1 ? x : -x", "abs(x)-0.5"}
	rops := []string{"max", "min", "sum", "avg"}

	f.Fuzz(func(t *testing.T, prog []byte, epsSel uint8) {
		if len(prog) > 8 {
			prog = prog[:8]
		}
		e := NewEngine(Config{Servers: 2, FragmentsPerCube: 3})
		defer e.Close()
		const width = 12
		mk := func(name string) *Cube {
			c, err := e.NewCubeFromFunc(name,
				[]Dimension{{Name: "lat", Size: 2}, {Name: "lon", Size: 4}},
				Dimension{Name: "time", Size: width},
				func(row, tt int) float32 { return float32((row*37+tt*5)%23) - 7.5 })
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		build := func(name string) *Plan {
			p := mk(name).Lazy()
			for _, b := range prog {
				op, arg := int(b&7), int(b>>3)
				switch op {
				case 0:
					p = p.Apply(exprs[arg%len(exprs)])
				case 1:
					p = p.Reduce(rops[arg%len(rops)])
				case 2:
					p = p.ReduceGroup(rops[arg%len(rops)], 1+arg%width)
				case 3:
					p = p.ReduceStride(rops[arg%len(rops)], 1+arg%width)
				case 4:
					p = p.Subset(arg%width, width)
				case 5:
					p = p.AggregateRows(rops[arg%len(rops)])
				case 6:
					p = p.AggregateTrailing(rops[arg%len(rops)])
				case 7:
					p = p.SubsetRows(arg%8, 8)
				}
			}
			return p
		}
		eps := []float64{0, 0.05, 0.5}[int(epsSel)%3]

		exact, errExact := build("f-exact").Execute()
		zero, errZero := build("f-zero").Tolerance(0).Execute()
		tol, errTol := build("f-tol").Tolerance(eps).Execute()
		if (errExact == nil) != (errZero == nil) || (errExact == nil) != (errTol == nil) {
			t.Fatalf("validity diverged: exact=%v zero=%v tol=%v", errExact, errZero, errTol)
		}
		if errExact != nil {
			return
		}
		requireSameCube(t, "fuzz-tolerance-zero", zero, exact)
		if eps > 0 {
			requireToleranceBound(t, tol, exact, eps)
		} else {
			requireSameCube(t, "fuzz-eps0", tol, exact)
		}
	})
}
