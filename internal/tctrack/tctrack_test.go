package tctrack

import (
	"math"
	"testing"

	"repro/internal/esm"
	"repro/internal/grid"
)

func stormModel(seed int64, cyclones, days int) *esm.Model {
	return esm.NewModel(esm.Config{
		Grid:        grid.Grid{NLat: 48, NLon: 96},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: days,
		Seed:        seed,
		Events: &esm.EventConfig{
			CyclonesPerYear: cyclones,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	})
}

func TestIsLocalMin(t *testing.T) {
	g := grid.Grid{NLat: 8, NLon: 8}
	f := grid.NewField(g)
	for i := range f.Data {
		f.Data[i] = 10
	}
	f.Set(4, 4, 1)
	if !isLocalMin(f, 4, 4, 2) {
		t.Fatal("clear minimum missed")
	}
	if isLocalMin(f, 4, 5, 2) {
		t.Fatal("neighbour of minimum accepted")
	}
	// plateau: only one winner among equal cells
	f.Set(2, 2, 10)
	wins := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if f.At(i, j) == 10 && isLocalMin(f, i, j, 1) {
				wins++
			}
		}
	}
	if wins > 12 { // far from unique minimum cells can win locally, but ties must not double-count
		t.Fatalf("too many plateau winners: %d", wins)
	}
}

func TestDetectFieldsFindsSeededVortex(t *testing.T) {
	m := stormModel(21, 1, 20)
	gt := m.GroundTruth()
	c := gt.Cyclones[0]
	// step to peak intensity
	peak := c.Track[0]
	for _, p := range c.Track {
		if p.PressureDrop > peak.PressureDrop {
			peak = p
		}
	}
	var day *esm.DayOutput
	for i := 0; i <= peak.Day; i++ {
		day = m.StepDay()
	}
	dets, err := DetectStep(day, peak.Step, DefaultCriteria())
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("peak storm not detected")
	}
	best := math.Inf(1)
	for _, d := range dets {
		if dist := grid.Haversine(d.Lat, d.Lon, peak.Lat, peak.Lon); dist < best {
			best = dist
		}
	}
	if best > 600 {
		t.Fatalf("nearest detection %v km from truth", best)
	}
	d := dets[0]
	if d.DepressionPa <= 0 || d.WarmCoreK < 0.8 {
		t.Fatalf("detection diagnostics implausible: %+v", d)
	}
}

func TestNoStormsNoDetections(t *testing.T) {
	m := stormModel(22, 0, 6)
	falsePos := 0
	for {
		day := m.StepDay()
		if day == nil {
			break
		}
		for s := 0; s < esm.StepsPerDay; s++ {
			dets, err := DetectStep(day, s, DefaultCriteria())
			if err != nil {
				t.Fatal(err)
			}
			falsePos += len(dets)
		}
	}
	if falsePos > 2 { // allow the rare noise coincidence
		t.Fatalf("%d false detections in a storm-free run", falsePos)
	}
}

func TestTrackerStitchesAndFilters(t *testing.T) {
	tr := NewTracker()
	tr.MinPoints = 3
	// storm A moving steadily; storm B appears once (noise)
	tr.Advance([]Detection{{Day: 0, Step: 0, Lat: 15, Lon: 300}})
	tr.Advance([]Detection{{Day: 0, Step: 1, Lat: 15.5, Lon: 299}, {Day: 0, Step: 1, Lat: -30, Lon: 100}})
	tr.Advance([]Detection{{Day: 0, Step: 2, Lat: 16, Lon: 298}})
	tr.Advance(nil)
	tracks := tr.Finish()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1 (noise filtered)", len(tracks))
	}
	if tracks[0].Duration() != 3 {
		t.Fatalf("track length = %d", tracks[0].Duration())
	}
}

func TestTrackerSplitsDistantDetections(t *testing.T) {
	tr := NewTracker()
	tr.MinPoints = 2
	tr.Advance([]Detection{{Lat: 10, Lon: 100}})
	// a detection 5000+ km away must start a new track, not extend
	tr.Advance([]Detection{{Lat: 10, Lon: 160}})
	tr.Advance([]Detection{{Lat: 10, Lon: 161}})
	tracks := tr.Finish()
	if len(tracks) != 1 || tracks[0].Points[0].Lon != 160 {
		t.Fatalf("unexpected tracks: %+v", tracks)
	}
}

func TestRunModelRecoverseededTracks(t *testing.T) {
	m := stormModel(23, 2, 25)
	gt := m.GroundTruth()
	tracks, err := RunModel(m, DefaultCriteria())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) == 0 {
		t.Fatal("no tracks recovered")
	}
	// every recovered track should shadow a true storm for most points
	for _, track := range tracks {
		good := 0
		for _, p := range track.Points {
			for _, c := range gt.Cyclones {
				if tp, ok := c.Active(p.Day, p.Step); ok {
					if grid.Haversine(p.Lat, p.Lon, tp.Lat, tp.Lon) < 700 {
						good++
						break
					}
				}
			}
		}
		if float64(good) < 0.7*float64(len(track.Points)) {
			t.Fatalf("track %d matches truth at only %d/%d points", track.ID, good, len(track.Points))
		}
	}
}

func TestEvaluateSkillPerfectAndEmpty(t *testing.T) {
	truth := []esm.TrackPoint{{Lat: 10, Lon: 100}}
	perfect := Evaluate([]Instant{{Truth: truth, Dets: []Detection{{Lat: 10, Lon: 100}}}}, 300)
	if perfect.POD != 1 || perfect.FAR != 0 || perfect.Hits != 1 {
		t.Fatalf("perfect skill = %+v", perfect)
	}
	miss := Evaluate([]Instant{{Truth: truth, Dets: nil}}, 300)
	if miss.POD != 0 || miss.Misses != 1 {
		t.Fatalf("miss skill = %+v", miss)
	}
	fa := Evaluate([]Instant{{Truth: nil, Dets: []Detection{{Lat: 0, Lon: 0}}}}, 300)
	if fa.FAR != 1 || fa.FalseAlarms != 1 {
		t.Fatalf("false-alarm skill = %+v", fa)
	}
	empty := Evaluate(nil, 300)
	if empty.POD != 0 || empty.FAR != 0 {
		t.Fatalf("empty skill = %+v", empty)
	}
	if perfect.String() == "" {
		t.Fatal("skill stringer empty")
	}
}

func TestEvaluateNoDoubleCounting(t *testing.T) {
	// two truth storms, one detection between them: only one hit
	truth := []esm.TrackPoint{{Lat: 10, Lon: 100}, {Lat: 10, Lon: 101}}
	sk := Evaluate([]Instant{{Truth: truth, Dets: []Detection{{Lat: 10, Lon: 100.5}}}}, 300)
	if sk.Hits != 1 || sk.Misses != 1 || sk.FalseAlarms != 0 {
		t.Fatalf("skill = %+v", sk)
	}
}

func TestEndToEndSkillAgainstGroundTruth(t *testing.T) {
	m := stormModel(24, 3, 25)
	gt := m.GroundTruth()
	var instants []Instant
	for {
		day := m.StepDay()
		if day == nil {
			break
		}
		for s := 0; s < esm.StepsPerDay; s++ {
			var truth []esm.TrackPoint
			for _, c := range gt.Cyclones {
				if p, ok := c.Active(day.DayOfYear, s); ok && p.PressureDrop > 1200 {
					truth = append(truth, p)
				}
			}
			dets, err := DetectStep(day, s, DefaultCriteria())
			if err != nil {
				t.Fatal(err)
			}
			if len(truth) > 0 || len(dets) > 0 {
				instants = append(instants, Instant{Truth: truth, Dets: dets})
			}
		}
	}
	sk := Evaluate(instants, 600)
	if sk.POD < 0.6 {
		t.Fatalf("deterministic tracker POD too low: %v", sk)
	}
	if sk.FAR > 0.4 {
		t.Fatalf("deterministic tracker FAR too high: %v", sk)
	}
}

func TestDedupSuppressesNearbyWeaker(t *testing.T) {
	dets := []Detection{
		{Lat: 10, Lon: 100, DepressionPa: 3000},
		{Lat: 10.5, Lon: 100.5, DepressionPa: 1000}, // within 500 km of stronger
		{Lat: -20, Lon: 200, DepressionPa: 900},
	}
	out := dedup(dets, 500)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d, want 2", len(out))
	}
	if out[0].DepressionPa != 3000 || out[1].Lat != -20 {
		t.Fatalf("dedup result = %+v", out)
	}
}
