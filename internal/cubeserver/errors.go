package cubeserver

import (
	"errors"

	"repro/internal/datacube"
)

// The wire protocol carries failures as strings, which is fine for a
// human at cubecli but useless to a failover coordinator that must
// tell "cube does not exist" (logical, replica healthy) from "engine
// closed" (replica dead) from a desynced transport. Response.ErrCode
// closes the gap: dispatch classifies known sentinels into stable
// codes and the client rebuilds an error that both preserves the
// server's message and unwraps to the original sentinel, so errors.Is
// works across the wire.

// Wire error codes carried in Response.ErrCode.
const (
	// CodeNotFound marks datacube.ErrNotFound: the named cube does not
	// exist on the server.
	CodeNotFound = "not_found"
	// CodeEngineClosed marks datacube.ErrEngineClosed: the backing
	// engine was shut down.
	CodeEngineClosed = "engine_closed"
	// CodeUnknownOp marks ErrUnknownOp: the request named an operation
	// the dispatcher does not implement.
	CodeUnknownOp = "unknown_op"
)

// ErrUnknownOp is returned for requests (or pipeline steps) naming an
// operation the server does not implement.
var ErrUnknownOp = errors.New("cubeserver: unknown op")

// ErrClientBroken is returned by every call on a Client after a
// transport failure. A failed gob Encode or Decode leaves the stream
// desynced — a later call could hang on a half-written frame or decode
// a stale response as its own — so the client latches the first
// transport error and fails everything afterwards fast; callers must
// reconnect.
var ErrClientBroken = errors.New("cubeserver: client unusable after transport error (reconnect)")

// ErrCodeOf classifies an error into a wire code ("" when the error
// carries no classified sentinel). Shared by the engine dispatcher and
// any other Dispatcher (e.g. the cubecluster coordinator) serving the
// same protocol.
func ErrCodeOf(err error) string {
	switch {
	case errors.Is(err, datacube.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, datacube.ErrEngineClosed):
		return CodeEngineClosed
	case errors.Is(err, ErrUnknownOp):
		return CodeUnknownOp
	}
	return ""
}

// sentinelOf maps a wire code back to its sentinel (nil for unknown
// codes, which newer servers may emit).
func sentinelOf(code string) error {
	switch code {
	case CodeNotFound:
		return datacube.ErrNotFound
	case CodeEngineClosed:
		return datacube.ErrEngineClosed
	case CodeUnknownOp:
		return ErrUnknownOp
	}
	return nil
}

// RemoteError is the client-side reconstruction of a server-side
// failure: Error() preserves the server's message verbatim and Unwrap
// restores the sentinel named by the wire code, so
// errors.Is(err, datacube.ErrNotFound) holds across the wire exactly
// as it does in-process.
type RemoteError struct {
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap returns the sentinel for the error's wire code, if any.
func (e *RemoteError) Unwrap() error { return sentinelOf(e.Code) }

// ResponseError converts a response's error fields back into an error:
// nil for success, a RemoteError when the server classified the
// failure, and an opaque error otherwise.
func ResponseError(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	if resp.ErrCode == "" {
		return errors.New(resp.Err)
	}
	return &RemoteError{Code: resp.ErrCode, Msg: resp.Err}
}
