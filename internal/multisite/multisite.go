// Package multisite implements the paper's stated future direction
// (§7): "a distributed execution of different tasks by leveraging the
// Data Logistics Service ... the different parts of the workflow could
// be run on different infrastructures according to their requirements,
// using, for instance, large HPC systems for the ESM simulation,
// data-oriented/Cloud systems for Big Data processing and
// GPU-partitions for the ML-based models."
//
// A Federation is a set of named sites, each with its own storage
// directory and datacube engine; the Data Logistics Service moves
// datasets between sites with checksum verification and transfer
// accounting, so the cost of distribution is measurable against the
// single-site deployment.
package multisite

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/datacube"
	"repro/internal/dls"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ml"
	"repro/internal/stream"
	"repro/internal/tctrack"
)

// SiteKind classifies a site's specialization.
type SiteKind string

// Site kinds, after the paper's §7 enumeration.
const (
	KindHPC   SiteKind = "hpc"   // simulation
	KindCloud SiteKind = "cloud" // Big Data processing
	KindGPU   SiteKind = "gpu"   // ML models
)

// Site is one infrastructure in the federation.
type Site struct {
	Name string
	Kind SiteKind
	// Dir is the site-local storage root.
	Dir string
	// Engine is the site-local datacube deployment (nil for sites that
	// never run analytics).
	Engine *datacube.Engine
}

// ErrSiteUnavailable is returned by Transfer while a destination site's
// circuit breaker is open: the federation degrades to a typed, fast
// failure instead of hanging on (or hammering) a down site.
var ErrSiteUnavailable = errors.New("multisite: site unavailable (circuit open)")

// TransferPolicy tunes the fault-tolerance of federation transfers.
type TransferPolicy struct {
	// Retries per transfer; each retry is separated by capped exponential
	// backoff. Zero means 2.
	Retries int
	// BaseBackoff before the first retry (doubles per retry); zero means
	// 20ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the retry delay; zero means 1s.
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive transfer failures open a
	// destination site's circuit; zero means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects transfers
	// before admitting a probe; zero means 5s.
	BreakerCooldown time.Duration
}

func (p TransferPolicy) withDefaults() TransferPolicy {
	if p.Retries <= 0 {
		p.Retries = 2
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 20 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	return p
}

// breaker tracks one destination site's consecutive transfer failures.
type breaker struct {
	consecutive int
	openUntil   time.Time
	// probing marks a half-open breaker with its single probe transfer in
	// flight. Without it, every caller waiting out the cooldown is
	// admitted the instant it expires and a still-dead site absorbs a
	// thundering herd instead of one probe.
	probing bool
}

// Federation is a set of sites plus the shared Data Logistics Service.
type Federation struct {
	mu    sync.Mutex
	sites map[string]*Site
	dls   *dls.Service

	policy   TransferPolicy
	injector chaos.Injector
	breakers map[string]*breaker
	met      *msMetrics
	nowFn    func() time.Time    // test hook; nil means time.Now
	sleepFn  func(time.Duration) // test hook; nil means time.Sleep

	bytesMoved int64
	transfers  int
}

// NewFederation starts an empty federation.
func NewFederation() *Federation {
	return &Federation{
		sites:    make(map[string]*Site),
		dls:      dls.NewService(nil),
		policy:   TransferPolicy{}.withDefaults(),
		breakers: make(map[string]*breaker),
		met:      newMSMetrics(nil),
	}
}

// SetTransferPolicy replaces the transfer fault-tolerance policy.
func (f *Federation) SetTransferPolicy(p TransferPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = p.withDefaults()
}

// SetInjector installs a fault injector consulted at
// chaos.SiteTransfer before every transfer attempt (op is the dataset
// name). Nil restores production behaviour.
func (f *Federation) SetInjector(inj chaos.Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.injector = inj
}

// AddSite registers a site, creating its storage directory.
func (f *Federation) AddSite(name string, kind SiteKind, dir string, engine *datacube.Engine) (*Site, error) {
	if name == "" {
		return nil, fmt.Errorf("multisite: site needs a name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.sites[name]; dup {
		return nil, fmt.Errorf("multisite: duplicate site %q", name)
	}
	s := &Site{Name: name, Kind: kind, Dir: dir, Engine: engine}
	f.sites[name] = s
	return s, nil
}

// Site returns a registered site.
func (f *Federation) Site(name string) (*Site, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sites[name]
	if !ok {
		return nil, fmt.Errorf("multisite: unknown site %q", name)
	}
	return s, nil
}

// Sites lists site names, sorted.
func (f *Federation) Sites() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.sites))
	for n := range f.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransferStats reports federation-wide data movement.
type TransferStats struct {
	BytesMoved int64
	Transfers  int
}

// Stats returns accumulated transfer accounting.
func (f *Federation) Stats() TransferStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return TransferStats{BytesMoved: f.bytesMoved, Transfers: f.transfers}
}

// Transfer moves the named files (paths under the source site's Dir)
// to the destination site via a DLS stage-in pipeline, preserving the
// relative layout. It returns the destination paths.
//
// Every file lands through dls.CopyVerified — the one verified-copy
// primitive in the stack — so transfers are checksum-verified and
// atomic per file. Failed transfers are retried with capped exponential
// backoff per TransferPolicy; when a destination accumulates
// BreakerThreshold consecutive failures its circuit opens and Transfer
// fails fast with ErrSiteUnavailable until the cooldown admits a probe.
func (f *Federation) Transfer(dataset string, from, to *Site, files []string) ([]string, error) {
	rels := make([]string, len(files))
	for i, p := range files {
		rel, err := filepath.Rel(from.Dir, p)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) || filepath.IsAbs(rel) {
			return nil, fmt.Errorf("multisite: %s is not under site %s", p, from.Name)
		}
		rels[i] = rel
	}
	if err := f.breakerAllow(to.Name); err != nil {
		return nil, err
	}
	if err := f.dls.Catalog.Register(dls.Dataset{Name: dataset, Root: from.Dir, Files: rels}); err != nil {
		return nil, err
	}

	f.mu.Lock()
	pol := f.policy
	inj := f.injector
	met := f.met
	f.mu.Unlock()

	var out []string
	var err error
	for attempt := 0; ; attempt++ {
		out, err = f.transferAttempt(inj, dataset, to, attempt)
		if err == nil || attempt >= pol.Retries || chaos.IsPermanent(err) {
			break
		}
		met.retries.Inc()
		f.sleep(transferBackoff(pol, attempt))
	}
	if err != nil {
		met.failures.Inc()
		f.breakerFailure(to.Name, pol)
		return nil, fmt.Errorf("multisite: transfer %s to %s: %w", dataset, to.Name, err)
	}
	f.breakerSuccess(to.Name)

	var moved int64
	for _, p := range out {
		if fi, err := os.Stat(p); err == nil {
			moved += fi.Size()
		}
	}
	met.transfers.Add(float64(len(out)))
	met.bytes.Add(float64(moved))
	f.mu.Lock()
	f.bytesMoved += moved
	f.transfers += len(out)
	f.mu.Unlock()
	return out, nil
}

// transferAttempt runs one stage-in under the fault injector.
func (f *Federation) transferAttempt(inj chaos.Injector, dataset string, to *Site, attempt int) ([]string, error) {
	if inj != nil {
		fa := inj.Decide(chaos.SiteTransfer, dataset, attempt)
		if err := fa.Error(); err != nil {
			return nil, err
		}
		if fa.Kind == chaos.Latency {
			f.sleep(fa.Delay)
		}
	}
	return f.dls.StageIn(dataset, to.Dir)
}

func transferBackoff(pol TransferPolicy, attempt int) time.Duration {
	d := pol.BaseBackoff
	for i := 0; i < attempt && d < pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	return d
}

func (f *Federation) now() time.Time {
	f.mu.Lock()
	fn := f.nowFn
	f.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return time.Now()
}

func (f *Federation) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	fn := f.sleepFn
	f.mu.Unlock()
	if fn != nil {
		fn(d)
		return
	}
	time.Sleep(d)
}

// breakerAllow rejects transfers to a site whose circuit is open. When
// the cooldown expires the circuit goes half-open: exactly one caller
// is admitted as the probe, and everyone else keeps getting
// ErrSiteUnavailable until the probe reports back (success closes the
// circuit, failure restarts the cooldown).
func (f *Federation) breakerAllow(site string) error {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[site]
	if b == nil || b.openUntil.IsZero() {
		return nil
	}
	if now.Before(b.openUntil) {
		return fmt.Errorf("%w: site %s cooling down for %s after %d consecutive failures",
			ErrSiteUnavailable, site, b.openUntil.Sub(now).Round(time.Millisecond), b.consecutive)
	}
	if b.probing {
		return fmt.Errorf("%w: site %s half-open, probe in flight", ErrSiteUnavailable, site)
	}
	b.probing = true
	return nil
}

func (f *Federation) breakerFailure(site string, pol TransferPolicy) {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[site]
	if b == nil {
		b = &breaker{}
		f.breakers[site] = b
	}
	b.probing = false
	b.consecutive++
	if b.consecutive >= pol.BreakerThreshold {
		// Open (or re-open after a failed probe): reject until cooldown.
		b.openUntil = now.Add(pol.BreakerCooldown)
		f.met.breakerOpen.With(site).Set(1)
	}
	f.met.breakerCons.With(site).Set(float64(b.consecutive))
}

func (f *Federation) breakerSuccess(site string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b := f.breakers[site]; b != nil {
		b.consecutive = 0
		b.openUntil = time.Time{}
		b.probing = false
		f.met.breakerOpen.With(site).Set(0)
		f.met.breakerCons.With(site).Set(0)
	}
}

// Config parameterizes a distributed workflow run.
type Config struct {
	// Model is the ESM configuration (grid, years, events, seed).
	Model esm.Config
	// Localizer enables the ML branch on the GPU site (optional).
	Localizer *ml.Localizer
	// TCThreshold is the CNN presence threshold (default 0.5).
	TCThreshold float64
	// IndexParams for the wave pipelines; DaysPerYear/StepsPerDay are
	// forced from the model configuration.
	IndexParams indices.Params
}

// YearOutput is one year's distributed products.
type YearOutput struct {
	Year int
	// HWNumberMean is the spatial mean heat-wave count (computed on the
	// cloud site).
	HWNumberMean float64
	// TrackerTracks and CNNDetections come from the GPU site.
	TrackerTracks int
	CNNDetections int
}

// Result is the distributed run outcome.
type Result struct {
	Years []YearOutput
	// Transfers is the inter-site data movement the distribution cost.
	Transfers TransferStats
}

// RunDistributed executes the case-study workflow across three sites:
// the ESM writes on the HPC site; each complete year's temperature
// files move to the cloud site for the datacube index pipelines, and
// its dynamical fields move to the GPU site for TC detection.
func RunDistributed(f *Federation, cfg Config) (*Result, error) {
	hpc, err := siteOfKind(f, KindHPC)
	if err != nil {
		return nil, err
	}
	cloud, err := siteOfKind(f, KindCloud)
	if err != nil {
		return nil, err
	}
	gpu, err := siteOfKind(f, KindGPU)
	if err != nil {
		return nil, err
	}
	if cloud.Engine == nil {
		return nil, fmt.Errorf("multisite: cloud site %q has no datacube engine", cloud.Name)
	}
	if cfg.TCThreshold == 0 {
		cfg.TCThreshold = 0.5
	}

	// Stage 1: simulation on the HPC site.
	model := esm.NewModel(cfg.Model)
	mc := model.Config()
	paths, err := model.Run(esm.RunOptions{Dir: hpc.Dir})
	if err != nil {
		return nil, err
	}
	batches := stream.NewYearBatcher(mc.DaysPerYear, esm.YearOf).Add(paths...)

	params := cfg.IndexParams
	params.DaysPerYear = mc.DaysPerYear
	params.StepsPerDay = esm.StepsPerDay
	params = params.Defaults()

	baseline, err := indices.BuildBaseline(cloud.Engine, mc.Grid, mc.DaysPerYear)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = baseline.TMax.Delete()
		_ = baseline.TMin.Delete()
	}()

	res := &Result{}
	for _, batch := range batches {
		// move the year to the analytics and ML sites
		cloudFiles, err := f.Transfer(fmt.Sprintf("year%d-cloud", batch.Year), hpc, cloud, batch.Files)
		if err != nil {
			return nil, err
		}
		gpuFiles, err := f.Transfer(fmt.Sprintf("year%d-gpu", batch.Year), hpc, gpu, batch.Files)
		if err != nil {
			return nil, err
		}

		// Big Data processing on the cloud site
		hw, err := indices.HeatWaves(cloud.Engine, cloudFiles, baseline, params)
		if err != nil {
			return nil, err
		}
		mean, err := spatialMean(hw.Number)
		if err != nil {
			return nil, err
		}
		_ = hw.Duration.Delete()
		_ = hw.Number.Delete()
		_ = hw.Frequency.Delete()

		// ML + tracking on the GPU site
		tracks, dets, err := runTCBranch(gpuFiles, mc.Grid, cfg)
		if err != nil {
			return nil, err
		}

		res.Years = append(res.Years, YearOutput{
			Year:          batch.Year,
			HWNumberMean:  mean,
			TrackerTracks: tracks,
			CNNDetections: dets,
		})
	}
	res.Transfers = f.Stats()
	return res, nil
}

func siteOfKind(f *Federation, kind SiteKind) (*Site, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for n := range f.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if f.sites[n].Kind == kind {
			return f.sites[n], nil
		}
	}
	return nil, fmt.Errorf("multisite: no site of kind %q", kind)
}

func spatialMean(c *datacube.Cube) (float64, error) {
	agg, err := c.AggregateRows("avg")
	if err != nil {
		return 0, err
	}
	defer agg.Delete()
	red, err := agg.Reduce("avg")
	if err != nil {
		return 0, err
	}
	defer red.Delete()
	return red.Scalar()
}

// runTCBranch executes detection on the GPU site's local files.
func runTCBranch(files []string, g grid.Grid, cfg Config) (tracks, cnnDets int, err error) {
	steps, err := loadFields(files, g)
	if err != nil {
		return 0, 0, err
	}
	tracker := tctrack.NewTracker()
	for _, sf := range steps {
		tracker.Advance(tctrack.DetectFields(sf.psl, sf.vort, sf.t500, sf.day, sf.step, tctrack.DefaultCriteria()))
		if cfg.Localizer != nil && sf.step%2 == 0 {
			d, err := cfg.Localizer.DetectFields(sf.channels, g, cfg.TCThreshold)
			if err != nil {
				return 0, 0, err
			}
			cnnDets += len(d)
		}
	}
	return len(tracker.Finish()), cnnDets, nil
}
