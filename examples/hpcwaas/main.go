// Hpcwaas walks the full HPC-Workflows-as-a-Service lifecycle of the
// paper's Figure 1 against a live REST service — now with the bounded
// multi-tenant execution queue in front of the workers: the developer
// registers the climate-extremes workflow with its TOSCA topology; the
// deployer (Yorc role) builds container images and stages data; the
// final user then drives everything over plain HTTP: submissions past
// the admission limit bounce with 429 + Retry-After, accepted ones are
// observable through QUEUED → RUNNING → DONE, a queued execution is
// cancelled mid-flight, GET /api/queue exposes depth and latency, and
// the service drains cleanly at the end.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dls"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/hpcwaas"
	"repro/internal/imagebuilder"
	"repro/internal/tosca"
)

func main() {
	log.SetFlags(0)
	workDir, err := os.MkdirTemp("", "hpcwaas-")
	if err != nil {
		log.Fatal(err)
	}

	// --- developer side: register the workflow --------------------------
	registry := hpcwaas.NewRegistry()
	entry := hpcwaas.Entry{
		Name:        "climate-extremes",
		Version:     "1.0",
		Description: "extreme events analysis on ESM projection data",
		Topology:    tosca.ClimateTopology("zeus"),
		App:         climateApp(workDir),
	}
	if err := registry.Register(entry); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered workflow 'climate-extremes' (TOSCA topology attached)")

	// --- site services: image builder + data logistics ------------------
	deployer := hpcwaas.NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"})
	climSrc := filepath.Join(workDir, "catalog")
	os.MkdirAll(climSrc, 0o755)
	os.WriteFile(filepath.Join(climSrc, "climatology.nc"), []byte("20y baseline"), 0o644)
	deployer.DLS.Catalog.Register(dls.Dataset{Name: "climatology", Root: climSrc, Files: []string{"climatology.nc"}})
	deployer.Pipelines["stage-in-climatology"] = dls.Pipeline{
		Name:  "stage-in-climatology",
		Steps: []dls.Step{{Kind: "stage_in", Dataset: "climatology", Dir: filepath.Join(workDir, "staged")}},
	}

	// A deliberately tiny queue so admission control is visible: one
	// worker, two queued slots, at most three live executions per user.
	svc, err := hpcwaas.NewServiceWith(registry, deployer, hpcwaas.ServiceConfig{
		Workers: 1, QueueDepth: 2, PerPrincipalLimit: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	fmt.Printf("HPCWaaS execution API listening at %s (1 worker, queue depth 2)\n\n", server.URL)

	// --- user side: pure REST from here on -------------------------------
	var workflows []map[string]any
	getJSON(server.URL+"/api/workflows", &workflows)
	fmt.Printf("GET /api/workflows -> %d workflow(s): %v\n", len(workflows), workflows[0]["name"])

	var dep map[string]any
	postJSON(server.URL+"/api/workflows/climate-extremes/deploy",
		map[string]any{"target": "zeus"}, &dep)
	fmt.Printf("POST .../deploy -> %s on %s (%s)\n\n", dep["ID"], dep["Target"], dep["Status"])

	// Submit four executions back to back. The first occupies the lone
	// worker, two wait in the queue, and the fourth is turned away.
	params := map[string]string{"years": "1", "days_per_year": "12", "seed": "42"}
	var ids []string
	for i := 1; i <= 4; i++ {
		code, headers, body := post(server.URL+"/api/executions",
			map[string]any{"workflow": "climate-extremes", "params": params})
		var ex map[string]any
		json.Unmarshal(body, &ex)
		if code == http.StatusAccepted {
			ids = append(ids, ex["id"].(string))
			fmt.Printf("POST /api/executions #%d -> 202 %s (%s)\n", i, ex["id"], ex["status"])
		} else {
			fmt.Printf("POST /api/executions #%d -> %d %v (Retry-After: %ss)\n",
				i, code, ex["error"], headers.Get("Retry-After"))
		}
	}

	// The queue endpoint shows where everything sits.
	var stats map[string]any
	getJSON(server.URL+"/api/queue", &stats)
	fmt.Printf("\nGET /api/queue -> depth %v/%v, running %v, rejected(full+quota) %v\n",
		stats["depth"], stats["capacity"], stats["running"],
		asFloat(stats["rejected_full"])+asFloat(stats["rejected_quota"]))

	// Cancel the last accepted execution while it still waits its turn.
	last := ids[len(ids)-1]
	code, _, body := do("DELETE", server.URL+"/api/executions/"+last, nil)
	var cancelled map[string]any
	json.Unmarshal(body, &cancelled)
	fmt.Printf("DELETE /api/executions/%s -> %d (%s)\n\n", last, code, cancelled["status"])

	// Poll the second execution through its lifecycle.
	watch := ids[1]
	lastStatus := ""
	var ex map[string]any
	for {
		getJSON(server.URL+"/api/executions/"+watch, &ex)
		if st := ex["status"].(string); st != lastStatus {
			fmt.Printf("GET /api/executions/%s -> %s\n", watch, st)
			lastStatus = st
		}
		if lastStatus == "DONE" || lastStatus == "FAILED" || lastStatus == "CANCELED" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lastStatus != "DONE" {
		log.Fatalf("execution failed: %v", ex["error"])
	}
	results := ex["results"].(map[string]any)
	fmt.Printf("results: %v years processed, %v files, heat-wave mean %v\n\n",
		results["years_processed"], results["files_produced"], results["hw_mean_year_1"])

	// Drain: intake stops, in-flight executions finish, workers exit.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	var final []map[string]any
	getJSON(server.URL+"/api/executions", &final)
	fmt.Println("drained; final execution states:")
	for _, e := range final {
		fmt.Printf("  %-8s %s\n", e["id"], e["status"])
	}
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server shut down cleanly")
}

// climateApp adapts the core workflow as an HPCWaaS application: input
// parameters arrive as strings from the REST call.
func climateApp(workDir string) hpcwaas.AppFunc {
	return func(params map[string]string) (map[string]string, error) {
		years := atoiDefault(params["years"], 1)
		days := atoiDefault(params["days_per_year"], 12)
		seed := int64(atoiDefault(params["seed"], 1))
		outDir, err := os.MkdirTemp(workDir, "run-")
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       years,
			DaysPerYear: days,
			Seed:        seed,
			OutputDir:   outDir,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
			},
		})
		if err != nil {
			return nil, err
		}
		return map[string]string{
			"years_processed":  strconv.Itoa(len(res.Years)),
			"files_produced":   strconv.Itoa(res.FilesProduced),
			"final_map":        res.FinalMapPath,
			"hw_mean_year_1":   fmt.Sprintf("%.4f", res.Years[0].HWNumberMean),
			"tracker_tracks":   strconv.Itoa(res.Years[0].TrackerTracks),
			"output_directory": outDir,
		}, nil
	}
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

func asFloat(v any) float64 {
	f, _ := v.(float64)
	return f
}

// do issues a request and returns status, headers and raw body.
func do(method, url string, reqBody any) (int, http.Header, []byte) {
	var rdr *bytes.Reader
	if reqBody != nil {
		data, err := json.Marshal(reqBody)
		if err != nil {
			log.Fatal(err)
		}
		rdr = bytes.NewReader(data)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

func post(url string, body any) (int, http.Header, []byte) {
	return do("POST", url, body)
}

func getJSON(url string, v any) {
	code, _, body := do("GET", url, nil)
	if code >= 400 {
		log.Fatalf("GET %s -> %d: %s", url, code, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body, v any) {
	code, _, data := do("POST", url, body)
	if code >= 400 {
		log.Fatalf("POST %s -> %d: %s", url, code, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatal(err)
	}
}
