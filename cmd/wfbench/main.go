// Command wfbench drives the quantitative experiments C1–C4 of
// DESIGN.md and prints their series, reproducing the *shape* of the
// paper's performance claims on the simulated substrate:
//
//	c1  concurrent end-to-end workflow vs the traditional two-stage
//	    run-then-analyze baseline (§5.1: "their integration ... can
//	    help in reducing the overall execution time")
//	c2  in-memory climatology baseline reuse vs re-importing it per
//	    pipeline (§5.3: "loaded only once ... reducing the number of
//	    read operations from storage")
//	c3  datacube operator scaling with the number of I/O servers
//	    (§4.2.2: "computing components can be scaled up")
//	c4  task-runtime parallelism and scheduling overhead (§4.2.1)
//
//	ens  initial-condition ensemble: concurrent member execution and
//	     cross-member index statistics (§3's ensemble workloads)
//	dist distributed multi-site execution with DLS data movement (§7
//	     future work): result equivalence + transfer accounting
//	soak replicated control-plane soak: concurrent HTTP clients vs N
//	     API replicas while chaos kills/restarts executors; verifies
//	     exactly-once completion and reports latency quantiles
//	     (DESIGN.md §13; not part of "all")
//	pyramid coarse-first tolerance frontier: heat-wave pipeline over
//	     the resolution pyramid at increasing declared tolerances,
//	     reporting walltime/cells/observed error (DESIGN.md §15)
//
// Usage: wfbench -exp c1|c2|c3|c4|ens|dist|pyramid|soak|all
//
// With -trace out.json, wfbench instead runs one full Figure-2
// workflow with span tracing attached and writes the timeline as a
// Chrome trace_event file (open in chrome://tracing or Perfetto).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/compss"
	"repro/internal/core"
	"repro/internal/cubecluster"
	"repro/internal/cubeserver"
	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ncdf"
	"repro/internal/obs"
)

// useNet switches the C3 shard sweep from in-process transports to
// real cubeserver TCP replicas, sweeping both wire codecs: legacy gob
// (one serialized connection per replica) and v2 (multiplexed binary
// frames over a connection pool). poolSize is the v2 per-replica pool.
var (
	useNet   bool
	poolSize int
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: c1|c2|c3|c4|ens|dist|pyramid|soak|all")
	tracePath := flag.String("trace", "", "run one traced end-to-end workflow and write its Chrome trace JSON here (skips -exp)")
	netFlag := flag.Bool("net", false, "run the C3 shard sweep over real TCP cubeserver replicas (both wire codecs) instead of in-process transports")
	poolFlag := flag.Int("pool", cubecluster.DefaultPoolSize, "with -net: v2 connections pooled per replica")
	flag.Parse()
	useNet = *netFlag
	poolSize = *poolFlag
	if *tracePath != "" {
		traceRun(*tracePath)
		return
	}
	switch *exp {
	case "c1":
		c1()
	case "c2":
		c2()
	case "c3":
		c3()
	case "c4":
		c4()
	case "ens":
		ens()
	case "dist":
		dist()
	case "pyramid":
		pyramid()
	case "soak":
		soak()
	case "all":
		c1()
		c2()
		c3()
		c4()
		ens()
		dist()
		pyramid()
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func tmpDir(prefix string) string {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		log.Fatal(err)
	}
	return dir
}

// traceRun executes one full Figure-2 workflow (simulation, streaming
// year detection, wave indices, TC branch, maps) with a span tracer
// attached and writes the Chrome trace timeline to path.
func traceRun(path string) {
	fmt.Println("=== traced end-to-end workflow run ===")
	tr := obs.NewTracer()
	cfg := core.Config{
		Grid:            grid.Grid{NLat: 32, NLon: 64},
		Years:           2,
		DaysPerYear:     20,
		Seed:            7,
		OutputDir:       tmpDir("trace-"),
		Workers:         6,
		CubeServers:     2,
		ESMDayDelay:     5 * time.Millisecond,
		FragmentLatency: time.Millisecond,
		Tracer:          tr,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 2,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 8,
		},
	}
	t0 := time.Now()
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tasks done in %v; %d spans -> %s\n",
		res.RuntimeStats.Done, time.Since(t0).Round(time.Millisecond), len(tr.Spans()), path)
	fmt.Println("open in chrome://tracing or https://ui.perfetto.dev")
}

// c1: concurrent workflow vs sequential two-stage baseline. The ESM
// day delay models the coupled model computing on its own HPC
// allocation; the workflow host analyzes completed years while the
// model produces the next ones. The gain grows with the number of
// years whose analysis hides under the simulation (paper §5.1).
func c1() {
	fmt.Println("=== C1: end-to-end time, concurrent workflow vs two-stage baseline ===")
	fmt.Println("(ESM: 15ms per simulated day on its dedicated allocation;")
	fmt.Println(" datacube: 5ms storage latency per fragment access, 2 I/O servers)")
	fmt.Printf("%-7s %14s %14s %10s\n", "years", "sequential", "concurrent", "speedup")
	for _, years := range []int{1, 2, 4} {
		mk := func() core.Config {
			return core.Config{
				Grid:            grid.Grid{NLat: 32, NLon: 64},
				Years:           years,
				DaysPerYear:     20,
				Seed:            7,
				OutputDir:       tmpDir("c1-"),
				Workers:         6,
				CubeServers:     2,
				ESMDayDelay:     15 * time.Millisecond,
				FragmentLatency: 5 * time.Millisecond,
				Events: &esm.EventConfig{
					HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 2,
					WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 8,
				},
			}
		}
		t0 := time.Now()
		if _, err := core.RunSequential(mk()); err != nil {
			log.Fatal(err)
		}
		seq := time.Since(t0)
		t0 = time.Now()
		if _, err := core.Run(mk()); err != nil {
			log.Fatal(err)
		}
		conc := time.Since(t0)
		fmt.Printf("%-7d %14v %14v %9.2fx\n", years, seq.Round(time.Millisecond), conc.Round(time.Millisecond), seq.Seconds()/conc.Seconds())
	}
	fmt.Println()
}

// c2: baseline reuse vs per-pipeline re-import.
func c2() {
	fmt.Println("=== C2: in-memory baseline reuse vs re-import per pipeline ===")
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	modelDir := tmpDir("c2-model-")
	model := esm.NewModel(esm.Config{
		Grid: g, Years: 4, DaysPerYear: days, Seed: 7,
		Events: &esm.EventConfig{HeatWavesPerYear: 1, ColdSpellsPerYear: 1, WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7},
	})
	paths, err := model.Run(esm.RunOptions{Dir: modelDir})
	if err != nil {
		log.Fatal(err)
	}
	years := splitYears(paths, days)

	// materialize the baseline to disk once, so "re-import" has a real
	// storage cost
	prepEngine := datacube.NewEngine(datacube.Config{Servers: 4})
	b, err := indices.BuildBaseline(prepEngine, g, days)
	if err != nil {
		log.Fatal(err)
	}
	baseDir := tmpDir("c2-base-")
	if err := b.TMax.ExportFile(baseDir + "/tmax_clim.nc"); err != nil {
		log.Fatal(err)
	}
	if err := b.TMin.ExportFile(baseDir + "/tmin_clim.nc"); err != nil {
		log.Fatal(err)
	}
	prepEngine.Close()

	// Three data-management regimes:
	//   integrated — the end-to-end workflow: baseline and each year's
	//                temperature cube imported once, shared in memory by
	//                all six index pipelines (§5.3);
	//   partial    — baseline reloaded every year, year cube shared;
	//   scripts    — the pre-integration practice: six stand-alone index
	//                scripts per year, each loading the year files and
	//                the baseline from storage.
	params := indices.Params{DaysPerYear: days}
	loadBaseline := func(engine *datacube.Engine) *indices.Baseline {
		tmax, err := engine.ImportFile(baseDir+"/tmax_clim.nc", "TMAX_CLIM", "dayofyear")
		if err != nil {
			log.Fatal(err)
		}
		tmin, err := engine.ImportFile(baseDir+"/tmin_clim.nc", "TMIN_CLIM", "dayofyear")
		if err != nil {
			log.Fatal(err)
		}
		return &indices.Baseline{TMax: tmax, TMin: tmin, Grid: g, DaysPerYear: days}
	}
	freeResult := func(r *indices.Result) {
		_ = r.Duration.Delete()
		_ = r.Number.Delete()
		_ = r.Frequency.Delete()
	}
	freeBaseline := func(b *indices.Baseline) {
		_ = b.TMax.Delete()
		_ = b.TMin.Delete()
	}

	run := func(mode string) (int64, time.Duration) {
		engine := datacube.NewEngine(datacube.Config{Servers: 4})
		defer engine.Close()
		t0 := time.Now()
		switch mode {
		case "integrated":
			bl := loadBaseline(engine)
			for _, files := range years {
				temp, err := engine.ImportFiles(files, "TREFHT", "time")
				if err != nil {
					log.Fatal(err)
				}
				hw, err := indices.HeatWavesFromCube(temp, bl, params)
				if err != nil {
					log.Fatal(err)
				}
				cw, err := indices.ColdWavesFromCube(temp, bl, params)
				if err != nil {
					log.Fatal(err)
				}
				freeResult(hw)
				freeResult(cw)
				_ = temp.Delete()
			}
		case "partial":
			for _, files := range years {
				bl := loadBaseline(engine)
				temp, err := engine.ImportFiles(files, "TREFHT", "time")
				if err != nil {
					log.Fatal(err)
				}
				hw, err := indices.HeatWavesFromCube(temp, bl, params)
				if err != nil {
					log.Fatal(err)
				}
				cw, err := indices.ColdWavesFromCube(temp, bl, params)
				if err != nil {
					log.Fatal(err)
				}
				freeResult(hw)
				freeResult(cw)
				_ = temp.Delete()
				freeBaseline(bl)
			}
		case "scripts":
			for _, files := range years {
				// six independent scripts: each re-imports everything
				for script := 0; script < 6; script++ {
					bl := loadBaseline(engine)
					var r *indices.Result
					var err error
					if script < 3 {
						r, err = indices.HeatWaves(engine, files, bl, params)
					} else {
						r, err = indices.ColdWaves(engine, files, bl, params)
					}
					if err != nil {
						log.Fatal(err)
					}
					freeResult(r)
					freeBaseline(bl)
				}
			}
		}
		return engine.Stats().FileReads, time.Since(t0)
	}
	fmt.Printf("%-32s %12s %12s\n", "mode", "file reads", "time")
	var scriptReads, integratedReads int64
	for _, mode := range []string{"integrated", "partial", "scripts"} {
		reads, dt := run(mode)
		fmt.Printf("%-32s %12d %12v\n", label(mode), reads, dt.Round(time.Millisecond))
		if mode == "scripts" {
			scriptReads = reads
		}
		if mode == "integrated" {
			integratedReads = reads
		}
	}
	fmt.Printf("storage reads saved by integration: %d (%.0f%%)\n\n",
		scriptReads-integratedReads, 100*float64(scriptReads-integratedReads)/float64(scriptReads))
}

func label(mode string) string {
	switch mode {
	case "integrated":
		return "integrated workflow (reuse all)"
	case "partial":
		return "baseline reloaded per year"
	default:
		return "stand-alone scripts (no reuse)"
	}
}

func splitYears(paths []string, days int) [][]string {
	var out [][]string
	for i := 0; i+days <= len(paths); i += days {
		out = append(out, paths[i:i+days])
	}
	return out
}

// c3: datacube scaling with I/O servers. Each fragment access carries
// a 2 ms storage/network latency as on a real distributed deployment;
// latencies on distinct servers overlap, so operator time drops as
// servers are added (§4.2.2).
func c3() {
	fmt.Println("=== C3: datacube operator scaling with I/O servers ===")
	fmt.Println("(2ms simulated storage latency per fragment access, 32 fragments)")
	fmt.Printf("%-9s %-11s %14s %10s\n", "servers", "fragments", "pipeline time", "speedup")
	var base time.Duration
	for _, servers := range []int{1, 2, 4, 8} {
		const frags = 32
		engine := datacube.NewEngine(datacube.Config{
			Servers: servers, FragmentsPerCube: frags,
			FragmentLatency: 2 * time.Millisecond,
		})
		cube, err := engine.NewCubeFromFunc("m",
			[]datacube.Dimension{{Name: "cell", Size: 8192}},
			datacube.Dimension{Name: "time", Size: 128},
			func(row, t int) float32 { return float32(row%97) + float32(t%13) })
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < 3; i++ {
			masked, err := cube.Apply("x>50 ? x : 0")
			if err != nil {
				log.Fatal(err)
			}
			red, err := masked.Reduce("sum")
			if err != nil {
				log.Fatal(err)
			}
			_ = masked.Delete()
			_ = red.Delete()
		}
		dt := time.Since(t0)
		if servers == 1 {
			base = dt
		}
		fmt.Printf("%-9d %-11d %14v %9.2fx\n", servers, frags, dt.Round(time.Millisecond), base.Seconds()/dt.Seconds())
		engine.Close()
	}
	fmt.Println()
	c3Cluster()
}

// c3Cluster sweeps the same scaling axis across the sharded
// coordinator: the identical fused pipeline runs at 1/2/4/8 shards
// over one imported field, and the gather column shows that only
// reduced partials cross the wire at the aggrows barrier — the
// resident cube never moves after import.
func c3Cluster() {
	fmt.Println("--- C3 (cluster): shard scaling, fused scatter + partials-only gather ---")
	const lat, lon, steps = 1024, 8, 64
	const totalFrags = 32 // fragment size is fixed, so each shard holds 32/shards fragments
	cubeMB := float64(lat*lon*steps*4) / (1 << 20)
	mode := "in-process transports"
	if useNet {
		mode = "TCP cubeserver replicas"
	}
	fmt.Printf("(%d×%d×%d field, %.1f MB resident, %d fragments at 2ms storage latency; %s)\n",
		lat, lon, steps, cubeMB, totalFrags, mode)
	dir := tmpDir("c3cluster-")
	defer os.RemoveAll(dir)

	ds := ncdf.NewDataset()
	for _, d := range []struct {
		name string
		size int
	}{{"lat", lat}, {"lon", lon}, {"time", steps}} {
		if err := ds.AddDim(d.name, d.size); err != nil {
			log.Fatal(err)
		}
	}
	data := make([]float32, lat*lon*steps)
	for i := range data {
		data[i] = float32((i*7)%97) + float32((i*3)%13)
	}
	if _, err := ds.AddVar("T", []string{"lat", "lon", "time"}, data); err != nil {
		log.Fatal(err)
	}
	path := dir + "/field.nc"
	if err := ncdf.WriteFile(path, ds); err != nil {
		log.Fatal(err)
	}

	if !useNet {
		c3ClusterSweep("", path, dir)
	} else {
		fmt.Printf("codec=gob: one legacy connection per replica, exchanges serialized\n")
		c3ClusterSweep("gob", path, dir)
		fmt.Printf("codec=v2: multiplexed binary frames, %d pooled connections per replica\n", poolSize)
		c3ClusterSweep("v2", path, dir)
	}
	fmt.Printf("(gathered/run counts barrier partials + shapes; the %.1f MB cube stays sharded)\n\n", cubeMB)
}

// c3ClusterSweep runs the 1/2/4/8-shard scaling sweep once. codec ""
// uses in-process transports; "gob" and "v2" build real TCP replicas
// speaking that wire codec, and add measured wire bytes (from the
// servers' per-codec counters) and per-shard scatter/gather op latency
// quantiles to the table.
func c3ClusterSweep(codec, path, spool string) {
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x>50 ? x : 0"},
		{Op: "reduce", RowOp: "sum"},
		{Op: "aggrows", RowOp: "avg"},
	}
	net := codec != ""
	if net {
		fmt.Printf("%-8s %13s %9s %14s %13s %11s %11s %13s\n",
			"shards", "pipeline time", "speedup", "gathered/run", "wire-out/run", "shard-p50", "shard-p99", "bulk gather")
	} else {
		fmt.Printf("%-8s %14s %10s %16s\n", "shards", "pipeline time", "speedup", "gathered/run")
	}
	var base time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		cl, reg, cleanup := c3NewCluster(shards, 32/shards, spool, codec)
		imp := cl.Dispatch(&cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})
		if err := cubeserver.ResponseError(imp); err != nil {
			log.Fatal(err)
		}
		// The wire counters live server-side and count actual encoded
		// bytes; sample after import so the table shows steady-state
		// pipeline traffic only.
		wireOut := reg.CounterVec("cubeserver_wire_bytes_out_total", "bytes written to client connections", "codec").With(codec)
		w0 := wireOut.Value()
		lat0 := cl.ShardOpSnapshot()
		_, g0 := cl.BytesStats()
		const iters = 3
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			resp := cl.Dispatch(&cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
			if err := cubeserver.ResponseError(resp); err != nil {
				log.Fatal(err)
			}
			cl.Dispatch(&cubeserver.Request{Op: "delete", CubeID: resp.Shape.CubeID})
		}
		dt := time.Since(t0)
		_, g1 := cl.BytesStats()
		wireDelta := wireOut.Value() - w0
		if shards == 1 {
			base = dt
		}
		if net {
			p50, p99 := quantilesSince(lat0, cl.ShardOpSnapshot())
			// Bulk gather: pull the whole resident cube through the wire —
			// the raw-block vs reflected-gob payload path, where the codec
			// difference lives (pipeline gathers move only tiny partials).
			tg := time.Now()
			vals := cl.Dispatch(&cubeserver.Request{Op: "values", CubeID: imp.Shape.CubeID})
			if err := cubeserver.ResponseError(vals); err != nil {
				log.Fatal(err)
			}
			var cells int
			for _, row := range vals.Values {
				cells += len(row)
			}
			gatherMBs := float64(cells) * 4 / (1 << 20) / time.Since(tg).Seconds()
			fmt.Printf("%-8d %13v %8.2fx %11.0f B %10.0f B %11s %11s %8.1f MB/s\n",
				shards, dt.Round(time.Millisecond), base.Seconds()/dt.Seconds(),
				(g1-g0)/iters, wireDelta/iters,
				time.Duration(p50*float64(time.Second)).Round(10*time.Microsecond),
				time.Duration(p99*float64(time.Second)).Round(10*time.Microsecond),
				gatherMBs)
		} else {
			fmt.Printf("%-8d %14v %9.2fx %13.0f B\n",
				shards, dt.Round(time.Millisecond), base.Seconds()/dt.Seconds(), (g1-g0)/iters)
		}
		cleanup()
	}
}

// quantilesSince subtracts an earlier merged shard-op snapshot from a
// later one and returns the p50/p99 of the ops in between.
func quantilesSince(before, after obs.HistogramSnapshot) (p50, p99 float64) {
	for i := range before.Counts {
		after.Counts[i] -= before.Counts[i]
	}
	after.Count -= before.Count
	after.Sum -= before.Sum
	return after.Quantile(0.5), after.Quantile(0.99)
}

// c3NewCluster builds the sweep's cluster: in-process engines when
// codec is "", or real TCP cubeserver replicas speaking the given wire
// codec ("gob" dials one legacy connection per replica, "v2" a
// multiplexed connection pool). The returned registry carries the
// servers' transport metrics and the coordinator's shard latency
// histograms. fragsPerShard keeps the global fragment count constant
// across sweep points, so a shard's simulated storage latency is
// proportional to the data it holds.
func c3NewCluster(shards, fragsPerShard int, spool, codec string) (*cubecluster.Cluster, *obs.Registry, func()) {
	eng := datacube.Config{Servers: 1, FragmentsPerCube: fragsPerShard, FragmentLatency: 2 * time.Millisecond}
	reg := obs.NewRegistry()
	if codec == "" {
		cl, err := cubecluster.NewLocal(cubecluster.Config{Shards: shards, Engine: eng, SpoolDir: spool, Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		return cl, reg, func() { cl.Close() }
	}
	var closers []func()
	transports := make([][]cubecluster.Transport, shards)
	for s := 0; s < shards; s++ {
		engine := datacube.NewEngine(eng)
		srv, err := cubeserver.ServeDispatcher("127.0.0.1:0", cubeserver.EngineDispatcher(engine), reg)
		if err != nil {
			log.Fatal(err)
		}
		var tr cubecluster.Transport
		switch codec {
		case "gob":
			c, err := cubeserver.DialGob(srv.Addr())
			if err != nil {
				log.Fatal(err)
			}
			tr = cubecluster.NewClientTransport(c)
		case "v2":
			p, err := cubecluster.DialPoolTransport(srv.Addr(), poolSize)
			if err != nil {
				log.Fatal(err)
			}
			tr = p
		default:
			log.Fatalf("unknown codec %q", codec)
		}
		transports[s] = []cubecluster.Transport{tr}
		closers = append(closers, func() { srv.Close(); engine.Close() })
	}
	cl, err := cubecluster.New(cubecluster.Config{SpoolDir: spool, Metrics: reg}, transports)
	if err != nil {
		log.Fatal(err)
	}
	return cl, reg, func() {
		cl.Close()
		for _, c := range closers {
			c()
		}
	}
}

// c4: task-runtime parallelism and overhead. Tasks here model remote
// work (an HPC job, a datacube operator on other nodes): the local
// worker slot waits 2 ms per task, so independent tasks overlap across
// workers — the task-graph parallelism PyCOMPSs exploits (§4.2.1).
func c4() {
	fmt.Println("=== C4: task runtime parallelism (500 remote tasks, 2ms each) ===")
	fmt.Printf("%-9s %12s %10s\n", "workers", "makespan", "speedup")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		rt := compss.NewRuntime(compss.Config{Workers: workers})
		busy, err := rt.Register(compss.TaskDef{
			Name:    "remote",
			Outputs: 1,
			Fn: func(args []any) ([]any, error) {
				time.Sleep(2 * time.Millisecond)
				return []any{args[0]}, nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < 500; i++ {
			if _, err := rt.Invoke(busy, compss.In(i)); err != nil {
				log.Fatal(err)
			}
		}
		if err := rt.Shutdown(); err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		if workers == 1 {
			base = dt
		}
		fmt.Printf("%-9d %12v %9.2fx\n", workers, dt.Round(time.Millisecond), base.Seconds()/dt.Seconds())
	}

	fmt.Println("\nscheduler overhead (10000 empty tasks):")
	rt := compss.NewRuntime(compss.Config{Workers: 4})
	nop, err := rt.Register(compss.TaskDef{
		Name:    "nop",
		Outputs: 0,
		Fn:      func([]any) ([]any, error) { return nil, nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	const n = 10000
	for i := 0; i < n; i++ {
		if _, err := rt.Invoke(nop); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Shutdown(); err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	fmt.Printf("  total %v, %.1f µs/task\n\n", dt.Round(time.Millisecond), float64(dt.Microseconds())/n)
}
