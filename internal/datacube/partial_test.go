package datacube

import (
	"errors"
	"math"
	"testing"
)

// partialTestCube builds a deterministic rows×n cube for merge tests.
func partialTestCube(t *testing.T, e *Engine, rows, n int) *Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("m",
		[]Dimension{{Name: "cell", Size: rows}},
		Dimension{Name: "time", Size: n},
		func(row, tt int) float32 {
			return float32(math.Sin(float64(row*31+tt*7)) * 100)
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAggregateRowsPartialMergeParity splits a cube's rows at several
// points, merges the per-slice partials, and demands the distributed
// result match plain AggregateRows for every op with a registered
// merge. The single-slice case must match bit for bit.
func TestAggregateRowsPartialMergeParity(t *testing.T) {
	e := NewEngine(Config{Servers: 2, FragmentsPerCube: 3})
	defer e.Close()
	const rows, n = 12, 9
	full := partialTestCube(t, e, rows, n)

	for _, op := range RowOpMergeNames() {
		params := []float64{5} // threshold for count_above/count_below; ignored otherwise
		pm, _ := LookupRowOpMerge(op)
		partialOp := pm.PartialOp
		if partialOp == "" {
			partialOp = op
		}
		want, err := full.AggregateRows(op, params...)
		if err != nil {
			t.Fatalf("%s: aggrows: %v", op, err)
		}
		wantRow, err := want.Row(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, cuts := range [][]int{{rows}, {5, 7}, {3, 4, 5}, {1, 1, 10}} {
			var partials [][]float64
			var weights []int
			lo := 0
			for _, w := range cuts {
				part, err := full.SubsetRows(lo, lo+w)
				if err != nil {
					t.Fatal(err)
				}
				p, err := part.AggregateRowsPartial(partialOp, params...)
				if err != nil {
					t.Fatalf("%s: partial: %v", op, err)
				}
				partials = append(partials, p)
				weights = append(weights, w)
				lo += w
				_ = part.Delete()
			}
			got, err := MergeRowPartials(op, partials, weights, params)
			if err != nil {
				t.Fatalf("%s: merge: %v", op, err)
			}
			for tt := range got {
				if len(cuts) == 1 {
					if got[tt] != wantRow[tt] {
						t.Fatalf("%s single-slice t=%d: merged %v != plain %v", op, tt, got[tt], wantRow[tt])
					}
				} else if math.Abs(float64(got[tt])-float64(wantRow[tt])) > 1e-4*math.Max(1, math.Abs(float64(wantRow[tt]))) {
					t.Fatalf("%s cuts=%v t=%d: merged %v vs plain %v", op, cuts, tt, got[tt], wantRow[tt])
				}
			}
		}
		_ = want.Delete()
	}
}

func TestAggregateRowsPartialMatchesEagerBitwise(t *testing.T) {
	e := NewEngine(Config{Servers: 1})
	defer e.Close()
	c := partialTestCube(t, e, 7, 5)
	for _, op := range []string{"sum", "avg", "max", "min", "std", "quantile"} {
		want, err := c.AggregateRows(op, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		row, _ := want.Row(0)
		p, err := c.AggregateRowsPartial(op, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		for tt := range row {
			if float32(p[tt]) != row[tt] {
				t.Fatalf("%s t=%d: partial %v rounds to %v, eager stored %v", op, tt, p[tt], float32(p[tt]), row[tt])
			}
		}
		_ = want.Delete()
	}
}

func TestMergeRowPartialsErrors(t *testing.T) {
	if _, err := MergeRowPartials("quantile", [][]float64{{1}}, []int{1}, nil); err == nil {
		t.Fatal("quantile has no decomposable merge; want error")
	}
	if _, err := MergeRowPartials("sum", [][]float64{{1, 2}, {3}}, []int{1, 1}, nil); err == nil {
		t.Fatal("ragged partials accepted")
	}
	if _, err := MergeRowPartials("sum", nil, nil, nil); err == nil {
		t.Fatal("empty partials accepted")
	}
}

func TestAggregateRowsPartialClosedEngine(t *testing.T) {
	e := NewEngine(Config{Servers: 1})
	c := partialTestCube(t, e, 4, 3)
	e.Close()
	if _, err := c.AggregateRowsPartial("sum"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestGetDeleteNotFoundSentinel(t *testing.T) {
	e := NewEngine(Config{Servers: 1})
	defer e.Close()
	if _, err := e.Get("cube-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: want ErrNotFound, got %v", err)
	}
	if err := e.Delete("cube-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete: want ErrNotFound, got %v", err)
	}
}
