package datacube

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file executes a plan's terminal fused segment coarse-first under
// a declared tolerance (Plan.Tolerance). The pass walks the source
// cube's resolution pyramid top-down: for each coarse block it
// evaluates the stage chain once on the tier's midpoint row while
// propagating a sound interval through every stage (interval.go,
// rowops_interval.go). Blocks whose worst-case error meets the
// tolerance broadcast the midpoint result to all covered output rows;
// the rest split into the next finer tier, bottoming out in exact
// per-row evaluation with the same compiled kernels the exact fused
// pass uses — so eps=0 plans never reach this code and stay
// byte-identical to full fidelity.

// istage is the interval form of one compiled row-local stage: it
// advances the midpoint row and the (lo, hi) bound rows together.
// level/crow identify the pyramid position so intercube stages can read
// the aligned tier of their second operand.
type istage struct {
	outLen  int
	scratch int // extra scratch floats (reducestride transposes 3 rows)
	run     func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, ext []float32, level, crow int)
}

// ierr combines two intervals under an intercube op.
func intercubeIval(op string) func(alo, ahi, blo, bhi float64) (float64, float64) {
	switch op {
	case "add":
		return func(alo, ahi, blo, bhi float64) (float64, float64) { return alo + blo, ahi + bhi }
	case "sub":
		return func(alo, ahi, blo, bhi float64) (float64, float64) { return alo - bhi, ahi - blo }
	case "mul":
		return imul
	case "div":
		return idiv
	}
	return nil
}

// compileIStage builds the interval kernel for one row-local step. ok
// is false when the step has no sound interval form (unknown interval
// row op, misaligned intercube operand, ...): the caller then abandons
// the coarse pass and falls back to exact execution. Shape validation
// already happened when the exact stage compiled.
func compileIStage(st planStep, src *Cube, inLen, levels int) (istage, bool) {
	switch st.op {
	case "apply":
		expr, err := compileCached(st.expr)
		if err != nil {
			return istage{}, false
		}
		return istage{
			outLen: inLen,
			run: func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, _ []float32, _, _ int) {
				for t := range srcM {
					dstM[t] = float32(expr.Eval(float64(srcM[t])))
					lo, hi := expr.EvalInterval(float64(srcLo[t]), float64(srcHi[t]))
					dstLo[t], dstHi[t] = float32(lo), float32(hi)
				}
			},
		}, true
	case "reduce", "reducegroup":
		group := st.group
		if st.op == "reduce" {
			group = inLen
		}
		rop, ok := LookupRowOp(st.rowOp)
		if !ok {
			return istage{}, false
		}
		ivf, ok := LookupRowOpInterval(st.rowOp)
		if !ok {
			return istage{}, false
		}
		outLen := inLen / group
		params := st.params
		return istage{
			outLen: outLen,
			run: func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, _ []float32, _, _ int) {
				for g := 0; g < outLen; g++ {
					a, b := g*group, (g+1)*group
					dstM[g] = float32(rop(srcM[a:b], params))
					lo, hi := ivf(srcLo[a:b], srcHi[a:b], params)
					dstLo[g], dstHi[g] = float32(lo), float32(hi)
				}
			},
		}, true
	case "reducestride":
		stride := st.group
		rop, ok := LookupRowOp(st.rowOp)
		if !ok {
			return istage{}, false
		}
		ivf, ok := LookupRowOpInterval(st.rowOp)
		if !ok {
			return istage{}, false
		}
		groups := inLen / stride
		params := st.params
		return istage{
			outLen: stride, scratch: 3 * inLen,
			run: func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, ext []float32, _, _ int) {
				tm, tl, th := ext[:inLen], ext[inLen:2*inLen], ext[2*inLen:3*inLen]
				for g := 0; g < groups; g++ {
					base := g * stride
					for k := 0; k < stride; k++ {
						tm[k*groups+g] = srcM[base+k]
						tl[k*groups+g] = srcLo[base+k]
						th[k*groups+g] = srcHi[base+k]
					}
				}
				for k := 0; k < stride; k++ {
					a, b := k*groups, (k+1)*groups
					dstM[k] = float32(rop(tm[a:b], params))
					lo, hi := ivf(tl[a:b], th[a:b], params)
					dstLo[k], dstHi[k] = float32(lo), float32(hi)
				}
			},
		}, true
	case "subset":
		lo, n := st.lo, st.hi-st.lo
		return istage{
			outLen: n,
			run: func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, _ []float32, _, _ int) {
				copy(dstM, srcM[lo:lo+n])
				copy(dstLo, srcLo[lo:lo+n])
				copy(dstHi, srcHi[lo:lo+n])
			},
		}, true
	case "intercube":
		other := st.other
		if other == nil || other.rows != src.rows {
			return istage{}, false
		}
		otiers := other.ensureTiers()
		if len(otiers) < levels {
			return istage{}, false
		}
		f, err := intercubeFunc(st.rowOp)
		if err != nil {
			return istage{}, false
		}
		iv := intercubeIval(st.rowOp)
		if iv == nil {
			return istage{}, false
		}
		return istage{
			outLen: inLen,
			run: func(dstM, dstLo, dstHi, srcM, srcLo, srcHi, _ []float32, level, crow int) {
				ot := &otiers[level-1]
				bm := ot.mean[crow*inLen : (crow+1)*inLen]
				sp := ot.spread[crow]
				for t := range srcM {
					dstM[t] = f(srcM[t], bm[t])
					blo, bhi := float64(bm[t]-sp), float64(bm[t]+sp)
					lo, hi := iv(float64(srcLo[t]), float64(srcHi[t]), blo, bhi)
					dstLo[t], dstHi[t] = float32(lo), float32(hi)
				}
			},
		}, true
	}
	return istage{}, false
}

// compileIChain compiles a run of steps to interval stages, mirroring
// the widths the exact compiler derived.
func compileIChain(steps []planStep, src *Cube, inLen, levels int) ([]istage, int, bool) {
	out := make([]istage, 0, len(steps))
	w := inLen
	for _, st := range steps {
		isg, ok := compileIStage(st, src, w, levels)
		if !ok {
			return nil, 0, false
		}
		out = append(out, isg)
		w = isg.outLen
	}
	return out, w, true
}

// runIChain advances the (mid, lo, hi) triple through a stage chain,
// ping-ponging intermediates between two triple buffers and writing the
// final stage into the dst triple. chain must be non-empty.
func runIChain(chain []istage, sM, sLo, sHi, dM, dLo, dHi []float32, tripA, tripB, ext []float32, level, crow int) {
	cM, cLo, cHi := sM, sLo, sHi
	last := len(chain) - 1
	for si := range chain {
		sg := &chain[si]
		oM, oLo, oHi := dM, dLo, dHi
		if si != last {
			buf := tripA
			if si%2 == 1 {
				buf = tripB
			}
			w := sg.outLen
			oM, oLo, oHi = buf[:w], buf[w:2*w], buf[2*w:3*w]
		}
		sg.run(oM, oLo, oHi, cM, cLo, cHi, ext, level, crow)
		cM, cLo, cHi = oM, oLo, oHi
	}
}

// tolerantPass executes the terminal fused segment coarse-first. It
// mirrors fusedPass's geometry (prefix chain plus optional branch
// chains, one output cube per branch) but partitions work over aligned
// pyramid blocks instead of fragments. ok=false means the pass could
// not run (pyramid disabled or a stage without an interval form) and
// the caller must fall back to the exact fused pass.
func (e *Engine) tolerantPass(src *Cube, prefixSteps []planStep, prefix []stage, branchPlans []*Plan, branchStages [][]stage, eps float64) ([]*Cube, bool, error) {
	tiers := src.ensureTiers()
	if len(tiers) == 0 {
		return nil, false, nil
	}
	levels := len(tiers)
	n := src.implicit.Size

	ipre, preLen, ok := compileIChain(prefixSteps, src, n, levels)
	if !ok {
		return nil, false, nil
	}
	linear := branchStages == nil
	if linear {
		branchStages = [][]stage{nil}
	}
	ibr := make([][]istage, len(branchStages))
	outW := make([]int, len(branchStages))
	for bi := range branchStages {
		var steps []planStep
		if branchPlans != nil && branchPlans[bi] != nil {
			steps = branchPlans[bi].steps
		}
		ch, w, ok := compileIChain(steps, src, preLen, levels)
		if !ok {
			return nil, false, nil
		}
		ibr[bi], outW[bi] = ch, w
	}

	// output cubes and provenance
	outs := make([]*Cube, len(branchStages))
	descs := make([]string, len(branchStages))
	workPerRow := 0
	for _, sg := range prefix {
		workPerRow += sg.work
	}
	maxW, maxExt := n, 0
	note := func(sgs []stage) {
		for _, sg := range sgs {
			if sg.outLen > maxW {
				maxW = sg.outLen
			}
			if 3*sg.scratch > maxExt { // interval path transposes 3 rows
				maxExt = 3 * sg.scratch
			}
		}
	}
	note(prefix)
	totOut := 0
	for bi, bs := range branchStages {
		note(bs)
		for _, sg := range bs {
			workPerRow += sg.work
		}
		if !linear && len(bs) == 0 {
			workPerRow += outW[bi]
		}
		outs[bi] = e.newCube(src.explicit, Dimension{Name: src.implicit.Name, Size: outW[bi]})
		outs[bi].measure = src.measure
		descs[bi] = tolerantDesc(prefix, bs, linear, eps)
		totOut += outW[bi]
	}

	// Scratch layout per task (all float32):
	//   srcLo/srcHi of the coarse row            2n
	//   interval triples: prefix-out, ping, pong 9*maxW
	//   per-branch final mids                    totOut
	//   final lo/hi of the branch being judged   2*maxW
	//   interval transpose scratch               maxExt
	//   exact-path ping-pong + prefix buffer     3*maxW
	//   exact-path transpose scratch             maxExt/3
	scratchLen := 2*n + 9*maxW + totOut + 2*maxW + maxExt + 3*maxW + maxExt/3

	topRows := tiers[levels-1].rows
	ntasks := 2 * e.cfg.Servers
	if ntasks > topRows {
		ntasks = topRows
	}

	var sp *obs.Span
	if e.cfg.Tracer != nil {
		sp = e.cfg.Tracer.Start("datacube.coarse_pass",
			obs.Attr{Key: "eps", Value: strconv.FormatFloat(eps, 'g', -1, 64)},
			obs.Attr{Key: "levels", Value: strconv.Itoa(levels)},
			obs.Attr{Key: "rows", Value: strconv.Itoa(src.rows)})
	}
	t0 := time.Now()
	var accepted, refined, exactRows atomic.Int64
	err := e.runTasks("tolerant", ntasks, func(task int) error {
		b0 := topRows * task / ntasks
		b1 := topRows * (task + 1) / ntasks
		sb := e.getScratch(scratchLen)
		defer e.putScratch(sb)
		buf := sb.buf
		cut := func(k int) []float32 { s := buf[:k]; buf = buf[k:]; return s }
		srcLo, srcHi := cut(n), cut(n)
		tripP, tripA, tripB := cut(3*maxW), cut(3*maxW), cut(3*maxW)
		finals := cut(totOut)
		finLo, finHi := cut(maxW), cut(maxW)
		iext := cut(maxExt)
		exA, exB, exP := cut(maxW), cut(maxW), cut(maxW)
		eext := cut(maxExt / 3)

		var tAccepted, tRefined, tExact, tCells int64

		// exact evaluation of one full-resolution row, identical kernels
		// to the exact fused pass
		exactRow := func(row int) {
			srow := src.rowSlice(row)
			if linear {
				runChain(prefix, srow, outs[0].rowSlice(row), exA, exB, eext, row)
			} else {
				base := srow
				if len(prefix) > 0 {
					runChain(prefix, srow, exP[:preLen], exA, exB, eext, row)
					base = exP[:preLen]
				}
				for bi, bs := range branchStages {
					dst := outs[bi].rowSlice(row)
					if len(bs) == 0 {
						copy(dst, base)
						continue
					}
					runChain(bs, base, dst, exA, exB, eext, row)
				}
			}
			tExact++
			tCells += int64(workPerRow)
		}

		var refine func(level, crow int)
		refine = func(level, crow int) {
			t := &tiers[level-1]
			srcM := t.mean[crow*n : (crow+1)*n]
			spv := t.spread[crow]
			for i, v := range srcM {
				srcLo[i], srcHi[i] = v-spv, v+spv
			}
			// interval evaluation costs roughly three row passes (mid,
			// lo, hi) regardless of acceptance
			tCells += 3 * int64(workPerRow)
			cM, cLo, cHi := srcM, srcLo, srcHi
			if len(ipre) > 0 {
				w := preLen
				pM, pLo, pHi := tripP[:w], tripP[w:2*w], tripP[2*w:3*w]
				runIChain(ipre, cM, cLo, cHi, pM, pLo, pHi, tripA, tripB, iext, level, crow)
				cM, cLo, cHi = pM, pLo, pHi
			}
			worst := 0.0
			off := 0
			for bi, ch := range ibr {
				w := outW[bi]
				fM := finals[off : off+w]
				off += w
				fLo, fHi := finLo[:w], finHi[:w]
				if len(ch) == 0 {
					copy(fM, cM[:w])
					copy(fLo, cLo[:w])
					copy(fHi, cHi[:w])
				} else {
					runIChain(ch, cM, cLo, cHi, fM, fLo, fHi, tripA, tripB, iext, level, crow)
				}
				for i := range fM {
					d := math.Max(float64(fHi[i]-fM[i]), float64(fM[i]-fLo[i]))
					if math.IsNaN(d) {
						d = math.Inf(1)
					}
					if d > worst {
						worst = d
					}
				}
			}
			r0 := crow * t.factor
			r1 := r0 + t.factor
			if r1 > src.rows {
				r1 = src.rows
			}
			if worst <= eps {
				off = 0
				for bi := range outs {
					w := outW[bi]
					fM := finals[off : off+w]
					off += w
					for r := r0; r < r1; r++ {
						copy(outs[bi].rowSlice(r), fM)
					}
				}
				tAccepted++
				return
			}
			tRefined++
			if level == 1 {
				for r := r0; r < r1; r++ {
					exactRow(r)
				}
				return
			}
			fine := &tiers[level-2]
			for child := 2 * crow; child <= 2*crow+1 && child < fine.rows; child++ {
				refine(level-1, child)
			}
		}

		for b := b0; b < b1; b++ {
			refine(levels, b)
		}
		e.addCells(tCells)
		accepted.Add(tAccepted)
		refined.Add(tRefined)
		exactRows.Add(tExact)
		return nil
	})
	if err != nil {
		// outputs were never registered; they drop for GC
		sp.EndErr(err)
		return nil, true, err
	}
	nstages := len(prefix)
	for _, bs := range branchStages {
		nstages += len(bs)
	}
	e.ops.Add(int64(nstages))
	e.met.tolerantPasses.Inc()
	e.met.tierHits.Add(float64(accepted.Load()))
	e.met.tierRefines.Add(float64(refined.Load()))
	e.met.rowsExact.Add(float64(exactRows.Load()))
	e.met.fusedSeconds.Observe(time.Since(t0).Seconds())
	if sp != nil {
		if refined.Load() > 0 {
			rsp := e.cfg.Tracer.Start("datacube.refine",
				obs.Attr{Key: "blocks", Value: strconv.FormatInt(refined.Load(), 10)},
				obs.Attr{Key: "exact_rows", Value: strconv.FormatInt(exactRows.Load(), 10)})
			rsp.End()
		}
		sp.End()
	}
	for bi := range outs {
		e.register(outs[bi], descs[bi])
	}
	return outs, true, nil
}

// tolerantDesc builds the provenance string of a coarse-first output.
func tolerantDesc(prefix, branch []stage, linear bool, eps float64) string {
	s := "tolerant[eps=" + strconv.FormatFloat(eps, 'g', -1, 64) + "]("
	first := true
	if linear || len(branch) == 0 {
		for _, sg := range prefix {
			if !first {
				s += "|"
			}
			s += sg.desc
			first = false
		}
	}
	for _, sg := range branch {
		if !first {
			s += "|"
		}
		s += sg.desc
		first = false
	}
	return s + ")"
}
