package datacube

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file compiles and executes fused passes for plan.go. One fused
// pass runs a chain of row-local stages over every fragment in a single
// fan-out: per row, intermediates live in pooled scratch buffers
// (float32, so rounding matches the eager materialized path bit for
// bit) and only the final stage writes to an allocated output cube.

// stage is one compiled row-local operator of a fused pass.
type stage struct {
	desc    string // eager-style provenance fragment
	inLen   int    // expected per-row input width
	outLen  int    // per-row output width
	scratch int    // extra scratch floats (reducestride transpose)
	work    int    // cells accounted per row (parity with the eager op)
	run     func(dst, src, ext []float32, row int)
}

// rowLocalOp reports whether op preserves row identity (output row r
// depends only on input row r) and can therefore join a fused pass.
func rowLocalOp(op string) bool {
	switch op {
	case "apply", "reduce", "reducegroup", "reducestride", "subset", "intercube":
		return true
	}
	return false
}

// intercubeFunc resolves the elementwise arithmetic of oph_intercube;
// shared by the eager operator and the fused compiler.
func intercubeFunc(op string) (func(a, b float32) float32, error) {
	switch op {
	case "add":
		return func(a, b float32) float32 { return a + b }, nil
	case "sub":
		return func(a, b float32) float32 { return a - b }, nil
	case "mul":
		return func(a, b float32) float32 { return a * b }, nil
	case "div":
		return func(a, b float32) float32 { return a / b }, nil
	}
	return nil, fmt.Errorf("datacube: unknown intercube op %q", op)
}

// compileStage validates one row-local step against the incoming shape
// (rows × inLen) and returns its kernel. Validation messages match the
// eager operators' so callers see identical errors on either path.
func compileStage(st planStep, rows, inLen int) (stage, error) {
	switch st.op {
	case "apply":
		expr, err := compileCached(st.expr)
		if err != nil {
			return stage{}, err
		}
		return stage{
			desc:  "apply(" + st.expr + ")",
			inLen: inLen, outLen: inLen, work: inLen,
			run: func(dst, src, _ []float32, _ int) {
				for t, v := range src {
					dst[t] = float32(expr.Eval(float64(v)))
				}
			},
		}, nil
	case "reduce", "reducegroup":
		group := st.group
		if st.op == "reduce" {
			group = inLen
		}
		rop, ok := LookupRowOp(st.rowOp)
		if !ok {
			return stage{}, fmt.Errorf("datacube: unknown row op %q (have %v)", st.rowOp, RowOpNames())
		}
		if group <= 0 || inLen%group != 0 {
			return stage{}, fmt.Errorf("datacube: group %d does not divide implicit length %d", group, inLen)
		}
		outLen := inLen / group
		params := st.params
		return stage{
			desc:  "reduce(" + st.rowOp + ",group=" + strconv.Itoa(group) + ")",
			inLen: inLen, outLen: outLen, work: inLen,
			run: func(dst, src, _ []float32, _ int) {
				for g := 0; g < outLen; g++ {
					dst[g] = float32(rop(src[g*group:(g+1)*group], params))
				}
			},
		}, nil
	case "reducestride":
		stride := st.group
		rop, ok := LookupRowOp(st.rowOp)
		if !ok {
			return stage{}, fmt.Errorf("datacube: unknown row op %q (have %v)", st.rowOp, RowOpNames())
		}
		if stride <= 0 || inLen%stride != 0 {
			return stage{}, fmt.Errorf("datacube: stride %d does not divide implicit length %d", stride, inLen)
		}
		groups := inLen / stride
		params := st.params
		return stage{
			desc:  "reducestride(" + st.rowOp + "," + strconv.Itoa(stride) + ")",
			inLen: inLen, outLen: stride, scratch: inLen, work: inLen,
			run: func(dst, src, ext []float32, _ int) {
				// transpose with sequential reads so each group's values
				// become contiguous, then reduce per output position
				for g := 0; g < groups; g++ {
					base := g * stride
					for k := 0; k < stride; k++ {
						ext[k*groups+g] = src[base+k]
					}
				}
				for k := 0; k < stride; k++ {
					dst[k] = float32(rop(ext[k*groups:(k+1)*groups], params))
				}
			},
		}, nil
	case "subset":
		if st.lo < 0 || st.hi > inLen || st.lo >= st.hi {
			return stage{}, fmt.Errorf("datacube: subset [%d,%d) out of range [0,%d)", st.lo, st.hi, inLen)
		}
		lo, n := st.lo, st.hi-st.lo
		return stage{
			desc:  "subset[" + strconv.Itoa(st.lo) + ":" + strconv.Itoa(st.hi) + "]",
			inLen: inLen, outLen: n, work: n,
			run: func(dst, src, _ []float32, _ int) {
				copy(dst, src[lo:lo+n])
			},
		}, nil
	case "intercube":
		other := st.other
		if other == nil {
			return stage{}, fmt.Errorf("datacube: intercube needs a second operand cube")
		}
		if rows != other.rows || inLen != other.implicit.Size {
			return stage{}, fmt.Errorf("datacube: shape mismatch: %dx%d vs %dx%d",
				rows, inLen, other.rows, other.implicit.Size)
		}
		f, err := intercubeFunc(st.rowOp)
		if err != nil {
			return stage{}, err
		}
		return stage{
			desc:  "intercube(" + st.rowOp + ")",
			inLen: inLen, outLen: inLen, work: inLen,
			run: func(dst, src, _ []float32, row int) {
				b := other.rowSlice(row)
				for t := range dst {
					dst[t] = f(src[t], b[t])
				}
			},
		}, nil
	}
	return stage{}, fmt.Errorf("datacube: operator %q cannot run in a fused pass", st.op)
}

// planExec is the mutable state of one Plan.run. A struct with methods
// (rather than closures over shared locals) keeps plan execution to one
// bookkeeping allocation — closure captures of reassigned variables
// would box each of them separately on the hot path.
type planExec struct {
	e       *Engine
	cur     *Cube
	curTemp bool
	temps   []*Cube
	pending []stage
	// pendingSteps mirrors pending with the raw recorded steps so a
	// terminal flush under Plan.Tolerance can compile interval kernels
	// (tolerance.go) for the same segment.
	pendingSteps []planStep
	inLen        int
}

// fail deletes every unkept intermediate and returns err.
func (x *planExec) fail(err error) ([]*Cube, error) {
	if x.curTemp {
		_ = x.cur.Delete()
	}
	x.deleteTemps()
	return nil, err
}

func (x *planExec) deleteTemps() {
	for _, c := range x.temps {
		_ = c.Delete()
	}
}

// shift makes next the chain value; the previous value, if it was an
// unkept intermediate, is deleted once the plan finishes.
func (x *planExec) shift(next *Cube, nextTemp bool) {
	if x.curTemp {
		x.temps = append(x.temps, x.cur)
	}
	x.cur, x.curTemp = next, nextTemp
}

// flush materializes the pending fused segment into a cube. eps > 0
// marks a terminal flush executing under Plan.Tolerance: the segment
// runs coarse-first over the source's resolution pyramid when every
// stage has an interval form, and exact otherwise.
func (x *planExec) flush(keep bool, eps float64) error {
	var outs []*Cube
	var err error
	if eps > 0 {
		var ran bool
		outs, ran, err = x.e.tolerantPass(x.cur, x.pendingSteps, x.pending, nil, nil, eps)
		if err != nil {
			return err
		}
		if !ran {
			outs, err = x.e.fusedPass(x.cur, x.pending, nil)
		}
	} else {
		outs, err = x.e.fusedPass(x.cur, x.pending, nil)
	}
	if err != nil {
		return err
	}
	x.shift(outs[0], !keep)
	x.pending = x.pending[:0]
	x.pendingSteps = x.pendingSteps[:0]
	return nil
}

// run walks the recorded steps, fusing maximal row-local segments and
// materializing at Keep boundaries and barrier operators. With
// branches, the remaining pending segment becomes the shared prefix of
// one multi-output pass.
func (p *Plan) run(branches []*Plan) ([]*Cube, error) {
	if p.executed {
		return nil, ErrPlanReused
	}
	p.executed = true
	if p.src == nil {
		return nil, fmt.Errorf("datacube: plan has no source cube (Branch chains only run under ExecuteBranches)")
	}
	if len(p.steps) == 0 && branches == nil {
		return nil, fmt.Errorf("datacube: empty plan")
	}
	x := &planExec{
		e:       p.src.engine,
		cur:     p.src,
		pending: make([]stage, 0, len(p.steps)),
		inLen:   p.src.implicit.Size,
	}

	for i, st := range p.steps {
		if rowLocalOp(st.op) {
			sg, err := compileStage(st, x.cur.rows, x.inLen)
			if err != nil {
				return x.fail(fmt.Errorf("datacube: plan step %d (%s): %w", i, st.op, err))
			}
			x.pending = append(x.pending, sg)
			x.pendingSteps = append(x.pendingSteps, st)
			x.inLen = sg.outLen
			if st.keep {
				// only a Keep on the very last step is a terminal flush
				// eligible for coarse-first execution
				eps := 0.0
				if i == len(p.steps)-1 && branches == nil {
					eps = p.tolerance
				}
				if err := x.flush(true, eps); err != nil {
					return x.fail(fmt.Errorf("datacube: plan step %d (%s): %w", i, st.op, err))
				}
			}
			continue
		}
		// barrier: materialize the pending segment, then run eagerly
		if len(x.pending) > 0 {
			if err := x.flush(false, 0); err != nil {
				return x.fail(fmt.Errorf("datacube: plan step %d (%s): %w", i, st.op, err))
			}
		}
		var next *Cube
		var err error
		switch st.op {
		case "subsetrows":
			next, err = x.cur.SubsetRows(st.lo, st.hi)
		case "aggrows":
			next, err = x.cur.AggregateRows(st.rowOp, st.params...)
		case "aggtrailing":
			next, err = x.cur.AggregateTrailing(st.rowOp, st.params...)
		default:
			err = fmt.Errorf("datacube: unknown plan op %q", st.op)
		}
		if err != nil {
			return x.fail(fmt.Errorf("datacube: plan step %d (%s): %w", i, st.op, err))
		}
		x.shift(next, !st.keep)
		x.inLen = next.implicit.Size
	}

	if branches == nil {
		if len(x.pending) > 0 {
			if err := x.flush(true, p.tolerance); err != nil {
				return x.fail(err)
			}
		}
		// the chain value is the result: retained even if it was marked
		// temporary (it only got that mark as a candidate intermediate)
		x.curTemp = false
		x.deleteTemps()
		return []*Cube{x.cur}, nil
	}

	// Multi-output pass: compile every branch against the prefix's
	// output shape before executing anything.
	branchStages := make([][]stage, len(branches))
	for bi, b := range branches {
		if b == nil {
			continue // empty branch: identity copy of the prefix output
		}
		if b.src != nil {
			return x.fail(fmt.Errorf("datacube: branch %d has its own source; build branches with Branch()", bi))
		}
		w := x.inLen
		branchStages[bi] = make([]stage, 0, len(b.steps))
		for si, st := range b.steps {
			if !rowLocalOp(st.op) {
				return x.fail(fmt.Errorf("datacube: branch %d step %d (%s): only row-local operators can join a fused branch", bi, si, st.op))
			}
			if st.keep {
				return x.fail(fmt.Errorf("datacube: branch %d step %d (%s): Keep is not supported inside branches", bi, si, st.op))
			}
			sg, err := compileStage(st, x.cur.rows, w)
			if err != nil {
				return x.fail(fmt.Errorf("datacube: branch %d step %d (%s): %w", bi, si, st.op, err))
			}
			branchStages[bi] = append(branchStages[bi], sg)
			w = sg.outLen
		}
	}
	var outs []*Cube
	var err error
	if p.tolerance > 0 {
		var ran bool
		outs, ran, err = x.e.tolerantPass(x.cur, x.pendingSteps, x.pending, branches, branchStages, p.tolerance)
		if err != nil {
			return x.fail(err)
		}
		if !ran {
			outs, err = x.e.fusedPass(x.cur, x.pending, branchStages)
		}
	} else {
		outs, err = x.e.fusedPass(x.cur, x.pending, branchStages)
	}
	if err != nil {
		return x.fail(err)
	}
	if x.curTemp {
		x.curTemp = false
		x.temps = append(x.temps, x.cur)
	}
	x.deleteTemps()
	return outs, nil
}

// scratchBuf wraps the pooled buffer in a pointer-stable box so
// sync.Pool round trips don't allocate a slice header per Put.
type scratchBuf struct{ buf []float32 }

var scratchPool = sync.Pool{New: func() any { return new(scratchBuf) }}

// getScratch returns a pooled buffer of at least n floats.
func (e *Engine) getScratch(n int) *scratchBuf {
	sb := scratchPool.Get().(*scratchBuf)
	if cap(sb.buf) < n {
		sb.buf = make([]float32, n)
		e.met.scratchMisses.Inc()
	} else {
		sb.buf = sb.buf[:n]
		e.met.scratchHits.Inc()
	}
	return sb
}

func (e *Engine) putScratch(sb *scratchBuf) { scratchPool.Put(sb) }

// runChain streams one row through a compiled stage chain: input → A →
// B → A → … → dst. input must not alias the ping-pong buffers.
func runChain(chain []stage, input, dst, bufA, bufB, ext []float32, row int) {
	cur := input
	last := len(chain) - 1
	for si := range chain {
		sg := &chain[si]
		out := dst
		if si != last {
			if si%2 == 0 {
				out = bufA[:sg.outLen]
			} else {
				out = bufB[:sg.outLen]
			}
		}
		sg.run(out, cur, ext, row)
		cur = out
	}
}

// fusedPass executes a prefix stage chain and optional branch chains in
// one sweep over src's fragments. With branches, the prefix runs once
// per row into scratch and every branch writes its own output cube —
// one fan-out, len(branches) output allocations, zero intermediate
// cubes. A nil branches slice means a single linear chain (prefix must
// then be non-empty).
func (e *Engine) fusedPass(src *Cube, prefix []stage, branches [][]stage) ([]*Cube, error) {
	linear := branches == nil
	if linear {
		branches = [][]stage{nil}
	}

	preLen := src.implicit.Size
	for _, sg := range prefix {
		preLen = sg.outLen
	}

	// per-output geometry, provenance and the pass-wide buffer sizing
	nstages := len(prefix)
	maxW, maxExt := src.implicit.Size, 0
	note := func(sgs []stage) {
		for _, sg := range sgs {
			if sg.outLen > maxW {
				maxW = sg.outLen
			}
			if sg.scratch > maxExt {
				maxExt = sg.scratch
			}
		}
	}
	note(prefix)
	outs := make([]*Cube, len(branches))
	descs := make([]string, len(branches))
	workPerRow := 0
	for _, sg := range prefix {
		workPerRow += sg.work
	}
	// Longest stage chain decides how many ping-pong buffers rows need:
	// a chain of n stages has n-1 intermediates (the prefix's last stage
	// writes the dedicated prefix buffer, a branch's last one the output
	// fragment), and intermediates alternate between two buffers.
	maxChain := len(prefix)
	for bi, bs := range branches {
		note(bs)
		nstages += len(bs)
		w := preLen
		nparts := len(bs)
		if linear {
			nparts += len(prefix)
		}
		for _, sg := range bs {
			w = sg.outLen
			workPerRow += sg.work
		}
		if !linear && len(bs) == 0 {
			workPerRow += w // the identity copy still touches the row
		}
		switch {
		case nparts == 0:
			descs[bi] = "fused()"
		case nparts == 1 && linear && len(prefix) == 1:
			descs[bi] = prefix[0].desc
		case nparts == 1:
			descs[bi] = bs[0].desc
		default:
			var sb strings.Builder
			n := len("fused()")
			if linear {
				for _, sg := range prefix {
					n += len(sg.desc) + 1
				}
			}
			for _, sg := range bs {
				n += len(sg.desc) + 1
			}
			sb.Grow(n)
			sb.WriteString("fused(")
			if linear {
				for pi, sg := range prefix {
					if pi > 0 {
						sb.WriteByte('|')
					}
					sb.WriteString(sg.desc)
				}
			}
			for si, sg := range bs {
				if si > 0 || (linear && len(prefix) > 0) {
					sb.WriteByte('|')
				}
				sb.WriteString(sg.desc)
			}
			sb.WriteByte(')')
			descs[bi] = sb.String()
		}
		if n := len(bs); n > maxChain {
			maxChain = n
		}
		outs[bi] = e.newCube(src.explicit, Dimension{Name: src.implicit.Name, Size: w})
		outs[bi].measure = src.measure
	}

	// Ping-pong buffers are only needed for chain intermediates; a
	// single-stage linear pass writes the output directly and borrows
	// nothing from the pool. The prefix of a branched pass needs its own
	// buffer because every branch re-reads its output.
	nbuf := maxChain - 1
	if nbuf > 2 {
		nbuf = 2
	}
	if nbuf < 0 {
		nbuf = 0
	}
	withPrefixBuf := !linear && len(prefix) > 0
	if withPrefixBuf {
		nbuf++
	}
	scratchLen := nbuf*maxW + maxExt

	var sp *obs.Span
	if e.cfg.Tracer != nil { // attrs cost allocations; skip them untraced
		sp = e.cfg.Tracer.Start("datacube.fused_pass",
			obs.Attr{Key: "stages", Value: strconv.Itoa(nstages)},
			obs.Attr{Key: "outputs", Value: strconv.Itoa(len(outs))},
			obs.Attr{Key: "rows", Value: strconv.Itoa(src.rows)})
	}
	t0 := time.Now()
	err := e.mapFragmentsIdx("fused", outs[0], func(fi int, fr *fragment) error {
		var bufA, bufB, bufP, ext []float32
		if scratchLen > 0 {
			sb := e.getScratch(scratchLen)
			defer e.putScratch(sb)
			buf, off := sb.buf, 0
			if withPrefixBuf {
				bufP, off = buf[off:off+maxW], off+maxW
			}
			switch nbuf - btoi(withPrefixBuf) {
			case 1:
				bufA, off = buf[off:off+maxW], off+maxW
			case 2:
				bufA, off = buf[off:off+maxW], off+maxW
				bufB, off = buf[off:off+maxW], off+maxW
			}
			if maxExt > 0 {
				ext = buf[off : off+maxExt]
			}
		}
		for r := 0; r < fr.rowCount; r++ {
			row := fr.rowStart + r
			srow := src.rowSlice(row)
			if linear {
				ow := outs[0].implicit.Size
				dst := fr.data[r*ow : (r+1)*ow]
				runChain(prefix, srow, dst, bufA, bufB, ext, row)
				continue
			}
			base := srow
			if len(prefix) > 0 {
				runChain(prefix, srow, bufP[:preLen], bufA, bufB, ext, row)
				base = bufP[:preLen]
			}
			for bi, bs := range branches {
				ofr := outs[bi].frags[fi]
				ow := outs[bi].implicit.Size
				dst := ofr.data[r*ow : (r+1)*ow]
				if len(bs) == 0 {
					copy(dst, base)
					continue
				}
				runChain(bs, base, dst, bufA, bufB, ext, row)
			}
		}
		e.addCells(int64(fr.rowCount * workPerRow))
		return nil
	})
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	// stage count preserves Ops parity with the eager operator-per-op
	// accounting; the fragment fan-out count is what fusion shrinks
	e.ops.Add(int64(nstages))
	e.met.fusedPasses.Inc()
	e.met.fusedStages.Add(float64(nstages))
	e.met.fusedSeconds.Observe(time.Since(t0).Seconds())
	sp.End()
	for bi := range outs {
		e.register(outs[bi], descs[bi])
	}
	return outs, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
