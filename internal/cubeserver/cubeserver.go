// Package cubeserver exposes a datacube.Engine over TCP, mirroring the
// Ophidia deployment of the paper's §4.2.2: "the client-side components
// (e.g., PyOphidia) dispatch the execution of the data processing tasks
// on the server-side, deployed near the HPC or Cloud infrastructure",
// with a front-end server in front of scalable in-memory I/O servers.
//
// Two codecs share the port. Legacy sessions speak gob — one
// request/response exchange at a time over the connection. New clients
// open with a 4-byte magic and speak the v2 protocol (wire.go):
// length-prefixed binary frames carrying request IDs, so many requests
// pipeline over one multiplexed connection (mux.go) and bulk payloads
// move as raw float blocks instead of reflected gob. The server sniffs
// the first byte of each connection to pick the codec, so either
// client generation works against either server generation. Cubes live
// server-side; clients hold lightweight handles, exactly as PyOphidia
// holds Ophidia PIDs.
package cubeserver

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/datacube"
	"repro/internal/obs"
)

// Request is one operation sent by a client.
type Request struct {
	// Op selects the operation: importfiles, apply, reduce, reducegroup,
	// subset, subsetrows, intercube, aggrows, row, values, scalar, list,
	// delete, export, setmeta, getmeta, stats, shape, ping — plus the
	// shard-plane operations importshard, aggpartial and putcube used by
	// the cubecluster coordinator.
	Op string

	CubeID  string
	OtherID string // second operand for intercube

	Paths       []string // importfiles
	Var         string   // importfiles: variable name
	ImplicitDim string   // importfiles: implicit dimension

	Expr   string    // apply
	RowOp  string    // reduce/reducegroup/aggrows / intercube op name
	Params []float64 // row-op parameters
	Group  int       // reducegroup
	Lo, Hi int       // subset / subsetrows
	Row    int       // row fetch

	Key, Value string // metadata
	Path       string // export target (server-side path)

	// Shard/Shards select this server's slice of the leading explicit
	// dimension for importshard: the server imports the files and keeps
	// rows [Shard·L/Shards, (Shard+1)·L/Shards) of the leading dim.
	Shard, Shards int

	// Values and Dims materialize a cube directly (Op "putcube"): Values
	// is the row-major payload, Dims the explicit dimensions, Var the
	// measure and ImplicitDim the implicit dimension's name.
	Values [][]float32
	Dims   []datacube.Dimension

	// Pipeline holds the steps of a server-side operator chain
	// (Op "pipeline").
	Pipeline []PipelineStep
}

// Shape describes a cube handle to the client.
type Shape struct {
	CubeID      string
	Rows        int
	ImplicitLen int
	Fragments   int
	Measure     string
	// ExplicitDims and ImplicitName carry the full dimensional identity
	// so a coordinator can track placement and re-materialize replicas
	// without guessing.
	ExplicitDims []datacube.Dimension
	ImplicitName string
}

// Response carries the result of one Request.
type Response struct {
	Err string
	// ErrCode classifies Err into a stable wire code (see errors.go) so
	// clients can restore the sentinel with errors.Is; empty for
	// unclassified failures.
	ErrCode string
	Shape   Shape
	Values  [][]float32
	// Partials are the float64 shard-local reduction outputs of
	// aggpartial (full precision; never rounded through a cube).
	Partials []float64
	Scalar   float64
	IDs      []string
	Value    string
	Found    bool
	Stats    datacube.Stats
	// Resident (list) maps cube ID → resident payload bytes, including
	// built pyramid tiers; ResidentTotal (list, stats) is their sum —
	// the figure the server's byte budget is enforced against.
	Resident      map[string]int64
	ResidentTotal int64
}

// Dispatcher executes one wire request. EngineDispatcher serves a
// single engine; cubecluster's coordinator implements the same
// interface over a fleet of shards, so cubecli pipelines run unchanged
// against either.
type Dispatcher interface {
	Dispatch(req *Request) *Response
}

// srvMetrics instruments the transport layer itself (the dispatcher
// reports its own failures inside responses).
type srvMetrics struct {
	protoErrs    *obs.Counter
	connTimeouts *obs.Counter
	wireIn       *obs.CounterVec // bytes read, by codec
	wireOut      *obs.CounterVec // bytes written, by codec
	conns        *obs.CounterVec // connections negotiated, by codec
	inflight     *obs.Gauge
}

func newSrvMetrics(reg *obs.Registry) *srvMetrics {
	return &srvMetrics{
		protoErrs: reg.Counter("cubeserver_proto_errors_total",
			"requests dropped on decode failure or replies lost on encode failure"),
		connTimeouts: reg.Counter("cubeserver_conn_timeouts_total",
			"connections closed after an idle/read/write deadline expired"),
		wireIn: reg.CounterVec("cubeserver_wire_bytes_in_total",
			"bytes read off client connections", "codec"),
		wireOut: reg.CounterVec("cubeserver_wire_bytes_out_total",
			"bytes written to client connections", "codec"),
		conns: reg.CounterVec("cubeserver_conns_total",
			"client connections accepted, by negotiated codec", "codec"),
		inflight: reg.Gauge("cubeserver_inflight_requests",
			"requests currently executing in v2 per-connection workers"),
	}
}

// Options tunes a server's connection handling. The zero value asks
// for defaults everywhere.
type Options struct {
	// GobOnly disables v2 negotiation: every connection is treated as a
	// legacy gob session. A v2 client's magic bytes then fail the gob
	// decode and the connection drops, which is exactly how a pre-v2
	// server behaves — the knob exists so mixed-version interop is
	// testable against a current binary.
	GobOnly bool
	// IdleTimeout closes connections with no request activity for this
	// long (default 2m; negative disables). v2 connections with requests
	// still executing are not idle and are left alone.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30s; negative
	// disables). A peer that stops draining its socket is cut off
	// instead of pinning a handler goroutine forever.
	WriteTimeout time.Duration
	// MaxConcurrent caps in-flight requests per v2 connection (default
	// 64); excess frames queue in the read loop.
	MaxConcurrent int
}

func (o Options) withDefaults() Options {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	return o
}

// Server wraps a dispatcher behind a TCP listener.
type Server struct {
	disp   Dispatcher
	ln     net.Listener
	met    *srvMetrics
	opts   Options
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port)
// backed by the given engine. The returned server is already accepting.
func Serve(addr string, engine *datacube.Engine) (*Server, error) {
	return ServeDispatcher(addr, EngineDispatcher(engine), nil)
}

// ServeDispatcher starts a server on addr routing every request through
// d with default Options. reg (optional) receives the server's
// transport instruments.
func ServeDispatcher(addr string, d Dispatcher, reg *obs.Registry) (*Server, error) {
	return ServeOptions(addr, d, reg, Options{})
}

// ServeOptions starts a server with explicit connection-handling
// options.
func ServeOptions(addr string, d Dispatcher, reg *obs.Registry, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{disp: d, ln: ln, met: newSrvMetrics(reg), opts: opts.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address, for clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes live connections and waits for handler
// goroutines to drain. The engine is left running (caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// armIdle sets the connection's read deadline to the idle horizon.
func (s *Server) armIdle(conn net.Conn) {
	if s.opts.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
}

// armWrite sets the connection's write deadline for one response.
func (s *Server) armWrite(conn net.Conn) {
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// connDone reports whether a read/write error is a clean end of
// session (peer hangup, or our own Close tearing the conn down) rather
// than a protocol failure worth counting.
func connDone(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	mr := &meteredCounter{}
	mw := &meteredCounter{}
	br := bufio.NewReaderSize(&meteredReader{r: conn, m: mr}, 64<<10)
	w := &meteredWriter{w: conn, m: mw}

	codec := "gob"
	if !s.opts.GobOnly {
		// Sniff the codec from the first byte: gob's leading uvarint is
		// never zero, so 0x00 can only be the v2 magic.
		s.armIdle(conn)
		first, err := br.Peek(1)
		if err != nil {
			switch {
			case isTimeout(err):
				s.met.connTimeouts.Inc()
			case !connDone(err):
				s.met.protoErrs.Inc()
			}
			return
		}
		if first[0] == wireMagic[0] {
			var magic [4]byte
			if _, err := io.ReadFull(br, magic[:]); err != nil || magic != wireMagic {
				s.met.protoErrs.Inc()
				return
			}
			codec = "v2"
		}
	}
	mr.attach(s.met.wireIn.With(codec))
	mw.attach(s.met.wireOut.With(codec))
	s.met.conns.With(codec).Inc()

	if codec == "v2" {
		// Ack the magic so the client commits to v2, then hand off to the
		// multiplexed frame loop (wire_server.go).
		s.armWrite(conn)
		if _, err := w.Write(wireMagic[:]); err != nil {
			return
		}
		s.handleV2(conn, br, w)
		return
	}
	s.handleGob(conn, br, w)
}

// handleGob serves one legacy gob session: strictly serial
// request/response exchanges.
func (s *Server) handleGob(conn net.Conn, br *bufio.Reader, w io.Writer) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(w)
	for {
		s.armIdle(conn)
		var req Request
		if err := dec.Decode(&req); err != nil {
			// A clean hangup (EOF) is the normal end of a session. A
			// deadline expiry means the peer went quiet — idle, or stalled
			// mid-frame — and is counted as a timeout. Anything else is a
			// protocol failure: garbage bytes, truncated frame.
			switch {
			case isTimeout(err):
				s.met.connTimeouts.Inc()
			case !connDone(err):
				s.met.protoErrs.Inc()
			}
			return
		}
		resp := s.disp.Dispatch(&req)
		s.armWrite(conn)
		if err := enc.Encode(resp); err != nil {
			if isTimeout(err) {
				s.met.connTimeouts.Inc()
			} else {
				s.met.protoErrs.Inc()
			}
			return
		}
	}
}

func shapeOf(c *datacube.Cube) Shape {
	return Shape{
		CubeID:       c.ID(),
		Rows:         c.Rows(),
		ImplicitLen:  c.ImplicitLen(),
		Fragments:    c.Fragments(),
		Measure:      c.Measure(),
		ExplicitDims: c.ExplicitDims(),
		ImplicitName: c.ImplicitDim().Name,
	}
}

// engineDispatcher maps wire requests onto a single datacube.Engine.
type engineDispatcher struct {
	engine *datacube.Engine
}

// EngineDispatcher exposes an engine as a Dispatcher — the classic
// one-server deployment, and the per-shard worker of a cubecluster.
func EngineDispatcher(e *datacube.Engine) Dispatcher { return &engineDispatcher{engine: e} }

func (s *engineDispatcher) Dispatch(req *Request) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		resp.ErrCode = ErrCodeOf(err)
		return resp
	}
	cube := func(id string) (*datacube.Cube, error) { return s.engine.Get(id) }

	switch req.Op {
	case "ping":
		resp.Value = "pong"
	case "importfiles":
		c, err := s.engine.ImportFiles(req.Paths, req.Var, req.ImplicitDim)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(c)
	case "apply":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.Apply(req.Expr)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "reduce":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.Reduce(req.RowOp, req.Params...)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "reducegroup":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.ReduceGroup(req.RowOp, req.Group, req.Params...)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "reducestride":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.ReduceStride(req.RowOp, req.Group, req.Params...)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "subset":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.Subset(req.Lo, req.Hi)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "subsetrows":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.SubsetRows(req.Lo, req.Hi)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "intercube":
		a, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		b, err := cube(req.OtherID)
		if err != nil {
			return fail(err)
		}
		out, err := a.Intercube(b, req.RowOp)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "aggrows":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		out, err := c.AggregateRows(req.RowOp, req.Params...)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "row":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		row, err := c.Row(req.Row)
		if err != nil {
			return fail(err)
		}
		resp.Values = [][]float32{row}
	case "values":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		resp.Values = c.Values()
		resp.Shape = shapeOf(c)
	case "scalar":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		v, err := c.Scalar()
		if err != nil {
			return fail(err)
		}
		resp.Scalar = v
	case "shape":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(c)
	case "list":
		resp.IDs = s.engine.List()
		resp.Resident = make(map[string]int64, len(resp.IDs))
		for _, id := range resp.IDs {
			if c, err := s.engine.Get(id); err == nil {
				b := c.Bytes()
				resp.Resident[id] = b
				resp.ResidentTotal += b
			}
		}
	case "delete":
		if err := s.engine.Delete(req.CubeID); err != nil {
			return fail(err)
		}
	case "export":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		if err := c.ExportFile(req.Path); err != nil {
			return fail(err)
		}
	case "setmeta":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		c.SetMeta(req.Key, req.Value)
	case "getmeta":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		resp.Value, resp.Found = c.Meta(req.Key)
	case "pipeline":
		out, err := runPipeline(s.engine, &PipelineRequest{CubeID: req.CubeID, Steps: req.Pipeline})
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(out)
	case "stats":
		resp.Stats = s.engine.Stats()
		resp.ResidentTotal = s.engine.MemoryBytes()
	case "aggpartial":
		c, err := cube(req.CubeID)
		if err != nil {
			return fail(err)
		}
		p, err := c.AggregateRowsPartial(req.RowOp, req.Params...)
		if err != nil {
			return fail(err)
		}
		resp.Partials = p
		resp.Shape = shapeOf(c)
	case "putcube":
		c, err := putCube(s.engine, req)
		if err != nil {
			return fail(err)
		}
		resp.Shape = shapeOf(c)
	case "importshard":
		c, found, err := importShard(s.engine, req)
		if err != nil {
			return fail(err)
		}
		resp.Found = found
		if found {
			resp.Shape = shapeOf(c)
		}
	default:
		return fail(fmt.Errorf("%w %q", ErrUnknownOp, req.Op))
	}
	return resp
}

// putCube materializes a cube directly from wire values — how the
// cluster coordinator re-seeds a healed replica or lands a merged
// aggregation on its home shard.
func putCube(engine *datacube.Engine, req *Request) (*datacube.Cube, error) {
	rows := 1
	for _, d := range req.Dims {
		rows *= d.Size
	}
	if len(req.Values) != rows {
		return nil, fmt.Errorf("cubeserver: putcube got %d rows, dims say %d", len(req.Values), rows)
	}
	width := 0
	if len(req.Values) > 0 {
		width = len(req.Values[0])
	}
	for i, r := range req.Values {
		if len(r) != width {
			return nil, fmt.Errorf("cubeserver: putcube row %d has %d values, want %d", i, len(r), width)
		}
	}
	implicit := req.ImplicitDim
	if implicit == "" {
		implicit = "implicit"
	}
	return engine.NewCubeFromFunc(req.Var, req.Dims,
		datacube.Dimension{Name: implicit, Size: width},
		func(row, t int) float32 { return req.Values[row][t] })
}

// importShard imports files and keeps only this shard's contiguous
// slice of the leading explicit dimension — rows
// [Shard·L/Shards, (Shard+1)·L/Shards). Rowless cubes (no explicit
// dims) cannot be split; they land whole on shard 0 and found=false
// everywhere else. found=false is also returned for an empty slice
// (more shards than leading-dim entries).
func importShard(engine *datacube.Engine, req *Request) (*datacube.Cube, bool, error) {
	if req.Shards <= 0 || req.Shard < 0 || req.Shard >= req.Shards {
		return nil, false, fmt.Errorf("cubeserver: importshard shard %d of %d out of range", req.Shard, req.Shards)
	}
	full, err := engine.ImportFiles(req.Paths, req.Var, req.ImplicitDim)
	if err != nil {
		return nil, false, err
	}
	dims := full.ExplicitDims()
	if len(dims) == 0 {
		if req.Shard == 0 {
			return full, true, nil
		}
		_ = full.Delete()
		return nil, false, nil
	}
	l := dims[0].Size
	lo, hi := req.Shard*l/req.Shards, (req.Shard+1)*l/req.Shards
	if lo >= hi {
		_ = full.Delete()
		return nil, false, nil
	}
	part, err := full.SubsetRows(lo, hi)
	if err != nil {
		_ = full.Delete()
		return nil, false, err
	}
	_ = full.Delete()
	return part, true, nil
}

// Client is a connection to a Server. It is safe for concurrent use.
// Against a v2 server the client multiplexes: concurrent Do calls
// pipeline over one connection instead of queueing on a mutex. Against
// a legacy server it falls back to gob, serializing requests. After
// any transport failure the client is poisoned: the stream may be
// desynced, so the failing call reports the raw transport error once
// and every later call fails fast with ErrClientBroken instead of
// decoding a stale frame as its own reply.
type Client struct {
	mux *muxConn // non-nil when v2 was negotiated

	// Legacy gob session state. mu serializes exchanges; closeMu guards
	// Close separately so closing never waits behind an in-flight Do (the
	// conn teardown is what unblocks it).
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	err     error // first transport error; latched for the client's lifetime
	closeMu sync.Mutex
	closed  bool
}

// handshakeTimeout bounds version negotiation; servers answer the
// magic immediately, so a silent peer this long is not a v2 server.
const handshakeTimeout = 5 * time.Second

// Dial connects to a server, preferring the v2 protocol. The client
// probes with the 4-byte magic: a v2 server echoes it, a legacy server
// chokes on it (gob decode failure) and drops the probe connection, in
// which case the client re-dials speaking gob — so either server
// generation is reachable with no configuration.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if mux, ok := negotiateV2(conn); ok {
		return &Client{mux: mux}, nil
	}
	return DialGob(addr)
}

// DialGob connects speaking the legacy gob protocol unconditionally.
func DialGob(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// negotiateV2 runs the client side of version negotiation on a fresh
// connection: send the magic, wait for the echo. Any other outcome —
// hangup, garbage, or silence past the handshake deadline — burns the
// probe connection and reports v2 unavailable.
func negotiateV2(conn net.Conn) (*muxConn, bool) {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(wireMagic[:]); err != nil {
		conn.Close()
		return nil, false
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack != wireMagic {
		conn.Close()
		return nil, false
	}
	conn.SetDeadline(time.Time{})
	return newMuxConn(conn), true
}

// Codec reports which wire protocol the client negotiated ("v2" or
// "gob").
func (c *Client) Codec() string {
	if c.mux != nil {
		return "v2"
	}
	return "gob"
}

// Broken reports whether the client has been poisoned by a transport
// failure (or closed) and needs reconnecting.
func (c *Client) Broken() bool {
	if c.mux != nil {
		return c.mux.broken()
	}
	c.closeMu.Lock()
	closed := c.closed
	c.closeMu.Unlock()
	if closed {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// Close terminates the connection. It is idempotent and safe to call
// concurrently with in-flight Do calls, which fail with a transport
// error as the connection tears down.
func (c *Client) Close() error {
	if c.mux != nil {
		return c.mux.close()
	}
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Do performs one request/response exchange and returns the raw
// response; server-side failures arrive inside it (see ResponseError).
// A non-nil error is a transport failure and poisons the client.
func (c *Client) Do(req *Request) (*Response, error) {
	if c.mux != nil {
		return c.mux.do(req)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClientBroken, c.err)
	}
	if err := c.enc.Encode(req); err != nil {
		c.err = err
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("cubeserver: connection closed")
		}
		c.err = err
		return nil, err
	}
	return &resp, nil
}

func (c *Client) call(req *Request) (*Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if err := ResponseError(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.call(&Request{Op: "ping"})
	if err != nil {
		return err
	}
	if resp.Value != "pong" {
		return fmt.Errorf("cubeserver: unexpected ping reply %q", resp.Value)
	}
	return nil
}

// RemoteCube is a client-side handle to a server-resident cube.
type RemoteCube struct {
	client *Client
	Shape  Shape
}

// NewRemoteCube builds a handle to an existing server-side cube by ID,
// refreshing its shape from the server when reachable. Operations on a
// stale or unknown ID fail server-side with a clear error.
func NewRemoteCube(c *Client, id string) *RemoteCube {
	r := &RemoteCube{client: c, Shape: Shape{CubeID: id}}
	if resp, err := c.call(&Request{Op: "shape", CubeID: id}); err == nil {
		r.Shape = resp.Shape
	}
	return r
}

// ID returns the server-side cube identifier.
func (r *RemoteCube) ID() string { return r.Shape.CubeID }

func (c *Client) wrap(resp *Response) *RemoteCube {
	return &RemoteCube{client: c, Shape: resp.Shape}
}

// ImportFiles loads a variable from server-side files into a cube.
func (c *Client) ImportFiles(paths []string, varName, implicitDim string) (*RemoteCube, error) {
	resp, err := c.call(&Request{Op: "importfiles", Paths: paths, Var: varName, ImplicitDim: implicitDim})
	if err != nil {
		return nil, err
	}
	return c.wrap(resp), nil
}

// List returns resident cube IDs.
func (c *Client) List() ([]string, error) {
	resp, err := c.call(&Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Stats fetches engine counters.
func (c *Client) Stats() (datacube.Stats, error) {
	resp, err := c.call(&Request{Op: "stats"})
	if err != nil {
		return datacube.Stats{}, err
	}
	return resp.Stats, nil
}

// ResidentBytes reports per-cube resident payload bytes (including
// built pyramid tiers) and their total, as the server accounts them
// for byte-budget enforcement.
func (c *Client) ResidentBytes() (map[string]int64, int64, error) {
	resp, err := c.call(&Request{Op: "list"})
	if err != nil {
		return nil, 0, err
	}
	return resp.Resident, resp.ResidentTotal, nil
}

// Apply runs an elementwise expression server-side.
func (r *RemoteCube) Apply(expr string) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "apply", CubeID: r.ID(), Expr: expr})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// Reduce collapses the implicit axis with a named row op.
func (r *RemoteCube) Reduce(op string, params ...float64) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "reduce", CubeID: r.ID(), RowOp: op, Params: params})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// ReduceGroup reduces fixed-size groups along the implicit axis.
func (r *RemoteCube) ReduceGroup(op string, group int, params ...float64) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "reducegroup", CubeID: r.ID(), RowOp: op, Group: group, Params: params})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// ReduceStride reduces interleaved groups along the implicit axis
// (per-day-of-year statistics across stacked years).
func (r *RemoteCube) ReduceStride(op string, stride int, params ...float64) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "reducestride", CubeID: r.ID(), RowOp: op, Group: stride, Params: params})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// Subset selects an implicit-axis range.
func (r *RemoteCube) Subset(lo, hi int) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "subset", CubeID: r.ID(), Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// SubsetRows selects a leading-dimension row range.
func (r *RemoteCube) SubsetRows(lo, hi int) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "subsetrows", CubeID: r.ID(), Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// Intercube combines with another remote cube elementwise.
func (r *RemoteCube) Intercube(o *RemoteCube, op string) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "intercube", CubeID: r.ID(), OtherID: o.ID(), RowOp: op})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// AggregateRows reduces across rows.
func (r *RemoteCube) AggregateRows(op string, params ...float64) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "aggrows", CubeID: r.ID(), RowOp: op, Params: params})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}

// Row fetches one row's values.
func (r *RemoteCube) Row(row int) ([]float32, error) {
	resp, err := r.client.call(&Request{Op: "row", CubeID: r.ID(), Row: row})
	if err != nil {
		return nil, err
	}
	return resp.Values[0], nil
}

// Values fetches the whole cube (use sparingly; this is the
// synchronization point that moves data to the client).
func (r *RemoteCube) Values() ([][]float32, error) {
	resp, err := r.client.call(&Request{Op: "values", CubeID: r.ID()})
	if err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// Scalar fetches the single value of a 1×1 cube.
func (r *RemoteCube) Scalar() (float64, error) {
	resp, err := r.client.call(&Request{Op: "scalar", CubeID: r.ID()})
	if err != nil {
		return 0, err
	}
	return resp.Scalar, nil
}

// Delete frees the server-side cube.
func (r *RemoteCube) Delete() error {
	_, err := r.client.call(&Request{Op: "delete", CubeID: r.ID()})
	return err
}

// Export writes the cube to a server-side GNC1 file.
func (r *RemoteCube) Export(path string) error {
	_, err := r.client.call(&Request{Op: "export", CubeID: r.ID(), Path: path})
	return err
}

// SetMeta attaches metadata server-side.
func (r *RemoteCube) SetMeta(k, v string) error {
	_, err := r.client.call(&Request{Op: "setmeta", CubeID: r.ID(), Key: k, Value: v})
	return err
}

// Meta reads metadata.
func (r *RemoteCube) Meta(k string) (string, bool, error) {
	resp, err := r.client.call(&Request{Op: "getmeta", CubeID: r.ID(), Key: k})
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, nil
}
