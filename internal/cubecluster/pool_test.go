package cubecluster

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cubeserver"
	"repro/internal/datacube"
)

// tcpShard is one TCP replica: engine + server, reachable at addr.
type tcpShard struct {
	engine *datacube.Engine
	srv    *cubeserver.Server
}

func startTCPShard(t *testing.T) *tcpShard {
	t.Helper()
	engine := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	srv, err := cubeserver.Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); engine.Close() })
	return &tcpShard{engine: engine, srv: srv}
}

// poolCluster wires shards×replicas TCP replicas behind PoolTransports
// and returns the coordinator plus the replica grid (for killing).
func poolCluster(t *testing.T, shards, replicas, poolSize int) (*Cluster, [][]*tcpShard) {
	t.Helper()
	transports := make([][]Transport, shards)
	grid := make([][]*tcpShard, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			rep := startTCPShard(t)
			grid[s] = append(grid[s], rep)
			tr, err := DialPoolTransport(rep.srv.Addr(), poolSize)
			if err != nil {
				t.Fatal(err)
			}
			if got := tr.Codec(); got != "v2" {
				t.Fatalf("pool negotiated %q, want v2", got)
			}
			transports[s] = append(transports[s], tr)
		}
	}
	cl, err := New(Config{Replicas: replicas, SpoolDir: t.TempDir()}, transports)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, grid
}

// TestClusterOverV2TCPShards is the cluster equivalence suite on the
// new wire path: 1/2/4/8 shards behind pooled multiplexed v2
// transports, at tolerance 0 and eps>0, must reproduce the single
// engine exactly (DeepEqual) — the same bar the gob path set.
func TestClusterOverV2TCPShards(t *testing.T) {
	// lat=16, lon=4 → 64 rows; every shard split 1/2/4/8 lands part
	// offsets on multiples of 8, the coarsest-tier block size, so
	// tolerant runs stay aligned and comparable to the single engine.
	path := writeClusterFile(t, t.TempDir(), 16, 4, 16)
	pipe := func(tol float64) []cubeserver.PipelineStep {
		return []cubeserver.PipelineStep{
			{Op: "apply", Expr: "x-10"},
			{Op: "reducegroup", RowOp: "max", Group: 4, Tolerance: tol},
			{Op: "aggrows", RowOp: "avg"},
		}
	}
	for _, eps := range []float64{0, 0.5} {
		want := engineRef(t, []string{path}, pipe(eps))
		for _, shards := range []int{1, 2, 4, 8} {
			cl, _ := poolCluster(t, shards, 1, 2)
			got := clusterRun(t, cl, []string{path}, pipe(eps))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("eps=%g on %d v2 shards diverged from single engine:\ngot  %v\nwant %v",
					eps, shards, got, want)
			}
		}
	}
}

// TestClusterV2SentinelIdentity pins errors.Is identity across the
// full stack: client → coordinator over v2 TCP → shard over v2 TCP.
func TestClusterV2SentinelIdentity(t *testing.T) {
	cl, _ := poolCluster(t, 2, 1, 2)
	front, err := cubeserver.ServeDispatcher("127.0.0.1:0", cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	client, err := cubeserver.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Codec() != "v2" {
		t.Fatalf("front negotiated %q", client.Codec())
	}
	ghost := cubeserver.NewRemoteCube(client, "cube-404")
	if _, err := ghost.Apply("x+1"); !errors.Is(err, datacube.ErrNotFound) {
		t.Fatalf("want ErrNotFound through coordinator over v2, got %v", err)
	}
}

// TestPoolFailoverMidStream kills a replica's server process
// mid-workload while concurrent reads hammer the coordinator; the pool
// reports transport errors, the coordinator fails over to the
// surviving replica, and results stay byte-identical.
func TestPoolFailoverMidStream(t *testing.T) {
	path := writeClusterFile(t, t.TempDir(), 8, 4, 16)
	pipe := []cubeserver.PipelineStep{
		{Op: "apply", Expr: "x*2"},
		{Op: "reducegroup", RowOp: "max", Group: 4},
		{Op: "aggrows", RowOp: "avg"},
	}
	want := engineRef(t, []string{path}, pipe)

	cl, grid := poolCluster(t, 2, 2, 2)
	imp := mustDispatch(t, cl, &cubeserver.Request{Op: "importfiles", Paths: []string{path}, Var: "T", ImplicitDim: "time"})

	// Concurrent read load across the kill from several goroutines; the
	// coordinator serializes ops but the callers race the failure.
	var wg sync.WaitGroup
	killed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Primary replica of shard 1 dies mid-stream: server and engine
		// both go away, so pooled conns break and re-dials fail.
		grid[1][0].srv.Close()
		grid[1][0].engine.Close()
		close(killed)
	}()
	results := make([][][]float32, 4)
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 2 {
				<-killed // at least one run strictly after the kill
			}
			out := mustDispatch(t, cl, &cubeserver.Request{Op: "pipeline", CubeID: imp.Shape.CubeID, Pipeline: pipe})
			results[g] = mustDispatch(t, cl, &cubeserver.Request{Op: "values", CubeID: out.Shape.CubeID}).Values
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d across replica kill diverged:\ngot  %v\nwant %v", g, got, want)
		}
	}
}

// TestPoolEvictsAndRedials breaks every pooled connection by bouncing
// the server, then demands the pool heal itself against the restarted
// replica at the same address.
func TestPoolEvictsAndRedials(t *testing.T) {
	engine := datacube.NewEngine(datacube.Config{Servers: 1})
	defer engine.Close()
	srv, err := cubeserver.Serve("127.0.0.1:0", engine)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	pool, err := DialPoolTransport(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Do(&cubeserver.Request{Op: "ping"}); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// Every pooled conn is now broken; Do reports transport failures
	// until the replica returns.
	sawFailure := false
	for i := 0; i < 6; i++ {
		if _, err := pool.Do(&cubeserver.Request{Op: "ping"}); err != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("no transport failure reported while replica was down")
	}

	srv2, err := cubeserver.Serve(addr, engine)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ok := false
	for i := 0; i < 6 && !ok; i++ {
		_, err := pool.Do(&cubeserver.Request{Op: "ping"})
		ok = err == nil
	}
	if !ok {
		t.Fatal("pool never recovered after replica restart")
	}
}
