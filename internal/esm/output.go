package esm

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"repro/internal/ncdf"
)

// FileName returns the canonical daily output file name, e.g.
// "cm3_2040_d017.nc".
func FileName(year, dayOfYear int) string {
	return fmt.Sprintf("cm3_%04d_d%03d.nc", year, dayOfYear)
}

var fileRe = regexp.MustCompile(`^cm3_(\d{4})_d(\d{3})\.nc$`)

// ParseFileName extracts (year, dayOfYear) from a daily output path.
func ParseFileName(path string) (year, day int, ok bool) {
	m := fileRe.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0, 0, false
	}
	year, _ = strconv.Atoi(m[1])
	day, _ = strconv.Atoi(m[2])
	return year, day, true
}

// YearOf adapts ParseFileName for stream.YearBatcher.
func YearOf(path string) (int, bool) {
	y, _, ok := ParseFileName(path)
	return y, ok
}

// ToDataset converts a day's output into a GNC1 dataset with dims
// (time, lat, lon) and one variable per model field, matching the
// paper's daily-file contract.
func (d *DayOutput) ToDataset() (*ncdf.Dataset, error) {
	ds := ncdf.NewDataset()
	if err := ds.AddDim("time", StepsPerDay); err != nil {
		return nil, err
	}
	if err := ds.AddDim("lat", d.Grid.NLat); err != nil {
		return nil, err
	}
	if err := ds.AddDim("lon", d.Grid.NLon); err != nil {
		return nil, err
	}
	ds.Attrs["model"] = ncdf.String("CMCC-CM3-sim")
	ds.Attrs["year"] = ncdf.Int(int64(d.Year))
	ds.Attrs["day_of_year"] = ncdf.Int(int64(d.DayOfYear))
	ds.Attrs["steps_per_day"] = ncdf.Int(StepsPerDay)
	size := d.Grid.Size()
	for _, name := range Vars {
		data := make([]float32, StepsPerDay*size)
		for s := 0; s < StepsPerDay; s++ {
			f, ok := d.Steps[s][name]
			if !ok {
				return nil, fmt.Errorf("esm: missing variable %q at step %d", name, s)
			}
			copy(data[s*size:(s+1)*size], f.Data)
		}
		if _, err := ds.AddVar(name, []string{"time", "lat", "lon"}, data); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// WriteDay writes the day's output into dir using the canonical name
// and returns the file path.
func (d *DayOutput) WriteDay(dir string) (string, error) {
	path, _, err := d.writeDay(dir, nil)
	return path, err
}

// writeDay builds the day's dataset once, writes it to disk, and hands
// the same in-memory dataset to onDataset — so an in-memory consumer
// (the tensor-exchange publisher) never re-reads the file it just
// watched land.
func (d *DayOutput) writeDay(dir string, onDataset func(path string, d *DayOutput, ds *ncdf.Dataset) error) (string, *ncdf.Dataset, error) {
	ds, err := d.ToDataset()
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, FileName(d.Year, d.DayOfYear))
	if err := ncdf.WriteFile(path, ds); err != nil {
		return "", nil, err
	}
	if onDataset != nil {
		if err := onDataset(path, d, ds); err != nil {
			return "", nil, err
		}
	}
	return path, ds, nil
}

// RunOptions controls a full simulation-to-disk run.
type RunOptions struct {
	// Dir is the output directory (must exist).
	Dir string
	// InterDayDelay, when positive, sleeps between daily files so that
	// streaming consumers observe gradual production like a real ESM.
	InterDayDelay time.Duration
	// OnDay, when non-nil, is called with each file path after it lands.
	OnDay func(path string, d *DayOutput)
	// OnDataset, when non-nil, receives each day's in-memory dataset
	// right after its file lands — the zero-copy tap for publishing
	// model output to an in-memory exchange without re-reading the file.
	// The dataset's variable slices are shared with what was written;
	// consumers must treat them as read-only. An error aborts the run.
	OnDataset func(path string, d *DayOutput, ds *ncdf.Dataset) error
}

// Run executes the whole configured span, writing one file per day, and
// returns the paths in production order. It is the "CMCC-CM3 model
// simulation ... runs iteratively for producing the output data (one
// NetCDF file for each day of simulation) until the simulation run is
// completed" (paper step 3).
func (m *Model) Run(opt RunOptions) ([]string, error) {
	var paths []string
	for {
		d := m.StepDay()
		if d == nil {
			return paths, nil
		}
		p, _, err := d.writeDay(opt.Dir, opt.OnDataset)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
		if opt.OnDay != nil {
			opt.OnDay(p, d)
		}
		if opt.InterDayDelay > 0 {
			time.Sleep(opt.InterDayDelay)
		}
	}
}
