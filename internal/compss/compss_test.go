package compss

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
)

func newRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	rt := NewRuntime(Config{Workers: workers})
	t.Cleanup(func() { _ = rt.Shutdown() })
	return rt
}

func addTask(t *testing.T, rt *Runtime) *TaskDef {
	t.Helper()
	return rt.MustRegister(TaskDef{
		Name:    "add",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			sum := 0
			for _, a := range args {
				if a != nil {
					sum += a.(int)
				}
			}
			return []any{sum}, nil
		},
	})
}

func TestRegisterValidation(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := rt.Register(TaskDef{Name: "", Fn: func([]any) ([]any, error) { return nil, nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := rt.Register(TaskDef{Name: "x"}); err == nil {
		t.Fatal("nil fn accepted")
	}
	if _, err := rt.Register(TaskDef{Name: "neg", Fn: func([]any) ([]any, error) { return nil, nil }, Outputs: -1}); err == nil {
		t.Fatal("negative outputs accepted")
	}
	if _, err := rt.Register(TaskDef{Name: "dup", Fn: func([]any) ([]any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Register(TaskDef{Name: "dup", Fn: func([]any) ([]any, error) { return nil, nil }}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestInvokeUnregistered(t *testing.T) {
	rt := newRT(t, 1)
	foreign := &TaskDef{Name: "ghost", Fn: func([]any) ([]any, error) { return nil, nil }}
	if _, err := rt.Invoke(foreign); err == nil {
		t.Fatal("unregistered task accepted")
	}
}

func TestSimpleChainDependency(t *testing.T) {
	rt := newRT(t, 4)
	add := addTask(t, rt)
	f1, err := rt.InvokeOne(add, In(1), In(2))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := rt.InvokeOne(add, In(f1), In(10))
	if err != nil {
		t.Fatal(err)
	}
	v, err := f2.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 13 {
		t.Fatalf("result = %v, want 13", v)
	}
	if !rt.Graph().HasEdge(1, 2) {
		t.Fatal("dependency edge missing from graph")
	}
}

func TestFanOutParallelism(t *testing.T) {
	rt := newRT(t, 8)
	var inflight, peak int64
	par := rt.MustRegister(TaskDef{
		Name:    "par",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			n := atomic.AddInt64(&inflight, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt64(&inflight, -1)
			return []any{args[0]}, nil
		},
	})
	for i := 0; i < 8; i++ {
		if _, err := rt.InvokeOne(par, In(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", p)
	}
}

func TestWorkerLimitRespected(t *testing.T) {
	rt := newRT(t, 2)
	var inflight, peak int64
	par := rt.MustRegister(TaskDef{
		Name:    "lim",
		Outputs: 0,
		Fn: func(args []any) ([]any, error) {
			n := atomic.AddInt64(&inflight, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(3 * time.Millisecond)
			atomic.AddInt64(&inflight, -1)
			return nil, nil
		},
	})
	for i := 0; i < 10; i++ {
		if _, err := rt.Invoke(par); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 2 {
		t.Fatalf("peak concurrency = %d exceeds 2 workers", p)
	}
}

func TestMultiCoreConstraintNoDeadlock(t *testing.T) {
	rt := newRT(t, 4)
	wide := rt.MustRegister(TaskDef{
		Name:        "wide",
		Outputs:     0,
		Constraints: Constraints{Cores: 3},
		Fn: func(args []any) ([]any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		},
	})
	for i := 0; i < 6; i++ {
		if _, err := rt.Invoke(wide); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- rt.Barrier() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock with multi-core tasks")
	}
}

func TestConstraintWiderThanPoolClamped(t *testing.T) {
	rt := newRT(t, 2)
	huge := rt.MustRegister(TaskDef{
		Name:        "huge",
		Outputs:     1,
		Constraints: Constraints{Cores: 64},
		Fn:          func(args []any) ([]any, error) { return []any{"ok"}, nil },
	})
	f, err := rt.InvokeOne(huge)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.Get(); err != nil || v != "ok" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestSharedInOutChainSerialized(t *testing.T) {
	rt := newRT(t, 8)
	s := rt.NewShared("counter", 0)
	inc := rt.MustRegister(TaskDef{
		Name:    "inc",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			return []any{args[0].(int) + 1}, nil
		},
	})
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := rt.Invoke(inc, InOut(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := s.Value().(int); got != n {
		t.Fatalf("shared counter = %d, want %d (writers must serialize)", got, n)
	}
	if s.Version() != n {
		t.Fatalf("version = %d, want %d", s.Version(), n)
	}
}

func TestSharedReadersBlockLaterWriter(t *testing.T) {
	rt := newRT(t, 8)
	s := rt.NewShared("data", 100)
	var readSaw int64
	read := rt.MustRegister(TaskDef{
		Name:    "read",
		Outputs: 0,
		Fn: func(args []any) ([]any, error) {
			time.Sleep(5 * time.Millisecond)
			atomic.StoreInt64(&readSaw, int64(args[0].(int)))
			return nil, nil
		},
	})
	write := rt.MustRegister(TaskDef{
		Name:    "write",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			return []any{999}, nil
		},
	})
	if _, err := rt.Invoke(read, In(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(write, InOut(s)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&readSaw); got != 100 {
		t.Fatalf("reader saw %d, want 100 (WAR dependency violated)", got)
	}
	if s.Value().(int) != 999 {
		t.Fatalf("final value = %v, want 999", s.Value())
	}
}

func TestFutureMustBeIn(t *testing.T) {
	rt := newRT(t, 2)
	add := addTask(t, rt)
	f, err := rt.InvokeOne(add, In(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(add, Param{dir: DirInOut, val: f}); err == nil {
		t.Fatal("future with INOUT direction accepted")
	}
}

func TestFailFastAbortsWorkflow(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	boom := rt.MustRegister(TaskDef{
		Name:    "boom",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return nil, errors.New("kaput") },
	})
	add := rt.MustRegister(TaskDef{
		Name:    "after",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{1}, nil },
	})
	f, err := rt.InvokeOne(boom)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rt.InvokeOne(add, In(f))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("Barrier err = %v, want ErrWorkflowFailed", err)
	}
	if _, err := g.Get(); err == nil {
		t.Fatal("successor of failed task should error")
	}
	if _, err := rt.InvokeOne(add, In(1)); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("post-abort invoke err = %v", err)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	rt := newRT(t, 2)
	var attempts int64
	flaky := rt.MustRegister(TaskDef{
		Name:    "flaky",
		Outputs: 1,
		Retries: 3,
		Fn: func(args []any) ([]any, error) {
			if atomic.AddInt64(&attempts, 1) < 3 {
				return nil, errors.New("transient")
			}
			return []any{"recovered"}, nil
		},
	})
	f, err := rt.InvokeOne(flaky)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != "recovered" || atomic.LoadInt64(&attempts) != 3 {
		t.Fatalf("v=%v attempts=%d", v, attempts)
	}
}

func TestIgnorePolicyContinuesSuccessors(t *testing.T) {
	rt := newRT(t, 2)
	bad := rt.MustRegister(TaskDef{
		Name:      "bad",
		Outputs:   1,
		OnFailure: Ignore,
		Fn:        func(args []any) ([]any, error) { return nil, errors.New("nope") },
	})
	after := rt.MustRegister(TaskDef{
		Name:    "cont",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			if args[0] == nil {
				return []any{"ran with null input"}, nil
			}
			return []any{"unexpected"}, nil
		},
	})
	f, _ := rt.InvokeOne(bad)
	g, _ := rt.InvokeOne(after, In(f))
	if err := rt.Barrier(); err != nil {
		t.Fatalf("ignored failure must not fail workflow: %v", err)
	}
	v, err := g.Get()
	if err != nil || v != "ran with null input" {
		t.Fatalf("successor got %v, %v", v, err)
	}
	st := rt.Stats()
	if st.Ignored != 1 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCancelSuccessorsPolicy(t *testing.T) {
	rt := newRT(t, 4)
	bad := rt.MustRegister(TaskDef{
		Name:      "badcs",
		Outputs:   1,
		OnFailure: CancelSuccessors,
		Fn:        func(args []any) ([]any, error) { return nil, errors.New("dead branch") },
	})
	ok := rt.MustRegister(TaskDef{
		Name:    "okbranch",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{7}, nil },
	})
	dep := rt.MustRegister(TaskDef{
		Name:    "dep",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{args[0]}, nil },
	})
	fbad, _ := rt.InvokeOne(bad)
	fdep, _ := rt.InvokeOne(dep, In(fbad))
	fdep2, _ := rt.InvokeOne(dep, In(fdep)) // transitive successor
	fok, _ := rt.InvokeOne(ok)
	if err := rt.Barrier(); err != nil {
		t.Fatalf("cancel-successors must not abort workflow: %v", err)
	}
	if _, err := fdep.Get(); err == nil {
		t.Fatal("direct successor should be cancelled/failed")
	}
	if _, err := fdep2.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("transitive successor err = %v, want ErrCancelled", err)
	}
	if v, err := fok.Get(); err != nil || v.(int) != 7 {
		t.Fatalf("independent branch got %v, %v", v, err)
	}
	st := rt.Stats()
	if st.Cancelled < 1 || st.Failed != 1 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicIsolatedAsError(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	p := rt.MustRegister(TaskDef{
		Name:      "panics",
		Outputs:   1,
		OnFailure: Ignore,
		Fn:        func(args []any) ([]any, error) { panic("boom") },
	})
	f, _ := rt.InvokeOne(p)
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	if v, err := f.Get(); v != nil || err != nil {
		t.Fatalf("ignored panic got %v, %v", v, err)
	}
}

func TestWrongOutputCountIsFailure(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	p := rt.MustRegister(TaskDef{
		Name:    "short",
		Outputs: 2,
		Fn:      func(args []any) ([]any, error) { return []any{1}, nil },
	})
	if _, err := rt.Invoke(p); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("err = %v, want workflow failure for wrong arity", err)
	}
}

func TestTryGetAndDone(t *testing.T) {
	rt := newRT(t, 1)
	slow := rt.MustRegister(TaskDef{
		Name:    "slow",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			time.Sleep(20 * time.Millisecond)
			return []any{1}, nil
		},
	})
	f, _ := rt.InvokeOne(slow)
	if _, ok := f.TryGet(); ok {
		t.Fatal("TryGet should not resolve immediately")
	}
	if _, err := f.Get(); err != nil {
		t.Fatal(err)
	}
	if !f.Done() {
		t.Fatal("Done should be true after Get")
	}
	if v, ok := f.TryGet(); !ok || v.(int) != 1 {
		t.Fatalf("TryGet after done = %v, %v", v, ok)
	}
}

func TestGraphMatchesInvocations(t *testing.T) {
	rt := newRT(t, 4)
	add := addTask(t, rt)
	a, _ := rt.InvokeOne(add, In(1))
	b, _ := rt.InvokeOne(add, In(2))
	if _, err := rt.InvokeOne(add, In(a), In(b)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	if g.Len() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("graph %d nodes %d edges, want 3/2", g.Len(), g.EdgeCount())
	}
	w, err := g.MaxWidth()
	if err != nil || w != 2 {
		t.Fatalf("width = %d (%v), want 2", w, err)
	}
}

func TestTracingRecordsEvents(t *testing.T) {
	rt := newRT(t, 2)
	rt.EnableTracing()
	add := addTask(t, rt)
	if _, err := rt.InvokeOne(add, In(5)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	tr := rt.Trace()
	if len(tr) != 1 || tr[0].Task != "add" || tr[0].State != "DONE" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestClusterPlacementLocality(t *testing.T) {
	c := cluster.New(2, 4, 4096)
	rt := NewRuntime(Config{Workers: 4, Cluster: c})
	defer rt.Shutdown()
	produce := rt.MustRegister(TaskDef{
		Name:    "produce",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{42}, nil },
	})
	consume := rt.MustRegister(TaskDef{
		Name:    "consume",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{args[0]}, nil },
	})
	f, _ := rt.InvokeOne(produce)
	g, _ := rt.InvokeOne(consume, In(f))
	if _, err := g.Get(); err != nil {
		t.Fatal(err)
	}
	// The produced value was placed somewhere; the consumer should have
	// found it locally, so no transfer happened.
	if st := c.Stats(); st.Transfers != 0 {
		t.Fatalf("transfers = %d, want 0 (locality placement)", st.Transfers)
	}
}

func TestStatsCounts(t *testing.T) {
	rt := newRT(t, 2)
	add := addTask(t, rt)
	for i := 0; i < 5; i++ {
		if _, err := rt.InvokeOne(add, In(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Invoked != 5 || st.Done != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: a random two-layer fan graph always computes the same sums a
// sequential evaluation would.
func TestDeterministicResultsProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 24 {
			vals = vals[:24]
		}
		rt := NewRuntime(Config{Workers: 4})
		defer rt.Shutdown()
		add, _ := rt.Register(TaskDef{
			Name:    "add",
			Outputs: 1,
			Fn: func(args []any) ([]any, error) {
				s := 0
				for _, a := range args {
					s += a.(int)
				}
				return []any{s}, nil
			},
		})
		futs := make([]*Future, len(vals))
		want := 0
		for i, v := range vals {
			futs[i], _ = rt.InvokeOne(add, In(int(v)), In(i))
			want += int(v) + i
		}
		total, _ := rt.InvokeOne(add, futureParams(futs)...)
		got, err := total.Get()
		return err == nil && got.(int) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func futureParams(fs []*Future) []Param {
	out := make([]Param, len(fs))
	for i, f := range fs {
		out[i] = In(f)
	}
	return out
}

// Property: for any interleaving of reader and writer invocations on a
// Shared datum, every reader observes exactly the value produced by
// the writes invoked before it, and the final value equals the
// sequential sum — program order defines the dataflow, not execution
// timing.
func TestSharedOrderingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		rt := NewRuntime(Config{Workers: 4})
		defer rt.Shutdown()
		s := rt.NewShared("v", 0)
		addN := rt.MustRegister(TaskDef{
			Name:    "addn",
			Outputs: 1,
			Fn: func(args []any) ([]any, error) {
				return []any{args[0].(int) + args[1].(int)}, nil
			},
		})
		observe := rt.MustRegister(TaskDef{
			Name:    "observe",
			Outputs: 1,
			Fn: func(args []any) ([]any, error) {
				return []any{args[0].(int)}, nil
			},
		})
		type expectation struct {
			fut  *Future
			want int
		}
		var reads []expectation
		expected := 0
		for _, op := range ops {
			if op%3 == 0 { // write: add op
				inc := int(op)
				if _, err := rt.Invoke(addN, InOut(s), In(inc)); err != nil {
					return false
				}
				expected += inc
			} else { // read
				fut, err := rt.InvokeOne(observe, In(s))
				if err != nil {
					return false
				}
				reads = append(reads, expectation{fut: fut, want: expected})
			}
		}
		if err := rt.Barrier(); err != nil {
			return false
		}
		for _, r := range reads {
			v, err := r.fut.Get()
			if err != nil || v.(int) != r.want {
				return false
			}
		}
		return s.Value().(int) == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortCancelsPendingKeepsRunning(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	slow := rt.MustRegister(TaskDef{
		Name:    "slowabort",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			close(started)
			<-release
			return []any{"finished"}, nil
		},
	})
	quick := rt.MustRegister(TaskDef{
		Name:    "quickabort",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{1}, nil },
	})
	running, _ := rt.InvokeOne(slow)
	// a dependent waits on the running task and must be cancelled
	pending, _ := rt.InvokeOne(quick, In(running))
	<-started
	rt.Abort("operator stop")
	close(release)
	if err := rt.Barrier(); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("Barrier err = %v", err)
	}
	// the in-flight task completed normally
	if v, err := running.Get(); err != nil || v != "finished" {
		t.Fatalf("running task got %v, %v", v, err)
	}
	if _, err := pending.Get(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("pending task err = %v, want ErrCancelled", err)
	}
	if _, err := rt.InvokeOne(quick, In(1)); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("post-abort invoke err = %v", err)
	}
	rt.Abort("idempotent") // second abort is a no-op
}

func TestDirectionAndPolicyStrings(t *testing.T) {
	cases := map[string]string{
		DirIn.String():             "IN",
		DirOut.String():            "OUT",
		DirInOut.String():          "INOUT",
		FailFast.String():          "FAIL_FAST",
		Ignore.String():            "IGNORE",
		CancelSuccessors.String():  "CANCEL_SUCCESSORS",
		stateRecovered.String():    "RECOVERED",
		Direction(9).String():      "Direction(9)",
		FailurePolicy(9).String():  "FailurePolicy(9)",
		fmt.Sprint(taskState(99)):  "taskState(99)",
		fmt.Sprint(statePending):   "PENDING",
		fmt.Sprint(stateRunning):   "RUNNING",
		fmt.Sprint(stateReady):     "READY",
		fmt.Sprint(stateDone):      "DONE",
		fmt.Sprint(stateFailed):    "FAILED",
		fmt.Sprint(stateCancelled): "CANCELLED",
		fmt.Sprint(stateIgnored):   "IGNORED",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("string %q != %q", got, want)
		}
	}
}
