package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs seen.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs seen.\n",
		"# TYPE jobs_total counter\n",
		"jobs_total 3\n",
		"# TYPE depth gauge\n",
		"depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %v, want 3", c.Value())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "Help with \\ backslash\nand newline.", "path").
		With(`a\b"c` + "\nd").Inc()

	out := render(t, r)
	if !strings.Contains(out, `# HELP weird_total Help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 3` + "\n",
		`lat_seconds_bucket{le="10"} 4` + "\n",
		`lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"lat_seconds_sum 56.05\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[2] != 1 || s.Counts[3] != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	// An observation exactly on a bound lands in that bound's bucket.
	h2 := r.Histogram("edge_seconds", "Edge.", []float64{1, 2})
	h2.Observe(1)
	if s2 := h2.Snapshot(); s2.Counts[0] != 1 {
		t.Errorf("boundary observation in bucket %v, want bucket 0", s2.Counts)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("op_seconds", "Per-op time.", []float64{1}, "op")
	hv.With("apply").Observe(0.5)
	hv.With("reduce").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`op_seconds_bucket{op="apply",le="1"} 1`,
		`op_seconds_bucket{op="apply",le="+Inf"} 1`,
		`op_seconds_bucket{op="reduce",le="1"} 0`,
		`op_seconds_count{op="reduce"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("live_depth", "Computed at scrape.", func() float64 { return float64(depth) })
	if out := render(t, r); !strings.Contains(out, "live_depth 3\n") {
		t.Errorf("gauge func not rendered:\n%s", out)
	}
	depth = 9
	if out := render(t, r); !strings.Contains(out, "live_depth 9\n") {
		t.Errorf("gauge func not re-evaluated:\n%s", out)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("same-name counters not shared: %v", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

func TestZeroSampleFamilyEmitsHeader(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("sparse_total", "No children yet.", "site")
	out := render(t, r)
	if !strings.Contains(out, "# TYPE sparse_total counter\n") {
		t.Errorf("zero-child vec lost its header:\n%s", out)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	c.Inc() // must not panic
	r.Gauge("g", "h").Set(1)
	r.Histogram("h", "h", []float64{1}).Observe(2)
	r.HistogramVec("hv", "h", []float64{1}, "l").With("v").Observe(2)
	r.GaugeFunc("gf", "h", func() float64 { return 1 })
	var nilC *Counter
	nilC.Inc()
	var nilG *Gauge
	nilG.Set(1)
	var nilH *Histogram
	nilH.Observe(1)
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram snapshot = %+v", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", b.String(), err)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Errorf("handler body:\n%s", rec.Body.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	h := r.Histogram("conc_seconds", "h", []float64{0.5})
	gv := r.GaugeVec("conc_gauge", "h", "worker")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 2))
				gv.With("w").Set(float64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Errorf("concurrent counter = %v, want 8000", c.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("concurrent histogram count = %v, want 8000", s.Count)
	}
}
