package cubeserver

import (
	"testing"
)

func TestPipelineOneRoundTrip(t *testing.T) {
	client, engine := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, err := client.ImportFiles([]string{path}, "T", "time")
	if err != nil {
		t.Fatal(err)
	}
	before := len(engine.List())

	// Listing-1 chain server-side: mask → count, one network call
	out, err := cube.Pipeline(
		PipelineStep{Op: "apply", Expr: "x>5 ? 1 : 0"},
		PipelineStep{Op: "reduce", RowOp: "sum"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape.ImplicitLen != 1 {
		t.Fatalf("shape = %+v", out.Shape)
	}
	vals, err := out.Values()
	if err != nil {
		t.Fatal(err)
	}
	for cell, row := range vals {
		if row[0] != 1 { // each cell has one value > 5 (the t=1 sample)
			t.Fatalf("cell %d count = %v", cell, row)
		}
	}
	// the mask intermediate was deleted server-side: only the source
	// and the result were added
	if got := len(engine.List()); got != before+1 {
		t.Fatalf("resident cubes = %d, want %d (intermediate leaked)", got, before+1)
	}
}

func TestPipelineKeepRetainsIntermediate(t *testing.T) {
	client, engine := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, _ := client.ImportFiles([]string{path}, "T", "time")
	before := len(engine.List())
	if _, err := cube.Pipeline(
		PipelineStep{Op: "apply", Expr: "x*2", Keep: true},
		PipelineStep{Op: "reduce", RowOp: "max"},
	); err != nil {
		t.Fatal(err)
	}
	if got := len(engine.List()); got != before+2 {
		t.Fatalf("resident cubes = %d, want %d (kept intermediate missing)", got, before+2)
	}
}

func TestPipelineIntercubeAndGroups(t *testing.T) {
	client, _ := startServer(t)
	dir := t.TempDir()
	p1 := writeTestFile(t, dir, "a.nc")
	p2 := writeTestFile(t, dir, "b.nc")
	c1, _ := client.ImportFiles([]string{p1}, "T", "time")
	c2, _ := client.ImportFiles([]string{p2}, "T", "time")
	out, err := c1.Pipeline(
		PipelineStep{Op: "intercube", RowOp: "sub", OtherID: c2.ID()},
		PipelineStep{Op: "reducegroup", RowOp: "max", Group: 2},
		PipelineStep{Op: "aggrows", RowOp: "max"},
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := out.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 { // identical files → zero difference everywhere
		t.Fatalf("pipeline result = %v", v)
	}
}

func TestPipelineErrorsAtomic(t *testing.T) {
	client, engine := startServer(t)
	path := writeTestFile(t, t.TempDir(), "a.nc")
	cube, _ := client.ImportFiles([]string{path}, "T", "time")
	before := len(engine.List())
	// second step fails: the first step's intermediate must not leak
	if _, err := cube.Pipeline(
		PipelineStep{Op: "apply", Expr: "x+1"},
		PipelineStep{Op: "reduce", RowOp: "nosuchop"},
	); err == nil {
		t.Fatal("bad pipeline accepted")
	}
	if got := len(engine.List()); got != before {
		t.Fatalf("resident cubes = %d, want %d after failed pipeline", got, before)
	}
	if _, err := cube.Pipeline(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := cube.Pipeline(PipelineStep{Op: "teleport"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := cube.Pipeline(PipelineStep{Op: "intercube", RowOp: "add", OtherID: "cube-999"}); err == nil {
		t.Fatal("missing operand accepted")
	}
}
