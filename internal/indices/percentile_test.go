package indices

import (
	"testing"

	"repro/internal/datacube"
)

func TestReduceStrideAcrossYears(t *testing.T) {
	e := testEngine(t)
	// 2 rows, 3 "years" of 4 "days": value = year*100 + day
	c, err := e.NewCubeFromFunc("m",
		[]datacube.Dimension{{Name: "r", Size: 2}},
		datacube.Dimension{Name: "t", Size: 12},
		func(row, tt int) float32 { return float32((tt/4)*100 + tt%4) })
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ReduceStride("max", 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.ImplicitLen() != 4 {
		t.Fatalf("stride result len = %d", out.ImplicitLen())
	}
	row, _ := out.Row(0)
	for d := 0; d < 4; d++ {
		if row[d] != float32(200+d) { // max over years at day d
			t.Fatalf("day %d = %v, want %v", d, row[d], 200+d)
		}
	}
	if _, err := c.ReduceStride("max", 5); err == nil {
		t.Fatal("non-dividing stride accepted")
	}
	if _, err := c.ReduceStride("nosuch", 4); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestReduceStrideWide pins the cache-friendly transpose rewrite of
// ReduceStride on a wide stride (many output positions, few groups):
// avg and quantile must match a direct per-position computation.
func TestReduceStrideWide(t *testing.T) {
	e := testEngine(t)
	const rows, stride, groups = 3, 96, 5
	val := func(row, tt int) float32 {
		return float32(row*1000) + float32((tt*7919)%251) - 125
	}
	c, err := e.NewCubeFromFunc("wide",
		[]datacube.Dimension{{Name: "r", Size: rows}},
		datacube.Dimension{Name: "t", Size: stride * groups},
		val)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := c.ReduceStride("avg", stride)
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.ReduceStride("quantile", stride, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if avg.ImplicitLen() != stride || q.ImplicitLen() != stride {
		t.Fatalf("stride result len = %d / %d, want %d", avg.ImplicitLen(), q.ImplicitLen(), stride)
	}
	for r := 0; r < rows; r++ {
		got, _ := avg.Row(r)
		for d := 0; d < stride; d++ {
			sum := 0.0
			for g := 0; g < groups; g++ {
				sum += float64(val(r, g*stride+d))
			}
			want := float32(sum / groups)
			if got[d] != want {
				t.Fatalf("avg row %d pos %d = %v, want %v", r, d, got[d], want)
			}
		}
	}
}

func TestBuildPercentileBaseline(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 15
	b, err := BuildPercentileBaseline(e, g, days, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.TX90.Rows() != g.Size() || b.TX90.ImplicitLen() != days {
		t.Fatalf("TX90 shape = %dx%d", b.TX90.Rows(), b.TX90.ImplicitLen())
	}
	// TX90 (90th pct of maxima) must exceed TN10 (10th pct of minima)
	for r := 0; r < b.TX90.Rows(); r += 11 {
		hi, _ := b.TX90.Row(r)
		lo, _ := b.TN10.Row(r)
		for d := range hi {
			if hi[d] <= lo[d] {
				t.Fatalf("row %d day %d: TX90 %v <= TN10 %v", r, d, hi[d], lo[d])
			}
		}
	}
	if _, err := BuildPercentileBaseline(e, g, days, 1, 3); err == nil {
		t.Fatal("single-year climatology accepted")
	}
	if q, _ := b.TX90.Meta("quantile"); q != "0.9" {
		t.Fatalf("quantile meta = %q", q)
	}
}

func TestPercentileBaselineDeterministic(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	b1, err := BuildPercentileBaseline(e, g, 10, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildPercentileBaseline(e, g, 10, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := b1.TX90.Row(5)
	r2, _ := b2.TX90.Row(5)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed produced different baselines")
		}
	}
}

func TestETCCDIWarmSpell(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, err := BuildPercentileBaseline(e, g, days, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	hotRow := 9
	// a huge warm anomaly for 8 consecutive days in one cell
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row == hotRow && day >= 5 && day < 13 {
			return 15
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := ETCCDI(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()

	wsdi, _ := res.WSDI.Row(hotRow)
	if wsdi[0] < 8 {
		t.Fatalf("WSDI = %v, want >= 8 (the seeded spell)", wsdi)
	}
	tx90p, _ := res.TX90p.Row(hotRow)
	if tx90p[0] < 8.0/days {
		t.Fatalf("TX90p = %v, want >= %v", tx90p, 8.0/days)
	}
	// TX90p is a fraction
	for r := 0; r < res.TX90p.Rows(); r++ {
		v, _ := res.TX90p.Row(r)
		if v[0] < 0 || v[0] > 1 {
			t.Fatalf("TX90p[%d] = %v out of [0,1]", r, v)
		}
	}
}

func TestETCCDIColdSpell(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, _ := BuildPercentileBaseline(e, g, days, 6, 3)
	coldRow := 4
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row == coldRow && day >= 2 && day < 9 {
			return -15
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := ETCCDI(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()
	csdi, _ := res.CSDI.Row(coldRow)
	if csdi[0] < 7 {
		t.Fatalf("CSDI = %v, want >= 7", csdi)
	}
	tn10p, _ := res.TN10p.Row(coldRow)
	if tn10p[0] < 7.0/days {
		t.Fatalf("TN10p = %v", tn10p)
	}
}

func TestETCCDIQuiescentYearNearBaseRate(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, _ := BuildPercentileBaseline(e, g, days, 10, 3)
	// climatology exactly: no noise, no events — exceedances of a 90th
	// percentile should be rare
	temp := syntheticTempCube(t, e, g, days, func(int, int) float64 { return 0 })
	res, err := ETCCDI(temp, b, Params{DaysPerYear: days})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Delete()
	agg, _ := res.TX90p.AggregateRows("avg")
	defer agg.Delete()
	red, _ := agg.Reduce("avg")
	defer red.Delete()
	mean, _ := red.Scalar()
	if mean > 0.25 {
		t.Fatalf("quiescent TX90p mean = %v, want small", mean)
	}
}

func TestETCCDIShapeValidation(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	b, _ := BuildPercentileBaseline(e, g, 20, 4, 3)
	temp := syntheticTempCube(t, e, g, 10, func(int, int) float64 { return 0 })
	if _, err := ETCCDI(temp, b, Params{DaysPerYear: 20}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	temp2 := syntheticTempCube(t, e, g, 20, func(int, int) float64 { return 0 })
	b2, _ := BuildPercentileBaseline(e, g, 10, 4, 3)
	if _, err := ETCCDI(temp2, b2, Params{DaysPerYear: 20}); err == nil {
		t.Fatal("baseline mismatch accepted")
	}
}
