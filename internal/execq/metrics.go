package execq

import (
	"math"

	"repro/internal/obs"
)

// histBounds are the exponential latency bucket upper bounds in seconds.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// qmetrics holds the queue's instruments on the obs registry. With a
// nil registry the instruments are detached but still record, so
// Stats() works for an unexported queue too.
type qmetrics struct {
	submitted      *obs.Counter
	recovered      *obs.Counter
	journalSkipped *obs.Counter
	journalCompact *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	canceled       *obs.Counter
	retried        *obs.Counter
	rejectedFull   *obs.Counter
	rejectedQuota  *obs.Counter
	rejectedRate   *obs.Counter
	wait           *obs.Histogram
	run            *obs.Histogram
}

func newQMetrics(reg *obs.Registry) *qmetrics {
	rejected := reg.CounterVec("execq_rejected_total",
		"Jobs rejected at admission, by reason.", "reason")
	return &qmetrics{
		submitted:      reg.Counter("execq_submitted_total", "Jobs accepted by Submit."),
		recovered:      reg.Counter("execq_recovered_total", "Jobs re-enqueued from the journal at startup."),
		journalSkipped: reg.Counter("execq_journal_skipped_total", "Corrupt journal lines skipped during crash recovery."),
		journalCompact: reg.Counter("execq_journal_compactions_total", "Size-triggered journal compactions."),
		completed:      reg.Counter("execq_completed_total", "Jobs finished successfully."),
		failed:         reg.Counter("execq_failed_total", "Jobs failed terminally."),
		canceled:       reg.Counter("execq_canceled_total", "Jobs canceled."),
		retried:        reg.Counter("execq_retried_total", "Transient failures scheduled for retry."),
		rejectedFull:   rejected.With("full"),
		rejectedQuota:  rejected.With("quota"),
		rejectedRate:   rejected.With("rate"),
		wait:           reg.Histogram("execq_wait_seconds", "Enqueue-to-dispatch latency.", histBounds),
		run:            reg.Histogram("execq_run_seconds", "Dispatch-to-finish latency.", histBounds),
	}
}

// registerGauges exposes live queue state on the registry. One queue
// per registry: a second queue would overwrite these gauge functions.
func (q *Queue) registerGauges(reg *obs.Registry) {
	if reg == nil {
		return
	}
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("execq_queue_depth", "Jobs queued, not yet dispatched.",
		locked(func() float64 { return float64(len(q.heap)) }))
	reg.GaugeFunc("execq_running", "Jobs currently executing.",
		locked(func() float64 { return float64(q.running) }))
	reg.GaugeFunc("execq_retrying", "Jobs waiting out a retry backoff.",
		locked(func() float64 { return float64(q.retrying) }))
	reg.GaugeFunc("execq_draining", "1 while the queue refuses new work.",
		locked(func() float64 {
			if q.draining || q.closed {
				return 1
			}
			return 0
		}))
	reg.GaugeFunc("execq_workers", "Configured worker-pool size.",
		func() float64 { return float64(q.cfg.Workers) })
	reg.GaugeFunc("execq_queue_capacity", "Configured queue depth bound.",
		func() float64 { return float64(q.cfg.QueueDepth) })
}

// quantileOf approximates the q-th quantile (0..1) of a histogram
// snapshot (shared bucket-interpolation logic lives on the snapshot).
func quantileOf(s obs.HistogramSnapshot, q float64) float64 {
	return s.Quantile(q)
}

// HistogramSummary is the JSON-friendly snapshot of one latency
// histogram.
type HistogramSummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// BoundsSeconds[i] is the upper bound of Counts[i]; the final
	// Counts entry is the overflow bucket.
	BoundsSeconds []float64 `json:"bounds_seconds"`
	Counts        []uint64  `json:"counts"`
}

func summarize(h *obs.Histogram) HistogramSummary {
	snap := h.Snapshot()
	s := HistogramSummary{
		Count:         snap.Count,
		P50Seconds:    round6(quantileOf(snap, 0.50)),
		P90Seconds:    round6(quantileOf(snap, 0.90)),
		P99Seconds:    round6(quantileOf(snap, 0.99)),
		BoundsSeconds: snap.Bounds,
		Counts:        snap.Counts,
	}
	if snap.Count > 0 {
		s.MeanSeconds = round6(snap.Sum / float64(snap.Count))
	}
	return s
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Stats is a point-in-time snapshot of queue state, counters and
// latency histograms (wait = enqueue→dispatch, run = dispatch→finish).
type Stats struct {
	Workers      int            `json:"workers"`
	Capacity     int            `json:"capacity"`
	Depth        int            `json:"depth"`
	Running      int            `json:"running"`
	Retrying     int            `json:"retrying"`
	Draining     bool           `json:"draining"`
	PerPrincipal map[string]int `json:"per_principal,omitempty"`
	Submitted    uint64         `json:"submitted"`
	Recovered    uint64         `json:"recovered"`
	// JournalSkipped counts corrupt journal lines skipped during crash
	// recovery — a non-zero value is the counted warning that some state
	// transitions were lost to torn or garbled writes.
	JournalSkipped uint64 `json:"journal_skipped,omitempty"`
	// JournalCompactions counts size-triggered journal rewrites.
	JournalCompactions uint64 `json:"journal_compactions,omitempty"`
	Completed          uint64 `json:"completed"`
	Failed             uint64 `json:"failed"`
	Canceled           uint64 `json:"canceled"`
	Retried            uint64 `json:"retried"`
	RejectedFull       uint64 `json:"rejected_full"`
	RejectedQuota      uint64 `json:"rejected_quota"`
	RejectedRate       uint64 `json:"rejected_rate"`

	Wait HistogramSummary `json:"wait"`
	Run  HistogramSummary `json:"run"`
}

func count(c *obs.Counter) uint64 { return uint64(c.Value()) }

// Stats returns a snapshot of the queue's gauges, counters and latency
// histograms.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	per := make(map[string]int, len(q.perPrincipal))
	for k, v := range q.perPrincipal {
		per[k] = v
	}
	return Stats{
		Workers:            q.cfg.Workers,
		Capacity:           q.cfg.QueueDepth,
		Depth:              len(q.heap),
		Running:            q.running,
		Retrying:           q.retrying,
		Draining:           q.draining || q.closed,
		PerPrincipal:       per,
		Submitted:          count(q.met.submitted),
		Recovered:          count(q.met.recovered),
		JournalSkipped:     count(q.met.journalSkipped),
		JournalCompactions: count(q.met.journalCompact),
		Completed:          count(q.met.completed),
		Failed:             count(q.met.failed),
		Canceled:           count(q.met.canceled),
		Retried:            count(q.met.retried),
		RejectedFull:       count(q.met.rejectedFull),
		RejectedQuota:      count(q.met.rejectedQuota),
		RejectedRate:       count(q.met.rejectedRate),
		Wait:               summarize(q.met.wait),
		Run:                summarize(q.met.run),
	}
}
