package esm

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// DayOutput is one simulated day: StepsPerDay instantaneous fields for
// every output variable.
type DayOutput struct {
	// Year is the calendar year, DayOfYear the zero-based day index.
	Year, DayOfYear int
	// Grid is the output grid.
	Grid grid.Grid
	// Steps[s][v] is the field of variable v at 6-hourly step s.
	Steps []map[string]*grid.Field
}

// Field returns the field of variable v at step s.
func (d *DayOutput) Field(s int, v string) (*grid.Field, error) {
	if s < 0 || s >= len(d.Steps) {
		return nil, fmt.Errorf("esm: step %d out of range", s)
	}
	f, ok := d.Steps[s][v]
	if !ok {
		return nil, fmt.Errorf("esm: unknown variable %q", v)
	}
	return f, nil
}

// Model is the running coupled system.
type Model struct {
	cfg Config
	gt  GroundTruth

	noiseT *noiseField // temperature weather noise [K]
	noiseP *noiseField // pressure noise [hPa-scale]
	noiseW *noiseField // wind noise [m/s]

	sst *grid.Field // slab-ocean state

	absDay int // days elapsed since run start
}

// NewModel builds a model, seeding all ground-truth events for the full
// configured span.
func NewModel(cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{cfg: cfg}

	// Independent deterministic sub-streams.
	weatherRng := newPRNG(cfg.Seed*7919 + 1)
	m.noiseT = newNoiseField(cfg.Grid, weatherRng, 0.75, 1.1)
	m.noiseP = newNoiseField(cfg.Grid, newPRNG(cfg.Seed*7919+2), 0.7, 2.2)
	m.noiseW = newNoiseField(cfg.Grid, newPRNG(cfg.Seed*7919+3), 0.6, 2.0)

	stormID := 1
	for y := 0; y < cfg.Years; y++ {
		year := cfg.StartYear + y
		evRng := newPRNG(cfg.Seed ^ int64(year)*104729)
		m.gt.Waves = append(m.gt.Waves, seedWaves(cfg, year, evRng)...)
		storms := seedCyclones(cfg, year, stormID, evRng)
		stormID += len(storms)
		m.gt.Cyclones = append(m.gt.Cyclones, storms...)
	}

	// Initialize the slab ocean at day-0 climatology.
	m.sst = grid.NewField(cfg.Grid)
	for i := 0; i < cfg.Grid.NLat; i++ {
		for j := 0; j < cfg.Grid.NLon; j++ {
			m.sst.Data[cfg.Grid.Index(i, j)] = float32(Climatology(cfg.Grid, i, j, 0, cfg.DaysPerYear))
		}
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// GroundTruth exposes the seeded events for skill evaluation.
func (m *Model) GroundTruth() *GroundTruth { return &m.gt }

// TotalDays is the full run length in days.
func (m *Model) TotalDays() int { return m.cfg.Years * m.cfg.DaysPerYear }

// DaysCompleted reports how many days have been simulated so far.
func (m *Model) DaysCompleted() int { return m.absDay }

// Done reports whether the run is complete.
func (m *Model) Done() bool { return m.absDay >= m.TotalDays() }

// StepDay advances the coupled system one day and returns its output.
// It returns nil once the configured span is exhausted.
func (m *Model) StepDay() *DayOutput {
	if m.Done() {
		return nil
	}
	cfg := m.cfg
	g := cfg.Grid
	yearIdx := m.absDay / cfg.DaysPerYear
	year := cfg.StartYear + yearIdx
	doy := m.absDay % cfg.DaysPerYear
	warming := cfg.Scenario.WarmingRate() * float64(yearIdx)

	// --- atmosphere daily base state ---------------------------------
	nT := m.noiseT.step()
	nP := m.noiseP.step()
	nW := m.noiseW.step()

	baseT := grid.NewField(g)
	for i := 0; i < g.NLat; i++ {
		for j := 0; j < g.NLon; j++ {
			idx := g.Index(i, j)
			t := Climatology(g, i, j, doy, cfg.DaysPerYear) + warming + float64(nT.Data[idx])
			for wi := range m.gt.Waves {
				w := &m.gt.Waves[wi]
				if w.Year == year {
					t += w.anomalyAt(g, i, j, doy)
				}
			}
			baseT.Data[idx] = float32(t)
		}
	}

	// --- ocean coupling: SST relaxes toward surface air temperature ---
	const relaxDays = 20.0
	for idx := range m.sst.Data {
		m.sst.Data[idx] += (baseT.Data[idx] - m.sst.Data[idx]) / relaxDays
	}

	out := &DayOutput{Year: year, DayOfYear: doy, Grid: g, Steps: make([]map[string]*grid.Field, StepsPerDay)}
	for s := 0; s < StepsPerDay; s++ {
		fields := make(map[string]*grid.Field, len(Vars))
		for _, v := range Vars {
			fields[v] = grid.NewField(g)
		}
		diurnal := DiurnalAnomaly(s)
		for i := 0; i < g.NLat; i++ {
			lat := g.Lat(i)
			jet := 12*math.Exp(-math.Pow((math.Abs(lat)-45)/12, 2)) - 4*math.Exp(-math.Pow(lat/12, 2))
			for j := 0; j < g.NLon; j++ {
				idx := g.Index(i, j)
				t := float64(baseT.Data[idx]) + diurnal
				sst := float64(m.sst.Data[idx])

				fields["TREFHT"].Data[idx] = float32(t)
				fields["TS"].Data[idx] = float32(0.7*t + 0.3*sst)
				fields["SST"].Data[idx] = float32(sst)
				ice := iceFraction(sst)
				fields["ICEFRAC"].Data[idx] = float32(ice)

				psl := 101325 + 800*math.Cos(2*lat*math.Pi/180) + 120*float64(nP.Data[idx])
				fields["PSL"].Data[idx] = float32(psl)

				u := jet + float64(nW.Data[idx])
				v := 0.6 * float64(nW.Data[(idx+g.NLon/2)%len(nW.Data)])
				fields["U850"].Data[idx] = float32(u)
				fields["V850"].Data[idx] = float32(v)
				fields["U10"].Data[idx] = float32(0.6 * u)
				fields["V10"].Data[idx] = float32(0.6 * v)

				q := 8 * math.Exp((t-288)/15)
				if q > 25 {
					q = 25
				}
				fields["Q850"].Data[idx] = float32(q)
				fields["T500"].Data[idx] = float32(t - 30)
				fields["Z500"].Data[idx] = float32(5600 + 7*(t-288))

				// base precipitation: ITCZ band plus humidity scaling
				itcz := 6 * math.Exp(-math.Pow(lat/10, 2))
				pr := itcz * (0.5 + q/16)
				if n := float64(nT.Data[idx]); n > 1 {
					pr += 2 * (n - 1)
				}
				fields["PRECT"].Data[idx] = float32(pr)

				cld := 1 / (1 + math.Exp(-(q-9)/3))
				fields["CLDTOT"].Data[idx] = float32(cld)
				fields["FSNT"].Data[idx] = float32(340 * (1 - 0.5*cld) * math.Cos(lat*math.Pi/180))
				fields["FLNT"].Data[idx] = float32(2.2 * (t - 190) * (1 - 0.35*cld))
				fields["VORT850"].Data[idx] = float32(2e-5 * float64(nW.Data[idx]))
			}
		}
		// cyclone imprints at this step
		for ci := range m.gt.Cyclones {
			c := &m.gt.Cyclones[ci]
			if c.Year != year {
				continue
			}
			if p, ok := c.Active(doy, s); ok {
				imprintCyclone(g, p,
					fields["PSL"], fields["U850"], fields["V850"],
					fields["T500"], fields["PRECT"], fields["VORT850"])
			}
		}
		// derived fields
		for idx := range fields["U10"].Data {
			u10 := float64(fields["U10"].Data[idx])
			v10 := float64(fields["V10"].Data[idx])
			sp := math.Hypot(u10, v10)
			fields["WSPD10"].Data[idx] = float32(sp)
			fields["TAUX"].Data[idx] = float32(0.0015 * sp * u10)
			fields["TAUY"].Data[idx] = float32(0.0015 * sp * v10)
		}
		out.Steps[s] = fields
	}
	m.absDay++
	return out
}

// iceFraction is a smooth ramp from open water to full cover as SST
// falls through the freezing band.
func iceFraction(sstK float64) float64 {
	const freeze = 271.35
	switch {
	case sstK >= freeze+1:
		return 0
	case sstK <= freeze-2:
		return 1
	default:
		return (freeze + 1 - sstK) / 3
	}
}
