package esm

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestDiagnoseProducesPlausibleIndicators(t *testing.T) {
	m := NewModel(smallCfg())
	d := m.StepDay()
	diag, err := Diagnose(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDiagnostics(diag); err != nil {
		t.Fatal(err)
	}
	if diag.Year != 2040 || diag.DayOfYear != 0 {
		t.Fatalf("diag identity = %+v", diag)
	}
	// global mean temperature in the habitable range
	if diag.GlobalMeanT < 270 || diag.GlobalMeanT > 300 {
		t.Fatalf("global mean T = %v", diag.GlobalMeanT)
	}
	if diag.MinPSL >= 101325 {
		t.Fatalf("min PSL = %v, should be below standard pressure somewhere", diag.MinPSL)
	}
	if diag.MaxWind <= 0 || diag.MeanPrecip <= 0 {
		t.Fatalf("wind/precip = %v/%v", diag.MaxWind, diag.MeanPrecip)
	}
}

func TestDiagnoseAreaWeighting(t *testing.T) {
	// area weighting must emphasize the (warm) tropics: the weighted
	// global mean exceeds the naive cell mean, which over-counts the
	// cold poles on a regular lat/lon grid.
	m := NewModel(smallCfg())
	d := m.StepDay()
	diag, err := Diagnose(d)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := d.Field(0, "TREFHT")
	naive := f.Statistics().Mean
	if diag.GlobalMeanT <= naive {
		t.Fatalf("weighted mean %v <= naive mean %v", diag.GlobalMeanT, naive)
	}
}

func TestDiagnosticsWarmingTrendVisible(t *testing.T) {
	// same seed, two scenarios: the weather is identical, so the
	// difference in the final-day global mean is exactly the forcing.
	run := func(s Scenario) float64 {
		cfg := smallCfg()
		cfg.Years = 3
		cfg.DaysPerYear = 10
		cfg.Scenario = s
		cfg.Events = &EventConfig{}
		m := NewModel(cfg)
		var last float64
		for i := 0; i < m.TotalDays(); i++ {
			diag, err := Diagnose(m.StepDay())
			if err != nil {
				t.Fatal(err)
			}
			last = diag.GlobalMeanT
		}
		return last
	}
	dT := run(SSP585) - run(Historical)
	want := SSP585.WarmingRate() * 2 // two elapsed year increments
	if dT < 0.8*want || dT > 1.2*want {
		t.Fatalf("scenario warming in diagnostics = %vK, want ~%vK", dT, want)
	}
}

func TestDiagnosticsStormDeepensMinPSL(t *testing.T) {
	quiet := NewModel(Config{
		Grid: grid.Grid{NLat: 32, NLon: 64}, Years: 1, DaysPerYear: 10, Seed: 5,
		Events: &EventConfig{},
	})
	stormy := NewModel(Config{
		Grid: grid.Grid{NLat: 32, NLon: 64}, Years: 1, DaysPerYear: 10, Seed: 5,
		Events: &EventConfig{CyclonesPerYear: 4, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6},
	})
	var quietMin, stormyMin = math.Inf(1), math.Inf(1)
	for i := 0; i < 10; i++ {
		dq, ds := quiet.StepDay(), stormy.StepDay()
		q, err := Diagnose(dq)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Diagnose(ds)
		if err != nil {
			t.Fatal(err)
		}
		quietMin = math.Min(quietMin, q.MinPSL)
		stormyMin = math.Min(stormyMin, s.MinPSL)
	}
	if stormyMin >= quietMin {
		t.Fatalf("storms did not deepen min PSL: quiet %v stormy %v", quietMin, stormyMin)
	}
}

func TestCheckDiagnosticsRejectsImplausible(t *testing.T) {
	good := DayDiagnostics{
		GlobalMeanT: 288, GlobalMeanSST: 287, IceArea: 0.05,
		TOANet: 10, MinPSL: 99000, MaxWind: 40, MeanPrecip: 3,
	}
	if err := CheckDiagnostics(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.GlobalMeanT = 400
	if err := CheckDiagnostics(bad); err == nil {
		t.Fatal("absurd temperature validated")
	}
	bad = good
	bad.IceArea = 1.5
	if err := CheckDiagnostics(bad); err == nil {
		t.Fatal("ice fraction > 1 validated")
	}
	bad = good
	bad.MinPSL = math.NaN()
	if err := CheckDiagnostics(bad); err == nil {
		t.Fatal("NaN validated")
	}
}
