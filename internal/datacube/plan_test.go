package datacube

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// grid2Cube builds a two-explicit-dim cube (so aggtrailing is legal)
// with deterministic contents.
func grid2Cube(t *testing.T, e *Engine, nlat, nlon, n int) *Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("seq2",
		[]Dimension{{Name: "lat", Size: nlat}, {Name: "lon", Size: nlon}},
		Dimension{Name: "time", Size: n},
		func(row, tt int) float32 { return float32((row*37+tt*5)%23) - 7.5 })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// requireSameCube asserts byte-for-byte equal payloads and shapes.
func requireSameCube(t *testing.T, label string, got, want *Cube) {
	t.Helper()
	if got.Rows() != want.Rows() || got.ImplicitLen() != want.ImplicitLen() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.ImplicitLen(), want.Rows(), want.ImplicitLen())
	}
	gv, wv := got.Values(), want.Values()
	for r := range wv {
		for i := range wv[r] {
			if math.Float32bits(gv[r][i]) != math.Float32bits(wv[r][i]) {
				t.Fatalf("%s: row %d idx %d: %v != %v (bits %08x vs %08x)",
					label, r, i, gv[r][i], wv[r][i], math.Float32bits(gv[r][i]), math.Float32bits(wv[r][i]))
			}
		}
	}
}

func idSet(e *Engine) map[string]bool {
	out := make(map[string]bool)
	for _, id := range e.List() {
		out[id] = true
	}
	return out
}

func TestPlanLinearMatchesEager(t *testing.T) {
	e := newTestEngine(t)
	src := grid2Cube(t, e, 3, 4, 24)

	// eager reference chain
	a, err := src.ReduceGroup("max", 4)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := e.NewCubeFromFunc("base", src.ExplicitDims(), Dimension{Name: "time", Size: 6},
		func(row, tt int) float32 { return float32(row - tt) })
	if err != nil {
		t.Fatal(err)
	}
	bseq, err := a.Intercube(bl, "sub")
	if err != nil {
		t.Fatal(err)
	}
	cseq, err := bseq.Apply("x>0 ? x : 0")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cseq.Reduce("sum")
	if err != nil {
		t.Fatal(err)
	}

	got, err := src.Lazy().ReduceGroup("max", 4).Intercube(bl, "sub").Apply("x>0 ? x : 0").Reduce("sum").Execute()
	if err != nil {
		t.Fatal(err)
	}
	requireSameCube(t, "linear", got, want)
	if !strings.Contains(got.Description(), "fused(") {
		t.Fatalf("fused provenance missing: %q", got.Description())
	}
}

func TestPlanKeepMaterializesIntermediate(t *testing.T) {
	e := newTestEngine(t)
	src := seqCube(t, e, 4, 8)
	before := idSet(e)
	got, err := src.Lazy().Apply("x*2").Keep().Reduce("max").Execute()
	if err != nil {
		t.Fatal(err)
	}
	var fresh []string
	for _, id := range e.List() {
		if !before[id] {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) != 2 {
		t.Fatalf("new cubes = %v, want kept intermediate + result", fresh)
	}
	// the kept cube holds the materialized first stage
	var kept *Cube
	for _, id := range fresh {
		if id != got.ID() {
			kept, _ = e.Get(id)
		}
	}
	if kept == nil {
		t.Fatal("kept intermediate not registered")
	}
	wantKept, err := src.Apply("x*2")
	if err != nil {
		t.Fatal(err)
	}
	requireSameCube(t, "kept", kept, wantKept)
}

func TestPlanBarrierAndResidency(t *testing.T) {
	e := newTestEngine(t)
	src := grid2Cube(t, e, 3, 4, 8)
	before := idSet(e)

	// row-local → barrier → row-local: the plan must materialize at the
	// barrier and clean the unkept intermediate up afterwards
	got, err := src.Lazy().Apply("x+1").AggregateRows("max").Apply("x*10").Execute()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := src.Apply("x+1")
	bagg, err := a.AggregateRows("max")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bagg.Apply("x*10")
	requireSameCube(t, "barrier", got, want)

	var fresh []string
	for _, id := range e.List() {
		if !before[id] && id != a.ID() && id != bagg.ID() && id != want.ID() {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) != 1 || fresh[0] != got.ID() {
		t.Fatalf("plan left cubes %v, want only result %s", fresh, got.ID())
	}
}

func TestPlanErrorsLeaveNoResidue(t *testing.T) {
	e := newTestEngine(t)
	src := grid2Cube(t, e, 2, 3, 12)
	other, err := e.NewCubeFromFunc("o", []Dimension{{Name: "r", Size: 6}},
		Dimension{Name: "time", Size: 5}, func(int, int) float32 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		plan  func() (*Cube, error)
		eager func() (*Cube, error)
	}{
		{"unknown-rowop",
			func() (*Cube, error) { return src.Lazy().Reduce("nosuchop").Execute() },
			func() (*Cube, error) { return src.Reduce("nosuchop") }},
		{"group-indivisible",
			func() (*Cube, error) { return src.Lazy().ReduceGroup("max", 5).Execute() },
			func() (*Cube, error) { return src.ReduceGroup("max", 5) }},
		{"stride-indivisible",
			func() (*Cube, error) { return src.Lazy().ReduceStride("max", 7).Execute() },
			func() (*Cube, error) { return src.ReduceStride("max", 7) }},
		{"subset-range",
			func() (*Cube, error) { return src.Lazy().Subset(4, 20).Execute() },
			func() (*Cube, error) { return src.Subset(4, 20) }},
		{"intercube-shape",
			func() (*Cube, error) { return src.Lazy().Intercube(other, "sub").Execute() },
			func() (*Cube, error) { return src.Intercube(other, "sub") }},
		{"intercube-op",
			func() (*Cube, error) { return src.Lazy().Intercube(src, "xor").Execute() },
			func() (*Cube, error) { return src.Intercube(src, "xor") }},
		{"bad-expr",
			func() (*Cube, error) { return src.Lazy().Apply("x +* 2").Execute() },
			func() (*Cube, error) { return src.Apply("x +* 2") }},
		{"aggtrailing-1dim",
			func() (*Cube, error) {
				return src.Lazy().AggregateRows("max").AggregateTrailing("max").Execute()
			},
			func() (*Cube, error) {
				a, err := src.AggregateRows("max")
				if err != nil {
					return nil, err
				}
				defer a.Delete()
				return a.AggregateTrailing("max")
			}},
		{"mid-chain-after-valid-prefix",
			func() (*Cube, error) { return src.Lazy().Apply("x+1").ReduceGroup("max", 5).Execute() },
			func() (*Cube, error) {
				a, err := src.Apply("x+1")
				if err != nil {
					return nil, err
				}
				defer a.Delete()
				return a.ReduceGroup("max", 5)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := idSet(e)
			_, planErr := tc.plan()
			if planErr == nil {
				t.Fatal("plan accepted invalid chain")
			}
			_, eagerErr := tc.eager()
			if eagerErr == nil {
				t.Fatal("eager accepted invalid chain")
			}
			if !strings.Contains(planErr.Error(), eagerErr.Error()) {
				t.Fatalf("plan error %q does not carry eager error %q", planErr, eagerErr)
			}
			after := idSet(e)
			for id := range after {
				if !before[id] {
					t.Fatalf("failed plan leaked cube %s", id)
				}
			}
		})
	}

	if _, err := src.Lazy().Execute(); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := Branch().Apply("x").Execute(); err == nil {
		t.Fatal("sourceless plan accepted")
	}
	if _, err := src.Lazy().Keep().Execute(); err == nil {
		t.Fatal("Keep on empty plan accepted")
	}
	if _, err := src.Lazy().Apply("x").ExecuteBranches(); err == nil {
		t.Fatal("ExecuteBranches without branches accepted")
	}
	if _, err := src.Lazy().ExecuteBranches(src.Lazy()); err == nil {
		t.Fatal("branch with its own source accepted")
	}
	if _, err := src.Lazy().ExecuteBranches(Branch().AggregateRows("max")); err == nil {
		t.Fatal("barrier op inside branch accepted")
	}
	if _, err := src.Lazy().ExecuteBranches(Branch().Apply("x").Keep()); err == nil {
		t.Fatal("Keep inside branch accepted")
	}
}

func TestExecuteBranchesMatchesEager(t *testing.T) {
	e := newTestEngine(t)
	src := grid2Cube(t, e, 3, 4, 24)
	bl, err := e.NewCubeFromFunc("base", src.ExplicitDims(), Dimension{Name: "time", Size: 6},
		func(row, tt int) float32 { return float32(tt - row) })
	if err != nil {
		t.Fatal(err)
	}

	// eager reference: shared prefix, three consumers
	daily, err := src.ReduceGroup("max", 4)
	if err != nil {
		t.Fatal(err)
	}
	anom, err := daily.Intercube(bl, "sub")
	if err != nil {
		t.Fatal(err)
	}
	w0, err := anom.Reduce("max")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := anom.Apply("x>0 ? 1 : 0")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := m1.Reduce("sum")
	if err != nil {
		t.Fatal(err)
	}

	outs, err := src.Lazy().ReduceGroup("max", 4).Intercube(bl, "sub").ExecuteBranches(
		Branch().Reduce("max"),
		Branch().Apply("x>0 ? 1 : 0").Reduce("sum"),
		Branch(), // identity: the shared prefix itself
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outputs = %d", len(outs))
	}
	requireSameCube(t, "branch0", outs[0], w0)
	requireSameCube(t, "branch1", outs[1], w1)
	requireSameCube(t, "branch-identity", outs[2], anom)

	// the pass must not have materialized the prefix as a cube: only the
	// three outputs are new relative to the eager chain's registrations
	if e.met.fusedPasses.Value() < 1 {
		t.Fatal("fused pass not counted")
	}
	if e.met.fusedStages.Value() < 5 {
		t.Fatalf("fused stages = %v", e.met.fusedStages.Value())
	}
}

// randStep mutates both representations of one chain the same way.
type randStep struct {
	toPlan func(*Plan) *Plan
	eager  func(*Cube) (*Cube, error)
}

// divisorsOf lists the divisors of n (including 1 and n).
func divisorsOf(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// genStep picks one valid operator for the current eager shape.
func genStep(t *testing.T, rng *rand.Rand, e *Engine, cur *Cube) randStep {
	t.Helper()
	exprs := []string{"x*2", "x+1", "x>3 ? 1 : 0", "abs(x)-2", "x/4"}
	rops := []string{"max", "min", "sum", "avg"}
	width := cur.ImplicitLen()
	for {
		switch rng.Intn(10) {
		case 0, 1:
			ex := exprs[rng.Intn(len(exprs))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.Apply(ex) },
				eager:  func(c *Cube) (*Cube, error) { return c.Apply(ex) },
			}
		case 2:
			op := rops[rng.Intn(len(rops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.Reduce(op) },
				eager:  func(c *Cube) (*Cube, error) { return c.Reduce(op) },
			}
		case 3:
			divs := divisorsOf(width)
			g := divs[rng.Intn(len(divs))]
			op := rops[rng.Intn(len(rops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.ReduceGroup(op, g) },
				eager:  func(c *Cube) (*Cube, error) { return c.ReduceGroup(op, g) },
			}
		case 4:
			divs := divisorsOf(width)
			s := divs[rng.Intn(len(divs))]
			op := rops[rng.Intn(len(rops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.ReduceStride(op, s) },
				eager:  func(c *Cube) (*Cube, error) { return c.ReduceStride(op, s) },
			}
		case 5:
			if width < 2 {
				continue
			}
			lo := rng.Intn(width)
			hi := lo + 1 + rng.Intn(width-lo)
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.Subset(lo, hi) },
				eager:  func(c *Cube) (*Cube, error) { return c.Subset(lo, hi) },
			}
		case 6:
			rows := cur.Rows()
			other, err := e.NewCubeFromFunc(fmt.Sprintf("o%d", rng.Int63()),
				[]Dimension{{Name: "r", Size: rows}},
				Dimension{Name: "time", Size: width},
				func(row, tt int) float32 { return float32((row+tt)%5) - 1.5 })
			if err != nil {
				t.Fatal(err)
			}
			iops := []string{"add", "sub", "mul"}
			op := iops[rng.Intn(len(iops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.Intercube(other, op) },
				eager:  func(c *Cube) (*Cube, error) { return c.Intercube(other, op) },
			}
		case 7:
			op := rops[rng.Intn(len(rops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.AggregateRows(op) },
				eager:  func(c *Cube) (*Cube, error) { return c.AggregateRows(op) },
			}
		case 8:
			dims := cur.ExplicitDims()
			if len(dims) < 2 {
				continue
			}
			op := rops[rng.Intn(len(rops))]
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.AggregateTrailing(op) },
				eager:  func(c *Cube) (*Cube, error) { return c.AggregateTrailing(op) },
			}
		case 9:
			dims := cur.ExplicitDims()
			if len(dims) == 0 || dims[0].Size < 2 {
				continue
			}
			lead := dims[0].Size
			lo := rng.Intn(lead)
			hi := lo + 1 + rng.Intn(lead-lo)
			return randStep{
				toPlan: func(p *Plan) *Plan { return p.SubsetRows(lo, hi) },
				eager:  func(c *Cube) (*Cube, error) { return c.SubsetRows(lo, hi) },
			}
		}
	}
}

// TestPlanRandomChainsMatchEager drives ~200 seeded random operator
// chains through Plan.Execute and step-by-step eager application and
// requires bitwise-identical outputs, correct Keep materialization
// counts, and no leaked intermediates.
func TestPlanRandomChainsMatchEager(t *testing.T) {
	e := NewEngine(Config{Servers: 3, FragmentsPerCube: 4})
	defer e.Close()
	rng := rand.New(rand.NewSource(20260805))
	widths := []int{1, 4, 6, 8, 12, 24}

	for cases := 0; cases < 200; cases++ {
		nlat, nlon := 1+rng.Intn(3), 1+rng.Intn(4)
		width := widths[rng.Intn(len(widths))]
		src := grid2Cube(t, e, nlat, nlon, width)
		baseline := idSet(e)
		delete(baseline, src.ID())

		plan := src.Lazy()
		eagerCur := src
		var eagerTemps, others []*Cube
		var chain []randStep
		keeps, lastKept := 0, false
		nsteps := 1 + rng.Intn(6)
		for s := 0; s < nsteps; s++ {
			preOthers := idSet(e)
			st := genStep(t, rng, e, eagerCur)
			chain = append(chain, st)
			for _, id := range e.List() {
				if !preOthers[id] { // intercube operand created by genStep
					oc, _ := e.Get(id)
					others = append(others, oc)
				}
			}
			plan = st.toPlan(plan)
			next, err := st.eager(eagerCur)
			if err != nil {
				t.Fatalf("case %d step %d: eager: %v", cases, s, err)
			}
			if eagerCur != src {
				eagerTemps = append(eagerTemps, eagerCur)
			}
			eagerCur = next
			lastKept = false
			if rng.Intn(100) < 15 {
				plan = plan.Keep()
				keeps++
				lastKept = true
			}
		}

		preExec := idSet(e)
		got, err := plan.Execute()
		if err != nil {
			t.Fatalf("case %d: Execute: %v", cases, err)
		}
		requireSameCube(t, fmt.Sprintf("case %d", cases), got, eagerCur)

		var fresh []*Cube
		for _, id := range e.List() {
			if !preExec[id] {
				fc, _ := e.Get(id)
				fresh = append(fresh, fc)
			}
		}
		wantNew := keeps + 1
		if lastKept {
			wantNew = keeps
		}
		if len(fresh) != wantNew {
			t.Fatalf("case %d: plan registered %d cubes, want %d (keeps=%d lastKept=%v)",
				cases, len(fresh), wantNew, keeps, lastKept)
		}

		// tier-aware replays of the same chain (without Keep marks):
		// Tolerance(0) must stay bit-identical to the eager reference, and
		// Tolerance(eps>0) must satisfy the declared bound.
		replay := func() *Plan {
			p := src.Lazy()
			for _, st := range chain {
				p = st.toPlan(p)
			}
			return p
		}
		got0, err := replay().Tolerance(0).Execute()
		if err != nil {
			t.Fatalf("case %d: Tolerance(0) replay: %v", cases, err)
		}
		requireSameCube(t, fmt.Sprintf("case %d tolerance-zero", cases), got0, eagerCur)
		_ = got0.Delete()

		eps := []float64{0.05, 0.5}[rng.Intn(2)]
		gotE, err := replay().Tolerance(eps).Execute()
		if err != nil {
			t.Fatalf("case %d: Tolerance(%g) replay: %v", cases, eps, err)
		}
		requireToleranceBound(t, gotE, eagerCur, eps)
		_ = gotE.Delete()

		// free everything this case created and verify the engine is back
		// to its pre-case population
		for _, c := range fresh {
			_ = c.Delete()
		}
		for _, c := range eagerTemps {
			_ = c.Delete()
		}
		_ = eagerCur.Delete()
		for _, c := range others {
			_ = c.Delete()
		}
		_ = src.Delete()
		for _, id := range e.List() {
			if !baseline[id] {
				t.Fatalf("case %d: cube %s leaked", cases, id)
			}
		}
	}
}
