package indices

import (
	"os"
	"testing"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

func testEngine(t *testing.T) *datacube.Engine {
	t.Helper()
	e := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 4})
	t.Cleanup(e.Close)
	return e
}

// syntheticTempCube builds a temperature cube equal to the baseline
// climatology plus a controllable anomaly function a(row, day).
func syntheticTempCube(t *testing.T, e *datacube.Engine, g grid.Grid, days int, a func(row, day int) float64) *datacube.Cube {
	t.Helper()
	c, err := e.NewCubeFromFunc("TREFHT",
		[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
		datacube.Dimension{Name: "time", Size: days * esm.StepsPerDay},
		func(row, tt int) float32 {
			day := tt / esm.StepsPerDay
			step := tt % esm.StepsPerDay
			i, j := g.RowCol(row)
			return float32(esm.Climatology(g, i, j, day, days) + esm.DiurnalAnomaly(step) + a(row, day))
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallGrid() grid.Grid { return grid.Grid{NLat: 6, NLon: 8} }

func TestParamsDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.ThresholdK != 5 || p.MinDays != 6 || p.StepsPerDay != 4 || p.DaysPerYear != 365 {
		t.Fatalf("defaults = %+v", p)
	}
	q := Params{ThresholdK: 3, MinDays: 4, StepsPerDay: 2, DaysPerYear: 100}.Defaults()
	if q.ThresholdK != 3 || q.MinDays != 4 {
		t.Fatalf("overrides lost: %+v", q)
	}
}

func TestBuildBaselineShape(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	b, err := BuildBaseline(e, g, 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.TMax.Rows() != g.Size() || b.TMax.ImplicitLen() != 30 {
		t.Fatalf("TMax shape = %dx%d", b.TMax.Rows(), b.TMax.ImplicitLen())
	}
	// baseline max > baseline min everywhere
	for r := 0; r < b.TMax.Rows(); r += 7 {
		mx, _ := b.TMax.Row(r)
		mn, _ := b.TMin.Row(r)
		for d := range mx {
			if mx[d] <= mn[d] {
				t.Fatalf("row %d day %d: tmax %v <= tmin %v", r, d, mx[d], mn[d])
			}
		}
	}
	if role, ok := b.TMax.Meta("role"); !ok || role != "baseline" {
		t.Fatal("baseline meta missing")
	}
}

func TestNoAnomalyMeansNoWaves(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, err := BuildBaseline(e, g, days)
	if err != nil {
		t.Fatal(err)
	}
	temp := syntheticTempCube(t, e, g, days, func(int, int) float64 { return 0 })
	p := Params{DaysPerYear: days}
	res, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, p); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < res.Number.Rows(); r++ {
		n, _ := res.Number.Row(r)
		if n[0] != 0 {
			t.Fatalf("cell %d has %v waves without anomaly", r, n)
		}
	}
}

func TestSingleHeatWaveDetected(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	hotRow := 13
	// 8 K anomaly on days 10..17 (8 days) in one cell only
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row == hotRow && day >= 10 && day < 18 {
			return 8
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, p); err != nil {
		t.Fatal(err)
	}
	dur, _ := res.Duration.Row(hotRow)
	num, _ := res.Number.Row(hotRow)
	freq, _ := res.Frequency.Row(hotRow)
	if dur[0] != 8 {
		t.Fatalf("duration = %v, want 8", dur)
	}
	if num[0] != 1 {
		t.Fatalf("number = %v, want 1", num)
	}
	if want := float32(8.0 / days); freq[0] != want {
		t.Fatalf("frequency = %v, want %v", freq, want)
	}
	// other cells untouched
	other, _ := res.Number.Row(hotRow + 1)
	if other[0] != 0 {
		t.Fatalf("neighbor cell has waves: %v", other)
	}
}

func TestShortSpikeBelowMinDaysIgnored(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row == 0 && day >= 5 && day < 10 { // 5 days < MinDays 6
			return 9
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	dur, _ := res.Duration.Row(0)
	num, _ := res.Number.Row(0)
	if dur[0] != 0 || num[0] != 0 {
		t.Fatalf("5-day spike detected as wave: dur=%v num=%v", dur, num)
	}
}

func TestSubThresholdAnomalyIgnored(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		return 4.5 // everywhere, always, but below the 5 K threshold
	})
	p := Params{DaysPerYear: days}
	res, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < res.Number.Rows(); r++ {
		n, _ := res.Number.Row(r)
		if n[0] != 0 {
			t.Fatalf("sub-threshold anomaly detected at %d", r)
		}
	}
}

func TestTwoSeparateWavesCounted(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 40
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row != 3 {
			return 0
		}
		if (day >= 2 && day < 9) || (day >= 20 && day < 30) {
			return 7
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	num, _ := res.Number.Row(3)
	dur, _ := res.Duration.Row(3)
	freq, _ := res.Frequency.Row(3)
	if num[0] != 2 {
		t.Fatalf("number = %v, want 2", num)
	}
	if dur[0] != 10 {
		t.Fatalf("duration = %v, want 10 (longest)", dur)
	}
	if want := float32(17.0 / days); freq[0] != want {
		t.Fatalf("frequency = %v, want %v", freq, want)
	}
}

func TestColdWaveDetected(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if row == 7 && day >= 12 && day < 19 {
			return -9
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, err := ColdWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, p); err != nil {
		t.Fatal(err)
	}
	num, _ := res.Number.Row(7)
	dur, _ := res.Duration.Row(7)
	if num[0] != 1 || dur[0] != 7 {
		t.Fatalf("cold wave num=%v dur=%v", num, dur)
	}
	// heat pipeline should see nothing there
	hres, _ := HeatWavesFromCube(temp, b, p)
	hn, _ := hres.Number.Row(7)
	if hn[0] != 0 {
		t.Fatalf("cold anomaly detected as heat wave: %v", hn)
	}
}

func TestPipelineShapeValidation(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	b, _ := BuildBaseline(e, g, 30)
	// wrong sample count
	temp := syntheticTempCube(t, e, g, 20, func(int, int) float64 { return 0 })
	if _, err := HeatWavesFromCube(temp, b, Params{DaysPerYear: 30}); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}
	// wrong baseline length
	b2, _ := BuildBaseline(e, g, 10)
	temp2 := syntheticTempCube(t, e, g, 30, func(int, int) float64 { return 0 })
	if _, err := HeatWavesFromCube(temp2, b2, Params{DaysPerYear: 30}); err == nil {
		t.Fatal("baseline mismatch accepted")
	}
	// wrong row count
	g2 := grid.Grid{NLat: 3, NLon: 4}
	b3, _ := BuildBaseline(e, g2, 30)
	if _, err := HeatWavesFromCube(temp2, b3, Params{DaysPerYear: 30}); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

func TestEndToEndFromESMFiles(t *testing.T) {
	e := testEngine(t)
	g := grid.Grid{NLat: 16, NLon: 24}
	const days = 25
	dir := t.TempDir()
	cfg := esm.Config{
		Grid: g, StartYear: 2040, Years: 1, DaysPerYear: days, Seed: 7,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 1, ColdSpellsPerYear: 0, CyclonesPerYear: 0,
			WaveAmplitudeK: 10, WaveMinDays: 8, WaveMaxDays: 8,
		},
	}
	m := esm.NewModel(cfg)
	files, err := m.Run(esm.RunOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBaseline(e, g, days)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{DaysPerYear: days}
	res, err := HeatWaves(e, files, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, p); err != nil {
		t.Fatal(err)
	}
	// the seeded wave must be detected at its center cell
	w := m.GroundTruth().HeatWaves()[0]
	ci, cj := g.CellOf(w.CenterLat, w.CenterLon)
	num, _ := res.Number.Row(g.Index(ci, cj))
	dur, _ := res.Duration.Row(g.Index(ci, cj))
	if num[0] < 1 {
		t.Fatalf("seeded wave not detected: num=%v dur=%v (wave %+v)", num, dur, w)
	}
	if dur[0] < 6 {
		t.Fatalf("detected duration too short: %v", dur)
	}
	// input cube cleaned up; engine retains only baseline + results
	if got := len(e.List()); got > 8 {
		t.Fatalf("engine leaking cubes: %d resident", got)
	}
	// file reads: one per day
	if st := e.Stats(); st.FileReads != int64(days) {
		t.Fatalf("file reads = %d, want %d", st.FileReads, days)
	}
}

func TestCubeToField(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	c, _ := e.NewCubeFromFunc("idx",
		[]datacube.Dimension{{Name: "lat", Size: g.NLat}, {Name: "lon", Size: g.NLon}},
		datacube.Dimension{Name: "t", Size: 1},
		func(row, _ int) float32 { return float32(row) })
	f, err := CubeToField(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(2, 3) != float32(g.Index(2, 3)) {
		t.Fatalf("field value = %v", f.At(2, 3))
	}
	wrong, _ := e.NewCubeFromFunc("idx2",
		[]datacube.Dimension{{Name: "x", Size: 3}},
		datacube.Dimension{Name: "t", Size: 1},
		func(int, int) float32 { return 0 })
	if _, err := CubeToField(wrong, g); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(int, int) float64 { return 0 })
	p := Params{DaysPerYear: days}
	res, _ := HeatWavesFromCube(temp, b, p)
	// corrupt the frequency cube with an out-of-range value
	bad, err := res.Frequency.Apply("x+2")
	if err != nil {
		t.Fatal(err)
	}
	res.Frequency = bad
	if err := Validate(res, p); err == nil {
		t.Fatal("corrupted result validated")
	}
}

func TestDaysInRunsRowOps(t *testing.T) {
	op, ok := datacube.LookupRowOp("days_in_runs_above")
	if !ok {
		t.Fatal("op missing")
	}
	row := []float32{6, 7, 0, 8, 8, 8, 0, 9}
	// runs above 5: len 2, len 3, len 1; minLen 2 → 5 days
	if v := op(row, []float64{5, 2}); v != 5 {
		t.Fatalf("days_in_runs_above = %v", v)
	}
	opb, _ := datacube.LookupRowOp("days_in_runs_below")
	cold := []float32{-6, -6, -6, 0, -9}
	if v := opb(cold, []float64{-5, 3}); v != 3 {
		t.Fatalf("days_in_runs_below = %v", v)
	}
}

func TestResultsSurviveOnDisk(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 30
	b, _ := BuildBaseline(e, g, days)
	temp := syntheticTempCube(t, e, g, days, func(row, day int) float64 {
		if day >= 3 && day < 12 {
			return 7
		}
		return 0
	})
	p := Params{DaysPerYear: days}
	res, _ := HeatWavesFromCube(temp, b, p)
	path := t.TempDir() + "/hw_number.nc"
	if err := res.Number.ExportFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
