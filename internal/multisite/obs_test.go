package multisite

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// scrape renders the registry to Prometheus text.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestTransferMetricsAndBreakerGauges(t *testing.T) {
	reg := obs.NewRegistry()
	f, a, b := twoSites(t)
	f.SetMetrics(reg)
	p := seedFile(t, a, "y1950.nc", "fields")

	// One transient fault, retried away: transfers and bytes move, one
	// retry is counted, and the breaker stays closed.
	f.SetInjector(chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Attempt: 0, Kind: chaos.Transient}))
	f.sleepFn = func(time.Duration) {}
	if _, err := f.Transfer("y1950", a, b, []string{p}); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	text := scrape(t, reg)
	for _, want := range []string{
		"multisite_transfers_total 1",
		"multisite_transfer_bytes_total 6",
		"multisite_transfer_retries_total 1",
		"multisite_transfer_failures_total 0",
		// DLS metrics ride along via the embedded service.
		"dls_copies_total 1",
		"dls_bytes_copied_total 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}

	// Hammer the destination until its circuit opens: the failure
	// counter and per-site breaker gauges must reflect it.
	f.SetInjector(chaos.NewSeeded(4, chaos.Rule{Site: chaos.SiteTransfer, Kind: chaos.PermanentKind, Max: 2}))
	f.SetTransferPolicy(TransferPolicy{Retries: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second})
	now := time.Unix(1_700_000_000, 0)
	f.nowFn = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if _, err := f.Transfer("y1950", a, b, []string{p}); err == nil {
			t.Fatalf("transfer %d should fail", i)
		}
	}
	text = scrape(t, reg)
	for _, want := range []string{
		"multisite_transfer_failures_total 2",
		`multisite_breaker_open{site="cloud-b"} 1`,
		`multisite_breaker_consecutive_failures{site="cloud-b"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}

	// After the cooldown a successful probe closes the circuit and the
	// gauges reset.
	now = now.Add(11 * time.Second)
	if _, err := f.Transfer("y1950", a, b, []string{p}); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	text = scrape(t, reg)
	for _, want := range []string{
		`multisite_breaker_open{site="cloud-b"} 0`,
		`multisite_breaker_consecutive_failures{site="cloud-b"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}
