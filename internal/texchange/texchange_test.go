package texchange

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func mkTensor(name string, n int, base float32) Tensor {
	data := make([]float32, n)
	for i := range data {
		data[i] = base + float32(i)
	}
	return Tensor{Name: name, Shape: []int{n}, Data: data}
}

func TestExchangePublishGetVersioning(t *testing.T) {
	x := New(Config{})
	defer x.Close()
	v, err := x.Publish(mkTensor("a", 8, 1))
	if err != nil || v != 1 {
		t.Fatalf("first publish: v=%d err=%v", v, err)
	}
	v, err = x.Publish(mkTensor("a", 8, 2))
	if err != nil || v != 2 {
		t.Fatalf("republish: v=%d err=%v", v, err)
	}
	got, ok, err := x.Get("a")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Version != 2 || got.Data[0] != 2 {
		t.Fatalf("got version %d data[0]=%v, want latest", got.Version, got.Data[0])
	}
	if _, ok, _ := x.Get("missing"); ok {
		t.Fatal("missing name reported ok")
	}
	st := x.Stats()
	if st.Publishes != 2 || st.Replaced != 1 || st.Tensors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExchangeZeroCopyHandoff(t *testing.T) {
	x := New(Config{})
	defer x.Close()
	in := mkTensor("z", 16, 0)
	if _, err := x.Publish(in); err != nil {
		t.Fatal(err)
	}
	out, ok, err := x.Get("z")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if &out.Data[0] != &in.Data[0] {
		t.Fatal("resident Get did not hand back the published backing slice")
	}
}

func TestExchangeWaitBlocksUntilPublish(t *testing.T) {
	x := New(Config{})
	defer x.Close()
	done := make(chan Tensor, 1)
	go func() {
		got, err := x.Wait(context.Background(), "later", 1)
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait returned before publish")
	default:
	}
	if _, err := x.Publish(mkTensor("later", 4, 7)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got.Data[0] != 7 {
			t.Fatalf("waited tensor data[0]=%v", got.Data[0])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}
}

func TestExchangeWaitMinVersion(t *testing.T) {
	x := New(Config{})
	defer x.Close()
	if _, err := x.Publish(mkTensor("v", 4, 1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := x.Wait(ctx, "v", 2); err != context.DeadlineExceeded {
		t.Fatalf("Wait(minVersion=2) on v1 = %v, want deadline", err)
	}
	if _, err := x.Publish(mkTensor("v", 4, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := x.Wait(context.Background(), "v", 2)
	if err != nil || got.Version != 2 {
		t.Fatalf("Wait v2: %+v %v", got, err)
	}
}

func TestExchangeWaitContextAndClose(t *testing.T) {
	x := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 2)
	go func() {
		_, err := x.Wait(ctx, "never", 1)
		errc <- err
	}()
	go func() {
		_, err := x.Wait(context.Background(), "never2", 1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Wait = %v", err)
	}
	x.Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("Wait across Close = %v", err)
	}
	if _, err := x.Publish(mkTensor("late", 1, 0)); err != ErrClosed {
		t.Fatalf("publish after close = %v", err)
	}
}

func TestExchangeLRUSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Budget fits two 1 KiB tensors but not three.
	x := New(Config{Budget: 2 * 1024, SpillDir: dir, Metrics: reg})
	defer x.Close()
	for i := 0; i < 3; i++ {
		if _, err := x.Publish(mkTensor(fmt.Sprintf("t%d", i), 256, float32(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if st.Spills != 1 || st.ResidentBytes > 2*1024 {
		t.Fatalf("stats after third publish = %+v", st)
	}
	// The least recently used tensor (t0) must be the spilled one.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("spill dir entries = %v err=%v", ents, err)
	}
	// Reload transparently; payload identical; spill file gone after.
	got, ok, err := x.Get("t0")
	if err != nil || !ok {
		t.Fatalf("get spilled: ok=%v err=%v", ok, err)
	}
	for i, v := range got.Data {
		if v != float32(i) {
			t.Fatalf("reloaded data[%d]=%v", i, v)
		}
	}
	st = x.Stats()
	if st.Loads != 1 {
		t.Fatalf("loads = %d", st.Loads)
	}
	// Loading t0 pushed occupancy back over budget: another entry
	// spilled to make room, so the budget holds.
	if st.ResidentBytes > 2*1024 {
		t.Fatalf("resident %d over budget after reload", st.ResidentBytes)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"texchange_publishes_total 3", "texchange_spills_total 2", "texchange_loads_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestExchangeHottestEntryNeverSpills(t *testing.T) {
	dir := t.TempDir()
	// A single tensor larger than the whole budget must stay resident.
	x := New(Config{Budget: 16, SpillDir: dir})
	defer x.Close()
	if _, err := x.Publish(mkTensor("big", 1024, 0)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := x.Get("big")
	if err != nil || !ok || len(got.Data) != 1024 {
		t.Fatalf("oversized tensor unusable: ok=%v err=%v", ok, err)
	}
	if st := x.Stats(); st.Spills != 0 {
		t.Fatalf("oversized hot tensor spilled: %+v", st)
	}
}

func TestExchangeRemoveAndTake(t *testing.T) {
	dir := t.TempDir()
	x := New(Config{Budget: 1024, SpillDir: dir})
	defer x.Close()
	if _, err := x.Publish(mkTensor("a", 8, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := x.Take("a")
	if err != nil || got.Data[2] != 5 {
		t.Fatalf("take: %+v %v", got, err)
	}
	if _, err := x.Take("a"); err != ErrNotFound {
		t.Fatalf("second take = %v, want ErrNotFound", err)
	}
	// Remove of a spilled entry deletes its spill file.
	if _, err := x.Publish(mkTensor("b", 512, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Publish(mkTensor("c", 512, 0)); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.Spills == 0 {
		t.Fatalf("expected a spill, got %+v", st)
	}
	if !x.Remove("b") {
		t.Fatal("remove b")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".spill" {
			t.Fatalf("spill file %s survived Remove", e.Name())
		}
	}
}

func TestExchangeSubscribe(t *testing.T) {
	x := New(Config{})
	sub := x.Subscribe()
	for i := 0; i < 3; i++ {
		if _, err := x.Publish(mkTensor(fmt.Sprintf("s%d", i), 4, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		name, ok := sub.Next()
		if !ok || name != fmt.Sprintf("s%d", i) {
			t.Fatalf("sub[%d] = %q ok=%v", i, name, ok)
		}
	}
	x.Close()
	if _, ok := sub.Next(); ok {
		t.Fatal("subscriber stream still open after Close")
	}
}

func TestExchangeConcurrentPublishWaitRace(t *testing.T) {
	dir := t.TempDir()
	x := New(Config{Budget: 4 * 1024, SpillDir: dir})
	defer x.Close()
	const producers, perProducer = 4, 32
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				name := fmt.Sprintf("p%d/i%d", p, i)
				if _, err := x.Publish(mkTensor(name, 64, float32(p*1000+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for i := 0; i < perProducer; i++ {
				name := fmt.Sprintf("p%d/i%d", p, i)
				got, err := x.Wait(ctx, name, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Data == nil || got.Data[0] != float32(p*1000+i) {
					t.Errorf("%s: bad payload", name)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestSpillWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.spill")
	data := []float32{0, -1.5, 3.25, 1e-30, 6.02e23}
	if err := writeSpill(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := readSpill(path, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	if _, err := readSpill(path, len(data)+1); err == nil {
		t.Fatal("element-count mismatch accepted")
	}
	// A truncated file must be rejected, not half-read.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSpill(path, len(data)); err == nil {
		t.Fatal("truncated spill accepted")
	}
}
