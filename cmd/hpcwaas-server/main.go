// Command hpcwaas-server runs the HPCWaaS REST service with the
// climate-extremes workflow pre-registered, so the whole case study is
// drivable with curl:
//
//	hpcwaas-server -addr :8700 &
//	curl localhost:8700/api/workflows
//	curl -X POST localhost:8700/api/workflows/climate-extremes/deploy -d '{"target":"zeus"}'
//	curl -X POST localhost:8700/api/executions \
//	     -d '{"workflow":"climate-extremes","params":{"years":"1","days_per_year":"12"}}'
//	curl localhost:8700/api/executions/exec-1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/dls"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/hpcwaas"
	"repro/internal/imagebuilder"
	"repro/internal/tosca"
)

func main() {
	log.SetFlags(0)
	var (
		addr = flag.String("addr", "127.0.0.1:8700", "listen address")
		work = flag.String("work", "", "working directory (default: temp)")
	)
	flag.Parse()

	workDir := *work
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "hpcwaas-server-")
		if err != nil {
			log.Fatal(err)
		}
	}

	registry := hpcwaas.NewRegistry()
	if err := registry.Register(hpcwaas.Entry{
		Name:        "climate-extremes",
		Version:     "1.0",
		Description: "extreme events analysis on ESM projection data (paper case study)",
		Topology:    tosca.ClimateTopology("zeus"),
		App:         app(workDir),
	}); err != nil {
		log.Fatal(err)
	}

	deployer := hpcwaas.NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"})
	catalogDir := filepath.Join(workDir, "catalog")
	os.MkdirAll(catalogDir, 0o755)
	os.WriteFile(filepath.Join(catalogDir, "climatology.nc"), []byte("20y baseline"), 0o644)
	deployer.DLS.Catalog.Register(dls.Dataset{Name: "climatology", Root: catalogDir, Files: []string{"climatology.nc"}})
	deployer.Pipelines["stage-in-climatology"] = dls.Pipeline{
		Name:  "stage-in-climatology",
		Steps: []dls.Step{{Kind: "stage_in", Dataset: "climatology", Dir: filepath.Join(workDir, "staged")}},
	}

	svc := hpcwaas.NewService(registry, deployer)
	fmt.Printf("HPCWaaS service on http://%s (workdir %s)\n", *addr, workDir)
	log.Fatal(http.ListenAndServe(*addr, svc.Handler()))
}

func app(workDir string) hpcwaas.AppFunc {
	return func(params map[string]string) (map[string]string, error) {
		atoi := func(s string, def int) int {
			if n, err := strconv.Atoi(s); err == nil {
				return n
			}
			return def
		}
		outDir, err := os.MkdirTemp(workDir, "run-")
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       atoi(params["years"], 1),
			DaysPerYear: atoi(params["days_per_year"], 12),
			Seed:        int64(atoi(params["seed"], 1)),
			OutputDir:   outDir,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
			},
		})
		if err != nil {
			return nil, err
		}
		out := map[string]string{
			"years_processed": strconv.Itoa(len(res.Years)),
			"files_produced":  strconv.Itoa(res.FilesProduced),
			"final_map":       res.FinalMapPath,
			"output_dir":      outDir,
		}
		for _, yr := range res.Years {
			out[fmt.Sprintf("hw_mean_%d", yr.Year)] = fmt.Sprintf("%.4f", yr.HWNumberMean)
		}
		return out, nil
	}
}
