package compss_test

import (
	"fmt"

	"repro/internal/compss"
)

// Example shows the task-based programming model: register a task,
// invoke it twice with a dataflow dependency between the calls, and
// synchronize on the final future.
func Example() {
	rt := compss.NewRuntime(compss.Config{Workers: 2})
	square, err := rt.Register(compss.TaskDef{
		Name:    "square",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			x := args[0].(int)
			return []any{x * x}, nil
		},
	})
	if err != nil {
		panic(err)
	}

	a, _ := rt.InvokeOne(square, compss.In(3)) // runs immediately
	b, _ := rt.InvokeOne(square, compss.In(a)) // waits for a
	v, err := b.Get()                          // synchronization
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	if err := rt.Shutdown(); err != nil {
		panic(err)
	}
	// Output: 81
}

// ExampleRuntime_NewShared demonstrates INOUT chaining on shared data:
// writers serialize automatically.
func ExampleRuntime_NewShared() {
	rt := compss.NewRuntime(compss.Config{Workers: 4})
	counter := rt.NewShared("counter", 0)
	inc, err := rt.Register(compss.TaskDef{
		Name:    "inc",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			return []any{args[0].(int) + 1}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := rt.Invoke(inc, compss.InOut(counter)); err != nil {
			panic(err)
		}
	}
	if err := rt.Shutdown(); err != nil {
		panic(err)
	}
	fmt.Println(counter.Value())
	// Output: 10
}
