package dls

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFiles(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCatalogRegisterLookup(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(Dataset{Name: "clim", Root: "/x", Files: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(Dataset{}); err == nil {
		t.Fatal("anonymous dataset accepted")
	}
	d, ok := c.Lookup("clim")
	if !ok || d.Root != "/x" {
		t.Fatalf("lookup = %+v %v", d, ok)
	}
	if _, ok := c.Lookup("ghost"); ok {
		t.Fatal("phantom dataset")
	}
	c.Register(Dataset{Name: "b"})
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "clim" {
		t.Fatalf("names = %v", names)
	}
}

func TestStageInCopiesAndLogs(t *testing.T) {
	src := t.TempDir()
	writeFiles(t, src, map[string]string{"base1.nc": "AAAA", "sub/base2.nc": "BBBBBB"})
	s := NewService(nil)
	s.Catalog.Register(Dataset{Name: "clim", Root: src, Files: []string{"base1.nc", "sub/base2.nc"}})
	dst := filepath.Join(t.TempDir(), "staged")
	paths, err := s.StageIn("clim", dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(filepath.Join(dst, "sub", "base2.nc"))
	if err != nil || string(data) != "BBBBBB" {
		t.Fatalf("staged content = %q, %v", data, err)
	}
	log := s.Log()
	if len(log) != 2 || log[0].Bytes != 4 || log[0].Checksum == "" {
		t.Fatalf("log = %+v", log)
	}
}

func TestStageInUnknownDataset(t *testing.T) {
	s := NewService(nil)
	if _, err := s.StageIn("ghost", t.TempDir()); err == nil {
		t.Fatal("unknown dataset staged")
	}
}

func TestStageInMissingFileFails(t *testing.T) {
	src := t.TempDir()
	s := NewService(nil)
	s.Catalog.Register(Dataset{Name: "broken", Root: src, Files: []string{"missing.nc"}})
	if _, err := s.StageIn("broken", t.TempDir()); err == nil {
		t.Fatal("missing source staged")
	}
}

func TestStageOutRegistersResults(t *testing.T) {
	out := t.TempDir()
	writeFiles(t, out, map[string]string{"hw_map.nc": "x", "notes.txt": "y", "cw_map.nc": "z"})
	s := NewService(nil)
	d, err := s.StageOut("results", out, "*.nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Files) != 2 || d.Files[0] != "cw_map.nc" {
		t.Fatalf("files = %v", d.Files)
	}
	if got, ok := s.Catalog.Lookup("results"); !ok || got.Root != out {
		t.Fatal("stage-out not cataloged")
	}
	// then stage the results elsewhere (round trip)
	dst := t.TempDir()
	paths, err := s.StageIn("results", dst)
	if err != nil || len(paths) != 2 {
		t.Fatalf("round trip = %v, %v", paths, err)
	}
}

func TestStageOutNoMatches(t *testing.T) {
	s := NewService(nil)
	if _, err := s.StageOut("empty", t.TempDir(), "*.nc"); err == nil {
		t.Fatal("empty stage-out accepted")
	}
}

func TestStageOutBadPattern(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, map[string]string{"a.nc": "x"})
	s := NewService(nil)
	if _, err := s.StageOut("x", dir, "[bad"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestPipelineRun(t *testing.T) {
	src := t.TempDir()
	writeFiles(t, src, map[string]string{"clim.nc": "CLIM"})
	work := filepath.Join(t.TempDir(), "work")
	os.MkdirAll(work, 0o755)
	writeFiles(t, work, map[string]string{"result.nc": "R"})

	s := NewService(nil)
	s.Catalog.Register(Dataset{Name: "climatology", Root: src, Files: []string{"clim.nc"}})
	stage := filepath.Join(t.TempDir(), "stage")
	p := Pipeline{
		Name: "climate-io",
		Steps: []Step{
			{Kind: "stage_in", Dataset: "climatology", Dir: stage},
			{Kind: "stage_out", Dataset: "results", Dir: work, Pattern: "*.nc"},
		},
	}
	if err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(stage, "clim.nc")); err != nil {
		t.Fatal("stage-in did not land")
	}
	if _, ok := s.Catalog.Lookup("results"); !ok {
		t.Fatal("stage-out did not register")
	}
}

func TestPipelineFailFast(t *testing.T) {
	s := NewService(nil)
	p := Pipeline{Name: "bad", Steps: []Step{
		{Kind: "stage_in", Dataset: "ghost", Dir: t.TempDir()},
		{Kind: "stage_out", Dataset: "never", Dir: t.TempDir()},
	}}
	if err := s.Run(p); err == nil {
		t.Fatal("pipeline with bad step succeeded")
	}
	p2 := Pipeline{Name: "unknown", Steps: []Step{{Kind: "teleport"}}}
	if err := s.Run(p2); err == nil {
		t.Fatal("unknown step kind accepted")
	}
}
