package compss

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestFileCheckpointerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	cp, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("t", 1, []any{42, "x"}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("t", 2, []any{3.5}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", cp2.Entries())
	}
	outs, ok := cp2.Lookup("t", 1)
	if !ok || outs[0].(int) != 42 || outs[1].(string) != "x" {
		t.Fatalf("lookup = %v, %v", outs, ok)
	}
	if _, ok := cp2.Lookup("t", 3); ok {
		t.Fatal("phantom record")
	}
}

func TestFileCheckpointerSkipsUnencodable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	cp, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	ch := make(chan int)
	if err := cp.Record("bad", 1, []any{ch}); err != nil {
		t.Fatalf("unencodable record should be skipped, got %v", err)
	}
	if _, ok := cp.Lookup("bad", 1); ok {
		t.Fatal("unencodable value must not be recorded")
	}
	if cp.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", cp.Dropped())
	}
	// Per-record framing: a record after an unencodable one must still be
	// written durably (the old single-stream format lost it).
	if err := cp.Record("good", 2, []any{1}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok := re.Lookup("good", 2); !ok || v[0].(int) != 1 {
		t.Fatalf("record after unencodable one lost: %v %v", v, ok)
	}
}

func TestWorkflowRecoversFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.gob")
	var executions int64
	program := func(cp Checkpointer, failAt int) (int, error) {
		rt := NewRuntime(Config{Workers: 2, Checkpointer: cp})
		step, _ := rt.Register(TaskDef{
			Name:    "step",
			Outputs: 1,
			Fn: func(args []any) ([]any, error) {
				n := atomic.AddInt64(&executions, 1)
				idx := args[0].(int)
				if failAt >= 0 && idx == failAt {
					return nil, errors.New("injected crash")
				}
				_ = n
				base := 0
				if args[1] != nil {
					base = args[1].(int)
				}
				return []any{base + idx}, nil
			},
		})
		var prev *Future
		var last *Future
		for i := 1; i <= 5; i++ {
			var pp Param
			if prev == nil {
				pp = In(nil)
			} else {
				pp = In(prev)
			}
			f, err := rt.InvokeOne(step, In(i), pp)
			if err != nil {
				return 0, err
			}
			prev, last = f, f
		}
		if err := rt.Shutdown(); err != nil {
			return 0, err
		}
		v, err := last.Get()
		if err != nil {
			return 0, err
		}
		return v.(int), nil
	}

	// First run crashes at step index 4 (steps 1..3 checkpointed).
	cp1, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := program(cp1, 4); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("first run err = %v, want failure", err)
	}
	cp1.Close()
	ranFirst := atomic.LoadInt64(&executions)
	if ranFirst < 4 { // 3 successes + >=1 failed attempt
		t.Fatalf("first run executed %d tasks", ranFirst)
	}

	// Second run recovers: steps 1..3 replayed from checkpoint.
	atomic.StoreInt64(&executions, 0)
	cp2, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	got, err := program(cp2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 { // 1+2+3+4+5
		t.Fatalf("result = %d, want 15", got)
	}
	if ran := atomic.LoadInt64(&executions); ran != 2 {
		t.Fatalf("second run executed %d tasks, want 2 (steps 4 and 5 only)", ran)
	}
}

func TestMemCheckpointer(t *testing.T) {
	cp := NewMemCheckpointer()
	if err := cp.Record("a", 1, []any{1}); err != nil {
		t.Fatal(err)
	}
	if outs, ok := cp.Lookup("a", 1); !ok || outs[0].(int) != 1 {
		t.Fatalf("lookup = %v %v", outs, ok)
	}
	if cp.Entries() != 1 {
		t.Fatalf("entries = %d", cp.Entries())
	}
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveredStatsCounted(t *testing.T) {
	cp := NewMemCheckpointer()
	run := func() Stats {
		rt := NewRuntime(Config{Workers: 2, Checkpointer: cp})
		one, _ := rt.Register(TaskDef{
			Name:    "one",
			Outputs: 1,
			Fn:      func(args []any) ([]any, error) { return []any{1}, nil },
		})
		if _, err := rt.InvokeOne(one); err != nil {
			panic(err)
		}
		if err := rt.Shutdown(); err != nil {
			panic(err)
		}
		return rt.Stats()
	}
	if st := run(); st.Done != 1 || st.Recovered != 0 {
		t.Fatalf("first run stats = %+v", st)
	}
	if st := run(); st.Recovered != 1 || st.Done != 0 {
		t.Fatalf("second run stats = %+v", st)
	}
}
