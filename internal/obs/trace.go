package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Tracer collects finished spans. A nil *Tracer is a valid no-op: it
// hands out nil spans whose methods all no-op, so instrumented code
// never checks for it.
type Tracer struct {
	nextID atomic.Int64
	base   time.Time

	mu   sync.Mutex
	done []SpanData
}

// NewTracer returns an empty tracer; span timestamps in the Chrome
// export are relative to this call.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Span is one in-progress operation. Spans are owned by the goroutine
// that started them until End/EndErr, which publishes the finished
// record to the tracer.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	root   int64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SpanData is one finished span.
type SpanData struct {
	ID     int64
	Parent int64 // 0 for root spans
	Root   int64 // ID of the span's root ancestor (itself for roots)
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	Err    string // non-empty when the span closed with an error status
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named attribute ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Start begins a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{tracer: t, id: id, root: id, name: name, start: time.Now(), attrs: attrs}
}

// Start begins a child span sharing the receiver's root (and therefore
// its timeline row in the Chrome export). Safe on a nil span.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	id := s.tracer.nextID.Add(1)
	return &Span{tracer: s.tracer, id: id, parent: s.id, root: s.root, name: name, start: time.Now(), attrs: attrs}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span successfully.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span; a non-nil err marks it with an error status.
// Only the first End/EndErr takes effect.
func (s *Span) EndErr(err error) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := SpanData{
		ID:     s.id,
		Parent: s.parent,
		Root:   s.root,
		Name:   s.name,
		Start:  s.start,
		End:    time.Now(),
		Attrs:  s.attrs,
	}
	if err != nil {
		d.Err = err.Error()
	}
	s.tracer.mu.Lock()
	s.tracer.done = append(s.tracer.done, d)
	s.tracer.mu.Unlock()
}

// Spans returns a copy of all finished spans, in completion order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.done...)
}

// ChromeEvent is one complete ("ph":"X") event of the Chrome
// trace_event format, loadable in chrome://tracing or Perfetto.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // microseconds since trace start
	Dur  int64             `json:"dur"` // microseconds
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders every finished span as a complete event.
// Spans sharing a root land on the same tid, so a task and its retry
// attempts stack on one timeline row.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	spans := t.Spans()
	events := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := ChromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   s.Start.Sub(t.base).Microseconds(),
			Dur:  s.End.Sub(s.Start).Microseconds(),
			Pid:  1,
			Tid:  s.Root,
		}
		if ev.Dur < 1 {
			ev.Dur = 1
		}
		if len(s.Attrs) > 0 || s.Err != "" || s.Parent != 0 {
			ev.Args = make(map[string]string, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.Err != "" {
				ev.Args["error"] = s.Err
			}
			if s.Parent != 0 {
				ev.Args["parent"] = fmt.Sprint(s.Parent)
			}
		}
		events = append(events, ev)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events})
}

// ParseChromeTrace decodes a trace produced by WriteChromeTrace (used
// by tests and tooling to verify timeline coverage).
func ParseChromeTrace(r io.Reader) ([]ChromeEvent, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, err
	}
	return ct.TraceEvents, nil
}
