package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridGeometry(t *testing.T) {
	g := Grid{NLat: 4, NLon: 8}
	if g.Size() != 32 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.LatStep() != 45 || g.LonStep() != 45 {
		t.Fatalf("steps = %v, %v", g.LatStep(), g.LonStep())
	}
	if g.Lat(0) != -67.5 || g.Lat(3) != 67.5 {
		t.Fatalf("lats = %v, %v", g.Lat(0), g.Lat(3))
	}
	if g.Lon(0) != 22.5 {
		t.Fatalf("lon0 = %v", g.Lon(0))
	}
}

func TestIndexRowColInverse(t *testing.T) {
	g := Grid{NLat: 5, NLon: 7}
	for i := 0; i < g.NLat; i++ {
		for j := 0; j < g.NLon; j++ {
			r, c := g.RowCol(g.Index(i, j))
			if r != i || c != j {
				t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", i, j, r, c)
			}
		}
	}
}

func TestCellOf(t *testing.T) {
	g := Grid{NLat: 180, NLon: 360}
	i, j := g.CellOf(0.5, 0.5)
	if g.Lat(i) != 0.5 || g.Lon(j) != 0.5 {
		t.Fatalf("cell center = (%v,%v)", g.Lat(i), g.Lon(j))
	}
	// negative longitude wraps
	_, j = g.CellOf(0, -10)
	if got := g.Lon(j); got != 350.5 {
		t.Fatalf("wrapped lon = %v", got)
	}
	// poles clamp
	i, _ = g.CellOf(99, 0)
	if i != g.NLat-1 {
		t.Fatalf("clamped row = %d", i)
	}
	i, _ = g.CellOf(-99, 0)
	if i != 0 {
		t.Fatalf("clamped row = %d", i)
	}
}

func TestFieldAtSetWrap(t *testing.T) {
	f := NewField(Grid{NLat: 3, NLon: 4})
	f.Set(1, -1, 5) // wraps to col 3
	if f.At(1, 3) != 5 {
		t.Fatal("column wrap failed on Set")
	}
	if f.At(1, 7) != 5 { // 7 mod 4 = 3
		t.Fatal("column wrap failed on At")
	}
	f.Set(-5, 0, 2) // clamps to row 0
	if f.At(0, 0) != 2 {
		t.Fatal("row clamp failed")
	}
}

func TestRegridIdentityPreservesConstant(t *testing.T) {
	src := Grid{NLat: 8, NLon: 16}
	f := NewField(src)
	for i := range f.Data {
		f.Data[i] = 7.5
	}
	out := f.Regrid(Grid{NLat: 16, NLon: 32})
	for _, v := range out.Data {
		if math.Abs(float64(v)-7.5) > 1e-5 {
			t.Fatalf("constant field not preserved: %v", v)
		}
	}
}

func TestRegridPreservesSmoothGradient(t *testing.T) {
	src := Grid{NLat: 32, NLon: 64}
	f := NewField(src)
	for i := 0; i < src.NLat; i++ {
		for j := 0; j < src.NLon; j++ {
			f.Data[src.Index(i, j)] = float32(src.Lat(i)) // linear in latitude
		}
	}
	dst := Grid{NLat: 16, NLon: 32}
	out := f.Regrid(dst)
	for i := 2; i < dst.NLat-2; i++ { // skip poles where clamping biases
		got := float64(out.At(i, 5))
		want := dst.Lat(i)
		if math.Abs(got-want) > 1.0 {
			t.Fatalf("row %d: regridded %v, want ~%v", i, got, want)
		}
	}
}

func TestStatistics(t *testing.T) {
	f := NewField(Grid{NLat: 1, NLon: 4})
	copy(f.Data, []float32{1, 2, 3, 4})
	s := f.Statistics()
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestStatisticsEmpty(t *testing.T) {
	f := &Field{}
	if s := f.Statistics(); s.Max != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestMinMaxScale(t *testing.T) {
	f := NewField(Grid{NLat: 1, NLon: 3})
	copy(f.Data, []float32{10, 20, 30})
	mn, mx := f.MinMaxScale()
	if mn != 10 || mx != 30 {
		t.Fatalf("returned range = %v..%v", mn, mx)
	}
	if f.Data[0] != 0 || f.Data[1] != 0.5 || f.Data[2] != 1 {
		t.Fatalf("scaled = %v", f.Data)
	}
}

func TestMinMaxScaleConstant(t *testing.T) {
	f := NewField(Grid{NLat: 1, NLon: 3})
	copy(f.Data, []float32{5, 5, 5})
	f.MinMaxScale()
	for _, v := range f.Data {
		if v != 0 {
			t.Fatalf("constant scale = %v", f.Data)
		}
	}
}

func TestStandardize(t *testing.T) {
	f := NewField(Grid{NLat: 1, NLon: 4})
	copy(f.Data, []float32{2, 4, 6, 8})
	mean, std := f.Standardize()
	if mean != 5 || std <= 0 {
		t.Fatalf("mean=%v std=%v", mean, std)
	}
	s := f.Statistics()
	if math.Abs(s.Mean) > 1e-6 || math.Abs(s.Std-1) > 1e-6 {
		t.Fatalf("standardized stats = %+v", s)
	}
}

func TestStandardizeConstant(t *testing.T) {
	f := NewField(Grid{NLat: 1, NLon: 2})
	copy(f.Data, []float32{3, 3})
	if _, std := f.Standardize(); std != 0 {
		t.Fatalf("std = %v", std)
	}
	if f.Data[0] != 0 {
		t.Fatal("constant standardize should zero")
	}
}

func TestTileExact(t *testing.T) {
	g := Grid{NLat: 4, NLon: 6}
	f := NewField(g)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	patches, err := f.Tile(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 4 {
		t.Fatalf("patches = %d, want 4", len(patches))
	}
	p := patches[1] // top-right tile: rows 0-1, cols 3-5
	if p.Row0 != 0 || p.Col0 != 3 {
		t.Fatalf("patch origin = (%d,%d)", p.Row0, p.Col0)
	}
	if p.Data[p.Index(0, 0)] != float32(g.Index(0, 3)) {
		t.Fatalf("patch content wrong: %v", p.Data)
	}
	if p.Data[p.Index(1, 2)] != float32(g.Index(1, 5)) {
		t.Fatalf("patch content wrong at (1,2): %v", p.Data)
	}
}

func TestTileDropsRagged(t *testing.T) {
	f := NewField(Grid{NLat: 5, NLon: 7})
	patches, err := f.Tile(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 4 { // 2 tile-rows × 2 tile-cols
		t.Fatalf("patches = %d, want 4", len(patches))
	}
}

func TestTileValidation(t *testing.T) {
	f := NewField(Grid{NLat: 4, NLon: 4})
	if _, err := f.Tile(0, 2); err == nil {
		t.Fatal("zero patch accepted")
	}
	if _, err := f.Tile(8, 2); err == nil {
		t.Fatal("oversized patch accepted")
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// equator quarter-circumference ~ 10007.5 km
	d := Haversine(0, 0, 0, 90)
	if math.Abs(d-10007.5) > 10 {
		t.Fatalf("quarter equator = %v", d)
	}
	if Haversine(45, 45, 45, 45) != 0 {
		t.Fatal("zero distance expected")
	}
	// antipodal ~ 20015 km
	d = Haversine(0, 0, 0, 180)
	if math.Abs(d-20015) > 10 {
		t.Fatalf("antipodal = %v", d)
	}
}

// Property: tiling then reassembling recovers every covered cell.
func TestTileCoversAllCellsProperty(t *testing.T) {
	f := func(nl, nc, ph, pw uint8) bool {
		g := Grid{NLat: int(nl%12) + 4, NLon: int(nc%12) + 4}
		h := int(ph%3) + 1
		w := int(pw%3) + 1
		fld := NewField(g)
		for i := range fld.Data {
			fld.Data[i] = float32(i)
		}
		patches, err := fld.Tile(h, w)
		if err != nil {
			return false
		}
		for _, p := range patches {
			for r := 0; r < p.H; r++ {
				for c := 0; c < p.W; c++ {
					if p.Data[p.Index(r, c)] != float32(g.Index(p.Row0+r, p.Col0+c)) {
						return false
					}
				}
			}
		}
		return len(patches) == (g.NLat/h)*(g.NLon/w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: regridding never produces values outside the source range
// (bilinear interpolation is a convex combination).
func TestRegridConvexityProperty(t *testing.T) {
	f := func(vals []float32) bool {
		src := Grid{NLat: 6, NLon: 8}
		fld := NewField(src)
		for i := range fld.Data {
			if len(vals) > 0 {
				v := vals[i%len(vals)]
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					v = 0
				}
				fld.Data[i] = v
			}
		}
		s := fld.Statistics()
		out := fld.Regrid(Grid{NLat: 9, NLon: 13})
		for _, v := range out.Data {
			if float64(v) < s.Min-1e-3 || float64(v) > s.Max+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
