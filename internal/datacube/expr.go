// Package datacube implements an Ophidia-like High Performance Data
// Analytics engine (Fiore et al. 2014; Elia et al. 2021): datacubes are
// multidimensional float32 arrays partitioned into fragments that are
// distributed over a pool of in-memory I/O servers and processed in
// parallel by array-oriented operators (import, subset, apply, reduce,
// intercube comparison, export). Cubes stay in memory between
// operators, which is what lets the paper's workflow load the long-term
// climatology baseline once and reuse it across index pipelines (§5.3).
package datacube

import (
	"fmt"
	"math"
	"strconv"
	"sync"
)

// Expr is a compiled elementwise expression over the variable x, the
// engine's analogue of Ophidia's oph_predicate/oph_math primitives.
// Supported grammar (precedence low→high):
//
//	ternary:  cond ? a : b
//	or:       a || b
//	and:      a && b
//	cmp:      == != < <= > >=
//	add:      + -
//	mul:      * /
//	unary:    - !
//	primary:  number | x | ( expr ) | fn(args...)
//
// Functions: abs, sqrt, exp, log, pow, min, max. Comparison and logic
// yield 1 or 0, so masks compose arithmetically as in the paper's
// Listing 1: oph_predicate(measure, 'x>0', '1', '0').
type Expr struct {
	prog ast
	src  string
}

// Compile parses the expression once; Eval can then be called per
// element cheaply and concurrently.
func Compile(src string) (*Expr, error) {
	p := &parser{toks: lex(src)}
	node, err := p.parseTernary()
	if err != nil {
		return nil, fmt.Errorf("datacube: compile %q: %w", src, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("datacube: compile %q: trailing input at %q", src, p.peek().text)
	}
	return &Expr{prog: node, src: src}, nil
}

// MustCompile is Compile that panics, for static expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// The workflow applies a small fixed set of expressions (masks,
// thresholds, scalings) once per year and branch; caching the compiled
// program keeps repeat compilation off the hot path. Compiled Exprs are
// immutable and Eval is concurrency-safe, so sharing is sound. The
// cache is bounded: past the cap, callers compile fresh (correctness is
// unaffected, only the shortcut is skipped).
const exprCacheMax = 256

var (
	exprCacheMu sync.RWMutex
	exprCache   = make(map[string]*Expr)
)

// compileCached is Compile with memoization; Apply and the fused plan
// compiler use it.
func compileCached(src string) (*Expr, error) {
	exprCacheMu.RLock()
	e, ok := exprCache[src]
	exprCacheMu.RUnlock()
	if ok {
		return e, nil
	}
	e, err := Compile(src)
	if err != nil {
		return nil, err
	}
	exprCacheMu.Lock()
	if len(exprCache) < exprCacheMax {
		exprCache[src] = e
	}
	exprCacheMu.Unlock()
	return e, nil
}

// Eval computes the expression at x.
func (e *Expr) Eval(x float64) float64 { return e.prog.eval(x) }

// String returns the source text.
func (e *Expr) String() string { return e.src }

// --- lexer -------------------------------------------------------------

type tokKind int

const (
	tokNum tokKind = iota
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
	tokEOF
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				toks = append(toks, token{kind: tokOp, text: "<badnum>"})
			} else {
				toks = append(toks, token{kind: tokNum, num: n, text: src[i:j]})
			}
			i = j
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			j := i
			for j < len(src) && (src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9' || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j]})
			i = j
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ","})
			i++
		default:
			// multi-char operators
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokOp, text: two})
				i += 2
			default:
				toks = append(toks, token{kind: tokOp, text: string(c)})
				i++
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: ""})
	return toks
}

// --- AST ---------------------------------------------------------------

type ast interface{ eval(x float64) float64 }

type numNode float64

func (n numNode) eval(float64) float64 { return float64(n) }

type varNode struct{}

func (varNode) eval(x float64) float64 { return x }

type unaryNode struct {
	op string
	a  ast
}

func (n unaryNode) eval(x float64) float64 {
	v := n.a.eval(x)
	switch n.op {
	case "-":
		return -v
	case "!":
		if v != 0 {
			return 0
		}
		return 1
	}
	return math.NaN()
}

type binNode struct {
	op   string
	a, b ast
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (n binNode) eval(x float64) float64 {
	a, b := n.a.eval(x), n.b.eval(x)
	switch n.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		return a / b
	case "==":
		return b2f(a == b)
	case "!=":
		return b2f(a != b)
	case "<":
		return b2f(a < b)
	case "<=":
		return b2f(a <= b)
	case ">":
		return b2f(a > b)
	case ">=":
		return b2f(a >= b)
	case "&&":
		return b2f(a != 0 && b != 0)
	case "||":
		return b2f(a != 0 || b != 0)
	}
	return math.NaN()
}

type ternNode struct{ cond, a, b ast }

func (n ternNode) eval(x float64) float64 {
	if n.cond.eval(x) != 0 {
		return n.a.eval(x)
	}
	return n.b.eval(x)
}

type callNode struct {
	fn   string
	args []ast
}

func (n callNode) eval(x float64) float64 {
	switch n.fn {
	case "abs":
		return math.Abs(n.args[0].eval(x))
	case "sqrt":
		return math.Sqrt(n.args[0].eval(x))
	case "exp":
		return math.Exp(n.args[0].eval(x))
	case "log":
		return math.Log(n.args[0].eval(x))
	case "pow":
		return math.Pow(n.args[0].eval(x), n.args[1].eval(x))
	case "min":
		return math.Min(n.args[0].eval(x), n.args[1].eval(x))
	case "max":
		return math.Max(n.args[0].eval(x), n.args[1].eval(x))
	}
	return math.NaN()
}

// --- parser ------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) expect(kind tokKind, what string) error {
	if p.peek().kind != kind {
		return fmt.Errorf("expected %s, got %q", what, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) parseTernary() (ast, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && p.peek().text == "?" {
		p.next()
		a, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokOp || p.peek().text != ":" {
			return nil, fmt.Errorf("expected ':' in ternary, got %q", p.peek().text)
		}
		p.next()
		b, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return ternNode{cond: cond, a: a, b: b}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(ops []string, sub func() (ast, error)) (ast, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp {
		matched := false
		for _, op := range ops {
			if p.peek().text == op {
				p.next()
				right, err := sub()
				if err != nil {
					return nil, err
				}
				left = binNode{op: op, a: left, b: right}
				matched = true
				break
			}
		}
		if !matched {
			break
		}
	}
	return left, nil
}

func (p *parser) parseOr() (ast, error) {
	return p.parseBinary([]string{"||"}, p.parseAnd)
}

func (p *parser) parseAnd() (ast, error) {
	return p.parseBinary([]string{"&&"}, p.parseCmp)
}

func (p *parser) parseCmp() (ast, error) {
	return p.parseBinary([]string{"==", "!=", "<=", ">=", "<", ">"}, p.parseAdd)
}

func (p *parser) parseAdd() (ast, error) {
	return p.parseBinary([]string{"+", "-"}, p.parseMul)
}

func (p *parser) parseMul() (ast, error) {
	return p.parseBinary([]string{"*", "/"}, p.parseUnary)
}

func (p *parser) parseUnary() (ast, error) {
	if p.peek().kind == tokOp && (p.peek().text == "-" || p.peek().text == "!") {
		op := p.next().text
		a, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: op, a: a}, nil
	}
	return p.parsePrimary()
}

var fnArity = map[string]int{
	"abs": 1, "sqrt": 1, "exp": 1, "log": 1,
	"pow": 2, "min": 2, "max": 2,
}

func (p *parser) parsePrimary() (ast, error) {
	t := p.peek()
	switch t.kind {
	case tokNum:
		p.next()
		return numNode(t.num), nil
	case tokIdent:
		p.next()
		if t.text == "x" {
			return varNode{}, nil
		}
		arity, ok := fnArity[t.text]
		if !ok {
			return nil, fmt.Errorf("unknown identifier %q", t.text)
		}
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var args []ast
		for i := 0; i < arity; i++ {
			if i > 0 {
				if err := p.expect(tokComma, ","); err != nil {
					return nil, err
				}
			}
			a, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return callNode{fn: t.text, args: args}, nil
	case tokLParen:
		p.next()
		a, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, fmt.Errorf("unexpected token %q", t.text)
	}
}

// Predicate builds the Ophidia-style predicate expression
// "cond ? then : else" from its three parts, mirroring
// oph_predicate('measure', cond, then, else) in Listing 1.
func Predicate(cond, then, els string) (*Expr, error) {
	return Compile("(" + cond + ") ? (" + then + ") : (" + els + ")")
}
