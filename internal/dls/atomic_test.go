package dls

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestCopyVerifiedAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.nc")
	dst := filepath.Join(dir, "dst.nc")
	if err := os.WriteFile(src, []byte("new contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, sum, err := CopyVerified(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("new contents")) || sum == "" {
		t.Fatalf("n=%d sum=%q", n, sum)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "new contents" {
		t.Fatalf("dst = %q, %v", got, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestCopyVerifiedFailureLeavesNoPartialFile(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "dst.nc")
	if _, _, err := CopyVerified(filepath.Join(dir, "missing.nc"), dst); err == nil {
		t.Fatal("copy of a missing source succeeded")
	}
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed copy left a destination file: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed copy left droppings: %v", entries)
	}
}

func TestStageInRetriesTransientCopyFaults(t *testing.T) {
	root := t.TempDir()
	writeFiles(t, root, map[string]string{"t2m.nc": "temperature"})
	c := NewCatalog()
	if err := c.Register(Dataset{Name: "era5", Root: root, Files: []string{"t2m.nc"}}); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewSeeded(3,
		chaos.Rule{Site: chaos.SiteCopy, Op: "era5/", Attempt: 0, Kind: chaos.Transient},
		chaos.Rule{Site: chaos.SiteCopy, Op: "era5/", Attempt: 1, Kind: chaos.Latency, Delay: time.Millisecond},
	)
	var slept []time.Duration
	s := NewService(c)
	s.Injector = inj
	s.CopyRetries = 2
	s.sleepFn = func(d time.Duration) { slept = append(slept, d) }

	dst := t.TempDir()
	paths, err := s.StageIn("era5", dst)
	if err != nil {
		t.Fatalf("transient fault should be retried away: %v", err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	got, err := os.ReadFile(paths[0])
	if err != nil || string(got) != "temperature" {
		t.Fatalf("staged file = %q, %v", got, err)
	}
	if inj.CountKind(chaos.Transient) != 1 || inj.CountKind(chaos.Latency) != 1 {
		t.Fatalf("unexpected injections: %+v", inj.Events())
	}
	// One backoff after the transient failure plus the injected latency.
	if len(slept) != 2 {
		t.Fatalf("slept %v, want backoff + injected latency", slept)
	}
}

func TestStageInPermanentCopyFaultFailsFast(t *testing.T) {
	root := t.TempDir()
	writeFiles(t, root, map[string]string{"t2m.nc": "temperature"})
	c := NewCatalog()
	if err := c.Register(Dataset{Name: "era5", Root: root, Files: []string{"t2m.nc"}}); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewSeeded(3, chaos.Rule{Site: chaos.SiteCopy, Kind: chaos.PermanentKind})
	s := NewService(c)
	s.Injector = inj
	s.CopyRetries = 5
	s.sleepFn = func(time.Duration) { t.Error("permanent fault must not back off") }

	if _, err := s.StageIn("era5", t.TempDir()); err == nil {
		t.Fatal("permanent fault should fail stage-in")
	}
	if inj.Injected() != 1 {
		t.Fatalf("injector fired %d times; permanent must not be retried", inj.Injected())
	}
}
