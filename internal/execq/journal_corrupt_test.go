package execq

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A partial fsync after power loss can tear lines anywhere in the
// journal, not just the final append. Replay must skip each bad line
// with a counted warning and keep every decodable record.
func TestJournalReplaySkipsCorruptMidFileLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	lines := []string{
		`{"op":"submit","id":"j1","principal":"a","t":"2026-01-01T00:00:00Z"}`,
		`{"op":"submit","id":"j2","principal":"a","t":"2026-01-01T00:00:01Z"}`,
		"\x00\x00garbage not json at all\x7f",                // mid-file garbage
		`{"op":"state","id":"j2","state":"DONE","t":"2026-0`, // truncated mid-record
		`{"op":"submit","id":"j3","principal":"b","t":"2026-01-01T00:00:02Z"}`,
		`{"op":"state","id":"j1","state":"DONE","t":"2026-01-01T00:00:03Z"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	pending, skipped, err := replayJournal(path)
	if err != nil {
		t.Fatalf("corrupt mid-file lines must not abort recovery: %v", err)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (garbage + truncated)", skipped)
	}
	// j1 finished; j2's DONE transition was the torn line, so it is
	// conservatively still live; j3 never finished.
	ids := make([]string, len(pending))
	for i, j := range pending {
		ids[i] = j.ID
	}
	if len(pending) != 2 || ids[0] != "j2" || ids[1] != "j3" {
		t.Fatalf("pending = %v, want [j2 j3]", ids)
	}
}

func TestJournalSkippedSurfacedInStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"op":"submit","id":"live","principal":"a","t":"2026-01-01T00:00:00Z"}` + "\n" +
		"{{{{not json\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	q, err := New(Config{
		Workers: 1, QueueDepth: 4, JournalPath: path,
		Handler: func(ctx context.Context, j JobView) error {
			done <- j.ID
			return nil
		},
	})
	if err != nil {
		t.Fatalf("recovery aborted on a corrupt line: %v", err)
	}
	defer q.Close()
	if got := <-done; got != "live" {
		t.Fatalf("recovered job = %q", got)
	}
	st := q.Stats()
	if st.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", st.Recovered)
	}
	if st.JournalSkipped != 1 {
		t.Fatalf("JournalSkipped = %d, want 1", st.JournalSkipped)
	}
	if b, err := json.Marshal(st); err != nil || !strings.Contains(string(b), `"journal_skipped":1`) {
		t.Fatalf("stats JSON should carry the counted warning: %s (%v)", b, err)
	}
}
