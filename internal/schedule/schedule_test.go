package schedule

import (
	"math"
	"testing"
	"time"

	"repro/internal/compss"
)

// prov builds a provenance document by hand: tasks with durations (in
// seconds) and edges.
func prov(durations map[int]float64, names map[int]string, edges [][2]int) *compss.Provenance {
	p := &compss.Provenance{Workflow: "synthetic", CreatedAt: time.Now()}
	for id := 1; id <= len(durations); id++ {
		name := names[id]
		if name == "" {
			name = "t"
		}
		p.Tasks = append(p.Tasks, compss.TaskProvenance{
			ID: id, Name: name, State: "DONE", DurationMS: durations[id] * 1000,
		})
	}
	p.Edges = edges
	return p
}

func TestReplayChainEqualsSum(t *testing.T) {
	p := prov(map[int]float64{1: 2, 2: 3, 3: 5}, nil, [][2]int{{1, 2}, {2, 3}})
	r, err := Replay(p, ReplayConfig{Nodes: 4, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-10) > 1e-9 {
		t.Fatalf("chain makespan = %v, want 10", r.Makespan)
	}
	if math.Abs(r.CriticalPath-10) > 1e-9 {
		t.Fatalf("critical path = %v", r.CriticalPath)
	}
	if r.Tasks != 3 {
		t.Fatalf("tasks = %d", r.Tasks)
	}
}

func TestReplayFanOutParallelizes(t *testing.T) {
	// 8 independent 1s tasks
	d := map[int]float64{}
	for i := 1; i <= 8; i++ {
		d[i] = 1
	}
	p := prov(d, nil, nil)
	one, err := Replay(p, ReplayConfig{Nodes: 1, CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.Makespan-8) > 1e-9 {
		t.Fatalf("serial makespan = %v", one.Makespan)
	}
	four, err := Replay(p, ReplayConfig{Nodes: 2, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(four.Makespan-2) > 1e-9 {
		t.Fatalf("4-core makespan = %v, want 2", four.Makespan)
	}
	if four.Efficiency < 0.99 {
		t.Fatalf("efficiency = %v", four.Efficiency)
	}
}

func TestReplayRespectsDependencies(t *testing.T) {
	// diamond: 1 → (2,3) → 4; durations 1, 2, 5, 1
	p := prov(map[int]float64{1: 1, 2: 2, 3: 5, 4: 1}, nil,
		[][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	r, err := Replay(p, ReplayConfig{Nodes: 2, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	// makespan = 1 + max(2,5) + 1 = 7 with enough cores
	if math.Abs(r.Makespan-7) > 1e-9 {
		t.Fatalf("diamond makespan = %v, want 7", r.Makespan)
	}
	if math.Abs(r.CriticalPath-7) > 1e-9 {
		t.Fatalf("critical path = %v", r.CriticalPath)
	}
}

func TestReplayMakespanNeverBelowCriticalPath(t *testing.T) {
	p := prov(map[int]float64{1: 1, 2: 2, 3: 3, 4: 4, 5: 2}, nil,
		[][2]int{{1, 3}, {2, 3}, {3, 5}, {4, 5}})
	for _, nodes := range []int{1, 2, 8} {
		r, err := Replay(p, ReplayConfig{Nodes: nodes, CoresPerNode: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < r.CriticalPath-1e-9 {
			t.Fatalf("nodes=%d: makespan %v < critical path %v", nodes, r.Makespan, r.CriticalPath)
		}
	}
}

func TestReplaySpecsMultiCore(t *testing.T) {
	// two 4-core tasks on a 1×4 machine must serialize
	p := prov(map[int]float64{1: 1, 2: 1}, map[int]string{1: "wide", 2: "wide"}, nil)
	r, err := Replay(p, ReplayConfig{
		Nodes: 1, CoresPerNode: 4,
		Specs: map[string]TaskSpec{"wide": {Cores: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("wide makespan = %v, want 2", r.Makespan)
	}
	// cores clamp to node size rather than failing
	r, err = Replay(p, ReplayConfig{
		Nodes: 1, CoresPerNode: 2,
		Specs: map[string]TaskSpec{"wide": {Cores: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("clamped makespan = %v", r.Makespan)
	}
}

func TestReplayValidation(t *testing.T) {
	p := prov(map[int]float64{1: 1}, nil, nil)
	if _, err := Replay(p, ReplayConfig{Nodes: 0, CoresPerNode: 1}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := prov(map[int]float64{1: 1}, nil, [][2]int{{1, 99}})
	if _, err := Replay(bad, ReplayConfig{Nodes: 1, CoresPerNode: 1}); err == nil {
		t.Fatal("dangling edge accepted")
	}
}

func TestSweepMonotone(t *testing.T) {
	d := map[int]float64{}
	var edges [][2]int
	// two layers of 6 tasks
	for i := 1; i <= 12; i++ {
		d[i] = 1
	}
	for i := 1; i <= 6; i++ {
		edges = append(edges, [2]int{i, i + 6})
	}
	p := prov(d, nil, edges)
	results, err := Sweep(p, []int{1, 2, 4}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Makespan > results[i-1].Makespan+1e-9 {
			t.Fatalf("makespan not monotone: %+v", results)
		}
	}
	// with 4×2 = 8 cores ≥ layer width, makespan hits the critical path
	last := results[len(results)-1]
	if math.Abs(last.Makespan-last.CriticalPath) > 1e-9 {
		t.Fatalf("wide machine makespan %v != critical path %v", last.Makespan, last.CriticalPath)
	}
}

// TestReplayRealWorkflowProvenance replays an actual runtime execution.
func TestReplayRealWorkflowProvenance(t *testing.T) {
	rt := compss.NewRuntime(compss.Config{Workers: 4})
	work, err := rt.Register(compss.TaskDef{
		Name:    "work",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			time.Sleep(2 * time.Millisecond)
			return []any{args[0]}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*compss.Future
	for i := 0; i < 6; i++ {
		f, err := rt.InvokeOne(work, compss.In(i))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	join := make([]compss.Param, len(futs))
	for i, f := range futs {
		join[i] = compss.In(f)
	}
	if _, err := rt.InvokeOne(work, join...); err != nil {
		t.Fatal(err)
	}
	if err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	p := rt.Provenance("fan")
	serial, err := Replay(p, ReplayConfig{Nodes: 1, CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Replay(p, ReplayConfig{Nodes: 1, CoresPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Makespan >= serial.Makespan {
		t.Fatalf("wide %v not faster than serial %v", wide.Makespan, serial.Makespan)
	}
}
