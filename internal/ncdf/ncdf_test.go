package ncdf

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	ds := NewDataset()
	if err := ds.AddDim("lat", 3); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddDim("lon", 4); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddDim("time", 2); err != nil {
		t.Fatal(err)
	}
	ds.Attrs["model"] = String("CMCC-CM3-sim")
	ds.Attrs["year"] = Int(2040)
	ds.Attrs["resolution_deg"] = Float(0.25)
	data := make([]float32, 2*3*4)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	v, err := ds.AddVar("TMAX", []string{"time", "lat", "lon"}, data)
	if err != nil {
		t.Fatal(err)
	}
	v.Attrs["units"] = String("K")
	psl := make([]float32, 3*4)
	for i := range psl {
		psl[i] = 101325 + float32(i)
	}
	if _, err := ds.AddVar("PSL", []string{"lat", "lon"}, psl); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAddDimValidation(t *testing.T) {
	ds := NewDataset()
	if err := ds.AddDim("x", 0); err == nil {
		t.Fatal("zero-length dim accepted")
	}
	if err := ds.AddDim("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddDim("x", 3); err == nil {
		t.Fatal("duplicate dim accepted")
	}
}

func TestAddVarValidation(t *testing.T) {
	ds := NewDataset()
	ds.AddDim("a", 2)
	if _, err := ds.AddVar("v", []string{"missing"}, nil); err == nil {
		t.Fatal("unknown dim accepted")
	}
	if _, err := ds.AddVar("v", []string{"a"}, make([]float32, 3)); err == nil {
		t.Fatal("wrong payload size accepted")
	}
	if _, err := ds.AddVar("v", []string{"a"}, make([]float32, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddVar("v", []string{"a"}, make([]float32, 2)); err == nil {
		t.Fatal("duplicate variable accepted")
	}
}

func TestRoundTripMemory(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dims) != 3 || got.Dims[0].Name != "lat" || got.Dims[0].Len != 3 {
		t.Fatalf("dims = %+v", got.Dims)
	}
	if got.Attrs["model"].S != "CMCC-CM3-sim" || got.Attrs["year"].I != 2040 || got.Attrs["resolution_deg"].F != 0.25 {
		t.Fatalf("attrs = %+v", got.Attrs)
	}
	v, err := got.Var("TMAX")
	if err != nil {
		t.Fatal(err)
	}
	if v.Attrs["units"].S != "K" {
		t.Fatalf("var attrs = %+v", v.Attrs)
	}
	if len(v.Data) != 24 || v.Data[5] != 2.5 {
		t.Fatalf("data = len %d, [5]=%v", len(v.Data), v.Data[5])
	}
	shape, err := got.Shape(v)
	if err != nil || len(shape) != 3 || shape[0] != 2 || shape[1] != 3 || shape[2] != 4 {
		t.Fatalf("shape = %v (%v)", shape, err)
	}
}

func TestRoundTripFile(t *testing.T) {
	ds := sampleDataset(t)
	path := filepath.Join(t.TempDir(), "day.nc")
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if names := got.VarNames(); len(names) != 2 || names[0] != "PSL" || names[1] != "TMAX" {
		t.Fatalf("vars = %v", names)
	}
	// atomic write leaves no tmp file behind
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp file left behind")
	}
}

func TestReadHeaderFileSkipsPayload(t *testing.T) {
	ds := sampleDataset(t)
	path := filepath.Join(t.TempDir(), "day.nc")
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadHeaderFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, err := hdr.Var("TMAX")
	if err != nil {
		t.Fatal(err)
	}
	if v.Data != nil {
		t.Fatal("header read should not load data")
	}
}

func TestReadVariableFileSelective(t *testing.T) {
	ds := sampleDataset(t)
	path := filepath.Join(t.TempDir(), "day.nc")
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	_, v, err := ReadVariableFile(path, "PSL")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Data) != 12 || v.Data[0] != 101325 {
		t.Fatalf("PSL data = %v", v.Data[:3])
	}
	if _, _, err := ReadVariableFile(path, "NOPE"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXXjunk"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-10])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := Read(bytes.NewReader(b[:10])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestVarNotFound(t *testing.T) {
	ds := NewDataset()
	if _, err := ds.Var("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ds.DimLen("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpecialFloatValuesSurvive(t *testing.T) {
	ds := NewDataset()
	ds.AddDim("n", 4)
	data := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), -0}
	ds.AddVar("v", []string{"n"}, data)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := got.Var("v")
	if !math.IsNaN(float64(v.Data[0])) || !math.IsInf(float64(v.Data[1]), 1) || !math.IsInf(float64(v.Data[2]), -1) {
		t.Fatalf("special values corrupted: %v", v.Data)
	}
}

// Property: any dataset round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float32, name string, attr int64) bool {
		if len(vals) == 0 {
			vals = []float32{1}
		}
		if len(vals) > 1000 {
			vals = vals[:1000]
		}
		ds := NewDataset()
		if err := ds.AddDim("n", len(vals)); err != nil {
			return false
		}
		ds.Attrs["a"] = Int(attr)
		if _, err := ds.AddVar("v", []string{"n"}, vals); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		v, err := got.Var("v")
		if err != nil || got.Attrs["a"].I != attr || len(v.Data) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float32bits(v.Data[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDeterministicAttrOrder(t *testing.T) {
	mk := func() []byte {
		ds := NewDataset()
		ds.AddDim("n", 1)
		ds.Attrs["z"] = Int(1)
		ds.Attrs["a"] = Int(2)
		ds.Attrs["m"] = String("x")
		ds.AddVar("v", []string{"n"}, []float32{1})
		var buf bytes.Buffer
		ds.Write(&buf)
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("encoding not deterministic")
	}
}
