package hpcwaas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/execstore"
)

func openTestStore(t *testing.T, cfg execstore.Config) *execstore.Store {
	t.Helper()
	s, err := execstore.Open(cfg)
	if err != nil {
		t.Fatalf("execstore.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newTestFrontend(t *testing.T, cfg FrontendConfig) *Frontend {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
		if err := cfg.Registry.Register(demoEntry("wf", nil)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewFrontend(cfg)
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	t.Cleanup(func() { f.KillExecutor() })
	return f
}

func postExecution(t *testing.T, url, workflow string, params map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"workflow": workflow, "params": params})
	resp, err := http.Post(url+"/api/executions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestFrontendShedStatusMapping(t *testing.T) {
	t.Run("tenant-quota is 429", func(t *testing.T) {
		store := openTestStore(t, execstore.Config{PerTenantLimit: 1})
		f := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store})
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()

		resp := postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first POST: %d", resp.StatusCode)
		}
		resp.Body.Close()

		resp = postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("quota shed: %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("missing Retry-After header")
		}
		body := decodeBody[map[string]any](t, resp)
		if body["shed_reason"] != "tenant-quota" {
			t.Fatalf("shed_reason = %v", body["shed_reason"])
		}
		if ms, ok := body["retry_after_ms"].(float64); !ok || ms <= 0 {
			t.Fatalf("retry_after_ms = %v", body["retry_after_ms"])
		}
	})

	t.Run("depth is 503", func(t *testing.T) {
		store := openTestStore(t, execstore.Config{MaxPending: 1})
		f := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store})
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()

		resp := postExecution(t, srv.URL, "wf", nil)
		resp.Body.Close()
		resp = postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("depth shed: %d, want 503", resp.StatusCode)
		}
		body := decodeBody[map[string]any](t, resp)
		if body["shed_reason"] != "depth" {
			t.Fatalf("shed_reason = %v", body["shed_reason"])
		}
	})

	t.Run("backlog-cost is 503 with estimate", func(t *testing.T) {
		store := openTestStore(t, execstore.Config{
			DefaultCostSeconds: 100,
			MaxEstimatedWait:   time.Second,
		})
		f := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store})
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()

		resp := postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("cost shed: %d, want 503", resp.StatusCode)
		}
		body := decodeBody[map[string]any](t, resp)
		if body["shed_reason"] != "backlog-cost" {
			t.Fatalf("shed_reason = %v", body["shed_reason"])
		}
		if ms, ok := body["estimated_wait_ms"].(float64); !ok || ms < 1000 {
			t.Fatalf("estimated_wait_ms = %v", body["estimated_wait_ms"])
		}
	})

	t.Run("draining is 503", func(t *testing.T) {
		store := openTestStore(t, execstore.Config{})
		f := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store})
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()
		store.Drain()
		resp := postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining shed: %d, want 503", resp.StatusCode)
		}
		body := decodeBody[map[string]any](t, resp)
		if body["shed_reason"] != "draining" {
			t.Fatalf("shed_reason = %v", body["shed_reason"])
		}
	})
}

// TestFrontendRetryAfterIsSufficient is the accuracy contract: the
// retry_after_ms a rate-shed response carries comes from the token
// bucket's actual next-token time, so a client that sleeps exactly that
// long (not a millisecond more) must be admitted on its next attempt.
func TestFrontendRetryAfterIsSufficient(t *testing.T) {
	store := openTestStore(t, execstore.Config{RatePerSec: 4, Burst: 1})
	f := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp := postExecution(t, srv.URL, "wf", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d", resp.StatusCode)
	}
	resp.Body.Close()

	for i := 0; i < 3; i++ {
		resp = postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("attempt %d: %d, want 429", i, resp.StatusCode)
		}
		body := decodeBody[map[string]any](t, resp)
		ms, ok := body["retry_after_ms"].(float64)
		if !ok || ms <= 0 || ms > 260 {
			t.Fatalf("retry_after_ms = %v, want (0, 260]", body["retry_after_ms"])
		}
		time.Sleep(time.Duration(ms) * time.Millisecond) // exactly the hint
		resp = postExecution(t, srv.URL, "wf", nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("attempt %d after sleeping exactly retry_after_ms: %d, want 202", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestFrontendReplicaSetHTTPSoak drives concurrent HTTP clients against
// three API replicas over one store while a chaos loop kills and
// replaces executor replicas. Any frontend must answer for any
// execution, and every submission must complete exactly once.
func TestFrontendReplicaSetHTTPSoak(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(demoEntry("wf", func(params map[string]string) (map[string]string, error) {
		time.Sleep(2 * time.Millisecond)
		return map[string]string{"echo": params["msg"]}, nil
	})); err != nil {
		t.Fatal(err)
	}
	store := openTestStore(t, execstore.Config{
		MaxPending: 1 << 12,
		LeaseTTL:   250 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})

	const nFront = 3
	fronts := make([]*Frontend, nFront)
	servers := make([]*httptest.Server, nFront)
	for i := range fronts {
		fronts[i] = newTestFrontend(t, FrontendConfig{
			ID: fmt.Sprintf("api-%d", i), Store: store, Registry: reg, Workers: 2,
		})
		servers[i] = httptest.NewServer(fronts[i].Handler())
		defer servers[i].Close()
	}

	// Chaos: kill one frontend's executor and replace its capacity with
	// a fresh standalone executor replica.
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		gen := 0
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(80 * time.Millisecond):
			}
			fronts[gen%nFront].KillExecutor()
			rep, err := execstore.NewReplica(execstore.ReplicaConfig{
				ID:      fmt.Sprintf("spare-%d", gen),
				Store:   store,
				Workers: 2,
				Handler: fronts[0].runTask,
			})
			if err == nil {
				t.Cleanup(rep.Kill)
			}
			gen++
		}
	}()

	// Concurrent clients, each using a different frontend, retrying on
	// shed using the precise hint.
	const nTasks = 120
	ids := make([]string, nTasks)
	var wg sync.WaitGroup
	for c := 0; c < nFront; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := servers[c].URL
			for i := c; i < nTasks; i += nFront {
				for {
					resp := postExecution(t, client, "wf", map[string]string{"msg": fmt.Sprintf("m-%d", i)})
					if resp.StatusCode == http.StatusAccepted {
						ex := decodeBody[execution](t, resp)
						ids[i] = ex.ID
						break
					}
					body := decodeBody[map[string]any](t, resp)
					ms, _ := body["retry_after_ms"].(float64)
					if ms <= 0 {
						t.Errorf("submit %d: status %d without retry_after_ms", i, resp.StatusCode)
						return
					}
					time.Sleep(time.Duration(ms) * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := store.WaitIdle(ctx); err != nil {
		t.Fatalf("soak did not converge: %v (stats %+v)", err, store.Stats())
	}
	close(stopChaos)
	chaosWG.Wait()

	// Poll a DIFFERENT frontend than the one that accepted each task:
	// statelessness means any replica answers.
	for i, id := range ids {
		url := servers[(i+1)%nFront].URL
		resp, err := http.Get(url + "/api/executions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s from peer replica: %d", id, resp.StatusCode)
		}
		ex := decodeBody[execution](t, resp)
		if ex.Status != ExecDone {
			t.Fatalf("execution %s: %s (err %q), want DONE", id, ex.Status, ex.Error)
		}
		if want := fmt.Sprintf("m-%d", i); ex.Results["echo"] != want {
			t.Fatalf("execution %s results = %v, want echo=%s", id, ex.Results, want)
		}
	}
	st := store.Stats()
	if st.Completed != nTasks {
		t.Fatalf("Completed = %d, want exactly %d", st.Completed, nTasks)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("failed=%d canceled=%d", st.Failed, st.Canceled)
	}
	t.Logf("http soak: %d reclaims, %d fenced, epoch %d", st.Reclaimed, st.Fenced, st.Epoch)
}

func TestFrontendCancelAndLookupAcrossReplicas(t *testing.T) {
	reg := NewRegistry()
	block := make(chan struct{})
	if err := reg.Register(demoEntry("wf", func(params map[string]string) (map[string]string, error) {
		<-block
		return map[string]string{}, nil
	})); err != nil {
		t.Fatal(err)
	}
	store := openTestStore(t, execstore.Config{LeaseTTL: time.Minute})
	// api-0 has no executor; api-1 executes.
	f0 := newTestFrontend(t, FrontendConfig{ID: "api-0", Store: store, Registry: reg})
	f1 := newTestFrontend(t, FrontendConfig{ID: "api-1", Store: store, Registry: reg, Workers: 1})
	defer close(block)
	srv0 := httptest.NewServer(f0.Handler())
	defer srv0.Close()
	srv1 := httptest.NewServer(f1.Handler())
	defer srv1.Close()

	resp := postExecution(t, srv0.URL, "wf", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	ex := decodeBody[execution](t, resp)

	// The pure-API replica accepted it; the executing replica leases it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv1.URL + "/api/executions/" + ex.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeBody[execution](t, resp)
		if got.Status == ExecRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("execution never started: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cancel via a third path (DELETE on the non-executing replica).
	req, _ := http.NewRequest(http.MethodDelete, srv0.URL+"/api/executions/"+ex.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp2.StatusCode)
	}
	resp2.Body.Close()

	// 404 vs 410 taxonomy.
	resp3, _ := http.Get(srv0.URL + "/api/executions/nonexistent")
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", resp3.StatusCode)
	}
	resp3.Body.Close()
}
