package core

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/compss"
	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ml"
	"repro/internal/ncdf"
	"repro/internal/stream"
	"repro/internal/tctrack"
	"repro/internal/viz"
)

// workflow carries the wiring of one Run.
type workflow struct {
	cfg    Config
	rt     *compss.Runtime
	engine *datacube.Engine

	// task definitions
	tESM, tBaseMax, tBaseMin, tMonitor *compss.TaskDef
	tImport, tDailyMax, tDailyMin      *compss.TaskDef
	tHWDur, tHWNum, tHWFreq            *compss.TaskDef
	tCWDur, tCWNum, tCWFreq            *compss.TaskDef
	tTCPre, tTCInf, tTCGeo             *compss.TaskDef
	tValidate, tFinal                  *compss.TaskDef
}

// stepFields is the per-instant field set the TC branch consumes.
type stepFields struct {
	Day, Step int
	Fields    map[string]*grid.Field
}

// yearTC is the TC branch output for one year.
type yearTC struct {
	Year        int
	Detections  []ml.Detection
	Tracks      int
	AgreementKm float64
}

// tcVars are the variables the TC branch reads from daily files.
var tcVars = []string{"PSL", "U850", "V850", "T500", "VORT850"}

// Checkpointable task outputs cross the gob boundary as interface
// values, so every concrete type a non-ephemeral task emits must be
// registered. Cube-producing tasks are marked Ephemeral instead: their
// outputs are live in-memory pointers that cannot outlast the process.
func init() {
	gob.Register([]string(nil))
	gob.Register(stream.YearBatch{})
	gob.Register([]ml.Detection(nil))
	gob.Register(yearTC{})
	gob.Register(YearResult{})
}

// Run executes the end-to-end workflow and returns its results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.OutputDir == "" {
		return nil, fmt.Errorf("core: OutputDir is required")
	}
	for _, dir := range []string{cfg.OutputDir, cfg.ModelDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	engine := datacube.NewEngine(datacube.Config{
		Servers:         cfg.CubeServers,
		FragmentLatency: cfg.FragmentLatency,
		Metrics:         cfg.Metrics,
		Tracer:          cfg.Tracer,
	})
	defer engine.Close()
	rt := compss.NewRuntime(compss.Config{
		Workers:      cfg.Workers,
		Checkpointer: cfg.Checkpointer,
		Injector:     cfg.Injector,
		Seed:         cfg.Seed,
		Metrics:      cfg.Metrics,
		Tracer:       cfg.Tracer,
	})

	w := &workflow{cfg: cfg, rt: rt, engine: engine}
	if err := w.register(); err != nil {
		return nil, err
	}

	// #2/#3: the long-term climatology baselines, loaded once and kept
	// in memory for every year's pipelines (§5.3).
	baseMaxFut, err := rt.InvokeOne(w.tBaseMax)
	if err != nil {
		return nil, err
	}
	baseMinFut, err := rt.InvokeOne(w.tBaseMin)
	if err != nil {
		return nil, err
	}

	// #1: the ESM simulation task, producing one file per day. In
	// attach mode an external producer owns the model; the workflow
	// only consumes its output stream.
	var esmFut *compss.Future
	if !cfg.AttachOnly {
		model := esm.NewModel(cfg.esmConfig())
		esmFut, err = rt.InvokeOne(w.tESM, compss.In(model))
		if err != nil {
			return nil, err
		}
	}

	// #4 feed: watch the model output directory and group complete
	// years, while the simulation is still running (§5.2).
	watcher, err := stream.NewDirWatcher(cfg.ModelDir, `\.nc$`)
	if err != nil {
		return nil, err
	}
	watcher.Start()
	batcher := stream.NewYearBatcher(cfg.DaysPerYear, esm.YearOf)

	var validateFuts []*compss.Future
	dispatched := 0
	checkedGrid := false
	for dispatched < cfg.Years {
		path, ok := watcher.Stream().Next()
		if !ok {
			break
		}
		if !checkedGrid {
			// especially in attach mode the producer's grid is not under
			// our control; fail with a clear message instead of letting a
			// shape mismatch surface deep inside a task
			if err := checkFileGrid(path, cfg.Grid); err != nil {
				watcher.Stop()
				rt.Abort(err.Error())
				_ = rt.Shutdown()
				return nil, err
			}
			checkedGrid = true
		}
		for _, batch := range batcher.Add(path) {
			vf, err := w.wireYear(batch, baseMaxFut, baseMinFut)
			if err != nil {
				watcher.Stop()
				return nil, shutdownErr(rt, err)
			}
			validateFuts = append(validateFuts, vf)
			dispatched++
		}
	}
	watcher.Stop()
	if dispatched < cfg.Years {
		return nil, shutdownErr(rt, fmt.Errorf("core: only %d of %d years appeared in %s", dispatched, cfg.Years, cfg.ModelDir))
	}

	// Step 6: final maps over all validated years.
	finalParams := make([]compss.Param, 0, len(validateFuts))
	for _, f := range validateFuts {
		finalParams = append(finalParams, compss.In(f))
	}
	finalFut, err := rt.InvokeOne(w.tFinal, finalParams...)
	if err != nil {
		return nil, shutdownErr(rt, err)
	}

	if err := rt.Shutdown(); err != nil {
		return nil, err
	}

	// Assemble results.
	res := &Result{}
	if esmFut != nil {
		pathsAny, err := esmFut.Get()
		if err != nil {
			return nil, err
		}
		res.FilesProduced = len(pathsAny.([]string))
	} else {
		res.FilesProduced = cfg.Years * cfg.DaysPerYear
	}
	for _, vf := range validateFuts {
		v, err := vf.Get()
		if err != nil {
			return nil, err
		}
		yr := v.(YearResult)
		res.Years = append(res.Years, yr)
	}
	sort.Slice(res.Years, func(i, j int) bool { return res.Years[i].Year < res.Years[j].Year })
	fm, err := finalFut.Get()
	if err != nil {
		return nil, err
	}
	res.FinalMapPath = fm.(string)
	res.GraphDOT = rt.Graph().DOT("climate_extremes")
	res.CubeStats = engine.Stats()
	res.RuntimeStats = rt.Stats()

	// execution lineage: provenance document + Gantt quick look
	prov := rt.Provenance("climate-extremes")
	res.Gantt = prov.Gantt(72)
	res.ProvenancePath = fmt.Sprintf("%s/provenance.json", cfg.OutputDir)
	pf, err := os.Create(res.ProvenancePath)
	if err != nil {
		return nil, err
	}
	if err := prov.WriteJSON(pf); err != nil {
		pf.Close()
		return nil, err
	}
	if err := pf.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// shutdownErr drains the runtime and prefers its failure — which
// carries the root cause of an abort, e.g. chaos.ErrCrash on an
// injected crash — over the caller's invocation error.
func shutdownErr(rt *compss.Runtime, err error) error {
	if serr := rt.Shutdown(); serr != nil {
		return serr
	}
	return err
}

// register declares every task of Figures 2/3 on the runtime.
func (w *workflow) register() error {
	cfg := w.cfg
	engine := w.engine
	var err error
	reg := func(def compss.TaskDef) *compss.TaskDef {
		if err != nil {
			return nil
		}
		if def.Retries == 0 {
			def.Retries = cfg.TaskRetries
		}
		if def.Timeout == 0 {
			def.Timeout = cfg.TaskTimeout
		}
		var d *compss.TaskDef
		d, err = w.rt.Register(def)
		return d
	}

	// #1 — the coupled model run, writing one file per simulated day.
	w.tESM = reg(compss.TaskDef{
		Name:    TaskESMRun,
		Outputs: 1,
		Weight:  10,
		Fn: func(args []any) ([]any, error) {
			model := args[0].(*esm.Model)
			var diagErr error
			opts := esm.RunOptions{Dir: cfg.ModelDir, InterDayDelay: cfg.ESMDayDelay}
			if x := cfg.Exchange; x != nil {
				opts.OnDataset = func(_ string, d *esm.DayOutput, ds *ncdf.Dataset) error {
					return publishDay(x, d, ds)
				}
			}
			if cfg.OnlineDiagnostics {
				opts.OnDay = func(_ string, d *esm.DayOutput) {
					if diagErr != nil {
						return
					}
					diag, err := esm.Diagnose(d)
					if err == nil {
						err = esm.CheckDiagnostics(diag)
					}
					diagErr = err
				}
			}
			paths, err := model.Run(opts)
			if err != nil {
				return nil, err
			}
			if diagErr != nil {
				return nil, fmt.Errorf("core: online diagnostics: %w", diagErr)
			}
			return []any{paths}, nil
		},
	})

	// #2/#3 — climatology baselines (historical daily extrema).
	w.tBaseMax = reg(compss.TaskDef{
		Name:      TaskLoadBaselineMax,
		Outputs:   1,
		Ephemeral: true, // output is a live cube pointer
		Fn: func([]any) ([]any, error) {
			b, err := indices.BuildBaseline(engine, cfg.Grid, cfg.DaysPerYear)
			if err != nil {
				return nil, err
			}
			_ = b.TMin.Delete() // this task owns only the max side
			return []any{b.TMax}, nil
		},
	})
	w.tBaseMin = reg(compss.TaskDef{
		Name:      TaskLoadBaselineMin,
		Outputs:   1,
		Ephemeral: true,
		Fn: func([]any) ([]any, error) {
			b, err := indices.BuildBaseline(engine, cfg.Grid, cfg.DaysPerYear)
			if err != nil {
				return nil, err
			}
			_ = b.TMax.Delete()
			return []any{b.TMin}, nil
		},
	})

	// #4 — year-completeness detection (stream element passthrough).
	w.tMonitor = reg(compss.TaskDef{
		Name:    TaskMonitorStream,
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			batch := args[0].(stream.YearBatch)
			if len(batch.Files) != cfg.DaysPerYear {
				return nil, fmt.Errorf("core: year %d has %d files, want %d", batch.Year, len(batch.Files), cfg.DaysPerYear)
			}
			return []any{batch}, nil
		},
	})

	// #5 — import the year's temperature into an in-memory cube.
	w.tImport = reg(compss.TaskDef{
		Name:      TaskImportYear,
		Outputs:   1,
		Ephemeral: true,
		Fn: func(args []any) ([]any, error) {
			batch := args[0].(stream.YearBatch)
			if x := cfg.Exchange; x != nil && !cfg.AttachOnly {
				if cube, err := importYearExchange(engine, x, batch, cfg.Grid); err == nil {
					return []any{cube}, nil
				}
				// any exchange miss: the files hold the same bytes
			}
			cube, err := engine.ImportFiles(batch.Files, "TREFHT", "time")
			if err != nil {
				return nil, err
			}
			return []any{cube}, nil
		},
	})

	// #6/#7 — daily extrema and anomaly against the resident baseline.
	// Fused mode folds both operators into one per-fragment pass; the
	// daily-extremum intermediate never materializes as a cube.
	fuse := cfg.fuse()
	dailyAnomaly := func(op string) compss.TaskFunc {
		return func(args []any) ([]any, error) {
			temp := args[0].(*datacube.Cube)
			baseline := args[1].(*datacube.Cube)
			if fuse {
				anom, err := temp.Lazy().
					ReduceGroup(op, esm.StepsPerDay).
					Intercube(baseline, "sub").
					Execute()
				if err != nil {
					return nil, err
				}
				return []any{anom}, nil
			}
			daily, err := temp.ReduceGroup(op, esm.StepsPerDay)
			if err != nil {
				return nil, err
			}
			anom, err := daily.Intercube(baseline, "sub")
			if err != nil {
				return nil, err
			}
			_ = daily.Delete()
			return []any{anom}, nil
		}
	}
	w.tDailyMax = reg(compss.TaskDef{Name: TaskDailyMax, Outputs: 1, Ephemeral: true, Fn: dailyAnomaly("max")})
	w.tDailyMin = reg(compss.TaskDef{Name: TaskDailyMin, Outputs: 1, Ephemeral: true, Fn: dailyAnomaly("min")})

	// #9..#14 — the six wave indices (Listing 1 operator chains).
	p := cfg.IndexParams
	durationTask := func(runOp string, th float64) compss.TaskFunc {
		return func(args []any) ([]any, error) {
			anom := args[0].(*datacube.Cube)
			if fuse {
				dur, err := anom.Lazy().
					Reduce(runOp, th).
					Apply(fmt.Sprintf("x>=%d ? x : 0", p.MinDays)).
					Execute()
				if err != nil {
					return nil, err
				}
				return []any{dur}, nil
			}
			longest, err := anom.Reduce(runOp, th)
			if err != nil {
				return nil, err
			}
			dur, err := longest.Apply(fmt.Sprintf("x>=%d ? x : 0", p.MinDays))
			if err != nil {
				return nil, err
			}
			_ = longest.Delete()
			return []any{dur}, nil
		}
	}
	numberTask := func(countOp string, th float64) compss.TaskFunc {
		return func(args []any) ([]any, error) {
			anom := args[0].(*datacube.Cube)
			num, err := anom.Reduce(countOp, th, float64(p.MinDays))
			if err != nil {
				return nil, err
			}
			return []any{num}, nil
		}
	}
	frequencyTask := func(daysOp string, th float64) compss.TaskFunc {
		return func(args []any) ([]any, error) {
			anom := args[0].(*datacube.Cube)
			if fuse {
				freq, err := anom.Lazy().
					Reduce(daysOp, th, float64(p.MinDays)).
					Apply(fmt.Sprintf("x/%d", p.DaysPerYear)).
					Execute()
				if err != nil {
					return nil, err
				}
				return []any{freq}, nil
			}
			days, err := anom.Reduce(daysOp, th, float64(p.MinDays))
			if err != nil {
				return nil, err
			}
			freq, err := days.Apply(fmt.Sprintf("x/%d", p.DaysPerYear))
			if err != nil {
				return nil, err
			}
			_ = days.Delete()
			return []any{freq}, nil
		}
	}
	w.tHWDur = reg(compss.TaskDef{Name: TaskHWDuration, Outputs: 1, Ephemeral: true, Fn: durationTask("longest_run_above", p.ThresholdK)})
	w.tHWNum = reg(compss.TaskDef{Name: TaskHWNumber, Outputs: 1, Ephemeral: true, Fn: numberTask("count_runs_above", p.ThresholdK)})
	w.tHWFreq = reg(compss.TaskDef{Name: TaskHWFrequency, Outputs: 1, Ephemeral: true, Fn: frequencyTask("days_in_runs_above", p.ThresholdK)})
	w.tCWDur = reg(compss.TaskDef{Name: TaskCWDuration, Outputs: 1, Ephemeral: true, Fn: durationTask("longest_run_below", -p.ThresholdK)})
	w.tCWNum = reg(compss.TaskDef{Name: TaskCWNumber, Outputs: 1, Ephemeral: true, Fn: numberTask("count_runs_below", -p.ThresholdK)})
	w.tCWFreq = reg(compss.TaskDef{Name: TaskCWFrequency, Outputs: 1, Ephemeral: true, Fn: frequencyTask("days_in_runs_below", -p.ThresholdK)})

	// #15 — TC pre-processing: read the dynamical fields per instant.
	w.tTCPre = reg(compss.TaskDef{
		Name:      TaskTCPreprocess,
		Outputs:   1,
		Ephemeral: true, // outputs hold live per-instant field maps
		Fn: func(args []any) ([]any, error) {
			batch := args[0].(stream.YearBatch)
			var steps []stepFields
			var err error
			if x := cfg.Exchange; x != nil && !cfg.AttachOnly {
				steps, err = loadTCFieldsExchange(x, batch.Files, cfg.Grid)
			} else {
				steps, err = loadTCFields(batch.Files, cfg.Grid)
			}
			if err != nil {
				return nil, err
			}
			return []any{steps}, nil
		},
	})

	// #16 — CNN inference over tiled, scaled patches.
	w.tTCInf = reg(compss.TaskDef{
		Name:    TaskTCInference,
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			steps := args[0].([]stepFields)
			if cfg.Localizer == nil {
				return []any{[]ml.Detection(nil)}, nil
			}
			// the compiled engine is safe to share across per-year tasks
			// (each sweep borrows pooled sessions); only the reference
			// layer path keeps per-goroutine state and needs its own
			// network instance
			local := cfg.Localizer
			if !local.Compiled() {
				net, err := local.Net.Clone()
				if err != nil {
					return nil, err
				}
				local = &ml.Localizer{Net: net, PatchH: local.PatchH, PatchW: local.PatchW}
				local.Configure(ml.Params{Reference: true})
			}
			var dets []ml.Detection
			for _, sf := range steps {
				if sf.Step%2 != 0 {
					continue // inference cadence: every second step
				}
				d, err := local.DetectFields(sf.Fields, cfg.Grid, cfg.TCThreshold)
				if err != nil {
					return nil, err
				}
				dets = append(dets, d...)
			}
			return []any{dets}, nil
		},
	})

	// #17 — geo-referencing plus deterministic-tracker validation.
	w.tTCGeo = reg(compss.TaskDef{
		Name:    TaskTCGeoreference,
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			steps := args[0].([]stepFields)
			dets, _ := args[1].([]ml.Detection)
			year := args[2].(int)
			tracker := tctrack.NewTracker()
			for _, sf := range steps {
				cand := tctrack.DetectFields(sf.Fields["PSL"], sf.Fields["VORT850"], sf.Fields["T500"], sf.Day, sf.Step, cfg.Criteria)
				tracker.Advance(cand)
				// Close the ML loop: feed the deterministic detections as
				// pseudo-labels so the trainer improves the localizer on
				// exactly the data the simulation is producing. Inference
				// cadence (even steps) keeps training and inference inputs
				// aligned; a full queue just drops the step.
				if tr := cfg.OnlineTrainer; tr != nil && sf.Step%2 == 0 {
					centers := make([]ml.Center, 0, len(cand))
					for _, c := range cand {
						ci, cj := cfg.Grid.CellOf(c.Lat, c.Lon)
						centers = append(centers, ml.Center{Row: ci, Col: cj})
					}
					tr.Feed(sf.Fields, centers)
				}
			}
			tracks := tracker.Finish()
			return []any{yearTC{
				Year:        year,
				Detections:  dets,
				Tracks:      len(tracks),
				AgreementKm: agreement(dets, tracks),
			}}, nil
		},
	})

	// #8 — validation, storage and the intermediate per-year map.
	w.tValidate = reg(compss.TaskDef{
		Name:    TaskValidateStore,
		Outputs: 1,
		Fn:      w.validateStore,
	})

	// Final maps across all years (step 6).
	w.tFinal = reg(compss.TaskDef{
		Name:    TaskFinalMaps,
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			total := grid.NewField(cfg.Grid)
			years := 0
			for _, a := range args {
				yr, ok := a.(YearResult)
				if !ok {
					continue
				}
				ds, err := ncdf.ReadFile(yr.HeatWave.Number)
				if err != nil {
					return nil, err
				}
				v, err := ds.Var("heat_wave_number")
				if err != nil {
					return nil, err
				}
				for i := range total.Data {
					total.Data[i] += v.Data[i]
				}
				years++
			}
			if years == 0 {
				return nil, fmt.Errorf("core: no validated years for final map")
			}
			path := fmt.Sprintf("%s/heat_wave_number_all_years.ppm", cfg.OutputDir)
			if err := viz.WritePPM(path, total, 0, 0, viz.Heat); err != nil {
				return nil, err
			}
			return []any{path}, nil
		},
	})
	return err
}

// wireYear builds the per-year sub-graph (#4..#17 plus #8) and returns
// the validate_store future.
func (w *workflow) wireYear(batch stream.YearBatch, baseMax, baseMin *compss.Future) (*compss.Future, error) {
	rt := w.rt
	monitorFut, err := rt.InvokeOne(w.tMonitor, compss.In(batch))
	if err != nil {
		return nil, err
	}
	importFut, err := rt.InvokeOne(w.tImport, compss.In(monitorFut))
	if err != nil {
		return nil, err
	}
	dmax, err := rt.InvokeOne(w.tDailyMax, compss.In(importFut), compss.In(baseMax))
	if err != nil {
		return nil, err
	}
	dmin, err := rt.InvokeOne(w.tDailyMin, compss.In(importFut), compss.In(baseMin))
	if err != nil {
		return nil, err
	}
	hwDur, err := rt.InvokeOne(w.tHWDur, compss.In(dmax))
	if err != nil {
		return nil, err
	}
	hwNum, err := rt.InvokeOne(w.tHWNum, compss.In(dmax))
	if err != nil {
		return nil, err
	}
	hwFreq, err := rt.InvokeOne(w.tHWFreq, compss.In(dmax))
	if err != nil {
		return nil, err
	}
	cwDur, err := rt.InvokeOne(w.tCWDur, compss.In(dmin))
	if err != nil {
		return nil, err
	}
	cwNum, err := rt.InvokeOne(w.tCWNum, compss.In(dmin))
	if err != nil {
		return nil, err
	}
	cwFreq, err := rt.InvokeOne(w.tCWFreq, compss.In(dmin))
	if err != nil {
		return nil, err
	}
	tcPre, err := rt.InvokeOne(w.tTCPre, compss.In(monitorFut))
	if err != nil {
		return nil, err
	}
	tcInf, err := rt.InvokeOne(w.tTCInf, compss.In(tcPre))
	if err != nil {
		return nil, err
	}
	tcGeo, err := rt.InvokeOne(w.tTCGeo, compss.In(tcPre), compss.In(tcInf), compss.In(batch.Year))
	if err != nil {
		return nil, err
	}
	return rt.InvokeOne(w.tValidate,
		compss.In(batch.Year),
		compss.In(hwDur), compss.In(hwNum), compss.In(hwFreq),
		compss.In(cwDur), compss.In(cwNum), compss.In(cwFreq),
		compss.In(tcGeo),
		compss.In(importFut), compss.In(dmax), compss.In(dmin),
	)
}

// validateStore is task #8: validate the six index cubes, export them
// as NetCDF-like files, render the intermediate map, free the year's
// intermediate cubes, and emit the YearResult.
func (w *workflow) validateStore(args []any) ([]any, error) {
	cfg := w.cfg
	year := args[0].(int)
	hwDur := args[1].(*datacube.Cube)
	hwNum := args[2].(*datacube.Cube)
	hwFreq := args[3].(*datacube.Cube)
	cwDur := args[4].(*datacube.Cube)
	cwNum := args[5].(*datacube.Cube)
	cwFreq := args[6].(*datacube.Cube)
	tc := args[7].(yearTC)
	importCube := args[8].(*datacube.Cube)
	anomMax := args[9].(*datacube.Cube)
	anomMin := args[10].(*datacube.Cube)

	hw := &indices.Result{Duration: hwDur, Number: hwNum, Frequency: hwFreq}
	cw := &indices.Result{Duration: cwDur, Number: cwNum, Frequency: cwFreq}
	for _, r := range []*indices.Result{hw, cw} {
		if err := indices.Validate(r, cfg.IndexParams); err != nil {
			return nil, err
		}
	}

	out := YearResult{Year: year, CNNDetections: tc.Detections, TrackerTracks: tc.Tracks, TrackerAgreementKm: tc.AgreementKm}
	var err error
	if out.HeatWave.Duration, err = exportIndex(hwDur, cfg.OutputDir, "heat_wave_duration", year); err != nil {
		return nil, err
	}
	if out.HeatWave.Number, err = exportIndex(hwNum, cfg.OutputDir, "heat_wave_number", year); err != nil {
		return nil, err
	}
	if out.HeatWave.Frequency, err = exportIndex(hwFreq, cfg.OutputDir, "heat_wave_frequency", year); err != nil {
		return nil, err
	}
	if out.ColdWave.Duration, err = exportIndex(cwDur, cfg.OutputDir, "cold_wave_duration", year); err != nil {
		return nil, err
	}
	if out.ColdWave.Number, err = exportIndex(cwNum, cfg.OutputDir, "cold_wave_number", year); err != nil {
		return nil, err
	}
	if out.ColdWave.Frequency, err = exportIndex(cwFreq, cfg.OutputDir, "cold_wave_frequency", year); err != nil {
		return nil, err
	}
	if out.HWNumberMean, err = cubeMean(hwNum); err != nil {
		return nil, err
	}
	if out.CWNumberMean, err = cubeMean(cwNum); err != nil {
		return nil, err
	}

	// intermediate per-year map (Figure 4)
	field, err := indices.CubeToField(hwNum, cfg.Grid)
	if err != nil {
		return nil, err
	}
	out.MapPath = fmt.Sprintf("%s/heat_wave_number_%d.ppm", cfg.OutputDir, year)
	if err := viz.WritePPM(out.MapPath, field, 0, 0, viz.Heat); err != nil {
		return nil, err
	}

	// free the year's cubes; results live on disk now
	for _, c := range []*datacube.Cube{hwDur, hwNum, hwFreq, cwDur, cwNum, cwFreq, importCube, anomMax, anomMin} {
		_ = c.Delete()
	}
	return []any{out}, nil
}

// checkFileGrid verifies a daily model file matches the configured
// grid.
func checkFileGrid(path string, g grid.Grid) error {
	hdr, err := ncdf.ReadHeaderFile(path)
	if err != nil {
		return fmt.Errorf("core: reading %s: %w", path, err)
	}
	nlat, err := hdr.DimLen("lat")
	if err != nil {
		return fmt.Errorf("core: %s: %w", path, err)
	}
	nlon, err := hdr.DimLen("lon")
	if err != nil {
		return fmt.Errorf("core: %s: %w", path, err)
	}
	if nlat != g.NLat || nlon != g.NLon {
		return fmt.Errorf("core: model files are %dx%d but the workflow is configured for %dx%d — match -grid to the producer",
			nlat, nlon, g.NLat, g.NLon)
	}
	return nil
}

// loadTCFields reads the TC branch variables from the year's files.
func loadTCFields(files []string, g grid.Grid) ([]stepFields, error) {
	var out []stepFields
	for _, path := range files {
		_, dayOfYear, ok := esm.ParseFileName(path)
		if !ok {
			return nil, fmt.Errorf("core: unparseable model file %q", path)
		}
		perVar, err := readDayVars(path)
		if err != nil {
			return nil, err
		}
		steps, err := dayStepFields(perVar, g, dayOfYear)
		if err != nil {
			return nil, err
		}
		out = append(out, steps...)
	}
	sortStepFields(out)
	return out, nil
}

// readDayVars reads one daily file's TC variables.
func readDayVars(path string) (map[string][]float32, error) {
	perVar := make(map[string][]float32, len(tcVars))
	for _, v := range tcVars {
		_, vv, err := ncdf.ReadVariableFile(path, v)
		if err != nil {
			return nil, err
		}
		perVar[v] = vv.Data
	}
	return perVar, nil
}

// dayStepFields slices one day's step-major variable arrays into
// per-instant field sets, deriving the wind-speed channel. The source
// arrays are only read — exchange tensors stay intact for other
// consumers.
func dayStepFields(perVar map[string][]float32, g grid.Grid, dayOfYear int) ([]stepFields, error) {
	size := g.Size()
	out := make([]stepFields, 0, esm.StepsPerDay)
	for _, v := range tcVars {
		if len(perVar[v]) != esm.StepsPerDay*size {
			return nil, fmt.Errorf("core: day %d variable %s holds %d values, want %d", dayOfYear, v, len(perVar[v]), esm.StepsPerDay*size)
		}
	}
	for s := 0; s < esm.StepsPerDay; s++ {
		fields := make(map[string]*grid.Field, len(tcVars)+1)
		for _, v := range tcVars {
			f := grid.NewField(g)
			copy(f.Data, perVar[v][s*size:(s+1)*size])
			fields[v] = f
		}
		// derived wind speed channel for the CNN
		w := grid.NewField(g)
		u, vv := fields["U850"], fields["V850"]
		for i := range w.Data {
			w.Data[i] = float32(math.Hypot(float64(u.Data[i]), float64(vv.Data[i])))
		}
		fields["WSPD"] = w
		out = append(out, stepFields{Day: dayOfYear, Step: s, Fields: fields})
	}
	return out, nil
}

func sortStepFields(out []stepFields) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Day != out[j].Day {
			return out[i].Day < out[j].Day
		}
		return out[i].Step < out[j].Step
	})
}

// agreement is the mean distance from each CNN detection to the
// nearest deterministic track point; -1 when either side is empty.
func agreement(dets []ml.Detection, tracks []*tctrack.Track) float64 {
	if len(dets) == 0 || len(tracks) == 0 {
		return -1
	}
	var sum float64
	for _, d := range dets {
		best := math.Inf(1)
		for _, t := range tracks {
			for _, p := range t.Points {
				if dist := grid.Haversine(d.Lat, d.Lon, p.Lat, p.Lon); dist < best {
					best = dist
				}
			}
		}
		sum += best
	}
	return sum / float64(len(dets))
}
