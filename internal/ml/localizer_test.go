package ml

import (
	"testing"

	"repro/internal/esm"
	"repro/internal/grid"
)

// stormModel builds a model whose single year contains seeded cyclones.
func stormModel(t *testing.T, cyclones int, seed int64) *esm.Model {
	t.Helper()
	return esm.NewModel(esm.Config{
		Grid:        grid.Grid{NLat: 48, NLon: 96},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: 30,
		Seed:        seed,
		Events: &esm.EventConfig{
			CyclonesPerYear: cyclones,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	})
}

func TestChannelFieldsDerivesWind(t *testing.T) {
	m := stormModel(t, 0, 1)
	d := m.StepDay()
	fields, err := ChannelFields(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Channels {
		if fields[name] == nil {
			t.Fatalf("channel %q missing", name)
		}
	}
	if fields["WSPD"].Statistics().Min < 0 {
		t.Fatal("wind speed negative")
	}
}

func TestBuildSamplesLabels(t *testing.T) {
	m := stormModel(t, 2, 3)
	gt := m.GroundTruth()
	// advance to the first storm's first active day
	first := gt.Cyclones[0].Track[0]
	var d *esm.DayOutput
	for i := 0; i <= first.Day; i++ {
		d = m.StepDay()
	}
	samples, err := BuildSamples(d, first.Step, gt.Cyclones, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != (48/16)*(96/16) {
		t.Fatalf("samples = %d", len(samples))
	}
	pos := 0
	for _, s := range samples {
		if s.HasTC {
			pos++
			if s.Row < 0 || s.Row > 1 || s.Col < 0 || s.Col > 1 {
				t.Fatalf("center fractions out of range: %+v", s)
			}
		}
		if s.X.Shape[0] != len(Channels) || s.X.Shape[1] != 16 {
			t.Fatalf("tensor shape = %v", s.X.Shape)
		}
	}
	if pos == 0 {
		t.Fatal("no positive patches despite active storm")
	}
}

// TestLocalizerLearnsToDetect is the core ML skill test: train on
// storms from several simulated years, verify detections on a held-out
// seed beat chance.
func TestLocalizerLearnsToDetect(t *testing.T) {
	cfg := esm.Config{
		Grid:        grid.Grid{NLat: 48, NLon: 96},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: 30,
		Events: &esm.EventConfig{
			CyclonesPerYear: 6,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	}
	samples, err := SamplesFromSimulations(cfg, []int64{11, 12, 13, 14, 15}, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(12, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := loc.Train(samples, TrainConfig{Epochs: 5, BatchSize: 32, LR: 2e-3, Seed: 5, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}

	// evaluate on held-out seeds at instants with a substantial
	// signature, pooled over two years and two steps per day
	var hits, total int
	for _, evalSeed := range []int64{99, 100} {
		evalModel := stormModel(t, 6, evalSeed)
		egt := evalModel.GroundTruth()
		for day := 0; day < evalModel.TotalDays(); day++ {
			d := evalModel.StepDay()
			for _, step := range []int{0, 2} {
				for _, c := range egt.Cyclones {
					p, ok := c.Active(day, step)
					if !ok || p.PressureDrop < 1500 {
						continue
					}
					total++
					dets, err := loc.DetectStep(d, step, 0.5)
					if err != nil {
						t.Fatal(err)
					}
					for _, det := range dets {
						if grid.Haversine(det.Lat, det.Lon, p.Lat, p.Lon) < 2000 {
							hits++
							break
						}
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no evaluation instants")
	}
	pod := float64(hits) / float64(total)
	if pod < 0.5 {
		t.Fatalf("probability of detection %.2f (%d/%d) below 0.5", pod, hits, total)
	}
}

func TestTrainValidation(t *testing.T) {
	loc, _ := NewLocalizer(16, 16, 1)
	if _, err := loc.Train(nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestDetectStepNoStormsQuiet(t *testing.T) {
	// an untrained network may fire anywhere; a trained one on a
	// stormless model should mostly stay quiet — covered by the skill
	// test above. Here just verify the plumbing returns cleanly.
	m := stormModel(t, 0, 2)
	d := m.StepDay()
	loc, _ := NewLocalizer(16, 16, 3)
	dets, err := loc.DetectStep(d, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dets); i++ {
		if dets[i-1].Score < dets[i].Score {
			t.Fatal("detections not sorted by score")
		}
	}
}

func TestBalanceOversamples(t *testing.T) {
	mk := func(pos bool) Sample {
		return Sample{X: NewTensor(1), HasTC: pos}
	}
	var samples []Sample
	for i := 0; i < 20; i++ {
		samples = append(samples, mk(false))
	}
	samples = append(samples, mk(true))
	out := balance(samples)
	pos := 0
	for _, s := range out {
		if s.HasTC {
			pos++
		}
	}
	if pos < 5 {
		t.Fatalf("positives after balance = %d", pos)
	}
	// no positives: unchanged
	if got := balance(samples[:20]); len(got) != 20 {
		t.Fatal("balance modified all-negative set")
	}
}

func TestPredictionClamped(t *testing.T) {
	if clamp01(-3) != 0 || clamp01(3) != 1 || clamp01(0.4) != 0.4 {
		t.Fatal("clamp01 broken")
	}
}
