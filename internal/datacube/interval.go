package datacube

import "math"

// This file adds interval evaluation to the expression language and a
// registry of interval forms for named row operations. Both are the
// foundation of tolerance-aware coarse-first execution (tolerance.go):
// a coarse pyramid tier stores, per coarse row, a midpoint series and a
// spread bound, and the plan executor pushes the implied per-position
// interval [mid-spread, mid+spread] through the fused operator chain.
// Every interval form must be SOUND (the true full-resolution output
// always lies inside the propagated interval, up to float32 rounding of
// the endpoints); it need not be tight — a loose interval only costs
// extra refinement, never correctness.

// EvalInterval evaluates the expression over the interval [lo, hi] of
// the variable x and returns an enclosure of the image. The enclosure
// is conservative: ternaries whose condition is undecided return the
// hull of both arms, division by an interval containing zero returns
// an infinite bound, and comparisons return [0,1] when undecided.
func (e *Expr) EvalInterval(lo, hi float64) (float64, float64) {
	return ivalNode(e.prog, lo, hi)
}

func ivalNode(n ast, lo, hi float64) (float64, float64) {
	switch n := n.(type) {
	case numNode:
		return float64(n), float64(n)
	case varNode:
		return lo, hi
	case unaryNode:
		alo, ahi := ivalNode(n.a, lo, hi)
		switch n.op {
		case "-":
			return -ahi, -alo
		case "!":
			// !v is 1 iff v == 0
			if alo > 0 || ahi < 0 {
				return 0, 0
			}
			if alo == 0 && ahi == 0 {
				return 1, 1
			}
			return 0, 1
		}
		return math.NaN(), math.NaN()
	case binNode:
		alo, ahi := ivalNode(n.a, lo, hi)
		blo, bhi := ivalNode(n.b, lo, hi)
		switch n.op {
		case "+":
			return alo + blo, ahi + bhi
		case "-":
			return alo - bhi, ahi - blo
		case "*":
			return imul(alo, ahi, blo, bhi)
		case "/":
			return idiv(alo, ahi, blo, bhi)
		case "==":
			if alo == ahi && blo == bhi && alo == blo {
				return 1, 1
			}
			if ahi < blo || alo > bhi {
				return 0, 0
			}
			return 0, 1
		case "!=":
			if alo == ahi && blo == bhi && alo == blo {
				return 0, 0
			}
			if ahi < blo || alo > bhi {
				return 1, 1
			}
			return 0, 1
		case "<":
			if ahi < blo {
				return 1, 1
			}
			if alo >= bhi {
				return 0, 0
			}
			return 0, 1
		case "<=":
			if ahi <= blo {
				return 1, 1
			}
			if alo > bhi {
				return 0, 0
			}
			return 0, 1
		case ">":
			if alo > bhi {
				return 1, 1
			}
			if ahi <= blo {
				return 0, 0
			}
			return 0, 1
		case ">=":
			if alo >= bhi {
				return 1, 1
			}
			if ahi < blo {
				return 0, 0
			}
			return 0, 1
		case "&&":
			ta0, ta1 := truthiness(alo, ahi)
			tb0, tb1 := truthiness(blo, bhi)
			return b2f(ta0 && tb0), b2f(ta1 && tb1)
		case "||":
			ta0, ta1 := truthiness(alo, ahi)
			tb0, tb1 := truthiness(blo, bhi)
			return b2f(ta0 || tb0), b2f(ta1 || tb1)
		}
		return math.NaN(), math.NaN()
	case ternNode:
		clo, chi := ivalNode(n.cond, lo, hi)
		if clo > 0 || chi < 0 { // certainly nonzero: then-arm
			return ivalNode(n.a, lo, hi)
		}
		if clo == 0 && chi == 0 { // certainly zero: else-arm
			return ivalNode(n.b, lo, hi)
		}
		tlo, thi := ivalNode(n.a, lo, hi)
		elo, ehi := ivalNode(n.b, lo, hi)
		return math.Min(tlo, elo), math.Max(thi, ehi)
	case callNode:
		switch n.fn {
		case "abs":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			switch {
			case alo >= 0:
				return alo, ahi
			case ahi <= 0:
				return -ahi, -alo
			default:
				return 0, math.Max(-alo, ahi)
			}
		case "sqrt":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			return math.Sqrt(alo), math.Sqrt(ahi) // NaN below 0 forces refinement
		case "exp":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			return math.Exp(alo), math.Exp(ahi)
		case "log":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			return math.Log(alo), math.Log(ahi)
		case "pow":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			blo, bhi := ivalNode(n.args[1], lo, hi)
			c := []float64{math.Pow(alo, blo), math.Pow(alo, bhi), math.Pow(ahi, blo), math.Pow(ahi, bhi)}
			if alo < 0 && ahi > 0 {
				// a zero-straddling base contributes pow(0, b) interior
				// extrema (e.g. x^2 over [-1,2] reaches 0)
				c = append(c, math.Pow(0, blo), math.Pow(0, bhi))
			}
			mn, mx := c[0], c[0]
			for _, v := range c[1:] {
				mn, mx = math.Min(mn, v), math.Max(mx, v)
			}
			return mn, mx
		case "min":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			blo, bhi := ivalNode(n.args[1], lo, hi)
			return math.Min(alo, blo), math.Min(ahi, bhi)
		case "max":
			alo, ahi := ivalNode(n.args[0], lo, hi)
			blo, bhi := ivalNode(n.args[1], lo, hi)
			return math.Max(alo, blo), math.Max(ahi, bhi)
		}
		return math.NaN(), math.NaN()
	}
	return math.NaN(), math.NaN()
}

// truthiness maps a value interval to the (lo, hi) of its boolean
// coercion: lo is true only when the interval certainly excludes zero,
// hi is false only when the interval is exactly {0}.
func truthiness(lo, hi float64) (bool, bool) {
	certain := lo > 0 || hi < 0
	possible := !(lo == 0 && hi == 0)
	return certain, possible
}

// imul returns the hull of the four endpoint products.
func imul(alo, ahi, blo, bhi float64) (float64, float64) {
	p1, p2, p3, p4 := alo*blo, alo*bhi, ahi*blo, ahi*bhi
	return math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4))
}

// idiv divides intervals; a zero-straddling divisor yields an infinite
// enclosure, which the coarse pass treats as "must refine".
func idiv(alo, ahi, blo, bhi float64) (float64, float64) {
	if blo <= 0 && bhi >= 0 {
		return math.Inf(-1), math.Inf(1)
	}
	q1, q2, q3, q4 := alo/blo, alo/bhi, ahi/blo, ahi/bhi
	return math.Min(math.Min(q1, q2), math.Min(q3, q4)),
		math.Max(math.Max(q1, q2), math.Max(q3, q4))
}
