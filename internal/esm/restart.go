package esm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
)

// Restart files let a long simulation resume exactly where it stopped —
// every production ESM writes them, and multi-month projections like
// the paper's 30–35-year runs (§5.2) depend on them to survive
// allocation limits. The image captures the full prognostic state: the
// slab-ocean field, the weather-noise generators (coarse AR(1) states
// plus their serializable PRNGs) and the day counter. Ground-truth
// events are reseeded deterministically from the configuration, so
// they need no storage.
type restartImage struct {
	Cfg    Config
	AbsDay int
	SST    []float32
	NoiseT noiseImage
	NoiseP noiseImage
	NoiseW noiseImage
}

// noiseImage is the serializable state of one noiseField.
type noiseImage struct {
	State []float32
	RNG   prng
}

func (n *noiseField) image() noiseImage {
	return noiseImage{State: append([]float32(nil), n.state.Data...), RNG: *n.rng}
}

func (n *noiseField) restore(img noiseImage) error {
	if len(img.State) != len(n.state.Data) {
		return fmt.Errorf("esm: restart noise state has %d cells, want %d", len(img.State), len(n.state.Data))
	}
	copy(n.state.Data, img.State)
	*n.rng = img.RNG
	return nil
}

// MarshalRestart encodes the model's prognostic state.
func (m *Model) MarshalRestart() ([]byte, error) {
	img := restartImage{
		Cfg:    m.cfg,
		AbsDay: m.absDay,
		SST:    append([]float32(nil), m.sst.Data...),
		NoiseT: m.noiseT.image(),
		NoiseP: m.noiseP.image(),
		NoiseW: m.noiseW.image(),
	}
	return encodeImage(img)
}

// encodeImage gob-encodes a restart image.
func encodeImage(img restartImage) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("esm: encode restart: %w", err)
	}
	return buf.Bytes(), nil
}

// SaveRestart writes the restart file atomically.
func (m *Model) SaveRestart(path string) error {
	data, err := m.MarshalRestart()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// UnmarshalRestart reconstructs a model from MarshalRestart output. The
// resumed model continues bit-exactly where the saved one stopped.
func UnmarshalRestart(data []byte) (*Model, error) {
	var img restartImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("esm: decode restart: %w", err)
	}
	m := NewModel(img.Cfg) // reseeds ground truth deterministically
	if len(img.SST) != len(m.sst.Data) {
		return nil, fmt.Errorf("esm: restart SST has %d cells, want %d", len(img.SST), len(m.sst.Data))
	}
	copy(m.sst.Data, img.SST)
	if err := m.noiseT.restore(img.NoiseT); err != nil {
		return nil, err
	}
	if err := m.noiseP.restore(img.NoiseP); err != nil {
		return nil, err
	}
	if err := m.noiseW.restore(img.NoiseW); err != nil {
		return nil, err
	}
	if img.AbsDay < 0 || img.AbsDay > m.TotalDays() {
		return nil, fmt.Errorf("esm: restart day %d outside run of %d days", img.AbsDay, m.TotalDays())
	}
	m.absDay = img.AbsDay
	return m, nil
}

// LoadRestart reads a restart file written by SaveRestart.
func LoadRestart(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalRestart(data)
}
