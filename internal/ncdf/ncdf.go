// Package ncdf implements a compact self-describing binary array format
// standing in for NetCDF, the exchange format of the paper's workflow
// (the ESM "produces daily NetCDF files ... including around 20 single
// precision floating point variables", §5.2).
//
// A Dataset holds named dimensions, global attributes and float32
// variables laid out row-major over their dimensions, mirroring the
// classic NetCDF data model. The on-disk layout is:
//
//	magic "GNC1" | header (dims, attrs, var metadata) | variable payloads
//
// with all integers little-endian and strings length-prefixed. Variable
// payloads are offset-addressed, so single variables can be read without
// loading the whole file (the datacube import path relies on this).
package ncdf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Magic identifies the format ("Go NetCDF-like v1").
const Magic = "GNC1"

// ErrBadMagic marks a file that is not in GNC1 format.
var ErrBadMagic = errors.New("ncdf: bad magic")

// ErrNotFound is returned when a named variable or dimension is absent.
var ErrNotFound = errors.New("ncdf: not found")

// Dim is a named axis with a fixed length.
type Dim struct {
	Name string
	Len  int
}

// AttrValue is a typed attribute value: one of string, int64, float64.
type AttrValue struct {
	S string
	I int64
	F float64
	// Kind is 's', 'i' or 'f'.
	Kind byte
}

// String builds a string attribute.
func String(s string) AttrValue { return AttrValue{S: s, Kind: 's'} }

// Int builds an integer attribute.
func Int(i int64) AttrValue { return AttrValue{I: i, Kind: 'i'} }

// Float builds a float attribute.
func Float(f float64) AttrValue { return AttrValue{F: f, Kind: 'f'} }

// Variable is a float32 array over an ordered list of dimensions.
type Variable struct {
	Name  string
	Dims  []string // names, referencing Dataset.Dims
	Attrs map[string]AttrValue
	Data  []float32 // row-major; len must equal the dim-length product
}

// Dataset is an in-memory GNC1 file.
type Dataset struct {
	Dims  []Dim
	Attrs map[string]AttrValue
	Vars  []*Variable
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{Attrs: make(map[string]AttrValue)}
}

// AddDim appends a dimension; duplicate names are an error.
func (d *Dataset) AddDim(name string, n int) error {
	if n <= 0 {
		return fmt.Errorf("ncdf: dimension %q must be positive, got %d", name, n)
	}
	for _, dim := range d.Dims {
		if dim.Name == name {
			return fmt.Errorf("ncdf: duplicate dimension %q", name)
		}
	}
	d.Dims = append(d.Dims, Dim{Name: name, Len: n})
	return nil
}

// DimLen returns the length of the named dimension.
func (d *Dataset) DimLen(name string) (int, error) {
	for _, dim := range d.Dims {
		if dim.Name == name {
			return dim.Len, nil
		}
	}
	return 0, fmt.Errorf("%w: dimension %q", ErrNotFound, name)
}

// AddVar appends a variable after validating its shape against the
// declared dimensions.
func (d *Dataset) AddVar(name string, dims []string, data []float32) (*Variable, error) {
	for _, v := range d.Vars {
		if v.Name == name {
			return nil, fmt.Errorf("ncdf: duplicate variable %q", name)
		}
	}
	want := 1
	for _, dn := range dims {
		n, err := d.DimLen(dn)
		if err != nil {
			return nil, err
		}
		want *= n
	}
	if len(data) != want {
		return nil, fmt.Errorf("ncdf: variable %q has %d values, dims imply %d", name, len(data), want)
	}
	v := &Variable{Name: name, Dims: append([]string(nil), dims...), Attrs: make(map[string]AttrValue), Data: data}
	d.Vars = append(d.Vars, v)
	return v, nil
}

// Var returns the named variable.
func (d *Dataset) Var(name string) (*Variable, error) {
	for _, v := range d.Vars {
		if v.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: variable %q", ErrNotFound, name)
}

// VarNames returns the sorted variable names.
func (d *Dataset) VarNames() []string {
	out := make([]string, len(d.Vars))
	for i, v := range d.Vars {
		out[i] = v.Name
	}
	sort.Strings(out)
	return out
}

// Shape returns the dimension lengths of v resolved against d.
func (d *Dataset) Shape(v *Variable) ([]int, error) {
	out := make([]int, len(v.Dims))
	for i, dn := range v.Dims {
		n, err := d.DimLen(dn)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// --- binary encoding ---------------------------------------------------

func writeStr(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("ncdf: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeAttrs(w io.Writer, attrs map[string]AttrValue) error {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeStr(w, k); err != nil {
			return err
		}
		a := attrs[k]
		if _, err := w.Write([]byte{a.Kind}); err != nil {
			return err
		}
		switch a.Kind {
		case 's':
			if err := writeStr(w, a.S); err != nil {
				return err
			}
		case 'i':
			if err := binary.Write(w, binary.LittleEndian, a.I); err != nil {
				return err
			}
		case 'f':
			if err := binary.Write(w, binary.LittleEndian, a.F); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ncdf: unknown attribute kind %q", a.Kind)
		}
	}
	return nil
}

func readAttrs(r io.Reader) (map[string]AttrValue, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	// never trust the declared count for preallocation: corrupt input
	// must fail at the first missing byte, not allocate first
	attrs := make(map[string]AttrValue, minInt(int(n), 256))
	for i := uint32(0); i < n; i++ {
		k, err := readStr(r)
		if err != nil {
			return nil, err
		}
		var kind [1]byte
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return nil, err
		}
		a := AttrValue{Kind: kind[0]}
		switch a.Kind {
		case 's':
			if a.S, err = readStr(r); err != nil {
				return nil, err
			}
		case 'i':
			if err := binary.Read(r, binary.LittleEndian, &a.I); err != nil {
				return nil, err
			}
		case 'f':
			if err := binary.Read(r, binary.LittleEndian, &a.F); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("ncdf: unknown attribute kind %q", a.Kind)
		}
		attrs[k] = a
	}
	return attrs, nil
}

// Write encodes the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(d.Dims))); err != nil {
		return err
	}
	for _, dim := range d.Dims {
		if err := writeStr(w, dim.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(dim.Len)); err != nil {
			return err
		}
	}
	if err := writeAttrs(w, d.Attrs); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(d.Vars))); err != nil {
		return err
	}
	for _, v := range d.Vars {
		if err := writeStr(w, v.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v.Dims))); err != nil {
			return err
		}
		for _, dn := range v.Dims {
			if err := writeStr(w, dn); err != nil {
				return err
			}
		}
		if err := writeAttrs(w, v.Attrs); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(v.Data))); err != nil {
			return err
		}
	}
	// Payloads in header order.
	for _, v := range d.Vars {
		if err := writeFloats(w, v.Data); err != nil {
			return err
		}
	}
	return nil
}

func writeFloats(w io.Writer, data []float32) error {
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > 4096 {
			n = 4096
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(data[off+i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func readFloats(r io.Reader, n int) ([]float32, error) {
	if n < 0 {
		return nil, fmt.Errorf("ncdf: negative payload length %d", n)
	}
	// Grow incrementally rather than trusting the header's length: a
	// corrupt or malicious header must not trigger a giant allocation
	// before the payload bytes actually arrive.
	data := make([]float32, 0, minInt(n, 1<<20))
	buf := make([]byte, 4*4096)
	for off := 0; off < n; {
		c := n - off
		if c > 4096 {
			c = 4096
		}
		if _, err := io.ReadFull(r, buf[:4*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		off += c
	}
	return data, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// header mirrors the metadata section plus payload lengths.
type header struct {
	ds      *Dataset
	lengths []int
}

func readHeader(r io.Reader) (*header, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	ds := NewDataset()
	var ndims uint32
	if err := binary.Read(r, binary.LittleEndian, &ndims); err != nil {
		return nil, err
	}
	for i := uint32(0); i < ndims; i++ {
		name, err := readStr(r)
		if err != nil {
			return nil, err
		}
		var l uint64
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, err
		}
		ds.Dims = append(ds.Dims, Dim{Name: name, Len: int(l)})
	}
	attrs, err := readAttrs(r)
	if err != nil {
		return nil, err
	}
	ds.Attrs = attrs
	var nvars uint32
	if err := binary.Read(r, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	h := &header{ds: ds}
	for i := uint32(0); i < nvars; i++ {
		name, err := readStr(r)
		if err != nil {
			return nil, err
		}
		var nd uint32
		if err := binary.Read(r, binary.LittleEndian, &nd); err != nil {
			return nil, err
		}
		dims := make([]string, 0, minInt(int(nd), 64))
		for j := uint32(0); j < nd; j++ {
			s, err := readStr(r)
			if err != nil {
				return nil, err
			}
			dims = append(dims, s)
		}
		vattrs, err := readAttrs(r)
		if err != nil {
			return nil, err
		}
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		ds.Vars = append(ds.Vars, &Variable{Name: name, Dims: dims, Attrs: vattrs})
		h.lengths = append(h.lengths, int(n))
	}
	return h, nil
}

// Read decodes a full dataset, payloads included.
func Read(r io.Reader) (*Dataset, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	for i, v := range h.ds.Vars {
		if v.Data, err = readFloats(r, h.lengths[i]); err != nil {
			return nil, fmt.Errorf("ncdf: payload of %q: %w", v.Name, err)
		}
	}
	return h.ds, nil
}

// WriteFile writes the dataset to path atomically (tmp file + rename)
// so directory watchers never observe a half-written file. Output is
// buffered: the encoder's many small header fields become few syscalls.
func WriteFile(path string, d *Dataset) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<18)
	if err := d.Write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReaderSize(f, 1<<18))
}

// ReadHeaderFile loads only metadata (dims, attrs, variable shapes).
func ReadHeaderFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := readHeader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	return h.ds, nil
}

// ReadVariableFile reads the named variable's payload (plus metadata)
// without loading other variables' data.
func ReadVariableFile(path, name string) (*Dataset, *Variable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<18)
	h, err := readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	var skip int64
	for i, v := range h.ds.Vars {
		if v.Name == name {
			if skip > 0 {
				if _, err := io.CopyN(io.Discard, br, skip); err != nil {
					return nil, nil, err
				}
			}
			if v.Data, err = readFloats(br, h.lengths[i]); err != nil {
				return nil, nil, err
			}
			return h.ds, v, nil
		}
		skip += int64(h.lengths[i]) * 4
	}
	return nil, nil, fmt.Errorf("%w: variable %q in %s", ErrNotFound, name, path)
}
