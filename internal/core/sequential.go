package core

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/ml"
	"repro/internal/stream"
	"repro/internal/tctrack"
	"repro/internal/viz"
)

// RunSequential executes the same analysis as Run but in the
// traditional two-stage fashion the paper contrasts against (§3):
// first the full ESM simulation runs to completion and writes all its
// output, then post-processing analyzes the stored files year by year
// "in a second stage using custom tools and scripts". No task runtime,
// no overlap between simulation and analytics — this is the baseline
// for the end-to-end time comparison (experiment C1).
func RunSequential(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.OutputDir == "" {
		return nil, fmt.Errorf("core: OutputDir is required")
	}
	for _, dir := range []string{cfg.OutputDir, cfg.ModelDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	engine := datacube.NewEngine(datacube.Config{
		Servers:         cfg.CubeServers,
		FragmentLatency: cfg.FragmentLatency,
		Metrics:         cfg.Metrics,
	})
	defer engine.Close()

	// Stage 1: the whole simulation.
	model := esm.NewModel(cfg.esmConfig())
	paths, err := model.Run(esm.RunOptions{Dir: cfg.ModelDir, InterDayDelay: cfg.ESMDayDelay})
	if err != nil {
		return nil, err
	}

	// Stage 2: post-processing of the stored output.
	batcher := stream.NewYearBatcher(cfg.DaysPerYear, esm.YearOf)
	batches := batcher.Add(paths...)
	if len(batches) != cfg.Years {
		return nil, fmt.Errorf("core: %d complete years on disk, want %d", len(batches), cfg.Years)
	}
	baseline, err := indices.BuildBaseline(engine, cfg.Grid, cfg.DaysPerYear)
	if err != nil {
		return nil, err
	}

	res := &Result{FilesProduced: len(paths)}
	for _, batch := range batches {
		yr, err := analyzeYearSequential(cfg, engine, baseline, batch)
		if err != nil {
			return nil, err
		}
		res.Years = append(res.Years, *yr)
	}
	sort.Slice(res.Years, func(i, j int) bool { return res.Years[i].Year < res.Years[j].Year })

	// final map
	total := grid.NewField(cfg.Grid)
	for _, yr := range res.Years {
		f, err := fieldFromIndexFile(yr.HeatWave.Number, "heat_wave_number", cfg.Grid)
		if err != nil {
			return nil, err
		}
		for i := range total.Data {
			total.Data[i] += f.Data[i]
		}
	}
	res.FinalMapPath = fmt.Sprintf("%s/heat_wave_number_all_years.ppm", cfg.OutputDir)
	if err := viz.WritePPM(res.FinalMapPath, total, 0, 0, viz.Heat); err != nil {
		return nil, err
	}
	res.CubeStats = engine.Stats()
	return res, nil
}

// analyzeYearSequential mirrors the per-year task pipeline as direct
// calls.
func analyzeYearSequential(cfg Config, engine *datacube.Engine, baseline *indices.Baseline, batch stream.YearBatch) (*YearResult, error) {
	temp, err := engine.ImportFiles(batch.Files, "TREFHT", "time")
	if err != nil {
		return nil, err
	}
	hw, err := indices.HeatWavesFromCube(temp, baseline, cfg.IndexParams)
	if err != nil {
		return nil, err
	}
	cw, err := indices.ColdWavesFromCube(temp, baseline, cfg.IndexParams)
	if err != nil {
		return nil, err
	}
	for _, r := range []*indices.Result{hw, cw} {
		if err := indices.Validate(r, cfg.IndexParams); err != nil {
			return nil, err
		}
	}

	out := &YearResult{Year: batch.Year}
	type exp struct {
		cube *datacube.Cube
		name string
		dst  *string
	}
	exports := []exp{
		{hw.Duration, "heat_wave_duration", &out.HeatWave.Duration},
		{hw.Number, "heat_wave_number", &out.HeatWave.Number},
		{hw.Frequency, "heat_wave_frequency", &out.HeatWave.Frequency},
		{cw.Duration, "cold_wave_duration", &out.ColdWave.Duration},
		{cw.Number, "cold_wave_number", &out.ColdWave.Number},
		{cw.Frequency, "cold_wave_frequency", &out.ColdWave.Frequency},
	}
	for _, e := range exports {
		if *e.dst, err = exportIndex(e.cube, cfg.OutputDir, e.name, batch.Year); err != nil {
			return nil, err
		}
	}
	if out.HWNumberMean, err = cubeMean(hw.Number); err != nil {
		return nil, err
	}
	if out.CWNumberMean, err = cubeMean(cw.Number); err != nil {
		return nil, err
	}

	// TC branch
	steps, err := loadTCFields(batch.Files, cfg.Grid)
	if err != nil {
		return nil, err
	}
	var dets []ml.Detection
	if cfg.Localizer != nil {
		for _, sf := range steps {
			if sf.Step%2 != 0 {
				continue
			}
			d, err := cfg.Localizer.DetectFields(sf.Fields, cfg.Grid, cfg.TCThreshold)
			if err != nil {
				return nil, err
			}
			dets = append(dets, d...)
		}
	}
	tracker := tctrack.NewTracker()
	for _, sf := range steps {
		tracker.Advance(tctrack.DetectFields(sf.Fields["PSL"], sf.Fields["VORT850"], sf.Fields["T500"], sf.Day, sf.Step, cfg.Criteria))
	}
	tracks := tracker.Finish()
	out.CNNDetections = dets
	out.TrackerTracks = len(tracks)
	out.TrackerAgreementKm = agreement(dets, tracks)

	// per-year map
	field, err := indices.CubeToField(hw.Number, cfg.Grid)
	if err != nil {
		return nil, err
	}
	out.MapPath = fmt.Sprintf("%s/heat_wave_number_%d.ppm", cfg.OutputDir, batch.Year)
	if err := viz.WritePPM(out.MapPath, field, 0, 0, viz.Heat); err != nil {
		return nil, err
	}

	for _, c := range []*datacube.Cube{temp, hw.Duration, hw.Number, hw.Frequency, cw.Duration, cw.Number, cw.Frequency} {
		_ = c.Delete()
	}
	return out, nil
}

// fieldFromIndexFile loads an exported per-cell index file as a field.
func fieldFromIndexFile(path, varName string, g grid.Grid) (*grid.Field, error) {
	_, v, err := readIndexVariable(path, varName)
	if err != nil {
		return nil, err
	}
	if len(v) != g.Size() {
		return nil, fmt.Errorf("core: index file %s has %d cells, grid wants %d", path, len(v), g.Size())
	}
	f := grid.NewField(g)
	copy(f.Data, v)
	return f, nil
}
