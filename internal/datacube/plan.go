package datacube

import (
	"errors"
	"fmt"
)

// This file implements the lazy query-plan layer over the eager
// operator API. A Plan records the same operator vocabulary the Cube
// methods and cubeserver.PipelineStep expose, without executing
// anything; Plan.Execute compiles maximal runs of row-local operators
// into fused per-fragment passes (see exec.go), so an n-stage index
// chain does one fragment fan-out and one output allocation instead of
// n of each — the operator-pipelining pattern the related work names as
// the recurring HPC→analytics optimization.
//
// Operator classification:
//
//   - row-local (fusible): apply, reduce, reducegroup, reducestride,
//     subset, intercube. Output row r depends only on input row r, so
//     consecutive stages chain through per-row scratch buffers.
//   - barrier (materializing): subsetrows, aggrows, aggtrailing. These
//     re-shape or combine rows, so the plan materializes the pending
//     fused prefix into a cube and runs the eager operator.
//
// Keep marks the preceding step's output as a materialization boundary:
// the cube is computed, registered and retained, exactly as the eager
// path would leave it.

// planStep is one recorded operator application.
type planStep struct {
	op     string // apply|reduce|reducegroup|reducestride|subset|subsetrows|intercube|aggrows|aggtrailing
	expr   string
	rowOp  string
	params []float64
	group  int // group for reducegroup, stride for reducestride
	lo, hi int
	other  *Cube
	keep   bool
}

// ErrPlanReused is returned by Execute/ExecuteBranches on a plan that
// has already run. Plans are single-use: re-running one would re-walk
// steps whose intermediates were already materialized or deleted and
// silently share compiled stages and scratch, so reuse is a typed
// error instead of an undefined re-execution.
var ErrPlanReused = errors.New("datacube: plan already executed (plans are single-use)")

// Plan is a lazily-recorded operator chain over a source cube. Build
// one with Cube.Lazy (or Branch for ExecuteBranches sub-chains), append
// steps with the builder methods, and run it with Execute. Plans are
// single-use value builders, not thread-safe; a second
// Execute/ExecuteBranches fails with ErrPlanReused.
type Plan struct {
	src       *Cube
	steps     []planStep
	tolerance float64
	executed  bool
}

// Lazy starts a plan whose first step consumes the cube. Nothing
// executes until Execute/ExecuteBranches.
func (c *Cube) Lazy() *Plan { return &Plan{src: c} }

// Branch starts a source-less sub-chain for Plan.ExecuteBranches; its
// input is the shared prefix's per-row output.
func Branch() *Plan { return &Plan{} }

func (p *Plan) add(s planStep) *Plan {
	if p.steps == nil {
		// index chains are short; one right-sized allocation instead of
		// append doubling keeps plan building off the hot path's profile
		p.steps = make([]planStep, 0, 4)
	}
	p.steps = append(p.steps, s)
	return p
}

// Apply records an elementwise expression stage (Cube.Apply).
func (p *Plan) Apply(expr string) *Plan {
	return p.add(planStep{op: "apply", expr: expr})
}

// Reduce records a full-row reduction (Cube.Reduce).
func (p *Plan) Reduce(op string, params ...float64) *Plan {
	return p.add(planStep{op: "reduce", rowOp: op, params: params})
}

// ReduceGroup records a grouped reduction (Cube.ReduceGroup).
func (p *Plan) ReduceGroup(op string, group int, params ...float64) *Plan {
	return p.add(planStep{op: "reducegroup", rowOp: op, params: params, group: group})
}

// ReduceStride records a strided reduction (Cube.ReduceStride).
func (p *Plan) ReduceStride(op string, stride int, params ...float64) *Plan {
	return p.add(planStep{op: "reducestride", rowOp: op, params: params, group: stride})
}

// Subset records an implicit-axis subset (Cube.Subset).
func (p *Plan) Subset(lo, hi int) *Plan {
	return p.add(planStep{op: "subset", lo: lo, hi: hi})
}

// SubsetRows records a leading-dimension row subset (Cube.SubsetRows).
// Row subsetting re-indexes rows, so it is a fusion barrier.
func (p *Plan) SubsetRows(lo, hi int) *Plan {
	return p.add(planStep{op: "subsetrows", lo: lo, hi: hi})
}

// Intercube records an elementwise combination with an already
// materialized cube (Cube.Intercube).
func (p *Plan) Intercube(other *Cube, op string) *Plan {
	return p.add(planStep{op: "intercube", rowOp: op, other: other})
}

// AggregateRows records a row-collapsing aggregation (fusion barrier).
func (p *Plan) AggregateRows(op string, params ...float64) *Plan {
	return p.add(planStep{op: "aggrows", rowOp: op, params: params})
}

// AggregateTrailing records a trailing-dimension aggregation (fusion
// barrier).
func (p *Plan) AggregateTrailing(op string, params ...float64) *Plan {
	return p.add(planStep{op: "aggtrailing", rowOp: op, params: params})
}

// Keep marks the most recent step's output as a materialization
// boundary: its cube is registered on the engine and retained after
// Execute, exactly like the eager path's intermediate. Keep on an
// empty plan is an Execute-time error.
func (p *Plan) Keep() *Plan {
	if len(p.steps) > 0 {
		p.steps[len(p.steps)-1].keep = true
	} else {
		// recorded as an invalid step so Execute reports it instead of
		// silently ignoring the call
		p.steps = append(p.steps, planStep{op: "keep-without-step"})
	}
	return p
}

// Tolerance declares the absolute error the caller accepts on the
// plan's final result, enabling coarse-first execution over the source
// cube's resolution pyramid: the terminal run of row-local steps is
// evaluated on coarse tiers first and re-executed at finer tiers only
// where the propagated error bound exceeds eps (see tolerance.go).
// eps=0 (the default) keeps execution byte-identical to the exact
// path. Steps before the terminal row-local segment — materialized
// Keep boundaries and barrier operators — always run exact, so the
// bound applies end-to-end to the returned cube(s). Plans whose steps
// all lack interval forms silently fall back to exact execution.
func (p *Plan) Tolerance(eps float64) *Plan {
	if eps > 0 {
		p.tolerance = eps
	} else {
		p.tolerance = 0
	}
	return p
}

// Len reports the number of recorded steps.
func (p *Plan) Len() int { return len(p.steps) }

// Execute compiles the plan and runs it, returning the final cube.
// Maximal runs of row-local steps execute as single fused passes;
// barrier steps and Keep boundaries materialize. Each fused segment is
// shape-validated before it runs, and a failing plan deletes every
// unkept intermediate it produced, so errors leave no temporaries
// behind (cubes already materialized by Keep remain, matching the
// eager path's semantics).
func (p *Plan) Execute() (*Cube, error) {
	outs, err := p.run(nil)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// ExecuteBranches runs the plan's steps as a shared row-local prefix
// and then fans out into the branch chains, all in ONE fused pass: the
// prefix is computed once per row into scratch and each branch writes
// its own output cube. Branches must be built with Branch() and may
// contain only row-local steps. The returned cubes align with the
// branches argument.
func (p *Plan) ExecuteBranches(branches ...*Plan) ([]*Cube, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("datacube: ExecuteBranches needs at least one branch")
	}
	return p.run(branches)
}
