// Package obs is the dependency-free observability substrate shared by
// every runtime layer: a metrics registry (counters, gauges,
// fixed-bucket histograms, plus labeled "vec" variants) with Prometheus
// text exposition, and lightweight span tracing with a Chrome
// trace_event JSON export (trace.go).
//
// Design points:
//
//   - Instruments are cheap atomics; recording never takes the registry
//     lock, so hot paths (per-fragment timings, per-attempt counters)
//     can record unconditionally.
//   - Constructors are idempotent: asking for the same family name
//     returns the same instrument, so independent subsystems can share
//     a registry without coordination. Re-registering a name with a
//     different kind, label set or bucket layout panics — that is a
//     programming error, not a runtime condition.
//   - All constructors are nil-receiver safe: a nil *Registry hands
//     back detached instruments that record into the void, so
//     subsystems take an optional registry without nil checks.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed kind and label schema; its
// children are the per-label-value instruments.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	values []string
	num    *value         // counter / gauge
	fn     func() float64 // gauge func
	hist   *Histogram
}

// value is an atomically-updated float64.
type value struct{ bits atomic.Uint64 }

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v *value }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(d float64) {
	if c == nil || c.v == nil || d < 0 {
		return
	}
	c.v.add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.v == nil {
		return 0
	}
	return c.v.get()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v *value }

// Set replaces the gauge value.
func (g *Gauge) Set(f float64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.set(f)
}

// Add adjusts the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.add(d)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.v == nil {
		return 0
	}
	return g.v.get()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in ascending order; observations above the last bound land in
// the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf overflow
	count  atomic.Uint64
	sum    value
}

func newHistogramInst(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(x)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry
	// for the +Inf overflow bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's buckets, total count and sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.get(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile approximates the q-th quantile (0..1) of the snapshot by
// linear interpolation within the containing bucket. Observations in
// the +Inf overflow bucket are reported at the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{v: v.fam.child(values).num}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{v: v.fam.child(values).num}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.child(values).hist
}

func labelKey(values []string) string { return strings.Join(values, "\xff") }

// child finds or creates the instrument for one label-value tuple.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			c.hist = newHistogramInst(f.bounds)
		} else {
			c.num = &value{}
		}
		f.children[key] = c
	}
	return c
}

// lookup finds or creates a family, validating schema consistency.
func (r *Registry) lookup(name, help string, k kind, labels []string, bounds []float64) *family {
	if r == nil {
		// Detached family: records are kept but never exported.
		return &family{name: name, help: help, kind: k, labels: labels, bounds: bounds, children: make(map[string]*child)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			kind:     k,
			labels:   append([]string(nil), labels...),
			bounds:   append([]float64(nil), bounds...),
			children: make(map[string]*child),
		}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.kind))
	}
	if len(f.labels) != len(labels) || labelKey(f.labels) != labelKey(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
	}
	if k == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{v: r.lookup(name, help, kindCounter, nil, nil).child(nil).num}
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.lookup(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{v: r.lookup(name, help, kindGauge, nil, nil).child(nil).num}
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.lookup(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time. fn must be safe to call concurrently and must not
// re-enter the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, nil, nil)
	c := f.child(nil)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) unlabeled histogram
// with the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, bounds).child(nil).hist
}

// HistogramVec registers a histogram family with the given bounds and
// label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.lookup(name, help, kindHistogram, labels, bounds)}
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} from parallel name/value slices, with
// optional extra pairs appended (used for histogram le).
func labelPairs(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format
// 0.0.4, families sorted by name, children by label values. Families
// with no samples yet still emit their HELP/TYPE header so the full
// metric surface is visible from boot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]*child, 0, len(keys))
		for _, k := range keys {
			kids = append(kids, f.children[k])
		}
		f.mu.Unlock()

		for _, c := range kids {
			switch f.kind {
			case kindHistogram:
				s := c.hist.Snapshot()
				var cum uint64
				for i, bound := range s.Bounds {
					cum += s.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, c.values, "le", formatFloat(bound)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, c.values, "le", "+Inf"), s.Count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelPairs(f.labels, c.values), strconv.FormatFloat(s.Sum, 'g', -1, 64))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelPairs(f.labels, c.values), s.Count)
			default:
				v := c.num.get()
				if c.fn != nil {
					v = c.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPairs(f.labels, c.values), formatFloat(v))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry in Prometheus text format; the standard
// scrape target for GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
