package compss

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// sleepRecorder captures backoff sleeps instead of waiting, so retry
// timing is asserted deterministically with zero wall-clock cost.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (s *sleepRecorder) sleep(d time.Duration) {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
}

func (s *sleepRecorder) recorded() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.sleeps...)
}

func TestRetryBackoffExponentialWithJitter(t *testing.T) {
	base := 10 * time.Millisecond
	max := 40 * time.Millisecond
	run := func(seed int64) []time.Duration {
		rec := &sleepRecorder{}
		rt := NewRuntime(Config{
			Workers: 1, BaseBackoff: base, MaxBackoff: max,
			Seed: seed, Sleep: rec.sleep,
		})
		defer rt.Shutdown()
		var attempts int32
		def := rt.MustRegister(TaskDef{
			Name: "flaky", Outputs: 1, Retries: 4,
			Fn: func([]any) ([]any, error) {
				if atomic.AddInt32(&attempts, 1) <= 4 {
					return nil, errors.New("transient")
				}
				return []any{1}, nil
			},
		})
		f, err := rt.InvokeOne(def)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Get(); err != nil {
			t.Fatalf("task should succeed on the final attempt: %v", err)
		}
		return rec.recorded()
	}

	sleeps := run(11)
	if len(sleeps) != 4 {
		t.Fatalf("4 failed attempts should produce 4 backoff sleeps, got %d", len(sleeps))
	}
	// min(max, base·2^i) with jitter in [0.5, 1.5).
	for i, d := range sleeps {
		exp := base << uint(i)
		if exp > max {
			exp = max
		}
		lo := time.Duration(float64(exp) * 0.5)
		hi := time.Duration(float64(exp) * 1.5)
		if d < lo || d >= hi {
			t.Errorf("sleep %d = %v outside jitter window [%v, %v) of %v", i, d, lo, hi, exp)
		}
	}
	// Growth: the cap (40ms) must be reached by the third retry.
	if sleeps[2] < 20*time.Millisecond {
		t.Errorf("third backoff %v shows no exponential growth", sleeps[2])
	}

	// Same seed, same schedule — the jitter is reproducible.
	again := run(11)
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Fatalf("seeded backoff not deterministic: run1 %v run2 %v", sleeps, again)
		}
	}
}

func TestTaskTimeoutCountsAsFailedAttempt(t *testing.T) {
	rec := &sleepRecorder{}
	rt := NewRuntime(Config{Workers: 1, BaseBackoff: time.Millisecond, Seed: 1, Sleep: rec.sleep})
	defer rt.Shutdown()
	var attempts int32
	release := make(chan struct{})
	def := rt.MustRegister(TaskDef{
		Name: "slow", Outputs: 1, Retries: 1, Timeout: 20 * time.Millisecond,
		Fn: func([]any) ([]any, error) {
			if atomic.AddInt32(&attempts, 1) == 1 {
				<-release // first attempt hangs well past the deadline
				return []any{-1}, nil
			}
			return []any{42}, nil
		},
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Get()
	close(release) // let the abandoned first attempt finish and be discarded
	if err != nil {
		t.Fatalf("retry after timeout should succeed: %v", err)
	}
	if v.(int) != 42 {
		t.Fatalf("got %v: the abandoned attempt's result leaked into the future", v)
	}
	if n := atomic.LoadInt32(&attempts); n != 2 {
		t.Fatalf("attempts = %d, want 2 (timeout must count as a failed attempt)", n)
	}
	if len(rec.recorded()) != 1 {
		t.Fatalf("expected 1 backoff sleep between attempts, got %d", len(rec.recorded()))
	}
}

func TestTaskTimeoutErrorTyped(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1, BaseBackoff: time.Millisecond, Seed: 1, Sleep: func(time.Duration) {}})
	defer rt.Shutdown()
	block := make(chan struct{})
	defer close(block)
	def := rt.MustRegister(TaskDef{
		Name: "stuck", Outputs: 1, Timeout: 10 * time.Millisecond, OnFailure: Ignore,
		Fn: func([]any) ([]any, error) {
			<-block
			return []any{0}, nil
		},
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(); err != nil {
		t.Fatalf("Ignore policy should yield nil error, got %v", err)
	}
	// FailFast variant surfaces the typed timeout.
	def2 := rt.MustRegister(TaskDef{
		Name: "stuck2", Outputs: 1, Timeout: 10 * time.Millisecond, OnFailure: CancelSuccessors,
		Fn: func([]any) ([]any, error) {
			<-block
			return []any{0}, nil
		},
	})
	f2, err := rt.InvokeOne(def2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Get(); !errors.Is(err, ErrTaskTimeout) {
		t.Fatalf("error %v is not ErrTaskTimeout", err)
	}
}

func TestPermanentErrorSkipsRetryBudget(t *testing.T) {
	rec := &sleepRecorder{}
	rt := NewRuntime(Config{Workers: 1, Seed: 1, Sleep: rec.sleep})
	defer rt.Shutdown()
	var attempts int32
	def := rt.MustRegister(TaskDef{
		Name: "doomed", Outputs: 1, Retries: 5, OnFailure: Ignore,
		Fn: func([]any) ([]any, error) {
			atomic.AddInt32(&attempts, 1)
			return nil, Permanent(errors.New("schema mismatch"))
		},
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&attempts); n != 1 {
		t.Fatalf("permanent error retried %d times; must fail immediately", n)
	}
	if len(rec.recorded()) != 0 {
		t.Fatalf("permanent error slept %d times; must not back off", len(rec.recorded()))
	}
}

func TestInjectedTransientFaultIsRetried(t *testing.T) {
	inj := chaos.NewSeeded(5, chaos.Rule{Site: chaos.SiteTask, Op: "work", Attempt: 0, Kind: chaos.Transient})
	rt := NewRuntime(Config{Workers: 2, Seed: 5, Sleep: func(time.Duration) {}, Injector: inj})
	defer rt.Shutdown()
	var ran int32
	def := rt.MustRegister(TaskDef{
		Name: "work", Outputs: 1, Retries: 1,
		Fn: func([]any) ([]any, error) {
			atomic.AddInt32(&ran, 1)
			return []any{"ok"}, nil
		},
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Get()
	if err != nil || v.(string) != "ok" {
		t.Fatalf("got (%v, %v)", v, err)
	}
	// The injected fault replaced attempt 0 entirely: the body ran once.
	if atomic.LoadInt32(&ran) != 1 {
		t.Fatalf("body ran %d times", ran)
	}
	if inj.CountKind(chaos.Transient) != 1 {
		t.Fatalf("injector fired %d transient faults, want 1", inj.CountKind(chaos.Transient))
	}
}

func TestInjectedPanicGoesThroughRunSafely(t *testing.T) {
	inj := chaos.NewSeeded(5, chaos.Rule{Site: chaos.SiteTask, Op: "panicky", Attempt: 0, Kind: chaos.PanicKind})
	rt := NewRuntime(Config{Workers: 1, Seed: 5, Sleep: func(time.Duration) {}, Injector: inj})
	defer rt.Shutdown()
	def := rt.MustRegister(TaskDef{
		Name: "panicky", Outputs: 1, Retries: 1,
		Fn: func([]any) ([]any, error) { return []any{7}, nil },
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Get()
	if err != nil || v.(int) != 7 {
		t.Fatalf("panic on attempt 0 should be isolated and retried: (%v, %v)", v, err)
	}
}

func TestInjectedPermanentFaultAppliesPolicyImmediately(t *testing.T) {
	inj := chaos.NewSeeded(5, chaos.Rule{Site: chaos.SiteTask, Op: "fatal", Kind: chaos.PermanentKind})
	rec := &sleepRecorder{}
	rt := NewRuntime(Config{Workers: 1, Seed: 5, Sleep: rec.sleep, Injector: inj})
	defer rt.Shutdown()
	def := rt.MustRegister(TaskDef{
		Name: "fatal", Outputs: 1, Retries: 4, OnFailure: CancelSuccessors,
		Fn: func([]any) ([]any, error) { return []any{0}, nil },
	})
	f, err := rt.InvokeOne(def)
	if err != nil {
		t.Fatal(err)
	}
	_, gerr := f.Get()
	if gerr == nil || !chaos.IsPermanent(gerr) {
		t.Fatalf("future error %v should carry the permanent marker", gerr)
	}
	if !errors.Is(gerr, chaos.ErrInjected) {
		t.Fatalf("future error %v should identify the injected cause", gerr)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injector fired %d times, want 1 (no retries for permanent)", inj.Injected())
	}
	if len(rec.recorded()) != 0 {
		t.Fatal("permanent fault must not back off")
	}
}

func TestInjectedCrashBeforeCheckpointThenResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.log")
	inj := chaos.NewSeeded(9, chaos.Rule{
		Site: chaos.SiteCheckpoint, Op: "b", Kind: chaos.Crash, Max: 1,
	})

	program := func(cp Checkpointer) (*Runtime, []*Future, error) {
		rt := NewRuntime(Config{Workers: 1, Checkpointer: cp, Seed: 9, Sleep: func(time.Duration) {}, Injector: inj})
		mk := func(name string, v int) *TaskDef {
			return rt.MustRegister(TaskDef{
				Name: name, Outputs: 1,
				Fn: func(args []any) ([]any, error) {
					sum := v
					for _, a := range args {
						if a != nil {
							sum += a.(int)
						}
					}
					return []any{sum}, nil
				},
			})
		}
		a, b, c := mk("a", 1), mk("b", 10), mk("c", 100)
		fa, err := rt.InvokeOne(a)
		if err != nil {
			return rt, nil, err
		}
		fb, err := rt.InvokeOne(b, In(fa))
		if err != nil {
			return rt, nil, err
		}
		fc, err := rt.InvokeOne(c, In(fb))
		if err != nil {
			return rt, nil, err
		}
		return rt, []*Future{fa, fb, fc}, nil
	}

	cp1, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	rt1, _, err := program(cp1)
	if err != nil {
		t.Fatal(err)
	}
	werr := rt1.Shutdown()
	if !errors.Is(werr, chaos.ErrCrash) {
		t.Fatalf("first run should crash before b's checkpoint, got %v", werr)
	}
	if !errors.Is(werr, ErrWorkflowFailed) {
		t.Fatalf("crash should also be a workflow failure: %v", werr)
	}
	if got := cp1.Entries(); got != 1 {
		t.Fatalf("crash-before-checkpoint must lose b's record: entries = %d, want 1 (only a)", got)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: same checkpoint path, same (now-exhausted) injector.
	cp2, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	rt2, futs, err := program(cp2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Shutdown(); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	v, err := futs[2].Get()
	if err != nil || v.(int) != 111 {
		t.Fatalf("resumed chain = (%v, %v), want 111", v, err)
	}
	st := rt2.Stats()
	if st.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1 (a replayed, b re-ran)", st.Recovered)
	}
	if st.Done != 2 {
		t.Fatalf("Done = %d, want 2 (b and c executed)", st.Done)
	}
}

func TestCheckpointerSkipsCorruptMidFileRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.log")
	cp, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := cp.Record("t", i, []any{i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle record's payload in place: framing survives, the
	// gob blob does not (a partial-fsync shape of damage).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(raw) / 2
	for i := mid; i < mid+8 && i < len(raw); i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Corrupt() == 0 {
		t.Fatal("corruption went uncounted")
	}
	if re.Entries() == 0 {
		t.Fatal("all records lost: replay must keep the intact ones")
	}
	total := 0
	for i := 1; i <= 3; i++ {
		if v, ok := re.Lookup("t", i); ok {
			if v[0].(int) != i*10 {
				t.Fatalf("record %d decoded to %v", i, v[0])
			}
			total++
		}
	}
	if total < 1 || total+re.Corrupt() < 3 {
		t.Fatalf("recovered %d records with %d corrupt; log lost data beyond the damage", total, re.Corrupt())
	}
}

func TestCheckpointerTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.log")
	cp, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = cp.Record("t", 1, []any{"keep"})
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a torn record: a length prefix promising bytes that never
	// made it to disk.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x80, 0x02, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileCheckpointer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok := re.Lookup("t", 1); !ok || v[0].(string) != "keep" {
		t.Fatalf("whole record before the torn tail lost: %v %v", v, ok)
	}
	if re.Corrupt() != 1 {
		t.Fatalf("Corrupt = %d, want 1", re.Corrupt())
	}
}

// --- satellite: abort/cancellation coverage under -race ---

func TestConcurrentInvokeDuringAbort(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Sleep: func(time.Duration) {}})
	defer rt.Shutdown()
	def := rt.MustRegister(TaskDef{
		Name: "spin", Outputs: 1,
		Fn: func([]any) ([]any, error) {
			time.Sleep(time.Millisecond)
			return []any{1}, nil
		},
	})

	var wg sync.WaitGroup
	var invoked, rejected int64
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if _, err := rt.Invoke(def); err != nil {
					if !errors.Is(err, ErrWorkflowFailed) {
						t.Errorf("unexpected Invoke error: %v", err)
					}
					atomic.AddInt64(&rejected, 1)
				} else {
					atomic.AddInt64(&invoked, 1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(2 * time.Millisecond)
		rt.Abort("operator stop")
	}()
	close(start)
	wg.Wait()

	if err := rt.Barrier(); !errors.Is(err, ErrWorkflowFailed) {
		t.Fatalf("aborted workflow must report failure, got %v", err)
	}
	// Every accepted invocation must have resolved its futures one way or
	// the other — nothing may hang.
	st := rt.Stats()
	if got := int64(st.Done+st.Cancelled+st.Failed+st.Ignored) + rejected; got != 400 {
		t.Fatalf("accounted %d of 400 submissions (stats %+v, rejected %d)", got, st, rejected)
	}
	if rejected == 0 {
		t.Log("abort landed after all submissions; race window not hit this run")
	}
}

func TestCancelSuccessorsDeepFanout(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Sleep: func(time.Duration) {}})
	defer rt.Shutdown()
	boom := rt.MustRegister(TaskDef{
		Name: "boom", Outputs: 1, OnFailure: CancelSuccessors,
		Fn: func([]any) ([]any, error) { return nil, errors.New("root failure") },
	})
	pass := rt.MustRegister(TaskDef{
		Name: "pass", Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			return []any{args[0]}, nil
		},
	})

	root, err := rt.InvokeOne(boom)
	if err != nil {
		t.Fatal(err)
	}
	// Three levels of fan-out: 1 -> 3 -> 9 -> 27 tasks, all transitively
	// doomed; plus one independent branch that must survive.
	level := []*Future{root}
	var all []*Future
	for depth := 0; depth < 3; depth++ {
		var next []*Future
		for _, parent := range level {
			for k := 0; k < 3; k++ {
				f, err := rt.InvokeOne(pass, In(parent))
				if err != nil {
					t.Fatal(err)
				}
				next = append(next, f)
				all = append(all, f)
			}
		}
		level = next
	}
	indep, err := rt.InvokeOne(pass, In(99))
	if err != nil {
		t.Fatal(err)
	}

	for i, f := range all {
		if _, err := f.Get(); !errors.Is(err, ErrCancelled) && err == nil {
			t.Fatalf("descendant %d resolved without error; cancellation did not propagate", i)
		}
	}
	if v, err := indep.Get(); err != nil || v.(int) != 99 {
		t.Fatalf("independent branch was hit by cancellation: (%v, %v)", v, err)
	}
	st := rt.Stats()
	if st.Cancelled != 39 {
		t.Fatalf("Cancelled = %d, want 39 (3+9+27 descendants)", st.Cancelled)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatalf("CancelSuccessors must not fail the workflow: %v", err)
	}
}

func TestIgnorePolicyYieldsTypedNilOutputs(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, Sleep: func(time.Duration) {}})
	defer rt.Shutdown()
	multi := rt.MustRegister(TaskDef{
		Name: "multi", Outputs: 3, OnFailure: Ignore, Retries: 1,
		Fn: func([]any) ([]any, error) { return nil, errors.New("always fails") },
	})
	consume := rt.MustRegister(TaskDef{
		Name: "consume", Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			for i, a := range args {
				if a != nil {
					return nil, fmt.Errorf("arg %d = %v, want nil from ignored producer", i, a)
				}
			}
			return []any{"saw nils"}, nil
		},
	})
	outs, err := rt.Invoke(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("declared 3 outputs, got %d futures", len(outs))
	}
	for i, f := range outs {
		v, gerr := f.Get()
		if gerr != nil {
			t.Fatalf("output %d: ignored failure must yield nil error, got %v", i, gerr)
		}
		if v != nil {
			t.Fatalf("output %d: ignored failure must yield nil value, got %v", i, v)
		}
	}
	got, err := rt.InvokeOne(consume, In(outs[0]), In(outs[1]), In(outs[2]))
	if err != nil {
		t.Fatal(err)
	}
	if v, gerr := got.Get(); gerr != nil || v.(string) != "saw nils" {
		t.Fatalf("successor of ignored task: (%v, %v)", v, gerr)
	}
	if st := rt.Stats(); st.Ignored != 1 {
		t.Fatalf("Ignored = %d, want 1", st.Ignored)
	}
}
