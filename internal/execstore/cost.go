package execstore

import (
	"sync"

	"repro/internal/obs"
)

// costModel estimates a task kind's runtime from the obs histogram of
// its past runs (execstore_task_run_seconds{kind=...}). The estimate is
// the observed mean blended with a configurable prior so the first few
// runs of a new workflow type neither dominate nor vanish:
//
//	estimate = (prior*priorWeight + sum(observed)) / (priorWeight + count)
//
// Two consumers read it: admission (Submit projects backlog cost onto
// live replica capacity and sheds over MaxEstimatedWait) and fair-share
// dispatch (DRR charges each task its cost normalized by the global
// mean, so one expensive simulation counts as many cheap diagnostics).
type costModel struct {
	mu          sync.Mutex
	prior       float64
	byKind      map[string]*kindStats
	runs        *obs.HistogramVec
	globalSum   float64
	globalCount float64
}

// priorWeight is how many synthetic observations the prior is worth.
const priorWeight = 3.0

type kindStats struct {
	hist  *obs.Histogram
	sum   float64
	count float64
}

func newCostModel(reg *obs.Registry, prior float64) *costModel {
	return &costModel{
		prior:  prior,
		byKind: make(map[string]*kindStats),
		runs: reg.HistogramVec("execstore_task_run_seconds",
			"Task execution latency by workflow kind (feeds the admission cost model).",
			histBounds, "kind"),
	}
}

func (c *costModel) kind(k string) *kindStats {
	ks, ok := c.byKind[k]
	if !ok {
		ks = &kindStats{hist: c.runs.With(k)}
		c.byKind[k] = ks
	}
	return ks
}

// observe records one finished run of kind k.
func (c *costModel) observe(k string, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	c.mu.Lock()
	ks := c.kind(k)
	ks.hist.Observe(seconds)
	ks.sum += seconds
	ks.count++
	c.globalSum += seconds
	c.globalCount++
	c.mu.Unlock()
}

// estimate returns the prior-blended mean runtime of kind k in seconds.
func (c *costModel) estimate(k string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ks := c.kind(k)
	return (c.prior*priorWeight + ks.sum) / (priorWeight + ks.count)
}

// globalMean is the prior-blended mean runtime across all kinds.
func (c *costModel) globalMean() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return (c.prior*priorWeight + c.globalSum) / (priorWeight + c.globalCount)
}

// normalized returns kind k's cost in DRR units: its estimate over the
// global mean, clamped to [0.1, 100] so a single outlier kind can
// neither freeze its tenant out of rounds nor ride for free.
func (c *costModel) normalized(k string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ks := c.kind(k)
	est := (c.prior*priorWeight + ks.sum) / (priorWeight + ks.count)
	mean := (c.prior*priorWeight + c.globalSum) / (priorWeight + c.globalCount)
	u := est / mean
	if u < 0.1 {
		u = 0.1
	} else if u > 100 {
		u = 100
	}
	return u
}
