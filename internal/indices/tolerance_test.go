package indices

import (
	"math"
	"testing"

	"repro/internal/datacube"
)

// requireWithinTolerance asserts every value of got is within eps (plus
// a small float32 slack) of want.
func requireWithinTolerance(t *testing.T, name string, got, want *datacube.Cube, eps float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.ImplicitLen() != want.ImplicitLen() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows(), got.ImplicitLen(), want.Rows(), want.ImplicitLen())
	}
	gv, wv := got.Values(), want.Values()
	for r := range wv {
		for i := range wv[r] {
			if d := math.Abs(float64(gv[r][i]) - float64(wv[r][i])); d > eps+1e-3 {
				t.Fatalf("%s: row %d elem %d: |%v-%v| = %g exceeds tolerance %g",
					name, r, i, gv[r][i], wv[r][i], d, eps)
			}
		}
	}
}

func TestWaveTolerance(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, err := BuildBaseline(e, g, days)
	if err != nil {
		t.Fatal(err)
	}
	temp := syntheticTempCube(t, e, g, days, seededAnomaly(20260807, g.Size(), days))
	p := Params{ThresholdK: 3, MinDays: 3, DaysPerYear: days}

	exact, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance(0) stays byte-identical to the exact fused path
	p.Tolerance = 0
	zero, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "tol0/duration", zero.Duration, exact.Duration)
	requireBitIdentical(t, "tol0/number", zero.Number, exact.Number)
	requireBitIdentical(t, "tol0/frequency", zero.Frequency, exact.Frequency)

	// a declared tolerance bounds the error on every index value
	p.Tolerance = 0.5
	tol, err := HeatWavesFromCube(temp, b, p)
	if err != nil {
		t.Fatal(err)
	}
	requireWithinTolerance(t, "tol/duration", tol.Duration, exact.Duration, p.Tolerance)
	requireWithinTolerance(t, "tol/number", tol.Number, exact.Number, p.Tolerance)
	requireWithinTolerance(t, "tol/frequency", tol.Frequency, exact.Frequency, p.Tolerance)
	if err := Validate(tol, p); err != nil {
		t.Fatalf("tolerant result failed invariants: %v", err)
	}

	// cold side as well
	coldExact, err := ColdWavesFromCube(temp, b, Params{ThresholdK: 3, MinDays: 3, DaysPerYear: days})
	if err != nil {
		t.Fatal(err)
	}
	coldTol, err := ColdWavesFromCube(temp, b, Params{ThresholdK: 3, MinDays: 3, DaysPerYear: days, Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	requireWithinTolerance(t, "cold/duration", coldTol.Duration, coldExact.Duration, 0.5)
	requireWithinTolerance(t, "cold/frequency", coldTol.Frequency, coldExact.Frequency, 0.5)
}

func TestETCCDITolerance(t *testing.T) {
	e := testEngine(t)
	g := smallGrid()
	const days = 20
	b, err := BuildPercentileBaseline(e, g, days, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	temp := syntheticTempCube(t, e, g, days, seededAnomaly(7, g.Size(), days))

	exact, err := ETCCDI(temp, b, Params{MinDays: 3, DaysPerYear: days})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ETCCDI(temp, b, Params{MinDays: 3, DaysPerYear: days, Tolerance: 0})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "tol0/TX90p", zero.TX90p, exact.TX90p)
	requireBitIdentical(t, "tol0/WSDI", zero.WSDI, exact.WSDI)

	const eps = 0.5
	tol, err := ETCCDI(temp, b, Params{MinDays: 3, DaysPerYear: days, Tolerance: eps})
	if err != nil {
		t.Fatal(err)
	}
	requireWithinTolerance(t, "TX90p", tol.TX90p, exact.TX90p, eps)
	requireWithinTolerance(t, "TN10p", tol.TN10p, exact.TN10p, eps)
	requireWithinTolerance(t, "WSDI", tol.WSDI, exact.WSDI, eps)
	requireWithinTolerance(t, "CSDI", tol.CSDI, exact.CSDI, eps)
}

func TestPrecipTolerance(t *testing.T) {
	e := testEngine(t)
	const days = 24
	daily, err := e.NewCubeFromFunc("PR_DAILY",
		[]datacube.Dimension{{Name: "cell", Size: 32}},
		datacube.Dimension{Name: "time", Size: days},
		func(row, d int) float32 { return float32(2 + 0.02*float64(row) + float64(d%5)) })
	if err != nil {
		t.Fatal(err)
	}
	p95, err := e.NewCubeFromFunc("PR95_CLIM",
		[]datacube.Dimension{{Name: "cell", Size: 32}},
		datacube.Dimension{Name: "time", Size: days},
		func(row, d int) float32 { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	exact, err := PrecipIndices(daily, p95)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := PrecipIndices(daily, p95, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "tol0/PRCPTOT", zero.PRCPTOT, exact.PRCPTOT)
	requireBitIdentical(t, "tol0/R95pTOT", zero.R95pTOT, exact.R95pTOT)

	const eps = 1.0
	tol, err := PrecipIndices(daily, p95, eps)
	if err != nil {
		t.Fatal(err)
	}
	requireWithinTolerance(t, "PRCPTOT", tol.PRCPTOT, exact.PRCPTOT, eps)
	requireWithinTolerance(t, "Rx1day", tol.Rx1day, exact.Rx1day, eps)
	requireWithinTolerance(t, "CDD", tol.CDD, exact.CDD, eps)
	requireWithinTolerance(t, "R95pTOT", tol.R95pTOT, exact.R95pTOT, eps)
}
