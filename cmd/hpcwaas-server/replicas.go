package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/execstore"
	"repro/internal/hpcwaas"
	"repro/internal/obs"
)

// runReplicated serves the registry through N stateless API replicas
// (DESIGN.md §13) over one shared epoch-fenced execution store instead
// of the single execq-backed service. Replica i listens on the -addr
// port plus i, each embeds an executor, and any replica can answer for
// any execution: kill one mid-run and its leases expire, are reclaimed
// by a survivor, and the execution still completes exactly once.
func runReplicated(addr string, replicas int, registry *hpcwaas.Registry,
	metrics *obs.Registry, leaseTTL time.Duration, maxWait time.Duration,
	workers, queueDepth, quota, retention int, rate float64,
	journalPath string, drainWait time.Duration) {

	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		log.Fatalf("-addr %q: %v", addr, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("-addr %q: replica mode needs a numeric port: %v", addr, err)
	}

	store, err := execstore.Open(execstore.Config{
		MaxPending:       queueDepth,
		PerTenantLimit:   quota,
		RatePerSec:       rate,
		MaxEstimatedWait: maxWait,
		LeaseTTL:         leaseTTL,
		Retention:        retention,
		JournalPath:      journalPath,
		Metrics:          metrics,
	})
	if err != nil {
		log.Fatal(err)
	}

	servers := make([]*http.Server, replicas)
	fronts := make([]*hpcwaas.Frontend, replicas)
	errCh := make(chan error, replicas)
	for i := 0; i < replicas; i++ {
		f, err := hpcwaas.NewFrontend(hpcwaas.FrontendConfig{
			ID:       fmt.Sprintf("replica-%d", i),
			Store:    store,
			Registry: registry,
			Workers:  workers,
			Metrics:  metrics,
		})
		if err != nil {
			log.Fatal(err)
		}
		fronts[i] = f
		replicaAddr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
		srv := &http.Server{Addr: replicaAddr, Handler: f.Handler()}
		servers[i] = srv
		go func() { errCh <- srv.ListenAndServe() }()
		fmt.Printf("HPCWaaS replica %d on http://%s (%d workers, lease TTL %s)\n",
			i, replicaAddr, workers, leaseTTL)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-sigCtx.Done():
	}

	log.Printf("signal received: draining %d replicas (up to %s)", replicas, drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	for i, srv := range servers {
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("replica %d http shutdown: %v", i, err)
		}
	}
	for i, f := range fronts {
		if err := f.Drain(ctx); err != nil {
			log.Printf("replica %d drain: %v", i, err)
		}
	}
	store.Drain()
	if err := store.WaitIdle(ctx); err != nil {
		log.Printf("store drain incomplete: %v", err)
	}
	if err := store.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Printf("shutdown complete")
	os.Exit(0)
}
