package core

// Exchange-routed data handoff (Config.Exchange): the ESM task
// publishes each simulated day's variables into the in-memory tensor
// exchange the moment the daily file lands, and the per-year consumer
// tasks prefer the published tensors over re-reading the files. The
// file path stays the durable record and the universal fallback — a
// consumer that misses the exchange (retried task, drained entry,
// external producer) falls back to the exact bytes on disk, so both
// paths produce identical results.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ncdf"
	"repro/internal/stream"
	"repro/internal/texchange"
)

// exchangeWaitTimeout bounds how long a consumer waits for a tensor
// that the production order says should already be published. Publish
// happens before the file becomes visible to the directory watcher, so
// a miss here means the entry is genuinely gone (consumed, dropped or
// externally produced) and the file fallback is the answer.
const exchangeWaitTimeout = 2 * time.Second

// exchangeVars are the variables the ESM task publishes per day: the
// TC branch inputs plus the temperature the datacube import consumes.
var exchangeVars = append([]string{"TREFHT"}, tcVars...)

// exTensorName is the exchange naming scheme for daily model output.
func exTensorName(year, day int, varName string) string {
	return fmt.Sprintf("esm/%04d/d%03d/%s", year, day, varName)
}

// publishDay publishes one day's exchange variables straight from the
// in-memory dataset the daily file was written from — zero-copy: the
// tensor backing slices are the dataset's variable slices. A closed
// exchange silently disables publishing (consumers fall back to files).
func publishDay(x *texchange.Exchange, d *esm.DayOutput, ds *ncdf.Dataset) error {
	meta := map[string]string{
		"year": fmt.Sprint(d.Year),
		"day":  fmt.Sprint(d.DayOfYear),
	}
	for _, name := range exchangeVars {
		v, err := ds.Var(name)
		if err != nil {
			return err
		}
		t := texchange.Tensor{
			Name:  exTensorName(d.Year, d.DayOfYear, name),
			Shape: []int{esm.StepsPerDay, d.Grid.NLat, d.Grid.NLon},
			Data:  v.Data,
			Meta:  meta,
		}
		if _, err := x.Publish(t); err != nil {
			if err == texchange.ErrClosed {
				return nil
			}
			return err
		}
	}
	return nil
}

// takeDayVars pulls one day's variables out of the exchange, removing
// the consumed entries. ok=false means at least one tensor is missing
// and the caller must fall back to the file.
func takeDayVars(x *texchange.Exchange, year, day int, vars []string) (map[string][]float32, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), exchangeWaitTimeout)
	defer cancel()
	out := make(map[string][]float32, len(vars))
	for _, v := range vars {
		t, err := x.Wait(ctx, exTensorName(year, day, v), 1)
		if err != nil {
			return nil, false
		}
		out[v] = t.Data
	}
	// Remove only after the whole set resolved, so a partial miss leaves
	// the exchange ready for the file-fallback retry.
	for _, v := range vars {
		x.Remove(exTensorName(year, day, v))
	}
	return out, true
}

// loadTCFieldsExchange is loadTCFields preferring the exchange: per
// day, the TC variables are taken from published tensors; the first
// miss switches the rest of the year to the file path (if day d is
// gone, production order says later days were not published either).
func loadTCFieldsExchange(x *texchange.Exchange, files []string, g grid.Grid) ([]stepFields, error) {
	var out []stepFields
	useFiles := false
	for _, path := range files {
		year, dayOfYear, ok := esm.ParseFileName(path)
		if !ok {
			return nil, fmt.Errorf("core: unparseable model file %q", path)
		}
		var perVar map[string][]float32
		if !useFiles {
			if pv, hit := takeDayVars(x, year, dayOfYear, tcVars); hit {
				perVar = pv
			} else {
				useFiles = true
			}
		}
		if perVar == nil {
			pv, err := readDayVars(path)
			if err != nil {
				return nil, err
			}
			perVar = pv
		}
		steps, err := dayStepFields(perVar, g, dayOfYear)
		if err != nil {
			return nil, err
		}
		out = append(out, steps...)
	}
	sortStepFields(out)
	return out, nil
}

// importYearExchange builds the year's temperature cube from published
// TREFHT tensors — one in-memory dataset per day, concatenated along
// time — with zero storage reads. Any miss or failure returns an error
// and the caller falls back to Engine.ImportFiles.
func importYearExchange(eng *datacube.Engine, x *texchange.Exchange, batch stream.YearBatch, g grid.Grid) (*datacube.Cube, error) {
	parts := make([]*datacube.Cube, 0, len(batch.Files))
	defer func() {
		for _, p := range parts {
			_ = eng.Delete(p.ID())
		}
	}()
	for _, path := range batch.Files {
		year, day, ok := esm.ParseFileName(path)
		if !ok {
			return nil, fmt.Errorf("core: unparseable model file %q", path)
		}
		pv, hit := takeDayVars(x, year, day, []string{"TREFHT"})
		if !hit {
			return nil, fmt.Errorf("core: exchange miss for %s", exTensorName(year, day, "TREFHT"))
		}
		ds := ncdf.NewDataset()
		if err := ds.AddDim("time", esm.StepsPerDay); err != nil {
			return nil, err
		}
		if err := ds.AddDim("lat", g.NLat); err != nil {
			return nil, err
		}
		if err := ds.AddDim("lon", g.NLon); err != nil {
			return nil, err
		}
		if _, err := ds.AddVar("TREFHT", []string{"time", "lat", "lon"}, pv["TREFHT"]); err != nil {
			return nil, err
		}
		c, err := eng.ImportDataset(ds, "TREFHT", "time")
		if err != nil {
			return nil, err
		}
		parts = append(parts, c)
	}
	return eng.Concat(parts)
}
