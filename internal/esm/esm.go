// Package esm implements a synthetic coupled Earth System Model that
// stands in for CMCC-CM3 (CESM-based CAM6 atmosphere + NEMO4 ocean,
// paper §4.2.3). The real model needs a supercomputer; this one
// reproduces the model's *output contract* so that every downstream
// component of the workflow — streaming file detection, datacube
// analytics, heat/cold-wave indices, CNN-based tropical-cyclone
// localization and deterministic tracking — exercises the same code
// paths it would against real simulation data.
//
// The simulator couples a simple atmosphere (zonal climatology, seasonal
// and diurnal cycles, AR(1)-correlated weather noise, jet-stream winds)
// with a slab ocean (SST relaxing toward surface air temperature, sea
// ice below freezing), exchanging fluxes every timestep like the real
// coupled system ("every few minutes the heat, momentum and mass fluxes
// are sent from the atmosphere to the ocean and the sea surface
// temperature ... sent from the ocean to the atmosphere").
//
// Crucially, the simulator *seeds* ground-truth extreme events — heat
// waves, cold spells and tropical cyclones — whose exact location,
// timing and amplitude are recorded. Downstream detection skill can
// therefore be measured, which real model output cannot support.
package esm

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// StepsPerDay is the model output cadence: 6-hourly, 4 per day (§5.2).
const StepsPerDay = 4

// Scenario selects the greenhouse-gas forcing pathway, provided "year by
// year through I/O, corresponding to historical concentrations and/or
// future plausible projections".
type Scenario int

// Supported forcing scenarios.
const (
	// Historical applies no additional warming trend.
	Historical Scenario = iota
	// SSP245 is a moderate pathway (+0.025 K/year).
	SSP245
	// SSP585 is a high-emission pathway (+0.06 K/year).
	SSP585
)

func (s Scenario) String() string {
	switch s {
	case Historical:
		return "historical"
	case SSP245:
		return "ssp245"
	case SSP585:
		return "ssp585"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// WarmingRate returns the scenario's linear surface warming in K/year.
func (s Scenario) WarmingRate() float64 {
	switch s {
	case SSP245:
		return 0.025
	case SSP585:
		return 0.06
	default:
		return 0
	}
}

// Vars lists the ~20 single-precision variables each daily file holds,
// mirroring the paper's §5.2 ("precipitation rate, sea level pressure,
// temperature, wind speed, etc.").
var Vars = []string{
	"TREFHT",  // reference-height air temperature [K]
	"TS",      // surface temperature [K]
	"PSL",     // sea-level pressure [Pa]
	"U850",    // zonal wind at 850 hPa [m/s]
	"V850",    // meridional wind at 850 hPa [m/s]
	"U10",     // 10 m zonal wind [m/s]
	"V10",     // 10 m meridional wind [m/s]
	"WSPD10",  // 10 m wind speed [m/s]
	"PRECT",   // total precipitation rate [mm/day]
	"SST",     // sea-surface temperature [K]
	"ICEFRAC", // sea-ice fraction [0..1]
	"Q850",    // specific humidity at 850 hPa [g/kg]
	"Z500",    // 500 hPa geopotential height [m]
	"T500",    // 500 hPa temperature [K]
	"VORT850", // relative vorticity at 850 hPa [1/s]
	"CLDTOT",  // total cloud fraction [0..1]
	"FLNT",    // net longwave flux at TOA [W/m2]
	"FSNT",    // net shortwave flux at TOA [W/m2]
	"TAUX",    // zonal surface stress [N/m2]
	"TAUY",    // meridional surface stress [N/m2]
}

// Config parameterizes a model run.
type Config struct {
	// Grid is the output resolution. Zero value defaults to grid.Reduced;
	// the paper's native grid is grid.CMCCCM3 (768×1152).
	Grid grid.Grid
	// StartYear is the first simulated calendar year (e.g. 2040).
	StartYear int
	// Years is the projection span.
	Years int
	// DaysPerYear shortens the calendar for tests; zero means 365.
	DaysPerYear int
	// Seed drives all stochastic components; equal seeds give bit-equal
	// runs.
	Seed int64
	// Scenario selects GHG forcing.
	Scenario Scenario
	// Events configures seeded extremes; nil uses DefaultEvents.
	Events *EventConfig
}

func (c Config) withDefaults() Config {
	if c.Grid.NLat == 0 || c.Grid.NLon == 0 {
		c.Grid = grid.Reduced
	}
	if c.DaysPerYear <= 0 {
		c.DaysPerYear = 365
	}
	if c.StartYear == 0 {
		c.StartYear = 2040
	}
	if c.Years <= 0 {
		c.Years = 1
	}
	if c.Events == nil {
		ev := DefaultEvents()
		c.Events = &ev
	}
	return c
}

// Climatology returns the long-term mean near-surface temperature [K]
// for a grid cell and day-of-year, before weather noise, events and
// scenario warming. The heat/cold-wave baseline ("historical averages
// computed over a 20-year period", §5.3) is exactly this function, so
// index pipelines can compare against the true climatology.
func Climatology(g grid.Grid, i, j int, dayOfYear, daysPerYear int) float64 {
	lat := g.Lat(i)
	lon := g.Lon(j)
	// zonal mean: warm equator, cold poles
	base := 288.0 - 45.0*math.Pow(math.Abs(lat)/90, 1.6)
	// seasonal cycle: amplitude grows poleward, antiphase across
	// hemispheres; around day 15 the north is near its winter minimum
	// (austral summer peak).
	phase := 2 * math.Pi * (float64(dayOfYear) - 15) / float64(daysPerYear)
	amp := 1.0 + 14.0*math.Abs(lat)/90
	if lat >= 0 {
		base -= amp * math.Cos(phase)
	} else {
		base += amp * math.Cos(phase)
	}
	// weak zonal asymmetry (continents vs oceans analogue)
	base += 2.0 * math.Sin(2*lon*math.Pi/180)
	return base
}

// DiurnalAnomaly returns the additive temperature offset [K] of a
// 6-hourly step (0..3): coldest near 06h, warmest near 15h.
func DiurnalAnomaly(step int) float64 {
	// steps at 00,06,12,18h
	switch step % StepsPerDay {
	case 0:
		return -1.5
	case 1:
		return -3.0
	case 2:
		return 2.5
	default:
		return 2.0
	}
}
