package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPublishPollOrder(t *testing.T) {
	s := New[int]()
	if err := s.Publish(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	items, ok := s.Poll()
	if !ok || len(items) != 3 || items[0] != 1 || items[2] != 3 {
		t.Fatalf("poll = %v, %v", items, ok)
	}
	items, ok = s.Poll()
	if !ok || len(items) != 0 {
		t.Fatalf("empty open stream poll = %v, %v", items, ok)
	}
}

func TestPollAfterCloseDrainsThenEnds(t *testing.T) {
	s := New[string]()
	s.Publish("a")
	s.Close()
	items, ok := s.Poll()
	if !ok || len(items) != 1 {
		t.Fatalf("drain poll = %v %v", items, ok)
	}
	items, ok = s.Poll()
	if ok || len(items) != 0 {
		t.Fatalf("final poll = %v %v", items, ok)
	}
}

func TestPublishAfterClose(t *testing.T) {
	s := New[int]()
	s.Close()
	if err := s.Publish(1); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestNextBlocksUntilPublish(t *testing.T) {
	s := New[int]()
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Publish(7)
	}()
	v, ok := s.Next()
	if !ok || v != 7 {
		t.Fatalf("next = %v %v", v, ok)
	}
}

func TestNextUnblocksOnClose(t *testing.T) {
	s := New[int]()
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Close()
	}()
	if _, ok := s.Next(); ok {
		t.Fatal("next on closed empty stream should report !ok")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s := New[int]()
	const producers, per = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Publish(p*per + i)
			}
		}(p)
	}
	go func() { wg.Wait(); s.Close() }()
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := s.Next()
				if !ok {
					return
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d unique items, want %d", len(seen), producers*per)
	}
}

func TestDirWatcherDetectsFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWatcher(dir, `\.nc$`)
	if err != nil {
		t.Fatal(err)
	}
	w.Interval = time.Millisecond
	w.Start()
	os.WriteFile(filepath.Join(dir, "day1.nc"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "day2.nc"), []byte("x"), 0o644)
	time.Sleep(20 * time.Millisecond)
	w.Stop()
	var got []string
	for {
		v, ok := w.Stream().Next()
		if !ok {
			break
		}
		got = append(got, filepath.Base(v))
	}
	if len(got) != 2 {
		t.Fatalf("detected %v, want 2 .nc files", got)
	}
	for _, g := range got {
		if !strings.HasSuffix(g, ".nc") {
			t.Fatalf("non-matching file %q", g)
		}
	}
}

func TestDirWatcherNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.nc"), []byte("x"), 0o644)
	w, _ := NewDirWatcher(dir, "")
	w.Interval = time.Millisecond
	w.Start()
	time.Sleep(15 * time.Millisecond)
	w.Stop()
	n := 0
	for {
		if _, ok := w.Stream().Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("file reported %d times, want 1", n)
	}
}

func TestDirWatcherBadPattern(t *testing.T) {
	if _, err := NewDirWatcher(".", "("); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

func TestDirWatcherFinalScanBeforeStop(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewDirWatcher(dir, "")
	w.Interval = time.Hour // never ticks: rely on the final scan
	w.Start()
	os.WriteFile(filepath.Join(dir, "late.nc"), []byte("x"), 0o644)
	w.Stop()
	items, _ := w.Stream().Poll()
	if len(items) != 1 {
		t.Fatalf("final scan missed file: %v", items)
	}
}

// TestDirWatcherStopWithoutStart: Stop on a never-started watcher must
// not hang waiting for a goroutine that does not exist; it still runs
// the final scan so files already on disk are published, and the
// stream ends closed. (Regression: Stop used to block forever on the
// done channel.)
func TestDirWatcherStopWithoutStart(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "pre.nc"), []byte("x"), 0o644)
	w, _ := NewDirWatcher(dir, `\.nc$`)
	done := make(chan struct{})
	go func() {
		w.Stop()
		w.Stop() // repeated Stop stays safe
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}
	items, _ := w.Stream().Poll()
	if len(items) != 1 || filepath.Base(items[0]) != "pre.nc" {
		t.Fatalf("final scan items = %v", items)
	}
	if !w.Stream().Closed() {
		t.Fatal("stream not closed after Stop")
	}
	w.Start() // after Stop: must be a no-op, not a new goroutine
	if _, ok := w.Stream().Next(); ok {
		t.Fatal("stream reopened by Start after Stop")
	}
}

// TestDirWatcherStartIdempotent: repeated Start must not spawn a second
// poller (which would race the seen map and double-close the done
// channel on Stop).
func TestDirWatcherStartIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewDirWatcher(dir, "")
	w.Interval = time.Millisecond
	w.Start()
	w.Start()
	os.WriteFile(filepath.Join(dir, "a.nc"), []byte("x"), 0o644)
	time.Sleep(15 * time.Millisecond)
	w.Stop()
	n := 0
	for {
		if _, ok := w.Stream().Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("file reported %d times, want 1", n)
	}
}

// TestDirWatcherIgnoresTmpUntilRename documents the atomic-handoff
// contract with ncdf.WriteFile: a half-written temporary never matches
// the `\.nc$` pattern, so consumers only ever observe complete files —
// the file appears exactly once, after the rename.
func TestDirWatcherIgnoresTmpUntilRename(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewDirWatcher(dir, `\.nc$`)
	w.Interval = time.Millisecond
	w.Start()
	tmp := filepath.Join(dir, "day3.nc.tmp")
	os.WriteFile(tmp, []byte("partial"), 0o644)
	time.Sleep(15 * time.Millisecond)
	if n := w.Stream().Len(); n != 0 {
		t.Fatalf("temporary file published (%d items)", n)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "day3.nc")); err != nil {
		t.Fatal(err)
	}
	item, ok := w.Stream().Next()
	if !ok || filepath.Base(item) != "day3.nc" {
		t.Fatalf("renamed file not published: %q ok=%v", item, ok)
	}
	w.Stop()
	if items, _ := w.Stream().Poll(); len(items) != 0 {
		t.Fatalf("duplicate publish after rename: %v", items)
	}
}

func yearFromName(p string) (int, bool) {
	base := filepath.Base(p)
	parts := strings.SplitN(base, "-", 2)
	y, err := strconv.Atoi(parts[0])
	return y, err == nil
}

func TestYearBatcherEmitsCompleteYears(t *testing.T) {
	b := NewYearBatcher(3, yearFromName)
	if out := b.Add("2040-d1.nc", "2040-d2.nc"); len(out) != 0 {
		t.Fatalf("premature batch %v", out)
	}
	if inc := b.Incomplete(); inc[2040] != 2 {
		t.Fatalf("incomplete = %v", inc)
	}
	out := b.Add("2040-d3.nc")
	if len(out) != 1 || out[0].Year != 2040 || len(out[0].Files) != 3 {
		t.Fatalf("batch = %+v", out)
	}
	if out[0].Files[0] != "2040-d1.nc" {
		t.Fatalf("files not sorted: %v", out[0].Files)
	}
}

func TestYearBatcherMultipleYearsInterleaved(t *testing.T) {
	b := NewYearBatcher(2, yearFromName)
	out := b.Add("2041-d1.nc", "2040-d1.nc", "2041-d2.nc", "2040-d2.nc")
	if len(out) != 2 || out[0].Year != 2040 || out[1].Year != 2041 {
		t.Fatalf("batches = %+v", out)
	}
}

func TestYearBatcherIgnoresDuplicateEmission(t *testing.T) {
	b := NewYearBatcher(1, yearFromName)
	if out := b.Add("2040-d1.nc"); len(out) != 1 {
		t.Fatal("expected emission")
	}
	if out := b.Add("2040-d2.nc"); len(out) != 0 {
		t.Fatalf("year re-emitted: %v", out)
	}
}

func TestYearBatcherSkipsUnparseable(t *testing.T) {
	b := NewYearBatcher(1, yearFromName)
	if out := b.Add("garbage.nc"); len(out) != 0 {
		t.Fatalf("unparseable file produced batch %v", out)
	}
}

func TestYearBatcherDefaultDays(t *testing.T) {
	b := NewYearBatcher(0, yearFromName)
	if b.DaysPerYear != 365 {
		t.Fatalf("default days = %d", b.DaysPerYear)
	}
}

// Property: regardless of arrival order, every year with exactly
// daysPerYear files is emitted exactly once with all its files.
func TestYearBatcherCompletenessProperty(t *testing.T) {
	f := func(perm []uint8, days uint8) bool {
		d := int(days%5) + 1
		const years = 4
		var files []string
		for y := 0; y < years; y++ {
			for k := 0; k < d; k++ {
				files = append(files, fmt.Sprintf("%d-d%d.nc", 2040+y, k))
			}
		}
		// permute deterministically from perm
		for i := len(files) - 1; i > 0; i-- {
			j := 0
			if len(perm) > 0 {
				j = int(perm[i%len(perm)]) % (i + 1)
			}
			files[i], files[j] = files[j], files[i]
		}
		b := NewYearBatcher(d, yearFromName)
		emitted := map[int]int{}
		for _, f := range files {
			for _, batch := range b.Add(f) {
				emitted[batch.Year]++
				if len(batch.Files) != d {
					return false
				}
			}
		}
		if len(emitted) != years {
			return false
		}
		for _, n := range emitted {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	go func() {
		time.Sleep(10 * time.Millisecond)
		os.WriteFile(p, []byte("1"), 0o644)
	}()
	if err := WaitForFile(p, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := WaitForFile(filepath.Join(dir, "never"), 20*time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}
