package hpcwaas

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsEndpoint drives one execution through the REST API and
// asserts GET /metrics serves the execq instrument surface in
// Prometheus text format — without a bearer token, even when the rest
// of the API requires one.
func TestMetricsEndpoint(t *testing.T) {
	d := newTestDeployer(t)
	reg := NewRegistry()
	reg.Register(demoEntry("climate", nil))
	mreg := obs.NewRegistry()
	svc, err := NewServiceWith(reg, d, ServiceConfig{Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Metrics() != mreg {
		t.Fatal("Metrics() does not return the configured registry")
	}
	if err := svc.AuthorizeToken("s3cret", "alice"); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Lookup("climate")
	if _, err := d.Deploy(e, "zeus"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ExecuteAs("alice", "climate", map[string]string{"msg": "hi"}, 0); err != nil {
		t.Fatal(err)
	}
	svc.Wait()

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// API routes demand the token...
	resp, err := srv.Client().Get(srv.URL + "/api/queue")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /api/queue = %d, want 401", resp.StatusCode)
	}

	// ...but the scrape endpoint does not.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE execq_submitted_total counter",
		"execq_submitted_total 1",
		"execq_completed_total 1",
		"# TYPE execq_queue_depth gauge",
		"execq_queue_depth 0",
		"# TYPE execq_wait_seconds histogram",
		`execq_wait_seconds_bucket{le="+Inf"} 1`,
		"execq_wait_seconds_count 1",
		"# TYPE execq_run_seconds histogram",
		"execq_run_seconds_count 1",
		`execq_rejected_total{reason="full"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", text)
	}

	// Writes to the scrape endpoint are refused.
	resp, err = srv.Client().Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}
