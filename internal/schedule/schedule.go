// Package schedule replays recorded workflow executions on the
// simulated cluster to answer capacity-planning questions: given the
// measured task durations and the dependency graph of a real run, what
// would the makespan be on N nodes? This is the "what-if" analysis HPC
// workflow teams run before requesting allocations, built from two
// pieces this repository already has — execution provenance
// (internal/compss) and the discrete-event batch scheduler
// (internal/cluster).
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/compss"
)

// TaskSpec overrides per-task-kind resource needs during replay.
type TaskSpec struct {
	// Cores per instance of this task kind (default 1).
	Cores int
}

// ReplayConfig parameterizes one replay.
type ReplayConfig struct {
	// Nodes and CoresPerNode size the simulated machine.
	Nodes, CoresPerNode int
	// Specs maps task kind names to resource overrides.
	Specs map[string]TaskSpec
	// MinTaskSeconds floors recorded durations, so zero-duration tasks
	// (sub-millisecond) still occupy the scheduler; default 1e-6.
	MinTaskSeconds float64
}

// ReplayResult summarizes one replay.
type ReplayResult struct {
	Nodes, CoresPerNode int
	// Makespan is the virtual completion time of the whole graph.
	Makespan float64
	// TotalWork is the sum of task core-seconds.
	TotalWork float64
	// CriticalPath is the duration-weighted longest dependency chain —
	// the lower bound no machine size can beat.
	CriticalPath float64
	// Efficiency is TotalWork / (capacity × Makespan).
	Efficiency float64
	// Tasks is the number of replayed tasks.
	Tasks int
}

// replayTask is the in-memory task state during a replay.
type replayTask struct {
	id       int
	name     string
	duration float64
	cores    int
	deps     map[int]struct{}
	children []int
}

// Replay simulates the provenance graph on a cluster of the given
// size. Task durations come from the recorded run; dependencies are
// honored exactly; placement and queueing follow the cluster's batch
// scheduler.
func Replay(p *compss.Provenance, cfg ReplayConfig) (ReplayResult, error) {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		return ReplayResult{}, fmt.Errorf("schedule: invalid machine %dx%d", cfg.Nodes, cfg.CoresPerNode)
	}
	if cfg.MinTaskSeconds <= 0 {
		cfg.MinTaskSeconds = 1e-6
	}
	tasks := make(map[int]*replayTask, len(p.Tasks))
	for _, tp := range p.Tasks {
		d := tp.DurationMS / 1000
		if d < cfg.MinTaskSeconds {
			d = cfg.MinTaskSeconds
		}
		cores := 1
		if spec, ok := cfg.Specs[tp.Name]; ok && spec.Cores > 0 {
			cores = spec.Cores
		}
		if cores > cfg.CoresPerNode {
			cores = cfg.CoresPerNode
		}
		tasks[tp.ID] = &replayTask{
			id: tp.ID, name: tp.Name, duration: d, cores: cores,
			deps: make(map[int]struct{}),
		}
	}
	for _, e := range p.Edges {
		from, to := e[0], e[1]
		ft, fok := tasks[from]
		tt, tok := tasks[to]
		if !fok || !tok {
			return ReplayResult{}, fmt.Errorf("schedule: edge %v references unknown task", e)
		}
		tt.deps[from] = struct{}{}
		ft.children = append(ft.children, to)
	}

	res := ReplayResult{Nodes: cfg.Nodes, CoresPerNode: cfg.CoresPerNode, Tasks: len(tasks)}
	for _, t := range tasks {
		res.TotalWork += t.duration * float64(t.cores)
	}
	res.CriticalPath = criticalPath(tasks)

	c := cluster.New(cfg.Nodes, cfg.CoresPerNode, 1<<30)
	running := make(map[int]*cluster.Job) // task id → job
	done := make(map[int]bool)

	submitReady := func() error {
		ids := make([]int, 0, len(tasks))
		for id := range tasks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			t := tasks[id]
			if done[id] || running[id] != nil {
				continue
			}
			ready := true
			for dep := range t.deps {
				if !done[dep] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			job, err := c.Submit(t.name, cluster.Resources{Cores: t.cores}, t.duration)
			if err != nil {
				return fmt.Errorf("schedule: task %d (%s): %w", id, t.name, err)
			}
			running[id] = job
		}
		return nil
	}

	if err := submitReady(); err != nil {
		return ReplayResult{}, err
	}
	for len(done) < len(tasks) {
		if !c.Step() {
			return ReplayResult{}, fmt.Errorf("schedule: deadlock with %d of %d tasks done", len(done), len(tasks))
		}
		for id, job := range running {
			if job.State == cluster.JobDone {
				done[id] = true
				delete(running, id)
			}
		}
		if err := submitReady(); err != nil {
			return ReplayResult{}, err
		}
	}
	res.Makespan = c.Clock()
	capacity := float64(cfg.Nodes * cfg.CoresPerNode)
	if res.Makespan > 0 {
		res.Efficiency = res.TotalWork / (capacity * res.Makespan)
	}
	return res, nil
}

// criticalPath computes the duration-weighted longest chain.
func criticalPath(tasks map[int]*replayTask) float64 {
	memo := make(map[int]float64, len(tasks))
	var longest func(id int) float64
	longest = func(id int) float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		t := tasks[id]
		best := 0.0
		for dep := range t.deps {
			if v := longest(dep); v > best {
				best = v
			}
		}
		memo[id] = best + t.duration
		return memo[id]
	}
	best := 0.0
	for id := range tasks {
		if v := longest(id); v > best {
			best = v
		}
	}
	return best
}

// Sweep replays the provenance across several machine sizes and
// returns results in input order.
func Sweep(p *compss.Provenance, nodeCounts []int, coresPerNode int, specs map[string]TaskSpec) ([]ReplayResult, error) {
	out := make([]ReplayResult, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		r, err := Replay(p, ReplayConfig{Nodes: n, CoresPerNode: coresPerNode, Specs: specs})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
