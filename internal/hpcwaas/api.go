package hpcwaas

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/execq"
	"repro/internal/imagebuilder"
	"repro/internal/obs"
)

// ExecStatus is the lifecycle of one workflow execution.
type ExecStatus string

// Execution states. QUEUED means admitted but not yet dispatched (or
// parked between retry attempts); RUNNING, DONE, FAILED and CANCELED
// follow the execq job lifecycle.
const (
	ExecQueued   ExecStatus = "QUEUED"
	ExecRunning  ExecStatus = "RUNNING"
	ExecDone     ExecStatus = "DONE"
	ExecFailed   ExecStatus = "FAILED"
	ExecCanceled ExecStatus = "CANCELED"
)

// Terminal reports whether the status is final.
func (s ExecStatus) Terminal() bool {
	return s == ExecDone || s == ExecFailed || s == ExecCanceled
}

// Execution is one run of a deployed workflow triggered via the API.
type Execution struct {
	ID        string            `json:"id"`
	Workflow  string            `json:"workflow"`
	Principal string            `json:"principal,omitempty"`
	Status    ExecStatus        `json:"status"`
	Priority  int               `json:"priority,omitempty"`
	Attempt   int               `json:"attempt,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Results   map[string]string `json:"results,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// ServiceConfig sizes the execution queue behind the REST API. Zero
// values get defaults from NewServiceWith.
type ServiceConfig struct {
	// Workers is the execution worker-pool size (default 4).
	Workers int
	// QueueDepth bounds queued executions; beyond it POST /api/executions
	// answers 429 + Retry-After (default 256).
	QueueDepth int
	// PerPrincipalLimit bounds one principal's live executions
	// (default QueueDepth; set lower for real multi-tenant fairness).
	PerPrincipalLimit int
	// RatePerSec/Burst token-bucket rate limit per principal
	// (0 disables).
	RatePerSec float64
	Burst      int
	// Retries is how many times a transiently failed execution is
	// retried with backoff (default 0: workflow failures are final).
	Retries int
	// Retention bounds how many completed execution records are kept;
	// the oldest completed ones are evicted first (default 1024).
	Retention int
	// JournalPath persists queued/running executions across restarts.
	JournalPath string
	// Metrics is the observability registry the execution queue's
	// instruments register on; nil creates a private one. Exposed at
	// GET /metrics and via Service.Metrics.
	Metrics *obs.Registry
}

// Service is the HPCWaaS front-end: it binds the registry, the deployer
// and a bounded multi-tenant execution queue behind an HTTP API
// (Figure 1's Execution API, "workflow execution as a simple REST
// invocation").
type Service struct {
	Registry *Registry
	Deployer *Deployer

	cfg   ServiceConfig
	queue *execq.Queue
	met   *obs.Registry

	mu     sync.Mutex
	nextID int
	execs  map[string]*Execution
	order  []string // creation order of retained records
	wg     sync.WaitGroup
	tokens map[string]string // token → principal
}

// AuthorizeToken registers an API token for the named principal. Once
// at least one token exists, every API call must carry
// "Authorization: Bearer <token>" — the stand-in for the credential
// vault the eFlows4HPC HPCWaaS uses so final users never handle SSH
// keys themselves. The principal is also the tenant that queue quotas
// and rate limits are accounted against.
func (s *Service) AuthorizeToken(token, principal string) error {
	if token == "" {
		return fmt.Errorf("hpcwaas: empty token")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokens == nil {
		s.tokens = make(map[string]string)
	}
	s.tokens[token] = principal
	return nil
}

// authenticate returns the principal for a request, or "" with false
// when authentication fails. With no registered tokens the API is
// open (development mode).
func (s *Service) authenticate(r *http.Request) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tokens) == 0 {
		return "anonymous", true
	}
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", false
	}
	principal, ok := s.tokens[strings.TrimPrefix(h, prefix)]
	return principal, ok
}

// NewService wires a service with default queue sizing; nil parts get
// defaults. See NewServiceWith to tune admission control.
func NewService(reg *Registry, dep *Deployer) *Service {
	s, err := NewServiceWith(reg, dep, ServiceConfig{})
	if err != nil {
		// only journal I/O can fail, and the default config has none
		panic("hpcwaas: NewService: " + err.Error())
	}
	return s
}

// NewServiceWith wires a service on top of a bounded execution queue.
// With cfg.JournalPath set, executions that were queued or running when
// the previous process died are recovered and re-enqueued.
func NewServiceWith(reg *Registry, dep *Deployer, cfg ServiceConfig) (*Service, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	if dep == nil {
		dep = NewDeployer(nil, nil, imagebuilder.Platform{})
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.PerPrincipalLimit <= 0 {
		cfg.PerPrincipalLimit = cfg.QueueDepth
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Service{
		Registry: reg,
		Deployer: dep,
		cfg:      cfg,
		met:      cfg.Metrics,
		execs:    make(map[string]*Execution),
	}
	q, err := execq.New(execq.Config{
		Workers:           cfg.Workers,
		QueueDepth:        cfg.QueueDepth,
		PerPrincipalLimit: cfg.PerPrincipalLimit,
		RatePerSec:        cfg.RatePerSec,
		Burst:             cfg.Burst,
		JournalPath:       cfg.JournalPath,
		Metrics:           cfg.Metrics,
		Handler:           s.runJob,
		OnChange:          s.onJobChange,
	})
	if err != nil {
		return nil, err
	}
	s.queue = q
	return s, nil
}

// jobPayload is the journal-safe job description: everything needed to
// re-run an execution after a crash.
type jobPayload struct {
	Workflow string            `json:"workflow"`
	Params   map[string]string `json:"params,omitempty"`
}

// Execute enqueues a registered, deployed workflow for the anonymous
// principal and returns a snapshot of the execution record (status
// QUEUED). The queue mutates only the internal record, never the
// returned copy.
func (s *Service) Execute(workflow string, params map[string]string) (Execution, error) {
	return s.ExecuteAs("anonymous", workflow, params, 0)
}

// ExecuteAs enqueues an execution for a principal at a priority
// (higher dispatches first, FIFO within equal priority). Admission
// failures surface execq sentinels: use execq.RetryAfter to extract
// the back-off hint for ErrQueueFull / ErrQuotaExceeded /
// ErrRateLimited.
func (s *Service) ExecuteAs(principal, workflow string, params map[string]string, priority int) (Execution, error) {
	if _, ok := s.Registry.Lookup(workflow); !ok {
		return Execution{}, fmt.Errorf("hpcwaas: unknown workflow %q", workflow)
	}
	if !s.Deployer.ActiveFor(workflow) {
		return Execution{}, fmt.Errorf("hpcwaas: workflow %q has no active deployment", workflow)
	}
	payload, err := json.Marshal(jobPayload{Workflow: workflow, Params: params})
	if err != nil {
		return Execution{}, fmt.Errorf("hpcwaas: encode params: %w", err)
	}

	s.mu.Lock()
	s.nextID++
	ex := &Execution{
		ID:        fmt.Sprintf("exec-%d", s.nextID),
		Workflow:  workflow,
		Principal: principal,
		Status:    ExecQueued,
		Priority:  priority,
		Params:    params,
	}
	s.execs[ex.ID] = ex
	s.order = append(s.order, ex.ID)
	s.evictLocked()
	snapshot := *ex
	s.mu.Unlock()

	s.wg.Add(1)
	if _, err := s.queue.Submit(execq.Job{
		ID:        ex.ID,
		Principal: principal,
		Priority:  priority,
		Payload:   payload,
		Retries:   s.cfg.Retries,
	}); err != nil {
		s.wg.Done()
		s.mu.Lock()
		delete(s.execs, ex.ID)
		s.removeFromOrderLocked(ex.ID)
		s.mu.Unlock()
		return Execution{}, err
	}
	return snapshot, nil
}

// runJob is the queue handler: it decodes the payload, runs the
// registered application, and honors cancellation (the app result is
// discarded if its context is canceled first).
func (s *Service) runJob(ctx context.Context, j execq.JobView) error {
	var p jobPayload
	if err := json.Unmarshal(j.Payload, &p); err != nil {
		return execq.Permanent(fmt.Errorf("hpcwaas: decode job payload: %w", err))
	}
	entry, ok := s.Registry.Lookup(p.Workflow)
	if !ok {
		return execq.Permanent(fmt.Errorf("hpcwaas: unknown workflow %q", p.Workflow))
	}
	type result struct {
		out map[string]string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := runApp(entry.App, p.Params)
		ch <- result{out, err}
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		s.mu.Lock()
		if ex := s.execs[j.ID]; ex != nil {
			ex.Results = r.out
		}
		s.mu.Unlock()
		return nil
	}
}

// onJobChange mirrors queue transitions into the execution records.
// Events arrive in order from the queue's notifier goroutine. An event
// for an unknown ID is a journal-recovered execution: its record is
// recreated from the job payload.
func (s *Service) onJobChange(v execq.JobView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ex := s.execs[v.ID]
	if ex == nil {
		if v.State != execq.StateQueued {
			return // terminal echo of an already-evicted record
		}
		var p jobPayload
		_ = json.Unmarshal(v.Payload, &p)
		ex = &Execution{
			ID:        v.ID,
			Workflow:  p.Workflow,
			Principal: v.Principal,
			Priority:  v.Priority,
			Status:    ExecQueued,
			Params:    p.Params,
		}
		s.execs[v.ID] = ex
		s.order = append(s.order, v.ID)
		// keep ID allocation ahead of recovered records
		var n int
		if _, err := fmt.Sscanf(v.ID, "exec-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		s.wg.Add(1)
		s.evictLocked()
	}
	ex.Attempt = v.Attempt
	switch v.State {
	case execq.StateQueued, execq.StateRetrying:
		ex.Status = ExecQueued
		ex.Error = v.Err
	case execq.StateRunning:
		ex.Status = ExecRunning
	case execq.StateDone:
		ex.Status = ExecDone
		ex.Error = ""
	case execq.StateFailed:
		ex.Status = ExecFailed
		ex.Error = v.Err
	case execq.StateCanceled:
		ex.Status = ExecCanceled
		ex.Error = v.Err
	}
	if v.State.Terminal() {
		s.evictLocked()
		s.wg.Done()
	}
}

// evictLocked enforces the retention bound by dropping the oldest
// *completed* records; live (queued/running) executions are never
// evicted.
func (s *Service) evictLocked() {
	if s.cfg.Retention <= 0 {
		return
	}
	for len(s.execs) > s.cfg.Retention {
		evicted := false
		for _, id := range s.order {
			if ex := s.execs[id]; ex != nil && ex.Status.Terminal() {
				delete(s.execs, id)
				s.removeFromOrderLocked(id)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live
		}
	}
}

func (s *Service) removeFromOrderLocked(id string) {
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Wait blocks until every admitted execution reaches a terminal state
// (test helper and graceful-shutdown hook).
func (s *Service) Wait() { s.wg.Wait() }

// Drain stops accepting executions and waits for queued and running
// ones to finish (or ctx to expire). The REST API keeps answering
// reads during a drain.
func (s *Service) Drain(ctx context.Context) error { return s.queue.Drain(ctx) }

// Close force-stops the execution queue, cancelling whatever is still
// live. Call Drain first for a graceful shutdown.
func (s *Service) Close() error { return s.queue.Close() }

// QueueStats exposes the execution queue's depth, per-principal usage,
// counters and latency histograms.
func (s *Service) QueueStats() execq.Stats { return s.queue.Stats() }

// Metrics returns the service's observability registry so callers can
// register further instruments (core workflow, datacube, multisite)
// that then show up on the same GET /metrics scrape.
func (s *Service) Metrics() *obs.Registry { return s.met }

// LookupStatus distinguishes "never existed" from "existed but was
// evicted by the retention bound".
type LookupStatus int

// LookupExecution results.
const (
	LookupFound LookupStatus = iota
	LookupExpired
	LookupUnknown
)

// LookupExecution fetches an execution snapshot, reporting expired
// (evicted) IDs distinctly from unknown ones.
func (s *Service) LookupExecution(id string) (Execution, LookupStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ex, ok := s.execs[id]; ok {
		return *ex, LookupFound
	}
	// Records are named exec-N with N from a monotonic counter, so a
	// well-formed ID at or below the high-water mark must have been
	// evicted.
	var n int
	if _, err := fmt.Sscanf(id, "exec-%d", &n); err == nil && n >= 1 && n <= s.nextID {
		return Execution{}, LookupExpired
	}
	return Execution{}, LookupUnknown
}

// GetExecution fetches an execution snapshot; ok is false for unknown
// and evicted IDs alike (see LookupExecution for the distinction).
func (s *Service) GetExecution(id string) (Execution, bool) {
	ex, st := s.LookupExecution(id)
	return ex, st == LookupFound
}

// CancelExecution cancels a queued or running execution. Terminal
// executions return an error; the returned snapshot reflects the
// record at the moment of the call (a running app finalizes as
// CANCELED once its context unwinds).
func (s *Service) CancelExecution(id string) (Execution, error) {
	s.mu.Lock()
	ex, ok := s.execs[id]
	if !ok {
		s.mu.Unlock()
		if _, st := s.LookupExecution(id); st == LookupExpired {
			return Execution{}, fmt.Errorf("hpcwaas: execution %s expired", id)
		}
		return Execution{}, fmt.Errorf("hpcwaas: unknown execution %q", id)
	}
	if ex.Status.Terminal() {
		snap := *ex
		s.mu.Unlock()
		return snap, fmt.Errorf("hpcwaas: execution %s already %s", id, snap.Status)
	}
	s.mu.Unlock()
	// Ignore a lost race with completion: the terminal record stands.
	_ = s.queue.Cancel(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ex := s.execs[id]; ex != nil {
		return *ex, nil
	}
	return Execution{ID: id, Status: ExecCanceled}, nil
}

// ListExecutions returns retained executions in creation order,
// optionally filtered by status ("" means all).
func (s *Service) ListExecutions(status ExecStatus) []Execution {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Execution, 0, len(s.order))
	for _, id := range s.order {
		ex := s.execs[id]
		if ex == nil {
			continue
		}
		if status != "" && ex.Status != status {
			continue
		}
		out = append(out, *ex)
	}
	return out
}

// runApp isolates application panics as errors.
func runApp(app AppFunc, params map[string]string) (out map[string]string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("hpcwaas: application panicked: %v", p)
		}
	}()
	return app(params)
}

// principalKey carries the authenticated principal in the request
// context.
type principalKey struct{}

// Handler returns the REST API. Routes:
//
//	GET    /api/workflows                  list registered workflows
//	GET    /api/workflows/{name}           workflow detail (topology)
//	POST   /api/workflows/{name}/deploy    deploy ({"target": "..."})
//	GET    /api/deployments/{id}           deployment status/log
//	POST   /api/deployments/{id}/undeploy  tear down
//	POST   /api/executions                 enqueue ({"workflow", "params", "priority"})
//	GET    /api/executions[?status=S]      list executions, creation order
//	GET    /api/executions/{id}            execution status/results (410 if evicted)
//	DELETE /api/executions/{id}            cancel a queued/running execution
//	GET    /api/queue                      queue depth, usage, latency histograms
//	GET    /api/health                     liveness probe
//	GET    /metrics                        Prometheus text exposition
//
// POST /api/executions answers 202 on admission and 429 with a
// Retry-After header when the queue, the principal's quota or the
// principal's rate budget is full. When AuthorizeToken has registered
// at least one token, every route requires "Authorization: Bearer
// <token>" and the token's principal is the tenant charged for the
// execution.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /api/workflows", func(w http.ResponseWriter, r *http.Request) {
		type item struct {
			Name        string `json:"name"`
			Version     string `json:"version"`
			Description string `json:"description"`
		}
		var out []item
		for _, name := range s.Registry.List() {
			e, _ := s.Registry.Lookup(name)
			out = append(out, item{Name: e.Name, Version: e.Version, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/workflows/{name}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Registry.Lookup(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown workflow")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"name":        e.Name,
			"version":     e.Version,
			"description": e.Description,
			"topology":    e.Topology,
		})
	})

	mux.HandleFunc("POST /api/workflows/{name}/deploy", func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Registry.Lookup(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown workflow")
			return
		}
		var body struct {
			Target string `json:"target"`
		}
		if err := decodeJSON(r, &body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if body.Target == "" {
			body.Target = "default-cluster"
		}
		dep, err := s.Deployer.Deploy(e, body.Target)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, dep)
	})

	mux.HandleFunc("GET /api/deployments/{id}", func(w http.ResponseWriter, r *http.Request) {
		dep, ok := s.Deployer.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown deployment")
			return
		}
		writeJSON(w, http.StatusOK, dep)
	})

	mux.HandleFunc("POST /api/deployments/{id}/undeploy", func(w http.ResponseWriter, r *http.Request) {
		dep, ok := s.Deployer.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown deployment")
			return
		}
		e, ok := s.Registry.Lookup(dep.Workflow)
		if !ok {
			httpError(w, http.StatusConflict, "workflow no longer registered")
			return
		}
		if err := s.Deployer.Undeploy(dep.ID, e.Topology); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		dep, _ = s.Deployer.Get(dep.ID) // re-read: status changed
		writeJSON(w, http.StatusOK, dep)
	})

	mux.HandleFunc("POST /api/executions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Workflow string            `json:"workflow"`
			Params   map[string]string `json:"params"`
			Priority int               `json:"priority"`
		}
		if err := decodeJSON(r, &body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		principal, _ := r.Context().Value(principalKey{}).(string)
		ex, err := s.ExecuteAs(principal, body.Workflow, body.Params, body.Priority)
		if err != nil {
			if ra, ok := execq.RetryAfter(err); ok {
				secs := int(math.Ceil(ra.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests, err.Error())
				return
			}
			code := http.StatusConflict
			if strings.Contains(err.Error(), "unknown workflow") {
				code = http.StatusNotFound
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, ex)
	})

	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"workflows": len(s.Registry.List()),
		})
	})

	mux.HandleFunc("GET /api/executions", func(w http.ResponseWriter, r *http.Request) {
		status := ExecStatus(strings.ToUpper(r.URL.Query().Get("status")))
		switch status {
		case "", ExecQueued, ExecRunning, ExecDone, ExecFailed, ExecCanceled:
		default:
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown status filter %q", status))
			return
		}
		writeJSON(w, http.StatusOK, s.ListExecutions(status))
	})

	mux.HandleFunc("GET /api/executions/{id}", func(w http.ResponseWriter, r *http.Request) {
		ex, st := s.LookupExecution(r.PathValue("id"))
		switch st {
		case LookupExpired:
			httpError(w, http.StatusGone, "execution expired from retention")
		case LookupUnknown:
			httpError(w, http.StatusNotFound, "unknown execution")
		default:
			writeJSON(w, http.StatusOK, ex)
		}
	})

	mux.HandleFunc("DELETE /api/executions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ex, err := s.CancelExecution(id)
		if err != nil {
			switch {
			case strings.Contains(err.Error(), "expired"):
				httpError(w, http.StatusGone, err.Error())
			case strings.Contains(err.Error(), "unknown"):
				httpError(w, http.StatusNotFound, err.Error())
			default: // already terminal
				httpError(w, http.StatusConflict, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, ex)
	})

	mux.HandleFunc("GET /api/queue", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.QueueStats())
	})

	// The scrape endpoint sits outside the bearer-token wrapper:
	// monitoring systems poll it without tenant credentials, and it
	// exposes no per-tenant data.
	metrics := obs.Handler(s.met)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			if r.Method != http.MethodGet {
				httpError(w, http.StatusMethodNotAllowed, "metrics is read-only")
				return
			}
			metrics.ServeHTTP(w, r)
			return
		}
		principal, ok := s.authenticate(r)
		if !ok {
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), principalKey{}, principal)))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
