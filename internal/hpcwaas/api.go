package hpcwaas

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/imagebuilder"
)

// ExecStatus is the lifecycle of one workflow execution.
type ExecStatus string

// Execution states.
const (
	ExecRunning ExecStatus = "RUNNING"
	ExecDone    ExecStatus = "DONE"
	ExecFailed  ExecStatus = "FAILED"
)

// Execution is one run of a deployed workflow triggered via the API.
type Execution struct {
	ID       string            `json:"id"`
	Workflow string            `json:"workflow"`
	Status   ExecStatus        `json:"status"`
	Params   map[string]string `json:"params,omitempty"`
	Results  map[string]string `json:"results,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// Service is the HPCWaaS front-end: it binds the registry, the deployer
// and the execution engine behind an HTTP API (Figure 1's Execution
// API, "workflow execution as a simple REST invocation").
type Service struct {
	Registry *Registry
	Deployer *Deployer

	mu     sync.Mutex
	nextID int
	execs  map[string]*Execution
	wg     sync.WaitGroup
	tokens map[string]string // token → principal
}

// AuthorizeToken registers an API token for the named principal. Once
// at least one token exists, every API call must carry
// "Authorization: Bearer <token>" — the stand-in for the credential
// vault the eFlows4HPC HPCWaaS uses so final users never handle SSH
// keys themselves.
func (s *Service) AuthorizeToken(token, principal string) error {
	if token == "" {
		return fmt.Errorf("hpcwaas: empty token")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokens == nil {
		s.tokens = make(map[string]string)
	}
	s.tokens[token] = principal
	return nil
}

// authenticate returns the principal for a request, or "" with false
// when authentication fails. With no registered tokens the API is
// open (development mode).
func (s *Service) authenticate(r *http.Request) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tokens) == 0 {
		return "anonymous", true
	}
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", false
	}
	principal, ok := s.tokens[strings.TrimPrefix(h, prefix)]
	return principal, ok
}

// NewService wires a service; nil parts get defaults.
func NewService(reg *Registry, dep *Deployer) *Service {
	if reg == nil {
		reg = NewRegistry()
	}
	if dep == nil {
		dep = NewDeployer(nil, nil, imagebuilder.Platform{})
	}
	return &Service{Registry: reg, Deployer: dep, execs: make(map[string]*Execution)}
}

// Execute launches a registered, deployed workflow asynchronously and
// returns a snapshot of the execution record (status RUNNING). The
// background run mutates only the internal record, never the returned
// copy.
func (s *Service) Execute(workflow string, params map[string]string) (Execution, error) {
	entry, ok := s.Registry.Lookup(workflow)
	if !ok {
		return Execution{}, fmt.Errorf("hpcwaas: unknown workflow %q", workflow)
	}
	if !s.Deployer.ActiveFor(workflow) {
		return Execution{}, fmt.Errorf("hpcwaas: workflow %q has no active deployment", workflow)
	}
	s.mu.Lock()
	s.nextID++
	ex := &Execution{
		ID:       fmt.Sprintf("exec-%d", s.nextID),
		Workflow: workflow,
		Status:   ExecRunning,
		Params:   params,
	}
	s.execs[ex.ID] = ex
	snapshot := *ex
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		results, err := runApp(entry.App, params)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			ex.Status = ExecFailed
			ex.Error = err.Error()
			return
		}
		ex.Status = ExecDone
		ex.Results = results
	}()
	return snapshot, nil
}

// runApp isolates application panics as errors.
func runApp(app AppFunc, params map[string]string) (out map[string]string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("hpcwaas: application panicked: %v", p)
		}
	}()
	return app(params)
}

// Wait blocks until all in-flight executions finish (test helper and
// graceful-shutdown hook).
func (s *Service) Wait() { s.wg.Wait() }

// GetExecution fetches an execution snapshot.
func (s *Service) GetExecution(id string) (Execution, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ex, ok := s.execs[id]
	if !ok {
		return Execution{}, false
	}
	return *ex, true
}

// Handler returns the REST API. Routes:
//
//	GET  /api/workflows                  list registered workflows
//	GET  /api/workflows/{name}           workflow detail (topology)
//	POST /api/workflows/{name}/deploy    deploy ({"target": "..."})
//	GET  /api/deployments/{id}           deployment status/log
//	POST /api/deployments/{id}/undeploy  tear down
//	POST /api/executions                 run ({"workflow": ..., "params": {...}})
//	GET  /api/executions                 list executions
//	GET  /api/executions/{id}            execution status/results
//	GET  /api/health                     liveness probe
//
// When AuthorizeToken has registered at least one token, every route
// requires "Authorization: Bearer <token>".
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /api/workflows", func(w http.ResponseWriter, r *http.Request) {
		type item struct {
			Name        string `json:"name"`
			Version     string `json:"version"`
			Description string `json:"description"`
		}
		var out []item
		for _, name := range s.Registry.List() {
			e, _ := s.Registry.Lookup(name)
			out = append(out, item{Name: e.Name, Version: e.Version, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/workflows/{name}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Registry.Lookup(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown workflow")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"name":        e.Name,
			"version":     e.Version,
			"description": e.Description,
			"topology":    e.Topology,
		})
	})

	mux.HandleFunc("POST /api/workflows/{name}/deploy", func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Registry.Lookup(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown workflow")
			return
		}
		var body struct {
			Target string `json:"target"`
		}
		if err := decodeJSON(r, &body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if body.Target == "" {
			body.Target = "default-cluster"
		}
		dep, err := s.Deployer.Deploy(e, body.Target)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, dep)
	})

	mux.HandleFunc("GET /api/deployments/{id}", func(w http.ResponseWriter, r *http.Request) {
		dep, ok := s.Deployer.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown deployment")
			return
		}
		writeJSON(w, http.StatusOK, dep)
	})

	mux.HandleFunc("POST /api/deployments/{id}/undeploy", func(w http.ResponseWriter, r *http.Request) {
		dep, ok := s.Deployer.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown deployment")
			return
		}
		e, ok := s.Registry.Lookup(dep.Workflow)
		if !ok {
			httpError(w, http.StatusConflict, "workflow no longer registered")
			return
		}
		if err := s.Deployer.Undeploy(dep.ID, e.Topology); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		dep, _ = s.Deployer.Get(dep.ID) // re-read: status changed
		writeJSON(w, http.StatusOK, dep)
	})

	mux.HandleFunc("POST /api/executions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Workflow string            `json:"workflow"`
			Params   map[string]string `json:"params"`
		}
		if err := decodeJSON(r, &body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		ex, err := s.Execute(body.Workflow, body.Params)
		if err != nil {
			code := http.StatusConflict
			if strings.Contains(err.Error(), "unknown workflow") {
				code = http.StatusNotFound
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, ex)
	})

	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"workflows": len(s.Registry.List()),
		})
	})

	mux.HandleFunc("GET /api/executions", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := make([]Execution, 0, len(s.execs))
		for _, ex := range s.execs {
			out = append(out, *ex)
		}
		s.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/executions/{id}", func(w http.ResponseWriter, r *http.Request) {
		ex, ok := s.GetExecution(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown execution")
			return
		}
		writeJSON(w, http.StatusOK, ex)
	})

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := s.authenticate(r); !ok {
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
