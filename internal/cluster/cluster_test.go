package cluster

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSubmitRunsImmediatelyWhenFree(t *testing.T) {
	c := New(2, 4, 8192)
	j, err := c.Submit("a", Resources{Cores: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning {
		t.Fatalf("state = %v, want RUN", j.State)
	}
	if j.Node == "" {
		t.Fatal("no node assigned")
	}
}

func TestSubmitQueuesWhenFull(t *testing.T) {
	c := New(1, 2, 1024)
	j1, _ := c.Submit("a", Resources{Cores: 2}, 5)
	j2, _ := c.Submit("b", Resources{Cores: 2}, 5)
	if j1.State != JobRunning || j2.State != JobPending {
		t.Fatalf("states = %v, %v", j1.State, j2.State)
	}
	if !c.Step() {
		t.Fatal("Step should retire j1")
	}
	if j1.State != JobDone || j2.State != JobRunning {
		t.Fatalf("after step: %v, %v", j1.State, j2.State)
	}
	if j2.Start != 5 {
		t.Fatalf("j2 start = %v, want 5", j2.Start)
	}
}

func TestSubmitRejectsImpossible(t *testing.T) {
	c := New(2, 4, 1024)
	if _, err := c.Submit("big", Resources{Cores: 8}, 1); !errors.Is(err, ErrImpossible) {
		t.Fatalf("err = %v, want ErrImpossible", err)
	}
	if _, err := c.Submit("mem", Resources{MemoryMB: 4096}, 1); !errors.Is(err, ErrImpossible) {
		t.Fatalf("err = %v, want ErrImpossible", err)
	}
}

func TestSubmitRejectsUnknownPinnedNode(t *testing.T) {
	c := New(1, 4, 1024)
	if _, err := c.Submit("x", Resources{Node: "n999"}, 1); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestPinnedPlacement(t *testing.T) {
	c := New(3, 4, 1024)
	j, err := c.Submit("x", Resources{Node: "n002"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Node != "n002" {
		t.Fatalf("node = %q, want n002", j.Node)
	}
}

func TestBackfillLetsSmallJobJumpQueue(t *testing.T) {
	c := New(1, 4, 4096)
	c.Backfill = true
	c.Submit("wide0", Resources{Cores: 3}, 10)
	head, _ := c.Submit("wide1", Resources{Cores: 3}, 10) // blocked: only 1 core free
	small, _ := c.Submit("small", Resources{Cores: 1}, 1)
	if head.State != JobPending {
		t.Fatalf("head should be pending, got %v", head.State)
	}
	if small.State != JobRunning {
		t.Fatalf("backfill should start small job, got %v", small.State)
	}
}

func TestNoBackfillKeepsFIFO(t *testing.T) {
	c := New(1, 4, 4096)
	c.Backfill = false
	c.Submit("wide0", Resources{Cores: 3}, 10)
	c.Submit("wide1", Resources{Cores: 3}, 10)
	small, _ := c.Submit("small", Resources{Cores: 1}, 1)
	if small.State != JobPending {
		t.Fatalf("FIFO should queue small job behind blocked head, got %v", small.State)
	}
}

func TestDrainMakespanChain(t *testing.T) {
	c := New(1, 1, 1024)
	for i := 0; i < 5; i++ {
		if _, err := c.Submit("serial", Resources{Cores: 1}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Drain(); got != 10 {
		t.Fatalf("makespan = %v, want 10", got)
	}
	s := c.Stats()
	if s.JobsDone != 5 {
		t.Fatalf("JobsDone = %d, want 5", s.JobsDone)
	}
	if s.Utilization < 0.99 || s.Utilization > 1.01 {
		t.Fatalf("utilization = %v, want ~1", s.Utilization)
	}
}

func TestDrainParallelMakespan(t *testing.T) {
	c := New(4, 1, 1024)
	for i := 0; i < 4; i++ {
		c.Submit("par", Resources{Cores: 1}, 7)
	}
	if got := c.Drain(); got != 7 {
		t.Fatalf("parallel makespan = %v, want 7", got)
	}
}

func TestPlaceAndFetchAccounting(t *testing.T) {
	c := New(2, 2, 1024)
	if err := c.Place("cube1", "n001", 1000); err != nil {
		t.Fatal(err)
	}
	moved, _, err := c.Fetch("cube1", "n001")
	if err != nil || moved != 0 {
		t.Fatalf("local fetch moved %d err %v", moved, err)
	}
	moved, _, err = c.Fetch("cube1", "n002")
	if err != nil || moved != 1000 {
		t.Fatalf("remote fetch moved %d err %v", moved, err)
	}
	// second fetch is now local (replica recorded)
	moved, _, _ = c.Fetch("cube1", "n002")
	if moved != 0 {
		t.Fatalf("replica fetch moved %d, want 0", moved)
	}
	s := c.Stats()
	if s.BytesMoved != 1000 || s.Transfers != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFetchUnknownKey(t *testing.T) {
	c := New(1, 1, 64)
	if _, _, err := c.Fetch("nope", "n001"); err == nil {
		t.Fatal("expected error for unknown key")
	}
}

func TestFetchTransferTime(t *testing.T) {
	c := New(2, 1, 64)
	c.LinkMBps = 10 // 10 MB/s
	c.Place("d", "n001", 20e6)
	_, tt, err := c.Fetch("d", "n002")
	if err != nil {
		t.Fatal(err)
	}
	if tt < 1.99 || tt > 2.01 {
		t.Fatalf("transfer time = %v, want 2s", tt)
	}
}

func TestLocalityScoreAndBestNode(t *testing.T) {
	c := New(3, 2, 1024)
	c.Place("a", "n002", 100)
	c.Place("b", "n002", 300)
	c.Place("b", "n003", 300)
	if s := c.LocalityScore("n002", []string{"a", "b"}); s != 1 {
		t.Fatalf("score n002 = %v, want 1", s)
	}
	if s := c.LocalityScore("n003", []string{"a", "b"}); s != 0.75 {
		t.Fatalf("score n003 = %v, want 0.75", s)
	}
	if n := c.BestNodeFor([]string{"a", "b"}); n != "n002" {
		t.Fatalf("BestNodeFor = %q, want n002", n)
	}
}

func TestBestNodeSkipsBusyNodes(t *testing.T) {
	c := New(2, 1, 1024)
	c.Place("a", "n001", 100)
	c.Submit("hog", Resources{Cores: 1, Node: "n001"}, 100)
	if n := c.BestNodeFor([]string{"a"}); n != "n002" {
		t.Fatalf("BestNodeFor = %q, want n002 (n001 busy)", n)
	}
}

func TestWaitTimeStats(t *testing.T) {
	c := New(1, 1, 1024)
	c.Submit("a", Resources{}, 4)
	c.Submit("b", Resources{}, 4)
	c.Drain()
	s := c.Stats()
	if s.MaxWait != 4 || s.TotalWait != 4 {
		t.Fatalf("wait stats = %+v", s)
	}
}

// Property: makespan never exceeds serial sum and never undercuts the
// ideal parallel bound.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 40 {
			durs = durs[:40]
		}
		const nodes, cores = 2, 2
		c := New(nodes, cores, 1024)
		var sum, max float64
		for _, d := range durs {
			dur := float64(d%10) + 1
			sum += dur
			if dur > max {
				max = dur
			}
			if _, err := c.Submit("j", Resources{Cores: 1}, dur); err != nil {
				return false
			}
		}
		mk := c.Drain()
		lower := sum / float64(nodes*cores)
		if max > lower {
			lower = max
		}
		return mk <= sum+1e-9 && mk >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJobStateString(t *testing.T) {
	if JobPending.String() != "PEND" || JobRunning.String() != "RUN" || JobDone.String() != "DONE" {
		t.Fatal("unexpected state strings")
	}
	if JobState(42).String() == "" {
		t.Fatal("unknown state should still print")
	}
}
