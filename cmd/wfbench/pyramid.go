package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/datacube"
	"repro/internal/esm"
	"repro/internal/grid"
)

// pyramid sweeps the coarse-first tolerance frontier (DESIGN.md §15) on
// a cloud-cover climatology pipeline: annual mean and peak total cloud
// fraction per cell, from a year of 6-hourly CLDTOT model output.
// Cloud fraction saturates toward 0 and 1 over most of the globe, so
// coarse pyramid tiers represent wide regions within a small spread and
// the coarse-first executor refines only the mid-latitude transition
// bands — the regime the resolution pyramid is built for. (Rough
// cell-scale fields like temperature or precipitation refine almost
// everywhere and gain nothing; the engine then falls back to exact
// work, just with the interval-evaluation overhead on top.)
//
// For each declared per-value tolerance the sweep executes the fused
// two-output plan over the pyramid and reports walltime, cells
// touched, and the observed worst-case error against the exact run —
// which must stay within the declared bound.
func pyramid() {
	fmt.Println("=== PYRAMID: coarse-first tolerance frontier (cloud-cover climatology) ===")
	g := grid.Grid{NLat: 32, NLon: 64}
	const days = 20
	const reps = 5
	modelDir := tmpDir("pyr-model-")
	defer os.RemoveAll(modelDir)
	model := esm.NewModel(esm.Config{
		Grid: g, Years: 1, DaysPerYear: days, Seed: 7,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 2, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
		},
	})
	paths, err := model.Run(esm.RunOptions{Dir: modelDir})
	if err != nil {
		log.Fatal(err)
	}

	// one run: fresh engine so each tolerance pays its own tier builds
	run := func(eps float64) (vals [2][][]float32, cells int64, elapsed time.Duration) {
		engine := datacube.NewEngine(datacube.Config{Servers: 2})
		defer engine.Close()
		cld, err := engine.ImportFiles(paths, "CLDTOT", "time")
		if err != nil {
			log.Fatal(err)
		}
		// warm the pyramid outside the timed window: tiers are built once
		// per cube and maintained by the engine, so steady state is what
		// the frontier should price
		if warm, err := cld.Lazy().Tolerance(eps).ExecuteBranches(
			datacube.Branch().Reduce("avg"),
			datacube.Branch().Reduce("max"),
		); err == nil {
			for _, c := range warm {
				_ = c.Delete()
			}
		}
		before := engine.Stats().CellsProcessed
		t0 := time.Now()
		var outs []*datacube.Cube
		for r := 0; r < reps; r++ {
			for _, c := range outs {
				_ = c.Delete()
			}
			if outs, err = cld.Lazy().Tolerance(eps).ExecuteBranches(
				datacube.Branch().Reduce("avg"),
				datacube.Branch().Reduce("max"),
			); err != nil {
				log.Fatal(err)
			}
		}
		elapsed = time.Since(t0) / reps
		cells = (engine.Stats().CellsProcessed - before) / reps
		vals = [2][][]float32{outs[0].Values(), outs[1].Values()}
		return vals, cells, elapsed
	}

	exact, exactCells, exactTime := run(0)
	fmt.Printf("%-10s %12s %14s %10s %12s %8s\n", "tolerance", "walltime", "cells/run", "speedup", "max error", "bound")
	fmt.Printf("%-10g %12v %14d %10s %12s %8s\n", 0.0, exactTime.Round(time.Microsecond), exactCells, "1.00x", "0", "ok")
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.1, 0.2} {
		vals, cells, elapsed := run(eps)
		worst := 0.0
		for k := range vals {
			for r := range vals[k] {
				for i := range vals[k][r] {
					if d := math.Abs(float64(vals[k][r][i]) - float64(exact[k][r][i])); d > worst {
						worst = d
					}
				}
			}
		}
		bound := "ok"
		if worst > eps+1e-3 {
			bound = "VIOLATED"
		}
		fmt.Printf("%-10g %12v %14d %10.2fx %12.2g %8s\n",
			eps, elapsed.Round(time.Microsecond), cells,
			float64(exactTime)/float64(elapsed), worst, bound)
	}
}
