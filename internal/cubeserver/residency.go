package cubeserver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/datacube"
	"repro/internal/obs"
)

// This file implements the server-side resident-byte budget: when the
// cubes a dispatcher manages outgrow the budget, the coldest unpinned
// cube is demoted down a resolution ladder (full → 2x → 4x → 8x
// row-coarsened stand-in, each step pair-averaging rows of the current
// representation) and, only once the whole population sits at the
// coarsest rung, dropped to a recipe-only placeholder — the payload is
// freed but the ID stays resolvable. Demotion is invisible to clients:
// the cube keeps its public ID (datacube.Engine.Adopt swaps the
// representation underneath it), and any operation that touches the
// cube's data first re-promotes it to full fidelity by re-running its
// recipe — the request that created it (re-import for importfiles /
// importshard, recompute for operator and pipeline outputs). Cubes
// without a replayable recipe (putcube payloads, kept pipeline
// intermediates) are pinned and never demoted.

// maxDemoteLevel caps the ladder at 8x row coarsening; past it the only
// further step is dropping the cube.
const maxDemoteLevel = 3

// resEntry tracks one managed cube's residency state.
type resEntry struct {
	id         string
	lastAccess atomic.Uint64
	level      int   // 0 = full resolution, k = 2^k-fold row coarsening
	bytes      int64 // resident payload at the current representation
	recipe     *Request
	pinned     bool
}

type resMetrics struct {
	demotions  *obs.Counter
	promotions *obs.Counter
	drops      *obs.Counter
}

// residentDispatcher enforces a resident-byte budget around an
// engine-backed dispatcher.
type residentDispatcher struct {
	engine *datacube.Engine
	inner  Dispatcher
	budget int64
	met    resMetrics
	seq    atomic.Uint64
	total  atomic.Int64 // resident bytes across managed entries

	// mu orders representation swaps against data access: operations
	// that read cube data hold it shared for the whole inner dispatch,
	// so demotion (exclusive) can never swap a representation out from
	// under a running operator.
	mu      sync.RWMutex
	entries map[string]*resEntry
}

// ResidentDispatcher wraps an engine in a Dispatcher that keeps the
// cubes it manages within budgetBytes of resident memory, demoting the
// coldest cubes to coarser stand-ins (and ultimately dropping them)
// under pressure, and transparently re-promoting them on access.
// budgetBytes <= 0 disables enforcement (accounting still runs). reg
// (optional) receives cubeserver_resident_bytes,
// cubeserver_demotions_total, cubeserver_promotions_total and
// cubeserver_drops_total.
func ResidentDispatcher(engine *datacube.Engine, budgetBytes int64, reg *obs.Registry) Dispatcher {
	d := &residentDispatcher{
		engine:  engine,
		inner:   EngineDispatcher(engine),
		budget:  budgetBytes,
		entries: make(map[string]*resEntry),
	}
	if reg != nil {
		reg.GaugeFunc("cubeserver_resident_bytes",
			"resident payload bytes across budget-managed cubes",
			func() float64 { return float64(d.total.Load()) })
		d.met.demotions = reg.Counter("cubeserver_demotions_total",
			"cubes demoted one rung down the resolution ladder")
		d.met.promotions = reg.Counter("cubeserver_promotions_total",
			"cubes re-promoted to full resolution on access")
		d.met.drops = reg.Counter("cubeserver_drops_total",
			"cube payloads dropped to recipe-only placeholders after exhausting the demotion ladder")
	}
	return d
}

// dataOp reports whether op reads or produces cube payload and so must
// see full-resolution sources. Control-plane operations (list, stats,
// delete, metadata, ping) work on demoted cubes as-is.
func dataOp(op string) bool {
	switch op {
	case "ping", "list", "stats", "delete", "setmeta", "getmeta":
		return false
	}
	return true
}

// producesCube reports whether a successful op registered a fresh cube
// the budget should manage.
func producesCube(op string) bool {
	switch op {
	case "importfiles", "importshard", "putcube", "pipeline",
		"apply", "reduce", "reducegroup", "reducestride",
		"subset", "subsetrows", "intercube", "aggrows":
		return true
	}
	return false
}

// sourceIDs lists the cubes a request reads.
func sourceIDs(req *Request) []string {
	var ids []string
	if req.CubeID != "" {
		ids = append(ids, req.CubeID)
	}
	if req.OtherID != "" {
		ids = append(ids, req.OtherID)
	}
	for _, st := range req.Pipeline {
		if st.OtherID != "" {
			ids = append(ids, st.OtherID)
		}
	}
	return ids
}

func (d *residentDispatcher) Dispatch(req *Request) *Response {
	now := d.seq.Add(1)
	if !dataOp(req.Op) {
		resp := d.inner.Dispatch(req)
		if req.Op == "delete" && resp.Err == "" {
			d.mu.Lock()
			d.forgetLocked(req.CubeID)
			d.mu.Unlock()
		}
		return resp
	}

	srcs := sourceIDs(req)
	if err := d.acquire(srcs, now); err != nil {
		return &Response{Err: err.Error(), ErrCode: ErrCodeOf(err)}
	}
	resp := d.inner.Dispatch(req)
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if resp.Err == "" && producesCube(req.Op) && resp.Shape.CubeID != "" {
		d.registerLocked(req, resp, now)
	}
	d.refreshLocked()
	d.enforceLocked()
	return resp
}

// acquire touches the source entries and guarantees they are at full
// resolution, returning with the shared lock HELD on success.
func (d *residentDispatcher) acquire(ids []string, now uint64) error {
	for {
		d.mu.RLock()
		demoted := false
		for _, id := range ids {
			if en := d.entries[id]; en != nil {
				en.lastAccess.Store(now)
				if en.level > 0 {
					demoted = true
				}
			}
		}
		if !demoted {
			return nil
		}
		d.mu.RUnlock()
		d.mu.Lock()
		var err error
		for _, id := range ids {
			if e2 := d.promoteLocked(id, 0); e2 != nil {
				err = e2
				break
			}
		}
		d.mu.Unlock()
		if err != nil {
			return err
		}
		// loop: re-check under the shared lock in case another request's
		// enforcement demoted a source between the two lock holds
	}
}

// registerLocked records a freshly produced cube under management.
func (d *residentDispatcher) registerLocked(req *Request, resp *Response, now uint64) {
	id := resp.Shape.CubeID
	recipe := cloneRequest(req)
	pinned := false
	switch req.Op {
	case "putcube":
		// the payload arrived over the wire; there is nothing to replay
		pinned, recipe = true, nil
	case "pipeline":
		// kept intermediates materialize alongside the final cube with
		// server-assigned IDs we cannot tie to a replayable prefix; pin
		// them so eviction never strands a client handle
		for i := range recipe.Pipeline {
			recipe.Pipeline[i].Keep = false
		}
	}
	en := &resEntry{id: id, recipe: recipe, pinned: pinned}
	en.lastAccess.Store(now)
	d.entries[id] = en
	if req.Op == "pipeline" {
		for _, st := range req.Pipeline {
			if st.Keep {
				d.adoptKeptLocked(resp.Shape.CubeID, now)
				break
			}
		}
	}
}

// adoptKeptLocked pins every engine-resident cube that is not yet
// managed — after a Keep-bearing pipeline these are exactly the kept
// intermediates (plus any cube created outside this dispatcher, which
// must never be evicted either).
func (d *residentDispatcher) adoptKeptLocked(finalID string, now uint64) {
	for _, id := range d.engine.List() {
		if id == finalID {
			continue
		}
		if _, ok := d.entries[id]; !ok {
			en := &resEntry{id: id, pinned: true}
			en.lastAccess.Store(now)
			d.entries[id] = en
		}
	}
}

// cloneRequest copies a request for use as a rebuild recipe, dropping
// bulky payload fields that are never replayed.
func cloneRequest(req *Request) *Request {
	r := *req
	r.Values = nil
	r.Pipeline = append([]PipelineStep(nil), req.Pipeline...)
	return &r
}

// refreshLocked re-reads live payload sizes (tier builds grow a cube
// after registration) and drops entries whose cube disappeared.
func (d *residentDispatcher) refreshLocked() {
	var total int64
	for id, en := range d.entries {
		c, err := d.engine.Get(id)
		if err != nil {
			delete(d.entries, id)
			continue
		}
		en.bytes = c.Bytes()
		total += en.bytes
	}
	d.total.Store(total)
}

// enforceLocked demotes (then drops) coldest-first until the managed
// population fits the budget.
func (d *residentDispatcher) enforceLocked() {
	if d.budget <= 0 {
		return
	}
	for d.total.Load() > d.budget {
		if en := d.coldestLocked(func(e *resEntry) bool {
			return !e.pinned && e.level < maxDemoteLevel && d.sourcesAliveLocked(e)
		}); en != nil {
			if d.demoteLocked(en) {
				continue
			}
			// demotion could not shrink it further; fall through to drop
			en.level = maxDemoteLevel
			continue
		}
		en := d.coldestLocked(func(e *resEntry) bool {
			return !e.pinned && e.level <= maxDemoteLevel && d.sourcesAliveLocked(e)
		})
		if en == nil {
			return // only pinned/unreplayable/placeholder cubes remain; budget is best-effort
		}
		d.dropLocked(en)
	}
}

// sourcesAliveLocked reports whether every cube the entry's recipe
// reads still exists — demoting a cube whose recipe can no longer be
// replayed would lose it.
func (d *residentDispatcher) sourcesAliveLocked(en *resEntry) bool {
	if en.recipe == nil {
		return false
	}
	for _, id := range sourceIDs(en.recipe) {
		if _, err := d.engine.Get(id); err != nil {
			return false
		}
	}
	return true
}

func (d *residentDispatcher) coldestLocked(ok func(*resEntry) bool) *resEntry {
	var best *resEntry
	for _, en := range d.entries {
		if !ok(en) {
			continue
		}
		if best == nil || en.lastAccess.Load() < best.lastAccess.Load() {
			best = en
		}
	}
	return best
}

// demoteLocked replaces the cube's representation with a 2x
// row-coarsened stand-in (pair-averaged rows of the CURRENT
// representation, so each rung halves again). Returns false when the
// representation cannot shrink any further.
func (d *residentDispatcher) demoteLocked(en *resEntry) bool {
	c, err := d.engine.Get(en.id)
	if err != nil {
		d.forgetLocked(en.id)
		return true
	}
	rows, width := c.Rows(), c.ImplicitLen()
	if rows < 2 || width == 0 {
		return false
	}
	vals := c.Values()
	nr := (rows + 1) / 2
	coarse, err := d.engine.NewCubeFromFunc(
		fmt.Sprintf("%s-demoted-%dx", c.Measure(), 1<<(en.level+1)),
		[]datacube.Dimension{{Name: "row", Size: nr}},
		datacube.Dimension{Name: c.ImplicitDim().Name, Size: width},
		func(r, t int) float32 {
			if 2*r+1 < rows {
				return (vals[2*r][t] + vals[2*r+1][t]) / 2
			}
			return vals[2*r][t]
		})
	if err != nil {
		return false
	}
	if err := d.engine.Adopt(en.id, coarse); err != nil {
		_ = coarse.Delete()
		return false
	}
	d.total.Add(coarse.Bytes() - en.bytes)
	en.bytes = coarse.Bytes()
	en.level++
	d.met.demotions.Inc()
	return true
}

// promoteLocked rebuilds the cube at full resolution by replaying its
// recipe, recursively promoting recipe sources first.
func (d *residentDispatcher) promoteLocked(id string, depth int) error {
	en := d.entries[id]
	if en == nil || en.level == 0 {
		return nil
	}
	if depth > 16 {
		return fmt.Errorf("cubeserver: recipe chain for %q too deep", id)
	}
	for _, sid := range sourceIDs(en.recipe) {
		if err := d.promoteLocked(sid, depth+1); err != nil {
			return err
		}
	}
	c, err := d.rebuild(en.recipe)
	if err != nil {
		return fmt.Errorf("cubeserver: re-promote %q: %w", id, err)
	}
	if err := d.engine.Adopt(id, c); err != nil {
		_ = c.Delete()
		return err
	}
	d.total.Add(c.Bytes() - en.bytes)
	en.bytes = c.Bytes()
	en.level = 0
	d.met.promotions.Inc()
	return nil
}

// rebuild replays a recipe request against the engine, returning the
// freshly produced full-resolution cube.
func (d *residentDispatcher) rebuild(req *Request) (*datacube.Cube, error) {
	get := func(id string) (*datacube.Cube, error) { return d.engine.Get(id) }
	switch req.Op {
	case "importfiles":
		return d.engine.ImportFiles(req.Paths, req.Var, req.ImplicitDim)
	case "importshard":
		c, found, err := importShard(d.engine, req)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("cubeserver: importshard recipe produced no slice")
		}
		return c, nil
	case "pipeline":
		return runPipeline(d.engine, &PipelineRequest{CubeID: req.CubeID, Steps: req.Pipeline})
	case "apply":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.Apply(req.Expr)
	case "reduce":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.Reduce(req.RowOp, req.Params...)
	case "reducegroup":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.ReduceGroup(req.RowOp, req.Group, req.Params...)
	case "reducestride":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.ReduceStride(req.RowOp, req.Group, req.Params...)
	case "subset":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.Subset(req.Lo, req.Hi)
	case "subsetrows":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.SubsetRows(req.Lo, req.Hi)
	case "intercube":
		a, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		b, err := get(req.OtherID)
		if err != nil {
			return nil, err
		}
		return a.Intercube(b, req.RowOp)
	case "aggrows":
		c, err := get(req.CubeID)
		if err != nil {
			return nil, err
		}
		return c.AggregateRows(req.RowOp, req.Params...)
	}
	return nil, fmt.Errorf("cubeserver: no rebuild recipe for op %q", req.Op)
}

// dropLocked frees the cube's payload, leaving a recipe-only
// placeholder behind — the end of the ladder. The ID stays resolvable
// (list/stats keep working) and the next data access rebuilds the cube
// through the ordinary promotion path; callers guarantee the recipe is
// replayable (sourcesAliveLocked). Only if the placeholder itself
// cannot be installed does the cube leave the catalog for good.
func (d *residentDispatcher) dropLocked(en *resEntry) {
	c, err := d.engine.Get(en.id)
	if err != nil {
		d.forgetLocked(en.id)
		return
	}
	ph, err := d.engine.NewCubeFromFunc(
		c.Measure()+"-dropped",
		[]datacube.Dimension{{Name: "row", Size: 1}},
		datacube.Dimension{Name: c.ImplicitDim().Name, Size: 1},
		func(r, t int) float32 { return 0 })
	if err == nil {
		err = d.engine.Adopt(en.id, ph)
		if err != nil {
			_ = ph.Delete()
		}
	}
	if err != nil {
		_ = d.engine.Delete(en.id)
		d.forgetLocked(en.id)
		d.met.drops.Inc()
		return
	}
	d.total.Add(ph.Bytes() - en.bytes)
	en.bytes = ph.Bytes()
	en.level = maxDemoteLevel + 1
	d.met.drops.Inc()
}

func (d *residentDispatcher) forgetLocked(id string) {
	if en, ok := d.entries[id]; ok {
		d.total.Add(-en.bytes)
		delete(d.entries, id)
	}
}
