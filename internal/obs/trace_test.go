package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestSpanNestingAndError(t *testing.T) {
	tr := NewTracer()
	task := tr.Start("daily_tmax", Attr{Key: "year", Value: "2040"})
	a0 := task.Start("attempt", Attr{Key: "attempt", Value: "0"})
	a0.EndErr(errors.New("task timed out"))
	a1 := task.Start("attempt", Attr{Key: "attempt", Value: "1"})
	a1.End()
	task.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: attempt 0, attempt 1, task.
	att0, att1, root := spans[0], spans[1], spans[2]
	if root.Name != "daily_tmax" || root.Parent != 0 || root.Root != root.ID {
		t.Errorf("root span = %+v", root)
	}
	if att0.Parent != root.ID || att1.Parent != root.ID {
		t.Errorf("attempts not parented to task: %+v %+v", att0, att1)
	}
	if att0.Root != root.ID || att1.Root != root.ID {
		t.Errorf("attempts not sharing root: %+v %+v", att0, att1)
	}
	if att0.Err == "" || !strings.Contains(att0.Err, "timed out") {
		t.Errorf("timed-out attempt span err = %q, want error status", att0.Err)
	}
	if att1.Err != "" {
		t.Errorf("successful attempt span has err %q", att1.Err)
	}
	if att0.Attr("attempt") != "0" || root.Attr("year") != "2040" {
		t.Errorf("attrs lost: %+v %+v", att0, root)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	task := tr.Start("esm_run")
	att := task.Start("attempt")
	att.EndErr(errors.New("boom"))
	task.End()
	open := tr.Start("never_ended")
	_ = open

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events, err := ParseChromeTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseChromeTrace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (open span must be excluded)", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Dur < 1 {
			t.Errorf("malformed event %+v", ev)
		}
	}
	if events[0].Tid != events[1].Tid {
		t.Errorf("task and attempt on different rows: %+v", events)
	}
	var sawErr bool
	for _, ev := range events {
		if ev.Name == "attempt" && ev.Args["error"] == "boom" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Errorf("attempt error not exported: %+v", events)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	child := sp.Start("y")
	if child != nil {
		t.Fatalf("nil span returned non-nil child")
	}
	sp.SetAttr("k", "v")
	sp.End()
	sp.EndErr(errors.New("x"))
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer spans = %v", got)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	if events, err := ParseChromeTrace(strings.NewReader(b.String())); err != nil || len(events) != 0 {
		t.Errorf("nil tracer export = %q (%v)", b.String(), err)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("once")
	sp.End()
	sp.End()
	sp.EndErr(errors.New("late"))
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Err != "" {
		t.Errorf("double End produced %+v", spans)
	}
}
