package cubeserver

import (
	"fmt"

	"repro/internal/datacube"
)

// PipelineStep is one operator application in a server-side pipeline.
// Input defaults to the previous step's output; step 0 consumes the
// pipeline's source cube.
type PipelineStep struct {
	// Op is the operator: apply, reduce, reducegroup, reducestride,
	// subset, subsetrows, intercube, aggrows, aggtrailing.
	Op string
	// Expr is the expression for apply.
	Expr string
	// RowOp names the reduction for reduce*/agg* and the arithmetic op
	// for intercube.
	RowOp string
	// Params are row-op parameters.
	Params []float64
	// Group is the group/stride size for reducegroup/reducestride.
	Group int
	// Lo, Hi bound subset/subsetrows.
	Lo, Hi int
	// OtherID names the second operand cube for intercube.
	OtherID string
	// Keep retains this step's intermediate cube; unkept intermediates
	// are deleted server-side once the pipeline finishes (the Listing 1
	// Mask.delete() pattern, automated).
	Keep bool
}

// PipelineRequest executes an operator chain server-side in one round
// trip — the analogue of submitting an Ophidia workflow document
// instead of issuing operators one by one.
type PipelineRequest struct {
	CubeID string
	Steps  []PipelineStep
}

// runPipeline executes the chain on the engine.
func runPipeline(engine *datacube.Engine, req *PipelineRequest) (*datacube.Cube, error) {
	if len(req.Steps) == 0 {
		return nil, fmt.Errorf("cubeserver: empty pipeline")
	}
	cur, err := engine.Get(req.CubeID)
	if err != nil {
		return nil, err
	}
	var intermediates []*datacube.Cube
	defer func() {
		for _, c := range intermediates {
			_ = c.Delete()
		}
	}()
	for i, st := range req.Steps {
		var next *datacube.Cube
		switch st.Op {
		case "apply":
			next, err = cur.Apply(st.Expr)
		case "reduce":
			next, err = cur.Reduce(st.RowOp, st.Params...)
		case "reducegroup":
			next, err = cur.ReduceGroup(st.RowOp, st.Group, st.Params...)
		case "reducestride":
			next, err = cur.ReduceStride(st.RowOp, st.Group, st.Params...)
		case "subset":
			next, err = cur.Subset(st.Lo, st.Hi)
		case "subsetrows":
			next, err = cur.SubsetRows(st.Lo, st.Hi)
		case "intercube":
			var other *datacube.Cube
			other, err = engine.Get(st.OtherID)
			if err == nil {
				next, err = cur.Intercube(other, st.RowOp)
			}
		case "aggrows":
			next, err = cur.AggregateRows(st.RowOp, st.Params...)
		case "aggtrailing":
			next, err = cur.AggregateTrailing(st.RowOp, st.Params...)
		default:
			err = fmt.Errorf("cubeserver: unknown pipeline op %q", st.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("cubeserver: pipeline step %d (%s): %w", i, st.Op, err)
		}
		// intermediates (every step output except the last) are deleted
		// unless kept
		if i < len(req.Steps)-1 && !st.Keep {
			intermediates = append(intermediates, next)
		}
		cur = next
	}
	return cur, nil
}

// Pipeline executes an operator chain server-side and returns the
// final cube's handle. Intermediate cubes are freed automatically
// unless their step sets Keep.
func (r *RemoteCube) Pipeline(steps ...PipelineStep) (*RemoteCube, error) {
	resp, err := r.client.call(&Request{Op: "pipeline", CubeID: r.ID(), Pipeline: steps})
	if err != nil {
		return nil, err
	}
	return r.client.wrap(resp), nil
}
