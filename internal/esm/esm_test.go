package esm

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/ncdf"
)

func smallCfg() Config {
	return Config{
		Grid:        grid.Grid{NLat: 24, NLon: 48},
		StartYear:   2040,
		Years:       1,
		DaysPerYear: 20,
		Seed:        42,
	}
}

func TestScenarioStringsAndRates(t *testing.T) {
	if Historical.String() != "historical" || SSP245.String() != "ssp245" || SSP585.String() != "ssp585" {
		t.Fatal("scenario strings")
	}
	if Scenario(9).String() == "" {
		t.Fatal("unknown scenario string empty")
	}
	if Historical.WarmingRate() != 0 || SSP585.WarmingRate() <= SSP245.WarmingRate() {
		t.Fatal("warming rates disordered")
	}
}

func TestClimatologyShape(t *testing.T) {
	g := grid.Grid{NLat: 90, NLon: 180}
	equator := Climatology(g, 45, 0, 180, 365)
	pole := Climatology(g, 89, 0, 180, 365)
	if equator <= pole {
		t.Fatalf("equator %v not warmer than pole %v", equator, pole)
	}
	// seasonal cycle: NH midlatitude warmer in July (day ~195) than January
	nhRow := 70 // ~ +50 lat
	jul := Climatology(g, nhRow, 0, 195, 365)
	jan := Climatology(g, nhRow, 0, 15, 365)
	if jul <= jan {
		t.Fatalf("NH summer %v not warmer than winter %v", jul, jan)
	}
	// southern hemisphere is antiphase
	shRow := 19
	julS := Climatology(g, shRow, 0, 195, 365)
	janS := Climatology(g, shRow, 0, 15, 365)
	if janS <= julS {
		t.Fatalf("SH summer %v not warmer than winter %v", janS, julS)
	}
}

func TestDiurnalAnomalyCycle(t *testing.T) {
	if DiurnalAnomaly(2) <= DiurnalAnomaly(1) {
		t.Fatal("afternoon should beat morning")
	}
	if DiurnalAnomaly(0) != DiurnalAnomaly(4) {
		t.Fatal("diurnal cycle must wrap")
	}
}

func TestModelDeterminism(t *testing.T) {
	m1 := NewModel(smallCfg())
	m2 := NewModel(smallCfg())
	d1 := m1.StepDay()
	d2 := m2.StepDay()
	f1, _ := d1.Field(0, "TREFHT")
	f2, _ := d2.Field(0, "TREFHT")
	for i := range f1.Data {
		if f1.Data[i] != f2.Data[i] {
			t.Fatalf("same seed diverged at cell %d: %v vs %v", i, f1.Data[i], f2.Data[i])
		}
	}
	gt1, gt2 := m1.GroundTruth(), m2.GroundTruth()
	if len(gt1.Waves) != len(gt2.Waves) || len(gt1.Cyclones) != len(gt2.Cyclones) {
		t.Fatal("ground truth not deterministic")
	}
}

func TestModelSeedSensitivity(t *testing.T) {
	cfg2 := smallCfg()
	cfg2.Seed = 43
	d1 := NewModel(smallCfg()).StepDay()
	d2 := NewModel(cfg2).StepDay()
	f1, _ := d1.Field(0, "TREFHT")
	f2, _ := d2.Field(0, "TREFHT")
	same := true
	for i := range f1.Data {
		if f1.Data[i] != f2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weather")
	}
}

func TestStepDayProgressionAndDone(t *testing.T) {
	m := NewModel(smallCfg())
	if m.TotalDays() != 20 {
		t.Fatalf("TotalDays = %d", m.TotalDays())
	}
	for i := 0; i < 20; i++ {
		d := m.StepDay()
		if d == nil {
			t.Fatalf("nil output at day %d", i)
		}
		if d.DayOfYear != i || d.Year != 2040 {
			t.Fatalf("day %d: got year %d doy %d", i, d.Year, d.DayOfYear)
		}
	}
	if !m.Done() || m.StepDay() != nil {
		t.Fatal("model should be exhausted")
	}
}

func TestAllVariablesPresentAndFinite(t *testing.T) {
	m := NewModel(smallCfg())
	d := m.StepDay()
	for s := 0; s < StepsPerDay; s++ {
		for _, v := range Vars {
			f, err := d.Field(s, v)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range f.Data {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					t.Fatalf("%s step %d cell %d not finite: %v", v, s, i, x)
				}
			}
		}
	}
	if _, err := d.Field(0, "NOPE"); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := d.Field(99, "TREFHT"); err == nil {
		t.Fatal("bad step accepted")
	}
}

func TestPhysicalRanges(t *testing.T) {
	m := NewModel(smallCfg())
	d := m.StepDay()
	for s := 0; s < StepsPerDay; s++ {
		tr, _ := d.Field(s, "TREFHT")
		st := tr.Statistics()
		if st.Min < 180 || st.Max > 340 {
			t.Fatalf("TREFHT out of plausible range: %+v", st)
		}
		psl, _ := d.Field(s, "PSL")
		pst := psl.Statistics()
		if pst.Min < 90000 || pst.Max > 108000 {
			t.Fatalf("PSL out of range: %+v", pst)
		}
		ice, _ := d.Field(s, "ICEFRAC")
		ist := ice.Statistics()
		if ist.Min < 0 || ist.Max > 1 {
			t.Fatalf("ICEFRAC out of [0,1]: %+v", ist)
		}
		cld, _ := d.Field(s, "CLDTOT")
		cst := cld.Statistics()
		if cst.Min < 0 || cst.Max > 1 {
			t.Fatalf("CLDTOT out of [0,1]: %+v", cst)
		}
	}
}

func TestSeededHeatWaveRaisesTemperature(t *testing.T) {
	cfg := smallCfg()
	cfg.DaysPerYear = 40
	cfg.Events = &EventConfig{HeatWavesPerYear: 1, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6, CyclonesPerYear: 0}
	m := NewModel(cfg)
	gt := m.GroundTruth()
	if len(gt.HeatWaves()) != 1 || len(gt.ColdSpells()) != 0 {
		t.Fatalf("events = %+v", gt.Waves)
	}
	w := gt.HeatWaves()[0]
	ci, cj := cfg.Grid.CellOf(w.CenterLat, w.CenterLon)

	var during, outside []float64
	for day := 0; day < cfg.DaysPerYear; day++ {
		d := m.StepDay()
		f, _ := d.Field(2, "TREFHT")
		v := float64(f.At(ci, cj)) - Climatology(cfg.Grid, ci, cj, day, cfg.DaysPerYear)
		if day >= w.StartDay && day < w.StartDay+w.Days {
			during = append(during, v)
		} else {
			outside = append(outside, v)
		}
	}
	if mean(during) < mean(outside)+5 {
		t.Fatalf("wave anomaly too weak: during=%v outside=%v", mean(during), mean(outside))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSeededCycloneImprint(t *testing.T) {
	cfg := smallCfg()
	cfg.Grid = grid.Grid{NLat: 48, NLon: 96}
	cfg.DaysPerYear = 30
	cfg.Events = &EventConfig{CyclonesPerYear: 1, WaveAmplitudeK: 8, WaveMinDays: 6, WaveMaxDays: 6}
	m := NewModel(cfg)
	gt := m.GroundTruth()
	if len(gt.Cyclones) != 1 {
		t.Fatalf("cyclones = %d", len(gt.Cyclones))
	}
	c := gt.Cyclones[0]
	if len(c.Track) < 3*StepsPerDay {
		t.Fatalf("track too short: %d", len(c.Track))
	}
	// advance to a mid-life day and check the pressure depression
	mid := c.Track[len(c.Track)/2]
	var d *DayOutput
	for day := 0; day <= mid.Day; day++ {
		d = m.StepDay()
	}
	psl, _ := d.Field(mid.Step, "PSL")
	ci, cj := cfg.Grid.CellOf(mid.Lat, mid.Lon)
	center := float64(psl.At(ci, cj))
	// ambient pressure ~8 cells away along the same latitude
	ambient := float64(psl.At(ci, cj+12))
	if ambient-center < mid.PressureDrop/3 {
		t.Fatalf("no storm depression: center %v ambient %v want drop >= %v", center, ambient, mid.PressureDrop/3)
	}
	wspd, _ := d.Field(mid.Step, "VORT850")
	if v := float64(wspd.At(ci, cj)); math.Abs(v) < 1e-5 {
		t.Fatalf("no vorticity signature: %v", v)
	}
}

func TestScenarioWarmingTrend(t *testing.T) {
	mk := func(s Scenario) float64 {
		cfg := smallCfg()
		cfg.Years = 3
		cfg.DaysPerYear = 10
		cfg.Scenario = s
		cfg.Events = &EventConfig{} // no events: isolate trend
		m := NewModel(cfg)
		var first, last float64
		for i := 0; i < m.TotalDays(); i++ {
			d := m.StepDay()
			f, _ := d.Field(0, "TREFHT")
			v := f.Statistics().Mean
			if i == 0 {
				first = v
			}
			last = v
		}
		return last - first
	}
	dH := mk(Historical)
	d585 := mk(SSP585)
	if d585 <= dH {
		t.Fatalf("SSP585 trend %v not above historical %v", d585, dH)
	}
}

func TestOceanIceConsistency(t *testing.T) {
	m := NewModel(smallCfg())
	d := m.StepDay()
	sst, _ := d.Field(0, "SST")
	ice, _ := d.Field(0, "ICEFRAC")
	for i := range sst.Data {
		if sst.Data[i] > 272.35 && ice.Data[i] == 1 {
			t.Fatalf("full ice over warm water at %d: sst=%v", i, sst.Data[i])
		}
		if sst.Data[i] < 269 && ice.Data[i] == 0 {
			t.Fatalf("no ice over freezing water at %d: sst=%v", i, sst.Data[i])
		}
	}
}

func TestIceFractionRamp(t *testing.T) {
	if iceFraction(280) != 0 || iceFraction(260) != 1 {
		t.Fatal("ice endpoints wrong")
	}
	mid := iceFraction(271.35)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("ramp value = %v", mid)
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	name := FileName(2041, 7)
	if name != "cm3_2041_d007.nc" {
		t.Fatalf("name = %q", name)
	}
	y, d, ok := ParseFileName("/data/" + name)
	if !ok || y != 2041 || d != 7 {
		t.Fatalf("parse = %d %d %v", y, d, ok)
	}
	if _, _, ok := ParseFileName("garbage.nc"); ok {
		t.Fatal("garbage parsed")
	}
	if y, ok := YearOf(name); !ok || y != 2041 {
		t.Fatalf("YearOf = %d %v", y, ok)
	}
}

func TestToDatasetLayout(t *testing.T) {
	m := NewModel(smallCfg())
	d := m.StepDay()
	ds, err := d.ToDataset()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ds.DimLen("time"); n != StepsPerDay {
		t.Fatalf("time dim = %d", n)
	}
	if len(ds.Vars) != len(Vars) {
		t.Fatalf("vars = %d, want %d", len(ds.Vars), len(Vars))
	}
	v, err := ds.Var("TREFHT")
	if err != nil {
		t.Fatal(err)
	}
	// step-major layout: step 1 slice equals the model field
	size := d.Grid.Size()
	f, _ := d.Field(1, "TREFHT")
	for i := 0; i < size; i += 37 {
		if v.Data[size+i] != f.Data[i] {
			t.Fatalf("layout mismatch at %d", i)
		}
	}
	if ds.Attrs["year"].I != 2040 {
		t.Fatalf("year attr = %v", ds.Attrs["year"])
	}
}

func TestRunWritesFilesInOrder(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	cfg.DaysPerYear = 5
	m := NewModel(cfg)
	var seen []string
	paths, err := m.Run(RunOptions{Dir: dir, OnDay: func(p string, d *DayOutput) { seen = append(seen, p) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 || len(seen) != 5 {
		t.Fatalf("paths = %d, callbacks = %d", len(paths), len(seen))
	}
	for i, p := range paths {
		_, day, ok := ParseFileName(p)
		if !ok || day != i {
			t.Fatalf("path %d = %q", i, p)
		}
		if _, err := os.Stat(p); err != nil {
			t.Fatal(err)
		}
	}
	// files are valid GNC1 with all variables
	ds, err := ncdf.ReadFile(filepath.Join(dir, FileName(2040, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vars) != len(Vars) {
		t.Fatalf("file vars = %d", len(ds.Vars))
	}
}

// TestRunOnDatasetSharesWrittenData: the OnDataset hook hands back the
// exact in-memory dataset the file was written from — same variable
// backing slices, same bytes on disk — so exchange publishers never
// re-read what they just produced.
func TestRunOnDatasetSharesWrittenData(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	cfg.DaysPerYear = 3
	m := NewModel(cfg)
	type tap struct {
		path string
		ds   *ncdf.Dataset
	}
	var taps []tap
	_, err := m.Run(RunOptions{Dir: dir, OnDataset: func(p string, d *DayOutput, ds *ncdf.Dataset) error {
		taps = append(taps, tap{p, ds})
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 3 {
		t.Fatalf("OnDataset calls = %d", len(taps))
	}
	for _, tp := range taps {
		onDisk, err := ncdf.ReadFile(tp.path)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range Vars {
			mem, err := tp.ds.Var(name)
			if err != nil {
				t.Fatal(err)
			}
			disk, err := onDisk.Var(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(mem.Data) != len(disk.Data) {
				t.Fatalf("%s: in-memory %d values, on-disk %d", name, len(mem.Data), len(disk.Data))
			}
			for i := range mem.Data {
				if mem.Data[i] != disk.Data[i] {
					t.Fatalf("%s[%d]: memory %v != disk %v", name, i, mem.Data[i], disk.Data[i])
				}
			}
		}
	}
	// An OnDataset error aborts the run after the failing day.
	m2 := NewModel(cfg)
	calls := 0
	_, err = m2.Run(RunOptions{Dir: t.TempDir(), OnDataset: func(string, *DayOutput, *ncdf.Dataset) error {
		calls++
		return fmt.Errorf("boom")
	}})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestGroundTruthSpansAllYears(t *testing.T) {
	cfg := smallCfg()
	cfg.Years = 3
	m := NewModel(cfg)
	years := map[int]bool{}
	for _, w := range m.GroundTruth().Waves {
		years[w.Year] = true
	}
	for y := 2040; y < 2043; y++ {
		if !years[y] {
			t.Fatalf("no waves seeded in %d", y)
		}
	}
	// cyclone IDs unique
	ids := map[int]bool{}
	for _, c := range m.GroundTruth().Cyclones {
		if ids[c.ID] {
			t.Fatalf("duplicate cyclone ID %d", c.ID)
		}
		ids[c.ID] = true
		if len(c.Track) == 0 || c.Basin == "" {
			t.Fatalf("malformed cyclone %+v", c)
		}
	}
}

func TestWaveAnomalyLocalized(t *testing.T) {
	g := grid.Grid{NLat: 90, NLon: 180}
	w := Wave{Hot: true, StartDay: 10, Days: 5, CenterLat: 40, CenterLon: 100, RadiusDeg: 8, AmplitudeK: 10}
	ci, cj := g.CellOf(40, 100)
	if a := w.anomalyAt(g, ci, cj, 12); a < 9 {
		t.Fatalf("center anomaly = %v", a)
	}
	if a := w.anomalyAt(g, ci, cj, 9); a != 0 {
		t.Fatalf("pre-onset anomaly = %v", a)
	}
	if a := w.anomalyAt(g, ci, cj, 15); a != 0 {
		t.Fatalf("post-end anomaly = %v", a)
	}
	fi, fj := g.CellOf(-40, 280)
	if a := w.anomalyAt(g, fi, fj, 12); a != 0 {
		t.Fatalf("far-field anomaly = %v", a)
	}
	// cold spell flips sign
	c := w
	c.Hot = false
	if a := c.anomalyAt(g, ci, cj, 12); a > -9 {
		t.Fatalf("cold anomaly = %v", a)
	}
}

func TestCycloneActiveLookup(t *testing.T) {
	c := Cyclone{Track: []TrackPoint{{Day: 3, Step: 2, Lat: 15, Lon: 310}}}
	if _, ok := c.Active(3, 2); !ok {
		t.Fatal("active point missed")
	}
	if _, ok := c.Active(3, 3); ok {
		t.Fatal("phantom active point")
	}
}
