// Package stream provides the streaming interface the workflow uses to
// monitor file production progress while the ESM is still running
// (paper §5.2): "a streaming interface available in PyCOMPSs has been
// leveraged to monitor the file production progress and detect when a
// (full) new year of data is available".
//
// Two building blocks are provided: a generic typed Stream with
// publish/poll semantics modelled on PyCOMPSs distributed streams, and a
// DirWatcher that turns files appearing in a directory into stream
// elements.
package stream

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// ErrClosed is returned by Publish after Close.
var ErrClosed = errors.New("stream: closed")

// Stream is an unbounded multi-producer, multi-consumer ordered stream.
// Poll drains currently available elements; Next blocks for one.
type Stream[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []T
	closed bool
}

// New creates an empty open stream.
func New[T any]() *Stream[T] {
	s := &Stream[T]{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Publish appends elements to the stream.
func (s *Stream[T]) Publish(items ...T) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.buf = append(s.buf, items...)
	s.cond.Broadcast()
	return nil
}

// Close marks the stream complete. Pending and future Poll/Next calls
// drain the remaining buffer and then report closure.
func (s *Stream[T]) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Closed reports whether Close has been called.
func (s *Stream[T]) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Poll removes and returns all currently buffered elements without
// blocking. ok is false only when the stream is closed and drained.
func (s *Stream[T]) Poll() (items []T, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	items = s.buf
	s.buf = nil
	return items, !(s.closed && len(items) == 0)
}

// Next blocks until one element is available and returns it; ok is
// false when the stream closes with nothing left.
func (s *Stream[T]) Next() (item T, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.buf) == 0 {
		var zero T
		return zero, false
	}
	item = s.buf[0]
	s.buf = s.buf[1:]
	return item, true
}

// Len reports buffered (unconsumed) elements.
func (s *Stream[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// DirWatcher polls a directory and publishes newly appeared file names
// (matching an optional pattern) to a Stream in sorted order. It stands
// in for PyCOMPSs' file-stream monitoring of ESM output.
type DirWatcher struct {
	Dir      string
	Pattern  *regexp.Regexp // nil matches everything
	Interval time.Duration  // poll period; zero means 5ms

	out  *Stream[string]
	seen map[string]bool
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	started bool
	stopped bool
}

// NewDirWatcher builds a watcher over dir with an optional filename
// regexp (pass "" for all files).
func NewDirWatcher(dir, pattern string) (*DirWatcher, error) {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		re, err = regexp.Compile(pattern)
		if err != nil {
			return nil, err
		}
	}
	return &DirWatcher{
		Dir:     dir,
		Pattern: re,
		out:     New[string](),
		seen:    make(map[string]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Stream returns the output stream of newly detected file names.
func (w *DirWatcher) Stream() *Stream[string] { return w.out }

// Start begins polling in a background goroutine. Repeated calls are
// no-ops, as is a call after Stop.
func (w *DirWatcher) Start() {
	w.mu.Lock()
	if w.started || w.stopped {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	interval := w.Interval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			w.scan()
			select {
			case <-w.stop:
				w.scan() // final scan so nothing published before Stop is lost
				w.out.Close()
				return
			case <-t.C:
			}
		}
	}()
}

// Stop terminates polling after one final scan and closes the stream.
// Every file that landed in the directory before Stop was called is
// published before it returns. Safe to call repeatedly, and safe
// without a prior Start — the final scan still runs, so the stream
// always ends closed with everything on disk published.
func (w *DirWatcher) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		<-w.done
		return
	}
	w.stopped = true
	started := w.started
	w.mu.Unlock()
	close(w.stop)
	if !started {
		// No polling goroutine exists (Start was never called), so the
		// shutdown scan runs inline; Start is a no-op from here on.
		w.scan()
		w.out.Close()
		close(w.done)
		return
	}
	<-w.done
}

func (w *DirWatcher) scan() {
	entries, err := os.ReadDir(w.Dir)
	if err != nil {
		return // directory may not exist yet; keep polling
	}
	var fresh []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if w.Pattern != nil && !w.Pattern.MatchString(name) {
			continue
		}
		if w.seen[name] {
			continue
		}
		w.seen[name] = true
		fresh = append(fresh, filepath.Join(w.Dir, name))
	}
	sort.Strings(fresh)
	if len(fresh) > 0 {
		_ = w.out.Publish(fresh...)
	}
}

// YearBatcher groups incoming daily-file names into complete years. It
// implements the paper's step 4: "as soon as full year of NetCDF files
// is available, the data analytics and ML tasks are executed".
type YearBatcher struct {
	// DaysPerYear is the number of daily files forming one complete
	// year; zero means 365.
	DaysPerYear int
	// YearOf extracts the year key from a file path. Required.
	YearOf func(path string) (int, bool)

	mu      sync.Mutex
	pending map[int][]string
	emitted map[int]bool
}

// NewYearBatcher builds a batcher with the given extraction function.
func NewYearBatcher(daysPerYear int, yearOf func(string) (int, bool)) *YearBatcher {
	if daysPerYear <= 0 {
		daysPerYear = 365
	}
	return &YearBatcher{
		DaysPerYear: daysPerYear,
		YearOf:      yearOf,
		pending:     make(map[int][]string),
		emitted:     make(map[int]bool),
	}
}

// YearBatch is one complete year of daily files.
type YearBatch struct {
	Year  int
	Files []string // sorted
}

// Add ingests newly seen file paths and returns any years that just
// became complete, in ascending year order.
func (b *YearBatcher) Add(paths ...string) []YearBatch {
	b.mu.Lock()
	defer b.mu.Unlock()
	touched := map[int]bool{}
	for _, p := range paths {
		y, ok := b.YearOf(p)
		if !ok || b.emitted[y] {
			continue
		}
		b.pending[y] = append(b.pending[y], p)
		touched[y] = true
	}
	var out []YearBatch
	for y := range touched {
		if len(b.pending[y]) >= b.DaysPerYear {
			files := b.pending[y]
			sort.Strings(files)
			out = append(out, YearBatch{Year: y, Files: files})
			b.emitted[y] = true
			delete(b.pending, y)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// Incomplete returns the years seen but not yet complete, with counts.
func (b *YearBatcher) Incomplete() map[int]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]int, len(b.pending))
	for y, fs := range b.pending {
		out[y] = len(fs)
	}
	return out
}

// Poll backoff for WaitForFileCtx: start fast so freshly written files
// are picked up promptly, back off to a cap so a long wait does not
// spin the CPU the way the old fixed 2 ms loop did.
const (
	waitPollMin = time.Millisecond
	waitPollMax = 50 * time.Millisecond
)

// WaitForFileCtx blocks until path exists or ctx ends. Cancellation is
// reported as context.Canceled and an expired deadline as
// context.DeadlineExceeded, so callers can distinguish "gave up" from
// "was told to stop". Stat failures other than non-existence are
// returned immediately.
func WaitForFileCtx(ctx context.Context, path string) error {
	delay := waitPollMin
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		if _, err := os.Stat(path); err == nil {
			return nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > waitPollMax {
			delay = waitPollMax
		}
		timer.Reset(delay)
	}
}

// WaitForFile blocks until path exists or the timeout elapses. It keeps
// the historical os.ErrDeadlineExceeded contract on timeout; use
// WaitForFileCtx directly for cancellation support.
func WaitForFile(path string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := WaitForFileCtx(ctx, path)
	if errors.Is(err, context.DeadlineExceeded) {
		return os.ErrDeadlineExceeded
	}
	return err
}
