package datacube

import (
	"fmt"
	"math"
	"sync"
)

// RowIvalFunc is the interval form of a RowOp: given per-position lower
// and upper bounds on a row, it returns a sound enclosure of the op's
// value over every row within those bounds. Interval forms let a
// reduction join a tolerance-aware coarse pass (tolerance.go); a row op
// without one forces that pass back to exact execution.
type RowIvalFunc func(lo, hi []float32, params []float64) (float64, float64)

var (
	rowIvalsMu sync.RWMutex
	rowIvals   = map[string]RowIvalFunc{}
)

// RegisterRowOpInterval installs the interval form of a named row op.
// The form must be sound: for every row r with lo[t] <= r[t] <= hi[t],
// the returned (a, b) must satisfy a <= op(r) <= b.
func RegisterRowOpInterval(name string, f RowIvalFunc) error {
	rowIvalsMu.Lock()
	defer rowIvalsMu.Unlock()
	if _, dup := rowIvals[name]; dup {
		return fmt.Errorf("datacube: row op interval %q already registered", name)
	}
	rowIvals[name] = f
	return nil
}

// LookupRowOpInterval returns the interval form of a named row op.
func LookupRowOpInterval(name string) (RowIvalFunc, bool) {
	rowIvalsMu.RLock()
	defer rowIvalsMu.RUnlock()
	f, ok := rowIvals[name]
	return f, ok
}

// MonotoneInterval wraps a row op that is nondecreasing in every
// coordinate (max, sum, count_above, ...): its image over a box is
// bracketed by evaluating the corner rows (op(lo), op(hi)).
func MonotoneInterval(op RowOp) RowIvalFunc {
	return func(lo, hi []float32, params []float64) (float64, float64) {
		return op(lo, params), op(hi, params)
	}
}

// AntitoneInterval wraps a row op that is nonincreasing in every
// coordinate (count_below, longest_run_below, ...).
func AntitoneInterval(op RowOp) RowIvalFunc {
	return func(lo, hi []float32, params []float64) (float64, float64) {
		return op(hi, params), op(lo, params)
	}
}

func init() {
	must := func(name string, f RowIvalFunc) {
		if err := RegisterRowOpInterval(name, f); err != nil {
			panic(err)
		}
	}
	mono := func(name string) {
		op, ok := LookupRowOp(name)
		if !ok {
			panic("datacube: interval for unregistered row op " + name)
		}
		must(name, MonotoneInterval(op))
	}
	anti := func(name string) {
		op, ok := LookupRowOp(name)
		if !ok {
			panic("datacube: interval for unregistered row op " + name)
		}
		must(name, AntitoneInterval(op))
	}
	// Nondecreasing in every coordinate: raising any value can only
	// raise the statistic. quantile qualifies because order statistics
	// and their linear interpolation are coordinate-monotone.
	mono("max")
	mono("min")
	mono("sum")
	mono("avg")
	mono("count_above")
	mono("longest_run_above")
	mono("quantile")
	anti("count_below")
	anti("longest_run_below")

	// std is neither monotone nor antitone; bound it through the
	// variance identity var = mean(x^2) - mean(x)^2 with interval
	// arithmetic on both moments.
	must("std", func(lo, hi []float32, _ []float64) (float64, float64) {
		n := len(lo)
		if n == 0 {
			return math.NaN(), math.NaN()
		}
		var sqLo, sqHi, mLo, mHi float64
		for t := range lo {
			l, h := float64(lo[t]), float64(hi[t])
			mLo += l
			mHi += h
			switch {
			case l >= 0:
				sqLo += l * l
				sqHi += h * h
			case h <= 0:
				sqLo += h * h
				sqHi += l * l
			default:
				sqHi += math.Max(l*l, h*h)
			}
		}
		fn := float64(n)
		sqLo, sqHi = sqLo/fn, sqHi/fn // interval of mean(x^2)
		mLo, mHi = mLo/fn, mHi/fn     // interval of mean(x)
		var m2Lo, m2Hi float64        // interval of mean(x)^2
		switch {
		case mLo >= 0:
			m2Lo, m2Hi = mLo*mLo, mHi*mHi
		case mHi <= 0:
			m2Lo, m2Hi = mHi*mHi, mLo*mLo
		default:
			m2Hi = math.Max(mLo*mLo, mHi*mHi)
		}
		vLo := math.Max(0, sqLo-m2Hi)
		vHi := math.Max(0, sqHi-m2Lo)
		return math.Sqrt(vLo), math.Sqrt(vHi)
	})

	// Run counting is not coordinate-monotone (raising a value can merge
	// two qualifying runs into one, lowering the count). Bound it with a
	// certain/possible run analysis: positions certainly above the
	// threshold (lo > th) versus possibly above it (hi > th).
	must("count_runs_above", runCountInterval(func(v float32, th float64) bool { return float64(v) > th }))
	must("count_runs_below", runCountInterval(func(v float32, th float64) bool { return float64(v) < th }))
}

// runCountInterval builds the interval form shared by count_runs_above
// and count_runs_below. qual reports whether one value qualifies; for
// the lower bound it is applied to the pessimistic endpoint (lo for
// "above", hi for "below") and for the upper bound to the optimistic
// one.
//
//   - LOWER: each maximal possible-run containing at least minLen
//     consecutive certain positions must hold one qualifying true run
//     (>= minLen consecutive qualifying values); distinct possible-runs
//     cannot merge, so they count at least once each.
//   - UPPER: a maximal possible-run of length L can be carved into at
//     most floor((L+1)/(minLen+1)) disjoint qualifying runs, since each
//     run needs minLen members plus a separating non-member.
func runCountInterval(qual func(v float32, th float64) bool) RowIvalFunc {
	return func(lo, hi []float32, params []float64) (float64, float64) {
		th := param(params, 0, 0)
		minLen := int(param(params, 1, 1))
		if minLen < 1 {
			minLen = 1
		}
		var lower, upper float64
		possLen, certLen, certSeen := 0, 0, false
		flush := func() {
			if possLen >= minLen {
				upper += math.Floor(float64(possLen+1) / float64(minLen+1))
			}
			if certSeen {
				lower++
			}
			possLen, certLen, certSeen = 0, 0, false
		}
		for t := range lo {
			// "above": possible iff hi > th, certain iff lo > th.
			// "below": possible iff lo < th, certain iff hi < th.
			// qual on the optimistic endpoint decides possible, on the
			// pessimistic endpoint decides certain.
			possible := qual(hi[t], th) || qual(lo[t], th)
			certain := qual(hi[t], th) && qual(lo[t], th)
			if !possible {
				flush()
				continue
			}
			possLen++
			if certain {
				certLen++
				if certLen >= minLen {
					certSeen = true
				}
			} else {
				certLen = 0
			}
		}
		flush()
		return lower, upper
	}
}
