package viz

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func decodePNG(t *testing.T, path string) (w, h int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	return b.Dx(), b.Dy()
}

func TestWritePNGDimensions(t *testing.T) {
	g := grid.Grid{NLat: 6, NLon: 10}
	path := filepath.Join(t.TempDir(), "m.png")
	if err := WritePNG(path, rampField(g), 0, 0, Heat, 1); err != nil {
		t.Fatal(err)
	}
	if w, h := decodePNG(t, path); w != 10 || h != 6 {
		t.Fatalf("dims = %dx%d", w, h)
	}
}

func TestWritePNGScaled(t *testing.T) {
	g := grid.Grid{NLat: 4, NLon: 8}
	path := filepath.Join(t.TempDir(), "m.png")
	if err := WritePNG(path, rampField(g), 0, 3, nil, 3); err != nil {
		t.Fatal(err)
	}
	if w, h := decodePNG(t, path); w != 24 || h != 12 {
		t.Fatalf("scaled dims = %dx%d", w, h)
	}
	// zero scale clamps to 1
	if err := WritePNG(path, rampField(g), 0, 3, Heat, 0); err != nil {
		t.Fatal(err)
	}
	if w, _ := decodePNG(t, path); w != 8 {
		t.Fatalf("clamped scale width = %d", w)
	}
}

func TestOverlayPNGMarkers(t *testing.T) {
	g := grid.Grid{NLat: 12, NLon: 24}
	path := filepath.Join(t.TempDir(), "o.png")
	markers := []Marker{{Lat: 0, Lon: 180}, {Lat: 85, Lon: 5}}
	if err := OverlayPNG(path, grid.NewField(g), 0, 1, Cool, 4, markers); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	// a black marker pixel must exist (background is Cool(0) = white-ish)
	found := false
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y && !found; y++ {
		for x := b.Min.X; x < b.Max.X && !found; x++ {
			r, g2, b2, _ := img.At(x, y).RGBA()
			if r == 0 && g2 == 0 && b2 == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no marker pixels rendered")
	}
}

func TestWritePNGBadPath(t *testing.T) {
	g := grid.Grid{NLat: 2, NLon: 2}
	if err := WritePNG("/nonexistent-dir/x.png", grid.NewField(g), 0, 1, Heat, 1); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := OverlayPNG("/nonexistent-dir/x.png", grid.NewField(g), 0, 1, Heat, 1, nil); err == nil {
		t.Fatal("bad overlay path accepted")
	}
}
