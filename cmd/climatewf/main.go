// Command climatewf runs the end-to-end climate extreme-events
// workflow (the paper's case study) locally: ESM simulation, streaming
// year detection, heat/cold-wave indices on the datacube engine,
// tropical-cyclone detection and map production.
//
// Usage:
//
//	climatewf -out ./results -years 2 -days 30 -grid reduced -scenario ssp585
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/ml"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	var (
		out      = flag.String("out", "", "output directory (required)")
		years    = flag.Int("years", 1, "number of simulated years")
		start    = flag.Int("start", 2040, "first projection year")
		days     = flag.Int("days", 30, "days per simulated year (365 = full calendar)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		gridName = flag.String("grid", "reduced", "grid: reduced (48x96) | half (96x192) | native (768x1152)")
		scenario = flag.String("scenario", "historical", "forcing scenario: historical | ssp245 | ssp585")
		workers  = flag.Int("workers", 4, "task runtime worker slots")
		servers  = flag.Int("cubeservers", 4, "datacube I/O servers")
		seq      = flag.Bool("sequential", false, "run the two-stage baseline instead of the concurrent workflow")
		attach   = flag.String("attach", "", "attach to an external producer's model-output directory instead of running the ESM")
		diag     = flag.Bool("diag", false, "validate online diagnostics during the ESM run")
		dot      = flag.Bool("dot", false, "print the executed task graph as Graphviz DOT")
		tracePth = flag.String("trace", "", "write a Chrome trace_event timeline of the run to this JSON file (open in chrome://tracing or Perfetto)")
		tcmodel  = flag.String("tcmodel", "", "TC localizer model file: loaded when present, trained and saved otherwise (enables the CNN branch)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, ok := map[string]grid.Grid{
		"reduced": grid.Reduced,
		"half":    {NLat: 96, NLon: 192},
		"native":  grid.CMCCCM3,
	}[*gridName]
	if !ok {
		log.Fatalf("unknown grid %q", *gridName)
	}
	sc, ok := map[string]esm.Scenario{
		"historical": esm.Historical,
		"ssp245":     esm.SSP245,
		"ssp585":     esm.SSP585,
	}[*scenario]
	if !ok {
		log.Fatalf("unknown scenario %q", *scenario)
	}

	cfg := core.Config{
		Grid:              g,
		StartYear:         *start,
		Years:             *years,
		DaysPerYear:       *days,
		Seed:              *seed,
		Scenario:          sc,
		OutputDir:         *out,
		Workers:           *workers,
		CubeServers:       *servers,
		OnlineDiagnostics: *diag,
	}

	if *tcmodel != "" {
		loc, err := loadOrTrainLocalizer(*tcmodel, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Localizer = loc
	}

	var tracer *obs.Tracer
	if *tracePth != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}

	run := core.Run
	mode := "concurrent"
	if *attach != "" {
		cfg.AttachOnly = true
		cfg.ModelDir = *attach
		mode = "attached (external ESM producer at " + *attach + ")"
	}
	if *seq {
		run = core.RunSequential
		mode = "sequential (two-stage baseline)"
	}
	fmt.Printf("running %s workflow: %d year(s) × %d days on %dx%d, scenario %s\n",
		mode, *years, *days, g.NLat, g.NLon, sc)

	res, err := run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation wrote %d daily files\n", res.FilesProduced)
	fmt.Printf("%-6s %14s %14s %10s %12s\n", "year", "hw/cell", "cw/cell", "tracks", "cnn dets")
	for _, yr := range res.Years {
		fmt.Printf("%-6d %14.4f %14.4f %10d %12d\n",
			yr.Year, yr.HWNumberMean, yr.CWNumberMean, yr.TrackerTracks, len(yr.CNNDetections))
	}
	fmt.Printf("final map: %s\n", res.FinalMapPath)
	fmt.Printf("engine: %d file reads, %d ops; runtime: %d tasks done\n",
		res.CubeStats.FileReads, res.CubeStats.Ops, res.RuntimeStats.Done)
	if *dot && res.GraphDOT != "" {
		fmt.Println(res.GraphDOT)
	}
	if tracer != nil {
		if err := writeTrace(*tracePth, tracer); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace timeline: %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *tracePth)
	}
}

// writeTrace dumps the recorded spans as a Chrome trace_event file.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tcPatch is the localizer patch size used by the CLI.
const tcPatch = 12

// loadOrTrainLocalizer loads a saved CNN, or trains one on seeded
// storms from independent simulated years and saves it (the paper's
// "pre-trained ML model(s)" step, automated).
func loadOrTrainLocalizer(path string, seed int64) (*ml.Localizer, error) {
	if net, err := ml.Load(path); err == nil {
		fmt.Printf("loaded TC localizer from %s (%d parameters)\n", path, net.ParamCount())
		return &ml.Localizer{Net: net, PatchH: tcPatch, PatchW: tcPatch}, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	fmt.Printf("training TC localizer (saved to %s afterwards)...\n", path)
	cfg := esm.Config{
		Grid: grid.Grid{NLat: 48, NLon: 96}, Years: 1, DaysPerYear: 30,
		Events: &esm.EventConfig{
			CyclonesPerYear: 6,
			WaveAmplitudeK:  8, WaveMinDays: 6, WaveMaxDays: 6,
		},
	}
	samples, err := ml.SamplesFromSimulations(cfg, []int64{seed + 11, seed + 12, seed + 13, seed + 14, seed + 15}, tcPatch, tcPatch)
	if err != nil {
		return nil, err
	}
	loc, err := ml.NewLocalizer(tcPatch, tcPatch, 7)
	if err != nil {
		return nil, err
	}
	losses, err := loc.Train(samples, ml.TrainConfig{Epochs: 5, BatchSize: 32, LR: 2e-3, Seed: 5, Balance: true})
	if err != nil {
		return nil, err
	}
	fmt.Printf("  %d patches, loss %.4f -> %.4f\n", len(samples), losses[0], losses[len(losses)-1])
	if err := loc.Net.Save(path); err != nil {
		return nil, err
	}
	return loc, nil
}
