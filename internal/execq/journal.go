package execq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// The journal is a JSON-lines file: one record per line, either a
// "submit" (full job description) or a "state" transition. On startup
// New replays it, re-enqueues every job whose last recorded state is
// live (QUEUED, RUNNING or RETRYING — the work that a crash would
// otherwise lose), and compacts the file down to just those pending
// submits. A torn final line (the crash happened mid-write) is
// ignored.
type journalRecord struct {
	Op        string          `json:"op"` // "submit" | "state"
	ID        string          `json:"id"`
	Principal string          `json:"principal,omitempty"`
	Priority  int             `json:"priority,omitempty"`
	Retries   int             `json:"retries,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	State     State           `json:"state,omitempty"`
	Err       string          `json:"error,omitempty"`
	Time      time.Time       `json:"t"`
}

func submitRecord(j Job, at time.Time) journalRecord {
	return journalRecord{
		Op:        "submit",
		ID:        j.ID,
		Principal: j.Principal,
		Priority:  j.Priority,
		Retries:   j.Retries,
		Payload:   j.Payload,
		Time:      at,
	}
}

func stateRecord(id string, s State, errMsg string, at time.Time) journalRecord {
	return journalRecord{Op: "state", ID: id, State: s, Err: errMsg, Time: at}
}

// journal appends records to an open file. Append errors are recorded,
// not returned: losing journal durability must not fail live traffic.
type journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	enc     *json.Encoder
	bytes   int64 // appended since open/compact
	lastErr error
}

func (j *journal) append(rec journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(rec)
}

func (j *journal) appendLocked(rec journalRecord) {
	if j.f == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.lastErr = err
		return
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.lastErr = err
		return
	}
	j.bytes += int64(len(line))
}

// size reports the bytes appended since the file was last opened or
// compacted (the on-disk size, since open/compact starts from empty).
func (j *journal) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// compact atomically rewrites the journal down to just the given live
// records: they are written to a temp file in the same directory which
// then replaces the journal via rename, so a crash at any point leaves
// either the old complete journal or the new complete one — and the
// replay path tolerates a torn tail either way.
func (j *journal) compact(live []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.lastErr
	}
	tmp := j.path + ".compact.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		j.lastErr = err
		return err
	}
	var written int64
	for _, rec := range live {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			j.lastErr = err
			return err
		}
		line = append(line, '\n')
		if _, err := f.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			j.lastErr = err
			return err
		}
		written += int64(len(line))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		j.lastErr = err
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		j.lastErr = err
		return err
	}
	// The old handle now points at an unlinked inode; switch appends to
	// the renamed file.
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.lastErr = err
		return err
	}
	old.Close()
	j.f = nf
	j.bytes = written
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.lastErr
	}
	err := j.f.Close()
	j.f = nil
	if j.lastErr != nil {
		return j.lastErr
	}
	return err
}

// replayJournal reads path and returns the jobs still pending (last
// state live) in original submit order, plus how many corrupt lines
// were skipped. A missing file means no pending work.
//
// Corruption tolerance: a torn final line is the expected shape of a
// crash mid-append, but a partial fsync after power loss can also leave
// garbage or truncated lines mid-file. Either way one record is
// JSON-undecodable; recovery skips it, counts it (surfaced as
// Stats.JournalSkipped), and keeps every decodable record — aborting
// the whole replay over one bad line would trade a little lost state
// for all of it.
func replayJournal(path string) ([]Job, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("execq: open journal: %w", err)
	}
	defer f.Close()

	type entry struct {
		job  Job
		last State
		seen bool
	}
	byID := make(map[string]*entry)
	var order []string
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++ // torn or corrupt line: skip it, keep recovering
			continue
		}
		switch rec.Op {
		case "submit":
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			byID[rec.ID] = &entry{
				job: Job{
					ID:        rec.ID,
					Principal: rec.Principal,
					Priority:  rec.Priority,
					Retries:   rec.Retries,
					Payload:   rec.Payload,
				},
				last: StateQueued,
				seen: true,
			}
			order = append(order, rec.ID)
		case "state":
			if e, ok := byID[rec.ID]; ok {
				e.last = rec.State
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("execq: read journal: %w", err)
	}
	var pending []Job
	for _, id := range order {
		e := byID[id]
		if e.seen && !e.last.Terminal() {
			pending = append(pending, e.job)
		}
	}
	return pending, skipped, nil
}

// resetJournal truncates path to just the pending submits (compaction)
// and returns the open journal for subsequent appends.
func resetJournal(path string, pending []Job) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("execq: create journal: %w", err)
	}
	j := &journal{path: path, f: f}
	now := time.Now()
	for _, job := range pending {
		j.append(submitRecord(job, now))
	}
	if j.lastErr != nil {
		f.Close()
		return nil, fmt.Errorf("execq: compact journal: %w", j.lastErr)
	}
	return j, nil
}
