package execstore

import (
	"container/heap"
	"math"
	"time"
)

// Weighted-deficit fair share (DRR, Shreedhar & Varghese 1996) across
// tenants. Each tenant owns a priority heap of its pending tasks; the
// scheduler walks the ring of active tenants, topping each tenant's
// deficit up by quantum×weight once per round and dispatching that
// tenant's head task while the deficit covers its normalized cost.
//
// Why DRR instead of FIFO-within-priority: with a single global queue a
// tenant submitting 10⁵ high-priority tasks starves everyone else for
// the whole backlog. Under DRR every active tenant is visited every
// round, so between two consecutive dispatches for tenant A at most
//
//	Σ_{B≠A active} ceil(quantum×w_B / minCost) tasks
//
// of other tenants can be served — a bound that depends on weights, not
// on backlog depth. StarvationBound computes it for the current
// configuration and the fair-share test enforces it under a
// 1000-tenant skewed load.
//
// Priority survives, but scoped to the tenant: it orders the tenant's
// own heap, so a tenant can front-run its own queue without touching
// anyone else's share.
type tenantQ struct {
	name    string
	weight  float64
	deficit float64
	charged bool // topped up this round already
	heap    taskHeap
	live    int // pending + leased, for the quota
	inRing  bool
	bucket  bucket
}

// taskHeap orders a tenant's pending tasks by priority desc, then
// admission sequence asc (FIFO within priority).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx = i
	h[j].hidx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.hidx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.hidx = -1
	*h = old[:n-1]
	return t
}

func (s *Store) tenantLocked(name string) *tenantQ {
	tq, ok := s.tenants[name]
	if !ok {
		tq = &tenantQ{name: name, weight: 1}
		s.tenants[name] = tq
	}
	return tq
}

// queuePendingLocked adds a pending task to its tenant's heap and puts
// the tenant on the dispatch ring if it was idle. A tenant rejoining
// the ring starts with zero deficit: it cannot bank credit while idle.
func (s *Store) queuePendingLocked(tq *tenantQ, t *task) {
	heap.Push(&tq.heap, t)
	if !tq.inRing {
		tq.inRing = true
		tq.deficit = 0
		tq.charged = false
		s.ring = append(s.ring, tq)
	}
}

// removePendingLocked removes a pending task from its tenant's heap
// (cancellation path).
func (s *Store) removePendingLocked(t *task) {
	tq := s.tenantLocked(t.Tenant)
	if t.hidx >= 0 && t.hidx < len(tq.heap) && tq.heap[t.hidx] == t {
		heap.Remove(&tq.heap, t.hidx)
	}
	t.hidx = -1
}

// dropFromRingLocked removes an emptied tenant from the dispatch ring,
// keeping ringIdx pointed at the next unvisited slot.
func (s *Store) dropFromRingLocked(i int) {
	tq := s.ring[i]
	tq.inRing = false
	tq.deficit = 0
	tq.charged = false
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.ringIdx > i {
		s.ringIdx--
	}
	if len(s.ring) == 0 {
		s.ringIdx = 0
	} else {
		s.ringIdx %= len(s.ring)
	}
}

// nextDispatchLocked picks the next task to lease under DRR, serving at
// most one task per call (the acquire loop re-enters for batches, so a
// large batch request still interleaves tenants fairly). Tasks gated by
// a retry backoff (notBefore in the future) are skipped without
// charging the tenant.
//
// Termination: a full pass over the ring where every tenant is either
// backoff-gated or under-funded dispatches nothing; if at least one
// tenant was merely under-funded we top every charged flag back up
// (virtual round) and retry, with the rounds needed bounded by
// maxCost/quantum×minWeight — in the worst case ~1e4 cheap arithmetic
// passes, no spinning on I/O.
func (s *Store) nextDispatchLocked(now time.Time) *task {
	if len(s.ring) == 0 {
		return nil
	}
	for rounds := 0; rounds < maxVirtualRounds; rounds++ {
		visited := 0
		underfunded := false
		for visited < len(s.ring) && len(s.ring) > 0 {
			if s.ringIdx >= len(s.ring) {
				s.ringIdx = 0
			}
			tq := s.ring[s.ringIdx]
			if len(tq.heap) == 0 {
				s.dropFromRingLocked(s.ringIdx)
				continue
			}
			if !tq.charged {
				tq.deficit += s.cfg.Quantum * tq.weight
				tq.charged = true
			}
			head := tq.heap[0]
			if head.notBefore.After(now) {
				// Backoff-gated: skip this tenant for now without
				// resetting its deficit.
				s.ringIdx = (s.ringIdx + 1) % len(s.ring)
				visited++
				continue
			}
			if tq.deficit+1e-9 >= head.costUnits {
				tq.deficit -= head.costUnits
				t := heap.Pop(&tq.heap).(*task)
				if len(tq.heap) == 0 {
					s.dropFromRingLocked(s.ringIdx)
				} else {
					// Stay on this tenant only until its deficit runs
					// out; the next call continues here, preserving the
					// "serve up to quantum per round" DRR shape.
					if tq.deficit+1e-9 < tq.heap[0].costUnits {
						tq.charged = false
						s.ringIdx = (s.ringIdx + 1) % len(s.ring)
					}
				}
				return t
			}
			underfunded = true
			tq.charged = false // eligible for top-up next round
			s.ringIdx = (s.ringIdx + 1) % len(s.ring)
			visited++
		}
		if !underfunded {
			return nil // everything dispatchable is backoff-gated
		}
	}
	return nil
}

// maxVirtualRounds bounds the deficit top-up retry loop: the costliest
// task (100 units) at the lightest weight (0.01) with quantum 1 needs
// 10⁴ top-ups.
const maxVirtualRounds = 100/0.01 + 1

// StarvationBound returns, for the store's current tenant weights and
// quantum, the maximum number of other-tenant dispatches that can occur
// between two consecutive dispatches for the named tenant while it has
// runnable work — the DRR latency bound. Tests assert observed gaps
// stay under it.
func (s *Store) StarvationBound(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := 1.0
	if tq, ok := s.tenants[tenant]; ok {
		w = tq.weight
	}
	// While the named tenant waits to accumulate cost units of deficit
	// (at most maxCost/(quantum*w) rounds), every other active tenant can
	// dispatch ceil(quantum·w_B/minCost)+1 tasks per round.
	const maxCost, minCost = 100.0, 0.1
	roundsToServe := math.Ceil(maxCost / (s.cfg.Quantum * w))
	var perRound float64
	for _, tq := range s.tenants {
		if tq.name == tenant || !tq.inRing {
			continue
		}
		perRound += math.Ceil(s.cfg.Quantum*tq.weight/minCost) + 1
	}
	return int(roundsToServe * perRound)
}
