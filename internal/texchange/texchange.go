// Package texchange is the in-memory tensor exchange between the
// simulation, analytics and ML stages of the workflow — the SmartSim
// pattern (Partee et al.): instead of handing every field through a
// NetCDF file on disk (write → directory watch → read), producers
// publish named, versioned float32 tensors and consumers block on
// stream-style readiness signaling, so the ESM→inference hot path is a
// zero-copy in-memory handoff.
//
// The exchange is bounded: resident tensor payloads are tracked
// against a configurable memory budget and, when it is exceeded, the
// least-recently-used tensors spill to disk with dls.CopyVerified-grade
// atomic writes (temp file, re-read verification, rename — see
// spill.go). A spilled tensor stays addressable; the next Get/Wait
// transparently loads it back. Occupancy, publishes, spills, loads and
// wait latency are all observable through internal/obs.
package texchange

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
)

// ErrClosed is returned by operations on a closed exchange.
var ErrClosed = errors.New("texchange: closed")

// ErrNotFound is returned by Take for names never published.
var ErrNotFound = errors.New("texchange: not found")

// Tensor is one named, versioned array. Data is handed off zero-copy:
// the publisher must not mutate it after Publish, and consumers must
// treat it as read-only (many consumers may share the same backing
// slice).
type Tensor struct {
	// Name addresses the tensor; republishing a name replaces the
	// previous version.
	Name string
	// Version is assigned by Publish: 1 on the first publish of a name,
	// incrementing on each replacement.
	Version uint64
	// Shape is the logical extent, outermost first. Kept resident even
	// when the payload spills.
	Shape []int
	// Data is the row-major payload.
	Data []float32
	// Meta carries small producer annotations (kept resident on spill).
	Meta map[string]string
}

// SizeBytes is the payload size counted against the memory budget.
func (t *Tensor) SizeBytes() int64 { return int64(len(t.Data)) * 4 }

// Elems returns the element count implied by Shape.
func (t *Tensor) Elems() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Config parameterizes an Exchange.
type Config struct {
	// Budget bounds resident payload bytes; when exceeded, LRU tensors
	// spill to SpillDir. Zero or negative means 256 MiB.
	Budget int64
	// SpillDir receives spilled payloads (created on demand). Empty
	// disables spilling, which makes Budget advisory: the exchange then
	// holds everything published in memory.
	SpillDir string
	// Metrics, when set, registers texchange_* instruments; nil records
	// into the void.
	Metrics *obs.Registry
	// Tracer, when set, emits texchange.publish/spill/load spans.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 256 << 20
	}
	return c
}

// entry is one resident or spilled tensor.
type entry struct {
	t       Tensor
	size    int64
	spilled bool
	spill   string        // payload file when spilled
	elem    *list.Element // position in the LRU list (front = hottest)
}

// Stats is a point-in-time snapshot of the exchange counters.
type Stats struct {
	// Tensors is the number of addressable names (resident + spilled).
	Tensors int
	// ResidentBytes is the in-memory payload occupancy.
	ResidentBytes int64
	// SpilledBytes is the payload volume currently on disk.
	SpilledBytes int64
	// Publishes counts Publish calls; Replaced counts publishes that
	// overwrote an existing name.
	Publishes, Replaced uint64
	// Spills / Loads count payload round-trips to and from SpillDir.
	Spills, Loads uint64
	// Waits counts Wait calls that had to block.
	Waits uint64
}

// Exchange is the bounded in-memory tensor store. All methods are safe
// for concurrent use.
type Exchange struct {
	cfg Config

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // *entry; front = most recently touched
	resident int64
	spilledB int64
	stats    Stats
	waiters  map[string][]chan struct{}
	subs     []*stream.Stream[string]
	closed   bool
	spillSeq int

	met struct {
		occupancy *obs.Gauge
		tensors   *obs.Gauge
		publishes *obs.Counter
		spills    *obs.Counter
		spillB    *obs.Counter
		loads     *obs.Counter
		waitSec   *obs.Histogram
	}
	tracer *obs.Tracer
}

// New builds an exchange.
func New(cfg Config) *Exchange {
	cfg = cfg.withDefaults()
	x := &Exchange{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
		waiters: make(map[string][]chan struct{}),
		tracer:  cfg.Tracer,
	}
	x.met.occupancy = cfg.Metrics.Gauge("texchange_occupancy_bytes",
		"Resident tensor payload bytes held by the exchange.")
	x.met.tensors = cfg.Metrics.Gauge("texchange_tensors",
		"Addressable tensors (resident plus spilled).")
	x.met.publishes = cfg.Metrics.Counter("texchange_publishes_total",
		"Tensors published to the exchange.")
	x.met.spills = cfg.Metrics.Counter("texchange_spills_total",
		"Tensor payloads spilled to disk under memory pressure.")
	x.met.spillB = cfg.Metrics.Counter("texchange_spill_bytes_total",
		"Bytes written to the spill directory.")
	x.met.loads = cfg.Metrics.Counter("texchange_loads_total",
		"Tensor payloads loaded back from the spill directory.")
	x.met.waitSec = cfg.Metrics.Histogram("texchange_wait_seconds",
		"Time consumers spent blocked in Wait for a tensor to appear.",
		[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5})
	return x
}

// Publish stores t under t.Name, replacing any previous version, and
// returns the assigned version. The payload slice is taken over
// zero-copy; the caller must not mutate it afterwards.
func (x *Exchange) Publish(t Tensor) (uint64, error) {
	if t.Name == "" {
		return 0, fmt.Errorf("texchange: tensor needs a name")
	}
	sp := x.tracer.Start("texchange.publish", obs.Attr{Key: "tensor", Value: t.Name})
	defer sp.End()
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return 0, ErrClosed
	}
	e, ok := x.entries[t.Name]
	if ok {
		t.Version = e.t.Version + 1
		x.dropPayloadLocked(e)
		e.t = t
		e.size = t.SizeBytes()
		e.spilled = false
		x.resident += e.size
		x.lru.MoveToFront(e.elem)
		x.stats.Replaced++
	} else {
		t.Version = 1
		e = &entry{t: t, size: t.SizeBytes()}
		e.elem = x.lru.PushFront(e)
		x.entries[t.Name] = e
		x.resident += e.size
	}
	x.stats.Publishes++
	x.met.publishes.Inc()
	x.notifyLocked(t.Name)
	subs := append([]*stream.Stream[string](nil), x.subs...)
	err := x.enforceBudgetLocked()
	x.gaugesLocked()
	x.mu.Unlock()
	for _, s := range subs {
		_ = s.Publish(t.Name)
	}
	if err != nil {
		return t.Version, err
	}
	return t.Version, nil
}

// Get returns the current version of name without blocking, loading the
// payload back from spill if needed. ok is false when the name has
// never been published (or was removed).
func (x *Exchange) Get(name string) (Tensor, bool, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.entries[name]
	if !ok {
		return Tensor{}, false, nil
	}
	if err := x.materializeLocked(e); err != nil {
		return Tensor{}, true, err
	}
	return e.t, true, nil
}

// Wait blocks until name has been published with at least minVersion
// (0 and 1 are equivalent), the context ends, or the exchange closes.
func (x *Exchange) Wait(ctx context.Context, name string, minVersion uint64) (Tensor, error) {
	start := time.Now()
	blocked := false
	x.mu.Lock()
	for {
		if e, ok := x.entries[name]; ok && e.t.Version >= minVersion {
			err := x.materializeLocked(e)
			t := e.t
			x.mu.Unlock()
			if blocked {
				x.met.waitSec.Observe(time.Since(start).Seconds())
			}
			return t, err
		}
		if x.closed {
			x.mu.Unlock()
			return Tensor{}, ErrClosed
		}
		ch := make(chan struct{})
		x.waiters[name] = append(x.waiters[name], ch)
		if !blocked {
			blocked = true
			x.stats.Waits++
		}
		x.mu.Unlock()
		select {
		case <-ctx.Done():
			return Tensor{}, ctx.Err()
		case <-ch:
		}
		x.mu.Lock()
	}
}

// Take returns the current version of name and removes it from the
// exchange — the single-consumer handoff pattern. It does not block;
// an unpublished name reports ErrNotFound.
func (x *Exchange) Take(name string) (Tensor, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.entries[name]
	if !ok {
		return Tensor{}, ErrNotFound
	}
	if err := x.materializeLocked(e); err != nil {
		return Tensor{}, err
	}
	t := e.t
	x.removeLocked(e)
	x.gaugesLocked()
	return t, nil
}

// Remove deletes name (and any spill file) and reports whether it
// existed.
func (x *Exchange) Remove(name string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	e, ok := x.entries[name]
	if !ok {
		return false
	}
	x.removeLocked(e)
	x.gaugesLocked()
	return true
}

// Subscribe returns a stream that receives the name of every tensor
// published from now on, in publish order. The stream closes with the
// exchange.
func (x *Exchange) Subscribe() *stream.Stream[string] {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := stream.New[string]()
	if x.closed {
		s.Close()
		return s
	}
	x.subs = append(x.subs, s)
	return s
}

// Names lists the addressable tensor names (unsorted).
func (x *Exchange) Names() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, 0, len(x.entries))
	for n := range x.entries {
		out = append(out, n)
	}
	return out
}

// Stats snapshots the exchange counters.
func (x *Exchange) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := x.stats
	s.Tensors = len(x.entries)
	s.ResidentBytes = x.resident
	s.SpilledBytes = x.spilledB
	return s
}

// Close rejects further publishes, wakes every waiter with ErrClosed,
// closes subscriber streams, and deletes spill files.
func (x *Exchange) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	for name, chans := range x.waiters {
		for _, ch := range chans {
			close(ch)
		}
		delete(x.waiters, name)
	}
	subs := x.subs
	x.subs = nil
	var spills []string
	for _, e := range x.entries {
		if e.spilled {
			spills = append(spills, e.spill)
		}
	}
	x.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
	for _, p := range spills {
		_ = os.Remove(p)
	}
}

// --- locked internals ----------------------------------------------------

// notifyLocked wakes every Wait blocked on name.
func (x *Exchange) notifyLocked(name string) {
	for _, ch := range x.waiters[name] {
		close(ch)
	}
	delete(x.waiters, name)
}

// removeLocked unlinks e and frees its payload.
func (x *Exchange) removeLocked(e *entry) {
	x.dropPayloadLocked(e)
	x.lru.Remove(e.elem)
	delete(x.entries, e.t.Name)
}

// dropPayloadLocked releases e's payload accounting (memory or spill
// file), leaving the entry itself linked.
func (x *Exchange) dropPayloadLocked(e *entry) {
	if e.spilled {
		_ = os.Remove(e.spill)
		x.spilledB -= e.size
		e.spilled = false
		e.spill = ""
	} else {
		x.resident -= e.size
	}
	e.t.Data = nil
}

// materializeLocked ensures e's payload is resident, loading it back
// from the spill file when needed, and touches the LRU position.
func (x *Exchange) materializeLocked(e *entry) error {
	x.lru.MoveToFront(e.elem)
	if !e.spilled {
		return nil
	}
	sp := x.tracer.Start("texchange.load", obs.Attr{Key: "tensor", Value: e.t.Name})
	data, err := readSpill(e.spill, int(e.size/4))
	sp.EndErr(err)
	if err != nil {
		return fmt.Errorf("texchange: load %q: %w", e.t.Name, err)
	}
	_ = os.Remove(e.spill)
	e.spilled = false
	e.spill = ""
	e.t.Data = data
	x.spilledB -= e.size
	x.resident += e.size
	x.stats.Loads++
	x.met.loads.Inc()
	return x.enforceBudgetLocked()
}

// enforceBudgetLocked spills least-recently-touched payloads until the
// resident set fits the budget. The hottest entry is never spilled, so
// a single tensor larger than the budget stays usable.
func (x *Exchange) enforceBudgetLocked() error {
	if x.cfg.SpillDir == "" {
		return nil
	}
	for x.resident > x.cfg.Budget {
		var victim *entry
		for el := x.lru.Back(); el != nil && el != x.lru.Front(); el = el.Prev() {
			if e := el.Value.(*entry); !e.spilled && len(e.t.Data) > 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return nil
		}
		if err := x.spillLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// spillLocked writes e's payload to the spill directory atomically and
// drops the resident copy.
func (x *Exchange) spillLocked(e *entry) error {
	if err := os.MkdirAll(x.cfg.SpillDir, 0o755); err != nil {
		return fmt.Errorf("texchange: spill dir: %w", err)
	}
	x.spillSeq++
	path := filepath.Join(x.cfg.SpillDir, fmt.Sprintf("t%06d.spill", x.spillSeq))
	sp := x.tracer.Start("texchange.spill", obs.Attr{Key: "tensor", Value: e.t.Name})
	err := writeSpill(path, e.t.Data)
	sp.EndErr(err)
	if err != nil {
		return fmt.Errorf("texchange: spill %q: %w", e.t.Name, err)
	}
	e.spilled = true
	e.spill = path
	e.t.Data = nil
	x.resident -= e.size
	x.spilledB += e.size
	x.stats.Spills++
	x.met.spills.Inc()
	x.met.spillB.Add(float64(e.size))
	return nil
}

// gaugesLocked refreshes the occupancy gauges.
func (x *Exchange) gaugesLocked() {
	x.met.occupancy.Set(float64(x.resident))
	x.met.tensors.Set(float64(len(x.entries)))
}
