package indices

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/datacube"
	"repro/internal/grid"
)

// rawAR reproduces the AR(1) offset stream seeded directly with seed —
// what the pre-fix code produced for year 0, where seed^int64(0)*99991
// collapsed to the raw seed.
func rawAR(seed int64, days int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	offsets := make([]float64, days)
	for d := 1; d < days; d++ {
		offsets[d] = 0.7*offsets[d-1] + rng.NormFloat64()*1.2
	}
	return offsets
}

// TestYearNoiseSeedMixing is the regression test for the degenerate
// seed expression: year 0's stream must not collapse to the raw seed,
// and distinct years must produce distinct streams.
func TestYearNoiseSeedMixing(t *testing.T) {
	const seed, days = 42, 30
	equal := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if equal(yearNoise(seed, 0, days), rawAR(seed, days)) {
		t.Errorf("year 0 noise degenerates to the raw seed stream")
	}
	if equal(yearNoise(seed, 0, days), yearNoise(seed, 1, days)) {
		t.Errorf("years 0 and 1 share a noise stream")
	}
	if equal(yearNoise(seed, 1, days), yearNoise(seed+1, 1, days)) {
		t.Errorf("seeds %d and %d share a noise stream", seed, seed+1)
	}
	if !equal(yearNoise(seed, 3, days), yearNoise(seed, 3, days)) {
		t.Errorf("yearNoise is not deterministic")
	}
}

// TestPercentileBaselineParallelGenerators runs the baseline build on
// a wide multi-server engine so the cube generators execute truly
// concurrently across fragments. Under -race this is the regression
// test for the shared-*rand.Rand capture: the pre-fix closure handed
// one rng to every fragment.
func TestPercentileBaselineParallelGenerators(t *testing.T) {
	e := datacube.NewEngine(datacube.Config{Servers: 4, FragmentsPerCube: 16})
	defer e.Close()
	g := grid.Grid{NLat: 8, NLon: 8}
	b, err := BuildPercentileBaseline(e, g, 20, 3, 42)
	if err != nil {
		t.Fatalf("BuildPercentileBaseline: %v", err)
	}
	if b.TX90.ImplicitLen() != 20 || b.TN10.ImplicitLen() != 20 {
		t.Errorf("baseline day counts = %d/%d, want 20", b.TX90.ImplicitLen(), b.TN10.ImplicitLen())
	}
	// Determinism across a rebuild on a second engine: same seed must
	// reproduce the same climatology bit for bit.
	e2 := datacube.NewEngine(datacube.Config{Servers: 2, FragmentsPerCube: 5})
	defer e2.Close()
	b2, err := BuildPercentileBaseline(e2, g, 20, 3, 42)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	v1, err := b.TX90.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := b2.TX90.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("baseline not deterministic across engines at day %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

// TestRNGUsingGeneratorPerFragmentStreams documents the safe pattern
// for generators that genuinely need randomness per cell: derive an
// independent stream per call from mixed seeds instead of capturing a
// shared *rand.Rand. Run under -race it proves the pattern is clean on
// a multi-server engine with per-fragment latency forcing real overlap.
func TestRNGUsingGeneratorPerFragmentStreams(t *testing.T) {
	e := datacube.NewEngine(datacube.Config{
		Servers: 4, FragmentsPerCube: 12, FragmentLatency: 100 * time.Microsecond,
	})
	defer e.Close()
	gen := func(row, day int) float32 {
		rng := rand.New(rand.NewSource(mixSeed(int64(row)*1023+7, day)))
		return float32(rng.NormFloat64())
	}
	c, err := e.NewCubeFromFunc("noise",
		[]datacube.Dimension{{Name: "cell", Size: 48}},
		datacube.Dimension{Name: "t", Size: 10}, gen)
	if err != nil {
		t.Fatalf("NewCubeFromFunc: %v", err)
	}
	// Same derivation outside the engine must reproduce the cube exactly.
	row, err := c.Row(5)
	if err != nil {
		t.Fatal(err)
	}
	for day := range row {
		if want := gen(5, day); row[day] != want {
			t.Fatalf("row 5 day %d = %v, want %v", day, row[day], want)
		}
	}
}
