package datacube

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// RowOp reduces one row's array (typically a time series) to a single
// value. Named row operations keep reductions serializable across the
// client/server boundary, like Ophidia's fixed operator set.
type RowOp func(row []float32, params []float64) float64

var (
	rowOpsMu sync.RWMutex
	rowOps   = map[string]RowOp{}
)

// RegisterRowOp installs a named reduction. Built-ins cover the
// operations the workflow needs; domain packages may add more.
func RegisterRowOp(name string, op RowOp) error {
	rowOpsMu.Lock()
	defer rowOpsMu.Unlock()
	if _, dup := rowOps[name]; dup {
		return fmt.Errorf("datacube: row op %q already registered", name)
	}
	rowOps[name] = op
	return nil
}

// LookupRowOp returns the named reduction.
func LookupRowOp(name string) (RowOp, bool) {
	rowOpsMu.RLock()
	defer rowOpsMu.RUnlock()
	op, ok := rowOps[name]
	return op, ok
}

// RowOpNames lists registered reductions, sorted.
func RowOpNames() []string {
	rowOpsMu.RLock()
	defer rowOpsMu.RUnlock()
	out := make([]string, 0, len(rowOps))
	for k := range rowOps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	must := func(name string, op RowOp) {
		if err := RegisterRowOp(name, op); err != nil {
			panic(err)
		}
	}
	must("max", func(row []float32, _ []float64) float64 {
		m := math.Inf(-1)
		for _, v := range row {
			if float64(v) > m {
				m = float64(v)
			}
		}
		return m
	})
	must("min", func(row []float32, _ []float64) float64 {
		m := math.Inf(1)
		for _, v := range row {
			if float64(v) < m {
				m = float64(v)
			}
		}
		return m
	})
	must("sum", func(row []float32, _ []float64) float64 {
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		return s
	})
	must("avg", func(row []float32, _ []float64) float64 {
		if len(row) == 0 {
			return math.NaN()
		}
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		return s / float64(len(row))
	})
	must("std", func(row []float32, _ []float64) float64 {
		if len(row) == 0 {
			return math.NaN()
		}
		var s float64
		for _, v := range row {
			s += float64(v)
		}
		mean := s / float64(len(row))
		var ss float64
		for _, v := range row {
			d := float64(v) - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(row)))
	})
	// count_above(threshold): elements strictly above params[0]
	must("count_above", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		n := 0
		for _, v := range row {
			if float64(v) > th {
				n++
			}
		}
		return float64(n)
	})
	must("count_below", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		n := 0
		for _, v := range row {
			if float64(v) < th {
				n++
			}
		}
		return float64(n)
	})
	// longest_run_above(threshold): length of the longest consecutive
	// run of values strictly above the threshold — the heat-wave
	// duration primitive.
	must("longest_run_above", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		best, cur := 0, 0
		for _, v := range row {
			if float64(v) > th {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 0
			}
		}
		return float64(best)
	})
	must("longest_run_below", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		best, cur := 0, 0
		for _, v := range row {
			if float64(v) < th {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 0
			}
		}
		return float64(best)
	})
	// count_runs_above(threshold, minLen): number of maximal runs above
	// the threshold lasting at least minLen — the wave-count primitive.
	must("count_runs_above", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		minLen := int(param(params, 1, 1))
		n, cur := 0, 0
		for _, v := range row {
			if float64(v) > th {
				cur++
			} else {
				if cur >= minLen {
					n++
				}
				cur = 0
			}
		}
		if cur >= minLen {
			n++
		}
		return float64(n)
	})
	must("count_runs_below", func(row []float32, params []float64) float64 {
		th := param(params, 0, 0)
		minLen := int(param(params, 1, 1))
		n, cur := 0, 0
		for _, v := range row {
			if float64(v) < th {
				cur++
			} else {
				if cur >= minLen {
					n++
				}
				cur = 0
			}
		}
		if cur >= minLen {
			n++
		}
		return float64(n)
	})
	// quantile(q): linear-interpolated q-quantile of the row.
	must("quantile", func(row []float32, params []float64) float64 {
		if len(row) == 0 {
			return math.NaN()
		}
		q := param(params, 0, 0.5)
		sorted := make([]float64, len(row))
		for i, v := range row {
			sorted[i] = float64(v)
		}
		sort.Float64s(sorted)
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return sorted[lo]
		}
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	})
}

func param(params []float64, i int, def float64) float64 {
	if i < len(params) {
		return params[i]
	}
	return def
}
