// Ensemble runs an initial-condition ensemble of the synthetic ESM —
// the workload class the paper's §3 singles out ("group of runs of the
// same ESM with different initial conditions") — computing heat-wave
// indices per member concurrently on the task runtime, aggregating
// them into ensemble mean/spread/agreement maps on the datacube
// engine, and contrasting the fixed-threshold indices with the ETCCDI
// percentile indices (TX90p/WSDI) on one member.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/datacube"
	"repro/internal/ensemble"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/indices"
	"repro/internal/stream"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "ensemble-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("working directory: %s\n\n", dir)

	g := grid.Grid{NLat: 24, NLon: 48}
	const days = 20
	base := esm.Config{
		Grid: g, StartYear: 2040, Years: 1, DaysPerYear: days, Seed: 500,
		Events: &esm.EventConfig{
			HeatWavesPerYear: 2, ColdSpellsPerYear: 0, CyclonesPerYear: 0,
			WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 9,
		},
	}

	engine := datacube.NewEngine(datacube.Config{Servers: 4})
	defer engine.Close()

	// --- ensemble of 4 members, run concurrently -------------------------
	fmt.Println("running a 4-member initial-condition ensemble...")
	res, err := ensemble.Run(engine, ensemble.Config{Base: base, Members: 4, Workers: 4, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Stats.Delete()
	fmt.Printf("%-8s %10s %14s\n", "member", "seed", "hw mean/cell")
	for _, m := range res.Members {
		fmt.Printf("%-8d %10d %14.4f\n", m.Member, m.Seed, m.MeanNumber)
	}

	meanField, err := indices.CubeToField(res.Stats.Mean, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nensemble-mean Heat Wave Number map:")
	fmt.Println(viz.ASCIIMap(meanField, 64))
	agreeField, err := indices.CubeToField(res.Stats.Agreement, g)
	if err != nil {
		log.Fatal(err)
	}
	pngPath := dir + "/ensemble_agreement.png"
	if err := viz.WritePNG(pngPath, agreeField, 0, 1, viz.Heat, 6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement map written to %s\n\n", pngPath)

	// --- ETCCDI percentile indices on member 0 ---------------------------
	fmt.Println("ETCCDI percentile indices (member 0):")
	pb, err := indices.BuildPercentileBaseline(engine, g, days, 10, 77)
	if err != nil {
		log.Fatal(err)
	}
	memberDir := dir + "/member00"
	entries, err := os.ReadDir(memberDir)
	if err != nil {
		log.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, memberDir+"/"+e.Name())
	}
	batches := stream.NewYearBatcher(days, esm.YearOf).Add(files...)
	temp, err := engine.ImportFiles(batches[0].Files, "TREFHT", "time")
	if err != nil {
		log.Fatal(err)
	}
	et, err := indices.ETCCDI(temp, pb, indices.Params{DaysPerYear: days})
	if err != nil {
		log.Fatal(err)
	}
	defer et.Delete()
	printMean := func(name string, c *datacube.Cube) {
		agg, err := c.AggregateRows("avg")
		if err != nil {
			log.Fatal(err)
		}
		defer agg.Delete()
		red, err := agg.Reduce("avg")
		if err != nil {
			log.Fatal(err)
		}
		defer red.Delete()
		v, err := red.Scalar()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s mean = %.4f\n", name, v)
	}
	printMean("TX90p", et.TX90p)
	printMean("TN10p", et.TN10p)
	printMean("WSDI", et.WSDI)
	printMean("CSDI", et.CSDI)

	// --- precipitation extremes on member 0 ------------------------------
	fmt.Println("\nprecipitation extremes (member 0):")
	daily, err := indices.DailyPrecipFromFiles(engine, batches[0].Files, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer daily.Delete()
	p95, err := indices.BuildPrecipBaseline(engine, base, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer p95.Delete()
	pr, err := indices.PrecipIndices(daily, p95)
	if err != nil {
		log.Fatal(err)
	}
	defer pr.Delete()
	printMean("PRCPTOT", pr.PRCPTOT)
	printMean("Rx1day", pr.Rx1day)
	printMean("CDD", pr.CDD)
	printMean("R95pTOT", pr.R95pTOT)
}
