package datacube

import (
	"math"
	"testing"
)

// FuzzCompile hardens the expression parser: arbitrary input must
// either fail cleanly or produce an evaluable expression — never panic.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"x", "1+2*3", "x>0 ? 1 : 0", "pow(x,2)", "min(x, max(1,2))",
		"((x))", "-x", "!x", "x && 1 || 0", "1e300*1e300", ".5",
		"x ? : 1", "abs(", ")(", "x x", "? :", "1..2", "e", "xx",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return
		}
		for _, x := range []float64{0, 1, -1, math.Inf(1), math.NaN(), 1e-300} {
			_ = e.Eval(x) // must not panic
		}
	})
}
