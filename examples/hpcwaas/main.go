// Hpcwaas walks the full HPC-Workflows-as-a-Service lifecycle of the
// paper's Figure 1 against a live REST service: the developer registers
// the climate-extremes workflow with its TOSCA topology; the deployer
// (Yorc role) builds container images through the Image Creation
// service and stages data through the Data Logistics Service; the final
// user then deploys and runs the workflow with plain HTTP calls, never
// touching the cluster directly — "climate scientists can focus more on
// the results of the simulations ... rather than handling complex
// workflows and setting up the software environment."
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dls"
	"repro/internal/esm"
	"repro/internal/grid"
	"repro/internal/hpcwaas"
	"repro/internal/imagebuilder"
	"repro/internal/tosca"
)

func main() {
	log.SetFlags(0)
	workDir, err := os.MkdirTemp("", "hpcwaas-")
	if err != nil {
		log.Fatal(err)
	}

	// --- developer side: register the workflow --------------------------
	registry := hpcwaas.NewRegistry()
	entry := hpcwaas.Entry{
		Name:        "climate-extremes",
		Version:     "1.0",
		Description: "extreme events analysis on ESM projection data",
		Topology:    tosca.ClimateTopology("zeus"),
		App:         climateApp(workDir),
	}
	if err := registry.Register(entry); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered workflow 'climate-extremes' (TOSCA topology attached)")

	// --- site services: image builder + data logistics ------------------
	deployer := hpcwaas.NewDeployer(nil, nil, imagebuilder.Platform{Arch: "x86_64", MPI: "openmpi4"})
	climSrc := filepath.Join(workDir, "catalog")
	os.MkdirAll(climSrc, 0o755)
	os.WriteFile(filepath.Join(climSrc, "climatology.nc"), []byte("20y baseline"), 0o644)
	deployer.DLS.Catalog.Register(dls.Dataset{Name: "climatology", Root: climSrc, Files: []string{"climatology.nc"}})
	deployer.Pipelines["stage-in-climatology"] = dls.Pipeline{
		Name:  "stage-in-climatology",
		Steps: []dls.Step{{Kind: "stage_in", Dataset: "climatology", Dir: filepath.Join(workDir, "staged")}},
	}

	svc := hpcwaas.NewService(registry, deployer)
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	fmt.Printf("HPCWaaS execution API listening at %s\n\n", server.URL)

	// --- user side: pure REST from here on -------------------------------
	var workflows []map[string]any
	getJSON(server.URL+"/api/workflows", &workflows)
	fmt.Printf("GET /api/workflows -> %d workflow(s): %v\n", len(workflows), workflows[0]["name"])

	var dep map[string]any
	postJSON(server.URL+"/api/workflows/climate-extremes/deploy",
		map[string]any{"target": "zeus"}, &dep)
	fmt.Printf("POST .../deploy -> %s on %s (%s)\n", dep["ID"], dep["Target"], dep["Status"])
	fmt.Println("deployment log:")
	for _, line := range dep["Log"].([]any) {
		fmt.Printf("  %s\n", line)
	}

	var ex map[string]any
	postJSON(server.URL+"/api/executions", map[string]any{
		"workflow": "climate-extremes",
		"params":   map[string]string{"years": "1", "days_per_year": "12", "seed": "42"},
	}, &ex)
	execID := ex["id"].(string)
	fmt.Printf("\nPOST /api/executions -> %s (%s)\n", execID, ex["status"])

	for {
		getJSON(server.URL+"/api/executions/"+execID, &ex)
		if ex["status"] != "RUNNING" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("GET /api/executions/%s -> %s\n", execID, ex["status"])
	if ex["status"] != "DONE" {
		log.Fatalf("execution failed: %v", ex["error"])
	}
	results := ex["results"].(map[string]any)
	fmt.Println("results:")
	for k, v := range results {
		fmt.Printf("  %-22s %v\n", k, v)
	}

	var un map[string]any
	postJSON(server.URL+"/api/deployments/"+dep["ID"].(string)+"/undeploy", map[string]any{}, &un)
	fmt.Printf("\nPOST .../undeploy -> %s\n", un["Status"])
}

// climateApp adapts the core workflow as an HPCWaaS application: input
// parameters arrive as strings from the REST call.
func climateApp(workDir string) hpcwaas.AppFunc {
	return func(params map[string]string) (map[string]string, error) {
		years := atoiDefault(params["years"], 1)
		days := atoiDefault(params["days_per_year"], 12)
		seed := int64(atoiDefault(params["seed"], 1))
		outDir, err := os.MkdirTemp(workDir, "run-")
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Grid:        grid.Grid{NLat: 24, NLon: 48},
			Years:       years,
			DaysPerYear: days,
			Seed:        seed,
			OutputDir:   outDir,
			Events: &esm.EventConfig{
				HeatWavesPerYear: 1, ColdSpellsPerYear: 1, CyclonesPerYear: 1,
				WaveAmplitudeK: 9, WaveMinDays: 6, WaveMaxDays: 7,
			},
		})
		if err != nil {
			return nil, err
		}
		return map[string]string{
			"years_processed":  strconv.Itoa(len(res.Years)),
			"files_produced":   strconv.Itoa(res.FilesProduced),
			"final_map":        res.FinalMapPath,
			"hw_mean_year_1":   fmt.Sprintf("%.4f", res.Years[0].HWNumberMean),
			"tracker_tracks":   strconv.Itoa(res.Years[0].TrackerTracks),
			"output_directory": outDir,
		}, nil
	}
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body, v any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s -> %d: %v", url, resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
