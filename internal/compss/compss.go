// Package compss implements a task-based parallel programming model in
// the mold of PyCOMPSs/COMPSs (Tejedor et al. 2017; Badia et al. 2015),
// the orchestrator of the paper's climate workflow.
//
// The programming model mirrors the paper's §4.2.1:
//
//   - functions are registered as tasks, with per-parameter
//     directionality (IN, OUT, INOUT) declared at invocation;
//   - every invocation becomes a node in a task graph; data dependencies
//     are inferred automatically from directionality (a reader depends on
//     the last writer, a writer on the last writer and on intervening
//     readers);
//   - the runtime executes tasks asynchronously on a worker pool as soon
//     as their dependencies are satisfied, exploiting the potential
//     parallelism of the graph;
//   - results are futures; calling Get synchronizes, like PyCOMPSs'
//     compss_wait_on;
//   - per-task fault-tolerance policies (fail-fast, retry, ignore,
//     cancel-successors) follow Ejarque et al. 2020;
//   - task-level checkpointing enables recovering a failed execution
//     from the last checkpointed task (Vergés et al. 2023).
package compss

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/obs"
)

// Direction declares how a task uses a parameter, as the paper's @task
// decorator does ("IN indicates data used by the task, OUT indicates
// data created in the task, INOUT indicates data modified in the task").
type Direction int

// Parameter directionality.
const (
	DirIn Direction = iota
	DirOut
	DirInOut
)

func (d Direction) String() string {
	switch d {
	case DirIn:
		return "IN"
	case DirOut:
		return "OUT"
	case DirInOut:
		return "INOUT"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// FailurePolicy selects what the runtime does when a task exhausts its
// retries, mirroring PyCOMPSs' on_failure clause.
type FailurePolicy int

// Failure policies.
const (
	// FailFast aborts the whole workflow (PyCOMPSs default behaviour of
	// stopping on task failure).
	FailFast FailurePolicy = iota
	// Ignore resolves the task's outputs to nil and lets successors run.
	Ignore
	// CancelSuccessors cancels every transitive successor but lets
	// independent branches continue.
	CancelSuccessors
)

func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "FAIL_FAST"
	case Ignore:
		return "IGNORE"
	case CancelSuccessors:
		return "CANCEL_SUCCESSORS"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// Constraints expresses the resources a task needs, like the paper's
// @constraint decorator.
type Constraints struct {
	// Cores this task occupies while running; zero means 1.
	Cores int
	// MemoryMB of memory required; advisory for placement.
	MemoryMB int
}

func (c Constraints) cores() int {
	if c.Cores <= 0 {
		return 1
	}
	return c.Cores
}

// TaskFunc is the body of a task. args holds one resolved value per
// declared parameter (IN and INOUT parameters carry the input value, OUT
// parameters carry nil). The returned slice must have exactly the number
// of outputs declared in the task definition.
type TaskFunc func(args []any) ([]any, error)

// TaskDef declares a reusable task, the analogue of a @task-decorated
// Python function.
type TaskDef struct {
	// Name identifies the task; it labels graph nodes and checkpoint
	// records and must be unique within a runtime.
	Name string
	// Fn is the task body.
	Fn TaskFunc
	// Outputs is the number of values Fn returns on success.
	Outputs int
	// Constraints describes resource needs.
	Constraints Constraints
	// OnFailure selects the failure policy once retries are exhausted.
	OnFailure FailurePolicy
	// Retries is how many times a failed execution is retried before the
	// failure policy applies. Retries are separated by capped exponential
	// backoff with jitter (Config.BaseBackoff/MaxBackoff); errors marked
	// Permanent skip the remaining budget.
	Retries int
	// Timeout bounds one execution attempt; zero means no deadline. A
	// timed-out attempt counts as a failed attempt (retryable); the
	// abandoned attempt's result is discarded safely.
	Timeout time.Duration
	// Ephemeral marks a task whose outputs are live in-process values
	// (pointers, handles) that cannot meaningfully be persisted: the
	// checkpointer skips it and it always re-runs on recovery.
	Ephemeral bool
	// Weight is an abstract cost for critical-path analysis (default 1).
	Weight float64
}

// ErrCancelled is reported by futures of tasks cancelled by a
// CancelSuccessors policy or a workflow abort.
var ErrCancelled = errors.New("compss: task cancelled")

// ErrWorkflowFailed is reported by Barrier when a FailFast task failed.
var ErrWorkflowFailed = errors.New("compss: workflow failed")

// ErrTaskTimeout marks an attempt that exceeded its TaskDef.Timeout.
var ErrTaskTimeout = errors.New("compss: task attempt timed out")

// Permanent marks err as non-retryable: the retry loop applies the
// failure policy immediately instead of burning its budget. It is the
// shared marker from internal/chaos, re-exported so task bodies do not
// need to import chaos to classify their own errors.
func Permanent(err error) error { return chaos.Permanent(err) }

// IsPermanent reports whether err carries the Permanent marker anywhere
// in its chain.
func IsPermanent(err error) bool { return chaos.IsPermanent(err) }

// taskState tracks one invocation through its lifecycle.
type taskState int

const (
	statePending taskState = iota
	stateReady
	stateRunning
	stateDone
	stateFailed
	stateCancelled
	stateIgnored
	stateRecovered // restored from checkpoint, not executed
)

func (s taskState) String() string {
	switch s {
	case statePending:
		return "PENDING"
	case stateReady:
		return "READY"
	case stateRunning:
		return "RUNNING"
	case stateDone:
		return "DONE"
	case stateFailed:
		return "FAILED"
	case stateCancelled:
		return "CANCELLED"
	case stateIgnored:
		return "IGNORED"
	case stateRecovered:
		return "RECOVERED"
	default:
		return fmt.Sprintf("taskState(%d)", int(s))
	}
}

// invocation is one node of the running graph.
type invocation struct {
	id      dag.NodeID
	seq     int // deterministic sequence number for checkpointing
	def     *TaskDef
	params  []Param
	outs    []*Future
	state   taskState
	missing int // unresolved dependencies
	deps    map[dag.NodeID]struct{}
	err     error
	node    string // cluster node it ran on, if placed
	started time.Time
	ended   time.Time
}

// Future is the placeholder for a task output. Passing a Future to a
// later invocation as an IN parameter creates a data dependency; calling
// Get blocks until the producing task finishes (synchronization).
type Future struct {
	rt       *Runtime
	producer dag.NodeID
	index    int
	done     chan struct{}
	val      any
	err      error
	key      string
	size     int64
}

// Get blocks until the value is available and returns it. A cancelled or
// failed producer yields a non-nil error; an Ignored failure yields
// (nil, nil) so downstream code can proceed, matching PyCOMPSs semantics
// where ignored failures propagate null objects.
func (f *Future) Get() (any, error) {
	<-f.done
	return f.val, f.err
}

// TryGet returns the value if already resolved without blocking.
func (f *Future) TryGet() (any, bool) {
	select {
	case <-f.done:
		return f.val, true
	default:
		return nil, false
	}
}

// Done reports whether the future has resolved.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

func (f *Future) resolve(v any, err error) {
	f.val, f.err = v, err
	close(f.done)
}

// Shared is a named mutable datum managed by the runtime. Unlike a
// Future (single assignment), a Shared value can be modified by a chain
// of INOUT tasks; the runtime serializes writers and orders readers
// against them, exactly as the COMPSs runtime versions its data.
type Shared struct {
	name       string
	mu         sync.Mutex
	val        any
	lastWriter dag.NodeID
	readers    []dag.NodeID // readers since the last write
	version    int
}

// NewShared wraps an initial value for dependency-tracked sharing.
func (r *Runtime) NewShared(name string, initial any) *Shared {
	return &Shared{name: name, val: initial}
}

// Value returns the current value. Call Barrier first for a quiescent
// read.
func (s *Shared) Value() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Version returns how many writes the datum has received.
func (s *Shared) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Param is one argument of an invocation: a value (or Future or Shared)
// plus its declared direction.
type Param struct {
	dir  Direction
	val  any
	key  string // data-locality key, optional
	size int64
}

// In declares a read-only parameter. v may be a literal, a *Future or a
// *Shared.
func In(v any) Param { return Param{dir: DirIn, val: v} }

// InOut declares a read-write parameter; v must be a *Shared.
func InOut(s *Shared) Param { return Param{dir: DirInOut, val: s} }

// OutShared declares a write-only parameter targeting a *Shared.
func OutShared(s *Shared) Param { return Param{dir: DirOut, val: s} }

// WithKey attaches a data-locality key and size to the parameter, used
// by cluster-aware placement.
func (p Param) WithKey(key string, size int64) Param {
	p.key, p.size = key, size
	return p
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of core slots in the pool; zero means 4.
	Workers int
	// Cluster, when set, enables data-locality placement and transfer
	// accounting against the simulated machine.
	Cluster *cluster.Cluster
	// Checkpointer, when set, records completed tasks and replays them on
	// the next run.
	Checkpointer Checkpointer
	// BaseBackoff is the delay before the first retry of a failed task
	// attempt; each further retry doubles it. Zero means 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential retry delay. Zero means 2s.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter; fixed seeds give reproducible
	// retry schedules.
	Seed int64
	// Sleep replaces time.Sleep for backoff and injected latency. Tests
	// install a recorder here so retry timing is asserted without
	// wall-clock waits.
	Sleep func(time.Duration)
	// Injector, when set, is consulted at the chaos sites (task attempt,
	// pre-checkpoint) and may inject faults. Nil means production
	// behaviour.
	Injector chaos.Injector
	// Metrics, when set, receives the runtime's task counters and
	// attempt-duration histogram (compss_* families).
	Metrics *obs.Registry
	// Tracer, when set, records one span per task with one child span
	// per execution attempt (timed-out attempts close with an error
	// status; checkpoint restores appear as recovered spans).
	Tracer *obs.Tracer
}

// Runtime is the COMPSs-like engine: it owns the task graph, the worker
// pool and the data registry, playing the role of the COMPSs master.
type Runtime struct {
	mu        sync.Mutex
	cfg       Config
	defs      map[string]*TaskDef
	graph     *dag.Graph
	inv       map[dag.NodeID]*invocation
	seq       int
	slots     chan struct{}
	acquireMu sync.Mutex
	wg        sync.WaitGroup
	failed    error
	aborted   bool
	crashed   bool // simulated process death: no further checkpoint writes
	rngMu     sync.Mutex
	rng       *rand.Rand
	met       *rtMetrics
	tracer    *obs.Tracer

	trace   []TraceEvent
	tracing bool
}

// TraceEvent records one task execution for later analysis.
type TraceEvent struct {
	Task  string
	ID    dag.NodeID
	State string
	Node  string
}

// NewRuntime starts a runtime with the given configuration.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	rt := &Runtime{
		cfg:    cfg,
		defs:   make(map[string]*TaskDef),
		graph:  dag.New(),
		inv:    make(map[dag.NodeID]*invocation),
		slots:  make(chan struct{}, cfg.Workers),
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		met:    newRTMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
	}
	for i := 0; i < cfg.Workers; i++ {
		rt.slots <- struct{}{}
	}
	return rt
}

// EnableTracing turns on per-task trace event recording.
func (r *Runtime) EnableTracing() { r.mu.Lock(); r.tracing = true; r.mu.Unlock() }

// Trace returns a copy of recorded trace events.
func (r *Runtime) Trace() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, len(r.trace))
	copy(out, r.trace)
	return out
}

// Register declares a task definition. Registering two tasks with the
// same name is an error.
func (r *Runtime) Register(def TaskDef) (*TaskDef, error) {
	if def.Name == "" {
		return nil, errors.New("compss: task name required")
	}
	if def.Fn == nil {
		return nil, fmt.Errorf("compss: task %q has no function", def.Name)
	}
	if def.Outputs < 0 {
		return nil, fmt.Errorf("compss: task %q has negative output count", def.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[def.Name]; dup {
		return nil, fmt.Errorf("compss: task %q already registered", def.Name)
	}
	d := def
	r.defs[def.Name] = &d
	return &d, nil
}

// MustRegister is Register that panics on error, for static task tables.
func (r *Runtime) MustRegister(def TaskDef) *TaskDef {
	d, err := r.Register(def)
	if err != nil {
		panic(err)
	}
	return d
}

// Graph returns the live task graph. It grows as tasks are invoked;
// export it after Barrier for the complete picture (Figure 3).
func (r *Runtime) Graph() *dag.Graph { return r.graph }

// Invoke submits one task execution with the given parameters and
// returns one future per declared output. Dependencies are inferred
// from parameter directionality; execution is asynchronous.
func (r *Runtime) Invoke(def *TaskDef, params ...Param) ([]*Future, error) {
	r.mu.Lock()
	if r.aborted {
		r.mu.Unlock()
		return nil, ErrWorkflowFailed
	}
	if _, known := r.defs[def.Name]; !known {
		r.mu.Unlock()
		return nil, fmt.Errorf("compss: task %q not registered", def.Name)
	}

	id := r.graph.AddNode(def.Name, def.Name)
	if def.Weight > 0 {
		r.graph.Node(id).Weight = def.Weight
	}
	r.seq++
	in := &invocation{
		id:     id,
		seq:    r.seq,
		def:    def,
		params: params,
		deps:   make(map[dag.NodeID]struct{}),
	}
	// Dependency inference.
	for _, p := range params {
		switch v := p.val.(type) {
		case *Future:
			if p.dir != DirIn {
				r.mu.Unlock()
				return nil, fmt.Errorf("compss: future parameters must be IN, got %v", p.dir)
			}
			in.deps[v.producer] = struct{}{}
		case *Shared:
			v.mu.Lock()
			switch p.dir {
			case DirIn:
				if v.lastWriter != 0 {
					in.deps[v.lastWriter] = struct{}{}
				}
				v.readers = append(v.readers, id)
			case DirInOut, DirOut:
				if v.lastWriter != 0 {
					in.deps[v.lastWriter] = struct{}{}
				}
				for _, rd := range v.readers {
					if rd != id {
						in.deps[rd] = struct{}{}
					}
				}
				v.readers = v.readers[:0]
				v.lastWriter = id
				v.version++
			}
			v.mu.Unlock()
		}
	}
	delete(in.deps, 0)
	for dep := range in.deps {
		// Edges into finished tasks still document the dataflow (Fig 3).
		if err := r.graph.AddEdge(dep, id); err != nil {
			r.mu.Unlock()
			return nil, err
		}
	}
	// Futures for outputs.
	in.outs = make([]*Future, def.Outputs)
	for i := range in.outs {
		in.outs[i] = &Future{
			rt:       r,
			producer: id,
			index:    i,
			done:     make(chan struct{}),
			key:      fmt.Sprintf("%s#%d.%d", def.Name, in.seq, i),
		}
	}
	r.inv[id] = in

	// Count unresolved dependencies.
	for dep := range in.deps {
		d := r.inv[dep]
		if d == nil {
			continue
		}
		switch d.state {
		case stateDone, stateIgnored, stateRecovered:
			// resolved
		case stateFailed, stateCancelled:
			// dependency already failed: cancel this one immediately
			in.state = stateCancelled
		default:
			in.missing++
		}
	}
	if in.state == stateCancelled {
		r.mu.Unlock()
		r.cancelInvocation(in)
		return in.outs, nil
	}

	// Checkpoint replay. Ephemeral tasks are never recorded; a recovered
	// record with the wrong arity (corrupt or from an older task shape)
	// is ignored and the task re-runs.
	if r.cfg.Checkpointer != nil && !def.Ephemeral {
		if outs, ok := r.cfg.Checkpointer.Lookup(def.Name, in.seq); ok && len(outs) == def.Outputs {
			in.state = stateRecovered
			r.mu.Unlock()
			sp := r.tracer.Start(def.Name,
				obs.Attr{Key: "seq", Value: strconv.Itoa(in.seq)},
				obs.Attr{Key: "state", Value: "recovered"})
			r.finish(in, outs, nil, stateRecovered)
			sp.End()
			return in.outs, nil
		}
	}

	ready := in.missing == 0
	if ready {
		in.state = stateReady
	}
	r.mu.Unlock()
	if ready {
		r.dispatch(in)
	}
	return in.outs, nil
}

// InvokeOne is Invoke for single-output tasks, returning that future.
func (r *Runtime) InvokeOne(def *TaskDef, params ...Param) (*Future, error) {
	outs, err := r.Invoke(def, params...)
	if err != nil {
		return nil, err
	}
	if len(outs) != 1 {
		return nil, fmt.Errorf("compss: task %q has %d outputs, want 1", def.Name, len(outs))
	}
	return outs[0], nil
}

// dispatch hands a ready invocation to the worker pool.
func (r *Runtime) dispatch(in *invocation) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		cores := in.def.Constraints.cores()
		if cores > cap(r.slots) {
			cores = cap(r.slots) // clamp: a task can at most fill the pool
		}
		// Serialize multi-slot acquisition so two wide tasks cannot each
		// grab a partial set of slots and deadlock.
		if cores > 1 {
			r.acquireMu.Lock()
		}
		for i := 0; i < cores; i++ {
			<-r.slots
		}
		if cores > 1 {
			r.acquireMu.Unlock()
		}
		defer func() {
			for i := 0; i < cores; i++ {
				r.slots <- struct{}{}
			}
		}()

		r.mu.Lock()
		if r.aborted || in.state == stateCancelled {
			r.mu.Unlock()
			r.cancelInvocation(in)
			return
		}
		in.state = stateRunning
		in.started = time.Now()
		r.mu.Unlock()

		// Cluster placement and input staging.
		if c := r.cfg.Cluster; c != nil {
			keys := inputKeys(in.params)
			node := c.BestNodeFor(keys)
			in.node = node
			for _, k := range keys {
				_, _, _ = c.Fetch(k, node) // unknown keys are fine: literal args
			}
		}

		args := r.resolveArgs(in)
		var outs []any
		var err error
		// Retry with capped exponential backoff + jitter: an immediate
		// hot retry hammers whatever made the attempt fail (the thundering
		// herd the execq queue already avoids); errors marked Permanent
		// skip the budget because retrying cannot help.
		sp := r.tracer.Start(in.def.Name, obs.Attr{Key: "seq", Value: strconv.Itoa(in.seq)})
		for attempt := 0; ; attempt++ {
			att := sp.Start("attempt", obs.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
			t0 := time.Now()
			outs, err = r.runAttempt(in, args, attempt)
			r.met.attempt.Observe(time.Since(t0).Seconds())
			if err != nil && errors.Is(err, ErrTaskTimeout) {
				r.met.timedOut.Inc()
			}
			att.EndErr(err)
			if err == nil || attempt >= in.def.Retries || IsPermanent(err) || r.isAborted() {
				break
			}
			r.met.retried.Inc()
			r.sleep(r.backoff(attempt))
		}
		sp.EndErr(err)
		if err != nil && errors.Is(err, chaos.ErrCrash) {
			r.crash(in)
			return
		}
		if err == nil && len(outs) != in.def.Outputs {
			err = fmt.Errorf("compss: task %q returned %d values, declared %d", in.def.Name, len(outs), in.def.Outputs)
		}
		if err == nil {
			if c := r.cfg.Cluster; c != nil && in.node != "" {
				for i, f := range in.outs {
					sz := int64(64)
					_ = i
					_ = c.Place(f.key, in.node, sz)
				}
			}
			if cp := r.cfg.Checkpointer; cp != nil && !in.def.Ephemeral {
				// A Crash fault here models the process dying after the work
				// but before the checkpoint write: the record is lost, the
				// run aborts, and recovery must re-execute this task.
				if inj := r.cfg.Injector; inj != nil {
					if f := inj.Decide(chaos.SiteCheckpoint, in.def.Name, 0); f.Kind == chaos.Crash {
						r.crash(in)
						return
					}
				}
				r.mu.Lock()
				dead := r.crashed
				r.mu.Unlock()
				if !dead {
					_ = cp.Record(in.def.Name, in.seq, outs) // best effort
				}
			}
			r.finish(in, outs, nil, stateDone)
			return
		}
		switch in.def.OnFailure {
		case Ignore:
			r.finish(in, make([]any, in.def.Outputs), nil, stateIgnored)
		case CancelSuccessors:
			r.finish(in, nil, err, stateFailed)
		default: // FailFast
			r.mu.Lock()
			r.failed = fmt.Errorf("%w: task %s: %v", ErrWorkflowFailed, in.def.Name, err)
			r.aborted = true
			r.mu.Unlock()
			r.finish(in, nil, err, stateFailed)
		}
	}()
}

// runSafely executes fn converting panics into errors so one bad task
// cannot take down the runtime.
func runSafely(fn TaskFunc, args []any) (outs []any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("compss: task panicked: %v", p)
		}
	}()
	return fn(args)
}

// runAttempt executes one attempt of an invocation: it applies any
// injected fault, then runs the task body under the per-task deadline.
func (r *Runtime) runAttempt(in *invocation, args []any, attempt int) ([]any, error) {
	fn := in.def.Fn
	if inj := r.cfg.Injector; inj != nil {
		f := inj.Decide(chaos.SiteTask, in.def.Name, attempt)
		switch f.Kind {
		case chaos.Transient, chaos.PermanentKind:
			return nil, f.Error()
		case chaos.Crash:
			// Simulated process death mid-attempt: permanent so the retry
			// loop hands it straight to the crash path.
			return nil, chaos.Permanent(fmt.Errorf("task %s: %w", in.def.Name, chaos.ErrCrash))
		case chaos.PanicKind:
			// Replace the body with a panicking one so the real
			// panic-isolation path (runSafely) is exercised end to end.
			fn = func([]any) ([]any, error) {
				panic(fmt.Sprintf("chaos: injected panic in task %s", in.def.Name))
			}
		case chaos.Latency:
			// Injected latency runs inside the attempt so it counts against
			// the task deadline, like a genuinely slow execution would.
			inner := fn
			delay := f.Delay
			fn = func(a []any) ([]any, error) {
				r.sleep(delay)
				return inner(a)
			}
		}
	}
	if in.def.Timeout <= 0 {
		return runSafely(fn, args)
	}
	type result struct {
		outs []any
		err  error
	}
	// Buffered so an abandoned attempt can always deliver and exit: a
	// timed-out goroutine never leaks blocked on the send.
	ch := make(chan result, 1)
	go func() {
		outs, err := runSafely(fn, args)
		ch <- result{outs, err}
	}()
	timer := time.NewTimer(in.def.Timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.outs, res.err
	case <-timer.C:
		// The attempt keeps running to completion in its goroutine but its
		// result is discarded; a timed-out attempt is a failed attempt.
		return nil, fmt.Errorf("%w: task %s attempt %d exceeded %v", ErrTaskTimeout, in.def.Name, attempt, in.def.Timeout)
	}
}

// backoff returns the delay before retrying a failed attempt:
// min(MaxBackoff, BaseBackoff·2^attempt) scaled by a jitter factor in
// [0.5, 1.5) drawn from the seeded RNG.
func (r *Runtime) backoff(attempt int) time.Duration {
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.rngMu.Lock()
	jitter := 0.5 + r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits for d via the configured Sleep hook (or time.Sleep).
func (r *Runtime) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if r.cfg.Sleep != nil {
		r.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (r *Runtime) isAborted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aborted
}

// crash simulates the whole process dying at this point: no further
// checkpoint records are written (the real process would not have
// written them either), every pending task is cancelled, and the
// workflow error carries chaos.ErrCrash so drivers can distinguish a
// crash worth resuming from an ordinary task failure.
func (r *Runtime) crash(in *invocation) {
	r.mu.Lock()
	r.crashed = true
	r.aborted = true
	if r.failed == nil {
		r.failed = fmt.Errorf("%w: %w at task %s", ErrWorkflowFailed, chaos.ErrCrash, in.def.Name)
	}
	var pending []*invocation
	for _, p := range r.inv {
		if p.state == statePending {
			p.state = stateCancelled
			pending = append(pending, p)
		}
	}
	r.mu.Unlock()
	for _, p := range pending {
		r.cancelInvocation(p)
	}
	r.finish(in, nil, chaos.ErrCrash, stateFailed)
}

// resolveArgs materializes parameter values for execution.
func (r *Runtime) resolveArgs(in *invocation) []any {
	args := make([]any, len(in.params))
	for i, p := range in.params {
		switch v := p.val.(type) {
		case *Future:
			val, _ := v.Get() // producer finished: deps were satisfied
			args[i] = val
		case *Shared:
			if p.dir == DirOut {
				args[i] = nil
			} else {
				args[i] = v.Value()
			}
		default:
			args[i] = p.val
		}
	}
	return args
}

// finish resolves outputs, updates shared data, releases dependents.
func (r *Runtime) finish(in *invocation, outs []any, err error, final taskState) {
	r.mu.Lock()
	in.state = final
	in.err = err
	if !in.started.IsZero() && in.ended.IsZero() {
		in.ended = time.Now()
	}
	if r.tracing {
		r.trace = append(r.trace, TraceEvent{Task: in.def.Name, ID: in.id, State: final.String(), Node: in.node})
	}
	r.mu.Unlock()
	switch final {
	case stateDone:
		r.met.succeeded.Inc()
	case stateFailed:
		r.met.failed.Inc()
	case stateIgnored:
		r.met.ignored.Inc()
	case stateRecovered:
		r.met.recovered.Inc()
	}

	// Write back INOUT/OUT shared parameters: convention is that the
	// task's outputs are matched to shared write parameters in order.
	if err == nil {
		oi := 0
		for _, p := range in.params {
			if p.dir == DirInOut || p.dir == DirOut {
				if s, ok := p.val.(*Shared); ok && oi < len(outs) {
					s.mu.Lock()
					s.val = outs[oi]
					s.mu.Unlock()
					oi++
				}
			}
		}
	}
	for i, f := range in.outs {
		switch {
		case err != nil:
			f.resolve(nil, fmt.Errorf("compss: task %s failed: %w", in.def.Name, err))
		case final == stateIgnored:
			f.resolve(nil, nil)
		default:
			f.resolve(outs[i], nil)
		}
	}
	r.releaseDependents(in, err != nil)
}

// cancelInvocation resolves an invocation's futures with ErrCancelled.
func (r *Runtime) cancelInvocation(in *invocation) {
	r.mu.Lock()
	already := in.state == stateCancelled && in.outs != nil && len(in.outs) > 0 && in.outs[0].Done()
	in.state = stateCancelled
	if r.tracing && !already {
		r.trace = append(r.trace, TraceEvent{Task: in.def.Name, ID: in.id, State: stateCancelled.String()})
	}
	r.mu.Unlock()
	if already {
		return
	}
	r.met.cancelled.Inc()
	for _, f := range in.outs {
		if !f.Done() {
			f.resolve(nil, ErrCancelled)
		}
	}
	r.releaseDependents(in, true)
}

// releaseDependents decrements dependency counters of successors. When
// failed is true, successors are cancelled (CancelSuccessors/abort
// propagation) rather than released.
func (r *Runtime) releaseDependents(in *invocation, failed bool) {
	r.mu.Lock()
	var toRun, toCancel []*invocation
	for _, succ := range r.graph.Successors(in.id) {
		s := r.inv[succ]
		if s == nil || s.state != statePending {
			continue
		}
		if failed {
			s.state = stateCancelled
			toCancel = append(toCancel, s)
			continue
		}
		s.missing--
		if s.missing == 0 {
			s.state = stateReady
			toRun = append(toRun, s)
		}
	}
	r.mu.Unlock()
	for _, s := range toCancel {
		r.cancelInvocation(s)
	}
	for _, s := range toRun {
		r.dispatch(s)
	}
}

func inputKeys(params []Param) []string {
	var keys []string
	for _, p := range params {
		if p.dir == DirOut {
			continue
		}
		if f, ok := p.val.(*Future); ok {
			keys = append(keys, f.key)
		} else if p.key != "" {
			keys = append(keys, p.key)
		}
	}
	return keys
}

// Abort cancels the workflow: running tasks finish, every pending task
// is cancelled, and further Invoke calls fail with ErrWorkflowFailed.
// It is the programmatic stop PyCOMPSs exposes for operator
// intervention.
func (r *Runtime) Abort(reason string) {
	r.mu.Lock()
	if r.aborted {
		r.mu.Unlock()
		return
	}
	r.aborted = true
	if r.failed == nil {
		r.failed = fmt.Errorf("%w: aborted: %s", ErrWorkflowFailed, reason)
	}
	var pending []*invocation
	for _, in := range r.inv {
		if in.state == statePending {
			in.state = stateCancelled
			pending = append(pending, in)
		}
	}
	r.mu.Unlock()
	for _, in := range pending {
		r.cancelInvocation(in)
	}
}

// Barrier blocks until all invoked tasks have finished and returns the
// first fatal workflow error, if any (compss_barrier).
func (r *Runtime) Barrier() error {
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Shutdown waits for completion, flushes the checkpointer and returns
// the final error state.
func (r *Runtime) Shutdown() error {
	err := r.Barrier()
	if cp := r.cfg.Checkpointer; cp != nil {
		if cerr := cp.Flush(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats summarizes the execution so far.
type Stats struct {
	Invoked   int
	Done      int
	Failed    int
	Cancelled int
	Ignored   int
	Recovered int
}

// Stats returns current counters. Call after Barrier for final values.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Stats
	s.Invoked = len(r.inv)
	for _, in := range r.inv {
		switch in.state {
		case stateDone:
			s.Done++
		case stateFailed:
			s.Failed++
		case stateCancelled:
			s.Cancelled++
		case stateIgnored:
			s.Ignored++
		case stateRecovered:
			s.Recovered++
		}
	}
	return s
}
