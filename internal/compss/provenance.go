package compss

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/dag"
)

// Provenance captures the workflow's execution lineage — which task
// instances ran, when, where, and which dataflow edges connected them.
// The paper's §2 lists provenance tracking among the key WMS
// capabilities; this export makes runs auditable and FAIR-publishable
// (a machine-readable record of how every output was derived).
type Provenance struct {
	// Workflow is a caller-supplied label.
	Workflow string `json:"workflow"`
	// CreatedAt stamps the export.
	CreatedAt time.Time `json:"created_at"`
	// Tasks holds one record per invocation, ordered by ID.
	Tasks []TaskProvenance `json:"tasks"`
	// Edges lists dataflow dependencies as [from, to] node IDs.
	Edges [][2]int `json:"edges"`
}

// TaskProvenance is one task instance's record.
type TaskProvenance struct {
	ID      int       `json:"id"`
	Name    string    `json:"name"`
	State   string    `json:"state"`
	Node    string    `json:"node,omitempty"`
	Started time.Time `json:"started,omitempty"`
	Ended   time.Time `json:"ended,omitempty"`
	// DurationMS is the execution time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// Provenance exports the current execution record. Call after Barrier
// for a complete picture.
func (r *Runtime) Provenance(workflow string) *Provenance {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Provenance{Workflow: workflow, CreatedAt: time.Now()}
	ids := make([]dag.NodeID, 0, len(r.inv))
	for id := range r.inv {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		in := r.inv[id]
		tp := TaskProvenance{
			ID:      int(id),
			Name:    in.def.Name,
			State:   in.state.String(),
			Node:    in.node,
			Started: in.started,
			Ended:   in.ended,
		}
		if !in.started.IsZero() && !in.ended.IsZero() {
			tp.DurationMS = float64(in.ended.Sub(in.started).Microseconds()) / 1000
		}
		p.Tasks = append(p.Tasks, tp)
		for _, s := range r.graph.Successors(id) {
			p.Edges = append(p.Edges, [2]int{int(id), int(s)})
		}
	}
	return p
}

// WriteJSON streams the provenance document.
func (p *Provenance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ParseProvenance reads a document written by WriteJSON.
func ParseProvenance(r io.Reader) (*Provenance, error) {
	var p Provenance
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("compss: parse provenance: %w", err)
	}
	return &p, nil
}

// Gantt renders an ASCII Gantt chart of the executed tasks, one row
// per instance, bars proportional to wall time — the quick-look
// monitoring view of the run's concurrency structure.
func (p *Provenance) Gantt(width int) string {
	if width < 20 {
		width = 60
	}
	var t0, t1 time.Time
	for _, t := range p.Tasks {
		if t.Started.IsZero() || t.Ended.IsZero() {
			continue
		}
		if t0.IsZero() || t.Started.Before(t0) {
			t0 = t.Started
		}
		if t.Ended.After(t1) {
			t1 = t.Ended
		}
	}
	if t0.IsZero() || !t1.After(t0) {
		return "(no timed tasks)\n"
	}
	span := t1.Sub(t0)
	nameW := 0
	for _, t := range p.Tasks {
		if len(t.Name) > nameW {
			nameW = len(t.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |%s| total %v\n", nameW+5, "task", strings.Repeat("-", width), span.Round(time.Millisecond))
	tasks := append([]TaskProvenance(nil), p.Tasks...)
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Started.Equal(tasks[j].Started) {
			return tasks[i].ID < tasks[j].ID
		}
		return tasks[i].Started.Before(tasks[j].Started)
	})
	for _, t := range tasks {
		if t.Started.IsZero() || t.Ended.IsZero() {
			continue
		}
		start := int(float64(t.Started.Sub(t0)) / float64(span) * float64(width))
		end := int(float64(t.Ended.Sub(t0)) / float64(span) * float64(width))
		if end <= start {
			end = start + 1
		}
		if end > width {
			end = width
		}
		bar := strings.Repeat(" ", start) + strings.Repeat("█", end-start) + strings.Repeat(" ", width-end)
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW+5, fmt.Sprintf("#%d %s", t.ID, t.Name), bar)
	}
	return b.String()
}

// CriticalTasks returns the tasks on the longest duration-weighted
// dependency chain, useful for spotting the bottleneck stage.
func (r *Runtime) CriticalTasks() ([]string, error) {
	r.mu.Lock()
	// weight nodes by measured duration
	for id, in := range r.inv {
		if !in.started.IsZero() && !in.ended.IsZero() {
			if n := r.graph.Node(id); n != nil {
				d := in.ended.Sub(in.started).Seconds()
				if d <= 0 {
					d = 1e-9
				}
				n.Weight = d
			}
		}
	}
	r.mu.Unlock()
	path, _, err := r.graph.CriticalPath()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(path))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range path {
		if in := r.inv[id]; in != nil {
			out = append(out, in.def.Name)
		}
	}
	return out, nil
}
