package ml

// The online trainer closes the paper's ML-in-the-loop gap: instead of
// training the TC localizer once on historical runs and freezing it,
// a trainer goroutine consumes labelled field sets streamed out of the
// running simulation (via internal/texchange), improves a private copy
// of the network, and periodically hot-swaps the result into the live
// Localizer (SwapWeights) — detection quality improves while the ESM
// is still producing years, with no pipeline stall.
//
// The trainer owns a student network cloned from the target at start;
// the target's weights are only ever replaced wholesale by SwapWeights
// with a clone of the student, so inference never observes a network
// mid-update. Training is strictly sequential over the feed order with
// no random shuffling, which makes the weight trajectory a pure
// function of the fed (fields, centers) sequence — reproducible runs
// stay reproducible.

import (
	"fmt"
	"sync"

	"repro/internal/grid"
)

// OnlineConfig configures an OnlineTrainer.
type OnlineConfig struct {
	// Target is the live localizer whose weights the trainer improves.
	Target *Localizer
	// BatchSize samples per optimizer step; 0 means 16.
	BatchSize int
	// LR is the Adam learning rate; 0 means 1e-3.
	LR float64
	// CoordWeight scales the localization loss term; 0 means 2.
	CoordWeight float64
	// SwapEvery hot-swaps the target weights after this many optimizer
	// steps; 0 means 8.
	SwapEvery int
	// Queue bounds the feed channel; producers never block — a full
	// queue drops the step (counted in Stats). 0 means 32.
	Queue int
	// Balance interleaves positive patches 1:1 with negatives, drawing
	// positives round-robin from a buffer of every positive seen so far
	// — the deterministic stand-in for TrainConfig.Balance + shuffle:
	// batches stay class-balanced AND storm-diverse even though the
	// stream arrives one instant at a time.
	Balance bool
	// Replay trains each fed item this many times before moving on,
	// recovering offline training's multiple epochs over scarce labelled
	// data; 0 means 1 (single pass).
	Replay int
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.CoordWeight == 0 {
		c.CoordWeight = 2
	}
	if c.SwapEvery <= 0 {
		c.SwapEvery = 8
	}
	if c.Queue <= 0 {
		c.Queue = 32
	}
	if c.Replay <= 0 {
		c.Replay = 1
	}
	return c
}

// posBufCap bounds the Balance positive-replay buffer (FIFO eviction).
const posBufCap = 1024

// OnlineStats is a snapshot of trainer progress.
type OnlineStats struct {
	// Fed and Dropped count Feed calls accepted and rejected (full
	// queue or closed trainer). Processed counts fed items fully
	// trained on — Fed-Processed is the queue backlog, and a caller
	// that pauses feeding can poll Processed to let the trainer catch
	// up before probing the target's quality.
	Fed, Dropped, Processed uint64
	// Samples, Steps and Swaps count labelled patches trained on,
	// optimizer steps taken and successful weight hot-swaps.
	Samples, Steps, Swaps uint64
	// LastLoss is the mean loss of the most recent optimizer step.
	LastLoss float64
}

type feedItem struct {
	fields  map[string]*grid.Field
	centers []Center
}

// OnlineTrainer trains a private copy of the target localizer's
// network on streamed field sets and periodically publishes improved
// weights via Localizer.SwapWeights. Feed never blocks; Close drains
// the queue, performs a final swap, and reports the first error.
type OnlineTrainer struct {
	cfg    OnlineConfig
	patchH int
	patchW int

	feed chan feedItem
	done chan struct{}

	mu     sync.Mutex
	closed bool
	stats  OnlineStats
	err    error
}

// NewOnlineTrainer starts the training goroutine. The target must be
// set; its current weights seed the student copy.
func NewOnlineTrainer(cfg OnlineConfig) (*OnlineTrainer, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("ml: online trainer needs a target localizer")
	}
	cfg = cfg.withDefaults()
	student, err := cfg.Target.refNet().Clone()
	if err != nil {
		return nil, fmt.Errorf("ml: online trainer: clone target: %w", err)
	}
	t := &OnlineTrainer{
		cfg:    cfg,
		patchH: cfg.Target.PatchH,
		patchW: cfg.Target.PatchW,
		feed:   make(chan feedItem, cfg.Queue),
		done:   make(chan struct{}),
	}
	go t.run(student)
	return t, nil
}

// Feed offers one labelled instantaneous field set (the localizer
// channel stack plus known TC centers in grid coordinates) to the
// trainer. It never blocks: when the queue is full or the trainer is
// closed the step is dropped and Feed returns false. The trainer keeps
// a reference to fields — callers must not mutate them afterwards.
func (t *OnlineTrainer) Feed(fields map[string]*grid.Field, centers []Center) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		t.stats.Dropped++
		return false
	}
	select {
	case t.feed <- feedItem{fields: fields, centers: centers}:
		t.stats.Fed++
		return true
	default:
		t.stats.Dropped++
		return false
	}
}

// Close stops accepting feeds, drains the queue, hot-swaps the final
// student weights into the target, and returns the first error the
// trainer hit (labelling or swapping). Safe to call more than once.
func (t *OnlineTrainer) Close() error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.feed)
	}
	t.mu.Unlock()
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Stats returns a snapshot of trainer progress.
func (t *OnlineTrainer) Stats() OnlineStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *OnlineTrainer) run(student *Network) {
	defer close(t.done)
	opt := NewAdam(student, t.cfg.LR)
	inBatch, steps := 0, 0
	var batchLoss float64
	step := func() {
		opt.Step(inBatch)
		steps++
		t.mu.Lock()
		t.stats.Steps++
		t.stats.LastLoss = batchLoss / float64(inBatch)
		t.mu.Unlock()
		inBatch, batchLoss = 0, 0
	}
	var posBuf []Sample
	posCursor := 0
	for it := range t.feed {
		samples, err := SamplesFromFields(it.fields, it.centers, t.patchH, t.patchW)
		if err != nil {
			t.fail(err)
			t.mu.Lock()
			t.stats.Processed++
			t.mu.Unlock()
			continue
		}
		if t.cfg.Balance {
			samples, posBuf, posCursor = balanceFromBuffer(samples, posBuf, posCursor)
		}
		for r := 0; r < t.cfg.Replay; r++ {
			for _, s := range samples {
				batchLoss += trainSample(student, s, t.cfg.CoordWeight)
				if inBatch++; inBatch == t.cfg.BatchSize {
					step()
					if steps%t.cfg.SwapEvery == 0 {
						t.swap(student)
					}
				}
			}
		}
		t.mu.Lock()
		t.stats.Samples += uint64(len(samples) * t.cfg.Replay)
		t.stats.Processed++
		t.mu.Unlock()
	}
	if inBatch > 0 {
		step()
	}
	if steps > 0 {
		t.swap(student)
	}
}

// balanceFromBuffer is the online counterpart of balance + epoch
// shuffling, with no randomness. The current item's positives join a
// bounded FIFO buffer of every positive patch seen so far; the training
// sequence then alternates the item's negatives with positives drawn
// round-robin from that buffer. Two failure modes of naive streaming
// are closed at once: batches never degenerate to all-negative (class
// balance), and the positives inside a batch span many past storms
// instead of one (the diversity a global shuffle provides offline), so
// sequential Adam stops forgetting earlier storms as new ones stream
// in. Returns the training sequence plus the updated buffer state.
func balanceFromBuffer(samples, posBuf []Sample, posCursor int) ([]Sample, []Sample, int) {
	var neg []Sample
	for _, s := range samples {
		if s.HasTC {
			posBuf = append(posBuf, s)
		} else {
			neg = append(neg, s)
		}
	}
	if over := len(posBuf) - posBufCap; over > 0 {
		posBuf = append(posBuf[:0], posBuf[over:]...)
	}
	if len(posBuf) == 0 {
		return samples, posBuf, posCursor
	}
	out := make([]Sample, 0, 2*len(neg))
	for _, n := range neg {
		out = append(out, n, posBuf[posCursor%len(posBuf)])
		posCursor++
	}
	return out, posBuf, posCursor
}

// swap publishes a clone of the student into the target, so continued
// training never mutates weights the inference engine is reading.
func (t *OnlineTrainer) swap(student *Network) {
	clone, err := student.Clone()
	if err == nil {
		err = t.cfg.Target.SwapWeights(clone)
	}
	if err != nil {
		t.fail(err)
		return
	}
	t.mu.Lock()
	t.stats.Swaps++
	t.mu.Unlock()
}

func (t *OnlineTrainer) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}
