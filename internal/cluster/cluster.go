// Package cluster simulates an HPC system in the mold of the CMCC Zeus
// machine the paper ran on: a set of nodes with cores and memory, an
// LSF-like batch scheduler with a FIFO queue plus backfill, and a simple
// inter-node data-transfer cost model.
//
// The simulation is discrete-event: jobs carry a duration in virtual
// time, and the scheduler advances a virtual clock from event to event.
// Nothing sleeps, so large scheduling experiments run in microseconds of
// wall time while still exposing queueing, placement and locality
// effects to the workflow layer above.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Node describes one compute node.
type Node struct {
	// Name is a unique identifier, e.g. "n001".
	Name string
	// Cores is the node's total core count.
	Cores int
	// MemoryMB is the node's total main memory in MiB.
	MemoryMB int

	freeCores int
	freeMemMB int
}

// FreeCores reports currently unallocated cores.
func (n *Node) FreeCores() int { return n.freeCores }

// FreeMemoryMB reports currently unallocated memory.
func (n *Node) FreeMemoryMB() int { return n.freeMemMB }

// Resources describes what a job needs to start.
type Resources struct {
	// Cores requested; zero means 1.
	Cores int
	// MemoryMB requested; zero means no memory constraint.
	MemoryMB int
	// Node pins the job to a named node; empty lets the scheduler place it.
	Node string
}

func (r Resources) normalized() Resources {
	if r.Cores <= 0 {
		r.Cores = 1
	}
	if r.MemoryMB < 0 {
		r.MemoryMB = 0
	}
	return r
}

// JobState enumerates the lifecycle of a submitted job.
type JobState int

// Job lifecycle states.
const (
	JobPending JobState = iota
	JobRunning
	JobDone
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "PEND"
	case JobRunning:
		return "RUN"
	case JobDone:
		return "DONE"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job is one batch submission.
type Job struct {
	ID       int
	Name     string
	Req      Resources
	Duration float64 // virtual seconds of execution
	State    JobState
	Node     string  // assigned node once running
	Submit   float64 // virtual submit time
	Start    float64 // virtual start time
	End      float64 // virtual end time
}

// WaitTime returns the virtual time the job spent queued. It is only
// meaningful once the job has started.
func (j *Job) WaitTime() float64 { return j.Start - j.Submit }

// Cluster is the simulated machine plus its batch scheduler.
type Cluster struct {
	mu      sync.Mutex
	nodes   []*Node
	byName  map[string]*Node
	pending []*Job
	running []*Job
	done    []*Job
	nextID  int
	clock   float64
	// Backfill enables LSF-style backfill: a short job further back in
	// the queue may start before the queue head if resources allow.
	Backfill bool

	// data placement: key → set of node names holding a replica, and size
	dataLoc  map[string]map[string]struct{}
	dataSize map[string]int64

	// transfer accounting
	bytesMoved int64
	transfers  int

	// LinkMBps is the simulated interconnect bandwidth used to convert
	// transferred bytes into virtual seconds. Zero disables time cost.
	LinkMBps float64
}

// New builds a cluster of n identical nodes.
func New(n, coresPerNode, memMBPerNode int) *Cluster {
	c := &Cluster{
		byName:   make(map[string]*Node),
		dataLoc:  make(map[string]map[string]struct{}),
		dataSize: make(map[string]int64),
		Backfill: true,
		nextID:   1,
	}
	for i := 0; i < n; i++ {
		node := &Node{
			Name:      fmt.Sprintf("n%03d", i+1),
			Cores:     coresPerNode,
			MemoryMB:  memMBPerNode,
			freeCores: coresPerNode,
			freeMemMB: memMBPerNode,
		}
		c.nodes = append(c.nodes, node)
		c.byName[node.Name] = node
	}
	return c
}

// Nodes returns the node list (shared, do not mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeNames returns the sorted node names.
func (c *Cluster) NodeNames() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

// Clock returns the current virtual time.
func (c *Cluster) Clock() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// TotalCores reports the aggregate core count.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.nodes {
		t += n.Cores
	}
	return t
}

// ErrNoSuchNode is returned when a job pins a node that does not exist.
var ErrNoSuchNode = errors.New("cluster: no such node")

// ErrImpossible is returned when a request exceeds every node's total
// capacity and could never run.
var ErrImpossible = errors.New("cluster: request exceeds any node capacity")

// Submit queues a job. Scheduling happens lazily as the clock advances.
func (c *Cluster) Submit(name string, req Resources, duration float64) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req = req.normalized()
	if req.Node != "" {
		if _, ok := c.byName[req.Node]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, req.Node)
		}
	}
	feasible := false
	for _, n := range c.nodes {
		if (req.Node == "" || req.Node == n.Name) && req.Cores <= n.Cores && req.MemoryMB <= n.MemoryMB {
			feasible = true
			break
		}
	}
	if !feasible {
		return nil, fmt.Errorf("%w: %d cores / %d MB", ErrImpossible, req.Cores, req.MemoryMB)
	}
	j := &Job{ID: c.nextID, Name: name, Req: req, Duration: duration, State: JobPending, Submit: c.clock}
	c.nextID++
	c.pending = append(c.pending, j)
	c.schedule()
	return j, nil
}

// schedule starts every queued job that fits, honoring FIFO order with
// optional backfill. Caller holds c.mu.
func (c *Cluster) schedule() {
	var still []*Job
	blockedHead := false
	for _, j := range c.pending {
		if blockedHead && !c.Backfill {
			still = append(still, j)
			continue
		}
		node := c.pick(j.Req)
		if node == nil {
			blockedHead = true
			still = append(still, j)
			continue
		}
		node.freeCores -= j.Req.Cores
		node.freeMemMB -= j.Req.MemoryMB
		j.State = JobRunning
		j.Node = node.Name
		j.Start = c.clock
		j.End = c.clock + j.Duration
		c.running = append(c.running, j)
	}
	c.pending = still
}

// pick returns the first node satisfying the request, preferring the
// node with the fewest free cores that still fits (best fit), which
// packs jobs and leaves larger holes for wide jobs.
func (c *Cluster) pick(req Resources) *Node {
	var best *Node
	for _, n := range c.nodes {
		if req.Node != "" && req.Node != n.Name {
			continue
		}
		if n.freeCores < req.Cores || n.freeMemMB < req.MemoryMB {
			continue
		}
		if best == nil || n.freeCores < best.freeCores {
			best = n
		}
	}
	return best
}

// Step advances virtual time to the next job completion and retires
// every job ending at that instant. It reports whether any job was
// retired; false means the system is idle or only pending work remains
// that can never start (which Submit prevents).
func (c *Cluster) Step() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.running) == 0 {
		return false
	}
	next := c.running[0].End
	for _, j := range c.running[1:] {
		if j.End < next {
			next = j.End
		}
	}
	c.clock = next
	var still []*Job
	for _, j := range c.running {
		if j.End <= c.clock {
			j.State = JobDone
			n := c.byName[j.Node]
			n.freeCores += j.Req.Cores
			n.freeMemMB += j.Req.MemoryMB
			c.done = append(c.done, j)
		} else {
			still = append(still, j)
		}
	}
	c.running = still
	c.schedule()
	return true
}

// Drain advances the clock until no jobs remain running or pending, and
// returns the final virtual time (the makespan since time zero).
func (c *Cluster) Drain() float64 {
	for c.Step() {
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// Stats summarizes completed work.
type Stats struct {
	JobsDone     int
	Makespan     float64
	TotalWait    float64
	MaxWait      float64
	BytesMoved   int64
	Transfers    int
	CoreSeconds  float64
	Utilization  float64 // CoreSeconds / (TotalCores * Makespan)
	PendingCount int
}

// Stats returns aggregate scheduling statistics at the current clock.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{JobsDone: len(c.done), Makespan: c.clock, BytesMoved: c.bytesMoved, Transfers: c.transfers, PendingCount: len(c.pending)}
	for _, j := range c.done {
		w := j.WaitTime()
		s.TotalWait += w
		if w > s.MaxWait {
			s.MaxWait = w
		}
		s.CoreSeconds += j.Duration * float64(j.Req.Cores)
	}
	if c.clock > 0 {
		s.Utilization = s.CoreSeconds / (float64(c.TotalCores()) * c.clock)
	}
	return s
}

// --- data placement and transfer model -------------------------------

// Place records that a replica of data key (size bytes) lives on node.
func (c *Cluster) Place(key, node string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[node]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, node)
	}
	set, ok := c.dataLoc[key]
	if !ok {
		set = make(map[string]struct{})
		c.dataLoc[key] = set
	}
	set[node] = struct{}{}
	c.dataSize[key] = size
	return nil
}

// Holders returns the sorted node names holding a replica of key.
func (c *Cluster) Holders(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.dataLoc[key]))
	for n := range c.dataLoc[key] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fetch ensures node holds a replica of key, accounting for the transfer
// if it has to be moved. It returns the bytes moved (zero on a local
// hit) and the virtual transfer time under LinkMBps.
func (c *Cluster) Fetch(key, node string) (int64, float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[node]; !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoSuchNode, node)
	}
	set, ok := c.dataLoc[key]
	if !ok {
		return 0, 0, fmt.Errorf("cluster: unknown data key %q", key)
	}
	if _, local := set[node]; local {
		return 0, 0, nil
	}
	size := c.dataSize[key]
	set[node] = struct{}{}
	c.bytesMoved += size
	c.transfers++
	var t float64
	if c.LinkMBps > 0 {
		t = float64(size) / (c.LinkMBps * 1e6)
	}
	return size, t, nil
}

// LocalityScore returns the fraction of keys already resident on node,
// weighted by size. The workflow scheduler uses it to prefer placements
// that minimize movement ("data could be kept in memory and moved to
// other nodes as the workflow progresses", §3).
func (c *Cluster) LocalityScore(node string, keys []string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var local, total int64
	for _, k := range keys {
		sz := c.dataSize[k]
		if sz == 0 {
			sz = 1
		}
		total += sz
		if _, ok := c.dataLoc[k][node]; ok {
			local += sz
		}
	}
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// BestNodeFor returns the node with the highest locality score for keys
// among nodes with at least one free core; ties go to the first node in
// name order. Falls back to the emptiest node when no key is placed.
func (c *Cluster) BestNodeFor(keys []string) string {
	names := c.NodeNames()
	best := ""
	bestScore := -1.0
	for _, name := range names {
		n := c.byName[name]
		c.mu.Lock()
		free := n.freeCores
		c.mu.Unlock()
		if free <= 0 {
			continue
		}
		s := c.LocalityScore(name, keys)
		if s > bestScore {
			bestScore = s
			best = name
		}
	}
	if best == "" && len(names) > 0 {
		best = names[0]
	}
	return best
}
