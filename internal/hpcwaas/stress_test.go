package hpcwaas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/execq"
)

// newQueuedService builds a deployed service on a deliberately tiny
// queue so admission control is observable.
func newQueuedService(t *testing.T, cfg ServiceConfig, app AppFunc) *Service {
	t.Helper()
	d := newTestDeployer(t)
	reg := NewRegistry()
	if err := reg.Register(demoEntry("climate", app)); err != nil {
		t.Fatal(err)
	}
	svc, err := NewServiceWith(reg, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	e, _ := reg.Lookup("climate")
	if _, err := d.Deploy(e, "zeus"); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestConcurrentAPIStress fires many parallel POST /api/executions from
// two principals against a tiny queue and asserts quota enforcement,
// 429 + Retry-After semantics and that every accepted execution reaches
// exactly one terminal state (run with -race).
func TestConcurrentAPIStress(t *testing.T) {
	svc := newQueuedService(t, ServiceConfig{
		Workers: 2, QueueDepth: 4, PerPrincipalLimit: 3, Retention: 4096,
	}, func(params map[string]string) (map[string]string, error) {
		time.Sleep(2 * time.Millisecond)
		return map[string]string{"ok": "1"}, nil
	})
	svc.AuthorizeToken("tok-alice", "alice")
	svc.AuthorizeToken("tok-bob", "bob")
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(token string) (int, string, string, error) {
		body, _ := json.Marshal(map[string]any{"workflow": "climate"})
		req, _ := http.NewRequest("POST", srv.URL+"/api/executions", bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := srv.Client().Do(req)
		if err != nil {
			return 0, "", "", err
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		id, _ := out["id"].(string)
		return resp.StatusCode, id, resp.Header.Get("Retry-After"), nil
	}

	const perPrincipal = 30
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	for _, token := range []string{"tok-alice", "tok-bob"} {
		for i := 0; i < perPrincipal; i++ {
			wg.Add(1)
			go func(token string) {
				defer wg.Done()
				code, id, retryAfter, err := post(token)
				if err != nil {
					t.Error(err)
					return
				}
				switch code {
				case http.StatusAccepted:
					mu.Lock()
					accepted = append(accepted, id)
					mu.Unlock()
				case http.StatusTooManyRequests:
					if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
						t.Errorf("429 without usable Retry-After: %q", retryAfter)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("unexpected status %d", code)
				}
			}(token)
		}
	}
	// concurrently observe the queue: per-principal usage must respect
	// the quota at every sample
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p, n := range svc.QueueStats().PerPrincipal {
				if n > 3 {
					t.Errorf("principal %s over quota: %d live jobs", p, n)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	sampler.Wait()

	mu.Lock()
	ids := append([]string(nil), accepted...)
	nRejected := rejected
	mu.Unlock()
	if len(ids)+nRejected != 2*perPrincipal {
		t.Fatalf("accepted %d + rejected %d != %d", len(ids), nRejected, 2*perPrincipal)
	}
	if len(ids) == 0 || nRejected == 0 {
		t.Fatalf("load did not exercise admission: accepted=%d rejected=%d", len(ids), nRejected)
	}
	if stats := svc.QueueStats(); stats.RejectedQuota+stats.RejectedFull == 0 {
		t.Fatalf("no admission rejections recorded: %+v", stats)
	}

	svc.Wait()

	// no lost or duplicated terminal states: every accepted ID appears
	// exactly once in the listing, DONE
	req, _ := http.NewRequest("GET", srv.URL+"/api/executions", nil)
	req.Header.Set("Authorization", "Bearer tok-alice")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var list []Execution
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	seen := make(map[string]int)
	for _, ex := range list {
		seen[ex.ID]++
		if ex.Status != ExecDone {
			t.Errorf("execution %s status = %s, want DONE", ex.ID, ex.Status)
		}
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("accepted execution %s listed %d times", id, seen[id])
		}
	}
	if len(list) != len(ids) {
		t.Fatalf("listing has %d executions, accepted %d", len(list), len(ids))
	}
}

// TestExecutionRetention covers the bounded-retention satellite: old
// completed records evict, evicted IDs answer 410/"expired", and live
// records are never evicted.
func TestExecutionRetention(t *testing.T) {
	svc := newQueuedService(t, ServiceConfig{
		Workers: 1, QueueDepth: 16, Retention: 3,
	}, func(params map[string]string) (map[string]string, error) {
		return map[string]string{"ok": "1"}, nil
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for i := 0; i < 6; i++ {
		if _, err := svc.Execute("climate", nil); err != nil {
			t.Fatal(err)
		}
		svc.Wait() // serialize so eviction order is deterministic
	}
	list := svc.ListExecutions("")
	if len(list) != 3 {
		t.Fatalf("retained %d records, want 3", len(list))
	}
	if list[0].ID != "exec-4" || list[2].ID != "exec-6" {
		t.Fatalf("retained window = %s..%s, want exec-4..exec-6", list[0].ID, list[2].ID)
	}

	// evicted ID: distinct "expired" signal, REST answers 410
	if _, st := svc.LookupExecution("exec-1"); st != LookupExpired {
		t.Fatalf("exec-1 lookup = %v, want LookupExpired", st)
	}
	if _, ok := svc.GetExecution("exec-1"); ok {
		t.Fatal("GetExecution returned an evicted record")
	}
	if _, st := svc.LookupExecution("exec-999"); st != LookupUnknown {
		t.Fatalf("exec-999 lookup = %v, want LookupUnknown", st)
	}
	code, _ := restCall(t, srv, "GET", "/api/executions/exec-1", nil)
	if code != http.StatusGone {
		t.Fatalf("evicted GET code = %d, want 410", code)
	}
	code, _ = restCall(t, srv, "GET", "/api/executions/nonsense", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown GET code = %d, want 404", code)
	}
}

// TestListExecutionsOrderAndFilter covers the stable-order + ?status=
// satellite.
func TestListExecutionsOrderAndFilter(t *testing.T) {
	fail := make(map[string]bool)
	var mu sync.Mutex
	svc := newQueuedService(t, ServiceConfig{Workers: 1, QueueDepth: 16},
		func(params map[string]string) (map[string]string, error) {
			mu.Lock()
			bad := fail[params["n"]]
			mu.Unlock()
			if bad {
				return nil, errors.New("synthetic failure")
			}
			return map[string]string{"ok": "1"}, nil
		})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	mu.Lock()
	fail["1"] = true
	mu.Unlock()
	for i := 0; i < 4; i++ {
		if _, err := svc.Execute("climate", map[string]string{"n": strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Wait()

	resp, err := srv.Client().Get(srv.URL + "/api/executions")
	if err != nil {
		t.Fatal(err)
	}
	var list []Execution
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 4 {
		t.Fatalf("list len = %d", len(list))
	}
	for i, ex := range list {
		if want := "exec-" + strconv.Itoa(i+1); ex.ID != want {
			t.Fatalf("list[%d] = %s, want %s (stable creation order)", i, ex.ID, want)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/api/executions?status=failed")
	if err != nil {
		t.Fatal(err)
	}
	var failed []Execution
	json.NewDecoder(resp.Body).Decode(&failed)
	resp.Body.Close()
	if len(failed) != 1 || failed[0].ID != "exec-2" || failed[0].Status != ExecFailed {
		t.Fatalf("failed filter = %+v", failed)
	}

	resp, err = srv.Client().Get(srv.URL + "/api/executions?status=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus filter code = %d", resp.StatusCode)
	}
}

// TestCancelEndpoint exercises DELETE /api/executions/{id} for queued
// and terminal records.
func TestCancelEndpoint(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	svc := newQueuedService(t, ServiceConfig{Workers: 1, QueueDepth: 8},
		func(params map[string]string) (map[string]string, error) {
			once.Do(func() { close(started) })
			<-gate
			return map[string]string{"ok": "1"}, nil
		})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// first occupies the worker; second sits queued
	if _, err := svc.Execute("climate", nil); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Execute("climate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if queued.Status != ExecQueued {
		t.Fatalf("second execution status = %s, want QUEUED", queued.Status)
	}

	code, body := restCall(t, srv, "DELETE", "/api/executions/"+queued.ID, nil)
	if code != http.StatusAccepted {
		t.Fatalf("cancel code = %d %v", code, body)
	}
	close(gate)
	svc.Wait()
	got, _ := svc.GetExecution(queued.ID)
	if got.Status != ExecCanceled {
		t.Fatalf("canceled execution = %+v", got)
	}
	// terminal record: conflict
	code, _ = restCall(t, srv, "DELETE", "/api/executions/"+queued.ID, nil)
	if code != http.StatusConflict {
		t.Fatalf("double cancel code = %d", code)
	}
	code, _ = restCall(t, srv, "DELETE", "/api/executions/ghost", nil)
	if code != http.StatusNotFound {
		t.Fatalf("ghost cancel code = %d", code)
	}
}

// TestQueueEndpointAndDrain exercises GET /api/queue and the graceful
// drain path.
func TestQueueEndpointAndDrain(t *testing.T) {
	svc := newQueuedService(t, ServiceConfig{Workers: 2, QueueDepth: 8},
		func(params map[string]string) (map[string]string, error) {
			time.Sleep(time.Millisecond)
			return map[string]string{"ok": "1"}, nil
		})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for i := 0; i < 6; i++ {
		if _, err := svc.Execute("climate", nil); err != nil {
			t.Fatal(err)
		}
	}
	code, stats := restCall(t, srv, "GET", "/api/queue", nil)
	if code != http.StatusOK {
		t.Fatalf("queue stats code = %d", code)
	}
	if stats["capacity"].(float64) != 8 || stats["workers"].(float64) != 2 {
		t.Fatalf("queue stats = %v", stats)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// intake rejected after drain
	if _, err := svc.Execute("climate", nil); !errors.Is(err, execq.ErrDraining) {
		t.Fatalf("post-drain execute err = %v", err)
	}
	// all six finished
	done := svc.ListExecutions(ExecDone)
	if len(done) != 6 {
		t.Fatalf("done executions = %d, want 6", len(done))
	}
	code, stats = restCall(t, srv, "GET", "/api/queue", nil)
	if code != http.StatusOK || stats["draining"] != true {
		t.Fatalf("post-drain stats = %d %v", code, stats)
	}
}

// TestJournalRecoveryAcrossServices covers the crash-recovery path at
// the service layer: executions queued in a first service's journal are
// re-run by a second service sharing the journal path.
func TestJournalRecoveryAcrossServices(t *testing.T) {
	journal := t.TempDir() + "/exec-journal.jsonl"
	gate := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})

	d := newTestDeployer(t)
	reg := NewRegistry()
	if err := reg.Register(demoEntry("climate", func(params map[string]string) (map[string]string, error) {
		once.Do(func() { close(started) })
		<-gate
		return map[string]string{"ok": "1"}, nil
	})); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Lookup("climate")
	if _, err := d.Deploy(e, "zeus"); err != nil {
		t.Fatal(err)
	}

	svc1, err := NewServiceWith(reg, d, ServiceConfig{Workers: 1, QueueDepth: 8, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc1.Execute("climate", map[string]string{"n": strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	// "crash": svc1 is abandoned without drain; its worker stays parked
	// on the gate, and the journal still lists all three as live.

	// the recovered service runs the app to completion
	reg2 := NewRegistry()
	var mu sync.Mutex
	ran := map[string]bool{}
	if err := reg2.Register(demoEntry("climate", func(params map[string]string) (map[string]string, error) {
		mu.Lock()
		ran[params["n"]] = true
		mu.Unlock()
		return map[string]string{"recovered": "yes"}, nil
	})); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg2.Lookup("climate")
	if _, err := d.Deploy(e2, "zeus"); err != nil {
		t.Fatal(err)
	}
	svc2, err := NewServiceWith(reg2, d, ServiceConfig{Workers: 2, QueueDepth: 8, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	svc2.Wait()

	mu.Lock()
	n := len(ran)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("recovered runs = %d, want 3", n)
	}
	list := svc2.ListExecutions(ExecDone)
	if len(list) != 3 {
		t.Fatalf("recovered DONE records = %d, want 3", len(list))
	}
	for _, ex := range list {
		if ex.Results["recovered"] != "yes" {
			t.Fatalf("recovered record missing results: %+v", ex)
		}
	}
	// new IDs allocate past the recovered ones
	ex, err := svc2.Execute("climate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ID != "exec-4" {
		t.Fatalf("post-recovery ID = %s, want exec-4", ex.ID)
	}
	svc2.Wait()
	close(gate) // release the abandoned worker
	svc1.Close()
}

// TestPriorityViaREST covers the priority field on POST /api/executions.
func TestPriorityViaREST(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	var mu sync.Mutex
	var order []string
	svc := newQueuedService(t, ServiceConfig{Workers: 1, QueueDepth: 8},
		func(params map[string]string) (map[string]string, error) {
			once.Do(func() { close(started) })
			if params["tag"] == "head" {
				<-gate
			} else {
				mu.Lock()
				order = append(order, params["tag"])
				mu.Unlock()
			}
			return map[string]string{}, nil
		})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if _, err := svc.Execute("climate", map[string]string{"tag": "head"}); err != nil {
		t.Fatal(err)
	}
	<-started
	for _, sub := range []struct {
		tag string
		pri int
	}{{"low", 0}, {"high", 9}} {
		code, body := restCall(t, srv, "POST", "/api/executions", map[string]any{
			"workflow": "climate",
			"params":   map[string]string{"tag": sub.tag},
			"priority": sub.pri,
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d %v", sub.tag, code, body)
		}
	}
	close(gate)
	svc.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("dispatch order = %v, want [high low]", order)
	}
}
