package compss

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpointer persists completed task results so a failed workflow run
// can be recovered "from the last checkpointed task" (Vergés et al.
// 2023, cited in the paper's §4.2.1). Implementations must be safe for
// concurrent use.
type Checkpointer interface {
	// Record stores the outputs of the invocation of task name with the
	// given deterministic sequence number.
	Record(name string, seq int, outs []any) error
	// Lookup returns previously recorded outputs, if any.
	Lookup(name string, seq int) ([]any, bool)
	// Flush forces buffered records to stable storage.
	Flush() error
}

// ckptRecord is the on-disk unit of the file checkpointer.
type ckptRecord struct {
	Name string
	Seq  int
	Outs []any
}

// maxCkptRecord bounds one framed checkpoint record; a length prefix
// beyond it means the log is corrupt past repair at that point.
const maxCkptRecord = 1 << 26 // 64 MiB

// FileCheckpointer is an append-only checkpoint log of length-prefixed,
// individually gob-encoded records. Framing each record separately (a
// uvarint byte length followed by a standalone gob blob) buys two kinds
// of robustness a single gob stream cannot offer:
//
//   - an unencodable output value (say, a struct holding a channel or a
//     live pointer graph) skips exactly one record instead of poisoning
//     every later write;
//   - a corrupt record mid-file — a partial fsync after power loss —
//     skips exactly one record on replay instead of discarding the rest
//     of the log.
//
// Task output values must be gob-encodable (register concrete types
// with gob.Register); values that fail to encode are skipped, counted
// in Dropped, and the task simply re-runs on recovery.
type FileCheckpointer struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	mem     map[string][]any
	corrupt int // records skipped while replaying the log
	dropped int // records skipped at write time (unencodable)
}

// OpenFileCheckpointer opens (or creates) the checkpoint log at path and
// loads any previously recorded results for replay. Corrupt records are
// skipped and counted (see Corrupt); a torn tail — the expected shape of
// a crash mid-write — stops the scan at the last whole record.
func OpenFileCheckpointer(path string) (*FileCheckpointer, error) {
	c := &FileCheckpointer{path: path, mem: make(map[string][]any)}
	if f, err := os.Open(path); err == nil {
		br := bufio.NewReader(f)
		for {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					c.corrupt++ // torn length prefix
				}
				break
			}
			if n == 0 || n > maxCkptRecord {
				// Nonsense length: the framing itself is gone and there is
				// no way to resync, so keep what was already recovered.
				c.corrupt++
				break
			}
			blob := make([]byte, n)
			if _, err := io.ReadFull(br, blob); err != nil {
				c.corrupt++ // torn tail: record length written, bytes not
				break
			}
			var rec ckptRecord
			if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&rec); err != nil {
				// One bad record (bit rot, partial overwrite): the length
				// prefix still lets the scan resync on the next record.
				c.corrupt++
				continue
			}
			c.mem[ckptKey(rec.Name, rec.Seq)] = rec.Outs
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

func ckptKey(name string, seq int) string { return fmt.Sprintf("%s/%d", name, seq) }

// Record implements Checkpointer.
func (c *FileCheckpointer) Record(name string, seq int, outs []any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := ckptKey(name, seq)
	if _, dup := c.mem[key]; dup {
		return nil
	}
	if c.f == nil {
		return nil
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(ckptRecord{Name: name, Seq: seq, Outs: outs}); err != nil {
		// Unencodable outputs: drop this one record rather than fail the
		// workflow; the task re-runs on recovery.
		c.dropped++
		return nil
	}
	frame := make([]byte, 0, binary.MaxVarintLen64+blob.Len())
	frame = binary.AppendUvarint(frame, uint64(blob.Len()))
	frame = append(frame, blob.Bytes()...)
	if _, err := c.f.Write(frame); err != nil {
		c.dropped++
		return nil // best effort: a failing disk must not fail the run
	}
	c.mem[key] = outs
	return nil
}

// Corrupt reports how many records were skipped while replaying the log
// (torn tails and mid-file corruption).
func (c *FileCheckpointer) Corrupt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}

// Dropped reports how many records could not be written (unencodable
// values or write errors).
func (c *FileCheckpointer) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Lookup implements Checkpointer.
func (c *FileCheckpointer) Lookup(name string, seq int) ([]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs, ok := c.mem[ckptKey(name, seq)]
	return outs, ok
}

// Flush implements Checkpointer.
func (c *FileCheckpointer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	return c.f.Sync()
}

// Close flushes and closes the underlying log file.
func (c *FileCheckpointer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Entries reports how many task results the checkpointer holds.
func (c *FileCheckpointer) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// MemCheckpointer is an in-memory Checkpointer for tests and for
// measuring checkpointing overhead without filesystem noise.
type MemCheckpointer struct {
	mu  sync.Mutex
	mem map[string][]any
}

// NewMemCheckpointer returns an empty in-memory checkpointer.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{mem: make(map[string][]any)}
}

// Record implements Checkpointer.
func (c *MemCheckpointer) Record(name string, seq int, outs []any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[ckptKey(name, seq)] = outs
	return nil
}

// Lookup implements Checkpointer.
func (c *MemCheckpointer) Lookup(name string, seq int) ([]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs, ok := c.mem[ckptKey(name, seq)]
	return outs, ok
}

// Flush implements Checkpointer.
func (c *MemCheckpointer) Flush() error { return nil }

// Entries reports how many task results the checkpointer holds.
func (c *MemCheckpointer) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
