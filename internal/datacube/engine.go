package datacube

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ncdf"
	"repro/internal/obs"
)

// Config sizes an Engine.
type Config struct {
	// Servers is the number of in-memory I/O servers (parallel fragment
	// executors); zero means 4. The paper's §4.2.2: "the number of
	// Ophidia computing components can be scaled up ... over multiple
	// nodes of the infrastructure to address more intensive workloads".
	Servers int
	// FragmentsPerCube is the default fragmentation of new cubes; zero
	// means 2× the server count.
	FragmentsPerCube int
	// FragmentLatency models the per-fragment storage/network access
	// time of a real distributed I/O server. Fragment tasks on distinct
	// servers overlap their latency, so operator time scales down with
	// the server count the way the real multi-node deployment does —
	// even on hosts without spare cores. Zero disables it.
	FragmentLatency time.Duration
	// PyramidLevels is the number of row-downsampled resolution tiers
	// each cube lazily maintains for tolerance-aware coarse-first
	// execution: level k halves the rows k times, so 3 levels give the
	// 2x/4x/8x pyramid. Zero means the default (3); negative disables
	// the pyramid entirely, making every tolerant plan run exact.
	PyramidLevels int
	// Metrics, when set, receives per-operator wall-time histograms and
	// cell/fragment throughput counters (datacube_* families).
	Metrics *obs.Registry
	// Tracer, when set, records one span per fused plan pass
	// (datacube.fused_pass) so operator fusion shows up on -trace
	// timelines. Nil disables tracing.
	Tracer *obs.Tracer
}

// ErrEngineClosed is returned by operators invoked after Engine.Close.
var ErrEngineClosed = errors.New("datacube: engine closed")

// ErrNotFound is returned by Get/Delete for unknown cube IDs. It is a
// sentinel so callers — in particular the cubeserver wire layer and the
// cubecluster failover coordinator — can distinguish "cube does not
// exist" from transport or engine-lifecycle failures with errors.Is.
var ErrNotFound = errors.New("datacube: cube not found")

// Stats counts engine activity; its deltas drive the paper's
// data-reuse experiment (C2).
type Stats struct {
	// FileReads counts storage read operations (one per file × variable
	// import).
	FileReads int64
	// CellsProcessed counts array elements touched by operators.
	CellsProcessed int64
	// Ops counts operator executions.
	Ops int64
	// FragmentTasks counts per-fragment work units dispatched.
	FragmentTasks int64
}

// Engine hosts datacubes in memory and executes operators over their
// fragments on a fixed pool of I/O servers (the Ophidia server +
// I/O-server deployment, collapsed into one process; package cubeserver
// adds the network front-end).
type Engine struct {
	cfg     Config
	mu      sync.Mutex
	cubes   map[string]*Cube
	nextID  int64
	servers []*ioServer
	closed  bool
	// inflight tracks operators that may still send fragment tasks;
	// Close waits for it before closing the server channels.
	inflight sync.WaitGroup
	met      *dcMetrics

	fileReads atomic.Int64
	cells     atomic.Int64
	ops       atomic.Int64
	fragTasks atomic.Int64
}

// ioServer executes fragment tasks serially, so total parallelism
// scales with the number of servers.
type ioServer struct {
	tasks chan func()
	done  chan struct{}
}

func newIOServer() *ioServer {
	s := &ioServer{tasks: make(chan func(), 64), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for t := range s.tasks {
			t()
		}
	}()
	return s
}

// NewEngine starts an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.FragmentsPerCube <= 0 {
		cfg.FragmentsPerCube = 2 * cfg.Servers
	}
	if cfg.PyramidLevels == 0 {
		cfg.PyramidLevels = defaultPyramidLevels
	} else if cfg.PyramidLevels < 0 {
		cfg.PyramidLevels = 0 // disabled
	}
	e := &Engine{cfg: cfg, cubes: make(map[string]*Cube), met: newDCMetrics(cfg.Metrics)}
	for i := 0; i < cfg.Servers; i++ {
		e.servers = append(e.servers, newIOServer())
	}
	return e
}

// Close stops the I/O servers after draining in-flight operators.
// Operators invoked afterwards fail with ErrEngineClosed instead of
// panicking on the closed task channels.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Operators that passed the closed check have registered in
	// inflight; once they return, no further sends can happen and the
	// channels are safe to close.
	e.inflight.Wait()
	for _, s := range e.servers {
		close(s.tasks)
	}
	for _, s := range e.servers {
		<-s.done
	}
}

// Servers reports the configured parallelism.
func (e *Engine) Servers() int { return e.cfg.Servers }

// Closed reports whether Close has been called. The cubecluster
// in-process transport uses it to model a killed replica: operations
// against a closed engine fail like a dead server process would.
func (e *Engine) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// addCells accounts processed array elements in both the Stats counter
// and the exported throughput metric.
func (e *Engine) addCells(n int64) {
	e.cells.Add(n)
	e.met.cells.Add(float64(n))
}

// Stats returns a snapshot of activity counters.
func (e *Engine) Stats() Stats {
	return Stats{
		FileReads:      e.fileReads.Load(),
		CellsProcessed: e.cells.Load(),
		Ops:            e.ops.Load(),
		FragmentTasks:  e.fragTasks.Load(),
	}
}

// List returns the IDs of all resident cubes, sorted.
func (e *Engine) List() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.cubes))
	for id := range e.cubes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the cube with the given ID.
func (e *Engine) Get(id string) (*Cube, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.cubes[id]
	if !ok {
		return nil, fmt.Errorf("%w: no cube %q", ErrNotFound, id)
	}
	return c, nil
}

// Delete removes a cube from the engine, freeing its memory.
func (e *Engine) Delete(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.cubes[id]
	if !ok {
		return fmt.Errorf("%w: no cube %q", ErrNotFound, id)
	}
	delete(e.cubes, id)
	for _, t := range c.builtTiers() {
		e.met.tierBytes.Add(-float64(t.bytes()))
	}
	return nil
}

// MemoryBytes reports the resident payload size across all cubes,
// including built pyramid tiers.
func (e *Engine) MemoryBytes() int64 {
	e.mu.Lock()
	cubes := make([]*Cube, 0, len(e.cubes))
	for _, c := range e.cubes {
		cubes = append(cubes, c)
	}
	e.mu.Unlock()
	var n int64
	for _, c := range cubes {
		n += c.Bytes()
	}
	return n
}

// Adopt re-binds an already registered cube under the public identity
// of another resident cube, releasing the previous holder of that
// identity. The cubeserver residency manager uses it to swap a cube's
// representation (demote to a coarse stand-in, re-promote to full
// fidelity) without changing the ID clients hold; in-flight operators
// keep their pointer to the old object, which stays internally valid
// until garbage collected.
func (e *Engine) Adopt(id string, c *Cube) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	old, ok := e.cubes[id]
	if !ok {
		return fmt.Errorf("%w: no cube %q", ErrNotFound, id)
	}
	if got, ok := e.cubes[c.id]; !ok || got != c {
		return fmt.Errorf("datacube: adopt: cube %q is not registered on this engine", c.id)
	}
	if c.id == id {
		return nil
	}
	delete(e.cubes, c.id)
	c.id = id
	e.cubes[id] = c
	// the displaced holder leaves the engine like a Delete would
	for _, t := range old.builtTiers() {
		e.met.tierBytes.Add(-float64(t.bytes()))
	}
	return nil
}

// register assigns an ID and stores the cube.
func (e *Engine) register(c *Cube, desc string) *Cube {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	c.id = fmt.Sprintf("cube-%d", e.nextID)
	c.desc = desc
	c.engine = e
	e.cubes[c.id] = c
	return c
}

// newCube allocates a fragmented cube with the given shape. Fragments
// are split over rows and assigned to servers round-robin.
func (e *Engine) newCube(explicit []Dimension, implicit Dimension) *Cube {
	rows := 1
	for _, d := range explicit {
		rows *= d.Size
	}
	nfrag := e.cfg.FragmentsPerCube
	if nfrag > rows {
		nfrag = rows
	}
	if nfrag < 1 {
		nfrag = 1
	}
	c := &Cube{
		explicit: append([]Dimension(nil), explicit...),
		implicit: implicit,
		rows:     rows,
	}
	base := rows / nfrag
	rem := rows % nfrag
	// one backing allocation for the whole cube, sliced per fragment:
	// fragments stay independently addressable but an operator costs one
	// allocation instead of one per fragment
	backing := make([]float32, rows*implicit.Size)
	start := 0
	for f := 0; f < nfrag; f++ {
		cnt := base
		if f < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		c.frags = append(c.frags, &fragment{
			rowStart: start,
			rowCount: cnt,
			data:     backing[start*implicit.Size : (start+cnt)*implicit.Size : (start+cnt)*implicit.Size],
			server:   f % e.cfg.Servers,
		})
		start += cnt
	}
	return c
}

// mapFragments runs fn over every fragment of c on the fragment's
// owning I/O server and waits for completion. All fragment errors are
// aggregated with errors.Join so a multi-fragment failure is fully
// reported, not reduced to one arbitrary member. op labels the
// operator's wall-time histogram.
func (e *Engine) mapFragments(op string, c *Cube, fn func(fr *fragment) error) error {
	return e.mapFragmentsIdx(op, c, func(_ int, fr *fragment) error { return fn(fr) })
}

// mapFragmentsIdx is mapFragments with the fragment's index passed to
// fn; fused multi-output passes use it to address the aligned fragments
// of sibling output cubes (all outputs of one pass share the same row
// partitioning).
func (e *Engine) mapFragmentsIdx(op string, c *Cube, fn func(i int, fr *fragment) error) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("%s: %w", op, ErrEngineClosed)
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(c.frags))
	for i, fr := range c.frags {
		i, fr := i, fr
		wg.Add(1)
		e.fragTasks.Add(1)
		e.met.fragTasks.Inc()
		e.servers[fr.server].tasks <- func() {
			defer wg.Done()
			t0 := time.Now()
			if e.cfg.FragmentLatency > 0 {
				time.Sleep(e.cfg.FragmentLatency)
			}
			if err := fn(i, fr); err != nil {
				errCh <- fmt.Errorf("%s: rows [%d,%d): %w", op, fr.rowStart, fr.rowStart+fr.rowCount, err)
			}
			e.met.fragSeconds.Observe(time.Since(t0).Seconds())
		}
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	e.met.opSeconds.With(op).Observe(time.Since(start).Seconds())
	return errors.Join(errs...)
}

// scatterTasks runs the given work items on the I/O servers
// round-robin and waits for completion, with the same lifecycle
// discipline as fragment fan-outs: operators that passed the closed
// check register in inflight so Close drains them before shutting the
// task channels, and all task errors are joined.
func (e *Engine) scatterTasks(op string, tasks []func() error) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("%s: %w", op, ErrEngineClosed)
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(tasks))
	for i, task := range tasks {
		task := task
		wg.Add(1)
		e.fragTasks.Add(1)
		e.met.fragTasks.Inc()
		e.servers[i%len(e.servers)].tasks <- func() {
			defer wg.Done()
			t0 := time.Now()
			if e.cfg.FragmentLatency > 0 {
				time.Sleep(e.cfg.FragmentLatency)
			}
			if err := task(); err != nil {
				errCh <- fmt.Errorf("%s: %w", op, err)
			}
			e.met.fragSeconds.Observe(time.Since(t0).Seconds())
		}
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	e.met.opSeconds.With(op).Observe(time.Since(start).Seconds())
	return errors.Join(errs...)
}

// NewCubeFromFunc materializes a cube from a generator function
// f(row, t). It is how the workflow builds the in-memory climatology
// baseline cube.
func (e *Engine) NewCubeFromFunc(measure string, explicit []Dimension, implicit Dimension, f func(row, t int) float32) (*Cube, error) {
	if implicit.Size <= 0 {
		return nil, fmt.Errorf("datacube: implicit dimension %q must be positive", implicit.Name)
	}
	for _, d := range explicit {
		if d.Size <= 0 {
			return nil, fmt.Errorf("datacube: dimension %q must be positive", d.Name)
		}
	}
	c := e.newCube(explicit, implicit)
	c.measure = measure
	err := e.mapFragments("from_func", c, func(fr *fragment) error {
		n := implicit.Size
		for r := 0; r < fr.rowCount; r++ {
			row := fr.rowStart + r
			for t := 0; t < n; t++ {
				fr.data[r*n+t] = f(row, t)
			}
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(c, "from_func("+measure+")"), nil
}

// ImportDataset loads one variable of an in-memory dataset as a cube.
// implicitDim names the dimension that becomes the in-row array axis
// (typically "time"); the remaining dimensions, in their original
// order, become the explicit (fragmented) axes.
func (e *Engine) ImportDataset(ds *ncdf.Dataset, varName, implicitDim string) (*Cube, error) {
	v, err := ds.Var(varName)
	if err != nil {
		return nil, err
	}
	shape, err := ds.Shape(v)
	if err != nil {
		return nil, err
	}
	impAxis := -1
	var explicit []Dimension
	for i, dn := range v.Dims {
		if dn == implicitDim {
			impAxis = i
			continue
		}
		explicit = append(explicit, Dimension{Name: dn, Size: shape[i]})
	}
	if impAxis < 0 {
		return nil, fmt.Errorf("datacube: variable %q has no dimension %q", varName, implicitDim)
	}
	implicit := Dimension{Name: implicitDim, Size: shape[impAxis]}
	c := e.newCube(explicit, implicit)
	c.measure = varName

	// strides of the source layout
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	// explicit axes in original order
	var expAxes []int
	for i := range v.Dims {
		if i != impAxis {
			expAxes = append(expAxes, i)
		}
	}
	err = e.mapFragments("import", c, func(fr *fragment) error {
		n := implicit.Size
		idx := make([]int, len(expAxes))
		for r := 0; r < fr.rowCount; r++ {
			row := fr.rowStart + r
			// decompose row into explicit indices (row-major)
			rem := row
			for k := len(expAxes) - 1; k >= 0; k-- {
				sz := shape[expAxes[k]]
				idx[k] = rem % sz
				rem /= sz
			}
			base := 0
			for k, ax := range expAxes {
				base += idx[k] * strides[ax]
			}
			st := strides[impAxis]
			for t := 0; t < n; t++ {
				fr.data[r*n+t] = v.Data[base+t*st]
			}
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(c, "importds("+varName+")"), nil
}

// ImportFile loads one variable from a GNC1 file (one storage read).
func (e *Engine) ImportFile(path, varName, implicitDim string) (*Cube, error) {
	ds, v, err := ncdf.ReadVariableFile(path, varName)
	if err != nil {
		return nil, err
	}
	e.fileReads.Add(1)
	e.met.fileReads.Inc()
	// Rebuild a minimal dataset holding just this variable.
	sub := ncdf.NewDataset()
	for _, d := range ds.Dims {
		if err := sub.AddDim(d.Name, d.Len); err != nil {
			return nil, err
		}
	}
	if _, err := sub.AddVar(v.Name, v.Dims, v.Data); err != nil {
		return nil, err
	}
	return e.ImportDataset(sub, varName, implicitDim)
}

// ImportFiles loads the same variable from several files (e.g. one
// year of daily ESM output) and concatenates along the implicit
// dimension, producing one cube whose rows are grid cells and whose
// in-row arrays are the full-period time series.
func (e *Engine) ImportFiles(paths []string, varName, implicitDim string) (*Cube, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("datacube: no files to import")
	}
	parts := make([]*Cube, 0, len(paths))
	defer func() {
		for _, p := range parts {
			_ = e.Delete(p.ID())
		}
	}()
	for _, p := range paths {
		c, err := e.ImportFile(p, varName, implicitDim)
		if err != nil {
			return nil, fmt.Errorf("datacube: import %s: %w", p, err)
		}
		parts = append(parts, c)
	}
	out, err := e.Concat(parts)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Concat joins cubes with identical explicit shape along the implicit
// axis, in argument order.
func (e *Engine) Concat(cubes []*Cube) (*Cube, error) {
	if len(cubes) == 0 {
		return nil, fmt.Errorf("datacube: nothing to concat")
	}
	first := cubes[0]
	total := 0
	for _, c := range cubes {
		if c.rows != first.rows {
			return nil, fmt.Errorf("datacube: concat shape mismatch: %d vs %d rows", c.rows, first.rows)
		}
		total += c.implicit.Size
	}
	out := e.newCube(first.explicit, Dimension{Name: first.implicit.Name, Size: total})
	out.measure = first.measure
	// offsets of each input along the implicit axis
	offsets := make([]int, len(cubes))
	off := 0
	for i, c := range cubes {
		offsets[i] = off
		off += c.implicit.Size
	}
	err := e.mapFragments("concat", out, func(fr *fragment) error {
		n := total
		for r := 0; r < fr.rowCount; r++ {
			row := fr.rowStart + r
			for ci, c := range cubes {
				src := c.rowSlice(row)
				copy(fr.data[r*n+offsets[ci]:r*n+offsets[ci]+len(src)], src)
			}
		}
		e.addCells(int64(fr.rowCount * n))
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.ops.Add(1)
	return e.register(out, "concat"), nil
}
