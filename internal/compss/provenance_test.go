package compss

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func provRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt := NewRuntime(Config{Workers: 2})
	slow, err := rt.Register(TaskDef{
		Name:    "slow",
		Outputs: 1,
		Fn: func(args []any) ([]any, error) {
			time.Sleep(3 * time.Millisecond)
			return []any{args[0]}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := rt.Register(TaskDef{
		Name:    "fast",
		Outputs: 1,
		Fn:      func(args []any) ([]any, error) { return []any{args[0]}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rt.InvokeOne(slow, In(1))
	b, _ := rt.InvokeOne(fast, In(a))
	if _, err := rt.InvokeOne(fast, In(b)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Barrier(); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestProvenanceRecordsTasksAndEdges(t *testing.T) {
	rt := provRuntime(t)
	p := rt.Provenance("test-wf")
	if p.Workflow != "test-wf" || len(p.Tasks) != 3 {
		t.Fatalf("provenance = %+v", p)
	}
	for _, task := range p.Tasks {
		if task.State != "DONE" {
			t.Fatalf("task %d state %s", task.ID, task.State)
		}
		if task.Started.IsZero() || task.Ended.IsZero() || task.DurationMS < 0 {
			t.Fatalf("task %d has no timing: %+v", task.ID, task)
		}
	}
	if p.Tasks[0].DurationMS < 2 {
		t.Fatalf("slow task duration = %v ms", p.Tasks[0].DurationMS)
	}
	if len(p.Edges) != 2 {
		t.Fatalf("edges = %v", p.Edges)
	}
	if p.Edges[0] != [2]int{1, 2} || p.Edges[1] != [2]int{2, 3} {
		t.Fatalf("edges = %v", p.Edges)
	}
}

func TestProvenanceJSONRoundTrip(t *testing.T) {
	rt := provRuntime(t)
	p := rt.Provenance("wf")
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseProvenance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workflow != "wf" || len(got.Tasks) != 3 || len(got.Edges) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if _, err := ParseProvenance(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestGanttRendersBars(t *testing.T) {
	rt := provRuntime(t)
	p := rt.Provenance("wf")
	g := p.Gantt(40)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 4 { // header + 3 tasks
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[0], "total") {
		t.Fatalf("header missing: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "█") {
			t.Fatalf("row without bar: %q", l)
		}
	}
	// rows sorted by start: slow first
	if !strings.Contains(lines[1], "slow") {
		t.Fatalf("first row should be the slow task: %q", lines[1])
	}
}

func TestGanttEmpty(t *testing.T) {
	p := &Provenance{}
	if g := p.Gantt(40); !strings.Contains(g, "no timed tasks") {
		t.Fatalf("empty gantt = %q", g)
	}
}

func TestCriticalTasks(t *testing.T) {
	rt := provRuntime(t)
	names, err := rt.CriticalTasks()
	if err != nil {
		t.Fatal(err)
	}
	// the chain slow → fast → fast is the only path
	if len(names) != 3 || names[0] != "slow" {
		t.Fatalf("critical tasks = %v", names)
	}
}
